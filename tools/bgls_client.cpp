/// \file bgls_client.cpp
/// Command-line client for the `bgls_serve` daemon (service/client.h).
///
///   $ bgls_client --connect unix:/tmp/bgls.sock run
///       --reps 4096 --seed 7 circuit.qasm   # submit + wait + print report
///   $ bgls_client --connect tcp:127.0.0.1:7117 submit
///       --reps 100000 --no-batch --progress-every 5000 x.qasm  # job id
///   $ bgls_client --connect unix:/tmp/bgls.sock stream 3   # progress → stderr
///   $ bgls_client --connect unix:/tmp/bgls.sock cancel 3
///   $ bgls_client --connect unix:/tmp/bgls.sock stats
///
/// `run` output is byte-identical to `bgls_run` on the same input and
/// seed — the daemon embeds the canonical report. Exit codes mirror
/// bgls_run: 0 success, 2 usage/transport/server errors, 3 when the
/// job ended cancelled or timed out.

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cli_flags.h"
#include "obs/timeline.h"
#include "obs/trace.h"
#include "service/client.h"
#include "util/error.h"
#include "util/rng.h"

namespace {

using namespace bgls;
using namespace bgls::service;
using tools::parse_int_flag;
using tools::parse_signed_flag;
using tools::parse_u64_flag;

struct ClientOptions {
  std::string connect = "unix:/tmp/bgls.sock";
  std::string command;
  std::vector<std::string> args;  // positional command arguments
  SubmitArgs submit;              // flags for run/submit
  std::uint64_t timeout_ms = 0;   // wait/run bound (0 = none)
  /// Transport-level retries: a refused/dropped connection or a
  /// journal_error response reconnects with exponential backoff +
  /// jitter (the daemon may be mid-restart, replaying its journal).
  int retries = 0;
  std::uint64_t backoff_ms = 100;
  std::string chrome_trace;        // trace: also write Chrome JSON here
  std::string log_level = "debug"; // logs: minimum level to fetch
  std::uint64_t log_limit = 0;     // logs: tail length (0 = server default)
};

void print_usage(std::ostream& os) {
  os << "usage: bgls_client [--connect SPEC] <command> [flags] [args]\n"
        "\n"
        "Drives a running bgls_serve daemon (default SPEC\n"
        "unix:/tmp/bgls.sock; also tcp:<host>:<port>).\n"
        "\n"
        "commands:\n"
        "  run <qasm|->     submit, wait, print the final report (byte-\n"
        "                   identical to bgls_run); streams progress\n"
        "                   lines to stderr when --progress-every is set\n"
        "  submit <qasm|->  submit only; prints the job id\n"
        "  status <job>     one status line (state, progress)\n"
        "  wait <job>       wait for completion, print the report\n"
        "  result <job>     print a finished job's report\n"
        "  stream <job>     stream progress to stderr, report to stdout\n"
        "  cancel <job>     request cancellation\n"
        "  stats            scheduler counters\n"
        "  metrics          Prometheus text exposition of the daemon's\n"
        "                   telemetry registry (scrape-ready); against a\n"
        "                   fleet front, aggregated across workers with a\n"
        "                   worker=\"N\" label on every series\n"
        "  trace <job>      print the job's span tree (fleet + worker\n"
        "                   spans merged when connected to a fleet);\n"
        "                   --chrome-trace FILE also writes Chrome\n"
        "                   trace-event JSON (load in about://tracing)\n"
        "  logs             tail the server's structured-log ring;\n"
        "                   --level LVL --limit N --trace-id T filter\n"
        "  raw <json>       send one raw request line, print the raw\n"
        "                   response (fleet ops: fleet, drain, undrain)\n"
        "  shutdown         ask the daemon to exit\n"
        "\n"
        "submit flags (run/submit): --reps N --seed N --backend NAME\n"
        "  --threads N --streams N --optimize --no-batch --priority N\n"
        "  --tenant NAME --deadline-ms N --progress-every N\n"
        "  --trace-id N (propagate an existing trace context; default:\n"
        "  the client mints a fresh nonzero id and prints it to stderr)\n"
        "wait flags (run/wait): --timeout-ms N\n"
        "transport flags: --retries N (reconnect attempts on connection\n"
        "  failures and journal_error responses, default 0)\n"
        "  --backoff-ms B (retry backoff base, default 100; the k-th\n"
        "  retry waits B*2^k plus jitter)\n"
        "\n"
        "exit codes: 0 success, 2 error, 3 job cancelled or timed out.\n";
}

bool parse_args(int argc, char** argv, ClientOptions& options) {
  const auto need_value = [&](int& i, const std::string& flag) -> std::string {
    if (i + 1 >= argc) {
      detail::throw_error<ValueError>("missing value for ", flag);
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage(std::cout);
      return false;
    } else if (arg == "--connect") {
      options.connect = need_value(i, arg);
    } else if (arg == "--reps") {
      options.submit.repetitions = parse_u64_flag(arg, need_value(i, arg));
    } else if (arg == "--seed") {
      options.submit.seed = parse_u64_flag(arg, need_value(i, arg));
    } else if (arg == "--backend") {
      options.submit.backend = need_value(i, arg);
    } else if (arg == "--threads") {
      options.submit.threads = parse_int_flag(arg, need_value(i, arg));
    } else if (arg == "--streams") {
      options.submit.streams = parse_u64_flag(arg, need_value(i, arg));
    } else if (arg == "--optimize") {
      options.submit.optimize = true;
    } else if (arg == "--no-batch") {
      options.submit.no_batch = true;
    } else if (arg == "--priority") {
      options.submit.priority = parse_signed_flag(arg, need_value(i, arg));
    } else if (arg == "--tenant") {
      options.submit.tenant = need_value(i, arg);
    } else if (arg == "--deadline-ms") {
      options.submit.deadline_ms = parse_u64_flag(arg, need_value(i, arg));
    } else if (arg == "--progress-every") {
      options.submit.progress_every = parse_u64_flag(arg, need_value(i, arg));
    } else if (arg == "--trace-id") {
      options.submit.trace_id = parse_u64_flag(arg, need_value(i, arg));
      BGLS_REQUIRE(options.submit.trace_id != 0,
                   "--trace-id must be nonzero (0 means 'unset')");
    } else if (arg == "--chrome-trace") {
      options.chrome_trace = need_value(i, arg);
    } else if (arg == "--level") {
      options.log_level = need_value(i, arg);
    } else if (arg == "--limit") {
      options.log_limit = parse_u64_flag(arg, need_value(i, arg));
    } else if (arg == "--timeout-ms") {
      options.timeout_ms = parse_u64_flag(arg, need_value(i, arg));
    } else if (arg == "--retries") {
      const std::uint64_t retries = parse_u64_flag(arg, need_value(i, arg));
      BGLS_REQUIRE(retries <= 100, "value ", retries, " for ", arg,
                   " is out of range");
      options.retries = static_cast<int>(retries);
    } else if (arg == "--backoff-ms") {
      options.backoff_ms = parse_u64_flag(arg, need_value(i, arg));
    } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
      detail::throw_error<ValueError>("unknown flag '", arg,
                                      "' (try --help)");
    } else if (options.command.empty()) {
      options.command = arg;
    } else {
      options.args.push_back(arg);
    }
  }
  BGLS_REQUIRE(!options.command.empty(), "no command given (see --help)");
  return true;
}

std::string read_input(const std::string& input) {
  std::ostringstream buffer;
  if (input == "-") {
    buffer << std::cin.rdbuf();
  } else {
    std::ifstream file(input);
    BGLS_REQUIRE(file.good(), "cannot open '", input, "'");
    buffer << file.rdbuf();
  }
  return buffer.str();
}

std::uint64_t job_argument(const ClientOptions& options) {
  BGLS_REQUIRE(options.args.size() == 1, "command '", options.command,
               "' expects exactly one job id");
  return parse_u64_flag("job id", options.args[0]);
}

/// Mints a fresh trace id when the caller did not pass --trace-id:
/// FNV-1a over the pid and the wall clock, remapped away from 0 (the
/// protocol's "unset"). Purely an identifier — never feeds sampling, so
/// the nondeterminism is contract-safe.
std::uint64_t mint_trace_id() {
  std::uint64_t hash = 14695981039346656037ull;
  const auto mix = [&hash](std::uint64_t value) {
    for (int byte = 0; byte < 8; ++byte) {
      hash ^= (value >> (8 * byte)) & 0xffu;
      hash *= 1099511628211ull;
    }
  };
  mix(static_cast<std::uint64_t>(::getpid()));
  mix(static_cast<std::uint64_t>(  // bgls-lint: allow(nondeterministic-source)
      std::chrono::system_clock::now().time_since_epoch().count()));
  return hash == 0 ? 1 : hash;
}

void print_progress(const JsonValue& frame) {
  std::cerr << "progress: " << frame.u64_or("completed", 0) << "/"
            << frame.u64_or("total", 0) << " repetitions\n";
}

int run_command(const ClientOptions& options) {
  ServiceClient client(Endpoint::parse(options.connect));

  if (options.command == "run" || options.command == "submit") {
    BGLS_REQUIRE(options.args.size() == 1, "command '", options.command,
                 "' expects one circuit file (or '-')");
    SubmitArgs submit = options.submit;
    submit.qasm = read_input(options.args[0]);
    if (submit.trace_id == 0) {
      // Mint a context so every submission is traceable end to end;
      // announce it on stderr (stdout stays byte-identical to bgls_run).
      submit.trace_id = mint_trace_id();
      std::cerr << "trace-id: " << submit.trace_id << "\n";
    }
    const std::uint64_t job = client.submit(submit);
    if (options.command == "submit") {
      std::cout << job << "\n";
      return 0;
    }
    // run = submit + stream/wait + print. Streaming when requested so
    // long jobs show liveness; plain wait otherwise.
    if (submit.progress_every > 0) {
      std::cout << client.stream(job, print_progress);
    } else {
      std::cout << client.wait_report(job, options.timeout_ms);
    }
    return 0;
  }
  if (options.command == "wait") {
    std::cout << client.wait_report(job_argument(options), options.timeout_ms);
    return 0;
  }
  if (options.command == "result") {
    std::cout << client.result_report(job_argument(options));
    return 0;
  }
  if (options.command == "stream") {
    std::cout << client.stream(job_argument(options), print_progress);
    return 0;
  }
  if (options.command == "status") {
    const JsonValue status = client.status(job_argument(options));
    std::cout << "job " << status.u64_or("job", 0) << ": "
              << status.string_or("state", "?") << " ("
              << status.u64_or("completed", 0) << "/"
              << status.u64_or("total", 0) << " repetitions, "
              << status.u64_or("updates", 0) << " updates)\n";
    return 0;
  }
  if (options.command == "cancel") {
    const bool cancelled = client.cancel(job_argument(options));
    std::cout << (cancelled ? "cancelled\n" : "not cancellable\n");
    return 0;
  }
  if (options.command == "stats") {
    const JsonValue stats = client.stats();
    std::cout << "submitted=" << stats.u64_or("submitted", 0)
              << " completed=" << stats.u64_or("completed", 0)
              << " failed=" << stats.u64_or("failed", 0)
              << " cancelled=" << stats.u64_or("cancelled", 0)
              << " timed_out=" << stats.u64_or("timed_out", 0)
              << " rejected=" << stats.u64_or("rejected", 0)
              << " queue_depth=" << stats.u64_or("queue_depth", 0)
              << " running=" << stats.u64_or("running", 0)
              << " evicted=" << stats.u64_or("evicted", 0)
              << " cache_hits=" << stats.u64_or("cache_hits", 0) << "\n";
    const JsonValue* per_backend = stats.find("completed_per_backend");
    if (per_backend != nullptr &&
        per_backend->kind() == JsonValue::Kind::kObject) {
      for (const auto& [backend, count] : per_backend->members()) {
        std::cout << "  backend " << backend << ": " << count.as_u64()
                  << " jobs\n";
      }
    }
    return 0;
  }
  if (options.command == "metrics") {
    // Exposition text ends with a newline already; print verbatim so
    // the output pipes straight into a Prometheus scrape file.
    std::cout << client.metrics_text();
    return 0;
  }
  if (options.command == "trace") {
    const JsonValue response = client.trace(job_argument(options));
    const std::uint64_t trace_id = response.u64_or("trace_id", 0);
    const std::vector<obs::SpanRecord> spans = parse_spans(response);
    if (!options.chrome_trace.empty()) {
      std::ofstream file(options.chrome_trace);
      BGLS_REQUIRE(file.good(), "cannot write '", options.chrome_trace, "'");
      file << obs::to_chrome_trace(trace_id, spans);
      file << "\n";
    }
    std::cout << obs::render_span_tree(trace_id, spans);
    return 0;
  }
  if (options.command == "logs") {
    const JsonValue response = client.logs(
        options.log_level, options.submit.trace_id, options.log_limit);
    const JsonValue* lines = response.find("lines");
    if (lines != nullptr) {
      for (const JsonValue& line : lines->items()) {
        std::cout << line.as_string() << "\n";
      }
    }
    return 0;
  }
  if (options.command == "raw") {
    BGLS_REQUIRE(options.args.size() == 1, "command 'raw' expects exactly "
                 "one JSON request line");
    std::string line = options.args[0];
    if (line.empty() || line.back() != '\n') line += '\n';
    std::cout << client.roundtrip_text(line) << "\n";
    return 0;
  }
  if (options.command == "shutdown") {
    client.shutdown_server();
    std::cout << "shutdown requested\n";
    return 0;
  }
  detail::throw_error<ValueError>("unknown command '", options.command,
                                  "' (try --help)");
}

/// True for failures worth reconnecting on: transport errors (daemon
/// down or mid-restart), journal_error responses (a durable ack could
/// not be written; the submit is safe to repeat), and the fleet front's
/// worker_down (placement retries land on a live worker).
bool retryable(const std::exception& e) {
  if (dynamic_cast<const IoError*>(&e) != nullptr) return true;
  const auto* service = dynamic_cast<const ServiceError*>(&e);
  return service != nullptr && (service->code() == "journal_error" ||
                                service->code() == "worker_down");
}

void backoff_sleep(const ClientOptions& options, int attempt) {
  const std::uint64_t base = options.backoff_ms;
  std::uint64_t wait =
      base << std::min(attempt, 16);  // exponential, capped shift
  if (base > 0) {
    // Jitter decorrelates a herd of clients hammering a restarting
    // daemon; seeded per-process so runs stay reproducible under test.
    Rng jitter(static_cast<std::uint64_t>(::getpid()) * 2654435761ull +
               static_cast<std::uint64_t>(attempt));
    wait += jitter.uniform_int(base);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(wait));
}

int run_with_retries(const ClientOptions& options) {
  for (int attempt = 0;; ++attempt) {
    try {
      return run_command(options);
    } catch (const std::exception& e) {
      if (attempt >= options.retries || !retryable(e)) throw;
      std::cerr << "bgls_client: " << e.what() << " (retry "
                << (attempt + 1) << "/" << options.retries << ")\n";
      backoff_sleep(options, attempt);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  ClientOptions options;
  try {
    if (!parse_args(argc, argv, options)) return 0;
    return run_with_retries(options);
  } catch (const ServiceError& e) {
    std::cerr << "bgls_client: [" << e.code() << "] " << e.what() << "\n";
    return e.code() == "cancelled" || e.code() == "timeout" ? 3 : 2;
  } catch (const std::exception& e) {
    std::cerr << "bgls_client: " << e.what() << "\n";
    return 2;
  }
}

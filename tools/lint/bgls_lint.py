#!/usr/bin/env python3
"""bgls_lint: repo-specific determinism and input-hygiene checker.

BGLS's headline guarantee is bit-identical results for a given seed —
across thread counts, across re-runs, across the daemon's result cache
and journal replay. The generic toolchain (compiler warnings,
clang-tidy, sanitizers) cannot see that contract, so this checker
enforces the three repo rules that protect it at the token level:

  nondeterministic-source
      std::random_device, time()/std::time, and the std::chrono clocks
      mint values that differ run to run. They are banned outside the
      allowlisted timing/telemetry files: sampling must draw all of its
      entropy from the explicitly seeded Rng (util/rng.h), and nothing
      a run's *results* contain may come from a clock.

  unordered-serialization
      Iterating an unordered container produces a hash-order walk, and
      libstdc++'s hash order is salt- and size-dependent. In the files
      that serialize results for the wire, the cache, or the journal
      (service/report, result_cache, journal, protocol), any
      unordered_map/unordered_set is flagged: byte-identical output
      needs an ordered walk (std::map, or sort-before-emit behind an
      allow annotation).

  naked-numeric-parse
      std::sto*/ato*/strto* accept trailing garbage, saturate, or
      invoke UB on out-of-range input, and each call site re-invents
      error handling. All numeric parsing of untrusted text goes
      through util/parse.h; the only file allowed to spell a raw parse
      (std::from_chars included) is its implementation, util/parse.cpp.

Any finding can be suppressed where it is justified with a trailing or
preceding-line annotation naming the rule:

    std::unordered_map<K, V> index_;  // bgls-lint: allow(unordered-serialization)

Usage:
    bgls_lint.py [--root DIR]     scan the repo tree (exit 1 on findings)
    bgls_lint.py --self-test      run against the seeded fixtures
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

# --- Rule table -----------------------------------------------------------

NONDET_RE = re.compile(
    r"std\s*::\s*random_device|\brandom_device\b"
    r"|std\s*::\s*time\s*\(|\btime\s*\(\s*(?:NULL|nullptr|0)\s*\)"
    r"|\b(?:system|steady|high_resolution)_clock\b"
)

UNORDERED_RE = re.compile(r"\bunordered_(?:map|set|multimap|multiset)\b")

NAKED_PARSE_RE = re.compile(
    r"\b(?:std\s*::\s*)?"
    r"(?:stod|stof|stold|stoi|stol|stoll|stoul|stoull"
    r"|atoi|atol|atoll|atof"
    r"|strtol|strtoll|strtoul|strtoull|strtod|strtof|strtold"
    r"|from_chars|sscanf)\s*\("
)

MESSAGES = {
    "nondeterministic-source":
        "clock/random_device value outside the timing allowlist — "
        "results must derive from the seeded Rng only",
    "unordered-serialization":
        "unordered container in a result-serializing file — hash order "
        "is not deterministic; use std::map or sort before emitting",
    "naked-numeric-parse":
        "raw numeric parse — use util/parse.h "
        "(try_parse_double/i64/u64) instead",
}

# nondeterministic-source: files whose whole job is wall-clock timing or
# telemetry — their clock reads never reach a sampled result.
NONDET_ALLOWED_PREFIXES = (
    "src/util/timing.h",        # the Timer/Stopwatch helpers
    "src/util/cancellation.h",  # deadline math
    "src/obs/",                 # telemetry: metrics timestamps, spans
    "src/service/scheduler",    # queue-wait / runtime accounting
    "src/service/daemon.",      # journal-replay + uptime accounting
    "src/service/fleet.",       # placement/proxy span + health timing
    "src/api/session.",         # per-run elapsed-seconds reporting
    "src/engine/engine.h",      # shard timer (progress heartbeats)
    "src/statevector/kernels.cpp",  # kernel progress heartbeat
    "tests/",                   # timing assertions, stress loops
    "bench/",                   # benchmarks measure time by definition
)

# unordered-serialization: only the result-determining serialization
# paths; everywhere else unordered containers are encouraged.
SERIALIZATION_PREFIXES = (
    "src/service/report.",
    "src/service/result_cache.",
    "src/service/journal.",
    "src/service/protocol.",
)

# naked-numeric-parse: the checked-parse implementation itself.
PARSE_IMPL_FILES = ("src/util/parse.cpp",)

SCAN_ROOTS = ("src", "tools", "tests", "bench", "examples")
SCAN_SUFFIXES = (".cpp", ".h", ".hpp", ".cc", ".inc")
# The lint's own violation fixtures must not fail the tree scan.
EXCLUDED_PREFIXES = ("tools/lint/fixtures/",)

ALLOW_RE = re.compile(r"bgls-lint:\s*allow\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)")


class Finding:
    def __init__(self, path: str, line: int, rule: str):
        self.path = path
        self.line = line
        self.rule = rule

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {MESSAGES[self.rule]}"


def strip_code_line(line: str, in_block_comment: bool) -> tuple[str, bool]:
    """Returns `line` with comments and string/char literals blanked
    (replaced by spaces, so column math stays meaningful), plus the
    block-comment state carried into the next line."""
    out = []
    i, n = 0, len(line)
    while i < n:
        if in_block_comment:
            end = line.find("*/", i)
            if end < 0:
                out.append(" " * (n - i))
                i = n
            else:
                out.append(" " * (end + 2 - i))
                i = end + 2
                in_block_comment = False
            continue
        c = line[i]
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            out.append(" " * (n - i))
            i = n
        elif c == "/" and i + 1 < n and line[i + 1] == "*":
            in_block_comment = True
            out.append("  ")
            i += 2
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n:
                if line[j] == "\\":
                    j += 2
                    continue
                if line[j] == quote:
                    j += 1
                    break
                j += 1
            j = min(j, n)
            out.append(quote + " " * max(0, j - i - 2) +
                       (quote if j - i >= 2 else ""))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out), in_block_comment


def allows_on(raw_line: str) -> set[str]:
    m = ALLOW_RE.search(raw_line)
    if not m:
        return set()
    return {r.strip() for r in m.group(1).split(",")}


def path_matches(rel: str, prefixes: tuple[str, ...]) -> bool:
    return any(rel.startswith(p) for p in prefixes)


def checks_for(rel: str) -> list[tuple[str, re.Pattern[str]]]:
    checks = []
    if not path_matches(rel, NONDET_ALLOWED_PREFIXES):
        checks.append(("nondeterministic-source", NONDET_RE))
    if path_matches(rel, SERIALIZATION_PREFIXES):
        checks.append(("unordered-serialization", UNORDERED_RE))
    if rel not in PARSE_IMPL_FILES:
        checks.append(("naked-numeric-parse", NAKED_PARSE_RE))
    return checks


def scan_text(text: str, rel: str) -> list[Finding]:
    """Scans one file's contents as if it lived at tree path `rel`."""
    checks = checks_for(rel)
    if not checks:
        return []
    raw_lines = text.splitlines()
    findings: list[Finding] = []
    in_block = False
    for lineno, raw in enumerate(raw_lines, start=1):
        code, in_block = strip_code_line(raw, in_block)
        if not code.strip():
            continue
        hit_rules = [rule for rule, rx in checks if rx.search(code)]
        if not hit_rules:
            continue
        allowed = allows_on(raw)
        if lineno >= 2:
            allowed |= allows_on(raw_lines[lineno - 2])
        for rule in hit_rules:
            if rule not in allowed:
                findings.append(Finding(rel, lineno, rule))
    return findings


def scan_tree(root: Path) -> list[Finding]:
    findings: list[Finding] = []
    for top in SCAN_ROOTS:
        base = root / top
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in SCAN_SUFFIXES or not path.is_file():
                continue
            rel = path.relative_to(root).as_posix()
            if path_matches(rel, EXCLUDED_PREFIXES):
                continue
            try:
                text = path.read_text(encoding="utf-8", errors="replace")
            except OSError as err:
                print(f"bgls_lint: cannot read {rel}: {err}",
                      file=sys.stderr)
                continue
            findings.extend(scan_text(text, rel))
    return findings


# --- Self-test ------------------------------------------------------------
#
# Each fixture seeds violations and suppressions. Expectations are
# encoded in the fixture itself: `// ... bgls-lint: expect(<rule>)` on
# every line that must be flagged, and a first-line marker
# `bgls-lint-fixture-path: <pretend/tree/path>` so path-scoped rules
# apply as they would in-tree. The self-test fails if any expected line
# is not flagged or any unexpected line is.

EXPECT_RE = re.compile(r"bgls-lint:\s*expect\(([a-z-]+)\)")


def self_test(root: Path) -> int:
    fixture_dir = root / "tools/lint/fixtures"
    fixtures = [f for f in sorted(fixture_dir.glob("*"))
                if f.suffix in SCAN_SUFFIXES]
    if not fixtures:
        print("bgls_lint self-test: no fixtures found", file=sys.stderr)
        return 2
    failures = 0
    for fixture in fixtures:
        text = fixture.read_text(encoding="utf-8")
        m = re.search(r"bgls-lint-fixture-path:\s*(\S+)", text)
        pretend = m.group(1) if m else f"src/fixture/{fixture.name}"

        expected: set[tuple[int, str]] = set()
        for lineno, raw in enumerate(text.splitlines(), start=1):
            em = EXPECT_RE.search(raw)
            if em:
                expected.add((lineno, em.group(1)))

        actual = {(f.line, f.rule) for f in scan_text(text, pretend)}
        for lineno, rule in sorted(expected - actual):
            print(f"self-test FAIL {fixture.name}:{lineno}: "
                  f"expected [{rule}] was not reported")
            failures += 1
        for lineno, rule in sorted(actual - expected):
            print(f"self-test FAIL {fixture.name}:{lineno}: "
                  f"unexpected [{rule}]")
            failures += 1
    if failures:
        print(f"bgls_lint self-test: {failures} failure(s)")
        return 1
    print(f"bgls_lint self-test: {len(fixtures)} fixture(s) OK")
    return 0


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(prog="bgls_lint.py",
                                     description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=None,
                        help="repo root (default: two levels above "
                             "this script)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the seeded-fixture self-test")
    args = parser.parse_args(argv)

    root = Path(args.root).resolve() if args.root else \
        Path(__file__).resolve().parents[2]
    if not (root / "src").is_dir():
        print(f"bgls_lint: {root} does not look like the repo root",
              file=sys.stderr)
        return 2

    if args.self_test:
        return self_test(root)

    findings = scan_tree(root)
    for finding in findings:
        print(finding)
    if findings:
        print(f"bgls_lint: {len(findings)} finding(s)")
        return 1
    print("bgls_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

// bgls-lint-fixture-path: tools/fixture_flags.cpp
// Seeded violations for the naked-numeric-parse rule: unchecked
// library parses outside util/parse.cpp.

#include <charconv>
#include <cstdlib>
#include <string>

void fixture(const std::string& text, const char* ctext) {
  auto a = std::stoi(text);  // bgls-lint: expect(naked-numeric-parse)
  auto b = std::stod(text);  // bgls-lint: expect(naked-numeric-parse)
  auto c = std::stoull(text);  // bgls-lint: expect(naked-numeric-parse)
  auto d = atoi(ctext);  // bgls-lint: expect(naked-numeric-parse)
  auto e = strtod(ctext, nullptr);  // bgls-lint: expect(naked-numeric-parse)
  auto f = ::strtoull(ctext, nullptr, 10);  // bgls-lint: expect(naked-numeric-parse)
  int value = 0;
  std::from_chars(ctext, ctext + 1, value);  // bgls-lint: expect(naked-numeric-parse)

  // Identifiers containing a parse name as a substring stay clean:
  auto history = [](int) { return 0; };
  auto g = history(1);

  // The escape hatch documents a justified raw parse:
  auto h = std::stoi(text);  // bgls-lint: allow(naked-numeric-parse)

  (void)a; (void)b; (void)c; (void)d; (void)e; (void)f;
  (void)g; (void)h; (void)value;
}

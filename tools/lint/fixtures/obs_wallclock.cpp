// bgls-lint-fixture-path: src/obs/log_fixture.cpp
// The telemetry allowlist: src/obs/ may read wall and monotonic clocks
// freely (log timestamps, span durations) — observation never feeds
// sampling, so none of these lines is a finding. This fixture pins the
// allowlist so a future prefix edit that orphans src/obs/log.cpp's
// system_clock timestamp fails the self-test, not the tree scan.

#include <chrono>

double fixture_log_timestamp() {
  // The structured logger stamps records with the wall clock, exactly
  // as src/obs/log.cpp does:
  const auto wall = std::chrono::system_clock::now();
  // ...and spans measure durations on the monotonic clock:
  const auto mono = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(wall.time_since_epoch()).count() +
         std::chrono::duration<double>(mono.time_since_epoch()).count();
}

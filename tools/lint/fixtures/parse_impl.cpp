// bgls-lint-fixture-path: src/util/parse.cpp
// Negative fixture: the checked-parse implementation is the one file
// blessed to spell std::from_chars.

#include <charconv>

bool fixture(const char* first, const char* last, double& out) {
  auto result = std::from_chars(first, last, out);
  return result.ec == std::errc();
}

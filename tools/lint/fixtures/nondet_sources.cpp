// bgls-lint-fixture-path: src/core/sampler_fixture.cpp
// Seeded violations for the nondeterministic-source rule: a result-path
// file (not on the timing allowlist) reaching for run-varying values.

#include <chrono>
#include <ctime>
#include <random>

void fixture() {
  std::random_device rd;  // bgls-lint: expect(nondeterministic-source)
  auto t0 = std::chrono::steady_clock::now();  // bgls-lint: expect(nondeterministic-source)
  auto t1 = std::chrono::system_clock::now();  // bgls-lint: expect(nondeterministic-source)
  auto t2 = std::chrono::high_resolution_clock::now();  // bgls-lint: expect(nondeterministic-source)
  auto seed = time(nullptr);  // bgls-lint: expect(nondeterministic-source)
  auto seed2 = std::time(&seed);  // bgls-lint: expect(nondeterministic-source)

  // A mention of steady_clock in a comment is not a finding, and
  // neither is one in a string literal:
  const char* doc = "uses steady_clock for telemetry";

  // Justified use carries the escape hatch (e.g. a debug-only path):
  auto ok = std::chrono::steady_clock::now();  // bgls-lint: allow(nondeterministic-source)

  // bgls-lint: allow(nondeterministic-source)
  auto ok_prev_line = std::chrono::steady_clock::now();

  // Identifiers merely containing a banned substring stay clean:
  int runtime_total = 0;
  (void)rd; (void)t0; (void)t1; (void)t2; (void)seed2; (void)doc;
  (void)ok; (void)ok_prev_line; (void)runtime_total;
}

// bgls-lint-fixture-path: src/engine/worklist_fixture.cpp
// Negative fixture: outside the serialization paths, unordered
// containers are idiomatic and must NOT be flagged.

#include <string>
#include <unordered_map>
#include <unordered_set>

struct Fixture {
  std::unordered_map<std::string, int> counts;
  std::unordered_set<int> seen;
};

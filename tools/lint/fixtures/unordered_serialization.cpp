// bgls-lint-fixture-path: src/service/report.cpp
// Seeded violations for the unordered-serialization rule: this fixture
// pretends to be a result-serializing file, where hash-order walks
// would leak into wire/cache/journal bytes.

#include <map>
#include <string>
#include <unordered_map>  // bgls-lint: expect(unordered-serialization)
#include <unordered_set>  // bgls-lint: expect(unordered-serialization)

struct Fixture {
  std::unordered_map<std::string, int> counts;  // bgls-lint: expect(unordered-serialization)
  std::unordered_set<int> seen;  // bgls-lint: expect(unordered-serialization)

  // Ordered containers are the fix, not a finding:
  std::map<std::string, int> ordered_counts;

  // A justified use (e.g. an internal index that is sorted before any
  // byte is emitted) documents itself with the escape hatch:
  std::unordered_map<std::string, int> index;  // bgls-lint: allow(unordered-serialization)
};

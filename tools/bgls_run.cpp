/// \file bgls_run.cpp
/// The `bgls_run` CLI: OpenQASM 2.0 in, histogram JSON out — the
/// smallest possible service frontend over the runtime API
/// (api/session.h). Reads a circuit, routes it through a bgls::Session
/// (automatic backend selection by default, `--backend` to force one),
/// samples it, and emits a deterministic machine-readable report.
///
///   $ bgls_run --reps 4096 --seed 7 circuit.qasm
///   $ bgls_run --backend mps --threads 8 --out result.json circuit.qasm
///   $ cat circuit.qasm | bgls_run --reps 100 -
///
/// The JSON contains only result-determining fields (seed, streams,
/// repetitions, backend, histograms, scheduling-independent counters),
/// so for a fixed seed the output is byte-identical across runs and —
/// on the engine path (--threads != 1) — across thread counts, whose
/// draws are fixed by --streams alone. --threads 1 is the classic
/// serial path, which samples from a different (single) RNG stream.
/// CI pins both with a checked-in expected file and a 2-vs-4-thread
/// diff.

#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "api/session.h"
#include "cli_flags.h"
#include "obs/exposition.h"
#include "qasm/qasm.h"
#include "service/report.h"
#include "util/cancellation.h"
#include "util/error.h"

namespace {

using namespace bgls;
using tools::parse_int_flag;
using tools::parse_u64_flag;

struct CliOptions {
  std::string input;  // path, or "-" for stdin
  std::string output;  // path, or "" for stdout
  std::string backend = "auto";
  std::uint64_t repetitions = 1024;
  std::uint64_t seed = 0;
  int threads = 1;
  std::uint64_t streams = 16;
  bool optimize = false;
  bool no_batch = false;
  std::uint64_t timeout_ms = 0;
  bool verbose = false;
  std::string metrics_json;  // "" = no dump
};

void print_usage(std::ostream& os) {
  os << "usage: bgls_run [options] <circuit.qasm | ->\n"
        "\n"
        "Samples an OpenQASM 2.0 circuit with the BGLS gate-by-gate\n"
        "sampler and prints a histogram report as JSON.\n"
        "\n"
        "options:\n"
        "  --backend NAME   auto (default), statevector/sv,\n"
        "                   densitymatrix/dm, stabilizer/ch, mps, or any\n"
        "                   name registered in the backend registry\n"
        "  --reps N         repetitions to sample (default 1024)\n"
        "  --seed N         RNG seed (default 0)\n"
        "  --threads N      worker threads; 0 = hardware concurrency.\n"
        "                   Default 1 = the classic serial path; any other\n"
        "                   value routes through the batch engine, whose\n"
        "                   output is identical for every thread count at\n"
        "                   fixed --streams (1 draws differently)\n"
        "  --streams N      deterministic RNG streams (default 16; on the\n"
        "                   engine path this, not --threads, fixes the\n"
        "                   sampled values)\n"
        "  --optimize       run optimize_for_bgls before sampling\n"
        "  --no-batch       disable dictionary batching (per-trajectory\n"
        "                   sampling; draws differ from the batched path)\n"
        "  --timeout-ms N   abort the run after N wall-clock milliseconds\n"
        "                   (exit code 3; see below). 0 = no limit\n"
        "  --out FILE       write the JSON report to FILE (default stdout)\n"
        "  --verbose        print timing/routing detail to stderr (backend,\n"
        "                   selection reason, per-phase wall times, engine\n"
        "                   counters); the stdout report stays byte-stable\n"
        "  --metrics-json FILE  dump the process telemetry registry\n"
        "                   (counters/gauges/histograms) as JSON after the\n"
        "                   run; empty when built without telemetry\n"
        "  --help           this text\n"
        "\n"
        "exit codes: 0 success, 2 usage/runtime error, 3 run cancelled\n"
        "or timed out (--timeout-ms exceeded).\n";
}

/// Parses argv; returns false (after printing usage) on --help.
bool parse_args(int argc, char** argv, CliOptions& options) {
  const auto need_value = [&](int& i, const std::string& flag) -> std::string {
    if (i + 1 >= argc) {
      detail::throw_error<ValueError>("missing value for ", flag);
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage(std::cout);
      return false;
    } else if (arg == "--backend") {
      options.backend = need_value(i, arg);
    } else if (arg == "--reps") {
      options.repetitions = parse_u64_flag(arg, need_value(i, arg));
    } else if (arg == "--seed") {
      options.seed = parse_u64_flag(arg, need_value(i, arg));
    } else if (arg == "--threads") {
      options.threads = parse_int_flag(arg, need_value(i, arg));
    } else if (arg == "--streams") {
      options.streams = parse_u64_flag(arg, need_value(i, arg));
    } else if (arg == "--optimize") {
      options.optimize = true;
    } else if (arg == "--no-batch") {
      options.no_batch = true;
    } else if (arg == "--timeout-ms") {
      options.timeout_ms = parse_u64_flag(arg, need_value(i, arg));
    } else if (arg == "--out") {
      options.output = need_value(i, arg);
    } else if (arg == "--verbose" || arg == "-v") {
      options.verbose = true;
    } else if (arg == "--metrics-json") {
      options.metrics_json = need_value(i, arg);
    } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
      detail::throw_error<ValueError>("unknown flag '", arg,
                                      "' (try --help)");
    } else {
      BGLS_REQUIRE(options.input.empty(),
                   "exactly one input circuit expected, got '", options.input,
                   "' and '", arg, "'");
      options.input = arg;
    }
  }
  BGLS_REQUIRE(!options.input.empty(),
               "no input circuit given (path or '-' for stdin; see --help)");
  return true;
}

std::string read_input(const std::string& input) {
  std::ostringstream buffer;
  if (input == "-") {
    buffer << std::cin.rdbuf();
  } else {
    std::ifstream file(input);
    BGLS_REQUIRE(file.good(), "cannot open '", input, "'");
    buffer << file.rdbuf();
  }
  return buffer.str();
}

int run_cli(const CliOptions& options) {
  const Circuit circuit = parse_qasm(read_input(options.input));

  RunRequest request = RunRequest()
                           .with_circuit(circuit)
                           .with_repetitions(options.repetitions)
                           .with_seed(options.seed)
                           .with_threads(options.threads)
                           .with_rng_streams(options.streams)
                           .with_optimization(options.optimize)
                           .with_sample_parallelization(!options.no_batch)
                           .with_deadline_ms(options.timeout_ms);
  // "auto" means kAuto (the RunRequest default); anything else is a
  // registry name — the registry owns the alias table (sv/dm/ch/...),
  // so custom backends work with no CLI changes.
  if (detail::ascii_lower(options.backend) != "auto") {
    request.with_backend(options.backend);
  }

  // The report echoes the knobs that determine the sampled records; it
  // must be built from the submitted request (Session::run consumes its
  // copy). Shared with the bgls_serve daemon, whose result endpoint is
  // byte-identical to this CLI for the same input/seed.
  const service::RunReportContext context =
      service::report_context(request, circuit.num_qubits());

  Session session;
  const RunResult result = session.run(std::move(request));

  if (options.output.empty()) {
    service::write_run_report(std::cout, context, result);
  } else {
    std::ofstream file(options.output);
    BGLS_REQUIRE(file.good(), "cannot write '", options.output, "'");
    service::write_run_report(file, context, result);
  }

  if (options.verbose) {
    // Scheduling-dependent detail goes to stderr only: the stdout
    // report stays byte-identical across runs and thread counts.
    const RunStats& stats = result.stats;
    std::cerr << "bgls_run: backend=" << result.backend_name;
    if (!result.selection_reason.empty()) {
      std::cerr << " (" << result.selection_reason << ")";
    }
    std::cerr << "\n"
              << "bgls_run: wall_ms=" << result.wall_seconds * 1000.0
              << " optimize_ms=" << stats.optimize_ms
              << " evolve_ms=" << stats.evolve_ms
              << " sample_ms=" << stats.sample_ms << "\n"
              << "bgls_run: applies=" << stats.state_applications
              << " prob_evals=" << stats.probability_evaluations
              << " max_dict=" << stats.max_dictionary_size
              << " trajectories=" << stats.trajectories
              << " threads=" << stats.threads_used << "\n";
  }
  if (!options.metrics_json.empty()) {
    std::ofstream file(options.metrics_json);
    BGLS_REQUIRE(file.good(), "cannot write '", options.metrics_json, "'");
    obs::write_metrics_json(file, Session::metrics_snapshot());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions options;
  try {
    if (!parse_args(argc, argv, options)) return 0;
    return run_cli(options);
  } catch (const bgls::CancelledError& e) {
    std::cerr << "bgls_run: " << e.what() << "\n";
    return 3;  // documented: run cancelled
  } catch (const bgls::DeadlineExceededError& e) {
    std::cerr << "bgls_run: " << e.what() << "\n";
    return 3;  // documented: --timeout-ms exceeded
  } catch (const bgls::Error& e) {
    std::cerr << "bgls_run: " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "bgls_run: " << e.what() << "\n";
    return 2;
  }
}

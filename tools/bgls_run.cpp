/// \file bgls_run.cpp
/// The `bgls_run` CLI: OpenQASM 2.0 in, histogram JSON out — the
/// smallest possible service frontend over the runtime API
/// (api/session.h). Reads a circuit, routes it through a bgls::Session
/// (automatic backend selection by default, `--backend` to force one),
/// samples it, and emits a deterministic machine-readable report.
///
///   $ bgls_run --reps 4096 --seed 7 circuit.qasm
///   $ bgls_run --backend mps --threads 8 --out result.json circuit.qasm
///   $ cat circuit.qasm | bgls_run --reps 100 -
///
/// The JSON contains only result-determining fields (seed, streams,
/// repetitions, backend, histograms, scheduling-independent counters),
/// so for a fixed seed the output is byte-identical across runs and —
/// on the engine path (--threads != 1) — across thread counts, whose
/// draws are fixed by --streams alone. --threads 1 is the classic
/// serial path, which samples from a different (single) RNG stream.
/// CI pins both with a checked-in expected file and a 2-vs-4-thread
/// diff.

#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "api/session.h"
#include "qasm/qasm.h"
#include "util/bits.h"
#include "util/error.h"
#include "util/json_writer.h"

namespace {

using namespace bgls;

struct CliOptions {
  std::string input;  // path, or "-" for stdin
  std::string output;  // path, or "" for stdout
  std::string backend = "auto";
  std::uint64_t repetitions = 1024;
  std::uint64_t seed = 0;
  int threads = 1;
  std::uint64_t streams = 16;
  bool optimize = false;
};

void print_usage(std::ostream& os) {
  os << "usage: bgls_run [options] <circuit.qasm | ->\n"
        "\n"
        "Samples an OpenQASM 2.0 circuit with the BGLS gate-by-gate\n"
        "sampler and prints a histogram report as JSON.\n"
        "\n"
        "options:\n"
        "  --backend NAME   auto (default), statevector/sv,\n"
        "                   densitymatrix/dm, stabilizer/ch, mps, or any\n"
        "                   name registered in the backend registry\n"
        "  --reps N         repetitions to sample (default 1024)\n"
        "  --seed N         RNG seed (default 0)\n"
        "  --threads N      worker threads; 0 = hardware concurrency.\n"
        "                   Default 1 = the classic serial path; any other\n"
        "                   value routes through the batch engine, whose\n"
        "                   output is identical for every thread count at\n"
        "                   fixed --streams (1 draws differently)\n"
        "  --streams N      deterministic RNG streams (default 16; on the\n"
        "                   engine path this, not --threads, fixes the\n"
        "                   sampled values)\n"
        "  --optimize       run optimize_for_bgls before sampling\n"
        "  --out FILE       write the JSON report to FILE (default stdout)\n"
        "  --help           this text\n";
}

/// Strict non-negative integer parse with the flag name in the error
/// (std::stoull alone would wrap "-1" to 2^64-1 and report failures as
/// an opaque "stoull").
std::uint64_t parse_u64_flag(const std::string& flag,
                             const std::string& text) {
  if (!text.empty() && text.find_first_not_of("0123456789") == std::string::npos) {
    try {
      return std::stoull(text);
    } catch (const std::out_of_range&) {
      // fall through to the shared error below
    }
  }
  detail::throw_error<ValueError>("invalid value '", text, "' for ", flag,
                                  " (expected a non-negative integer)");
}

int parse_int_flag(const std::string& flag, const std::string& text) {
  const std::uint64_t value = parse_u64_flag(flag, text);
  BGLS_REQUIRE(value <= 1u << 20, "value ", value, " for ", flag,
               " is out of range");
  return static_cast<int>(value);
}

/// Parses argv; returns false (after printing usage) on --help.
bool parse_args(int argc, char** argv, CliOptions& options) {
  const auto need_value = [&](int& i, const std::string& flag) -> std::string {
    if (i + 1 >= argc) {
      detail::throw_error<ValueError>("missing value for ", flag);
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage(std::cout);
      return false;
    } else if (arg == "--backend") {
      options.backend = need_value(i, arg);
    } else if (arg == "--reps") {
      options.repetitions = parse_u64_flag(arg, need_value(i, arg));
    } else if (arg == "--seed") {
      options.seed = parse_u64_flag(arg, need_value(i, arg));
    } else if (arg == "--threads") {
      options.threads = parse_int_flag(arg, need_value(i, arg));
    } else if (arg == "--streams") {
      options.streams = parse_u64_flag(arg, need_value(i, arg));
    } else if (arg == "--optimize") {
      options.optimize = true;
    } else if (arg == "--out") {
      options.output = need_value(i, arg);
    } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
      detail::throw_error<ValueError>("unknown flag '", arg,
                                      "' (try --help)");
    } else {
      BGLS_REQUIRE(options.input.empty(),
                   "exactly one input circuit expected, got '", options.input,
                   "' and '", arg, "'");
      options.input = arg;
    }
  }
  BGLS_REQUIRE(!options.input.empty(),
               "no input circuit given (path or '-' for stdin; see --help)");
  return true;
}

std::string read_input(const std::string& input) {
  std::ostringstream buffer;
  if (input == "-") {
    buffer << std::cin.rdbuf();
  } else {
    std::ifstream file(input);
    BGLS_REQUIRE(file.good(), "cannot open '", input, "'");
    buffer << file.rdbuf();
  }
  return buffer.str();
}

void write_report(std::ostream& os, const CliOptions& options,
                  const RunResult& result, int num_qubits) {
  JsonWriter json(os);
  json.begin_object();
  json.key("tool").value("bgls_run");
  json.key("backend").value(result.backend_name);
  json.key("selection_reason").value(result.selection_reason);
  json.key("num_qubits").value(num_qubits);
  json.key("repetitions").value(options.repetitions);
  json.key("seed").value(options.seed);
  json.key("rng_streams").value(options.streams);
  json.key("optimized").value(options.optimize);

  json.key("measurements").begin_array();
  for (const std::string& key : result.measurements.keys()) {
    json.begin_object();
    json.key("key").value(key);
    const auto& qubits = result.measurements.measured_qubits(key);
    json.key("qubits").begin_array();
    for (const Qubit q : qubits) json.value(q);
    json.end_array();
    json.key("histogram").begin_array();
    for (const auto& [bits, count] : result.measurements.histogram(key)) {
      json.begin_object();
      // Library convention (util/bits.h to_string, print_histogram):
      // the key's qubit 0 prints first.
      json.key("bits").value(
          to_string(bits, static_cast<int>(qubits.size())));
      json.key("value").value(bits);
      json.key("count").value(count);
      json.end_object();
    }
    json.end_array();
    json.end_object();
  }
  json.end_array();

  // Scheduling-independent counters only: the report must be
  // byte-identical across thread counts for a fixed seed.
  json.key("stats").begin_object();
  json.key("state_applications").value(result.stats.state_applications);
  json.key("probability_evaluations")
      .value(result.stats.probability_evaluations);
  json.key("max_dictionary_size").value(result.stats.max_dictionary_size);
  json.key("trajectories").value(result.stats.trajectories);
  json.key("sample_parallelization")
      .value(result.stats.used_sample_parallelization);
  json.end_object();

  json.end_object();
  os << "\n";
}

int run_cli(const CliOptions& options) {
  const Circuit circuit = parse_qasm(read_input(options.input));

  RunRequest request = RunRequest()
                           .with_circuit(circuit)
                           .with_repetitions(options.repetitions)
                           .with_seed(options.seed)
                           .with_threads(options.threads)
                           .with_rng_streams(options.streams)
                           .with_optimization(options.optimize);
  // "auto" means kAuto (the RunRequest default); anything else is a
  // registry name — the registry owns the alias table (sv/dm/ch/...),
  // so custom backends work with no CLI changes.
  if (detail::ascii_lower(options.backend) != "auto") {
    request.with_backend(options.backend);
  }

  Session session;
  const RunResult result = session.run(std::move(request));

  const int num_qubits = circuit.num_qubits();
  if (options.output.empty()) {
    write_report(std::cout, options, result, num_qubits);
  } else {
    std::ofstream file(options.output);
    BGLS_REQUIRE(file.good(), "cannot write '", options.output, "'");
    write_report(file, options, result, num_qubits);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions options;
  try {
    if (!parse_args(argc, argv, options)) return 0;
    return run_cli(options);
  } catch (const bgls::Error& e) {
    std::cerr << "bgls_run: " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "bgls_run: " << e.what() << "\n";
    return 2;
  }
}

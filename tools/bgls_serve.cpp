/// \file bgls_serve.cpp
/// The `bgls_serve` daemon: a persistent BGLS sampling service speaking
/// newline-delimited JSON over a Unix-domain or TCP socket
/// (service/daemon.h, protocol in service/protocol.h).
///
///   $ bgls_serve --listen unix:/tmp/bgls.sock
///   $ bgls_serve --listen tcp:127.0.0.1:7117 --jobs 2 --queue 128
///
/// Clients submit OpenQASM circuits with RunRequest knobs, poll or
/// stream partial histograms, cancel jobs, and read scheduler stats —
/// see `bgls_client` for a ready-made driver. Final results reuse the
/// bgls_run report schema, byte-identical to the CLI on the same
/// inputs and seeds. The process runs until a client sends the
/// `shutdown` op, SIGTERM/SIGINT arrives (graceful: stop accepting,
/// flush the journal, exit 0), or it is killed — with `--journal`, a
/// restart replays the log and resumes incomplete jobs from their last
/// checkpoint.

#include <csignal>
#include <atomic>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <thread>
#include <utility>

#include "api/session.h"
#include "cli_flags.h"
#include "obs/exposition.h"
#include "obs/log.h"
#include "service/daemon.h"
#include "util/error.h"

namespace {

using namespace bgls;
using namespace bgls::service;
using tools::parse_double_flag;
using tools::parse_tenant_flag;
using tools::parse_u64_flag;

struct ServeOptions {
  std::string listen = "unix:/tmp/bgls.sock";
  int jobs = 1;
  std::size_t queue = 64;
  std::size_t retain = 1024;
  std::string metrics_json;  // "" = no final dump
  std::string journal;      // "" = no write-ahead journal
  std::uint64_t checkpoint_every = 0;
  int retries = 0;
  std::uint64_t backoff_ms = 100;
  std::size_t cache = 0;  // result-cache entries; 0 = off
  std::map<std::string, TenantQuota> tenants;
  double max_job_seconds = 0.0;
  double max_queue_seconds = 0.0;
  std::string log_file;             // "" = log to stderr
  std::string log_level = "info";
  std::uint64_t slow_ms = 0;        // 0 = no slow-request log lines
};

/// Watches for SIGTERM/SIGINT/SIGHUP (blocked on every thread; polled
/// with sigtimedwait so the watcher can also exit on normal shutdown).
/// TERM/INT trigger the daemon's graceful-exit path; HUP reopens the
/// structured-log file so external rotation works.
class SignalWatcher {
 public:
  /// Blocks the watched signals on the calling thread. Must run before
  /// any other thread exists — masks are inherited at thread creation,
  /// and ServiceDaemon's *constructor* already spawns scheduler runner
  /// threads; a thread with the default mask is a valid delivery target
  /// whose default disposition kills the whole process.
  static void block_signals() {
    sigset_t set = watched_set();
    pthread_sigmask(SIG_BLOCK, &set, nullptr);
  }

  explicit SignalWatcher(ServiceDaemon& daemon) : set_(watched_set()) {
    pthread_sigmask(SIG_BLOCK, &set_, nullptr);
    thread_ = std::thread([this, &daemon] {
      const timespec poll_interval{0, 200 * 1000 * 1000};  // 200ms
      while (!done_.load(std::memory_order_acquire)) {
        const int sig = sigtimedwait(&set_, nullptr, &poll_interval);
        if (sig == SIGHUP) {
          obs::Logger::global().reopen();
          continue;
        }
        if (sig == SIGTERM || sig == SIGINT) {
          std::cout << "bgls_serve: caught "
                    << (sig == SIGTERM ? "SIGTERM" : "SIGINT")
                    << ", shutting down gracefully" << std::endl;
          daemon.request_shutdown();
          return;
        }
      }
    });
  }

  ~SignalWatcher() {
    done_.store(true, std::memory_order_release);
    if (thread_.joinable()) thread_.join();
  }

 private:
  static sigset_t watched_set() {
    sigset_t set;
    sigemptyset(&set);
    sigaddset(&set, SIGTERM);
    sigaddset(&set, SIGINT);
    sigaddset(&set, SIGHUP);
    return set;
  }

  sigset_t set_{};
  std::atomic<bool> done_{false};
  std::thread thread_;
};

void print_usage(std::ostream& os) {
  os << "usage: bgls_serve [options]\n"
        "\n"
        "Runs the BGLS sampling service: an ndjson request/response\n"
        "protocol over a stream socket (see README 'Service').\n"
        "\n"
        "options:\n"
        "  --listen SPEC    unix:<path> (default unix:/tmp/bgls.sock) or\n"
        "                   tcp:<host>:<port>; tcp port 0 picks an\n"
        "                   ephemeral port, printed on startup\n"
        "  --jobs N         concurrent jobs (scheduler runner threads,\n"
        "                   default 1); each job's sampling still fans\n"
        "                   out over its own --threads workers\n"
        "  --queue N        admission limit on queued jobs (default 64);\n"
        "                   beyond it submissions fail with queue_full\n"
        "  --retain N       finished jobs kept for result/stream reads\n"
        "                   (default 1024); oldest are evicted beyond it\n"
        "  --metrics-json FILE  dump the final telemetry registry as JSON\n"
        "                   at shutdown (live scrapes: {\"op\":\"metrics\"})\n"
        "  --journal FILE   write-ahead scheduler journal: every submit/\n"
        "                   terminal/checkpoint event is fsync'd before\n"
        "                   the ack; a restart replays it, answers\n"
        "                   finished jobs from the log, and resumes\n"
        "                   incomplete ones from their last checkpoint\n"
        "  --checkpoint-every N  repetitions between resumable snapshots\n"
        "                   per job (default 0 = no snapshots; incomplete\n"
        "                   jobs then re-run from scratch after a crash)\n"
        "  --retries N      re-queue transiently failed jobs up to N\n"
        "                   times with exponential backoff (default 0)\n"
        "  --backoff-ms B   retry backoff base in ms (default 100)\n"
        "  --cache N        deterministic result cache holding up to N\n"
        "                   finished results (default 0 = off); repeat\n"
        "                   submissions answer byte-identical reports\n"
        "                   without re-sampling\n"
        "  --tenant NAME=W[:Q[:R]]  per-tenant quota: weighted-fair\n"
        "                   weight W, optional queued cap Q and running\n"
        "                   cap R (repeatable; unlisted tenants get\n"
        "                   weight 1 and no caps)\n"
        "  --max-job-seconds X    reject submissions whose predicted\n"
        "                   cost exceeds X seconds (over_budget)\n"
        "  --max-queue-seconds X  reject submissions that would push the\n"
        "                   predicted queued backlog past X seconds\n"
        "  --log-file PATH  append structured ndjson log lines to PATH\n"
        "                   (default: stderr); SIGHUP reopens the file,\n"
        "                   so external rotation works\n"
        "  --log-level LVL  minimum level recorded: debug/info/warn/\n"
        "                   error (default info)\n"
        "  --slow-ms N      warn-log request lines slower than N ms,\n"
        "                   with the job's trace id (default 0 = off)\n"
        "  --help           this text\n";
}

bool parse_args(int argc, char** argv, ServeOptions& options) {
  const auto need_value = [&](int& i, const std::string& flag) -> std::string {
    if (i + 1 >= argc) {
      detail::throw_error<ValueError>("missing value for ", flag);
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage(std::cout);
      return false;
    } else if (arg == "--listen") {
      options.listen = need_value(i, arg);
    } else if (arg == "--jobs") {
      const std::uint64_t jobs = parse_u64_flag(arg, need_value(i, arg));
      BGLS_REQUIRE(jobs >= 1 && jobs <= 256, "value ", jobs, " for ", arg,
                   " is out of range");
      options.jobs = static_cast<int>(jobs);
    } else if (arg == "--queue") {
      options.queue =
          static_cast<std::size_t>(parse_u64_flag(arg, need_value(i, arg)));
    } else if (arg == "--retain") {
      options.retain =
          static_cast<std::size_t>(parse_u64_flag(arg, need_value(i, arg)));
    } else if (arg == "--metrics-json") {
      options.metrics_json = need_value(i, arg);
    } else if (arg == "--journal") {
      options.journal = need_value(i, arg);
    } else if (arg == "--checkpoint-every") {
      options.checkpoint_every = parse_u64_flag(arg, need_value(i, arg));
    } else if (arg == "--retries") {
      const std::uint64_t retries = parse_u64_flag(arg, need_value(i, arg));
      BGLS_REQUIRE(retries <= 100, "value ", retries, " for ", arg,
                   " is out of range");
      options.retries = static_cast<int>(retries);
    } else if (arg == "--backoff-ms") {
      options.backoff_ms = parse_u64_flag(arg, need_value(i, arg));
    } else if (arg == "--cache") {
      options.cache =
          static_cast<std::size_t>(parse_u64_flag(arg, need_value(i, arg)));
    } else if (arg == "--tenant") {
      options.tenants.insert(parse_tenant_flag(need_value(i, arg)));
    } else if (arg == "--max-job-seconds") {
      options.max_job_seconds = parse_double_flag(arg, need_value(i, arg));
    } else if (arg == "--max-queue-seconds") {
      options.max_queue_seconds = parse_double_flag(arg, need_value(i, arg));
    } else if (arg == "--log-file") {
      options.log_file = need_value(i, arg);
    } else if (arg == "--log-level") {
      options.log_level = need_value(i, arg);
    } else if (arg == "--slow-ms") {
      options.slow_ms = parse_u64_flag(arg, need_value(i, arg));
    } else {
      detail::throw_error<ValueError>("unknown flag '", arg,
                                      "' (try --help)");
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  ServeOptions options;
  try {
    if (!parse_args(argc, argv, options)) return 0;

    obs::LogLevel log_level = obs::LogLevel::kInfo;
    BGLS_REQUIRE(obs::parse_log_level(options.log_level, &log_level),
                 "unknown --log-level '", options.log_level,
                 "' (expected debug/info/warn/error)");
    obs::Logger::global().set_level(log_level);
    if (options.log_file.empty()) {
      obs::Logger::global().set_stderr_sink(true);
    } else {
      BGLS_REQUIRE(obs::Logger::global().open_file(options.log_file),
                   "cannot open --log-file '", options.log_file, "'");
    }

    DaemonOptions daemon_options;
    daemon_options.endpoint = Endpoint::parse(options.listen);
    daemon_options.slow_request_ms = options.slow_ms;
    daemon_options.scheduler.max_concurrent_jobs = options.jobs;
    daemon_options.scheduler.max_queue_depth = options.queue;
    daemon_options.scheduler.max_retained_jobs = options.retain;
    daemon_options.scheduler.checkpoint_every = options.checkpoint_every;
    daemon_options.scheduler.max_retries = options.retries;
    daemon_options.scheduler.backoff_base_ms = options.backoff_ms;
    daemon_options.scheduler.tenant_quotas = options.tenants;
    daemon_options.scheduler.max_job_seconds = options.max_job_seconds;
    daemon_options.scheduler.max_queue_seconds = options.max_queue_seconds;
    if (options.cache > 0) {
      ResultCacheOptions cache_options;
      cache_options.max_entries = options.cache;
      daemon_options.scheduler.result_cache =
          std::make_shared<ResultCache>(cache_options);
    }
    daemon_options.journal_path = options.journal;

    // Block the watched signals before the daemon exists: its
    // constructor spawns scheduler runner threads, and any thread
    // created with TERM/INT/HUP unblocked can receive the signal and
    // take the process down before the watcher ever sees it.
    SignalWatcher::block_signals();
    ServiceDaemon daemon(daemon_options);
    const SignalWatcher signals(daemon);
    daemon.start();
    std::cout << "bgls_serve: listening on "
              << daemon.endpoint().to_string() << " (jobs=" << options.jobs
              << ", queue=" << options.queue
              << (options.journal.empty() ? ""
                                          : ", journal=" + options.journal)
              << ")" << std::endl;
    daemon.wait_for_shutdown();
    std::cout << "bgls_serve: shutdown requested, draining" << std::endl;
    daemon.stop();
    if (!options.metrics_json.empty()) {
      // After stop(): every handler joined, so the dump sees the final
      // counters of the whole service lifetime.
      std::ofstream file(options.metrics_json);
      BGLS_REQUIRE(file.good(), "cannot write '", options.metrics_json, "'");
      obs::write_metrics_json(file, Session::metrics_snapshot());
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "bgls_serve: " << e.what() << "\n";
    return 2;
  }
}

#!/usr/bin/env bash
# End-to-end test of the real service binaries, registered with CTest
# (tools/CMakeLists.txt): starts a bgls_serve process on a private Unix
# socket, drives it with N concurrent bgls_client processes submitting
# mixed circuits, and checks the acceptance contract:
#   1. final histograms byte-identical to bgls_run on the same
#      inputs/seeds;
#   2. a cancelled job stops within bounded time and reports
#      `cancelled` (client exit code 3);
#   3. a deadline-exceeded job reports `timeout` (exit code 3);
#   4. bgls_run --timeout-ms itself exits 3;
#   5. admission/stats/shutdown endpoints work.
#
# Usage: service_e2e.sh BGLS_SERVE BGLS_CLIENT BGLS_RUN DATA_DIR WORK_DIR

set -u

SERVE="$1"; CLIENT="$2"; RUN="$3"; DATA="$4"; WORK="$5"

SOCK="/tmp/bgls_e2e_$$.sock"
CONNECT="unix:$SOCK"
mkdir -p "$WORK"
SERVE_PID=""

fail() {
  echo "FAIL: $*" >&2
  [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null
  exit 1
}

cleanup() {
  [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null
  rm -f "$SOCK"
}
trap cleanup EXIT

"$SERVE" --listen "$CONNECT" --jobs 2 --queue 32 &
SERVE_PID=$!

# Wait for the socket to appear.
for _ in $(seq 100); do
  [ -S "$SOCK" ] && break
  sleep 0.1
done
[ -S "$SOCK" ] || fail "daemon socket never appeared"

# --- 1. N concurrent clients, mixed circuits, byte-identical output ---
declare -a SPECS=(
  "ghz.qasm 4096 7"
  "ghz.qasm 2048 11"
  "x0.qasm 512 3"
  "ghz.qasm 1000 5"
)
CLIENT_PIDS=()
for i in "${!SPECS[@]}"; do
  read -r QASM REPS SEED <<< "${SPECS[$i]}"
  "$RUN" --reps "$REPS" --seed "$SEED" --out "$WORK/expected_$i.json" \
    "$DATA/$QASM" || fail "bgls_run on $QASM failed"
  "$CLIENT" --connect "$CONNECT" run --reps "$REPS" --seed "$SEED" \
    "$DATA/$QASM" > "$WORK/daemon_$i.json" &
  CLIENT_PIDS+=($!)
done
for pid in "${CLIENT_PIDS[@]}"; do
  wait "$pid" || fail "concurrent client exited non-zero"
done
for i in "${!SPECS[@]}"; do
  cmp "$WORK/daemon_$i.json" "$WORK/expected_$i.json" \
    || fail "daemon output $i differs from bgls_run"
done
echo "ok: ${#SPECS[@]} concurrent clients byte-identical to bgls_run"

# --- 2. Cancellation: bounded stop, state `cancelled`, exit code 3 ---
JOB=$("$CLIENT" --connect "$CONNECT" submit --reps 500000000 --no-batch \
  "$DATA/ghz.qasm") || fail "submit failed"
sleep 0.3
"$CLIENT" --connect "$CONNECT" cancel "$JOB" | grep -q "^cancelled" \
  || fail "cancel was not accepted"
START=$(date +%s)
"$CLIENT" --connect "$CONNECT" wait "$JOB" > /dev/null 2> "$WORK/cancel.err"
RC=$?
ELAPSED=$(( $(date +%s) - START ))
[ "$RC" -eq 3 ] || fail "cancelled wait exited $RC, want 3"
grep -q "cancelled" "$WORK/cancel.err" || fail "missing cancelled code"
[ "$ELAPSED" -le 30 ] || fail "cancellation took ${ELAPSED}s (unbounded?)"
echo "ok: cancelled job stopped in ${ELAPSED}s with exit 3"

# --- 3. Deadline: state `timeout`, exit code 3 ---
JOB=$("$CLIENT" --connect "$CONNECT" submit --reps 500000000 --no-batch \
  --deadline-ms 300 "$DATA/ghz.qasm") || fail "submit failed"
"$CLIENT" --connect "$CONNECT" wait "$JOB" > /dev/null 2> "$WORK/timeout.err"
RC=$?
[ "$RC" -eq 3 ] || fail "timed-out wait exited $RC, want 3"
grep -q "timeout" "$WORK/timeout.err" || fail "missing timeout code"
echo "ok: deadline-exceeded job reported timeout with exit 3"

# --- 4. bgls_run --timeout-ms shares the cancellation path ---
"$RUN" --reps 500000000 --no-batch --timeout-ms 300 \
  --out /dev/null "$DATA/ghz.qasm" 2> /dev/null
RC=$?
[ "$RC" -eq 3 ] || fail "bgls_run --timeout-ms exited $RC, want 3"
echo "ok: bgls_run --timeout-ms exits 3"

# --- 5. Streaming progress frames arrive before the final report ---
"$CLIENT" --connect "$CONNECT" run --reps 60000 --no-batch --seed 13 \
  --progress-every 20000 "$DATA/ghz.qasm" \
  > "$WORK/streamed.json" 2> "$WORK/progress.err" \
  || fail "streaming run failed"
PROGRESS_LINES=$(grep -c "^progress:" "$WORK/progress.err")
[ "$PROGRESS_LINES" -ge 3 ] || fail "expected >=3 progress lines, got $PROGRESS_LINES"
echo "ok: streaming emitted $PROGRESS_LINES progress frames"

# --- 6. Stats + shutdown ---
"$CLIENT" --connect "$CONNECT" stats > "$WORK/stats.txt" \
  || fail "stats failed"
grep -q "cancelled=1" "$WORK/stats.txt" || fail "stats missing cancelled=1"
grep -q "timed_out=1" "$WORK/stats.txt" || fail "stats missing timed_out=1"
"$CLIENT" --connect "$CONNECT" shutdown > /dev/null || fail "shutdown failed"
wait "$SERVE_PID" || fail "daemon exited non-zero"
SERVE_PID=""
echo "ok: stats consistent, daemon drained cleanly"

echo "PASS: service end-to-end"
exit 0

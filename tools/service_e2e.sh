#!/usr/bin/env bash
# End-to-end test of the real service binaries, registered with CTest
# (tools/CMakeLists.txt): starts a bgls_serve process on a private Unix
# socket, drives it with N concurrent bgls_client processes submitting
# mixed circuits, and checks the acceptance contract:
#   1. final histograms byte-identical to bgls_run on the same
#      inputs/seeds;
#   2. a cancelled job stops within bounded time and reports
#      `cancelled` (client exit code 3);
#   3. a deadline-exceeded job reports `timeout` (exit code 3);
#   4. bgls_run --timeout-ms itself exits 3;
#   5. admission/stats/shutdown endpoints work;
#   6. the {"op":"metrics"} endpoint serves Prometheus exposition with
#      scheduler/engine/kernel/daemon series, monotonic across scrapes
#      (skipped when the build compiled telemetry out);
#   7. crash recovery: a daemon with --journal is kill -9'd mid-flood
#      (with torn journal writes injected via BGLS_FAULT_INJECT), a
#      fresh daemon replays the same journal, resumes the incomplete
#      job from its checkpoint, and every job's final report is still
#      byte-identical to bgls_run; journal/resume telemetry is scraped.
#
#   8. fleet serving (when a BGLS_FLEET binary is passed): two workers
#      with result caches behind one bgls_fleet front; concurrent
#      multi-tenant clients byte-identical to bgls_run; a repeat
#      submission answered from a worker's cache byte-identically; a
#      worker kill -9'd mid-flood (the fleet keeps serving on the
#      survivor) and brought back in, rejoining via health checks.
#
#   9. distributed tracing (fleet builds with telemetry): a job
#      submitted through the fleet with a fixed --trace-id yields a
#      single merged span tree (fleet.place/fleet.proxy -> worker
#      queue/run -> engine sample/shard) from the trace op, exported
#      as valid Chrome trace-event JSON; the workers' --slow-ms 1
#      warn-logs carry that trace id (logs op + --log-file ndjson);
#      the fleet metrics op aggregates worker scrapes under worker="N"
#      labels.
#
# Usage: service_e2e.sh BGLS_SERVE BGLS_CLIENT BGLS_RUN DATA_DIR WORK_DIR
#        [BGLS_FLEET]

set -u

SERVE="$1"; CLIENT="$2"; RUN="$3"; DATA="$4"; WORK="$5"; FLEET="${6:-}"

SOCK="/tmp/bgls_e2e_$$.sock"
CONNECT="unix:$SOCK"
mkdir -p "$WORK"
SERVE_PID=""
JSERVE_PID=""
W1_PID=""
W2_PID=""
FLEET_PID=""

fail() {
  echo "FAIL: $*" >&2
  [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null
  [ -n "$JSERVE_PID" ] && kill "$JSERVE_PID" 2>/dev/null
  [ -n "$W1_PID" ] && kill "$W1_PID" 2>/dev/null
  [ -n "$W2_PID" ] && kill "$W2_PID" 2>/dev/null
  [ -n "$FLEET_PID" ] && kill "$FLEET_PID" 2>/dev/null
  exit 1
}

cleanup() {
  [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null
  [ -n "$JSERVE_PID" ] && kill "$JSERVE_PID" 2>/dev/null
  [ -n "$W1_PID" ] && kill "$W1_PID" 2>/dev/null
  [ -n "$W2_PID" ] && kill "$W2_PID" 2>/dev/null
  [ -n "$FLEET_PID" ] && kill "$FLEET_PID" 2>/dev/null
  rm -f "$SOCK" "/tmp/bgls_e2e_j$$.sock" \
    "/tmp/bgls_e2e_w1_$$.sock" "/tmp/bgls_e2e_w2_$$.sock" \
    "/tmp/bgls_e2e_front_$$.sock"
}
trap cleanup EXIT

wait_socket() {
  for _ in $(seq 100); do
    [ -S "$1" ] && return 0
    sleep 0.1
  done
  return 1
}

"$SERVE" --listen "$CONNECT" --jobs 2 --queue 32 &
SERVE_PID=$!

# Wait for the socket to appear.
for _ in $(seq 100); do
  [ -S "$SOCK" ] && break
  sleep 0.1
done
[ -S "$SOCK" ] || fail "daemon socket never appeared"

# --- 1. N concurrent clients, mixed circuits, byte-identical output ---
declare -a SPECS=(
  "ghz.qasm 4096 7"
  "ghz.qasm 2048 11"
  "x0.qasm 512 3"
  "ghz.qasm 1000 5"
)
CLIENT_PIDS=()
for i in "${!SPECS[@]}"; do
  read -r QASM REPS SEED <<< "${SPECS[$i]}"
  "$RUN" --reps "$REPS" --seed "$SEED" --out "$WORK/expected_$i.json" \
    "$DATA/$QASM" || fail "bgls_run on $QASM failed"
  "$CLIENT" --connect "$CONNECT" run --reps "$REPS" --seed "$SEED" \
    "$DATA/$QASM" > "$WORK/daemon_$i.json" &
  CLIENT_PIDS+=($!)
done
for pid in "${CLIENT_PIDS[@]}"; do
  wait "$pid" || fail "concurrent client exited non-zero"
done
for i in "${!SPECS[@]}"; do
  cmp "$WORK/daemon_$i.json" "$WORK/expected_$i.json" \
    || fail "daemon output $i differs from bgls_run"
done
echo "ok: ${#SPECS[@]} concurrent clients byte-identical to bgls_run"

# --- 1b. Engine-path job: 12 qubits (big enough for the timed kernel
# histograms) on --threads 2, forced onto the statevector backend (GHZ
# is pure Clifford, so auto-selection would route it to the stabilizer
# backend and never touch the statevector kernels), so the engine and
# kernel telemetry series scraped in section 6 are populated ---
{
  echo 'OPENQASM 2.0;'
  echo 'include "qelib1.inc";'
  echo 'qreg q[12];'
  echo 'creg c[12];'
  echo 'h q[0];'
  for q in $(seq 1 11); do echo "cx q[0],q[$q];"; done
  echo 'measure q -> c;'
} > "$WORK/ghz12.qasm"
"$CLIENT" --connect "$CONNECT" run --reps 256 --seed 9 --threads 2 \
  --backend sv "$WORK/ghz12.qasm" > /dev/null \
  || fail "engine-path job failed"
echo "ok: engine-path job (12 qubits, 2 threads) completed"

# --- 2. Cancellation: bounded stop, state `cancelled`, exit code 3 ---
JOB=$("$CLIENT" --connect "$CONNECT" submit --reps 500000000 --no-batch \
  "$DATA/ghz.qasm") || fail "submit failed"
sleep 0.3
# Mid-flood scrape: the blocker job is running right now.
"$CLIENT" --connect "$CONNECT" metrics > "$WORK/metrics_mid.txt" \
  || fail "mid-flood metrics scrape failed"
"$CLIENT" --connect "$CONNECT" cancel "$JOB" | grep -q "^cancelled" \
  || fail "cancel was not accepted"
START=$(date +%s)
"$CLIENT" --connect "$CONNECT" wait "$JOB" > /dev/null 2> "$WORK/cancel.err"
RC=$?
ELAPSED=$(( $(date +%s) - START ))
[ "$RC" -eq 3 ] || fail "cancelled wait exited $RC, want 3"
grep -q "cancelled" "$WORK/cancel.err" || fail "missing cancelled code"
[ "$ELAPSED" -le 30 ] || fail "cancellation took ${ELAPSED}s (unbounded?)"
echo "ok: cancelled job stopped in ${ELAPSED}s with exit 3"

# --- 3. Deadline: state `timeout`, exit code 3 ---
JOB=$("$CLIENT" --connect "$CONNECT" submit --reps 500000000 --no-batch \
  --deadline-ms 300 "$DATA/ghz.qasm") || fail "submit failed"
"$CLIENT" --connect "$CONNECT" wait "$JOB" > /dev/null 2> "$WORK/timeout.err"
RC=$?
[ "$RC" -eq 3 ] || fail "timed-out wait exited $RC, want 3"
grep -q "timeout" "$WORK/timeout.err" || fail "missing timeout code"
echo "ok: deadline-exceeded job reported timeout with exit 3"

# --- 4. bgls_run --timeout-ms shares the cancellation path ---
"$RUN" --reps 500000000 --no-batch --timeout-ms 300 \
  --out /dev/null "$DATA/ghz.qasm" 2> /dev/null
RC=$?
[ "$RC" -eq 3 ] || fail "bgls_run --timeout-ms exited $RC, want 3"
echo "ok: bgls_run --timeout-ms exits 3"

# --- 5. Streaming progress frames arrive before the final report ---
"$CLIENT" --connect "$CONNECT" run --reps 60000 --no-batch --seed 13 \
  --progress-every 20000 "$DATA/ghz.qasm" \
  > "$WORK/streamed.json" 2> "$WORK/progress.err" \
  || fail "streaming run failed"
PROGRESS_LINES=$(grep -c "^progress:" "$WORK/progress.err")
[ "$PROGRESS_LINES" -ge 3 ] || fail "expected >=3 progress lines, got $PROGRESS_LINES"
echo "ok: streaming emitted $PROGRESS_LINES progress frames"

# --- 6. Metrics exposition: core series present and monotonic ---
"$CLIENT" --connect "$CONNECT" metrics > "$WORK/metrics_end.txt" \
  || fail "metrics scrape failed"
if grep -q "telemetry compiled out" "$WORK/metrics_end.txt"; then
  echo "ok: telemetry compiled out; skipping metrics assertions"
else
  # Counter/gauge series land verbatim; histograms via their _count.
  for series in \
    'bgls_scheduler_submitted_total' \
    'bgls_scheduler_queue_depth' \
    'bgls_scheduler_running' \
    'bgls_scheduler_queue_wait_seconds_count' \
    'bgls_scheduler_run_seconds_count' \
    'bgls_scheduler_cancel_latency_seconds_count' \
    'bgls_scheduler_jobs_total{state="done"}' \
    'bgls_scheduler_jobs_total{state="cancelled"}' \
    'bgls_engine_runs_total' \
    'bgls_engine_shards_total' \
    'bgls_engine_shard_seconds_count' \
    'bgls_pool_tasks_total' \
    'bgls_pool_active_workers' \
    'bgls_kernel_apply_total{class="dense"}' \
    'bgls_kernel_apply_seconds_count{class="dense"}' \
    'bgls_daemon_requests_total{op="submit"}' \
    'bgls_daemon_requests_total{op="metrics"}' \
    'bgls_daemon_request_seconds_count' \
    'bgls_daemon_connections_total'; do
    grep -q "^$series " "$WORK/metrics_end.txt" \
      || fail "metrics missing series $series"
  done
  series_value() { awk -v s="$2" '$1 == s {print $2}' "$1"; }
  MID_DONE=$(series_value "$WORK/metrics_mid.txt" \
    'bgls_scheduler_jobs_total{state="done"}')
  END_DONE=$(series_value "$WORK/metrics_end.txt" \
    'bgls_scheduler_jobs_total{state="done"}')
  [ -n "$MID_DONE" ] && [ -n "$END_DONE" ] \
    || fail "could not read jobs_total{state=done} from the scrapes"
  [ "$MID_DONE" -ge 5 ] || fail "mid-flood done=$MID_DONE, want >=5"
  [ "$END_DONE" -ge "$MID_DONE" ] \
    || fail "done went backwards: $MID_DONE -> $END_DONE"
  MID_SUBMIT=$(series_value "$WORK/metrics_mid.txt" \
    'bgls_daemon_requests_total{op="submit"}')
  END_SUBMIT=$(series_value "$WORK/metrics_end.txt" \
    'bgls_daemon_requests_total{op="submit"}')
  [ "$END_SUBMIT" -ge "$MID_SUBMIT" ] \
    || fail "submit requests went backwards: $MID_SUBMIT -> $END_SUBMIT"
  APPLIES=$(series_value "$WORK/metrics_end.txt" \
    'bgls_kernel_apply_seconds_count{class="dense"}')
  [ "$APPLIES" -gt 0 ] \
    || fail "no timed dense kernel applies despite the 12-qubit job"
  echo "ok: metrics exposition has core series, monotonic ($MID_DONE -> $END_DONE done)"
fi

# --- 7. Stats + shutdown ---
"$CLIENT" --connect "$CONNECT" stats > "$WORK/stats.txt" \
  || fail "stats failed"
grep -q "cancelled=1" "$WORK/stats.txt" || fail "stats missing cancelled=1"
grep -q "timed_out=1" "$WORK/stats.txt" || fail "stats missing timed_out=1"
"$CLIENT" --connect "$CONNECT" shutdown > /dev/null || fail "shutdown failed"
wait "$SERVE_PID" || fail "daemon exited non-zero"
SERVE_PID=""
echo "ok: stats consistent, daemon drained cleanly"

# --- 8. Crash recovery: kill -9 mid-flood, restart on the same journal ---
JSOCK="/tmp/bgls_e2e_j$$.sock"
JCONNECT="unix:$JSOCK"
JOURNAL="$WORK/journal.ndjson"
# Torn journal appends injected at 2% probability: submits see retryable
# journal_error responses (the clients' --retries absorbs them) and the
# replay below must skip the torn lines.
BGLS_FAULT_INJECT="journal_write:0.02:42" \
  "$SERVE" --listen "$JCONNECT" --jobs 2 --journal "$JOURNAL" \
  --checkpoint-every 100000 --retries 3 --backoff-ms 10 &
JSERVE_PID=$!
for _ in $(seq 100); do
  [ -S "$JSOCK" ] && break
  sleep 0.1
done
[ -S "$JSOCK" ] || fail "journaled daemon socket never appeared"

# Short jobs that finish before the kill (answered from the journal
# after the restart) ...
JOB_IDS=()
for i in "${!SPECS[@]}"; do
  read -r QASM REPS SEED <<< "${SPECS[$i]}"
  ID=$("$CLIENT" --connect "$JCONNECT" --retries 5 --backoff-ms 50 \
    submit --reps "$REPS" --seed "$SEED" "$DATA/$QASM") \
    || fail "journaled submit $i failed"
  JOB_IDS+=("$ID")
done
for ID in "${JOB_IDS[@]}"; do
  "$CLIENT" --connect "$JCONNECT" --retries 5 --backoff-ms 50 \
    wait "$ID" > /dev/null || fail "journaled wait $ID failed"
done
# ... and one long job the kill lands in the middle of (~2-3s of work,
# well past several checkpoint boundaries).
"$RUN" --reps 3000000 --no-batch --seed 23 --out "$WORK/expected_long.json" \
  "$DATA/ghz.qasm" || fail "bgls_run for the long job failed"
LONG_ID=$("$CLIENT" --connect "$JCONNECT" --retries 5 --backoff-ms 50 \
  submit --reps 3000000 --no-batch --seed 23 "$DATA/ghz.qasm") \
  || fail "long submit failed"
# Kill only after the *long job* has journaled a checkpoint, so the
# restart genuinely resumes instead of rerunning from scratch. A fixed
# sleep is wrong twice: sanitizer builds may not reach the first
# checkpoint boundary in time, fast builds may finish the job outright.
# The match must be specific twice over: batched short jobs journal
# initial/final checkpoints immediately (any-checkpoint matching kills
# before the long job has one), and a torn append (fault injection or
# the kill itself) can grep-match yet fail CRC at replay — so require
# the long job's id and the closing braces of a complete frame.
CKPT_RE='"type":"checkpoint","job":'"$LONG_ID"',"data".*\}\}\}$'
for _ in $(seq 300); do
  grep -Eq "$CKPT_RE" "$JOURNAL" 2>/dev/null && break
  sleep 0.1
done
grep -Eq "$CKPT_RE" "$JOURNAL" \
  || fail "long job never journaled a checkpoint"

kill -9 "$JSERVE_PID" 2>/dev/null
wait "$JSERVE_PID" 2>/dev/null
echo "ok: journaled daemon killed -9 mid-job (journal: $(wc -l < "$JOURNAL") lines)"

# Restart on the same journal and socket: replay answers the finished
# jobs from the log and re-enqueues the long job from its checkpoint.
"$SERVE" --listen "$JCONNECT" --jobs 2 --journal "$JOURNAL" \
  --checkpoint-every 100000 --retries 3 --backoff-ms 10 &
JSERVE_PID=$!
for _ in $(seq 100); do
  [ -S "$JSOCK" ] && break
  sleep 0.1
done
[ -S "$JSOCK" ] || fail "restarted daemon socket never appeared"

for i in "${!SPECS[@]}"; do
  "$CLIENT" --connect "$JCONNECT" --retries 5 --backoff-ms 50 \
    result "${JOB_IDS[$i]}" > "$WORK/replayed_$i.json" \
    || fail "replayed result ${JOB_IDS[$i]} failed"
  cmp "$WORK/replayed_$i.json" "$WORK/expected_$i.json" \
    || fail "replayed job $i differs from bgls_run"
done
"$CLIENT" --connect "$JCONNECT" --retries 5 --backoff-ms 50 \
  wait "$LONG_ID" > "$WORK/resumed_long.json" \
  || fail "resumed long job failed"
cmp "$WORK/resumed_long.json" "$WORK/expected_long.json" \
  || fail "resumed long job differs from bgls_run"
echo "ok: ${#SPECS[@]} journal-replayed + 1 checkpoint-resumed job byte-identical"

"$CLIENT" --connect "$JCONNECT" metrics > "$WORK/metrics_journal.txt" \
  || fail "journal metrics scrape failed"
if ! grep -q "telemetry compiled out" "$WORK/metrics_journal.txt"; then
  for series in \
    'bgls_journal_records_total' \
    'bgls_journal_replay_seconds_count' \
    'bgls_jobs_resumed_total' \
    'bgls_jobs_retried_total' \
    'bgls_scheduler_preempted_total'; do
    grep -q "^$series " "$WORK/metrics_journal.txt" \
      || fail "metrics missing series $series"
  done
  series_value() { awk -v s="$2" '$1 == s {print $2}' "$1"; }
  RECORDS=$(series_value "$WORK/metrics_journal.txt" \
    'bgls_journal_records_total')
  [ "${RECORDS%.*}" -gt 0 ] || fail "journal_records_total=$RECORDS, want >0"
  REPLAYS=$(series_value "$WORK/metrics_journal.txt" \
    'bgls_journal_replay_seconds_count')
  [ "${REPLAYS%.*}" -ge 1 ] || fail "replay count=$REPLAYS, want >=1"
  RESUMED=$(series_value "$WORK/metrics_journal.txt" \
    'bgls_jobs_resumed_total')
  [ "${RESUMED%.*}" -ge 1 ] || fail "jobs_resumed_total=$RESUMED, want >=1"
  echo "ok: journal telemetry ($RECORDS records, $RESUMED resumed)"
fi

"$CLIENT" --connect "$JCONNECT" shutdown > /dev/null \
  || fail "journaled daemon shutdown failed"
wait "$JSERVE_PID" || fail "journaled daemon exited non-zero"
JSERVE_PID=""
rm -f "$JSOCK"

# --- 9. Fleet: 2 cached workers behind one front, multi-tenant flood,
# cache-hit byte-identity, worker failure + rejoin ---
if [ -n "$FLEET" ]; then
  W1SOCK="/tmp/bgls_e2e_w1_$$.sock"
  W2SOCK="/tmp/bgls_e2e_w2_$$.sock"
  FSOCK="/tmp/bgls_e2e_front_$$.sock"
  FCONNECT="unix:$FSOCK"

  # --slow-ms 1 + --log-file: every non-trivial request warn-logs a
  # "slow request" ndjson line tagged with the job's trace id, which
  # section 9 asserts; --log-file appends, so worker 2's restart keeps
  # writing to the same file.
  start_worker1() {
    "$SERVE" --listen "unix:$W1SOCK" --jobs 2 --cache 64 \
      --tenant 'acme=2' --tenant 'blue=1' \
      --slow-ms 1 --log-file "$WORK/worker1.log" &
    W1_PID=$!
    wait_socket "$W1SOCK" || fail "worker 1 socket never appeared"
  }
  start_worker2() {
    "$SERVE" --listen "unix:$W2SOCK" --jobs 2 --cache 64 \
      --tenant 'acme=2' --tenant 'blue=1' \
      --slow-ms 1 --log-file "$WORK/worker2.log" &
    W2_PID=$!
    wait_socket "$W2SOCK" || fail "worker 2 socket never appeared"
  }
  start_worker1
  start_worker2
  "$FLEET" --listen "$FCONNECT" --worker "unix:$W1SOCK" \
    --worker "unix:$W2SOCK" --health-interval-ms 100 \
    --slow-ms 1 --log-file "$WORK/fleet.log" &
  FLEET_PID=$!
  wait_socket "$FSOCK" || fail "fleet socket never appeared"

  # Concurrent multi-tenant clients through the fleet: placement is
  # invisible because sampling is deterministic — every worker returns
  # the byte-identical bgls_run report.
  TENANTS=(acme blue acme blue)
  FLEET_PIDS=()
  for i in "${!SPECS[@]}"; do
    read -r QASM REPS SEED <<< "${SPECS[$i]}"
    "$CLIENT" --connect "$FCONNECT" run --reps "$REPS" --seed "$SEED" \
      --tenant "${TENANTS[$i]}" "$DATA/$QASM" > "$WORK/fleet_$i.json" &
    FLEET_PIDS+=($!)
  done
  for pid in "${FLEET_PIDS[@]}"; do
    wait "$pid" || fail "fleet client exited non-zero"
  done
  for i in "${!SPECS[@]}"; do
    cmp "$WORK/fleet_$i.json" "$WORK/expected_$i.json" \
      || fail "fleet output $i differs from bgls_run"
  done
  echo "ok: ${#SPECS[@]} multi-tenant fleet clients byte-identical to bgls_run"

  # Cache-hit byte-identity, pinned against a single worker: the repeat
  # submission must be answered from the result cache (cache_hits
  # advances) and the report must be byte-identical without re-sampling.
  "$CLIENT" --connect "unix:$W1SOCK" run --reps 4096 --seed 7 \
    "$DATA/ghz.qasm" > "$WORK/cache_first.json" || fail "cache prime failed"
  "$CLIENT" --connect "unix:$W1SOCK" run --reps 4096 --seed 7 \
    "$DATA/ghz.qasm" > "$WORK/cache_second.json" || fail "cache hit failed"
  cmp "$WORK/cache_first.json" "$WORK/cache_second.json" \
    || fail "cache hit not byte-identical"
  cmp "$WORK/cache_first.json" "$WORK/expected_0.json" \
    || fail "cached report differs from bgls_run"
  "$CLIENT" --connect "unix:$W1SOCK" stats > "$WORK/cache_stats.txt" \
    || fail "worker stats failed"
  grep -Eq "cache_hits=[1-9]" "$WORK/cache_stats.txt" \
    || fail "worker reported no cache hits: $(cat "$WORK/cache_stats.txt")"
  echo "ok: repeat submission answered from the cache byte-identically"

  # The fleet op reports both workers; drain/undrain round-trips.
  "$CLIENT" --connect "$FCONNECT" raw '{"op":"fleet"}' > "$WORK/fleet_op.json"
  grep -q '"workers"' "$WORK/fleet_op.json" || fail "fleet op malformed"
  "$CLIENT" --connect "$FCONNECT" raw '{"op":"drain","worker":1}' \
    | grep -q '"ok":true' || fail "drain rejected"
  "$CLIENT" --connect "$FCONNECT" raw '{"op":"undrain","worker":1}' \
    | grep -q '"ok":true' || fail "undrain rejected"

  # Kill worker 2 mid-flood: the fleet must keep serving on worker 1.
  kill -9 "$W2_PID" 2>/dev/null
  wait "$W2_PID" 2>/dev/null
  W2_PID=""
  SURVIVOR_PIDS=()
  for i in "${!SPECS[@]}"; do
    read -r QASM REPS SEED <<< "${SPECS[$i]}"
    "$CLIENT" --connect "$FCONNECT" --retries 5 --backoff-ms 50 \
      run --reps "$REPS" --seed "$SEED" --tenant "${TENANTS[$i]}" \
      "$DATA/$QASM" > "$WORK/survivor_$i.json" &
    SURVIVOR_PIDS+=($!)
  done
  for pid in "${SURVIVOR_PIDS[@]}"; do
    wait "$pid" || fail "client failed while a worker was down"
  done
  for i in "${!SPECS[@]}"; do
    cmp "$WORK/survivor_$i.json" "$WORK/expected_$i.json" \
      || fail "survivor output $i differs from bgls_run"
  done
  echo "ok: fleet served ${#SPECS[@]} jobs byte-identically with a worker down"

  # Bring worker 2 back on the same socket: the health thread must mark
  # it alive again and the fleet keeps answering.
  rm -f "$W2SOCK"
  start_worker2
  REJOINED=0
  for _ in $(seq 50); do
    "$CLIENT" --connect "$FCONNECT" raw '{"op":"fleet"}' \
      > "$WORK/fleet_rejoin.json" 2>/dev/null
    if grep -q '"alive":true.*"alive":true' "$WORK/fleet_rejoin.json"; then
      REJOINED=1
      break
    fi
    sleep 0.1
  done
  [ "$REJOINED" -eq 1 ] || fail "worker 2 never rejoined after restart"
  "$CLIENT" --connect "$FCONNECT" run --reps 512 --seed 3 \
    --tenant blue "$DATA/x0.qasm" > "$WORK/rejoin_run.json" \
    || fail "post-rejoin run failed"
  cmp "$WORK/rejoin_run.json" "$WORK/expected_2.json" \
    || fail "post-rejoin output differs from bgls_run"
  echo "ok: killed worker rejoined via health checks"

  # --- 9. Distributed tracing: fixed trace id through the fleet ---
  "$CLIENT" --connect "$FCONNECT" metrics > "$WORK/fleet_metrics.txt" \
    || fail "fleet metrics scrape failed"
  if grep -q "telemetry compiled out" "$WORK/fleet_metrics.txt"; then
    echo "ok: telemetry compiled out; skipping tracing assertions"
  else
    # The fleet metrics op merges each live worker's scrape under a
    # worker="N" label, after the fleet's own (unlabeled) series.
    grep -q 'worker="0"' "$WORK/fleet_metrics.txt" \
      || fail 'fleet metrics missing worker="0" series'
    grep -q 'worker="1"' "$WORK/fleet_metrics.txt" \
      || fail 'fleet metrics missing worker="1" series'
    grep -q '^bgls_fleet_' "$WORK/fleet_metrics.txt" \
      || fail "fleet metrics missing the front's own series"

    TRACE_ID=424242
    # --threads 2 forces the batch-engine path so the tree reaches the
    # shard spans; reps sized so the job takes real wall time and the
    # blocking wait — on the worker and on the fleet proxying it —
    # crosses the --slow-ms 1 threshold (batched sampling clears
    # ~200k reps in under a millisecond).
    TJOB=$("$CLIENT" --connect "$FCONNECT" submit --reps 20000000 --seed 7 \
      --threads 2 --trace-id "$TRACE_ID" "$DATA/ghz.qasm") \
      || fail "traced submit failed"
    "$CLIENT" --connect "$FCONNECT" wait "$TJOB" > /dev/null \
      || fail "traced wait failed"

    # One merged span tree, stitched fleet -> worker -> engine, plus
    # the Chrome trace-event export.
    "$CLIENT" --connect "$FCONNECT" trace "$TJOB" \
      --chrome-trace "$WORK/trace_chrome.json" > "$WORK/trace_tree.txt" \
      || fail "trace op failed"
    for span in 'fleet.place (' 'fleet.proxy (' 'queue (' 'run (' \
                'sample (' 'shard\['; do
      grep -q -- "- $span" "$WORK/trace_tree.txt" \
        || fail "trace tree missing span '$span': $(cat "$WORK/trace_tree.txt")"
    done
    python3 - "$WORK/trace_chrome.json" <<'PY' \
      || fail "chrome trace export is not valid"
import json, sys
doc = json.load(open(sys.argv[1]))
events = doc["traceEvents"]
assert events, "no trace events"
names = {e["name"] for e in events}
assert "fleet.place" in names and "run" in names, sorted(names)
assert all(e["ph"] == "X" and "dur" in e for e in events)
PY
    echo "ok: merged trace tree + Chrome export for trace_id=$TRACE_ID"

    # The slow-request warn lines carry the propagated trace id, both
    # over the logs op (ring tail) and in the --log-file ndjson.
    : > "$WORK/traced_logs.txt"
    for LSOCK in "$FCONNECT" "unix:$W1SOCK" "unix:$W2SOCK"; do
      "$CLIENT" --connect "$LSOCK" logs --level warn \
        --trace-id "$TRACE_ID" >> "$WORK/traced_logs.txt" \
        || fail "logs op failed on $LSOCK"
    done
    grep -q "slow request" "$WORK/traced_logs.txt" \
      || fail "no slow-request log line carries trace_id=$TRACE_ID"
    grep -h "\"trace_id\":$TRACE_ID" \
      "$WORK/fleet.log" "$WORK/worker1.log" "$WORK/worker2.log" \
      2>/dev/null | grep -q "slow request" \
      || fail "--log-file ndjson missing the traced slow-request line"
    echo "ok: slow-request logs tagged with trace_id=$TRACE_ID"
  fi

  "$CLIENT" --connect "$FCONNECT" shutdown > /dev/null \
    || fail "fleet shutdown failed"
  wait "$FLEET_PID" || fail "fleet exited non-zero"
  FLEET_PID=""
  # Workers have their own lifecycles: still alive after fleet shutdown.
  kill -0 "$W1_PID" 2>/dev/null || fail "fleet shutdown killed worker 1"
  "$CLIENT" --connect "unix:$W1SOCK" shutdown > /dev/null \
    || fail "worker 1 shutdown failed"
  wait "$W1_PID" || fail "worker 1 exited non-zero"
  W1_PID=""
  "$CLIENT" --connect "unix:$W2SOCK" shutdown > /dev/null \
    || fail "worker 2 shutdown failed"
  wait "$W2_PID" || fail "worker 2 exited non-zero"
  W2_PID=""
  echo "ok: fleet front drained; workers outlived it"
fi

echo "PASS: service end-to-end"
exit 0

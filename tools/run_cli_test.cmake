# CTest script driving the bgls_run CLI end to end:
#  1. sample the checked-in QASM circuit (automatic backend selection)
#     and require byte-identical output against the recorded expectation;
#  2. sample it again through the statevector backend at two different
#     thread counts and require the two reports to be byte-identical
#     (the engine's determinism guarantee, visible at the CLI surface).
#
# Variables: BGLS_RUN, QASM, EXPECTED, WORK_DIR.

function(run_bgls_run out_file)
  execute_process(
    COMMAND ${BGLS_RUN} ${ARGN} --out ${out_file} ${QASM}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE stdout
    ERROR_VARIABLE stderr)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
      "bgls_run ${ARGN} failed (exit ${rc}):\n${stdout}\n${stderr}")
  endif()
endfunction()

# 1. Round trip against the recorded expectation (auto-selected backend).
run_bgls_run(${WORK_DIR}/cli_auto.json --reps 4096 --seed 7)
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          ${WORK_DIR}/cli_auto.json ${EXPECTED}
  RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
  file(READ ${WORK_DIR}/cli_auto.json actual)
  message(FATAL_ERROR
    "bgls_run output differs from ${EXPECTED}; got:\n${actual}")
endif()

# 2. Bitstring rendering follows the library convention (qubit 0
#    first, matching util/bits.h to_string and print_histogram): the
#    deterministic |10⟩ outcome of `x q[0]` must print as "10".
get_filename_component(data_dir ${QASM} DIRECTORY)
execute_process(
  COMMAND ${BGLS_RUN} --reps 16 --seed 1 --out ${WORK_DIR}/cli_x0.json
          ${data_dir}/x0.qasm
  RESULT_VARIABLE rc_x0)
if(NOT rc_x0 EQUAL 0)
  message(FATAL_ERROR "bgls_run on x0.qasm failed (exit ${rc_x0})")
endif()
file(READ ${WORK_DIR}/cli_x0.json x0_report)
string(FIND "${x0_report}" "\"bits\": \"10\"" bits_pos)
if(bits_pos EQUAL -1)
  message(FATAL_ERROR
    "bgls_run bit rendering broke the qubit-0-first convention; got:\n"
    "${x0_report}")
endif()

# 3. Thread-count invariance through the statevector engine path.
run_bgls_run(${WORK_DIR}/cli_sv_t2.json
             --backend sv --threads 2 --streams 8 --reps 4096 --seed 11)
run_bgls_run(${WORK_DIR}/cli_sv_t4.json
             --backend sv --threads 4 --streams 8 --reps 4096 --seed 11)
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          ${WORK_DIR}/cli_sv_t2.json ${WORK_DIR}/cli_sv_t4.json
  RESULT_VARIABLE diff_threads)
if(NOT diff_threads EQUAL 0)
  message(FATAL_ERROR
    "bgls_run statevector output changed with the thread count "
    "(2 vs 4 workers) — the determinism contract is broken")
endif()

/// \file cli_flags.h
/// Strict flag-value parsing shared by the CLI tools (bgls_run,
/// bgls_serve, bgls_client) so the validation rules cannot diverge:
/// std::stoull alone would wrap "-1" to 2^64-1 and report failures as
/// an opaque "stoull" — these helpers reject with the flag name.

#pragma once

#include <cstdint>
#include <string>

#include "util/error.h"

namespace bgls::tools {

/// Strict non-negative integer parse with the flag name in the error.
inline std::uint64_t parse_u64_flag(const std::string& flag,
                                    const std::string& text) {
  if (!text.empty() &&
      text.find_first_not_of("0123456789") == std::string::npos) {
    try {
      return std::stoull(text);
    } catch (const std::out_of_range&) {
      // fall through to the shared error below
    }
  }
  detail::throw_error<ValueError>("invalid value '", text, "' for ", flag,
                                  " (expected a non-negative integer)");
}

/// parse_u64_flag clamped into a sane non-negative int range.
inline int parse_int_flag(const std::string& flag, const std::string& text) {
  const std::uint64_t value = parse_u64_flag(flag, text);
  BGLS_REQUIRE(value <= 1u << 20, "value ", value, " for ", flag,
               " is out of range");
  return static_cast<int>(value);
}

/// Like parse_int_flag but accepting a leading '-' (priorities).
inline int parse_signed_flag(const std::string& flag,
                             const std::string& text) {
  if (!text.empty() && text[0] == '-') {
    return -parse_int_flag(flag, text.substr(1));
  }
  return parse_int_flag(flag, text);
}

}  // namespace bgls::tools

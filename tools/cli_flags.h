/// \file cli_flags.h
/// Strict flag-value parsing shared by the CLI tools (bgls_run,
/// bgls_serve, bgls_client) so the validation rules cannot diverge.
/// Built on the checked parsers in util/parse.h — the raw std::sto*
/// family would wrap "-1" to 2^64-1 and report failures as an opaque
/// "stoull" — and rejecting with the flag name in the error.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>

#include "service/scheduler.h"
#include "util/error.h"
#include "util/parse.h"

namespace bgls::tools {

/// Strict non-negative integer parse with the flag name in the error.
inline std::uint64_t parse_u64_flag(const std::string& flag,
                                    const std::string& text) {
  const std::optional<std::uint64_t> value = util::try_parse_u64(text);
  if (!value.has_value()) {
    detail::throw_error<ValueError>("invalid value '", text, "' for ", flag,
                                    " (expected a non-negative integer)");
  }
  return *value;
}

/// Strict finite-double parse with the flag name in the error.
inline double parse_double_flag(const std::string& flag,
                                const std::string& text) {
  const std::optional<double> value = util::try_parse_double(text);
  if (!value.has_value()) {
    detail::throw_error<ValueError>("invalid value '", text, "' for ", flag,
                                    " (expected a finite number)");
  }
  return *value;
}

/// Parses "NAME=WEIGHT[:MAX_QUEUED[:MAX_RUNNING]]" (the --tenant flag
/// of bgls_serve). Every numeric field is checked: trailing garbage,
/// emptiness, and out-of-range values all reject with the offending
/// spec in the error instead of a raw std::invalid_argument.
inline std::pair<std::string, service::TenantQuota> parse_tenant_flag(
    const std::string& value) {
  const auto malformed = [&]() {
    detail::throw_error<ValueError>(
        "--tenant needs NAME=WEIGHT[:MAX_QUEUED[:MAX_RUNNING]], got '", value,
        "'");
  };
  const std::size_t eq = value.find('=');
  if (eq == std::string::npos || eq == 0) malformed();
  service::TenantQuota quota;
  std::string spec = value.substr(eq + 1);
  std::size_t colon = spec.find(':');
  const std::optional<double> weight =
      util::try_parse_double(spec.substr(0, colon));
  if (!weight.has_value()) malformed();
  quota.weight = *weight;
  BGLS_REQUIRE(quota.weight > 0.0, "--tenant weight must be positive in '",
               value, "'");
  if (colon != std::string::npos) {
    spec = spec.substr(colon + 1);
    colon = spec.find(':');
    const std::optional<std::uint64_t> queued =
        util::try_parse_u64(spec.substr(0, colon));
    if (!queued.has_value()) malformed();
    quota.max_queued = static_cast<std::size_t>(*queued);
    if (colon != std::string::npos) {
      const std::optional<std::uint64_t> running =
          util::try_parse_u64(spec.substr(colon + 1));
      if (!running.has_value()) malformed();
      quota.max_running = static_cast<std::size_t>(*running);
    }
  }
  return {value.substr(0, eq), quota};
}

/// parse_u64_flag clamped into a sane non-negative int range.
inline int parse_int_flag(const std::string& flag, const std::string& text) {
  const std::uint64_t value = parse_u64_flag(flag, text);
  BGLS_REQUIRE(value <= 1u << 20, "value ", value, " for ", flag,
               " is out of range");
  return static_cast<int>(value);
}

/// Like parse_int_flag but accepting a leading '-' (priorities).
inline int parse_signed_flag(const std::string& flag,
                             const std::string& text) {
  if (!text.empty() && text[0] == '-') {
    return -parse_int_flag(flag, text.substr(1));
  }
  return parse_int_flag(flag, text);
}

}  // namespace bgls::tools

/// \file bgls_fleet.cpp
/// The `bgls_fleet` front: load-balances N `bgls_serve` workers behind
/// one client endpoint (service/fleet.h).
///
///   $ bgls_serve --listen unix:/tmp/w0.sock &
///   $ bgls_serve --listen unix:/tmp/w1.sock &
///   $ bgls_fleet --listen unix:/tmp/bgls.sock
///       --worker unix:/tmp/w0.sock --worker unix:/tmp/w1.sock
///
/// Clients talk to the fleet endpoint exactly as they would a single
/// daemon (`bgls_client --connect unix:/tmp/bgls.sock ...`); placement
/// is invisible because BGLS sampling is deterministic — every worker
/// returns the byte-identical report. Extra fleet-only ops: `fleet`
/// (per-worker health), `drain`/`undrain` ({"worker":N}).

#include <csignal>
#include <atomic>
#include <iostream>
#include <string>
#include <thread>

#include "cli_flags.h"
#include "obs/log.h"
#include "service/fleet.h"
#include "util/error.h"

namespace {

using namespace bgls;
using namespace bgls::service;
using tools::parse_u64_flag;

struct FleetToolOptions {
  std::string listen = "unix:/tmp/bgls.sock";
  std::vector<std::string> workers;
  std::uint64_t health_interval_ms = 500;
  std::string log_file;             // "" = log to stderr
  std::string log_level = "info";
  std::uint64_t slow_ms = 0;        // 0 = no slow-request log lines
};

/// Watches for SIGTERM/SIGINT/SIGHUP (blocked on every thread; polled
/// with sigtimedwait so the watcher can also exit on normal shutdown).
/// TERM/INT trigger the fleet's graceful-exit path; HUP reopens the
/// structured-log file so external rotation works.
class SignalWatcher {
 public:
  /// Blocks the watched signals on the calling thread. Must run before
  /// any other thread exists — masks are inherited at thread creation,
  /// so a thread spawned earlier (e.g. by a daemon constructor) is a
  /// valid delivery target whose default disposition kills the process.
  static void block_signals() {
    sigset_t set = watched_set();
    pthread_sigmask(SIG_BLOCK, &set, nullptr);
  }

  explicit SignalWatcher(FleetDaemon& fleet) : set_(watched_set()) {
    pthread_sigmask(SIG_BLOCK, &set_, nullptr);
    thread_ = std::thread([this, &fleet] {
      const timespec poll_interval{0, 200 * 1000 * 1000};  // 200ms
      while (!done_.load(std::memory_order_acquire)) {
        const int sig = sigtimedwait(&set_, nullptr, &poll_interval);
        if (sig == SIGHUP) {
          obs::Logger::global().reopen();
          continue;
        }
        if (sig == SIGTERM || sig == SIGINT) {
          std::cout << "bgls_fleet: caught "
                    << (sig == SIGTERM ? "SIGTERM" : "SIGINT")
                    << ", shutting down gracefully" << std::endl;
          fleet.request_shutdown();
          return;
        }
      }
    });
  }

  ~SignalWatcher() {
    done_.store(true, std::memory_order_release);
    if (thread_.joinable()) thread_.join();
  }

 private:
  static sigset_t watched_set() {
    sigset_t set;
    sigemptyset(&set);
    sigaddset(&set, SIGTERM);
    sigaddset(&set, SIGINT);
    sigaddset(&set, SIGHUP);
    return set;
  }

  sigset_t set_{};
  std::atomic<bool> done_{false};
  std::thread thread_;
};

void print_usage(std::ostream& os) {
  os << "usage: bgls_fleet --worker SPEC [--worker SPEC ...] [options]\n"
        "\n"
        "Load-balancing front for bgls_serve workers: one endpoint,\n"
        "least-loaded placement, per-worker health checks, draining.\n"
        "Clients use the normal bgls_client protocol against the fleet\n"
        "endpoint; reports are byte-identical regardless of placement.\n"
        "\n"
        "options:\n"
        "  --listen SPEC    unix:<path> (default unix:/tmp/bgls.sock) or\n"
        "                   tcp:<host>:<port>; tcp port 0 picks an\n"
        "                   ephemeral port, printed on startup\n"
        "  --worker SPEC    a bgls_serve endpoint to place jobs on\n"
        "                   (repeatable, at least one required)\n"
        "  --health-interval-ms N  cadence of worker health pings\n"
        "                   (default 500)\n"
        "  --log-file PATH  append structured ndjson log lines to PATH\n"
        "                   (default: stderr); SIGHUP reopens the file,\n"
        "                   so external rotation works\n"
        "  --log-level LVL  minimum level recorded: debug/info/warn/\n"
        "                   error (default info)\n"
        "  --slow-ms N      warn-log request lines slower than N ms,\n"
        "                   with the job's trace id (default 0 = off)\n"
        "  --help           this text\n"
        "\n"
        "fleet-only ops (via raw ndjson or future client support):\n"
        "  {\"op\":\"fleet\"}                per-worker status\n"
        "  {\"op\":\"drain\",\"worker\":N}    stop placing new jobs on N\n"
        "  {\"op\":\"undrain\",\"worker\":N}  resume placement on N\n";
}

bool parse_args(int argc, char** argv, FleetToolOptions& options) {
  const auto need_value = [&](int& i, const std::string& flag) -> std::string {
    if (i + 1 >= argc) {
      detail::throw_error<ValueError>("missing value for ", flag);
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage(std::cout);
      return false;
    } else if (arg == "--listen") {
      options.listen = need_value(i, arg);
    } else if (arg == "--worker") {
      options.workers.push_back(need_value(i, arg));
    } else if (arg == "--health-interval-ms") {
      options.health_interval_ms = parse_u64_flag(arg, need_value(i, arg));
      BGLS_REQUIRE(options.health_interval_ms >= 1,
                   "--health-interval-ms must be at least 1");
    } else if (arg == "--log-file") {
      options.log_file = need_value(i, arg);
    } else if (arg == "--log-level") {
      options.log_level = need_value(i, arg);
    } else if (arg == "--slow-ms") {
      options.slow_ms = parse_u64_flag(arg, need_value(i, arg));
    } else {
      detail::throw_error<ValueError>("unknown flag '", arg,
                                      "' (try --help)");
    }
  }
  BGLS_REQUIRE(!options.workers.empty(),
               "at least one --worker SPEC is required (see --help)");
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  FleetToolOptions options;
  try {
    if (!parse_args(argc, argv, options)) return 0;

    obs::LogLevel log_level = obs::LogLevel::kInfo;
    BGLS_REQUIRE(obs::parse_log_level(options.log_level, &log_level),
                 "unknown --log-level '", options.log_level,
                 "' (expected debug/info/warn/error)");
    obs::Logger::global().set_level(log_level);
    if (options.log_file.empty()) {
      obs::Logger::global().set_stderr_sink(true);
    } else {
      BGLS_REQUIRE(obs::Logger::global().open_file(options.log_file),
                   "cannot open --log-file '", options.log_file, "'");
    }

    FleetOptions fleet_options;
    fleet_options.endpoint = Endpoint::parse(options.listen);
    for (const std::string& spec : options.workers) {
      fleet_options.workers.push_back(Endpoint::parse(spec));
    }
    fleet_options.health_interval =
        std::chrono::milliseconds(options.health_interval_ms);
    fleet_options.slow_request_ms = options.slow_ms;

    // Block the watched signals before the fleet daemon exists so no
    // earlier-spawned thread can receive them with the default
    // (process-killing) disposition.
    SignalWatcher::block_signals();
    FleetDaemon fleet(fleet_options);
    const SignalWatcher signals(fleet);
    fleet.start();
    std::cout << "bgls_fleet: listening on " << fleet.endpoint().to_string()
              << " (" << options.workers.size() << " workers)" << std::endl;
    fleet.wait_for_shutdown();
    std::cout << "bgls_fleet: shutdown requested, draining" << std::endl;
    fleet.stop();
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "bgls_fleet: " << e.what() << "\n";
    return 2;
  }
}

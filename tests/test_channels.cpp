// Tests for Kraus channels and CPTP validation.

#include "channels/channels.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace bgls {
namespace {

void expect_cptp(const KrausChannel& ch) {
  const std::size_t dim = ch.operators().front().rows();
  Matrix acc(dim, dim);
  for (const auto& k : ch.operators()) acc = acc + k.adjoint() * k;
  EXPECT_TRUE(acc.approx_equal(Matrix::identity(dim), 1e-9)) << ch.name();
}

TEST(Channels, StandardChannelsAreCptp) {
  expect_cptp(bit_flip(0.3));
  expect_cptp(phase_flip(0.1));
  expect_cptp(depolarize(0.25));
  expect_cptp(amplitude_damp(0.4));
  expect_cptp(phase_damp(0.7));
}

TEST(Channels, EdgeProbabilitiesAreCptp) {
  expect_cptp(bit_flip(0.0));
  expect_cptp(bit_flip(1.0));
  expect_cptp(depolarize(1.0));
}

TEST(Channels, RejectsOutOfRangeProbability) {
  EXPECT_THROW(bit_flip(-0.1), ValueError);
  EXPECT_THROW(depolarize(1.5), ValueError);
  EXPECT_THROW(amplitude_damp(2.0), ValueError);
}

TEST(Channels, RejectsNonTracePreservingSet) {
  Matrix half(2, 2, {0.5, 0, 0, 0.5});
  EXPECT_THROW(KrausChannel("bad", {half}), ValueError);
}

TEST(Channels, RejectsEmptyOperatorList) {
  EXPECT_THROW(KrausChannel("empty", {}), ValueError);
}

TEST(Channels, AritySingleQubit) {
  EXPECT_EQ(bit_flip(0.2).arity(), 1);
}

TEST(Channels, TwoQubitChannelArity) {
  // A trivial 2-qubit identity channel.
  KrausChannel ch("id2", {Matrix::identity(4)});
  EXPECT_EQ(ch.arity(), 2);
}

TEST(Channels, NameIncludesParameter) {
  EXPECT_EQ(depolarize(0.5).name(), "depolarize(0.5)");
}

TEST(Channels, BitFlipOperatorsAreScaledIdentityAndX) {
  const auto ch = bit_flip(0.36);
  EXPECT_NEAR(ch.operators()[0](0, 0).real(), 0.8, 1e-12);
  EXPECT_NEAR(ch.operators()[1](0, 1).real(), 0.6, 1e-12);
}

}  // namespace
}  // namespace bgls

// Tests for diagonal observable estimation from samples.

#include "core/observables.h"

#include <gtest/gtest.h>

#include "circuit/random.h"
#include "core/simulator.h"
#include "qaoa/graph.h"
#include "statevector/state.h"
#include "test_helpers.h"
#include "util/error.h"

namespace bgls {
namespace {

TEST(PauliZString, Eigenvalues) {
  const PauliZString zz({0, 2});
  EXPECT_EQ(zz.eigenvalue(from_string("000")), 1);
  EXPECT_EQ(zz.eigenvalue(from_string("100")), -1);
  EXPECT_EQ(zz.eigenvalue(from_string("101")), 1);
  EXPECT_EQ(zz.eigenvalue(from_string("010")), 1);  // untouched qubit
}

TEST(PauliZString, IdentityString) {
  const PauliZString id({});
  EXPECT_EQ(id.eigenvalue(from_string("111")), 1);
}

TEST(PauliZString, RejectsDuplicates) {
  EXPECT_THROW(PauliZString({1, 1}), ValueError);
  EXPECT_THROW(PauliZString({-1}), ValueError);
}

TEST(DiagonalObservable, EigenvalueCombinesTerms) {
  DiagonalObservable h;
  h.add_constant(1.0);
  h.add_term(0.5, {0});
  h.add_term(-2.0, {0, 1});
  // |00⟩: 1 + 0.5 - 2 = -0.5 ; |10⟩ (qubit0=1): 1 - 0.5 + 2 = 2.5.
  EXPECT_DOUBLE_EQ(h.eigenvalue(from_string("00")), -0.5);
  EXPECT_DOUBLE_EQ(h.eigenvalue(from_string("10")), 2.5);
}

TEST(DiagonalObservable, ExpectationFromCounts) {
  DiagonalObservable h;
  h.add_term(1.0, {0});
  Counts counts{{from_string("0"), 75}, {from_string("1"), 25}};
  // ⟨Z⟩ = 0.75 - 0.25 = 0.5.
  EXPECT_DOUBLE_EQ(h.expectation(counts), 0.5);
}

TEST(DiagonalObservable, ExpectationFromDistribution) {
  DiagonalObservable h;
  h.add_term(2.0, {1});
  Distribution dist{{from_string("00"), 0.5}, {from_string("01"), 0.5}};
  EXPECT_DOUBLE_EQ(h.expectation(dist), 0.0);
}

TEST(DiagonalObservable, EmptyCountsThrow) {
  DiagonalObservable h;
  EXPECT_THROW((void)h.expectation(Counts{}), ValueError);
}

TEST(DiagonalObservable, MaxCutEigenvalueIsCutValue) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 0);
  const auto h = DiagonalObservable::max_cut(g.edges());
  for (Bitstring b = 0; b < 16; ++b) {
    EXPECT_DOUBLE_EQ(h.eigenvalue(b), static_cast<double>(g.cut_value(b)));
  }
}

TEST(DiagonalObservable, SampledExpectationMatchesExact) {
  // ⟨H⟩ from BGLS samples converges to the exact expectation.
  Rng circuit_rng(3);
  RandomCircuitOptions options;
  options.num_moments = 8;
  const int n = 3;
  const Circuit circuit = generate_random_circuit(n, options, circuit_rng);

  DiagonalObservable h;
  h.add_term(1.0, {0});
  h.add_term(0.7, {1, 2});
  h.add_constant(0.1);

  const double exact =
      h.expectation(testing::ideal_distribution(circuit, n));
  Simulator<StateVectorState> sim{StateVectorState(n)};
  Rng rng(5);
  const double sampled = h.expectation(sim.sample(circuit, 60000, rng));
  EXPECT_NEAR(sampled, exact, 0.02);
}

}  // namespace
}  // namespace bgls

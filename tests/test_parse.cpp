// Checked numeric parsing (util/parse.h): the helper's grammar and
// rejection rules, plus malformed-input coverage for every call site
// that was converted off the raw std::sto*/strto* family — QASM
// angles, endpoint ports, JSON numbers, journal CRC frames, fault
// specs, and the CLI flag/tenant parsers.

#include "util/parse.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <string>

#include "cli_flags.h"
#include "core/checkpoint.h"
#include "qasm/qasm.h"
#include "service/journal.h"
#include "service/socket.h"
#include "util/error.h"
#include "util/fault.h"
#include "util/json_parser.h"

namespace bgls {
namespace {

using service::Endpoint;
using service::Journal;

TEST(ParseDouble, AcceptsOrdinaryNumbers) {
  EXPECT_EQ(util::try_parse_double("0"), 0.0);
  EXPECT_EQ(util::try_parse_double("-0.5"), -0.5);
  EXPECT_EQ(util::try_parse_double("+0.5"), 0.5);
  EXPECT_EQ(util::try_parse_double(".5"), 0.5);
  EXPECT_EQ(util::try_parse_double("5."), 5.0);
  EXPECT_EQ(util::try_parse_double("1e-3"), 1e-3);
  EXPECT_EQ(util::try_parse_double("2E2"), 200.0);
}

TEST(ParseDouble, RejectsGarbageAndNonFinite) {
  EXPECT_EQ(util::try_parse_double(""), std::nullopt);
  EXPECT_EQ(util::try_parse_double("+"), std::nullopt);
  EXPECT_EQ(util::try_parse_double("++1"), std::nullopt);
  EXPECT_EQ(util::try_parse_double("1.2.3"), std::nullopt);  // stod: 1.2
  EXPECT_EQ(util::try_parse_double("1e"), std::nullopt);     // stod: 1.0
  EXPECT_EQ(util::try_parse_double("1 "), std::nullopt);
  EXPECT_EQ(util::try_parse_double(" 1"), std::nullopt);
  EXPECT_EQ(util::try_parse_double("0x10"), std::nullopt);   // strtod: 16
  EXPECT_EQ(util::try_parse_double("1e999"), std::nullopt);  // overflow
  EXPECT_EQ(util::try_parse_double("inf"), std::nullopt);
  EXPECT_EQ(util::try_parse_double("nan"), std::nullopt);
}

TEST(ParseI64, AcceptsAndRejects) {
  EXPECT_EQ(util::try_parse_i64("-42"), -42);
  EXPECT_EQ(util::try_parse_i64("+42"), 42);
  EXPECT_EQ(util::try_parse_i64("9223372036854775807"),
            INT64_C(9223372036854775807));
  EXPECT_EQ(util::try_parse_i64("9223372036854775808"), std::nullopt);
  EXPECT_EQ(util::try_parse_i64("12x"), std::nullopt);
  EXPECT_EQ(util::try_parse_i64(""), std::nullopt);
}

TEST(ParseU64, AcceptsAndRejects) {
  EXPECT_EQ(util::try_parse_u64("0"), 0u);
  EXPECT_EQ(util::try_parse_u64("18446744073709551615"),
            UINT64_C(18446744073709551615));
  EXPECT_EQ(util::try_parse_u64("18446744073709551616"), std::nullopt);
  EXPECT_EQ(util::try_parse_u64("-1"), std::nullopt);  // stoull wraps this
  EXPECT_EQ(util::try_parse_u64("+1"), std::nullopt);
  EXPECT_EQ(util::try_parse_u64("1.0"), std::nullopt);
  EXPECT_EQ(util::try_parse_u64(""), std::nullopt);
}

TEST(ParseDoubleToInt, ChecksRangeAndIntegrality) {
  EXPECT_EQ(util::try_double_to_int(7.0), 7);
  EXPECT_EQ(util::try_double_to_int(-3.0), -3);
  EXPECT_EQ(util::try_double_to_int(2147483647.0), 2147483647);
  EXPECT_EQ(util::try_double_to_int(2147483648.0), std::nullopt);
  EXPECT_EQ(util::try_double_to_int(-2147483649.0), std::nullopt);
  EXPECT_EQ(util::try_double_to_int(1.5), std::nullopt);
  EXPECT_EQ(util::try_double_to_int(1e300), std::nullopt);
}

TEST(ParseThrowing, NamesTheFieldAndText) {
  EXPECT_EQ(util::parse_u64("17"), 17u);
  try {
    (void)util::parse_double("bogus", "angle");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("angle"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("bogus"), std::string::npos);
  }
}

// --- Call-site coverage ---------------------------------------------------

TEST(ParseCallSites, QasmRejectsMalformedNumbers) {
  // Each of these used to slip through std::stod (silent truncation)
  // or escape as a raw std::out_of_range instead of ParseError.
  EXPECT_THROW(parse_qasm("OPENQASM 2.0;\nqreg q[1];\nrx(1.2.3) q[0];"),
               ParseError);
  EXPECT_THROW(parse_qasm("OPENQASM 2.0;\nqreg q[1];\nrx(1e999) q[0];"),
               ParseError);
  EXPECT_THROW(parse_qasm("OPENQASM 2.0;\nqreg q[1];\nrx(1e) q[0];"),
               ParseError);
}

TEST(ParseCallSites, QasmRejectsOutOfRangeRegisters) {
  // Casting 1e300 to int was undefined behavior before the checked
  // narrowing; the cap turns absurd-but-castable widths into errors.
  EXPECT_THROW(parse_qasm("OPENQASM 2.0;\nqreg q[1e300];"), ParseError);
  EXPECT_THROW(parse_qasm("OPENQASM 2.0;\nqreg q[2000000000];"), ParseError);
  EXPECT_THROW(parse_qasm("OPENQASM 2.0;\nqreg q[1];\nh q[1e300];"),
               ParseError);
  EXPECT_THROW(parse_qasm("OPENQASM 2.0;\nqreg q[0.5];"), ParseError);
}

TEST(ParseCallSites, QasmBoundsExpressionNesting) {
  std::string qasm = "OPENQASM 2.0;\nqreg q[1];\nrx(";
  for (int i = 0; i < 100000; ++i) qasm += '(';
  EXPECT_THROW(parse_qasm(qasm), ParseError);
  std::string minus = "OPENQASM 2.0;\nqreg q[1];\nrx(";
  minus.append(100000, '-');
  EXPECT_THROW(parse_qasm(minus), ParseError);
}

TEST(ParseCallSites, EndpointRejectsMalformedPorts) {
  EXPECT_EQ(Endpoint::parse("tcp:127.0.0.1:7117").port, 7117);
  EXPECT_THROW(Endpoint::parse("tcp:127.0.0.1:"), Error);
  EXPECT_THROW(Endpoint::parse("tcp:127.0.0.1:70000"), Error);
  EXPECT_THROW(Endpoint::parse("tcp:127.0.0.1:7x"), Error);
  // 30 digits used to saturate strtol at LONG_MAX before the range
  // check; now the parse itself rejects.
  EXPECT_THROW(Endpoint::parse("tcp:127.0.0.1:999999999999999999999999999999"),
               Error);
}

TEST(ParseCallSites, JsonRejectsMalformedNumbers) {
  EXPECT_THROW(JsonValue::parse("1e999"), ParseError);
  EXPECT_THROW(JsonValue::parse("1.2.3"), ParseError);
  EXPECT_THROW(JsonValue::parse("1e"), ParseError);
  EXPECT_EQ(JsonValue::parse("-0.5").as_double(), -0.5);
  EXPECT_EQ(JsonValue::parse("18446744073709551615").as_u64(),
            UINT64_C(18446744073709551615));
}

TEST(ParseCallSites, JsonBoundsNestingDepth) {
  std::string deep;
  deep.append(100000, '[');
  EXPECT_THROW(JsonValue::parse(deep), ParseError);
  // Moderate nesting still parses.
  std::string ok(64, '[');
  ok += "1";
  ok.append(64, ']');
  EXPECT_EQ(JsonValue::parse(ok).kind(), JsonValue::Kind::kArray);
}

TEST(ParseCallSites, JournalSkipsCorruptCrcDigits) {
  const std::string path = ::testing::TempDir() + "parse_journal_crc.ndjson";
  {
    std::ofstream out(path, std::ios::trunc);
    // Oversized CRC digits used to truncate through strtoull's cast;
    // every line here must be skipped, not matched.
    out << "{\"crc\":99999999999999999999,\"rec\":{\"a\":1}}\n";
    out << "{\"crc\":12x34,\"rec\":{\"a\":1}}\n";
    out << "{\"crc\":,\"rec\":{\"a\":1}}\n";
  }
  std::size_t skipped = 0;
  const auto records = Journal::replay_file(path, &skipped);
  EXPECT_TRUE(records.empty());
  EXPECT_EQ(skipped, 3u);
  std::remove(path.c_str());
}

TEST(ParseCallSites, CheckpointRejectsMalformedHistogramKeys) {
  const std::string frame =
      "{\"version\":1,\"mode\":\"engine\",\"total\":2,\"shards\":[{"
      "\"total\":2,\"completed\":1,\"rng\":[1,2,3,4],"
      "\"histograms\":{\"m\":{\"%s\":1}}}]}";
  const auto with_key = [&](const std::string& key) {
    std::string json = frame;
    json.replace(json.find("%s"), 2, key);
    return RunCheckpoint::from_json(JsonValue::parse(json));
  };
  EXPECT_NO_THROW(with_key("3"));
  // Used to escape as raw std::invalid_argument/std::out_of_range from
  // std::stoull on a corrupt checkpoint.
  EXPECT_THROW(with_key("3x"), Error);
  EXPECT_THROW(with_key("99999999999999999999999"), Error);
}

TEST(ParseCallSites, FaultSpecSkipsMalformedEntries) {
  // Malformed entries must be ignored (fault injection never takes the
  // process down on a typo); well-formed ones arm.
  ::setenv("BGLS_FAULT_INJECT", "good:1.0:7,bad:1..5:3,worse:0.5:12x,empty::1",
           1);
  fault::reload_from_env();
  EXPECT_TRUE(fault::should_fail("good"));
  EXPECT_FALSE(fault::should_fail("bad"));
  EXPECT_FALSE(fault::should_fail("worse"));
  EXPECT_FALSE(fault::should_fail("empty"));
  ::unsetenv("BGLS_FAULT_INJECT");
  fault::disarm_all();
}

TEST(ParseCallSites, CliFlagsRejectMalformedValues) {
  EXPECT_EQ(tools::parse_u64_flag("--reps", "4096"), 4096u);
  EXPECT_THROW(tools::parse_u64_flag("--reps", "-1"), ValueError);
  EXPECT_THROW(tools::parse_u64_flag("--reps", "12x"), ValueError);
  EXPECT_THROW(tools::parse_u64_flag("--reps", "99999999999999999999999"),
               ValueError);
  EXPECT_EQ(tools::parse_double_flag("--max-job-seconds", "1.5"), 1.5);
  EXPECT_THROW(tools::parse_double_flag("--max-job-seconds", "1.5x"),
               ValueError);
  EXPECT_THROW(tools::parse_double_flag("--max-job-seconds", "1e999"),
               ValueError);
}

TEST(ParseCallSites, TenantFlagRejectsMalformedSpecs) {
  const auto [name, quota] = tools::parse_tenant_flag("acme=2.5:8:2");
  EXPECT_EQ(name, "acme");
  EXPECT_EQ(quota.weight, 2.5);
  EXPECT_EQ(quota.max_queued, 8u);
  EXPECT_EQ(quota.max_running, 2u);
  // These used to surface as raw std::invalid_argument from std::stod.
  EXPECT_THROW(tools::parse_tenant_flag("acme=x"), ValueError);
  EXPECT_THROW(tools::parse_tenant_flag("acme=1.0:x"), ValueError);
  EXPECT_THROW(tools::parse_tenant_flag("acme=1.0:1:x"), ValueError);
  EXPECT_THROW(tools::parse_tenant_flag("=1.0"), ValueError);
  EXPECT_THROW(tools::parse_tenant_flag("acme=0"), ValueError);
}

}  // namespace
}  // namespace bgls

/// \file test_journal.cpp
/// The write-ahead scheduler journal (service/journal.h): CRC framing,
/// append/replay round trips, torn-record tolerance (the kill -9
/// case), compaction, and the "journal_write" fault-injection path
/// that tears an append on purpose.

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "service/journal.h"
#include "util/fault.h"

namespace bgls {
namespace {

using service::Journal;
using service::JournalError;

/// A unique journal path per test, removed on teardown.
class JournalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    static std::atomic<int> counter{0};
    path_ = "/tmp/bgls_test_journal_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter.fetch_add(1)) + ".ndjson";
  }

  void TearDown() override {
    fault::disarm_all();
    std::remove(path_.c_str());
    std::remove((path_ + ".compact.tmp").c_str());
  }

  std::string read_raw() const {
    std::ifstream file(path_, std::ios::binary);
    return {std::istreambuf_iterator<char>(file),
            std::istreambuf_iterator<char>()};
  }

  std::string path_;
};

TEST_F(JournalTest, Crc32KnownAnswer) {
  // The IEEE 802.3 check value for "123456789".
  EXPECT_EQ(Journal::crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Journal::crc32(""), 0u);
}

TEST_F(JournalTest, AppendReplayRoundTrip) {
  Journal journal;
  journal.open(path_);
  journal.append(R"({"type":"submit","job":1,"line":"abc"})");
  journal.append(R"({"type":"terminal","job":1,"state":"done"})");
  EXPECT_EQ(journal.records_written(), 2u);
  journal.close();

  std::size_t skipped = 7;
  const std::vector<JsonValue> records = Journal::replay_file(path_, &skipped);
  EXPECT_EQ(skipped, 0u);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].string_or("type", ""), "submit");
  EXPECT_EQ(records[0].u64_or("job", 0), 1u);
  EXPECT_EQ(records[0].string_or("line", ""), "abc");
  EXPECT_EQ(records[1].string_or("state", ""), "done");
}

TEST_F(JournalTest, MissingFileReplaysEmpty) {
  std::size_t skipped = 7;
  EXPECT_TRUE(Journal::replay_file(path_, &skipped).empty());
  EXPECT_EQ(skipped, 0u);
}

TEST_F(JournalTest, TornTailIsSkipped) {
  {
    Journal journal;
    journal.open(path_);
    journal.append(R"({"type":"submit","job":1})");
    journal.append(R"({"type":"submit","job":2})");
  }
  // Simulate kill -9 mid-append: truncate the file inside the last
  // record (newline included in the cut).
  std::string raw = read_raw();
  raw.resize(raw.size() - 10);
  std::ofstream(path_, std::ios::binary | std::ios::trunc) << raw;

  std::size_t skipped = 0;
  const std::vector<JsonValue> records = Journal::replay_file(path_, &skipped);
  EXPECT_EQ(skipped, 1u);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].u64_or("job", 0), 1u);
}

TEST_F(JournalTest, CorruptedMiddleRecordIsSkippedOthersSurvive) {
  {
    Journal journal;
    journal.open(path_);
    journal.append(R"({"type":"submit","job":1})");
    journal.append(R"({"type":"submit","job":2})");
    journal.append(R"({"type":"submit","job":3})");
  }
  // Flip one byte inside the middle record's body: its CRC no longer
  // matches, but line framing is intact so the third record survives.
  std::string raw = read_raw();
  const std::size_t at = raw.find("\"job\":2");
  ASSERT_NE(at, std::string::npos);
  raw[at + 6] = '9';
  std::ofstream(path_, std::ios::binary | std::ios::trunc) << raw;

  std::size_t skipped = 0;
  const std::vector<JsonValue> records = Journal::replay_file(path_, &skipped);
  EXPECT_EQ(skipped, 1u);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].u64_or("job", 0), 1u);
  EXPECT_EQ(records[1].u64_or("job", 0), 3u);
}

TEST_F(JournalTest, CompactionRewritesToLiveSet) {
  {
    Journal journal;
    journal.open(path_);
    for (int job = 1; job <= 5; ++job) {
      journal.append(R"({"type":"submit","job":)" + std::to_string(job) + "}");
    }
  }
  Journal::compact_file(path_, {R"({"type":"submit","job":4})",
                                R"({"type":"submit","job":5})"});
  std::size_t skipped = 0;
  const std::vector<JsonValue> records = Journal::replay_file(path_, &skipped);
  EXPECT_EQ(skipped, 0u);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].u64_or("job", 0), 4u);
  EXPECT_EQ(records[1].u64_or("job", 0), 5u);
  // The compacted file stays appendable.
  Journal journal;
  journal.open(path_);
  journal.append(R"({"type":"submit","job":6})");
  journal.close();
  EXPECT_EQ(Journal::replay_file(path_).size(), 3u);
}

TEST_F(JournalTest, InjectedTornWriteThrowsAndNextAppendRecovers) {
  Journal journal;
  journal.open(path_);
  journal.append(R"({"type":"submit","job":1})");

  // One guaranteed tear: a partial prefix hits the file, the append
  // reports JournalError (the daemon surfaces it as a retryable
  // journal_error response).
  fault::arm("journal_write", 1.0, 42, 1);
  EXPECT_THROW(journal.append(R"({"type":"submit","job":2})"), JournalError);
  EXPECT_EQ(journal.records_written(), 1u);

  // The tear must stay confined to its own line: the next append lands
  // intact and replay sees records 1 and 3 with exactly one skip.
  journal.append(R"({"type":"submit","job":3})");
  journal.close();
  std::size_t skipped = 0;
  const std::vector<JsonValue> records = Journal::replay_file(path_, &skipped);
  EXPECT_EQ(skipped, 1u);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].u64_or("job", 0), 1u);
  EXPECT_EQ(records[1].u64_or("job", 0), 3u);
}

TEST_F(JournalTest, ReopenAppendsAfterExistingRecords) {
  {
    Journal journal;
    journal.open(path_);
    journal.append(R"({"type":"submit","job":1})");
  }
  {
    Journal journal;
    journal.open(path_);
    journal.append(R"({"type":"submit","job":2})");
    EXPECT_TRUE(journal.is_open());
    EXPECT_EQ(journal.path(), path_);
  }
  const std::vector<JsonValue> records = Journal::replay_file(path_);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[1].u64_or("job", 0), 2u);
}

TEST_F(JournalTest, AppendOnClosedJournalThrows) {
  Journal journal;
  EXPECT_FALSE(journal.is_open());
  EXPECT_THROW(journal.append(R"({"x":1})"), JournalError);
}

}  // namespace
}  // namespace bgls

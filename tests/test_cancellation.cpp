/// \file test_cancellation.cpp
/// Cooperative cancellation and deadlines (util/cancellation.h) through
/// every execution layer: the serial Simulator loops, the BatchEngine
/// shard loops, and the Session facade. The load-bearing guarantee: an
/// aborted run discards its partial work and never corrupts shared
/// state — later runs on the same pool/session are bit-identical to
/// runs on a fresh one.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "api/session.h"
#include "engine_test_helpers.h"
#include "util/cancellation.h"

namespace bgls {
namespace {

using namespace std::chrono_literals;
using testing::batched_workload;
using testing::make_sv_simulator;
using testing::trajectory_workload;

TEST(CancellationToken, InertTokenNeverStops) {
  const CancellationToken token;
  EXPECT_FALSE(token.valid());
  EXPECT_EQ(token.stop_kind(), StopKind::kNone);
  EXPECT_FALSE(token.stop_requested());
  EXPECT_NO_THROW(token.throw_if_stopped());
  // cancel()/set_deadline on an inert token are harmless no-ops.
  CancellationToken inert;
  inert.cancel();
  inert.set_deadline_after(0ms);
  EXPECT_FALSE(inert.stop_requested());
}

TEST(CancellationToken, CancelPropagatesToCopies) {
  const CancellationToken token = CancellationToken::make();
  const CancellationToken copy = token;
  EXPECT_FALSE(copy.stop_requested());
  token.cancel();
  EXPECT_EQ(copy.stop_kind(), StopKind::kCancelled);
  EXPECT_THROW(copy.throw_if_stopped(), CancelledError);
}

TEST(CancellationToken, DeadlineExpires) {
  CancellationToken token = CancellationToken::make();
  token.set_deadline(std::chrono::steady_clock::now() - 1ms);
  EXPECT_EQ(token.stop_kind(), StopKind::kDeadline);
  EXPECT_THROW(token.throw_if_stopped(), DeadlineExceededError);
}

TEST(CancellationToken, CancelWinsOverExpiredDeadline) {
  CancellationToken token = CancellationToken::make();
  token.set_deadline(std::chrono::steady_clock::now() - 1ms);
  token.cancel();
  EXPECT_EQ(token.stop_kind(), StopKind::kCancelled);
}

TEST(SimulatorCancellation, PreCancelledSerialRunThrows) {
  for (const bool batched : {true, false}) {
    const Circuit circuit = batched ? batched_workload(4, 11, 10, 0.8)
                                    : trajectory_workload(3, 0.05);
    SimulatorOptions options;
    options.cancel_token = CancellationToken::make();
    options.cancel_token.cancel();
    Simulator<StateVectorState> sim{StateVectorState(4), options};
    Rng rng(3);
    EXPECT_THROW((void)sim.run(circuit, 100, rng), CancelledError);
  }
}

TEST(SimulatorCancellation, ExpiredDeadlineThrowsDeadlineExceeded) {
  SimulatorOptions options;
  options.cancel_token = CancellationToken::make();
  options.cancel_token.set_deadline(std::chrono::steady_clock::now() - 1ms);
  Simulator<StateVectorState> sim{StateVectorState(3), options};
  Rng rng(3);
  EXPECT_THROW((void)sim.run(trajectory_workload(3, 0.05), 100, rng),
               DeadlineExceededError);
}

TEST(SimulatorCancellation, MidRunCancelStopsTrajectoryRun) {
  // A run big enough to outlive the cancel below by orders of
  // magnitude; per-gate token checks bound the abort latency.
  SimulatorOptions options;
  options.cancel_token = CancellationToken::make();
  Simulator<StateVectorState> sim{StateVectorState(3), options};
  std::thread canceller([token = options.cancel_token]() mutable {
    std::this_thread::sleep_for(20ms);
    token.cancel();
  });
  Rng rng(3);
  EXPECT_THROW(
      (void)sim.run(trajectory_workload(3, 0.05), 500'000'000ULL, rng),
      CancelledError);
  canceller.join();
}

TEST(EngineCancellation, CancelledRunNeverCorruptsLaterRunsOnSamePool) {
  const Circuit circuit = trajectory_workload(3, 0.05);
  const std::uint64_t reps = 5000;

  // Baseline on a fresh engine.
  auto baseline_sim = make_sv_simulator(3, 4, 8);
  BatchEngine<StateVectorState> baseline_engine(baseline_sim);
  const Counts baseline =
      baseline_engine.run(circuit, reps, 77).histogram("m");

  // Same pool: run a huge job, cancel it mid-flight, then re-run the
  // baseline request. The abort must leave no trace.
  SimulatorOptions options;
  options.num_threads = 4;
  options.num_rng_streams = 8;
  options.cancel_token = CancellationToken::make();
  Simulator<StateVectorState> doomed_sim{StateVectorState(3), options};
  BatchEngine<StateVectorState> doomed(doomed_sim);
  std::thread canceller([token = options.cancel_token]() mutable {
    std::this_thread::sleep_for(20ms);
    token.cancel();
  });
  EXPECT_THROW((void)doomed.run(circuit, 500'000'000ULL, 123),
               CancelledError);
  canceller.join();

  auto again_sim = make_sv_simulator(3, 4, 8);
  BatchEngine<StateVectorState> again(again_sim);
  EXPECT_EQ(again.run(circuit, reps, 77).histogram("m"), baseline);
}

TEST(EngineCancellation, CancelAtEveryEarlyGateIsClean) {
  // Cancellation at *any* point must be safe, not just at one lucky
  // timing: pre-cancelled tokens exercise the earliest checks, and the
  // mid-run cases above the later ones. Sweep serial + engine paths.
  const Circuit circuit = batched_workload(4, 11, 10, 0.8);
  for (const int threads : {1, 4}) {
    SimulatorOptions options;
    options.num_threads = threads;
    options.num_rng_streams = 8;
    options.cancel_token = CancellationToken::make();
    options.cancel_token.cancel();
    Simulator<StateVectorState> sim{StateVectorState(4), options};
    Rng rng(5);
    EXPECT_THROW((void)sim.run(circuit, 512, rng), CancelledError);
    // The simulator object itself stays usable with a fresh token.
    SimulatorOptions clean = options;
    clean.cancel_token = CancellationToken{};
    sim.set_options(clean);
    Rng rng2(5);
    EXPECT_EQ(sim.run(circuit, 512, rng2).repetitions(), 512u);
  }
}

TEST(SessionCancellation, DeadlineMsAbortsRun) {
  Session session;
  const RunRequest request =
      RunRequest()
          .with_circuit(trajectory_workload(3, 0.05))
          .with_repetitions(500'000'000ULL)
          .with_seed(1)
          .with_deadline_ms(50);
  EXPECT_THROW((void)session.run(request), DeadlineExceededError);
}

TEST(SessionCancellation, RunAsyncCancelSurfacesThroughFuture) {
  Session session;
  CancellationToken token = CancellationToken::make();
  std::future<RunResult> future =
      session.run_async(RunRequest()
                            .with_circuit(trajectory_workload(3, 0.05))
                            .with_repetitions(500'000'000ULL)
                            .with_seed(1)
                            .with_threads(2)
                            .with_cancel_token(token));
  std::this_thread::sleep_for(20ms);
  token.cancel();
  EXPECT_THROW((void)future.get(), CancelledError);

  // The session (and its pinned pool) keeps serving identical results.
  const RunRequest small = RunRequest()
                               .with_circuit(trajectory_workload(3, 0.05))
                               .with_repetitions(512)
                               .with_seed(9)
                               .with_threads(2);
  const Counts after = session.run(small).measurements.histogram("m");
  Session fresh;
  EXPECT_EQ(fresh.run(small).measurements.histogram("m"), after);
}

TEST(SessionCancellation, RunBatchHonorsCancellation) {
  Session session;
  CancellationToken token = CancellationToken::make();
  token.cancel();
  const std::vector<Circuit> circuits(4, trajectory_workload(3, 0.05));
  EXPECT_THROW((void)session.run_batch(circuits, RunRequest()
                                                     .with_repetitions(1000)
                                                     .with_threads(2)
                                                     .with_cancel_token(token)),
               CancelledError);
}

TEST(SessionCancellation, CancellationIsObservationOnly) {
  // A token that never fires must not perturb the sampled records.
  const RunRequest plain = RunRequest()
                               .with_circuit(trajectory_workload(3, 0.05))
                               .with_repetitions(2000)
                               .with_seed(21)
                               .with_threads(2);
  RunRequest tokened = plain;
  tokened.with_cancel_token(CancellationToken::make()).with_deadline_ms(
      3'600'000);
  Session session;
  EXPECT_EQ(session.run(plain).measurements.histogram("m"),
            session.run(tokened).measurements.histogram("m"));
}

}  // namespace
}  // namespace bgls

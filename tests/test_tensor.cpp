// Tests for labeled tensors: isel, transpose, contraction, networks.

#include "linalg/tensor.h"

#include <gtest/gtest.h>

#include <array>

#include "util/error.h"
#include "util/rng.h"

namespace bgls {
namespace {

Tensor random_tensor(std::vector<std::string> labels,
                     std::vector<std::size_t> dims, Rng& rng) {
  Tensor t(std::move(labels), std::move(dims));
  for (auto& v : t.data()) {
    v = Complex{rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
  }
  return t;
}

TEST(Tensor, ScalarHoldsValue) {
  const auto t = Tensor::scalar(Complex{2.0, -1.0});
  EXPECT_EQ(t.rank(), 0u);
  EXPECT_EQ(t.scalar_value(), (Complex{2.0, -1.0}));
}

TEST(Tensor, RejectsDuplicateLabels) {
  EXPECT_THROW(Tensor({"a", "a"}, {2, 2}), ValueError);
}

TEST(Tensor, AtIndexing) {
  Tensor t({"i", "j"}, {2, 3});
  const std::array<std::size_t, 2> idx{1, 2};
  t.at(idx) = Complex{5.0, 0.0};
  EXPECT_EQ(t.data()[1 * 3 + 2], (Complex{5.0, 0.0}));
}

TEST(Tensor, IselDropsAxisAndSelectsSlice) {
  Tensor t({"i", "j"}, {2, 2});
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 2; ++j) {
      const std::array<std::size_t, 2> idx{i, j};
      t.at(idx) = Complex{static_cast<double>(10 * i + j), 0.0};
    }
  }
  const Tensor sel = t.isel("i", 1);
  EXPECT_EQ(sel.rank(), 1u);
  EXPECT_EQ(sel.labels()[0], "j");
  EXPECT_EQ(sel.data()[0], (Complex{10.0, 0.0}));
  EXPECT_EQ(sel.data()[1], (Complex{11.0, 0.0}));
}

TEST(Tensor, IselMiddleAxis) {
  Rng rng(1);
  const Tensor t = random_tensor({"a", "b", "c"}, {2, 3, 4}, rng);
  const Tensor sel = t.isel("b", 2);
  for (std::size_t a = 0; a < 2; ++a) {
    for (std::size_t c = 0; c < 4; ++c) {
      const std::array<std::size_t, 3> in{a, 2, c};
      const std::array<std::size_t, 2> out{a, c};
      EXPECT_EQ(sel.at(out), t.at(in));
    }
  }
}

TEST(Tensor, TransposePermutesData) {
  Rng rng(2);
  const Tensor t = random_tensor({"a", "b", "c"}, {2, 3, 4}, rng);
  const std::vector<std::string> order{"c", "a", "b"};
  const Tensor p = t.transposed(order);
  EXPECT_EQ(p.dims()[0], 4u);
  for (std::size_t a = 0; a < 2; ++a) {
    for (std::size_t b = 0; b < 3; ++b) {
      for (std::size_t c = 0; c < 4; ++c) {
        const std::array<std::size_t, 3> in{a, b, c};
        const std::array<std::size_t, 3> out{c, a, b};
        EXPECT_EQ(p.at(out), t.at(in));
      }
    }
  }
}

TEST(Tensor, TransposeRoundTrip) {
  Rng rng(3);
  const Tensor t = random_tensor({"x", "y"}, {3, 5}, rng);
  const std::vector<std::string> rev{"y", "x"};
  const std::vector<std::string> fwd{"x", "y"};
  const Tensor round = t.transposed(rev).transposed(fwd);
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_EQ(round.data()[i], t.data()[i]);
  }
}

TEST(Tensor, MatrixRoundTrip) {
  Rng rng(4);
  const Tensor t = random_tensor({"r", "c"}, {4, 3}, rng);
  const std::vector<std::string> rows{"r"};
  const std::vector<std::string> cols{"c"};
  const Matrix m = t.as_matrix(rows, cols);
  const Tensor back = Tensor::from_matrix(m, {"r"}, {4}, {"c"}, {3});
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_EQ(back.data()[i], t.data()[i]);
  }
}

TEST(Tensor, ContractMatchesMatrixProduct) {
  Rng rng(5);
  const Tensor a = random_tensor({"i", "k"}, {3, 4}, rng);
  const Tensor b = random_tensor({"k", "j"}, {4, 5}, rng);
  const Tensor c = contract(a, b);
  ASSERT_EQ(c.rank(), 2u);
  const std::vector<std::string> ri{"i"}, rj{"j"}, rk{"k"};
  const Matrix expected = a.as_matrix(ri, rk) * b.as_matrix(rk, rj);
  const Matrix got = c.as_matrix(ri, rj);
  EXPECT_LE(got.max_abs_diff(expected), 1e-12);
}

TEST(Tensor, ContractOverTwoSharedLabels) {
  Rng rng(6);
  const Tensor a = random_tensor({"i", "s", "t"}, {2, 3, 4}, rng);
  const Tensor b = random_tensor({"s", "t", "j"}, {3, 4, 2}, rng);
  const Tensor c = contract(a, b);
  ASSERT_EQ(c.rank(), 2u);
  // Check one entry by brute force.
  Complex acc{0.0, 0.0};
  for (std::size_t s = 0; s < 3; ++s) {
    for (std::size_t t = 0; t < 4; ++t) {
      const std::array<std::size_t, 3> ia{1, s, t};
      const std::array<std::size_t, 3> ib{s, t, 0};
      acc += a.at(ia) * b.at(ib);
    }
  }
  const std::array<std::size_t, 2> ic{1, 0};
  EXPECT_NEAR(std::abs(c.at(ic) - acc), 0.0, 1e-12);
}

TEST(Tensor, ContractDisjointIsOuterProduct) {
  const auto sa = Tensor::scalar(Complex{2.0, 0.0});
  Rng rng(7);
  const Tensor b = random_tensor({"j"}, {3}, rng);
  const Tensor c = contract(sa, b);
  EXPECT_EQ(c.rank(), 1u);
  for (std::size_t j = 0; j < 3; ++j) {
    EXPECT_NEAR(std::abs(c.data()[j] - 2.0 * b.data()[j]), 0.0, 1e-12);
  }
}

TEST(Tensor, ContractRejectsDimMismatch) {
  Tensor a({"s"}, {2});
  Tensor b({"s"}, {3});
  EXPECT_THROW(contract(a, b), ValueError);
}

TEST(Tensor, ApplyMatrixActsOnAxes) {
  // |0> on one qubit; applying X flips to |1>.
  Tensor t({"p"}, {2});
  t.data()[0] = Complex{1.0, 0.0};
  Matrix x(2, 2, {0, 1, 1, 0});
  const std::vector<std::string> axes{"p"};
  const Tensor flipped = apply_matrix(t, x, axes);
  EXPECT_NEAR(std::abs(flipped.data()[0]), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(flipped.data()[1] - 1.0), 0.0, 1e-12);
}

TEST(Tensor, ApplyMatrixTwoAxesMatchesKron) {
  Rng rng(8);
  const Tensor t = random_tensor({"p", "q", "r"}, {2, 2, 3}, rng);
  Matrix cx(4, 4, {1, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 1, 0, 0, 1, 0});
  const std::vector<std::string> axes{"p", "q"};
  const Tensor applied = apply_matrix(t, cx, axes);
  // Brute force: index (p q) as p*2+q.
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t p = 0; p < 2; ++p) {
      for (std::size_t q = 0; q < 2; ++q) {
        Complex acc{0.0, 0.0};
        for (std::size_t pp = 0; pp < 2; ++pp) {
          for (std::size_t qq = 0; qq < 2; ++qq) {
            const std::array<std::size_t, 3> in{pp, qq, r};
            acc += cx(p * 2 + q, pp * 2 + qq) * t.at(in);
          }
        }
        const std::array<std::size_t, 3> out{p, q, r};
        EXPECT_NEAR(std::abs(applied.at(out) - acc), 0.0, 1e-12);
      }
    }
  }
}

TEST(Tensor, ContractNetworkChain) {
  // Three-tensor chain contracting to a scalar.
  Rng rng(9);
  const Tensor a = random_tensor({"x"}, {4}, rng);
  const Tensor b = random_tensor({"x", "y"}, {4, 5}, rng);
  const Tensor c = random_tensor({"y"}, {5}, rng);
  const Tensor result = contract_network({a, b, c});
  ASSERT_EQ(result.rank(), 0u);
  // Brute force.
  Complex acc{0.0, 0.0};
  for (std::size_t x = 0; x < 4; ++x) {
    for (std::size_t y = 0; y < 5; ++y) {
      const std::array<std::size_t, 1> ia{x};
      const std::array<std::size_t, 2> ib{x, y};
      const std::array<std::size_t, 1> ic{y};
      acc += a.at(ia) * b.at(ib) * c.at(ic);
    }
  }
  EXPECT_NEAR(std::abs(result.scalar_value() - acc), 0.0, 1e-10);
}

TEST(Tensor, ContractNetworkDisconnected) {
  const Tensor result = contract_network(
      {Tensor::scalar(Complex{2.0, 0.0}), Tensor::scalar(Complex{3.0, 0.0})});
  EXPECT_NEAR(std::abs(result.scalar_value() - 6.0), 0.0, 1e-12);
}

TEST(Tensor, RenameLabel) {
  Tensor t({"a"}, {2});
  t.rename_label("a", "b");
  EXPECT_TRUE(t.has_label("b"));
  EXPECT_FALSE(t.has_label("a"));
  EXPECT_THROW(t.rename_label("missing", "c"), ValueError);
}

TEST(Tensor, NormIsFrobenius) {
  Tensor t({"a"}, {2});
  t.data()[0] = Complex{3.0, 0.0};
  t.data()[1] = Complex{0.0, 4.0};
  EXPECT_DOUBLE_EQ(t.norm(), 5.0);
}

}  // namespace
}  // namespace bgls

// Tests for gate decompositions and the noise-model wrapper.

#include "circuit/decompose.h"

#include <gtest/gtest.h>

#include "circuit/noise.h"
#include "circuit/random.h"
#include "core/simulator.h"
#include "densitymatrix/state.h"
#include "mps/state.h"
#include "statevector/state.h"
#include "test_helpers.h"
#include "util/error.h"

namespace bgls {
namespace {

TEST(Decompose, CcxNetworkIsExactlyToffoli) {
  Circuit lowered;
  for (auto& op : decompose_operation(ccx(0, 1, 2))) {
    lowered.append(std::move(op));
  }
  Circuit reference;
  reference.append(ccx(0, 1, 2));
  EXPECT_TRUE(testing::circuit_unitary(lowered, 3)
                  .approx_equal(testing::circuit_unitary(reference, 3), 1e-9));
  for (const auto& op : lowered.all_operations()) {
    EXPECT_LE(op.arity(), 2);
  }
}

TEST(Decompose, CczIsExact) {
  Circuit lowered;
  for (auto& op :
       decompose_operation(Operation(Gate::CCZ(), {0, 1, 2}))) {
    lowered.append(std::move(op));
  }
  Circuit reference;
  reference.append(Operation(Gate::CCZ(), {0, 1, 2}));
  EXPECT_TRUE(testing::circuit_unitary(lowered, 3)
                  .approx_equal(testing::circuit_unitary(reference, 3), 1e-9));
}

TEST(Decompose, CswapIsExact) {
  Circuit lowered;
  for (auto& op :
       decompose_operation(Operation(Gate::CSwap(), {0, 1, 2}))) {
    lowered.append(std::move(op));
  }
  Circuit reference;
  reference.append(Operation(Gate::CSwap(), {0, 1, 2}));
  EXPECT_TRUE(testing::circuit_unitary(lowered, 3)
                  .approx_equal(testing::circuit_unitary(reference, 3), 1e-9));
}

TEST(Decompose, PassThroughForSmallGates) {
  const auto ops = decompose_operation(cnot(0, 1));
  ASSERT_EQ(ops.size(), 1u);
  EXPECT_EQ(ops[0].to_string(), "CX(0, 1)");
}

TEST(Decompose, MeasurementsPassThrough) {
  const auto ops = decompose_operation(measure({0, 1, 2}, "m"));
  ASSERT_EQ(ops.size(), 1u);
  EXPECT_TRUE(ops[0].gate().is_measurement());
}

TEST(Decompose, CircuitLoweringPreservesDistribution) {
  // A Toffoli-heavy circuit lowered to 2-qubit gates samples the same
  // distribution — and becomes runnable on the MPS backend.
  Circuit circuit{h(0), h(1), ccx(0, 1, 2), h(1),
                  Operation(Gate::CCZ(), {0, 1, 2}), h(2)};
  const Circuit lowered = decompose_to_arity(circuit, 2);
  EXPECT_GT(lowered.num_operations(), circuit.num_operations());
  const auto ideal = testing::ideal_distribution(circuit, 3);

  Simulator<MPSState> mps{MPSState(3)};
  Rng rng(3);
  EXPECT_LT(total_variation_distance(normalize(mps.sample(lowered, 30000, rng)),
                                     ideal),
            0.02);
}

TEST(Decompose, ExpandSwapsGivesOnlyCx) {
  Circuit circuit{h(0), swap(0, 1), swap(1, 2)};
  const Circuit expanded = expand_swaps(circuit);
  EXPECT_EQ(expanded.count_operations([](const Operation& op) {
              return op.gate().kind() == GateKind::kSwap;
            }),
            0u);
  EXPECT_TRUE(testing::circuit_unitary(expanded, 3)
                  .approx_equal(testing::circuit_unitary(circuit, 3), 1e-9));
}

TEST(Decompose, UnknownLoweringThrows) {
  // No decomposition to arity 1 of an entangling gate exists.
  EXPECT_THROW(decompose_operation(ccx(0, 1, 2), 1), ValueError);
}

TEST(Noise, WithNoiseInsertsChannels) {
  Circuit circuit{h(0), cnot(0, 1), measure({0, 1}, "z")};
  const Circuit noisy = with_noise(circuit, depolarize(0.01));
  // H touches 1 qubit, CX touches 2 — 3 channels total; measurement
  // moment stays clean.
  EXPECT_EQ(noisy.count_operations(
                [](const Operation& op) { return op.gate().is_channel(); }),
            3u);
  EXPECT_TRUE(noisy.has_measurements());
}

TEST(Noise, RejectsMultiQubitChannel) {
  Circuit circuit{h(0)};
  KrausChannel two_qubit("id2", {Matrix::identity(4)});
  EXPECT_THROW(with_noise(circuit, two_qubit), ValueError);
}

TEST(Noise, NoisySamplingMatchesDensityMatrix) {
  Circuit circuit{h(0), cnot(0, 1)};
  const Circuit noisy = with_noise(circuit, depolarize(0.15));

  DensityMatrixState rho(2);
  evolve_exact(noisy, rho);
  Distribution ideal;
  for (Bitstring b = 0; b < 4; ++b) ideal[b] = rho.probability(b);

  Simulator<StateVectorState> sim{StateVectorState(2)};
  Rng rng(7);
  EXPECT_LT(total_variation_distance(normalize(sim.sample(noisy, 40000, rng)),
                                     ideal),
            0.02);
}

TEST(Noise, ZeroStrengthNoiseIsHarmless) {
  Circuit circuit = ghz_circuit(3);
  const Circuit noisy = with_noise(circuit, bit_flip(0.0));
  Simulator<StateVectorState> sim{StateVectorState(3)};
  Rng rng(9);
  const Counts counts = sim.sample(noisy, 5000, rng);
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_TRUE(counts.contains(from_string("000")));
  EXPECT_TRUE(counts.contains(from_string("111")));
}

}  // namespace
}  // namespace bgls

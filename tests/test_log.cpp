/// \file test_log.cpp
/// The structured logger (obs/log.h): ndjson golden lines, level
/// parsing and filtering, ring-buffer bounds and tail filters, file
/// sink + reopen (rotation), and compiled-out inertness. The suite
/// runs under TSan in CI (the logger is hammered from many threads by
/// the serving stack).

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/log.h"
#include "obs/metrics.h"
#include "util/json_parser.h"

namespace bgls {
namespace {

using obs::LogField;
using obs::Logger;
using obs::LogLevel;
using obs::LogRecord;

/// Resets the process-global logger around every test so suites cannot
/// leak ring contents or sink configuration into each other.
class LogTest : public ::testing::Test {
 protected:
  void SetUp() override { Logger::global().reset_for_testing(); }
  void TearDown() override { Logger::global().reset_for_testing(); }
};

TEST(LogLevelNames, RoundTripAndAliases) {
  EXPECT_EQ(obs::log_level_name(LogLevel::kDebug), "debug");
  EXPECT_EQ(obs::log_level_name(LogLevel::kInfo), "info");
  EXPECT_EQ(obs::log_level_name(LogLevel::kWarn), "warn");
  EXPECT_EQ(obs::log_level_name(LogLevel::kError), "error");

  LogLevel level = LogLevel::kDebug;
  ASSERT_TRUE(obs::parse_log_level("error", &level));
  EXPECT_EQ(level, LogLevel::kError);
  ASSERT_TRUE(obs::parse_log_level("warning", &level));  // alias
  EXPECT_EQ(level, LogLevel::kWarn);
  EXPECT_FALSE(obs::parse_log_level("verbose", &level));
  EXPECT_EQ(level, LogLevel::kWarn);  // untouched on failure
}

TEST(FormatLogLine, GoldenLine) {
  // format_log_line is pure, so the full envelope is pinned byte for
  // byte (ts chosen exactly representable in binary so %.17g prints it
  // back verbatim).
  LogRecord record;
  record.ts = 1723111845.25;
  record.level = LogLevel::kWarn;
  record.component = "scheduler";
  record.trace_id = 424242;
  record.job_id = 7;
  record.message = "admission rejected";
  record.fields.emplace_back("reason", "queue_full");
  record.fields.emplace_back("depth", std::uint64_t{64});
  record.fields.emplace_back("delta", -2);
  record.fields.emplace_back("seconds", 0.5);
  EXPECT_EQ(obs::format_log_line(record),
            "{\"ts\":1723111845.25,\"level\":\"warn\","
            "\"component\":\"scheduler\",\"trace_id\":424242,\"job_id\":7,"
            "\"msg\":\"admission rejected\",\"fields\":{"
            "\"reason\":\"queue_full\",\"depth\":64,\"delta\":-2,"
            "\"seconds\":0.5}}");
}

TEST(FormatLogLine, OmitsZeroIdsAndEmptyFields) {
  LogRecord record;
  record.ts = 2.0;
  record.level = LogLevel::kInfo;
  record.component = "daemon";
  record.message = "ready";
  EXPECT_EQ(obs::format_log_line(record),
            "{\"ts\":2,\"level\":\"info\",\"component\":\"daemon\","
            "\"msg\":\"ready\"}");
}

TEST(FormatLogLine, EscapesMessageAndParsesBack) {
  LogRecord record;
  record.ts = 1.0;
  record.component = "fleet";
  record.message = "worker \"w0\"\nretired";
  record.fields.emplace_back("endpoint", "unix:/tmp/w0.sock");
  const std::string line = obs::format_log_line(record);
  // Every emitted line must be one valid, newline-free JSON document —
  // the ndjson contract.
  EXPECT_EQ(line.find('\n'), std::string::npos);
  const JsonValue parsed = JsonValue::parse(line);
  EXPECT_EQ(parsed.string_or("msg", ""), "worker \"w0\"\nretired");
  EXPECT_EQ(parsed.find("fields")->string_or("endpoint", ""),
            "unix:/tmp/w0.sock");
}

#if BGLS_TELEMETRY

TEST_F(LogTest, LevelGateFiltersRecords) {
  Logger& logger = Logger::global();
  logger.set_level(LogLevel::kWarn);
  logger.log(LogLevel::kDebug, "t", "dropped");
  logger.log(LogLevel::kInfo, "t", "dropped too");
  logger.log(LogLevel::kWarn, "t", "kept");
  logger.log(LogLevel::kError, "t", "kept too");
  EXPECT_EQ(logger.emitted(), 2u);
  const std::vector<LogRecord> all = logger.tail(100, LogLevel::kDebug);
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].message, "kept");
  EXPECT_EQ(all[1].message, "kept too");
}

TEST_F(LogTest, RingEvictsOldestBeyondCapacity) {
  Logger& logger = Logger::global();
  logger.set_capacity(4);
  for (int i = 0; i < 10; ++i) {
    logger.log(LogLevel::kInfo, "t", "m" + std::to_string(i));
  }
  EXPECT_EQ(logger.emitted(), 10u);  // all accepted...
  const std::vector<LogRecord> kept = logger.tail(100, LogLevel::kDebug);
  ASSERT_EQ(kept.size(), 4u);  // ...only the newest retained
  EXPECT_EQ(kept.front().message, "m6");
  EXPECT_EQ(kept.back().message, "m9");

  // Shrinking evicts immediately.
  logger.set_capacity(2);
  EXPECT_EQ(logger.tail(100, LogLevel::kDebug).size(), 2u);
}

TEST_F(LogTest, TailFiltersByLevelTraceAndCount) {
  Logger& logger = Logger::global();
  logger.set_level(LogLevel::kDebug);
  logger.log(LogLevel::kInfo, "t", "a", {}, /*trace_id=*/11);
  logger.log(LogLevel::kWarn, "t", "b", {}, /*trace_id=*/22);
  logger.log(LogLevel::kInfo, "t", "c", {}, /*trace_id=*/22);
  logger.log(LogLevel::kError, "t", "d", {}, /*trace_id=*/22);

  const std::vector<LogRecord> warns = logger.tail(100, LogLevel::kWarn);
  ASSERT_EQ(warns.size(), 2u);
  EXPECT_EQ(warns[0].message, "b");
  EXPECT_EQ(warns[1].message, "d");

  const std::vector<LogRecord> traced =
      logger.tail(100, LogLevel::kDebug, /*trace_id=*/22);
  ASSERT_EQ(traced.size(), 3u);
  EXPECT_EQ(traced[0].message, "b");

  // The cap keeps the *newest* matches, still in chronological order.
  const std::vector<LogRecord> last_two =
      logger.tail(2, LogLevel::kDebug, /*trace_id=*/22);
  ASSERT_EQ(last_two.size(), 2u);
  EXPECT_EQ(last_two[0].message, "c");
  EXPECT_EQ(last_two[1].message, "d");
}

TEST_F(LogTest, RuntimeDisableDropsRecords) {
  Logger& logger = Logger::global();
  {
    obs::EnabledScope disabled(false);
    logger.log(LogLevel::kError, "t", "invisible");
  }
  EXPECT_EQ(logger.emitted(), 0u);
  logger.log(LogLevel::kError, "t", "visible");
  EXPECT_EQ(logger.emitted(), 1u);
}

TEST_F(LogTest, FileSinkWritesNdjsonAndReopens) {
  Logger& logger = Logger::global();
  const std::string path =
      ::testing::TempDir() + "/bgls_log_sink_test.ndjson";
  std::remove(path.c_str());
  ASSERT_TRUE(logger.open_file(path));
  logger.log(LogLevel::kInfo, "t", "one", {{"k", std::uint64_t{1}}});

  // Simulate external rotation: move the file away, SIGHUP-style
  // reopen, keep logging into a fresh file at the same path.
  const std::string rotated = path + ".1";
  std::remove(rotated.c_str());
  ASSERT_EQ(std::rename(path.c_str(), rotated.c_str()), 0);
  logger.reopen();
  logger.log(LogLevel::kInfo, "t", "two");
  logger.close_file();

  const auto read_lines = [](const std::string& file) {
    std::ifstream in(file);
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
    return lines;
  };
  const std::vector<std::string> old_lines = read_lines(rotated);
  const std::vector<std::string> new_lines = read_lines(path);
  ASSERT_EQ(old_lines.size(), 1u);
  ASSERT_EQ(new_lines.size(), 1u);
  EXPECT_EQ(JsonValue::parse(old_lines[0]).string_or("msg", ""), "one");
  EXPECT_EQ(JsonValue::parse(new_lines[0]).string_or("msg", ""), "two");
  std::remove(path.c_str());
  std::remove(rotated.c_str());
}

TEST_F(LogTest, ConcurrentEmittersLoseNothing) {
  Logger& logger = Logger::global();
  logger.set_capacity(100'000);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&logger, t] {
      for (int i = 0; i < kPerThread; ++i) {
        logger.log(LogLevel::kInfo, "stress", "m",
                   {{"thread", t}, {"i", i}});
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  EXPECT_EQ(logger.emitted(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(logger.tail(200'000, LogLevel::kDebug).size(),
            static_cast<std::size_t>(kThreads) * kPerThread);
}

#else  // !BGLS_TELEMETRY

TEST(LogCompiledOut, EverythingIsInert) {
  Logger& logger = Logger::global();
  logger.set_level(LogLevel::kDebug);
  logger.log(LogLevel::kError, "t", "never stored");
  EXPECT_EQ(logger.emitted(), 0u);
  EXPECT_TRUE(logger.tail(100, LogLevel::kDebug).empty());

  // open_file reports success but creates nothing — there is no sink
  // to open.
  const std::string path =
      ::testing::TempDir() + "/bgls_log_compiled_out.ndjson";
  std::remove(path.c_str());
  EXPECT_TRUE(logger.open_file(path));
  logger.log(LogLevel::kError, "t", "never written");
  logger.close_file();
  std::ifstream in(path);
  EXPECT_FALSE(in.good());

  // The free-function front door is equally inert (and still pays for
  // none of its arguments' formatting).
  obs::log(LogLevel::kError, "t", "no-op", {{"k", 1}});
  EXPECT_EQ(logger.emitted(), 0u);
}

#endif  // BGLS_TELEMETRY

}  // namespace
}  // namespace bgls

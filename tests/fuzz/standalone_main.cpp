/// \file standalone_main.cpp
/// Driver for the fuzz harnesses when libFuzzer is unavailable (GCC
/// builds — the default toolchain here). Two modes:
///
///   harness FILE...                      replay each file once
///   harness --mutate N [--seed S]
///           [--artifact PATH] FILE...    N deterministic mutations of
///                                        the seed corpus
///
/// Mutation mode derives every choice from the explicit seed (util/rng.h
/// xoshiro, no wall-clock anywhere), so a reported crash is reproduced
/// by re-running with the same --seed — and, belt-and-braces, the input
/// about to be executed is written to --artifact *before* the call, so
/// a crash leaves the offending bytes on disk for minimization and
/// check-in under tests/data/fuzz/.

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "util/parse.h"
#include "util/rng.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    std::fprintf(stderr, "cannot open '%s'\n", path.c_str());
    std::exit(2);
  }
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

void write_artifact(const std::string& path,
                    const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

/// One random edit in place: flip a byte, insert, erase, or copy a
/// chunk from another corpus entry (crossover).
void mutate_once(std::vector<std::uint8_t>& bytes,
                 const std::vector<std::vector<std::uint8_t>>& corpus,
                 bgls::Rng& rng) {
  switch (rng.uniform_int(4)) {
    case 0:  // flip
      if (!bytes.empty()) {
        bytes[rng.uniform_int(bytes.size())] ^=
            static_cast<std::uint8_t>(1 + rng.uniform_int(255));
      }
      break;
    case 1: {  // insert a random byte
      const std::size_t at = rng.uniform_int(bytes.size() + 1);
      bytes.insert(bytes.begin() + static_cast<std::ptrdiff_t>(at),
                   static_cast<std::uint8_t>(rng.uniform_int(256)));
      break;
    }
    case 2:  // erase a short run
      if (!bytes.empty()) {
        const std::size_t at = rng.uniform_int(bytes.size());
        const std::size_t len =
            std::min(bytes.size() - at, 1 + rng.uniform_int(8));
        bytes.erase(bytes.begin() + static_cast<std::ptrdiff_t>(at),
                    bytes.begin() + static_cast<std::ptrdiff_t>(at + len));
      }
      break;
    default: {  // splice a chunk from a random corpus entry
      const auto& donor = corpus[rng.uniform_int(corpus.size())];
      if (!donor.empty()) {
        const std::size_t from = rng.uniform_int(donor.size());
        const std::size_t len =
            std::min(donor.size() - from, 1 + rng.uniform_int(16));
        const std::size_t at = rng.uniform_int(bytes.size() + 1);
        bytes.insert(bytes.begin() + static_cast<std::ptrdiff_t>(at),
                     donor.begin() + static_cast<std::ptrdiff_t>(from),
                     donor.begin() + static_cast<std::ptrdiff_t>(from + len));
      }
      break;
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t mutations = 0;
  std::uint64_t seed = 1;
  std::string artifact;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--mutate") {
      mutations = bgls::util::parse_u64(value(), "--mutate");
    } else if (arg == "--seed") {
      seed = bgls::util::parse_u64(value(), "--seed");
    } else if (arg == "--artifact") {
      artifact = value();
    } else if (arg == "--help") {
      std::printf(
          "usage: %s [--mutate N] [--seed S] [--artifact PATH] FILE...\n",
          argv[0]);
      return 0;
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) {
    std::fprintf(stderr, "no input files (see --help)\n");
    return 2;
  }

  std::vector<std::vector<std::uint8_t>> corpus;
  corpus.reserve(files.size());
  for (const auto& path : files) corpus.push_back(read_file(path));

  // Replay pass: every corpus entry, byte-for-byte.
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    if (!artifact.empty()) write_artifact(artifact, corpus[i]);
    (void)LLVMFuzzerTestOneInput(corpus[i].data(), corpus[i].size());
    std::printf("ok %s (%zu bytes)\n", files[i].c_str(), corpus[i].size());
  }

  // Mutation pass: each round starts from a corpus entry and applies a
  // small stack of edits.
  bgls::Rng rng(seed);
  for (std::uint64_t round = 0; round < mutations; ++round) {
    std::vector<std::uint8_t> input = corpus[rng.uniform_int(corpus.size())];
    const std::uint64_t edits = 1 + rng.uniform_int(4);
    for (std::uint64_t e = 0; e < edits; ++e) mutate_once(input, corpus, rng);
    if (!artifact.empty()) write_artifact(artifact, input);
    (void)LLVMFuzzerTestOneInput(input.data(), input.size());
  }
  if (mutations != 0) {
    std::printf("ran %llu mutation rounds (seed %llu) without a crash\n",
                static_cast<unsigned long long>(mutations),
                static_cast<unsigned long long>(seed));
  }
  if (!artifact.empty()) (void)std::remove(artifact.c_str());
  return 0;
}

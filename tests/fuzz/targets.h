/// \file targets.h
/// The fuzzed entry points, one per untrusted-byte surface.
///
/// Each target feeds raw bytes into a parser the daemon exposes to the
/// outside world and treats bgls::Error as the expected rejection path:
/// a target returns normally for both accepted and cleanly rejected
/// input, and anything else — a sanitizer report, an uncaught foreign
/// exception, a crash — is a finding. The same three functions back the
/// libFuzzer harnesses (fuzz_*.cpp), the standalone replay/mutation
/// driver (standalone_main.cpp), and the always-on corpus regression
/// test (tests/test_fuzz_regressions.cpp), so a checked-in crasher is
/// replayed through exactly the code path that produced it.

#pragma once

#include <cstddef>
#include <cstdint>

namespace bgls::fuzz {

/// OpenQASM 2.0 import (qasm/qasm.cpp): parse, and when the source is
/// accepted, round-trip it through to_qasm and re-parse — the exported
/// text is claimed to be valid QASM, so a second-parse failure is a bug
/// even though the original input "worked".
void one_qasm(const std::uint8_t* data, std::size_t size);

/// ndjson wire protocol (service/protocol.cpp): JsonValue::parse of one
/// request line, then parse_submit on the result (which parses the
/// embedded QASM program too).
void one_protocol(const std::uint8_t* data, std::size_t size);

/// Journal recovery (service/journal.cpp): replay_stream over arbitrary
/// bytes. Recovery must never throw on content — a journal is by
/// definition read after a crash, so every malformed shape is a "skip",
/// not an error. Re-frames each recovered body and checks the second
/// replay loses nothing (recovery is idempotent).
void one_journal(const std::uint8_t* data, std::size_t size);

}  // namespace bgls::fuzz

#include "targets.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

#include "qasm/qasm.h"
#include "service/journal.h"
#include "service/protocol.h"
#include "util/error.h"

namespace bgls::fuzz {
namespace {

/// Oracle failure: not a rejection, a wrong answer. Prints and aborts
/// so both libFuzzer and the standalone driver record the input as a
/// crasher.
void fail(const char* what) {
  std::fprintf(stderr, "fuzz oracle failure: %s\n", what);
  std::abort();
}

std::string as_string(const std::uint8_t* data, std::size_t size) {
  return std::string(reinterpret_cast<const char*>(data), size);
}

}  // namespace

void one_qasm(const std::uint8_t* data, std::size_t size) {
  const std::string source = as_string(data, size);
  Circuit circuit;
  try {
    circuit = parse_qasm(source);
  } catch (const Error&) {
    return;  // clean rejection
  }
  // Accepted input must survive export → re-import: to_qasm's output is
  // claimed to be valid OpenQASM 2.0.
  std::string exported;
  try {
    exported = to_qasm(circuit);
  } catch (const Error&) {
    return;  // circuit contains a gate with no QASM spelling
  }
  try {
    (void)parse_qasm(exported);
  } catch (const Error&) {
    fail("to_qasm emitted text parse_qasm rejects");
  }
}

void one_protocol(const std::uint8_t* data, std::size_t size) {
  const std::string line = as_string(data, size);
  JsonValue message;
  try {
    message = JsonValue::parse(line);
  } catch (const Error&) {
    return;  // clean rejection
  }
  try {
    (void)service::parse_submit(message);
  } catch (const Error&) {
    return;  // well-formed JSON, malformed submit — clean rejection
  }
}

void one_journal(const std::uint8_t* data, std::size_t size) {
  const std::string raw = as_string(data, size);

  // Recovery over arbitrary bytes must never throw on content.
  {
    std::istringstream in(raw);
    std::size_t skipped = 0;
    try {
      (void)service::Journal::replay_stream(in, &skipped);
    } catch (const Error&) {
      fail("replay_stream threw on stream content");
    }
  }

  // CRC oracle: frame the input as one record body (newlines stripped —
  // a body occupies one line by construction) with its true checksum.
  // The framed line must recover as exactly one record when the body is
  // valid JSON, and as exactly one skip when it is not.
  std::string body = raw;
  std::erase_if(body, [](char c) { return c == '\n' || c == '\r'; });
  bool body_is_json = true;
  try {
    (void)JsonValue::parse(body);
  } catch (const Error&) {
    body_is_json = false;
  }
  std::string framed = "{\"crc\":";
  framed += std::to_string(service::Journal::crc32(body));
  framed += ",\"rec\":";
  framed += body;
  framed += "}\n";
  std::istringstream in(framed);
  std::size_t skipped = 0;
  const auto records = service::Journal::replay_stream(in, &skipped);
  if (body_is_json) {
    if (records.size() != 1 || skipped != 0) {
      fail("CRC-valid JSON body did not replay as one record");
    }
  } else {
    if (!records.empty() || skipped != 1) {
      fail("non-JSON body was neither recovered nor counted as skipped");
    }
  }
}

}  // namespace bgls::fuzz

/// libFuzzer entry point for journal recovery. Linked against libFuzzer
/// under Clang; against standalone_main.cpp elsewhere.

#include <cstddef>
#include <cstdint>

#include "targets.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  bgls::fuzz::one_journal(data, size);
  return 0;
}

/// libFuzzer entry point for the QASM import surface. Linked against
/// libFuzzer under Clang; against standalone_main.cpp elsewhere.

#include <cstddef>
#include <cstdint>

#include "targets.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  bgls::fuzz::one_qasm(data, size);
  return 0;
}

/// \file test_cost.cpp
/// The CostModel (service/cost.h): closed-form predictions per backend,
/// the DM-vs-trajectories crossover that replaced the selector's
/// hard-coded qubit cutoff, best-effort fitting from BENCH artifacts,
/// and the bond-dimension estimate's clamps.

#include <gtest/gtest.h>

#include <string>

#include "api/selector.h"
#include "circuit/noise.h"
#include "circuit/random.h"
#include "service/cost.h"
#include "util/json_parser.h"

namespace bgls {
namespace {

using service::CostCoefficients;
using service::CostModel;

/// A channel-bearing n-qubit profile (what the DM-vs-trajectories rule
/// sees).
CircuitProfile channel_profile(int n, std::size_t ops = 20) {
  CircuitProfile profile;
  profile.num_qubits = n;
  profile.num_operations = ops;
  profile.has_channels = true;
  profile.clifford_only = false;
  profile.near_clifford = false;
  return profile;
}

TEST(CostModel, DensityMatrixVsTrajectoriesCrossoverAtTwoPowNEqualsReps) {
  // Shared sv/dm per-element coefficient ⇒ DM (one 4^n pass) beats
  // reps × 2^n trajectories exactly while 2^n ≤ reps. At the service
  // default of 1024 repetitions that reproduces the old hard-coded
  // max_density_matrix_qubits = 10 boundary.
  const CostModel model;
  const std::uint64_t reps = BackendSelector::kDefaultRepetitions;
  ASSERT_EQ(reps, 1024u);
  for (int n = 2; n <= 10; ++n) {
    EXPECT_LE(model.predict_seconds(channel_profile(n), reps,
                                    BackendId::kDensityMatrix),
              model.predict_seconds(channel_profile(n), reps,
                                    BackendId::kStateVector))
        << "n=" << n;
  }
  for (int n = 11; n <= 14; ++n) {
    EXPECT_GT(model.predict_seconds(channel_profile(n), reps,
                                    BackendId::kDensityMatrix),
              model.predict_seconds(channel_profile(n), reps,
                                    BackendId::kStateVector))
        << "n=" << n;
  }
  // The boundary moves with repetitions: at 2^12 shots the 12-qubit
  // costs tie exactly (2^n = reps — DM wins the ≤ comparison), and one
  // more doubling makes the density matrix strictly cheaper.
  EXPECT_LE(model.predict_seconds(channel_profile(12), 1u << 12,
                                  BackendId::kDensityMatrix),
            model.predict_seconds(channel_profile(12), 1u << 12,
                                  BackendId::kStateVector));
  EXPECT_LT(model.predict_seconds(channel_profile(12), 1u << 13,
                                  BackendId::kDensityMatrix),
            model.predict_seconds(channel_profile(12), 1u << 13,
                                  BackendId::kStateVector));
}

TEST(CostModel, SelectorUsesCrossoverForChannelCircuits) {
  // End-to-end through BackendSelector: the same channel circuit flips
  // from densitymatrix to statevector trajectories when the requested
  // repetitions drop below 2^n.
  Circuit circuit = ghz_circuit(8);
  circuit.append(Operation(Gate::Channel(depolarize(0.05)), {0}));
  circuit.append(measure({0, 1, 2}, "m"));
  const BackendSelector selector;
  EXPECT_EQ(selector.select(circuit, 1024).id, BackendId::kDensityMatrix);
  EXPECT_EQ(selector.select(circuit, 16).id, BackendId::kStateVector);
}

TEST(CostModel, PredictionsScaleWithWorkload) {
  const CostModel model;
  const CircuitProfile small = channel_profile(4);
  const CircuitProfile wide = channel_profile(8);
  // More qubits, more ops, more repetitions: all strictly more seconds.
  EXPECT_LT(
      model.predict_seconds(small, 100, BackendId::kStateVector),
      model.predict_seconds(wide, 100, BackendId::kStateVector));
  EXPECT_LT(
      model.predict_seconds(small, 100, BackendId::kStateVector),
      model.predict_seconds(small, 10'000, BackendId::kStateVector));
  // Every prediction includes the fixed per-job overhead.
  EXPECT_GE(model.predict_seconds(small, 1, BackendId::kStabilizer),
            model.coefficients().job_overhead_seconds);
}

TEST(CostModel, UnresolvedBackendsThrow) {
  const CostModel model;
  EXPECT_THROW(
      (void)model.predict_seconds(channel_profile(4), 10, BackendId::kAuto),
      ValueError);
  EXPECT_THROW(
      (void)model.predict_seconds(channel_profile(4), 10, BackendId::kCustom),
      ValueError);
}

TEST(CostModel, BondDimensionEstimateSaturates) {
  CircuitProfile profile;
  profile.num_qubits = 20;
  profile.entangling_gates = 4;  // 0.2 per qubit: shallow chain
  EXPECT_LT(CostModel::estimated_bond_dimension(profile), 2.0);
  // Adversarially dense profile: clamped at 2^(n/2), then at 2^32.
  profile.entangling_gates = 100'000;
  EXPECT_LE(CostModel::estimated_bond_dimension(profile),
            std::pow(2.0, 10.0) + 1e-9);
  profile.num_qubits = 1'000;
  EXPECT_LE(CostModel::estimated_bond_dimension(profile),
            std::pow(2.0, 32.0) + 1e-9);
}

TEST(CostModel, FittedRefitsCoefficientsFromArtifacts) {
  // A micro-states document recording 2 ms per 2^20-amplitude sweep
  // (≈ 1.9 ns/element) and a service document with a 1 ms per-job gap
  // between the direct and queued paths.
  const JsonValue micro = JsonValue::parse(R"({
    "benchmarks": [
      {"name": "BM_StateVector_ApplyH/20", "real_time": 2.0e6,
       "time_unit": "ns"}
    ]})");
  const JsonValue service = JsonValue::parse(R"({
    "jobs": 100,
    "rows": [
      {"path": "session_direct", "seconds": 1.0},
      {"path": "scheduler_1", "seconds": 1.1}
    ]})");
  const CostModel model = CostModel::fitted(micro, service);
  const double per_element = 2.0e-3 / 1048576.0;
  EXPECT_DOUBLE_EQ(model.coefficients().sv_seconds_per_element, per_element);
  EXPECT_DOUBLE_EQ(model.coefficients().dm_seconds_per_element, per_element);
  EXPECT_DOUBLE_EQ(model.coefficients().mps_seconds_per_element,
                   16.0 * per_element);
  EXPECT_NEAR(model.coefficients().job_overhead_seconds, 1.0e-3, 1e-12);
}

TEST(CostModel, FittingIsBestEffort) {
  // Missing rows, null documents, unreadable files: the committed
  // defaults survive — a lost artifact must never take the service
  // down.
  const CostCoefficients defaults;
  const CostModel from_null = CostModel::fitted(JsonValue(), JsonValue());
  EXPECT_DOUBLE_EQ(from_null.coefficients().sv_seconds_per_element,
                   defaults.sv_seconds_per_element);
  EXPECT_DOUBLE_EQ(from_null.coefficients().job_overhead_seconds,
                   defaults.job_overhead_seconds);
  const CostModel from_missing = CostModel::fitted_from_files(
      "/nonexistent/BENCH_micro_states.json", "/nonexistent/BENCH.json");
  EXPECT_DOUBLE_EQ(from_missing.coefficients().sv_seconds_per_element,
                   defaults.sv_seconds_per_element);
}

}  // namespace
}  // namespace bgls

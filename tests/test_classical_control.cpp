// Classically-controlled operations: feed-forward semantics, the full
// teleportation protocol, and interaction with the sampler paths.

#include <gtest/gtest.h>

#include <cmath>

#include "core/simulator.h"
#include "mps/state.h"
#include "statevector/state.h"
#include "test_helpers.h"
#include "util/error.h"

namespace bgls {
namespace {

TEST(ClassicalControl, OnlyUnitariesCanBeControlled) {
  EXPECT_THROW(measure({0}, "m").controlled_by_measurement("k"), ValueError);
  EXPECT_THROW(h(0).controlled_by_measurement(""), ValueError);
  EXPECT_NO_THROW(x(0).controlled_by_measurement("k"));
}

TEST(ClassicalControl, ToStringShowsCondition) {
  EXPECT_EQ(x(2).controlled_by_measurement("m").to_string(), "X(2).if('m')");
}

TEST(ClassicalControl, ConditionedOnUnmeasuredKeyThrows) {
  Circuit circuit;
  circuit.append(x(0).controlled_by_measurement("never"));
  circuit.append(measure({0}, "m"));
  Simulator<StateVectorState> sim{StateVectorState(1)};
  Rng rng(1);
  EXPECT_THROW(sim.run(circuit, 5, rng), ValueError);
}

TEST(ClassicalControl, GateFiresExactlyWhenConditionIsOne) {
  // Measure a 50/50 qubit, then flip a second qubit iff the outcome was
  // 1: the two records must always be equal.
  Circuit circuit;
  circuit.append(h(0));
  circuit.append(measure({0}, "coin"));
  circuit.append(x(1).controlled_by_measurement("coin"));
  circuit.append(measure({1}, "copy"));
  Simulator<StateVectorState> sim{StateVectorState(2)};
  Rng rng(3);
  const Result result = sim.run(circuit, 2000, rng);
  int ones = 0;
  for (std::size_t i = 0; i < 2000; ++i) {
    EXPECT_EQ(result.values("coin")[i], result.values("copy")[i]);
    ones += static_cast<int>(result.values("coin")[i]);
  }
  EXPECT_NEAR(ones / 2000.0, 0.5, 0.05);
  EXPECT_FALSE(sim.last_run_stats().used_sample_parallelization);
}

Circuit teleportation_circuit(double theta) {
  Circuit circuit;
  circuit.append(ry(theta, 0));
  circuit.append(h(1));
  circuit.append(cnot(1, 2));
  circuit.append(cnot(0, 1));
  circuit.append(h(0));
  circuit.append(measure({1}, "m_x"));
  circuit.append(measure({0}, "m_z"));
  circuit.append(x(2).controlled_by_measurement("m_x"));
  circuit.append(z(2).controlled_by_measurement("m_z"));
  return circuit;
}

TEST(ClassicalControl, TeleportationOfBasisStates) {
  // Teleporting |1⟩ (θ = π): Bob must always read 1; |0⟩: always 0.
  for (const double theta : {0.0, 3.14159265358979323846}) {
    Circuit circuit = teleportation_circuit(theta);
    circuit.append(measure({2}, "bob"));
    Simulator<StateVectorState> sim{StateVectorState(3)};
    Rng rng(5);
    const Result result = sim.run(circuit, 300, rng);
    const int expected = theta > 1.0 ? 1 : 0;
    for (const Bitstring v : result.values("bob")) {
      EXPECT_EQ(static_cast<int>(v), expected);
    }
  }
}

TEST(ClassicalControl, TeleportationPreservesSuperpositionPhase) {
  // Teleport |+⟩ and measure Bob in the X basis: deterministic 0. The
  // Z correction is what makes this work — without phase feed-forward
  // half the trajectories would give |−⟩.
  Circuit circuit = teleportation_circuit(3.14159265358979323846 / 2.0);
  // θ = π/2 gives (|0⟩ + |1⟩)/√2 = |+⟩.
  circuit.append(h(2));
  circuit.append(measure({2}, "bob_x"));
  Simulator<StateVectorState> sim{StateVectorState(3)};
  Rng rng(7);
  const Result result = sim.run(circuit, 500, rng);
  for (const Bitstring v : result.values("bob_x")) {
    EXPECT_EQ(v, 0u);
  }
}

TEST(ClassicalControl, TeleportationArbitraryStateStatistics) {
  const double theta = 0.77;
  Circuit circuit = teleportation_circuit(theta);
  circuit.append(measure({2}, "bob"));
  Simulator<StateVectorState> sim{StateVectorState(3)};
  Rng rng(9);
  const std::uint64_t reps = 20000;
  const Result result = sim.run(circuit, reps, rng);
  std::uint64_t ones = 0;
  for (const Bitstring v : result.values("bob")) ones += v;
  const double expected = std::sin(theta / 2.0) * std::sin(theta / 2.0);
  EXPECT_NEAR(static_cast<double>(ones) / static_cast<double>(reps), expected,
              0.01);
}

TEST(ClassicalControl, WorksOnMpsBackend) {
  Circuit circuit = teleportation_circuit(3.14159265358979323846);
  circuit.append(measure({2}, "bob"));
  Simulator<MPSState> sim{MPSState(3)};
  Rng rng(11);
  const Result result = sim.run(circuit, 200, rng);
  for (const Bitstring v : result.values("bob")) EXPECT_EQ(v, 1u);
}

TEST(ClassicalControl, UnconditionedCircuitsStillParallelize) {
  Circuit circuit{h(0), cnot(0, 1), measure({0, 1}, "z")};
  Simulator<StateVectorState> sim{StateVectorState(2)};
  Rng rng(13);
  sim.run(circuit, 100, rng);
  EXPECT_TRUE(sim.last_run_stats().used_sample_parallelization);
}

}  // namespace
}  // namespace bgls

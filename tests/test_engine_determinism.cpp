// Determinism regression suite for the batch engine: for a fixed seed,
// the merged histogram must be bit-identical across every execution
// configuration — thread count, sync vs async submission, pool reuse on
// or off, and one-level vs two-level run_batch sharding. This pins the
// engine's core invariant (threads only decide *where* a shard runs,
// never *what* it computes) on every code path the v2 engine added.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "circuit/circuit.h"
#include "circuit/noise.h"
#include "circuit/random.h"
#include "core/simulator.h"
#include "engine/engine.h"
#include "engine_test_helpers.h"
#include "statevector/state.h"

namespace bgls {
namespace {

constexpr std::uint64_t kSeed = 20230715;

using testing::histogram_hash;
using testing::with_terminal_measurement;

Circuit batched_workload(int n) {
  return testing::batched_workload(n, /*circuit_seed=*/41, /*num_moments=*/12,
                                   /*op_density=*/0.8);
}

Circuit trajectory_workload(int n) {
  return testing::trajectory_workload(n, /*depolarize_p=*/0.04);
}

Circuit feed_forward_workload() {
  Circuit circuit;
  circuit.append(h(0));
  circuit.append(measure({0}, "mid"));
  circuit.append(x(1).controlled_by_measurement("mid"));
  circuit.append(measure({1}, "out"));
  return circuit;
}

Simulator<StateVectorState> make_simulator(int n, int num_threads,
                                           bool reuse_pool = true) {
  return testing::make_sv_simulator(n, num_threads, /*num_streams=*/8,
                                    reuse_pool);
}

struct Workload {
  const char* name;
  Circuit circuit;
  int qubits;
  std::uint64_t repetitions;
  std::string key;
};

std::vector<Workload> workloads() {
  std::vector<Workload> all;
  all.push_back({"batched", batched_workload(4), 4, 4000, "m"});
  all.push_back({"trajectory", trajectory_workload(3), 3, 500, "m"});
  all.push_back({"feed-forward", feed_forward_workload(), 2, 400, "out"});
  return all;
}

TEST(EngineDeterminism, HashIdenticalAcrossThreadCountsSyncAndAsync) {
  for (const Workload& workload : workloads()) {
    std::uint64_t reference = 0;
    bool first = true;
    for (const int threads : {1, 2, 8}) {
      BatchEngine<StateVectorState> engine{
          make_simulator(workload.qubits, threads)};
      const std::uint64_t sync_hash = histogram_hash(
          engine.run(workload.circuit, workload.repetitions, kSeed)
              .histogram(workload.key));
      const std::uint64_t async_hash = histogram_hash(
          engine.submit(workload.circuit, workload.repetitions, kSeed)
              .get()
              .result.histogram(workload.key));
      EXPECT_EQ(async_hash, sync_hash)
          << workload.name << ": async diverged from sync at " << threads
          << " threads";
      if (first) {
        reference = sync_hash;
        first = false;
      } else {
        EXPECT_EQ(sync_hash, reference)
            << workload.name << ": thread count " << threads
            << " changed the histogram";
      }
    }
  }
}

TEST(EngineDeterminism, HashIdenticalWithAndWithoutPoolReuse) {
  for (const Workload& workload : workloads()) {
    for (const int threads : {2, 8}) {
      BatchEngine<StateVectorState> reusing{
          make_simulator(workload.qubits, threads, /*reuse_pool=*/true)};
      BatchEngine<StateVectorState> fresh{
          make_simulator(workload.qubits, threads, /*reuse_pool=*/false)};
      EXPECT_EQ(
          histogram_hash(
              reusing.run(workload.circuit, workload.repetitions, kSeed)
                  .histogram(workload.key)),
          histogram_hash(
              fresh.run(workload.circuit, workload.repetitions, kSeed)
                  .histogram(workload.key)))
          << workload.name << ": pool reuse changed the histogram at "
          << threads << " threads";
    }
  }
}

TEST(EngineDeterminism, SimulatorDelegationMatchesDirectEngineUse) {
  for (const Workload& workload : workloads()) {
    BatchEngine<StateVectorState> engine{make_simulator(workload.qubits, 2)};
    const std::uint64_t direct = histogram_hash(
        engine.run(workload.circuit, workload.repetitions, kSeed)
            .histogram(workload.key));
    Simulator<StateVectorState> sim = make_simulator(workload.qubits, 2);
    Rng rng(kSeed);
    const std::uint64_t delegated = histogram_hash(
        sim.run(workload.circuit, workload.repetitions, rng)
            .histogram(workload.key));
    const std::uint64_t async = histogram_hash(
        sim.run_async(workload.circuit, workload.repetitions, kSeed)
            .get()
            .histogram(workload.key));
    EXPECT_EQ(delegated, direct) << workload.name;
    EXPECT_EQ(async, direct) << workload.name;
  }
}

TEST(EngineDeterminism, CustomHooksMatchNativeHooksThroughEngine) {
  // User-provided hooks never share a snapshot (no thread-safety
  // guarantee against one state probed from many shards): the engine
  // falls back to v1 per-shard private evolution for them. The shard
  // decomposition and streams match the shared path, so hooks that
  // compute the same values as the native ones must produce
  // bit-identical histograms — this pins the shared-snapshot path to
  // the v1 per-shard path bit for bit. (Channel circuits are excluded:
  // native and custom hooks legitimately route channels differently.)
  const Workload workload{"batched", batched_workload(4), 4, 4000, "m"};
  {
    for (const int threads : {2, 8}) {
      SimulatorOptions options;
      options.num_threads = threads;
      options.num_rng_streams = 8;
      Simulator<StateVectorState> native{StateVectorState(workload.qubits),
                                         options};
      Simulator<StateVectorState> custom{
          StateVectorState(workload.qubits),
          [](const Operation& op, StateVectorState& state, Rng& rng) {
            apply_op(op, state, rng);
          },
          [](const StateVectorState& state, Bitstring b) {
            return compute_probability(state, b);
          },
          options};
      ASSERT_TRUE(native.hooks_are_native());
      ASSERT_FALSE(custom.hooks_are_native());
      BatchEngine<StateVectorState> native_engine{std::move(native)};
      BatchEngine<StateVectorState> custom_engine{std::move(custom)};
      EXPECT_EQ(
          histogram_hash(
              custom_engine.run(workload.circuit, workload.repetitions, kSeed)
                  .histogram(workload.key)),
          histogram_hash(
              native_engine.run(workload.circuit, workload.repetitions, kSeed)
                  .histogram(workload.key)))
          << workload.name << ": custom hooks changed the histogram at "
          << threads << " threads";
    }
  }
}

TEST(EngineDeterminism, RunBatchIdenticalAcrossShardingLevelsAndThreads) {
  std::vector<Circuit> circuits;
  circuits.push_back(batched_workload(3));
  circuits.push_back(trajectory_workload(3));
  circuits.push_back(
      with_terminal_measurement(ghz_circuit(3), 3, "m"));

  std::vector<std::uint64_t> reference;
  bool first = true;
  for (const int threads : {1, 2, 8}) {
    for (const bool two_level : {true, false}) {
      SimulatorOptions options;
      options.num_threads = threads;
      options.num_rng_streams = 8;
      options.two_level_batch_sharding = two_level;
      BatchEngine<StateVectorState> engine{
          Simulator<StateVectorState>{StateVectorState(3), options}};
      Rng rng(kSeed);
      const std::vector<Result> results =
          engine.run_batch(circuits, 400, rng);
      ASSERT_EQ(results.size(), circuits.size());
      std::vector<std::uint64_t> hashes;
      for (const Result& result : results) {
        EXPECT_EQ(result.repetitions(), 400u);
        hashes.push_back(histogram_hash(result.histogram("m")));
      }
      if (first) {
        reference = hashes;
        first = false;
      } else {
        EXPECT_EQ(hashes, reference)
            << "threads=" << threads << " two_level=" << two_level
            << " changed a run_batch histogram";
      }
    }
  }
}

TEST(EngineDeterminism, SnapshotPathMatchesPerShardStatistics) {
  // The snapshot-sharing batched path must sample the same distribution
  // as the serial dictionary path (different stream layout, same
  // statistics): compare the merged engine histogram against a serial
  // run at matched repetitions.
  const int n = 3;
  const Circuit circuit =
      with_terminal_measurement(ghz_circuit(n), n, "m");
  const std::uint64_t reps = 40000;

  Simulator<StateVectorState> serial{StateVectorState(n)};
  Rng serial_rng(kSeed);
  const Distribution serial_dist =
      serial.run(circuit, reps, serial_rng).distribution("m");

  BatchEngine<StateVectorState> engine{make_simulator(n, 2)};
  const Distribution engine_dist =
      engine.run(circuit, reps, kSeed + 1).distribution("m");

  EXPECT_LT(total_variation_distance(serial_dist, engine_dist), 0.02);
}

}  // namespace
}  // namespace bgls

// Tests for the fixed-size thread pool behind the batch engine.

#include "engine/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "util/error.h"

namespace bgls {
namespace {

TEST(ThreadPool, RejectsZeroWorkers) {
  EXPECT_THROW(ThreadPool(0), ValueError);
  EXPECT_THROW(ThreadPool(-3), ValueError);
}

TEST(ThreadPool, ReportsItsSize) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3);
}

TEST(ThreadPool, HardwareThreadsIsPositive) {
  EXPECT_GE(ThreadPool::hardware_threads(), 1);
}

TEST(ThreadPool, ResolveNumThreadsMapsAutoAndRejectsNegative) {
  EXPECT_EQ(ThreadPool::resolve_num_threads(0),
            ThreadPool::hardware_threads());
  EXPECT_EQ(ThreadPool::resolve_num_threads(1), 1);
  EXPECT_EQ(ThreadPool::resolve_num_threads(7), 7);
  EXPECT_THROW((void)ThreadPool::resolve_num_threads(-2), ValueError);
}

TEST(ThreadPool, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleRethrowsTaskException) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("task blew up"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The pool stays usable after an exception.
  std::atomic<int> counter{0};
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  const std::size_t count = 1000;
  std::vector<std::atomic<int>> hits(count);
  pool.parallel_for(count,
                    [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < count; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, ParallelForHandlesZeroAndOne) {
  ThreadPool pool(2);
  int calls = 0;
  pool.parallel_for(0, [&calls](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.parallel_for(1, [&calls](std::size_t i) { calls += (i == 0); });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, ParallelForPropagatesException) {
  ThreadPool pool(3);
  std::atomic<int> completed{0};
  EXPECT_THROW(
      pool.parallel_for(50,
                        [&completed](std::size_t i) {
                          if (i == 17) throw std::runtime_error("index 17");
                          completed.fetch_add(1);
                        }),
      std::runtime_error);
  // The rest of the batch still ran: the pool drains fully even after a
  // failure, which keeps it reusable.
  EXPECT_EQ(completed.load(), 49);
}

TEST(ThreadPool, ParallelForUsesWorkerAndCallerConcurrently) {
  // Regression test: a 1-worker pool must still give 2-way parallelism
  // (worker + caller), not silently fall back to a serial loop. Each of
  // the two tasks waits for the other to arrive; serial execution would
  // time out instead of succeeding.
  ThreadPool pool(1);
  std::mutex mutex;
  std::condition_variable both_arrived;
  int arrived = 0;
  bool overlapped = true;
  pool.parallel_for(2, [&](std::size_t) {
    std::unique_lock<std::mutex> lock(mutex);
    ++arrived;
    both_arrived.notify_all();
    if (!both_arrived.wait_for(lock, std::chrono::seconds(5),
                               [&] { return arrived == 2; })) {
      overlapped = false;  // the other task never ran concurrently
    }
  });
  EXPECT_TRUE(overlapped);
}

TEST(ThreadPool, ParallelForWritesIndexedSlotsDeterministically) {
  // Scheduling varies; the indexed output must not.
  ThreadPool pool(4);
  std::vector<std::uint64_t> out(257);
  pool.parallel_for(out.size(),
                    [&out](std::size_t i) { out[i] = i * i + 1; });
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i + 1);
}

}  // namespace
}  // namespace bgls

/// \file test_result_cache.cpp
/// The deterministic result cache (service/result_cache.h): key
/// semantics (scheduling-only knobs excluded, side-effectful requests
/// uncacheable), LRU bounds, and the scheduler integration — a hit is
/// an instantly terminal job whose report is byte-identical to a fresh
/// sample at any thread count.

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>

#include "engine_test_helpers.h"
#include "service/report.h"
#include "service/result_cache.h"
#include "service/scheduler.h"

namespace bgls {
namespace {

using service::JobInfo;
using service::JobScheduler;
using service::JobState;
using service::ResultCache;
using service::ResultCacheOptions;
using service::SchedulerOptions;

RunRequest cacheable_job(std::uint64_t seed = 5, std::uint64_t reps = 400) {
  return RunRequest()
      .with_circuit(testing::trajectory_workload(3, 0.05))
      .with_repetitions(reps)
      .with_seed(seed);
}

TEST(ResultCache, KeyIgnoresSchedulingOnlyKnobs) {
  const auto base = ResultCache::key_for(cacheable_job());
  ASSERT_TRUE(base.has_value());
  // Threads, priority, tenant, deadline: never change the sampled
  // records, so they share the base key.
  EXPECT_EQ(ResultCache::key_for(cacheable_job().with_threads(7)), *base);
  EXPECT_EQ(ResultCache::key_for(cacheable_job().with_priority(9)), *base);
  EXPECT_EQ(ResultCache::key_for(cacheable_job().with_tenant("acme")), *base);
  EXPECT_EQ(ResultCache::key_for(cacheable_job().with_deadline_ms(500)),
            *base);
  // Result-determining fields key apart.
  EXPECT_NE(ResultCache::key_for(cacheable_job(6)), *base);
  EXPECT_NE(ResultCache::key_for(cacheable_job(5, 401)), *base);
  EXPECT_NE(ResultCache::key_for(cacheable_job().with_rng_streams(8)),
            *base);
  EXPECT_NE(ResultCache::key_for(cacheable_job().with_optimization()), *base);
  EXPECT_NE(ResultCache::key_for(
                RunRequest()
                    .with_circuit(testing::trajectory_workload(3, 0.06))
                    .with_repetitions(400)
                    .with_seed(5)),
            *base);
}

TEST(ResultCache, SideEffectfulRequestsAreNotCacheable) {
  // A hit would skip the progress/checkpoint side effects, and a
  // resumed run's result depends on the checkpoint.
  EXPECT_EQ(ResultCache::key_for(cacheable_job().with_progress(50, nullptr)),
            std::nullopt);
  EXPECT_EQ(
      ResultCache::key_for(cacheable_job().with_checkpoint(50, nullptr)),
      std::nullopt);
  EXPECT_EQ(ResultCache::key_for(cacheable_job().with_resume(
                std::make_shared<RunCheckpoint>())),
            std::nullopt);
  // Unresolved symbolic parameters have no canonical serialization.
  Circuit symbolic{h(0), rz(Param(Symbol{"theta"}), 0)};
  symbolic.append(measure({0}, "m"));
  EXPECT_EQ(ResultCache::key_for(RunRequest().with_circuit(symbolic)),
            std::nullopt);
}

TEST(ResultCache, LruEvictsOldestPastBounds) {
  ResultCacheOptions options;
  options.max_entries = 2;
  ResultCache cache(options);
  const auto result = std::make_shared<const RunResult>();
  cache.insert("a", result);
  cache.insert("b", result);
  EXPECT_NE(cache.lookup("a"), nullptr);  // refresh a: b is now LRU
  cache.insert("c", result);
  EXPECT_EQ(cache.lookup("b"), nullptr);
  EXPECT_NE(cache.lookup("a"), nullptr);
  EXPECT_NE(cache.lookup("c"), nullptr);
  const ResultCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.hits, 3u);
  EXPECT_EQ(stats.misses, 1u);
}

TEST(ResultCache, SchedulerHitIsByteIdenticalAcrossThreadCounts) {
  SchedulerOptions options;
  options.result_cache = std::make_shared<service::ResultCache>();
  JobScheduler scheduler(options);

  const std::uint64_t first = scheduler.submit(cacheable_job().with_threads(1));
  const JobInfo first_info = scheduler.wait(first);
  ASSERT_EQ(first_info.state, JobState::kDone);
  EXPECT_FALSE(first_info.from_cache);

  // Same request at a different thread count: answered from the cache,
  // instantly terminal (never started), report byte-identical.
  const std::uint64_t second =
      scheduler.submit(cacheable_job().with_threads(4));
  const JobInfo second_info = scheduler.wait(second);
  ASSERT_EQ(second_info.state, JobState::kDone);
  EXPECT_TRUE(second_info.from_cache);
  EXPECT_EQ(second_info.start_order, 0u);
  const service::RunReportContext context =
      service::report_context(cacheable_job(), 3);
  EXPECT_EQ(service::run_report_string(context, *second_info.result),
            service::run_report_string(context, *first_info.result));

  // Different seed: a miss that samples normally.
  const std::uint64_t third = scheduler.submit(cacheable_job(77));
  EXPECT_FALSE(scheduler.wait(third).from_cache);

  const service::SchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.submitted, 3u);
  EXPECT_EQ(stats.completed, 3u);
  EXPECT_EQ(stats.cache_hits, 1u);
  const ResultCache::Stats cache_stats = options.result_cache->stats();
  EXPECT_EQ(cache_stats.hits, 1u);
  EXPECT_EQ(cache_stats.entries, 2u);
}

TEST(ResultCache, SharedCacheAnswersAcrossSchedulers) {
  // The cache outlives a scheduler: a second (restarted) scheduler
  // sharing it answers without re-sampling — the fleet's workers could
  // even share one in-process cache.
  const auto cache = std::make_shared<service::ResultCache>();
  SchedulerOptions options;
  options.result_cache = cache;
  Counts histogram;
  {
    JobScheduler scheduler(options);
    const JobInfo info = scheduler.wait(scheduler.submit(cacheable_job()));
    ASSERT_EQ(info.state, JobState::kDone);
    histogram = info.result->measurements.histogram("m");
  }
  JobScheduler scheduler(options);
  const JobInfo info = scheduler.wait(scheduler.submit(cacheable_job()));
  EXPECT_TRUE(info.from_cache);
  EXPECT_EQ(info.result->measurements.histogram("m"), histogram);
}

}  // namespace
}  // namespace bgls

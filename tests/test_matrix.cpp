// Tests for the dense complex matrix substrate.

#include "linalg/matrix.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.h"

namespace bgls {
namespace {

const Complex kI{0.0, 1.0};

TEST(Matrix, IdentityTimesAnything) {
  Matrix m(2, 2, {1, 2, 3, 4});
  EXPECT_TRUE((Matrix::identity(2) * m).approx_equal(m));
  EXPECT_TRUE((m * Matrix::identity(2)).approx_equal(m));
}

TEST(Matrix, MatmulKnownProduct) {
  Matrix a(2, 2, {1, 2, 3, 4});
  Matrix b(2, 2, {5, 6, 7, 8});
  Matrix expected(2, 2, {19, 22, 43, 50});
  EXPECT_TRUE((a * b).approx_equal(expected));
}

TEST(Matrix, MatmulComplexEntries) {
  Matrix a(2, 2, {kI, 0, 0, -kI});
  EXPECT_TRUE((a * a).approx_equal(Matrix::identity(2) * Complex{-1.0, 0.0}));
}

TEST(Matrix, MatmulRejectsShapeMismatch) {
  Matrix a(2, 3);
  Matrix b(2, 2);
  EXPECT_THROW(a * b, ValueError);
}

TEST(Matrix, RectangularMatmul) {
  Matrix a(1, 3, {1, 2, 3});
  Matrix b(3, 1, {4, 5, 6});
  const Matrix c = a * b;
  EXPECT_EQ(c.rows(), 1u);
  EXPECT_EQ(c.cols(), 1u);
  EXPECT_NEAR(std::abs(c(0, 0) - Complex{32.0, 0.0}), 0.0, 1e-12);
}

TEST(Matrix, AdjointConjugatesAndTransposes) {
  Matrix a(2, 2, {Complex{1, 1}, Complex{2, -1}, 0, kI});
  const Matrix ad = a.adjoint();
  EXPECT_EQ(ad(0, 0), (Complex{1, -1}));
  EXPECT_EQ(ad(1, 0), (Complex{2, 1}));
  EXPECT_EQ(ad(0, 1), (Complex{0, 0}));
  EXPECT_EQ(ad(1, 1), -kI);
}

TEST(Matrix, KronOfIdentities) {
  EXPECT_TRUE(Matrix::kron(Matrix::identity(2), Matrix::identity(4))
                  .approx_equal(Matrix::identity(8)));
}

TEST(Matrix, KronKnownStructure) {
  Matrix x(2, 2, {0, 1, 1, 0});
  Matrix z(2, 2, {1, 0, 0, -1});
  const Matrix xz = Matrix::kron(x, z);
  // X ⊗ Z: block structure [[0, Z], [Z, 0]].
  EXPECT_EQ(xz(0, 2), (Complex{1, 0}));
  EXPECT_EQ(xz(1, 3), (Complex{-1, 0}));
  EXPECT_EQ(xz(2, 0), (Complex{1, 0}));
  EXPECT_EQ(xz(3, 1), (Complex{-1, 0}));
  EXPECT_EQ(xz(0, 0), (Complex{0, 0}));
}

TEST(Matrix, ApplyMatchesMatmul) {
  Matrix a(2, 2, {1, kI, -kI, 2});
  const std::vector<Complex> x{Complex{1, 0}, Complex{0, 1}};
  const auto y = a.apply(x);
  EXPECT_NEAR(std::abs(y[0] - (Complex{1, 0} + kI * Complex{0, 1})), 0.0,
              1e-12);
  EXPECT_NEAR(std::abs(y[1] - (-kI * Complex{1, 0} + 2.0 * Complex{0, 1})),
              0.0, 1e-12);
}

TEST(Matrix, TraceSumsDiagonal) {
  Matrix a(2, 2, {1, 99, 99, kI});
  EXPECT_NEAR(std::abs(a.trace() - Complex{1.0, 1.0}), 0.0, 1e-12);
}

TEST(Matrix, UnitaryDetection) {
  const double s = 1.0 / std::sqrt(2.0);
  Matrix h(2, 2, {s, s, s, -s});
  EXPECT_TRUE(h.is_unitary());
  Matrix not_unitary(2, 2, {1, 0, 0, 2});
  EXPECT_FALSE(not_unitary.is_unitary());
  EXPECT_FALSE(Matrix(2, 3).is_unitary());
}

TEST(Matrix, HermitianDetection) {
  Matrix herm(2, 2, {1, kI, -kI, 2});
  EXPECT_TRUE(herm.is_hermitian());
  Matrix nonherm(2, 2, {1, kI, kI, 2});
  EXPECT_FALSE(nonherm.is_hermitian());
}

TEST(Matrix, FrobeniusNorm) {
  Matrix a(2, 2, {3, 0, 0, 4});
  EXPECT_DOUBLE_EQ(a.frobenius_norm(), 5.0);
}

TEST(Matrix, ConstructorRejectsBadDataSize) {
  EXPECT_THROW(Matrix(2, 2, {1, 2, 3}), ValueError);
}

}  // namespace
}  // namespace bgls

// Tests for the parallel batch-sampling engine: bit-exact determinism
// across thread counts on both sampler paths, statistical correctness,
// the many-circuit batch API, and the per-stream stat counters.

#include "engine/engine.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "channels/channels.h"
#include "circuit/circuit.h"
#include "circuit/noise.h"
#include "circuit/random.h"
#include "core/simulator.h"
#include "engine_test_helpers.h"
#include "statevector/state.h"
#include "test_helpers.h"
#include "util/error.h"
#include "util/stats.h"

namespace bgls {
namespace {

using testing::with_terminal_measurement;

constexpr std::uint64_t kSeed = 1234;

/// A unitary circuit eligible for the dictionary-batched path.
Circuit batched_workload(int n) {
  return testing::batched_workload(n, /*circuit_seed=*/17, /*num_moments=*/12,
                                   /*op_density=*/0.7);
}

/// A noisy circuit forced onto the per-trajectory path.
Circuit trajectory_workload(int n) {
  return testing::trajectory_workload(n, /*depolarize_p=*/0.05);
}

/// A circuit with mid-circuit measurement + classical feed-forward
/// (never batchable, exercises trajectory machinery end to end).
Circuit feed_forward_workload() {
  Circuit circuit;
  circuit.append(h(0));
  circuit.append(measure({0}, "mid"));
  circuit.append(x(1).controlled_by_measurement("mid"));
  circuit.append(measure({1}, "out"));
  return circuit;
}

Simulator<StateVectorState> make_simulator(int n, int num_threads,
                                           std::uint64_t num_streams = 8) {
  return testing::make_sv_simulator(n, num_threads, num_streams);
}

Counts engine_histogram(const Circuit& circuit, int n, int num_threads,
                        std::uint64_t reps, const std::string& key) {
  BatchEngine<StateVectorState> engine{make_simulator(n, num_threads)};
  Rng rng(kSeed);
  return engine.run(circuit, reps, rng).histogram(key);
}

TEST(BatchEngine, BatchedPathBitIdenticalAcrossThreadCounts) {
  const int n = 4;
  const Circuit circuit = batched_workload(n);
  const Counts reference = engine_histogram(circuit, n, 1, 5000, "m");
  for (const int threads : {2, 8}) {
    EXPECT_EQ(engine_histogram(circuit, n, threads, 5000, "m"), reference)
        << "thread count " << threads << " changed the batched histogram";
  }
}

TEST(BatchEngine, TrajectoryPathBitIdenticalAcrossThreadCounts) {
  const int n = 3;
  const Circuit circuit = trajectory_workload(n);
  const Counts reference = engine_histogram(circuit, n, 1, 600, "m");
  for (const int threads : {2, 8}) {
    EXPECT_EQ(engine_histogram(circuit, n, threads, 600, "m"), reference)
        << "thread count " << threads << " changed the trajectory histogram";
  }
}

TEST(BatchEngine, FeedForwardBitIdenticalAcrossThreadCounts) {
  const Circuit circuit = feed_forward_workload();
  const Counts reference = engine_histogram(circuit, 2, 1, 400, "out");
  for (const int threads : {2, 8}) {
    EXPECT_EQ(engine_histogram(circuit, 2, threads, 400, "out"), reference);
  }
}

TEST(BatchEngine, SampleBitIdenticalAcrossThreadCounts) {
  const int n = 4;
  const Circuit circuit = batched_workload(n);
  Counts reference;
  for (const int threads : {1, 2, 8}) {
    BatchEngine<StateVectorState> engine{make_simulator(n, threads)};
    Rng rng(kSeed);
    const Counts counts = engine.sample(circuit, 3000, rng);
    std::uint64_t total = 0;
    for (const auto& [bits, count] : counts) total += count;
    EXPECT_EQ(total, 3000u);
    if (threads == 1) {
      reference = counts;
    } else {
      EXPECT_EQ(counts, reference);
    }
  }
}

TEST(BatchEngine, RepetitionCountIsPreserved) {
  const int n = 3;
  const Circuit circuit = trajectory_workload(n);
  for (const std::uint64_t reps : {std::uint64_t{1}, std::uint64_t{7},
                                   std::uint64_t{64}, std::uint64_t{1001}}) {
    BatchEngine<StateVectorState> engine{make_simulator(n, 4)};
    Rng rng(kSeed);
    EXPECT_EQ(engine.run(circuit, reps, rng).repetitions(), reps);
  }
}

TEST(BatchEngine, BatchedHistogramMatchesIdealDistribution) {
  const int n = 3;
  const Circuit circuit =
      with_terminal_measurement(ghz_circuit(n), n, "m");
  BatchEngine<StateVectorState> engine{make_simulator(n, 2)};
  Rng rng(kSeed);
  const std::uint64_t reps = 20000;
  const Result result = engine.run(circuit, reps, rng);
  const Distribution empirical = result.distribution("m");
  const Distribution ideal = testing::ideal_marginal_distribution(
      circuit, n, result.measured_qubits("m"));
  EXPECT_GT(distribution_overlap(empirical, ideal), 0.98);
}

TEST(BatchEngine, TrajectoryHistogramMatchesSerialDistribution) {
  // The sharded trajectory run samples the same distribution as the
  // classic serial path (different streams, same statistics).
  const int n = 3;
  const Circuit circuit = trajectory_workload(n);
  const std::uint64_t reps = 20000;

  Simulator<StateVectorState> serial{StateVectorState(n)};
  Rng serial_rng(kSeed);
  const Distribution serial_dist =
      serial.run(circuit, reps, serial_rng).distribution("m");

  BatchEngine<StateVectorState> engine{make_simulator(n, 4)};
  Rng engine_rng(kSeed + 1);
  const Distribution engine_dist =
      engine.run(circuit, reps, engine_rng).distribution("m");

  EXPECT_LT(total_variation_distance(serial_dist, engine_dist), 0.05);
}

TEST(BatchEngine, RunBatchIsDeterministicAndOrdered) {
  const int n = 3;
  std::vector<Circuit> circuits;
  circuits.push_back(with_terminal_measurement(ghz_circuit(n), n, "m"));
  circuits.push_back(batched_workload(n));
  circuits.push_back(trajectory_workload(n));

  std::vector<Counts> reference;
  for (const int threads : {1, 4}) {
    BatchEngine<StateVectorState> engine{make_simulator(n, threads)};
    Rng rng(kSeed);
    const std::vector<Result> results =
        engine.run_batch(circuits, 500, rng);
    ASSERT_EQ(results.size(), circuits.size());
    std::vector<Counts> histograms;
    for (const Result& result : results) {
      EXPECT_EQ(result.repetitions(), 500u);
      histograms.push_back(result.histogram("m"));
    }
    if (threads == 1) {
      reference = histograms;
    } else {
      EXPECT_EQ(histograms, reference);
    }
  }
}

TEST(BatchEngine, RunBatchValidatesEvenWithZeroRepetitions) {
  // Zero-repetition shards never reach a per-shard Simulator::run, so
  // run_batch must validate up front: an unrunnable circuit has to
  // throw, not silently come back as an empty Result.
  const int n = 2;
  std::vector<Circuit> circuits;
  circuits.push_back(ghz_circuit(n));  // no measurements
  BatchEngine<StateVectorState> engine{make_simulator(n, 2)};
  Rng rng(kSeed);
  EXPECT_THROW(engine.run_batch(circuits, 0, rng), ValueError);
  EXPECT_THROW(engine.run_batch(circuits, 100, rng), ValueError);
}

TEST(BatchEngine, PerStreamStatsSumToTotals) {
  const int n = 3;
  const Circuit circuit = trajectory_workload(n);
  BatchEngine<StateVectorState> engine{make_simulator(n, 2, /*streams=*/8)};
  Rng rng(kSeed);
  engine.run(circuit, 100, rng);
  const RunStats& stats = engine.last_run_stats();
  EXPECT_EQ(stats.threads_used, 2u);
  ASSERT_EQ(stats.per_stream.size(), 8u);
  std::size_t trajectories = 0, applications = 0;
  for (const StreamStats& shard : stats.per_stream) {
    trajectories += shard.trajectories;
    applications += shard.state_applications;
  }
  EXPECT_EQ(trajectories, 100u);
  EXPECT_EQ(trajectories, stats.trajectories);
  EXPECT_EQ(applications, stats.state_applications);
}

TEST(BatchEngine, StreamCountCapsAtRepetitions) {
  const int n = 2;
  const Circuit circuit =
      with_terminal_measurement(ghz_circuit(n), n, "m");
  BatchEngine<StateVectorState> engine{make_simulator(n, 4, /*streams=*/16)};
  Rng rng(kSeed);
  engine.run(circuit, 3, rng);
  EXPECT_LE(engine.last_run_stats().per_stream.size(), 3u);
}

TEST(Simulator, DelegatesMultiRepRunsToEngine) {
  const int n = 3;
  const Circuit circuit = trajectory_workload(n);
  Simulator<StateVectorState> sim = make_simulator(n, 2);
  Rng rng(kSeed);
  sim.run(circuit, 50, rng);
  EXPECT_EQ(sim.last_run_stats().threads_used, 2u);
  EXPECT_FALSE(sim.last_run_stats().per_stream.empty());
}

TEST(Simulator, SingleRepetitionStaysOnSerialPath) {
  const int n = 2;
  const Circuit circuit =
      with_terminal_measurement(ghz_circuit(n), n, "m");
  Simulator<StateVectorState> sim = make_simulator(n, 4);
  Rng rng(kSeed);
  sim.run(circuit, 1, rng);
  EXPECT_EQ(sim.last_run_stats().threads_used, 1u);
  EXPECT_TRUE(sim.last_run_stats().per_stream.empty());
}

TEST(Simulator, EngineResultsIdenticalAcrossThreadCountsViaOptions) {
  // The SimulatorOptions::num_threads plumbing preserves the engine's
  // determinism guarantee for any thread count > 1 (and 0 = auto).
  const int n = 4;
  const Circuit circuit = batched_workload(n);
  Counts reference;
  bool first = true;
  for (const int threads : {2, 3, 8, 0}) {
    Simulator<StateVectorState> sim = make_simulator(n, threads);
    Rng rng(kSeed);
    const Counts histogram = sim.run(circuit, 2000, rng).histogram("m");
    if (first) {
      reference = histogram;
      first = false;
    } else {
      EXPECT_EQ(histogram, reference);
    }
  }
}

TEST(Result, AppendMergesRecordsAndChecksQubits) {
  Result a;
  a.declare_key("m", {0, 1});
  a.add_record("m", 2);
  Result b;
  b.declare_key("m", {0, 1});
  b.add_records("m", 3, 2);
  a.append(b);
  EXPECT_EQ(a.repetitions(), 3u);
  EXPECT_EQ(a.values("m"), (std::vector<Bitstring>{2, 3, 3}));

  Result mismatched;
  mismatched.declare_key("m", {1, 0});
  EXPECT_THROW(a.append(mismatched), ValueError);

  // Appending into an empty result adopts the keys.
  Result fresh;
  fresh.append(a);
  EXPECT_EQ(fresh.keys(), a.keys());
  EXPECT_EQ(fresh.values("m"), a.values("m"));

  // Self-append doubles the records (no aliasing UB).
  fresh.append(fresh);
  EXPECT_EQ(fresh.repetitions(), 6u);
  EXPECT_EQ(fresh.values("m"), (std::vector<Bitstring>{2, 3, 3, 2, 3, 3}));
}

}  // namespace
}  // namespace bgls

/// \file test_trace_propagation.cpp
/// Cross-process trace propagation (the observability tentpole): a
/// propagated trace context flows client → fleet → worker → scheduler
/// → engine, span IDs are deterministic FNV-1a derivations, and the
/// resulting tree is byte-stable across thread counts. Also pins the
/// timeline exports (span-tree text, Chrome trace-event JSON) and the
/// protocol span round-trip. Runs under TSan and ASan+UBSan in CI.

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <string>
#include <vector>

#include "engine_test_helpers.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/timeline.h"
#include "obs/trace.h"
#include "service/client.h"
#include "service/daemon.h"
#include "service/fleet.h"
#include "service/protocol.h"
#include "service/scheduler.h"
#include "util/json_parser.h"
#include "util/json_writer.h"

namespace bgls {
namespace {

using namespace bgls::service;
using obs::SpanRecord;
using obs::Trace;
using testing::trajectory_workload;

constexpr std::uint64_t kTraceId = 424242;

/// Identity + structure only: durations are the one legitimately
/// nondeterministic part of a span, so byte-stable comparisons zero
/// them first. ([[maybe_unused]]: the telemetry-off build compiles the
/// span-recording tests out and keeps only the inertness test.)
[[maybe_unused]] std::vector<SpanRecord> zero_durations(
    std::vector<SpanRecord> spans) {
  for (SpanRecord& span : spans) span.seconds = 0.0;
  return spans;
}

[[maybe_unused]] bool has_span(const std::vector<SpanRecord>& spans,
                               std::string_view name, std::uint64_t parent) {
  for (const SpanRecord& span : spans) {
    if (span.name == name && span.parent == parent) return true;
  }
  return false;
}

const char kGhzQasm[] =
    "OPENQASM 2.0;\n"
    "include \"qelib1.inc\";\n"
    "qreg q[3];\n"
    "creg c[3];\n"
    "h q[0];\n"
    "cx q[0],q[1];\n"
    "cx q[1],q[2];\n"
    "measure q -> c;\n";

/// A unique private Unix socket path.
std::string unique_socket_path() {
  static std::atomic<int> counter{0};
  return "/tmp/bgls_trace_test_" + std::to_string(::getpid()) + "_" +
         std::to_string(counter.fetch_add(1)) + ".sock";
}

#if BGLS_TELEMETRY

TEST(TracePropagation, SchedulerAdoptsPropagatedContext) {
  JobScheduler scheduler;
  const std::uint64_t id = scheduler.submit(
      RunRequest()
          .with_circuit(trajectory_workload(3, 0.05))
          .with_repetitions(500)
          .with_seed(5)
          .with_threads(2)
          .with_rng_streams(4)
          .with_trace_context(kTraceId, /*parent=*/777));
  ASSERT_EQ(scheduler.wait(id).state, JobState::kDone);
  const JobInfo info = scheduler.info(id);
  ASSERT_NE(info.trace, nullptr);
  EXPECT_EQ(info.trace->id(), kTraceId);

  // Top-level local spans hang under the propagated parent — that is
  // what lets another process's tree stitch onto this one.
  const std::vector<SpanRecord> spans = info.trace->spans();
  EXPECT_TRUE(has_span(spans, "queue", 777));
  EXPECT_TRUE(has_span(spans, "run", 777));
  // Inner spans (session phases, engine shards) attach under "run".
  const std::uint64_t run_id = Trace::span_id(kTraceId, "run", 0);
  EXPECT_TRUE(has_span(spans, "sample", run_id));
  EXPECT_TRUE(has_span(spans, "shard", run_id));
}

TEST(TracePropagation, TraceIdDefaultsToJobIdWithoutContext) {
  JobScheduler scheduler;
  const std::uint64_t id = scheduler.submit(
      RunRequest()
          .with_circuit(trajectory_workload(3, 0.05))
          .with_repetitions(200)
          .with_seed(5));
  ASSERT_EQ(scheduler.wait(id).state, JobState::kDone);
  const JobInfo info = scheduler.info(id);
  ASSERT_NE(info.trace, nullptr);
  EXPECT_EQ(info.trace->id(), id);  // minted from the job id
  EXPECT_EQ(info.trace->parent(), 0u);
}

TEST(TracePropagation, EngineSpanTreeByteStableOneVsEightThreads) {
  // The acceptance contract at the layer that actually moves work
  // between threads: the engine with 1 worker runs every shard inline
  // on the caller's thread (inside whatever span the caller has open),
  // with 8 workers the shards land on pool threads — and the recorded
  // tree must be byte-identical either way. Shard decomposition depends
  // only on (repetitions, streams), span IDs only on (trace, name,
  // index), and Nest::kRoot pins shard parentage to the trace root
  // regardless of which thread executed the shard. Only durations may
  // differ, and those are zeroed.
  const Circuit circuit = trajectory_workload(3, 0.05);
  std::vector<std::string> rendered;
  std::vector<std::string> chrome;
  std::vector<Counts> histograms;
  for (const int threads : {1, 8}) {
    Trace trace(kTraceId);
    // Mirror the scheduler: the job's "run" span is the tree root.
    trace.set_root(Trace::span_id(kTraceId, "run", 0));
    SimulatorOptions options;
    options.num_threads = threads;
    options.num_rng_streams = 4;
    options.trace = &trace;
    BatchEngine<StateVectorState> engine{
        Simulator<StateVectorState>{StateVectorState(3), options}};
    Rng rng(5);
    Result result;
    {
      // An open caller-side span is the trap this test pins: inline
      // shards would nest under it with kEnclosing semantics, pool
      // shards would not.
      obs::TraceSpan sample(&trace, "sample");
      result = engine.run(circuit, 2000, rng);
    }
    histograms.push_back(result.histogram("m"));
    const std::vector<SpanRecord> spans = zero_durations(trace.spans());
    rendered.push_back(obs::render_span_tree(kTraceId, spans));
    chrome.push_back(obs::to_chrome_trace(kTraceId, spans));
  }
  EXPECT_EQ(rendered[0], rendered[1]);
  EXPECT_EQ(chrome[0], chrome[1]);
  EXPECT_EQ(histograms[0], histograms[1]);  // the BGLS contract itself
  // One tree, not a forest: shard spans present in both renders.
  EXPECT_NE(rendered[0].find("- shard"), std::string::npos);
}

TEST(TracePropagation, SchedulerSpanTreeByteStableAcrossThreadCounts) {
  // Same property through the full serving path (scheduler → session →
  // engine), across engine thread counts. threads == 1 requests take
  // the documented classic serial path — a different, stream-free
  // decomposition whose histograms legitimately differ — so the
  // service-level comparison varies the *engine* pool width.
  std::vector<std::string> rendered;
  std::vector<std::string> chrome;
  for (const int threads : {2, 8}) {
    JobScheduler scheduler;
    const std::uint64_t id = scheduler.submit(
        RunRequest()
            .with_circuit(trajectory_workload(3, 0.05))
            .with_repetitions(2000)
            .with_seed(5)
            .with_threads(threads)
            .with_rng_streams(4)
            .with_trace_context(kTraceId));
    ASSERT_EQ(scheduler.wait(id).state, JobState::kDone);
    const std::vector<SpanRecord> spans =
        zero_durations(scheduler.info(id).trace->spans());
    rendered.push_back(obs::render_span_tree(kTraceId, spans));
    chrome.push_back(obs::to_chrome_trace(kTraceId, spans));
  }
  EXPECT_EQ(rendered[0], rendered[1]);
  EXPECT_EQ(chrome[0], chrome[1]);
  // One tree, not a forest: every shard span nests under "run".
  EXPECT_NE(rendered[0].find("- run"), std::string::npos);
  EXPECT_NE(rendered[0].find("  - shard"), std::string::npos);
}

TEST(TracePropagation, SpanIdsAreStableFnv1aDerivations) {
  // Pinned values: the IDs are part of the wire contract (a client may
  // compute span_id("fleet.place") to stitch trees), so a hash change
  // is a breaking protocol change, not an implementation detail.
  EXPECT_EQ(Trace::span_id(kTraceId, "run", 0),
            Trace::span_id(kTraceId, "run", 0));
  EXPECT_NE(Trace::span_id(kTraceId, "run", 0),
            Trace::span_id(kTraceId, "run", 1));
  EXPECT_NE(Trace::span_id(kTraceId, "run", 0),
            Trace::span_id(kTraceId + 1, "run", 0));
  EXPECT_NE(Trace::span_id(kTraceId, "run", 0), 0u);
}

TEST(TracePropagation, ProtocolSpansRoundTrip) {
  std::vector<SpanRecord> spans;
  spans.push_back({11, 0, "fleet.place", 0, 0.25});
  spans.push_back({22, 11, "run", 0, 0.125});
  spans.push_back({33, 22, "shard", 3, 0.0625});

  std::ostringstream os;
  JsonWriter json(os, JsonWriter::Style::kCompact);
  json.begin_object();
  json.key("spans");
  write_spans(json, spans);
  json.end_object();

  const std::vector<SpanRecord> parsed =
      parse_spans(JsonValue::parse(os.str()));
  ASSERT_EQ(parsed.size(), spans.size());
  for (std::size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(parsed[i].id, spans[i].id);
    EXPECT_EQ(parsed[i].parent, spans[i].parent);
    EXPECT_EQ(parsed[i].name, spans[i].name);
    EXPECT_EQ(parsed[i].index, spans[i].index);
    EXPECT_EQ(parsed[i].seconds, spans[i].seconds);
  }
}

TEST(Timeline, RenderSpanTreeGolden) {
  // Durations chosen as exact binary fractions so the fixed-point
  // formatting is stable.
  std::vector<SpanRecord> spans;
  spans.push_back({2, 0, "place", 0, 0.5});
  spans.push_back({3, 2, "run", 0, 0.25});
  spans.push_back({4, 2, "queue", 0, 0.125});
  spans.push_back({5, 3, "shard", 1, 0.0625});
  EXPECT_EQ(obs::render_span_tree(42, spans),
            "trace 0x000000000000002a (4 spans)\n"
            "- place (id=0x0000000000000002, 500.000 ms)\n"
            "  - queue (id=0x0000000000000004, 125.000 ms)\n"
            "  - run (id=0x0000000000000003, 250.000 ms)\n"
            "    - shard[1] (id=0x0000000000000005, 62.500 ms)\n");
}

TEST(Timeline, ChromeTraceGoldenAndValidJson) {
  std::vector<SpanRecord> spans;
  spans.push_back({2, 0, "place", 0, 0.5});
  spans.push_back({3, 2, "run", 0, 0.25});
  spans.push_back({4, 2, "queue", 0, 0.125});
  const std::string text = obs::to_chrome_trace(42, spans);
  EXPECT_EQ(
      text,
      "{\"displayTimeUnit\":\"ms\",\"traceEvents\":["
      "{\"name\":\"place\",\"cat\":\"bgls\",\"ph\":\"X\",\"ts\":0,"
      "\"dur\":500000,\"pid\":1,\"tid\":0,\"args\":{"
      "\"trace_id\":\"0x000000000000002a\","
      "\"span_id\":\"0x0000000000000002\","
      "\"parent_span_id\":\"0x0000000000000000\",\"index\":0}},"
      "{\"name\":\"queue\",\"cat\":\"bgls\",\"ph\":\"X\",\"ts\":0,"
      "\"dur\":125000,\"pid\":1,\"tid\":1,\"args\":{"
      "\"trace_id\":\"0x000000000000002a\","
      "\"span_id\":\"0x0000000000000004\","
      "\"parent_span_id\":\"0x0000000000000002\",\"index\":0}},"
      "{\"name\":\"run\",\"cat\":\"bgls\",\"ph\":\"X\",\"ts\":125000,"
      "\"dur\":250000,\"pid\":1,\"tid\":1,\"args\":{"
      "\"trace_id\":\"0x000000000000002a\","
      "\"span_id\":\"0x0000000000000003\","
      "\"parent_span_id\":\"0x0000000000000002\",\"index\":0}}]}");
  // And it is one well-formed JSON document Chrome can load.
  const JsonValue parsed = JsonValue::parse(text);
  EXPECT_EQ(parsed.find("traceEvents")->items().size(), 3u);
}

/// Fleet fixture: two in-process workers behind one fleet front, the
/// same wiring bgls_fleet runs.
class FleetTraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::Logger::global().reset_for_testing();
    for (int i = 0; i < 2; ++i) {
      DaemonOptions options;
      options.endpoint = Endpoint::unix_socket(unique_socket_path());
      workers_.push_back(std::make_unique<ServiceDaemon>(options));
      workers_.back()->start();
    }
    FleetOptions options;
    options.endpoint = Endpoint::unix_socket(unique_socket_path());
    for (const auto& worker : workers_) {
      options.workers.push_back(worker->endpoint());
    }
    fleet_ = std::make_unique<FleetDaemon>(options);
    fleet_->start();
  }

  void TearDown() override {
    fleet_->stop();
    for (auto& worker : workers_) worker->stop();
    obs::Logger::global().reset_for_testing();
  }

  std::vector<std::unique_ptr<ServiceDaemon>> workers_;
  std::unique_ptr<FleetDaemon> fleet_;
};

TEST_F(FleetTraceTest, MergedTreeStitchesWorkerUnderFleetPlacement) {
  ServiceClient client(fleet_->endpoint());
  SubmitArgs args;
  args.qasm = kGhzQasm;
  args.repetitions = 1024;
  args.seed = 7;
  args.trace_id = kTraceId;
  const std::uint64_t job = client.submit(args);
  client.wait_report(job);

  const JsonValue response = client.trace(job);
  EXPECT_EQ(response.u64_or("trace_id", 0), kTraceId);
  const std::vector<SpanRecord> spans = parse_spans(response);

  // The fleet's own placement/proxy spans are the roots...
  EXPECT_TRUE(has_span(spans, "fleet.place", 0));
  EXPECT_TRUE(has_span(spans, "fleet.proxy", 0));
  // ...and the worker's top-level spans hang under fleet.place because
  // the fleet forwarded (trace_id, parent=fleet.place) on the wire.
  const std::uint64_t place_id = Trace::span_id(kTraceId, "fleet.place", 0);
  EXPECT_TRUE(has_span(spans, "queue", place_id));
  EXPECT_TRUE(has_span(spans, "run", place_id));
  // Engine/session spans survive the merge too.
  const std::uint64_t run_id = Trace::span_id(kTraceId, "run", 0);
  EXPECT_TRUE(has_span(spans, "sample", run_id));

  // The merged tree renders as a single stitched forest whose worker
  // subtree nests below the fleet placement span.
  const std::string tree =
      obs::render_span_tree(kTraceId, zero_durations(spans));
  EXPECT_NE(tree.find("- fleet.place"), std::string::npos);
  EXPECT_NE(tree.find("  - run"), std::string::npos);
}

TEST_F(FleetTraceTest, LogsOpTailsByTraceId) {
  ServiceClient client(fleet_->endpoint());
  obs::log(obs::LogLevel::kWarn, "test", "correlated line", {{"k", 1}},
           /*trace_id=*/kTraceId);
  obs::log(obs::LogLevel::kWarn, "test", "other trace", {},
           /*trace_id=*/999);
  const JsonValue response = client.logs("warn", kTraceId);
  const JsonValue* lines = response.find("lines");
  ASSERT_NE(lines, nullptr);
  ASSERT_EQ(lines->items().size(), 1u);
  const JsonValue parsed = JsonValue::parse(lines->items()[0].as_string());
  EXPECT_EQ(parsed.string_or("msg", ""), "correlated line");
  EXPECT_EQ(parsed.u64_or("trace_id", 0), kTraceId);
}

TEST(TraceDeterminism, HistogramsIdenticalWithTracingOnAndOff) {
  // Observation-only: disabling every telemetry hook (traces, logs,
  // metrics) must not move a single sampled bit.
  const auto run_once = [](bool telemetry_on) {
    obs::EnabledScope scope(telemetry_on);
    JobScheduler scheduler;
    const std::uint64_t id = scheduler.submit(
        RunRequest()
            .with_circuit(trajectory_workload(3, 0.05))
            .with_repetitions(3000)
            .with_seed(11)
            .with_rng_streams(4)
            .with_trace_context(kTraceId));
    const JobInfo info = scheduler.wait(id);
    return info.result->measurements.histogram("m");
  };
  EXPECT_EQ(run_once(true), run_once(false));
}

#else  // !BGLS_TELEMETRY

TEST(TracePropagationCompiledOut, TraceOpReportsNoSpans) {
  // With telemetry compiled out the propagated context is still parsed
  // and accepted (protocol compatibility), but no trace is minted —
  // and the trace op still answers, with trace_id 0 and no spans.
  JobScheduler scheduler;
  const std::uint64_t id = scheduler.submit(
      RunRequest()
          .with_circuit(trajectory_workload(3, 0.05))
          .with_repetitions(200)
          .with_seed(5)
          .with_trace_context(kTraceId));
  ASSERT_EQ(scheduler.wait(id).state, JobState::kDone);
  EXPECT_EQ(scheduler.info(id).trace, nullptr);

  DaemonOptions options;
  options.endpoint = Endpoint::unix_socket(unique_socket_path());
  ServiceDaemon daemon(options);
  daemon.start();
  {
    ServiceClient client(daemon.endpoint());
    SubmitArgs args;
    args.qasm = kGhzQasm;
    args.repetitions = 128;
    args.seed = 5;
    args.trace_id = kTraceId;
    const std::uint64_t job = client.submit(args);
    client.wait_report(job);
    const JsonValue response = client.trace(job);
    EXPECT_EQ(response.u64_or("trace_id", 1), 0u);
    EXPECT_TRUE(response.find("spans")->items().empty());
  }
  daemon.stop();
}

#endif  // BGLS_TELEMETRY

}  // namespace
}  // namespace bgls

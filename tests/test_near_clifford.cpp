// Sum-over-Cliffords tests: Clifford-angle exactness, branch statistics,
// and convergence of the sampled distribution toward the exact one.

#include "stabilizer/near_clifford.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "circuit/random.h"
#include "core/simulator.h"
#include "test_helpers.h"
#include "util/error.h"

namespace bgls {
namespace {

using std::numbers::pi;

/// Runs the near-Clifford BGLS sampler. Sample parallelization must be
/// disabled so every repetition re-runs the circuit and explores a fresh
/// stochastic Clifford branch (Sec. 3.2.3 of the paper makes the same
/// point).
Counts sample_near_clifford(const Circuit& circuit, int n, int reps,
                            Rng& rng) {
  Simulator<CHState> sim{
      CHState(n),
      [](const Operation& op, CHState& state, Rng& inner_rng) {
        act_on_near_clifford(op, state, inner_rng);
      },
      [](const CHState& state, Bitstring b) { return state.probability(b); },
      SimulatorOptions{.skip_diagonal_updates = false,
                       .disable_sample_parallelization = true}};
  return sim.sample(circuit, static_cast<std::uint64_t>(reps), rng);
}

/// Exact expected output of sum-over-Cliffords sampling for circuits
/// whose only non-Clifford gates are T gates: every T is replaced by I
/// or S with probability 1/2 each (|c_I| = |c_S| exactly at θ = π/4), so
/// the sampler's stationary distribution is the uniform mixture of the
/// 2^#T branch-circuit distributions — not the true Born distribution.
/// The gap between the two is exactly the overlap lag of Figs. 4–5.
Distribution exact_branch_mixture(const Circuit& circuit, int n) {
  std::vector<std::pair<std::size_t, std::size_t>> t_positions;
  const auto& moments = circuit.moments();
  for (std::size_t m = 0; m < moments.size(); ++m) {
    for (std::size_t o = 0; o < moments[m].operations().size(); ++o) {
      if (moments[m].operations()[o].gate().kind() == GateKind::kT) {
        t_positions.emplace_back(m, o);
      }
    }
  }
  const std::size_t branches = std::size_t{1} << t_positions.size();
  Distribution mixture;
  for (std::size_t branch = 0; branch < branches; ++branch) {
    Circuit substituted;
    std::size_t t_seen = 0;
    for (std::size_t m = 0; m < moments.size(); ++m) {
      for (const auto& op : moments[m].operations()) {
        if (op.gate().kind() == GateKind::kT) {
          const bool use_s = (branch >> t_seen++) & 1u;
          if (use_s) substituted.append(s(op.qubits()[0]));
          // Identity branch: skip the gate entirely.
        } else {
          substituted.append(op);
        }
      }
    }
    const auto dist = testing::ideal_distribution(substituted, n);
    const double weight = 1.0 / static_cast<double>(branches);
    for (const auto& [bits, p] : dist) mixture[bits] += weight * p;
  }
  return mixture;
}

TEST(NearClifford, CliffordGatesPassThrough) {
  CHState ch(2);
  Rng rng(1);
  act_on_near_clifford(h(0), ch, rng);
  act_on_near_clifford(cnot(0, 1), ch, rng);
  EXPECT_NEAR(ch.probability(from_string("11")), 0.5, 1e-12);
}

TEST(NearClifford, CliffordAnglesAreExact) {
  // Rz at multiples of π/2 must match the statevector exactly,
  // including the global phase.
  for (const double theta : {0.0, pi / 2.0, pi, 3.0 * pi / 2.0, 2.0 * pi,
                             -pi / 2.0}) {
    Circuit circuit{h(0), rz(theta, 0), h(0)};
    CHState ch(1);
    Rng rng(1);
    for (const auto& op : circuit.all_operations()) {
      act_on_near_clifford(op, ch, rng);
    }
    const auto reference = testing::ideal_statevector(circuit, 1);
    for (Bitstring b = 0; b < 2; ++b) {
      EXPECT_NEAR(std::abs(ch.amplitude(b) - reference[b]), 0.0, 1e-9)
          << "theta=" << theta;
    }
  }
}

TEST(NearClifford, PhaseGateCliffordAnglesAreExact) {
  // Phase(π/2) = S exactly.
  Circuit circuit{h(0)};
  circuit.append(Operation(Gate::Phase(pi / 2.0), {0}));
  CHState ch(1);
  Rng rng(1);
  for (const auto& op : circuit.all_operations()) {
    act_on_near_clifford(op, ch, rng);
  }
  const auto reference = testing::ideal_statevector(circuit, 1);
  for (Bitstring b = 0; b < 2; ++b) {
    EXPECT_NEAR(std::abs(ch.amplitude(b) - reference[b]), 0.0, 1e-9);
  }
}

TEST(NearClifford, TGateBranchesBetweenIAndS) {
  NearCliffordStats stats;
  Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    CHState ch(1);
    act_on_near_clifford(t(0), ch, rng, &stats);
  }
  EXPECT_EQ(stats.rotations_decomposed, 2000u);
  EXPECT_EQ(stats.identity_branches + stats.s_branches, 2000u);
  // For θ = π/4: |c_I| = cos - sin ≈ 0.5412 .. |c_S| = √2 sin ≈ 0.5412.
  // Both branches occur with substantial probability.
  EXPECT_GT(stats.identity_branches, 500u);
  EXPECT_GT(stats.s_branches, 500u);
}

TEST(NearClifford, RejectsUnsupportedGates) {
  CHState ch(3);
  Rng rng(1);
  EXPECT_THROW(act_on_near_clifford(ccx(0, 1, 2), ch, rng),
               UnsupportedOperationError);
  EXPECT_THROW(act_on_near_clifford(rx(0.3, 0), ch, rng),
               UnsupportedOperationError);
}

TEST(NearClifford, RejectsSymbolicAngle) {
  CHState ch(1);
  Rng rng(1);
  EXPECT_THROW(act_on_near_clifford(rz(Symbol{"g"}, 0), ch, rng), ValueError);
}

TEST(NearClifford, HasSupportPredicate) {
  EXPECT_TRUE(has_near_clifford_support(h(0)));
  EXPECT_TRUE(has_near_clifford_support(t(0)));
  EXPECT_TRUE(has_near_clifford_support(rz(0.123, 0)));
  EXPECT_FALSE(has_near_clifford_support(rx(0.123, 0)));
  EXPECT_FALSE(has_near_clifford_support(rz(Symbol{"g"}, 0)));
}

TEST(NearClifford, SingleTGateConvergesToBranchMixture) {
  // H T H: the I branch gives P(0) = 1, the S branch (H S H = √X) gives
  // P(0) = 1/2; the sampler converges to their even mixture
  // P(0) = 3/4 — not the exact cos²(π/8) ≈ 0.854. The residual gap is
  // the overlap lag the paper plots in Fig. 4.
  Circuit circuit{h(0), t(0), h(0)};
  Rng rng(7);
  const auto empirical =
      normalize(sample_near_clifford(circuit, 1, 40000, rng));
  EXPECT_NEAR(empirical.at(0), 0.75, 0.01);
  const auto ideal = testing::ideal_distribution(circuit, 1);
  EXPECT_NEAR(distribution_overlap(empirical, ideal), 1.0 - (0.8536 - 0.75),
              0.01);
}

class NearCliffordConvergence : public ::testing::TestWithParam<int> {};

TEST_P(NearCliffordConvergence, ConvergesToExactBranchMixture) {
  // Random Clifford+T circuits with 1-3 T gates: the empirical sampled
  // distribution must converge to the exactly enumerated 2^#T-branch
  // mixture.
  const int seed = GetParam();
  Rng circuit_rng(static_cast<std::uint64_t>(seed) * 131 + 7);
  const int n = 3;
  const Circuit circuit =
      random_clifford_t_circuit(n, 10, 1 + (seed % 3), circuit_rng);
  Rng rng(static_cast<std::uint64_t>(seed) + 100);
  const Counts counts = sample_near_clifford(circuit, n, 30000, rng);
  const auto mixture = exact_branch_mixture(circuit, n);
  EXPECT_LT(total_variation_distance(normalize(counts), mixture), 0.02);
}

INSTANTIATE_TEST_SUITE_P(Seeds, NearCliffordConvergence,
                         ::testing::Range(0, 6));

TEST(NearClifford, TReplacedBySIsExactlyClifford) {
  // The Fig. 4a comparison copy: substituting T→S turns the circuit
  // pure-Clifford, and the BGLS stabilizer sampler becomes exact.
  Rng circuit_rng(11);
  const int n = 3;
  const Circuit clifford_t = random_clifford_t_circuit(n, 12, 4, circuit_rng);
  const Circuit pure = with_t_gates_replaced(clifford_t, Gate::S());
  Rng rng(13);
  const Counts counts = sample_near_clifford(pure, n, 30000, rng);
  const auto ideal = testing::ideal_distribution(pure, n);
  EXPECT_LT(total_variation_distance(normalize(counts), ideal), 0.02);
}

TEST(NearClifford, OverlapDegradesWithTCount) {
  // Fig. 5's qualitative shape at test scale: more T gates → lower
  // attainable overlap. Compared on the *exact* branch mixtures so the
  // assertion is deterministic, plus one empirical consistency check.
  Rng circuit_rng(17);
  const int n = 4;
  const Circuit base = random_clifford_circuit(n, 30, circuit_rng);
  Rng sub_rng(19);
  const Circuit few_t = with_random_t_substitutions(base, 1, sub_rng);
  const Circuit many_t = with_random_t_substitutions(base, 8, sub_rng);

  const double overlap_few =
      distribution_overlap(exact_branch_mixture(few_t, n),
                           testing::ideal_distribution(few_t, n));
  const double overlap_many =
      distribution_overlap(exact_branch_mixture(many_t, n),
                           testing::ideal_distribution(many_t, n));
  EXPECT_GE(overlap_few, overlap_many - 1e-9);
  EXPECT_GT(overlap_few, 0.8);

  Rng rng(23);
  const double empirical_few = distribution_overlap(
      normalize(sample_near_clifford(few_t, n, 20000, rng)),
      testing::ideal_distribution(few_t, n));
  EXPECT_NEAR(empirical_few, overlap_few, 0.02);
}

}  // namespace
}  // namespace bgls

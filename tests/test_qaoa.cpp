// Graph / MaxCut / QAOA pipeline tests.

#include "qaoa/qaoa.h"

#include <gtest/gtest.h>

#include "mps/state.h"
#include "statevector/state.h"
#include "util/error.h"

namespace bgls {
namespace {

Graph square_graph() {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 0);
  return g;
}

TEST(Graph, EdgesAndDegrees) {
  const Graph g = square_graph();
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_EQ(g.degree(0), 2);
}

TEST(Graph, DuplicateEdgeIgnored) {
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(Graph, RejectsSelfLoopAndRange) {
  Graph g(3);
  EXPECT_THROW(g.add_edge(1, 1), ValueError);
  EXPECT_THROW(g.add_edge(0, 3), ValueError);
}

TEST(Graph, CutValue) {
  const Graph g = square_graph();
  // Alternating partition 0101 cuts all four edges.
  EXPECT_EQ(g.cut_value(from_string("0101")), 4);
  // All-same partition cuts nothing.
  EXPECT_EQ(g.cut_value(from_string("0000")), 0);
  // One vertex alone cuts its two incident edges.
  EXPECT_EQ(g.cut_value(from_string("1000")), 2);
}

TEST(Graph, BruteForceMaxCut) {
  const auto [partition, cut] = square_graph().brute_force_max_cut();
  EXPECT_EQ(cut, 4);
  EXPECT_EQ(square_graph().cut_value(partition), 4);
}

TEST(Graph, BruteForceOnTriangle) {
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);
  EXPECT_EQ(g.brute_force_max_cut().second, 2);  // odd cycle: n-1
}

TEST(Graph, ErdosRenyiDensityMatchesProbability) {
  Rng rng(5);
  int total_edges = 0;
  const int trials = 60;
  const int n = 10;
  for (int i = 0; i < trials; ++i) {
    total_edges +=
        static_cast<int>(Graph::erdos_renyi(n, 0.3, rng).num_edges());
  }
  const double mean_edges = total_edges / static_cast<double>(trials);
  const double expected = 0.3 * n * (n - 1) / 2.0;
  EXPECT_NEAR(mean_edges, expected, 2.0);
}

TEST(Graph, ErdosRenyiExtremes) {
  Rng rng(7);
  EXPECT_EQ(Graph::erdos_renyi(6, 0.0, rng).num_edges(), 0u);
  EXPECT_EQ(Graph::erdos_renyi(6, 1.0, rng).num_edges(), 15u);
}

TEST(Qaoa, CircuitStructure) {
  const Graph g = square_graph();
  const Circuit c = qaoa_maxcut_circuit(g, 1);
  // 4 H + 4 ZZ + 4 Rx + 1 measurement.
  EXPECT_EQ(c.num_operations(), 13u);
  EXPECT_TRUE(c.is_parameterized());
  EXPECT_EQ(c.measurement_keys().front(), "cut");
}

TEST(Qaoa, TwoLayerCircuitHasPerLayerSymbols) {
  const Graph g = square_graph();
  const Circuit c = qaoa_maxcut_circuit(g, 2);
  const std::vector<double> gammas{0.1, 0.2};
  const std::vector<double> betas{0.3, 0.4};
  const Circuit resolved = c.resolved(qaoa_resolver(gammas, betas));
  EXPECT_FALSE(resolved.is_parameterized());
}

TEST(Qaoa, ResolverRejectsMismatchedLayers) {
  const std::vector<double> gammas{0.1};
  const std::vector<double> betas{0.3, 0.4};
  EXPECT_THROW(qaoa_resolver(gammas, betas), ValueError);
}

TEST(Qaoa, AverageAndBestCut) {
  const Graph g = square_graph();
  Counts counts{{from_string("0101"), 3}, {from_string("0000"), 1}};
  EXPECT_DOUBLE_EQ(average_cut(g, counts), 3.0);
  const auto [best, cut] = best_cut(g, counts);
  EXPECT_EQ(cut, 4);
  EXPECT_EQ(best, from_string("0101"));
}

TEST(Qaoa, SolvesSquareWithStateVector) {
  const Graph g = square_graph();
  Rng rng(11);
  const QaoaResult result =
      solve_maxcut_qaoa(g, StateVectorState(4), 6, 6, 100, 400, rng);
  EXPECT_EQ(result.solution_cut, 4);  // finds the optimum
  EXPECT_EQ(result.grid.size(), 36u);
  EXPECT_GT(result.best_energy, 2.0);  // beats random guessing
}

TEST(Qaoa, SolvesErdosRenyiWithMps) {
  // The paper's setup at test scale: ER graph, MPS backend with capped
  // bond dimension.
  Rng graph_rng(13);
  const Graph g = Graph::erdos_renyi(8, 0.3, graph_rng);
  const auto [ideal_partition, ideal_cut] = g.brute_force_max_cut();

  MPSOptions options;
  options.max_bond_dim = 8;
  Rng rng(17);
  const QaoaResult result = solve_maxcut_qaoa(
      g, MPSState(g.num_vertices(), options), 5, 5, 80, 400, rng);
  // Best *sampled* partition on a small graph should match or nearly
  // match the brute-force optimum.
  EXPECT_GE(result.solution_cut, ideal_cut - 1);
  EXPECT_EQ(g.cut_value(result.solution), result.solution_cut);
}

TEST(Qaoa, GridEnergiesVary) {
  // The sweep must actually discriminate between parameter choices.
  const Graph g = square_graph();
  Rng rng(19);
  const QaoaResult result =
      solve_maxcut_qaoa(g, StateVectorState(4), 4, 4, 200, 100, rng);
  double lo = 1e9, hi = -1e9;
  for (const auto& point : result.grid) {
    lo = std::min(lo, point.energy);
    hi = std::max(hi, point.energy);
  }
  // Loose bound: the exact spread shifts with kernel rounding modes
  // (e.g. AVX2 FMA) because the 200-sample energies are seeded draws.
  EXPECT_GT(hi - lo, 0.15);
}

}  // namespace
}  // namespace bgls

// Tests for operations, moments, circuits, and text diagrams.

#include "circuit/circuit.h"

#include <gtest/gtest.h>

#include "circuit/diagram.h"
#include "util/error.h"

namespace bgls {
namespace {

TEST(Operation, ValidatesArity) {
  EXPECT_THROW(Operation(Gate::CX(), {0}), ValueError);
  EXPECT_THROW(Operation(Gate::H(), {0, 1}), ValueError);
}

TEST(Operation, RejectsDuplicateQubits) {
  EXPECT_THROW(Operation(Gate::CX(), {1, 1}), ValueError);
}

TEST(Operation, RejectsNegativeQubits) {
  EXPECT_THROW(Operation(Gate::H(), {-1}), ValueError);
}

TEST(Operation, OverlapDetection) {
  const auto a = cnot(0, 1);
  const auto b = h(1);
  const auto c = h(2);
  EXPECT_TRUE(a.overlaps(b));
  EXPECT_FALSE(a.overlaps(c));
}

TEST(Operation, ToString) {
  EXPECT_EQ(cnot(0, 1).to_string(), "CX(0, 1)");
  EXPECT_EQ(h(3).to_string(), "H(3)");
}

TEST(Moment, RejectsOverlappingOperations) {
  Moment m;
  m.add(cnot(0, 1));
  EXPECT_THROW(m.add(h(0)), ValueError);
  EXPECT_TRUE(m.can_accept(h(2)));
}

TEST(Circuit, EarliestStrategyPacksOperations) {
  Circuit c;
  c.append(h(0));
  c.append(h(1));  // fits into the same moment
  EXPECT_EQ(c.depth(), 1u);
  c.append(cnot(0, 1));  // conflicts, new moment
  EXPECT_EQ(c.depth(), 2u);
  c.append(h(2));  // slides all the way to moment 0
  EXPECT_EQ(c.depth(), 2u);
  EXPECT_EQ(c.moments()[0].operations().size(), 3u);
}

TEST(Circuit, NewMomentStrategy) {
  Circuit c;
  c.append(h(0), InsertStrategy::kNewThenInline);
  c.append(h(1), InsertStrategy::kNewThenInline);
  EXPECT_EQ(c.depth(), 2u);
}

TEST(Circuit, InitializerListMatchesPaperSnippet) {
  // cirq.Circuit(H(q0), CNOT(q0, q1), measure(q0, q1)) from Sec. 3.1.
  Circuit c{h(0), cnot(0, 1), measure({0, 1}, "z")};
  EXPECT_EQ(c.depth(), 3u);
  EXPECT_EQ(c.num_qubits(), 2);
  EXPECT_TRUE(c.has_measurements());
  EXPECT_TRUE(c.measurements_are_terminal());
}

TEST(Circuit, QubitSetAndWidth) {
  Circuit c{h(0), h(4)};
  EXPECT_EQ(c.num_qubits(), 5);
  EXPECT_EQ(c.qubits().size(), 2u);
}

TEST(Circuit, AllOperationsInExecutionOrder) {
  Circuit c{h(0), cnot(0, 1), h(1)};
  const auto ops = c.all_operations();
  ASSERT_EQ(ops.size(), 3u);
  EXPECT_EQ(ops[0].to_string(), "H(0)");
  EXPECT_EQ(ops[1].to_string(), "CX(0, 1)");
  EXPECT_EQ(ops[2].to_string(), "H(1)");
}

TEST(Circuit, MidCircuitMeasurementIsNotTerminal) {
  Circuit c{h(0), measure({0}, "mid"), h(0)};
  EXPECT_FALSE(c.measurements_are_terminal());
}

TEST(Circuit, RepeatedMeasurementIsNotTerminal) {
  Circuit c{h(0), measure({0}, "a"), measure({0}, "b")};
  EXPECT_FALSE(c.measurements_are_terminal());
}

TEST(Circuit, MeasurementKeysInOrder) {
  Circuit c{measure({0}, "first"), measure({1}, "second"),
            measure({2}, "first")};
  const auto keys = c.measurement_keys();
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], "first");
  EXPECT_EQ(keys[1], "second");
}

TEST(Circuit, HasChannels) {
  Circuit c{h(0)};
  EXPECT_FALSE(c.has_channels());
  c.append(Operation(Gate::Channel(bit_flip(0.1)), {0}));
  EXPECT_TRUE(c.has_channels());
}

TEST(Circuit, ParameterResolution) {
  Circuit c{rz(Symbol{"g"}, 0)};
  EXPECT_TRUE(c.is_parameterized());
  const Circuit resolved = c.resolved(ParamResolver{{"g", 1.5}});
  EXPECT_FALSE(resolved.is_parameterized());
  EXPECT_TRUE(resolved.all_operations()[0].gate().unitary().approx_equal(
      Gate::Rz(1.5).unitary()));
}

TEST(Circuit, AppendCircuitKeepsMomentStructure) {
  Circuit a{h(0)};
  Circuit b{h(0), h(0)};
  a.append(b);
  EXPECT_EQ(a.depth(), 3u);
}

TEST(Diagram, GhzDiagramShape) {
  Circuit c{h(0), cnot(0, 1), measure({0, 1}, "z")};
  const std::string diagram = to_text_diagram(c);
  EXPECT_NE(diagram.find("0: ---H---@"), std::string::npos);
  EXPECT_NE(diagram.find('|'), std::string::npos);
  EXPECT_NE(diagram.find("M('z')"), std::string::npos);
}

TEST(Diagram, EmptyCircuit) {
  EXPECT_EQ(to_text_diagram(Circuit{}), "(empty circuit)\n");
}

}  // namespace
}  // namespace bgls

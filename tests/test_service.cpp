/// \file test_service.cpp
/// End-to-end protocol tests for the service daemon (service/daemon.h):
/// an in-process ServiceDaemon on a private Unix socket, driven by
/// ServiceClient over the real wire — the same code path the
/// standalone bgls_serve/bgls_client binaries run. Pins the acceptance
/// contract: daemon reports byte-identical to the CLI path, bounded
/// cancellation, deadline → timeout, deterministic streaming, and
/// protocol error handling. Runs under TSan in CI.

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "api/session.h"
#include "qasm/qasm.h"
#include "service/client.h"
#include "service/daemon.h"
#include "service/report.h"

namespace bgls {
namespace {

using namespace std::chrono_literals;
using namespace bgls::service;

const char kGhzQasm[] =
    "OPENQASM 2.0;\n"
    "include \"qelib1.inc\";\n"
    "qreg q[3];\n"
    "creg c[3];\n"
    "h q[0];\n"
    "cx q[0],q[1];\n"
    "cx q[1],q[2];\n"
    "measure q -> c;\n";

const char kX0Qasm[] =
    "OPENQASM 2.0;\n"
    "include \"qelib1.inc\";\n"
    "qreg q[2];\n"
    "creg c[2];\n"
    "x q[0];\n"
    "measure q -> c;\n";

/// The report bgls_run would print for the same submission — built
/// through the identical library path (Session + shared writer).
std::string direct_report(const SubmitArgs& args) {
  RunRequest request = RunRequest()
                           .with_circuit(parse_qasm(args.qasm))
                           .with_repetitions(args.repetitions)
                           .with_seed(args.seed)
                           .with_threads(args.threads)
                           .with_rng_streams(args.streams)
                           .with_optimization(args.optimize)
                           .with_sample_parallelization(!args.no_batch);
  if (args.backend != "auto") request.with_backend(args.backend);
  const RunReportContext context =
      report_context(request, request.circuit.num_qubits());
  Session session;
  return run_report_string(context, session.run(std::move(request)));
}

/// A unique private Unix socket path.
std::string unique_socket_path() {
  static std::atomic<int> counter{0};
  return "/tmp/bgls_test_" + std::to_string(::getpid()) + "_" +
         std::to_string(counter.fetch_add(1)) + ".sock";
}

/// Daemon fixture: one in-process daemon per test on a unique socket.
class ServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DaemonOptions options;
    options.endpoint = Endpoint::unix_socket(unique_socket_path());
    options.scheduler.max_concurrent_jobs = 2;
    configure(options);
    daemon_ = std::make_unique<ServiceDaemon>(options);
    daemon_->start();
  }

  virtual void configure(DaemonOptions& options) { (void)options; }

  void TearDown() override { daemon_->stop(); }

  std::unique_ptr<ServiceDaemon> daemon_;
};

TEST_F(ServiceTest, SubmitWaitReportMatchesCliBytes) {
  ServiceClient client(daemon_->endpoint());
  SubmitArgs args;
  args.qasm = kGhzQasm;
  args.repetitions = 2048;
  args.seed = 7;
  const std::uint64_t job = client.submit(args);
  EXPECT_EQ(client.wait_report(job), direct_report(args));
  // result stays retrievable after wait.
  EXPECT_EQ(client.result_report(job), direct_report(args));
}

TEST_F(ServiceTest, ConcurrentClientsMixedCircuitsAllByteIdentical) {
  constexpr int kClients = 4;
  std::vector<std::string> reports(kClients);
  std::vector<SubmitArgs> args(kClients);
  for (int i = 0; i < kClients; ++i) {
    args[i].qasm = i % 2 == 0 ? kGhzQasm : kX0Qasm;
    args[i].repetitions = 512 + static_cast<std::uint64_t>(i) * 100;
    args[i].seed = static_cast<std::uint64_t>(i) + 1;
    if (i == 3) args[i].backend = "sv";
  }
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      // One connection per client thread, submissions interleaving on
      // the daemon side.
      ServiceClient client(daemon_->endpoint());
      const std::uint64_t job = client.submit(args[i]);
      reports[i] = client.wait_report(job);
    });
  }
  for (std::thread& thread : clients) thread.join();
  for (int i = 0; i < kClients; ++i) {
    EXPECT_EQ(reports[i], direct_report(args[i])) << "client " << i;
  }
}

TEST_F(ServiceTest, CancelStopsRunningJobPromptly) {
  ServiceClient client(daemon_->endpoint());
  SubmitArgs args;
  args.qasm = kGhzQasm;
  args.repetitions = 500'000'000ULL;
  args.no_batch = true;  // per-trajectory: bounded per-rep stop checks
  const std::uint64_t job = client.submit(args);
  while (client.status(job).string_or("state", "") == "queued") {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_TRUE(client.cancel(job));
  const auto start = std::chrono::steady_clock::now();
  try {
    (void)client.wait_report(job);
    FAIL() << "cancelled job produced a report";
  } catch (const ServiceError& e) {
    EXPECT_EQ(e.code(), "cancelled");
  }
  // "Bounded number of shard steps": generously, a few seconds of
  // wall clock on any machine.
  EXPECT_LT(std::chrono::steady_clock::now() - start, 10s);
  EXPECT_EQ(client.status(job).string_or("state", ""), "cancelled");
}

TEST_F(ServiceTest, DeadlineExceededReturnsTimeout) {
  ServiceClient client(daemon_->endpoint());
  SubmitArgs args;
  args.qasm = kGhzQasm;
  args.repetitions = 500'000'000ULL;
  args.no_batch = true;
  args.deadline_ms = 100;
  const std::uint64_t job = client.submit(args);
  try {
    (void)client.wait_report(job);
    FAIL() << "deadline job produced a report";
  } catch (const ServiceError& e) {
    EXPECT_EQ(e.code(), "timeout");
  }
}

TEST_F(ServiceTest, StreamDeliversDeterministicPrefixes) {
  SubmitArgs args;
  args.qasm = kGhzQasm;
  args.repetitions = 50000;
  args.no_batch = true;
  args.progress_every = 10000;
  args.seed = 13;

  // Stream the same job spec twice; both streams must agree frame for
  // frame (fixed seed ⇒ canonical update sequence).
  std::vector<std::vector<std::uint64_t>> completed(2);
  std::string reports[2];
  for (int round = 0; round < 2; ++round) {
    ServiceClient client(daemon_->endpoint());
    const std::uint64_t job = client.submit(args);
    reports[round] =
        client.stream(job, [&](const JsonValue& frame) {
          completed[round].push_back(frame.u64_or("completed", 0));
        });
  }
  EXPECT_EQ(completed[0],
            (std::vector<std::uint64_t>{10000, 20000, 30000, 40000, 50000}));
  EXPECT_EQ(completed[0], completed[1]);
  EXPECT_EQ(reports[0], reports[1]);
  EXPECT_EQ(reports[0], direct_report(args));
}

TEST_F(ServiceTest, StatsEndpointCounts) {
  ServiceClient client(daemon_->endpoint());
  SubmitArgs args;
  args.qasm = kGhzQasm;
  args.repetitions = 256;
  client.wait_report(client.submit(args));
  const JsonValue stats = client.stats();
  EXPECT_EQ(stats.u64_or("submitted", 0), 1u);
  EXPECT_EQ(stats.u64_or("completed", 0), 1u);
  const JsonValue* per_backend = stats.find("completed_per_backend");
  ASSERT_NE(per_backend, nullptr);
  // GHZ is pure Clifford: routed to the stabilizer backend — the
  // routing decision the stats endpoint surfaces.
  const JsonValue* stabilizer = per_backend->find("stabilizer");
  ASSERT_NE(stabilizer, nullptr);
  EXPECT_EQ(stabilizer->as_u64(), 1u);
}

TEST_F(ServiceTest, ProtocolErrorsKeepConnectionUsable) {
  ServiceClient client(daemon_->endpoint());
  // Malformed JSON.
  JsonValue response = client.roundtrip("this is not json\n");
  EXPECT_FALSE(response.bool_or("ok", true));
  EXPECT_EQ(response.string_or("code", ""), "parse_error");
  // Unknown op.
  response = client.roundtrip("{\"op\":\"frobnicate\"}\n");
  EXPECT_EQ(response.string_or("code", ""), "unknown_op");
  // Unknown job.
  response = client.roundtrip("{\"op\":\"status\",\"job\":12345}\n");
  EXPECT_EQ(response.string_or("code", ""), "bad_request");
  // Malformed QASM in submit.
  response = client.roundtrip(
      "{\"op\":\"submit\",\"qasm\":\"OPENQASM 9;\"}\n");
  EXPECT_FALSE(response.bool_or("ok", true));
  // Result for a job that is not done yet / unknown.
  response = client.roundtrip("{\"op\":\"result\",\"job\":999}\n");
  EXPECT_FALSE(response.bool_or("ok", true));
  // The connection survived all of it.
  SubmitArgs args;
  args.qasm = kX0Qasm;
  args.repetitions = 16;
  EXPECT_EQ(client.wait_report(client.submit(args)), direct_report(args));
}

class TinyQueueServiceTest : public ServiceTest {
 protected:
  void configure(DaemonOptions& options) override {
    options.scheduler.max_concurrent_jobs = 1;
    options.scheduler.max_queue_depth = 1;
  }
};

TEST_F(TinyQueueServiceTest, AdmissionControlOverSocket) {
  ServiceClient client(daemon_->endpoint());
  SubmitArgs big;
  big.qasm = kGhzQasm;
  big.repetitions = 500'000'000ULL;
  big.no_batch = true;
  const std::uint64_t running = client.submit(big);
  while (client.status(running).string_or("state", "") == "queued") {
    std::this_thread::sleep_for(1ms);
  }
  const std::uint64_t queued = client.submit(big);
  bool rejected = false;
  try {
    (void)client.submit(big);
  } catch (const ServiceError& e) {
    rejected = true;
    EXPECT_EQ(e.code(), "queue_full");
  }
  EXPECT_TRUE(rejected);
  client.cancel(running);
  client.cancel(queued);
  EXPECT_EQ(client.stats().u64_or("rejected", 0), 1u);
}

TEST(ServiceJournal, RestartReplaysTerminalJobsAndResumesIncompleteOnes) {
  const std::string journal = "/tmp/bgls_test_journal_" +
                              std::to_string(::getpid()) + "_svc.ndjson";
  std::remove(journal.c_str());

  SubmitArgs finished;
  finished.qasm = kGhzQasm;
  finished.repetitions = 512;
  finished.seed = 3;
  SubmitArgs interrupted;
  interrupted.qasm = kGhzQasm;
  interrupted.repetitions = 400'000;
  interrupted.seed = 23;
  interrupted.no_batch = true;  // per-trajectory: checkpointable mid-run

  std::uint64_t finished_id = 0;
  std::uint64_t interrupted_id = 0;
  {
    DaemonOptions options;
    options.endpoint = Endpoint::unix_socket(unique_socket_path());
    options.journal_path = journal;
    options.scheduler.checkpoint_every = 5'000;
    ServiceDaemon daemon(options);
    daemon.start();
    ServiceClient client(daemon.endpoint());
    finished_id = client.submit(finished);
    EXPECT_EQ(client.wait_report(finished_id), direct_report(finished));
    interrupted_id = client.submit(interrupted);
    while (client.status(interrupted_id).string_or("state", "") == "queued") {
      std::this_thread::sleep_for(1ms);
    }
    // Destroy the daemon with the job mid-run. Shutdown-cancelled jobs
    // get no terminal journal record, so the job stays incomplete in
    // the log for the next incarnation to resume.
  }

  DaemonOptions options;
  options.endpoint = Endpoint::unix_socket(unique_socket_path());
  options.journal_path = journal;
  options.scheduler.checkpoint_every = 5'000;
  ServiceDaemon daemon(options);
  daemon.start();  // replays + compacts the journal, re-enqueues
  ServiceClient client(daemon.endpoint());

  // The finished job answers from the journal without re-running, under
  // its original id — status, result, and stream all work.
  EXPECT_EQ(client.result_report(finished_id), direct_report(finished));
  EXPECT_EQ(client.status(finished_id).string_or("state", ""), "done");

  // The interrupted job re-ran (resuming from its last checkpoint when
  // one was journaled) to the canonical bytes.
  EXPECT_EQ(client.wait_report(interrupted_id), direct_report(interrupted));

  daemon.stop();
  std::remove(journal.c_str());
}

TEST_F(ServiceTest, StopWhileJobsInFlightIsClean) {
  ServiceClient client(daemon_->endpoint());
  SubmitArgs big;
  big.qasm = kGhzQasm;
  big.repetitions = 500'000'000ULL;
  big.no_batch = true;
  (void)client.submit(big);
  // TearDown stops the daemon with the job mid-run; the scheduler
  // destructor cancels it. Nothing to assert beyond "no hang/crash".
  SUCCEED();
}

}  // namespace
}  // namespace bgls

// Tests for the xoshiro256++ engine and its exact discrete distributions.

#include "util/rng.h"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <vector>

#include "util/error.h"

namespace bgls {
namespace {

TEST(Rng, SameSeedGivesIdenticalStreams) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a() == b());
  EXPECT_LT(equal, 5);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanIsHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.0, 5.0);
    EXPECT_GE(u, -2.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIntCoversRangeUniformly) {
  Rng rng(5);
  std::array<int, 7> counts{};
  const int n = 70000;
  for (int i = 0; i < n; ++i) counts[rng.uniform_int(7)]++;
  for (int c : counts) EXPECT_NEAR(c, n / 7.0, 5.0 * std::sqrt(n / 7.0));
}

TEST(Rng, UniformIntRejectsZeroBound) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_int(0), ValueError);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(1);
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
  EXPECT_FALSE(rng.bernoulli(-0.5));
  EXPECT_TRUE(rng.bernoulli(1.5));
}

TEST(Rng, BernoulliFrequencyMatchesProbability) {
  Rng rng(9);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(hits / static_cast<double>(n), 0.3, 0.01);
}

TEST(Rng, CategoricalFollowsWeights) {
  Rng rng(13);
  const std::vector<double> weights{1.0, 2.0, 3.0, 4.0};
  std::array<int, 4> counts{};
  const int n = 100000;
  for (int i = 0; i < n; ++i) counts[rng.categorical(weights)]++;
  for (int k = 0; k < 4; ++k) {
    const double expected = n * weights[k] / 10.0;
    EXPECT_NEAR(counts[k], expected, 5.0 * std::sqrt(expected));
  }
}

TEST(Rng, CategoricalHandlesZeroWeights) {
  Rng rng(17);
  const std::vector<double> weights{0.0, 1.0, 0.0};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.categorical(weights), 1u);
}

TEST(Rng, CategoricalRejectsAllZero) {
  Rng rng(1);
  const std::vector<double> weights{0.0, 0.0};
  EXPECT_THROW(rng.categorical(weights), ValueError);
}

TEST(Rng, CategoricalRejectsNegative) {
  Rng rng(1);
  const std::vector<double> weights{0.5, -0.1};
  EXPECT_THROW(rng.categorical(weights), ValueError);
}

TEST(Rng, BinomialEdgeCases) {
  Rng rng(1);
  EXPECT_EQ(rng.binomial(0, 0.5), 0u);
  EXPECT_EQ(rng.binomial(10, 0.0), 0u);
  EXPECT_EQ(rng.binomial(10, 1.0), 10u);
}

TEST(Rng, BinomialSmallNMatchesMeanAndVariance) {
  Rng rng(23);
  const std::uint64_t n = 20;
  const double p = 0.3;
  const int trials = 200000;
  double sum = 0.0, sumsq = 0.0;
  for (int i = 0; i < trials; ++i) {
    const double k = static_cast<double>(rng.binomial(n, p));
    sum += k;
    sumsq += k * k;
  }
  const double mean_hat = sum / trials;
  const double var_hat = sumsq / trials - mean_hat * mean_hat;
  EXPECT_NEAR(mean_hat, n * p, 0.05);
  EXPECT_NEAR(var_hat, n * p * (1 - p), 0.1);
}

TEST(Rng, BinomialLargeNUsesBtrsAndMatchesMoments) {
  Rng rng(29);
  const std::uint64_t n = 100000;  // forces the BTRS path
  const double p = 0.4;
  const int trials = 20000;
  double sum = 0.0, sumsq = 0.0;
  for (int i = 0; i < trials; ++i) {
    const double k = static_cast<double>(rng.binomial(n, p));
    EXPECT_LE(k, static_cast<double>(n));
    sum += k;
    sumsq += k * k;
  }
  const double mean_hat = sum / trials;
  const double var_hat = sumsq / trials - mean_hat * mean_hat;
  EXPECT_NEAR(mean_hat, n * p, 5.0);  // se ≈ sqrt(npq/trials) ≈ 1.1
  EXPECT_NEAR(var_hat / (n * p * (1 - p)), 1.0, 0.05);
}

TEST(Rng, BinomialHighPUsesSymmetry) {
  Rng rng(31);
  const std::uint64_t n = 50;
  const double p = 0.9;
  const int trials = 100000;
  double sum = 0.0;
  for (int i = 0; i < trials; ++i) {
    sum += static_cast<double>(rng.binomial(n, p));
  }
  EXPECT_NEAR(sum / trials, n * p, 0.1);
}

TEST(Rng, MultinomialCountsSumToTrials) {
  Rng rng(37);
  const std::vector<double> weights{0.1, 0.5, 0.2, 0.2};
  for (int i = 0; i < 100; ++i) {
    const auto counts = rng.multinomial(1000, weights);
    std::uint64_t total = 0;
    for (auto c : counts) total += c;
    EXPECT_EQ(total, 1000u);
  }
}

TEST(Rng, MultinomialMatchesWeights) {
  Rng rng(41);
  const std::vector<double> weights{2.0, 6.0, 2.0};  // unnormalized
  std::array<double, 3> sums{};
  const int reps = 2000;
  const std::uint64_t trials = 1000;
  for (int i = 0; i < reps; ++i) {
    const auto counts = rng.multinomial(trials, weights);
    for (int k = 0; k < 3; ++k) sums[k] += static_cast<double>(counts[k]);
  }
  EXPECT_NEAR(sums[0] / (reps * trials), 0.2, 0.005);
  EXPECT_NEAR(sums[1] / (reps * trials), 0.6, 0.005);
  EXPECT_NEAR(sums[2] / (reps * trials), 0.2, 0.005);
}

TEST(Rng, MultinomialZeroTrials) {
  Rng rng(43);
  const std::vector<double> weights{1.0, 1.0};
  const auto counts = rng.multinomial(0, weights);
  EXPECT_EQ(counts[0], 0u);
  EXPECT_EQ(counts[1], 0u);
}

TEST(Rng, MultinomialZeroWeightCategoryGetsNothing) {
  Rng rng(47);
  const std::vector<double> weights{1.0, 0.0, 1.0};
  for (int i = 0; i < 50; ++i) {
    const auto counts = rng.multinomial(100, weights);
    EXPECT_EQ(counts[1], 0u);
  }
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(51);
  Rng child = parent.split();
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (parent() == child());
  EXPECT_LT(equal, 5);
}

TEST(Rng, JumpIsDeterministic) {
  Rng a(99), b(99);
  a.jump();
  b.jump();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, JumpedStreamDivergesFromOriginal) {
  Rng base(7);
  Rng jumped = base;
  jumped.jump();
  int equal = 0;
  for (int i = 0; i < 1000; ++i) equal += (base() == jumped());
  EXPECT_LT(equal, 5);
}

TEST(Rng, IndexedSplitIsPureAndLeavesParentUntouched) {
  Rng parent(123);
  const Rng before = parent;  // snapshot via copy
  const Rng child_a = parent.split(3);
  const Rng child_b = parent.split(3);
  // split(i) is const and repeatable.
  Rng ca = child_a, cb = child_b;
  for (int i = 0; i < 100; ++i) EXPECT_EQ(ca(), cb());
  // The parent stream was not advanced.
  Rng p = parent, q = before;
  for (int i = 0; i < 100; ++i) EXPECT_EQ(p(), q());
}

TEST(Rng, IndexedSplitMatchesIncrementalJumps) {
  Rng parent(321);
  Rng walker = parent;
  for (std::uint64_t index = 0; index < 4; ++index) {
    walker.jump();
    Rng expected = walker;
    Rng actual = parent.split(index);
    for (int i = 0; i < 50; ++i) EXPECT_EQ(actual(), expected());
  }
}

TEST(Rng, DistinctSplitIndicesGiveDistinctStreams) {
  Rng parent(55);
  Rng s0 = parent.split(0);
  Rng s1 = parent.split(1);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) equal += (s0() == s1());
  EXPECT_LT(equal, 5);
}

TEST(Rng, JumpStreamsAreStatisticallyIndependent) {
  // Sanity check for the engine's per-shard streams: uniforms drawn from
  // jump-separated streams should be uncorrelated.
  Rng parent(2024);
  Rng a = parent.split(0);
  Rng b = parent.split(1);
  const int n = 20000;
  double sa = 0, sb = 0, saa = 0, sbb = 0, sab = 0;
  for (int i = 0; i < n; ++i) {
    const double x = a.uniform();
    const double y = b.uniform();
    sa += x;
    sb += y;
    saa += x * x;
    sbb += y * y;
    sab += x * y;
  }
  const double cov = sab / n - (sa / n) * (sb / n);
  const double var_a = saa / n - (sa / n) * (sa / n);
  const double var_b = sbb / n - (sb / n) * (sb / n);
  const double corr = cov / std::sqrt(var_a * var_b);
  // Null-hypothesis standard error is 1/sqrt(n) ≈ 0.007.
  EXPECT_LT(std::abs(corr), 0.035);
}

}  // namespace
}  // namespace bgls

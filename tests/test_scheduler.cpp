/// \file test_scheduler.cpp
/// The service JobScheduler (service/scheduler.h): priority ordering,
/// admission control, cancellation/deadlines through the queue, result
/// integrity after aborts, progress recording, and concurrent
/// submission (the suite runs under TSan in CI).

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "engine_test_helpers.h"
#include "obs/metrics.h"
#include "service/scheduler.h"
#include "util/fault.h"

namespace bgls {
namespace {

using namespace std::chrono_literals;
using service::JobInfo;
using service::JobScheduler;
using service::JobState;
using service::QueueFullError;
using service::SchedulerOptions;
using service::SchedulerStats;
using testing::trajectory_workload;

RunRequest small_job(std::uint64_t seed = 5, std::uint64_t reps = 400) {
  return RunRequest()
      .with_circuit(trajectory_workload(3, 0.05))
      .with_repetitions(reps)
      .with_seed(seed);
}

/// A job big enough to stay running until cancelled (per-gate token
/// checks abort it promptly).
RunRequest blocker_job() {
  return small_job(1, 500'000'000ULL);
}

/// Submits a blocker and waits until it actually occupies the runner.
std::uint64_t start_blocker(JobScheduler& scheduler) {
  const std::uint64_t id = scheduler.submit(blocker_job());
  while (scheduler.info(id).state == JobState::kQueued) {
    std::this_thread::sleep_for(1ms);
  }
  return id;
}

TEST(JobScheduler, SubmitMatchesDirectSessionRun) {
  JobScheduler scheduler;
  const std::uint64_t id = scheduler.submit(small_job(42));
  const JobInfo info = scheduler.wait(id);
  ASSERT_EQ(info.state, JobState::kDone);
  ASSERT_NE(info.result, nullptr);

  Session session;
  const RunResult direct = session.run(small_job(42));
  EXPECT_EQ(info.result->measurements.histogram("m"),
            direct.measurements.histogram("m"));
  EXPECT_EQ(info.result->backend_name, direct.backend_name);
  // The satellite contract: routing reasons survive into RunStats.
  EXPECT_FALSE(info.result->stats.selection_reason.empty());
  EXPECT_EQ(info.result->stats.selection_reason, direct.selection_reason);
}

TEST(JobScheduler, PriorityOrdersQueuedJobs) {
  SchedulerOptions options;
  options.max_concurrent_jobs = 1;
  JobScheduler scheduler(options);

  // Occupy the single runner so the next submissions stack up, then
  // enqueue low before high: the high-priority job must start first.
  const std::uint64_t blocker = start_blocker(scheduler);
  const std::uint64_t low =
      scheduler.submit(small_job(2).with_priority(-5));
  const std::uint64_t mid = scheduler.submit(small_job(3));
  const std::uint64_t high = scheduler.submit(small_job(4).with_priority(9));
  scheduler.cancel(blocker);

  EXPECT_EQ(scheduler.wait(low).state, JobState::kDone);
  EXPECT_EQ(scheduler.wait(mid).state, JobState::kDone);
  EXPECT_EQ(scheduler.wait(high).state, JobState::kDone);
  const std::uint64_t high_order = scheduler.info(high).start_order;
  const std::uint64_t mid_order = scheduler.info(mid).start_order;
  const std::uint64_t low_order = scheduler.info(low).start_order;
  EXPECT_LT(high_order, mid_order);
  EXPECT_LT(mid_order, low_order);
}

TEST(JobScheduler, FifoWithinEqualPriority) {
  SchedulerOptions options;
  options.max_concurrent_jobs = 1;
  JobScheduler scheduler(options);
  const std::uint64_t blocker = start_blocker(scheduler);
  const std::uint64_t first = scheduler.submit(small_job(2));
  const std::uint64_t second = scheduler.submit(small_job(3));
  scheduler.cancel(blocker);
  scheduler.wait(first);
  scheduler.wait(second);
  EXPECT_LT(scheduler.info(first).start_order,
            scheduler.info(second).start_order);
}

TEST(JobScheduler, AdmissionControlRejectsWithReason) {
  SchedulerOptions options;
  options.max_concurrent_jobs = 1;
  options.max_queue_depth = 1;
  JobScheduler scheduler(options);
  const std::uint64_t blocker = start_blocker(scheduler);
  const std::uint64_t queued = scheduler.submit(small_job(2));
  try {
    (void)scheduler.submit(small_job(3));
    FAIL() << "expected QueueFullError";
  } catch (const QueueFullError& e) {
    EXPECT_NE(std::string(e.what()).find("queue is full"), std::string::npos);
  }
  EXPECT_EQ(scheduler.stats().rejected, 1u);
  scheduler.cancel(blocker);
  EXPECT_EQ(scheduler.wait(queued).state, JobState::kDone);
}

TEST(JobScheduler, CancelQueuedJobNeverRuns) {
  SchedulerOptions options;
  options.max_concurrent_jobs = 1;
  JobScheduler scheduler(options);
  const std::uint64_t blocker = start_blocker(scheduler);
  const std::uint64_t queued = scheduler.submit(small_job(2));
  EXPECT_TRUE(scheduler.cancel(queued));
  const JobInfo info = scheduler.wait(queued);
  EXPECT_EQ(info.state, JobState::kCancelled);
  EXPECT_EQ(info.start_order, 0u);  // never started
  // Cancelling a terminal job reports false.
  EXPECT_FALSE(scheduler.cancel(queued));
  EXPECT_FALSE(scheduler.cancel(987654));  // unknown id
  scheduler.cancel(blocker);
}

TEST(JobScheduler, DeadlineExpiredInQueueTimesOutWithoutRunning) {
  SchedulerOptions options;
  options.max_concurrent_jobs = 1;
  JobScheduler scheduler(options);
  const std::uint64_t blocker = start_blocker(scheduler);
  const std::uint64_t doomed =
      scheduler.submit(small_job(2).with_deadline_ms(30));
  std::this_thread::sleep_for(60ms);
  scheduler.cancel(blocker);
  const JobInfo info = scheduler.wait(doomed);
  EXPECT_EQ(info.state, JobState::kTimedOut);
  EXPECT_EQ(info.start_order, 0u);
}

TEST(JobScheduler, RunningDeadlineTimesOut) {
  JobScheduler scheduler;
  const std::uint64_t id =
      scheduler.submit(blocker_job().with_deadline_ms(50));
  const JobInfo info = scheduler.wait(id);
  EXPECT_EQ(info.state, JobState::kTimedOut);
}

TEST(JobScheduler, CancelledRunNeverCorruptsLaterRuns) {
  JobScheduler scheduler;
  // Baseline before any abort...
  const std::uint64_t before = scheduler.submit(small_job(31));
  const Counts baseline =
      scheduler.wait(before).result->measurements.histogram("m");
  // ...abort a big job mid-run...
  const std::uint64_t doomed = start_blocker(scheduler);
  std::this_thread::sleep_for(20ms);
  scheduler.cancel(doomed);
  EXPECT_EQ(scheduler.wait(doomed).state, JobState::kCancelled);
  // ...and the identical request still samples identically.
  const std::uint64_t after = scheduler.submit(small_job(31));
  EXPECT_EQ(scheduler.wait(after).result->measurements.histogram("m"),
            baseline);
}

TEST(JobScheduler, ProgressRecordedAndReplayable) {
  JobScheduler scheduler;
  const std::uint64_t id =
      scheduler.submit(small_job(7, 200).with_progress(50, nullptr));
  const JobInfo info = scheduler.wait(id);
  ASSERT_EQ(info.state, JobState::kDone);
  EXPECT_EQ(info.progress_updates, 4u);
  EXPECT_EQ(info.completed_repetitions, 200u);
  const auto all = scheduler.progress_since(id, 0);
  ASSERT_EQ(all.size(), 4u);
  EXPECT_TRUE(all.back().final);
  EXPECT_EQ(all.back().histograms.at("m"),
            info.result->measurements.histogram("m"));
  // Replay from a cursor.
  EXPECT_EQ(scheduler.progress_since(id, 3).size(), 1u);
  EXPECT_TRUE(scheduler.progress_since(id, 4).empty());
  // A caller sink still sees every update.
  std::vector<std::uint64_t> seen;
  std::mutex seen_mutex;
  const std::uint64_t with_sink = scheduler.submit(
      small_job(7, 200).with_progress(50, [&](const ProgressUpdate& update) {
        const std::lock_guard<std::mutex> lock(seen_mutex);
        seen.push_back(update.completed_repetitions);
      }));
  scheduler.wait(with_sink);
  EXPECT_EQ(seen, (std::vector<std::uint64_t>{50, 100, 150, 200}));
}

TEST(JobScheduler, StatsAggregateAndRouteByBackend) {
  JobScheduler scheduler;
  const std::uint64_t ok = scheduler.submit(small_job(3));
  scheduler.wait(ok);
  // A failing job: circuit without measurements.
  Circuit unmeasured{h(0)};
  const std::uint64_t bad =
      scheduler.submit(RunRequest().with_circuit(unmeasured));
  EXPECT_EQ(scheduler.wait(bad).state, JobState::kFailed);
  EXPECT_FALSE(scheduler.wait(bad).error.empty());

  const SchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.submitted, 2u);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.queue_depth, 0u);
  ASSERT_EQ(stats.completed_per_backend.size(), 1u);
  EXPECT_EQ(stats.completed_per_backend.begin()->second, 1u);
}

TEST(JobScheduler, ConcurrentSubmittersAllComplete) {
  SchedulerOptions options;
  options.max_concurrent_jobs = 2;
  options.max_queue_depth = 256;
  JobScheduler scheduler(options);

  constexpr int kThreads = 4;
  constexpr int kJobsPerThread = 5;
  std::vector<std::vector<std::uint64_t>> ids(kThreads);
  std::vector<std::thread> submitters;
  submitters.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      for (int j = 0; j < kJobsPerThread; ++j) {
        ids[t].push_back(scheduler.submit(
            small_job(static_cast<std::uint64_t>(t * 100 + j), 100)));
      }
    });
  }
  for (std::thread& submitter : submitters) submitter.join();

  Session session;
  for (int t = 0; t < kThreads; ++t) {
    for (int j = 0; j < kJobsPerThread; ++j) {
      const JobInfo info = scheduler.wait(ids[t][j]);
      ASSERT_EQ(info.state, JobState::kDone);
      const RunResult direct =
          session.run(small_job(static_cast<std::uint64_t>(t * 100 + j), 100));
      EXPECT_EQ(info.result->measurements.histogram("m"),
                direct.measurements.histogram("m"));
    }
  }
  EXPECT_EQ(scheduler.stats().completed,
            static_cast<std::uint64_t>(kThreads * kJobsPerThread));
}

TEST(JobScheduler, DestructorDrainsPendingJobs) {
  std::uint64_t queued = 0;
  {
    SchedulerOptions options;
    options.max_concurrent_jobs = 1;
    JobScheduler scheduler(options);
    start_blocker(scheduler);
    queued = scheduler.submit(small_job(2));
    (void)queued;
    // Destructor must cancel the blocker + queued job and join without
    // hanging.
  }
  SUCCEED();
}

TEST(JobScheduler, RetentionBoundEvictsOldestTerminalJobs) {
  SchedulerOptions options;
  options.max_retained_jobs = 2;
  JobScheduler scheduler(options);
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 4; ++i) {
    ids.push_back(scheduler.submit(small_job(static_cast<std::uint64_t>(i))));
    scheduler.wait(ids.back());  // serialize completion order
  }
  // The two oldest-finished jobs were evicted; the newest two remain.
  EXPECT_THROW((void)scheduler.info(ids[0]), ValueError);
  EXPECT_THROW((void)scheduler.info(ids[1]), ValueError);
  EXPECT_EQ(scheduler.info(ids[2]).state, JobState::kDone);
  EXPECT_EQ(scheduler.info(ids[3]).state, JobState::kDone);
  EXPECT_EQ(scheduler.min_retained_id(), ids[2]);
  // Aggregate stats survive eviction.
  EXPECT_EQ(scheduler.stats().completed, 4u);
}

TEST(JobScheduler, StatsSurviveRetentionEviction) {
  // Terminal-state counts are folded into SchedulerStats at the
  // terminal transition, so pruning the job records must lose no
  // history — only add to the eviction counter.
  SchedulerOptions options;
  options.max_retained_jobs = 4;
  JobScheduler scheduler(options);
  for (int i = 0; i < 10; ++i) {
    scheduler.wait(
        scheduler.submit(small_job(static_cast<std::uint64_t>(i))));
  }
  const SchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.submitted, 10u);
  EXPECT_EQ(stats.completed, 10u);
  EXPECT_EQ(stats.evicted, 6u);
  EXPECT_GT(scheduler.min_retained_id(), 1u);
}

#if BGLS_TELEMETRY
TEST(JobScheduler, JobTraceRecordsQueueAndRunSpans) {
  JobScheduler scheduler;
  const std::uint64_t id = scheduler.submit(small_job(11));
  const JobInfo info = scheduler.wait(id);
  ASSERT_EQ(info.state, JobState::kDone);
  ASSERT_NE(info.trace, nullptr);
  EXPECT_EQ(info.trace->id(), id);
  bool saw_queue = false;
  bool saw_run = false;
  for (const obs::SpanRecord& span : info.trace->spans()) {
    if (span.name == "queue") {
      saw_queue = true;
      // Span IDs derive from (job id, name, index): assertable without
      // knowing anything about scheduling.
      EXPECT_EQ(span.id, obs::Trace::span_id(id, "queue", 0));
    }
    if (span.name == "run") {
      saw_run = true;
      EXPECT_EQ(span.id, obs::Trace::span_id(id, "run", 0));
      EXPECT_GE(span.seconds, 0.0);
    }
  }
  EXPECT_TRUE(saw_queue);
  EXPECT_TRUE(saw_run);
}
#endif  // BGLS_TELEMETRY

TEST(JobScheduler, ResultCarriesSchedulingPhaseTimes) {
  JobScheduler scheduler;
  const std::uint64_t id = scheduler.submit(small_job(12));
  const JobInfo info = scheduler.wait(id);
  ASSERT_EQ(info.state, JobState::kDone);
  ASSERT_NE(info.result, nullptr);
  // Filled regardless of the telemetry build flag (plain clock reads).
  EXPECT_GE(info.result->stats.queue_wait_ms, 0.0);
  EXPECT_GT(info.result->stats.sample_ms, 0.0);
}

TEST(JobScheduler, TransientFailureRetriesAndSucceeds) {
  SchedulerOptions options;
  options.max_retries = 3;
  options.backoff_base_ms = 1;
  options.checkpoint_every = 25;
  JobScheduler scheduler(options);

  // Exactly one injected mid-shard abort: the first attempt fails
  // transiently, the retry runs clean.
  fault::arm("shard_run", 1.0, 5, 1);
  const std::uint64_t id = scheduler.submit(small_job(42));
  const JobInfo info = scheduler.wait(id);
  fault::disarm_all();
  ASSERT_EQ(info.state, JobState::kDone);
  EXPECT_EQ(info.retries, 1u);
  EXPECT_EQ(scheduler.stats().retried, 1u);
  EXPECT_EQ(scheduler.stats().completed, 1u);
  EXPECT_EQ(scheduler.stats().failed, 0u);

  // The retried job's result is still the canonical one.
  Session session;
  EXPECT_EQ(info.result->measurements.histogram("m"),
            session.run(small_job(42)).measurements.histogram("m"));
}

TEST(JobScheduler, RetryBudgetExhaustionFailsTheJob) {
  SchedulerOptions options;
  options.max_retries = 2;
  options.backoff_base_ms = 1;
  JobScheduler scheduler(options);

  fault::arm("shard_run", 1.0, 5);  // every attempt aborts
  const std::uint64_t id = scheduler.submit(small_job(42));
  const JobInfo info = scheduler.wait(id);
  fault::disarm_all();
  EXPECT_EQ(info.state, JobState::kFailed);
  EXPECT_EQ(info.retries, 2u);
  EXPECT_NE(info.error.find("injected fault"), std::string::npos);
  EXPECT_EQ(scheduler.stats().retried, 2u);
  EXPECT_EQ(scheduler.stats().failed, 1u);
}

TEST(JobScheduler, InvalidRequestIsNotRetried) {
  SchedulerOptions options;
  options.max_retries = 3;
  options.backoff_base_ms = 1;
  JobScheduler scheduler(options);
  // Circuit without measurements: a ValueError, permanently invalid.
  const std::uint64_t id =
      scheduler.submit(RunRequest().with_circuit(Circuit{h(0)}));
  const JobInfo info = scheduler.wait(id);
  EXPECT_EQ(info.state, JobState::kFailed);
  EXPECT_EQ(info.retries, 0u);
  EXPECT_EQ(scheduler.stats().retried, 0u);
}

TEST(JobScheduler, PreemptionCheckpointsResumesAndStaysCorrect) {
  SchedulerOptions options;
  options.max_concurrent_jobs = 1;
  options.preempt_lower_priority = true;
  options.checkpoint_every = 50;
  JobScheduler scheduler(options);

  // A low-priority job big enough to be mid-run (and past several
  // checkpoint boundaries) when the high-priority one arrives.
  const RunRequest low_request = small_job(31, 20'000).with_priority(-1);
  const std::uint64_t low = scheduler.submit(low_request);
  while (scheduler.info(low).state == JobState::kQueued) {
    std::this_thread::sleep_for(1ms);
  }
  std::this_thread::sleep_for(10ms);

  const std::uint64_t high = scheduler.submit(small_job(4).with_priority(9));
  EXPECT_EQ(scheduler.wait(high).state, JobState::kDone);

  // The preempted job resumes from its checkpoint and still finishes
  // with the canonical result — the determinism oracle for resume.
  const JobInfo info = scheduler.wait(low);
  ASSERT_EQ(info.state, JobState::kDone);
  const SchedulerStats stats = scheduler.stats();
  EXPECT_GE(stats.preempted, 1u);
  EXPECT_GE(stats.resumed, 1u);
  EXPECT_LT(scheduler.info(high).start_order, info.start_order);
  Session session;
  EXPECT_EQ(info.result->measurements.histogram("m"),
            session.run(small_job(31, 20'000)).measurements.histogram("m"));
}

TEST(JobScheduler, RetryBacklogCountsAgainstQueueDepth) {
  // Regression: admission used to count only the ready queue, so jobs
  // parked in the retry-backoff list bypassed max_queue_depth — a
  // retry flood could grow the backlog without bound. Delayed jobs
  // must occupy admission slots.
  SchedulerOptions options;
  options.max_concurrent_jobs = 1;
  options.max_queue_depth = 2;
  options.max_retries = 3;
  options.backoff_base_ms = 60'000;  // retries stay parked in delayed_
  JobScheduler scheduler(options);

  fault::arm("shard_run", 1.0, 5);  // every attempt aborts transiently
  const std::uint64_t a = scheduler.submit(small_job(1));
  const std::uint64_t b = scheduler.submit(small_job(2));
  // Both jobs fail their first attempt and re-enter as retry-delayed
  // (back in kQueued with retries recorded, backoff far in the future).
  const auto parked = [&](std::uint64_t id) {
    const JobInfo info = scheduler.info(id);
    return info.retries >= 1 && info.state == JobState::kQueued;
  };
  while (!parked(a) || !parked(b)) {
    std::this_thread::sleep_for(1ms);
  }
  fault::disarm_all();

  EXPECT_EQ(scheduler.stats().queue_depth, 2u);
  EXPECT_THROW((void)scheduler.submit(small_job(3)), QueueFullError);
  EXPECT_EQ(scheduler.stats().rejected, 1u);
  // Destructor cancels the delayed jobs without running them again.
}

#if BGLS_TELEMETRY
TEST(JobScheduler, DestructorResetsQueueGaugeAndCountsCancelled) {
  // Regression: the destructor used to leave the process-wide
  // bgls_scheduler_queue_depth gauge at its last value and never folded
  // shutdown-cancelled queued jobs into
  // bgls_scheduler_jobs_total{state="cancelled"} — a restart-heavy
  // daemon under-reported cancellations forever.
  const auto series = [](const std::string& name) -> obs::SeriesSnapshot {
    for (const obs::SeriesSnapshot& s :
         obs::MetricsRegistry::global().snapshot()) {
      if (s.name == name) return s;
    }
    return {};
  };
  const std::string cancelled_name =
      "bgls_scheduler_jobs_total{state=\"cancelled\"}";
  const std::uint64_t cancelled_before = series(cancelled_name).count;
  {
    SchedulerOptions options;
    options.max_concurrent_jobs = 1;
    JobScheduler scheduler(options);
    start_blocker(scheduler);
    (void)scheduler.submit(small_job(2));
    (void)scheduler.submit(small_job(3));
    EXPECT_GE(series("bgls_scheduler_queue_depth").gauge, 2.0);
  }
  // Two queued jobs died by shutdown, the running blocker by token
  // cancellation: all three are cancelled terminals.
  EXPECT_EQ(series(cancelled_name).count, cancelled_before + 3);
  EXPECT_EQ(series("bgls_scheduler_queue_depth").gauge, 0.0);
}
#endif  // BGLS_TELEMETRY

TEST(JobScheduler, WaitTimeoutReturnsLiveSnapshot) {
  SchedulerOptions options;
  options.max_concurrent_jobs = 1;
  JobScheduler scheduler(options);
  const std::uint64_t blocker = start_blocker(scheduler);
  const JobInfo info = scheduler.wait(blocker, 20ms);
  EXPECT_EQ(info.state, JobState::kRunning);
  scheduler.cancel(blocker);
  EXPECT_EQ(scheduler.wait(blocker).state, JobState::kCancelled);
}

}  // namespace
}  // namespace bgls

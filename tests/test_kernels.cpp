// Kernel-equivalence and determinism tests for the gate-class
// specialized statevector kernels (statevector/kernels.h): every
// specialized path against the forced-generic reference on random
// states and qubit placements, classification itself, and bit-identical
// sampled histograms with kernels on/off and across OpenMP thread
// counts.

#include "statevector/kernels.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#ifdef BGLS_HAVE_OPENMP
#include <omp.h>
#endif

#include "circuit/random.h"
#include "core/optimize.h"
#include "core/simulator.h"
#include "statevector/state.h"
#include "engine_test_helpers.h"
#include "test_helpers.h"

namespace bgls {
namespace {

StateVectorState random_state(int n, Rng& rng) {
  StateVectorState state(n);
  RandomCircuitOptions options;
  options.num_moments = 6;
  options.op_density = 0.9;
  const Circuit c = generate_random_circuit(n, options, rng);
  for (const auto& op : c.all_operations()) state.apply(op);
  return state;
}

/// Applies `m` to copies of `initial` through the specialized and the
/// forced-generic path and returns the max amplitude difference.
double kernel_vs_generic_diff(const StateVectorState& initial, const Matrix& m,
                              const std::vector<Qubit>& qubits) {
  StateVectorState specialized = initial;
  StateVectorState generic = initial;
  {
    kernels::ForceGenericScope scope(false);
    specialized.apply_matrix(m, qubits);
  }
  {
    kernels::ForceGenericScope scope(true);
    generic.apply_matrix(m, qubits);
  }
  return specialized.max_abs_diff(generic);
}

Matrix random_unitary_1q(Rng& rng) {
  return Gate::Rz(rng.uniform(0.0, 6.28)).unitary() *
         Gate::Ry(rng.uniform(0.0, 6.28)).unitary() *
         Gate::Rz(rng.uniform(0.0, 6.28)).unitary();
}

Matrix random_unitary_2q(Rng& rng) {
  const Matrix entangler = Gate::CX().unitary();
  Matrix u = Matrix::kron(random_unitary_1q(rng), random_unitary_1q(rng));
  u = entangler * u;
  u = Matrix::kron(random_unitary_1q(rng), random_unitary_1q(rng)) * u;
  return u;
}

/// Controlled-U with the control on the first or second listed qubit
/// (gate-local MSB or LSB).
Matrix controlled_1q(const Matrix& u, bool control_is_first) {
  Matrix m = Matrix::identity(4);
  if (control_is_first) {
    m(2, 2) = u(0, 0);
    m(2, 3) = u(0, 1);
    m(3, 2) = u(1, 0);
    m(3, 3) = u(1, 1);
  } else {
    m(1, 1) = u(0, 0);
    m(1, 3) = u(0, 1);
    m(3, 1) = u(1, 0);
    m(3, 3) = u(1, 1);
  }
  return m;
}

TEST(KernelClassify, DiagonalGates) {
  for (const Gate& gate : {Gate::Z(), Gate::S(), Gate::T(), Gate::Rz(0.3),
                           Gate::Phase(1.1), Gate::CZ(), Gate::CPhase(0.7),
                           Gate::ZZ(0.4), Gate::CCZ()}) {
    const auto c = kernels::classify(gate.unitary());
    EXPECT_EQ(c.cls, kernels::GateClass::kDiagonal) << gate.name();
  }
}

TEST(KernelClassify, PermutationGates) {
  for (const Gate& gate : {Gate::X(), Gate::Y(), Gate::CX(), Gate::Swap(),
                           Gate::ISwap(), Gate::CCX(), Gate::CSwap()}) {
    const auto c = kernels::classify(gate.unitary());
    EXPECT_EQ(c.cls, kernels::GateClass::kPermutation) << gate.name();
  }
}

TEST(KernelClassify, DenseGates) {
  Rng rng(3);
  for (const Matrix& m : {Gate::H().unitary(), Gate::SqrtX().unitary(),
                          Gate::Rx(0.4).unitary(), random_unitary_1q(rng),
                          random_unitary_2q(rng)}) {
    EXPECT_EQ(kernels::classify(m).cls, kernels::GateClass::kDense);
  }
}

TEST(KernelClassify, ControlledDenseGates) {
  Rng rng(5);
  const Matrix u = random_unitary_1q(rng);

  const auto first = kernels::classify(controlled_1q(u, true));
  EXPECT_EQ(first.cls, kernels::GateClass::kControlled);
  EXPECT_EQ(first.control_positions, 1u);  // qubits[0] is the control
  EXPECT_LT(first.inner.max_abs_diff(u), 1e-15);

  const auto second = kernels::classify(controlled_1q(u, false));
  EXPECT_EQ(second.cls, kernels::GateClass::kControlled);
  EXPECT_EQ(second.control_positions, 2u);  // qubits[1] is the control

  // Doubly-controlled dense gate: 8x8 identity except an H block on
  // the |11x⟩ subspace.
  Matrix cch = Matrix::identity(8);
  const Matrix h = Gate::H().unitary();
  cch(6, 6) = h(0, 0);
  cch(6, 7) = h(0, 1);
  cch(7, 6) = h(1, 0);
  cch(7, 7) = h(1, 1);
  const auto both = kernels::classify(cch);
  EXPECT_EQ(both.cls, kernels::GateClass::kControlled);
  EXPECT_EQ(both.control_positions, 3u);  // qubits[0] and qubits[1]
  EXPECT_LT(both.inner.max_abs_diff(h), 1e-15);
}

TEST(KernelEquivalence, NamedSingleQubitGates) {
  const int n = 6;
  Rng rng(11);
  for (const Gate& gate :
       {Gate::I(), Gate::X(), Gate::Y(), Gate::Z(), Gate::H(), Gate::S(),
        Gate::Sdg(), Gate::T(), Gate::Tdg(), Gate::SqrtX(), Gate::Rx(0.9),
        Gate::Ry(1.3), Gate::Rz(0.5), Gate::Phase(2.1)}) {
    const StateVectorState state = random_state(n, rng);
    for (const Qubit q : {0, 2, n - 1}) {  // low, middle, high bit
      EXPECT_LT(kernel_vs_generic_diff(state, gate.unitary(), {q}), 1e-12)
          << gate.name() << " on qubit " << q;
    }
  }
}

TEST(KernelEquivalence, NamedTwoQubitGates) {
  const int n = 6;
  Rng rng(13);
  const std::vector<std::vector<Qubit>> placements{
      {0, 1}, {1, 0}, {4, 5}, {5, 4}, {0, 5}, {5, 0}, {2, 3}};
  for (const Gate& gate : {Gate::CX(), Gate::CZ(), Gate::Swap(),
                           Gate::ISwap(), Gate::CPhase(0.8), Gate::ZZ(1.7)}) {
    const StateVectorState state = random_state(n, rng);
    for (const auto& qubits : placements) {
      EXPECT_LT(kernel_vs_generic_diff(state, gate.unitary(), qubits), 1e-12)
          << gate.name() << " on (" << qubits[0] << ", " << qubits[1] << ")";
    }
  }
}

TEST(KernelEquivalence, NamedThreeQubitGates) {
  const int n = 6;
  Rng rng(17);
  const std::vector<std::vector<Qubit>> placements{
      {0, 1, 2}, {2, 1, 0}, {3, 5, 1}, {5, 4, 3}, {1, 3, 5}};
  for (const Gate& gate : {Gate::CCX(), Gate::CCZ(), Gate::CSwap()}) {
    const StateVectorState state = random_state(n, rng);
    for (const auto& qubits : placements) {
      EXPECT_LT(kernel_vs_generic_diff(state, gate.unitary(), qubits), 1e-12)
          << gate.name();
    }
  }
}

TEST(KernelEquivalence, RandomDenseMatrices) {
  const int n = 6;
  Rng rng(19);
  for (int trial = 0; trial < 10; ++trial) {
    const StateVectorState state = random_state(n, rng);
    const Qubit q = static_cast<Qubit>(rng.uniform_int(n));
    EXPECT_LT(kernel_vs_generic_diff(state, random_unitary_1q(rng), {q}),
              1e-12);
    const Qubit q0 = static_cast<Qubit>(rng.uniform_int(n));
    Qubit q1 = static_cast<Qubit>(rng.uniform_int(n));
    if (q1 == q0) q1 = (q0 + 1) % n;
    EXPECT_LT(
        kernel_vs_generic_diff(state, random_unitary_2q(rng), {q0, q1}),
        1e-12);
  }
}

TEST(KernelEquivalence, ControlledDenseMatrices) {
  const int n = 6;
  Rng rng(23);
  for (int trial = 0; trial < 10; ++trial) {
    const StateVectorState state = random_state(n, rng);
    const Matrix u = random_unitary_1q(rng);
    const Qubit q0 = static_cast<Qubit>(rng.uniform_int(n));
    Qubit q1 = static_cast<Qubit>(rng.uniform_int(n));
    if (q1 == q0) q1 = (q0 + 1) % n;
    EXPECT_LT(
        kernel_vs_generic_diff(state, controlled_1q(u, true), {q0, q1}),
        1e-12);
    EXPECT_LT(
        kernel_vs_generic_diff(state, controlled_1q(u, false), {q0, q1}),
        1e-12);
  }
}

TEST(KernelEquivalence, ThreeQubitControlledDenseMatrices) {
  // Exercises the kControlled dispatch with a dense 1q inner (two
  // controls) and a dense 2q inner (one control) — the
  // apply_dense_2q-with-fixed_mask path no named gate reaches.
  const int n = 6;
  Rng rng(53);
  const std::vector<std::vector<Qubit>> placements{
      {0, 1, 2}, {2, 1, 0}, {5, 0, 3}, {3, 5, 1}};
  for (int trial = 0; trial < 4; ++trial) {
    const StateVectorState state = random_state(n, rng);

    // Two controls, dense 1q inner: identity except u on |11x⟩.
    Matrix ccu = Matrix::identity(8);
    const Matrix u1 = random_unitary_1q(rng);
    for (std::size_t r = 0; r < 2; ++r) {
      for (std::size_t c = 0; c < 2; ++c) ccu(6 + r, 6 + c) = u1(r, c);
    }
    // One control, dense 2q inner: identity except u2 on |1xx⟩.
    Matrix cu2 = Matrix::identity(8);
    const Matrix u2 = random_unitary_2q(rng);
    for (std::size_t r = 0; r < 4; ++r) {
      for (std::size_t c = 0; c < 4; ++c) cu2(4 + r, 4 + c) = u2(r, c);
    }
    ASSERT_EQ(kernels::classify(ccu).cls, kernels::GateClass::kControlled);
    ASSERT_EQ(kernels::classify(cu2).cls, kernels::GateClass::kControlled);
    for (const auto& qubits : placements) {
      EXPECT_LT(kernel_vs_generic_diff(state, ccu, qubits), 1e-12);
      EXPECT_LT(kernel_vs_generic_diff(state, cu2, qubits), 1e-12);
    }
  }
}

TEST(KernelEquivalence, NonUnitaryKrausLikeMatrices) {
  // Classification is structural, so it must also serve unnormalized
  // Kraus branches: diagonal damping, a scaled anti-diagonal, and a
  // singular lowering operator (dense: it has a zero row).
  const int n = 5;
  Rng rng(29);
  const StateVectorState state = random_state(n, rng);
  const Matrix damping(2, 2, {1.0, 0.0, 0.0, std::sqrt(0.5)});
  const Matrix scaled_flip(2, 2, {0.0, 0.3, 2.0, 0.0});
  const Matrix lowering(2, 2, {0.0, 0.6, 0.0, 0.0});
  for (const Matrix& m : {damping, scaled_flip, lowering}) {
    for (const Qubit q : {0, n - 1}) {
      EXPECT_LT(kernel_vs_generic_diff(state, m, {q}), 1e-12);
    }
  }
}

TEST(KernelEquivalence, FusedOptimizerMatrices) {
  // The optimizer's fused 1q/2q products are the dense matrices the
  // sampler actually applies — exercise them end to end.
  const int n = 5;
  Rng circuit_rng(31), state_rng(37);
  RandomCircuitOptions options;
  options.num_moments = 20;
  options.op_density = 0.9;
  const Circuit circuit = generate_random_circuit(n, options, circuit_rng);
  const Circuit optimized = optimize_for_bgls(circuit);
  const StateVectorState state = random_state(n, state_rng);
  for (const auto& op : optimized.all_operations()) {
    if (!op.gate().is_unitary()) continue;
    const std::vector<Qubit> qubits(op.qubits().begin(), op.qubits().end());
    EXPECT_LT(kernel_vs_generic_diff(state, op.gate().unitary(), qubits),
              1e-12)
        << op.to_string();
  }
}

TEST(KernelEquivalence, LargeStateAboveParallelThreshold) {
  // 2^15 amplitudes exceeds the kernels' OpenMP threshold, so this
  // covers the parallel loop shapes when OpenMP is enabled (and the
  // blocked serial shapes when not).
  const int n = 15;
  StateVectorState big(n);
  // Entangle across the register so amplitudes are non-trivial.
  for (int q = 0; q < n; ++q) big.apply(h(q));
  for (int q = 0; q + 1 < n; ++q) big.apply(cnot(q, q + 1));
  for (int q = 0; q < n; q += 3) big.apply(t(q));
  for (const Gate& gate : {Gate::H(), Gate::X(), Gate::T(), Gate::Rx(0.7)}) {
    for (const Qubit q : {0, 7, n - 1}) {
      EXPECT_LT(kernel_vs_generic_diff(big, gate.unitary(), {q}), 1e-12)
          << gate.name() << " on qubit " << q;
    }
  }
  for (const Gate& gate : {Gate::CX(), Gate::CZ(), Gate::ISwap()}) {
    for (const auto& qubits : std::vector<std::vector<Qubit>>{
             {0, 1}, {n - 1, 0}, {7, 8}, {n - 2, n - 1}}) {
      EXPECT_LT(kernel_vs_generic_diff(big, gate.unitary(), qubits), 1e-12)
          << gate.name();
    }
  }
}

TEST(KernelDeterminism, HistogramsBitIdenticalKernelsOnOff) {
  Rng circuit_rng(43);
  RandomCircuitOptions options;
  options.num_moments = 15;
  options.op_density = 0.9;
  const Circuit circuit = generate_random_circuit(5, options, circuit_rng);

  Simulator<StateVectorState> sim{StateVectorState(5)};
  Counts specialized, generic;
  {
    kernels::ForceGenericScope scope(false);
    Rng rng(47);
    specialized = sim.sample(circuit, 5000, rng);
  }
  {
    kernels::ForceGenericScope scope(true);
    Rng rng(47);
    generic = sim.sample(circuit, 5000, rng);
  }
#ifdef BGLS_HAVE_AVX2
  // The AVX2 path is an explicit opt-in whose FMA rounding differs
  // from the generic butterfly in the last ulp, so bitwise equality
  // against the generic path cannot hold; the distributions still must
  // agree closely. (Thread-count bit-identity holds even with AVX2 —
  // see the OmpThreadCounts tests.)
  EXPECT_LT(total_variation_distance(normalize(specialized),
                                     normalize(generic)),
            0.05);
#else
  // The specialized kernels perform magnitude-identical arithmetic, so
  // with a fixed seed the sampled histogram must match the generic
  // path's exactly — not just statistically.
  EXPECT_EQ(specialized, generic);
#endif
}

#ifdef BGLS_HAVE_OPENMP
TEST(KernelDeterminism, AmplitudesBitIdenticalAcrossOmpThreadCounts) {
  // Every kernel partitions the index space into disjoint blocks with
  // identical per-index arithmetic, so thread count must not change a
  // single bit.
  const int n = 15;
  const int saved = omp_get_max_threads();
  const auto evolve_with_threads = [&](int threads) {
    omp_set_num_threads(threads);
    StateVectorState state(n);
    for (int q = 0; q < n; ++q) state.apply(h(q));
    for (int q = 0; q + 1 < n; ++q) state.apply(cnot(q, q + 1));
    for (int q = 0; q < n; ++q) state.apply(rz(0.1 * (q + 1), q));
    for (int q = 0; q + 2 < n; q += 2) state.apply(cz(q, q + 2));
    for (int q = 0; q < n; ++q) state.apply(ry(0.05 * (q + 1), q));
    return state;
  };
  const StateVectorState serial = evolve_with_threads(1);
  const StateVectorState parallel = evolve_with_threads(4);
  omp_set_num_threads(saved);
  EXPECT_EQ(serial.max_abs_diff(parallel), 0.0);
}

TEST(KernelDeterminism, HistogramsBitIdenticalAcrossOmpThreadCounts) {
  const int n = 15;
  Circuit circuit = ghz_circuit(n);
  for (int q = 0; q < n; q += 2) circuit.append(t(q));
  const int saved = omp_get_max_threads();
  const auto sample_with_threads = [&](int threads) {
    omp_set_num_threads(threads);
    Simulator<StateVectorState> sim{StateVectorState(n)};
    Rng rng(53);
    return sim.sample(circuit, 500, rng);
  };
  const Counts serial = sample_with_threads(1);
  const Counts parallel = sample_with_threads(3);
  omp_set_num_threads(saved);
  EXPECT_EQ(serial, parallel);
}
#endif  // BGLS_HAVE_OPENMP

TEST(KernelEquivalence, CompiledMatrixOverloadMatchesClassifyingOverload) {
  // The precomputed-classification overload (what Gate::compiled_unitary
  // feeds) must run the identical kernels as the classifying one.
  Rng rng(211);
  StateVectorState initial = random_state(6, rng);
  for (const Gate& gate : {Gate::H(), Gate::T(), Gate::CX(), Gate::CZ(),
                           Gate::CCX(), Gate::Rz(0.9)}) {
    std::vector<Qubit> qubits;
    for (int q = 0; q < gate.arity(); ++q) qubits.push_back(q + 1);
    const kernels::CompiledMatrix compiled = kernels::compile(gate.unitary());
    std::vector<Complex> via_compiled(initial.amplitudes().begin(),
                                      initial.amplitudes().end());
    kernels::apply_matrix(via_compiled, 6, compiled, qubits);
    StateVectorState via_classify = initial;
    via_classify.apply_matrix(gate.unitary(), qubits);
    for (std::size_t i = 0; i < via_compiled.size(); ++i) {
      ASSERT_EQ(via_compiled[i], via_classify.amplitudes()[i]) << gate.name();
    }
  }
}

TEST(KernelEquivalence, SamplingIdenticalThroughGateCacheAndRawMatrices) {
  // End to end: apply(op) now routes through the per-gate cache; it
  // must sample bit-identically to explicit apply_matrix(unitary()).
  Rng circuit_rng(97);
  const Circuit circuit = testing::with_terminal_measurement(
      random_clifford_t_circuit(4, 10, 5, circuit_rng), 4, "m");
  Simulator<StateVectorState> cached{StateVectorState(4)};
  Simulator<StateVectorState> raw{
      StateVectorState(4),
      [](const Operation& op, StateVectorState& state, Rng&) {
        state.apply_matrix(op.gate().unitary(), op.qubits());
      },
      [](const StateVectorState& state, Bitstring b) {
        return state.probability(b);
      }};
  EXPECT_EQ(cached.run(circuit, 2000, 5).histogram("m"),
            raw.run(circuit, 2000, 5).histogram("m"));
}

TEST(Kernels, ForceGenericScopeRestoresState) {
  const bool before = kernels::force_generic();
  {
    kernels::ForceGenericScope outer(true);
    EXPECT_TRUE(kernels::force_generic());
    {
      kernels::ForceGenericScope inner(false);
      EXPECT_FALSE(kernels::force_generic());
    }
    EXPECT_TRUE(kernels::force_generic());
  }
  EXPECT_EQ(kernels::force_generic(), before);
}

}  // namespace
}  // namespace bgls

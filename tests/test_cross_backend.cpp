// Cross-representation integration tests: the same circuits sampled
// through every backend and every sampler path must agree — the
// strongest end-to-end statement the library makes (the paper's claim
// that BGLS "functions on essentially any arbitrary quantum state
// representation").

#include <gtest/gtest.h>

#include "circuit/random.h"
#include "core/baseline.h"
#include "core/optimize.h"
#include "core/simulator.h"
#include "densitymatrix/state.h"
#include "engine/engine.h"
#include "mps/state.h"
#include "stabilizer/ch_form.h"
#include "statevector/state.h"
#include "engine_test_helpers.h"
#include "test_helpers.h"

namespace bgls {
namespace {

Circuit measured_on_all(Circuit circuit, int num_qubits) {
  return testing::with_terminal_measurement(std::move(circuit), num_qubits,
                                            "m");
}

/// Runs `circuit` through a direct single-threaded Simulator::run and
/// through a 4-thread BatchEngine (8 RNG streams) and returns both
/// normalized histograms — the two execution paths every backend must
/// support interchangeably.
template <typename State>
std::pair<Distribution, Distribution> direct_and_engine_distributions(
    const Circuit& circuit, State initial, std::uint64_t reps,
    std::uint64_t seed) {
  Simulator<State> direct{initial};
  Rng direct_rng(seed);
  const Distribution direct_dist =
      direct.run(circuit, reps, direct_rng).distribution("m");

  SimulatorOptions engine_options;
  engine_options.num_threads = 4;
  engine_options.num_rng_streams = 8;
  BatchEngine<State> engine{Simulator<State>{std::move(initial),
                                             engine_options}};
  const Distribution engine_dist =
      engine.run(circuit, reps, seed + 1).distribution("m");
  return {direct_dist, engine_dist};
}

class CrossBackendClifford : public ::testing::TestWithParam<int> {};

TEST_P(CrossBackendClifford, AllFourBackendsSampleTheSameDistribution) {
  const int seed = GetParam();
  Rng circuit_rng(static_cast<std::uint64_t>(seed) * 271 + 9);
  const int n = 4;
  const Circuit circuit = random_clifford_circuit(n, 15, circuit_rng);
  const auto ideal = testing::ideal_distribution(circuit, n);
  const std::uint64_t reps = 20000;

  Simulator<StateVectorState> sv{StateVectorState(n)};
  Simulator<DensityMatrixState> dm{DensityMatrixState(n)};
  Simulator<CHState> ch{CHState(n)};
  Simulator<MPSState> mps{MPSState(n)};

  Rng r1(1), r2(2), r3(3), r4(4);
  EXPECT_LT(total_variation_distance(normalize(sv.sample(circuit, reps, r1)),
                                     ideal),
            0.025);
  EXPECT_LT(total_variation_distance(normalize(dm.sample(circuit, reps, r2)),
                                     ideal),
            0.025);
  EXPECT_LT(total_variation_distance(normalize(ch.sample(circuit, reps, r3)),
                                     ideal),
            0.025);
  EXPECT_LT(total_variation_distance(normalize(mps.sample(circuit, reps, r4)),
                                     ideal),
            0.025);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossBackendClifford, ::testing::Range(0, 5));

TEST(CrossBackend, AmplitudesAgreeOnCliffordCircuits) {
  // Phase-exact agreement between all amplitude-capable backends.
  Rng circuit_rng(77);
  const int n = 5;
  const Circuit circuit = random_clifford_circuit(n, 25, circuit_rng);

  StateVectorState sv(n);
  Rng rng(0);
  evolve(circuit, sv, rng);
  CHState ch(n);
  MPSState mps(n);
  for (const auto& op : circuit.all_operations()) {
    ch.apply(op);
    mps.apply(op);
  }
  for (Bitstring b = 0; b < (Bitstring{1} << n); ++b) {
    EXPECT_NEAR(std::abs(ch.amplitude(b) - sv.amplitude(b)), 0.0, 1e-9);
    EXPECT_NEAR(std::abs(mps.amplitude(b) - sv.amplitude(b)), 0.0, 1e-9);
  }
}

TEST(CrossBackend, BaselineAndBglsAgree) {
  Rng circuit_rng(81);
  const int n = 4;
  RandomCircuitOptions options;
  options.num_moments = 10;
  const Circuit circuit = generate_random_circuit(n, options, circuit_rng);

  Simulator<StateVectorState> sim{StateVectorState(n)};
  Rng r1(5), r2(6);
  const auto bgls_dist = normalize(sim.sample(circuit, 30000, r1));
  const auto baseline_dist =
      normalize(qubit_by_qubit_sample(circuit, StateVectorState(n), 30000, r2));
  EXPECT_LT(total_variation_distance(bgls_dist, baseline_dist), 0.02);
}

TEST(CrossBackend, OptimizedCircuitSamplesIdenticallyOnEveryBackend) {
  Rng circuit_rng(83);
  const int n = 3;
  RandomCircuitOptions options;
  options.num_moments = 14;
  options.op_density = 0.9;
  options.gate_domain = {Gate::H(), Gate::T(), Gate::S(), Gate::X(),
                         Gate::CX()};
  const Circuit circuit = generate_random_circuit(n, options, circuit_rng);
  const Circuit optimized = optimize_for_bgls(circuit);
  const auto ideal = testing::ideal_distribution(circuit, n);

  Simulator<StateVectorState> sv{StateVectorState(n)};
  Simulator<MPSState> mps{MPSState(n)};
  Rng r1(7), r2(8);
  EXPECT_LT(total_variation_distance(
                normalize(sv.sample(optimized, 30000, r1)), ideal),
            0.02);
  EXPECT_LT(total_variation_distance(
                normalize(mps.sample(optimized, 30000, r2)), ideal),
            0.02);
}

TEST(CrossBackend, ChannelsAgreeBetweenSvAndDmBackends) {
  Circuit circuit{h(0), cnot(0, 1)};
  circuit.append(Operation(Gate::Channel(amplitude_damp(0.45)), {0}));
  circuit.append(Operation(Gate::Channel(phase_flip(0.25)), {1}));
  circuit.append(h(1));

  DensityMatrixState rho(2);
  evolve_exact(circuit, rho);
  Distribution ideal;
  for (Bitstring b = 0; b < 4; ++b) ideal[b] = rho.probability(b);

  Simulator<StateVectorState> sv{StateVectorState(2)};
  Simulator<DensityMatrixState> dm{DensityMatrixState(2)};
  Rng r1(9), r2(10);
  EXPECT_LT(total_variation_distance(normalize(sv.sample(circuit, 40000, r1)),
                                     ideal),
            0.02);
  EXPECT_LT(total_variation_distance(normalize(dm.sample(circuit, 40000, r2)),
                                     ideal),
            0.02);
}

TEST(CrossBackend, MidCircuitMeasurementAgreesAcrossBackends) {
  // GHZ + mid measurement + further gates; the three pure-state
  // backends must produce the same joint records distribution.
  Circuit circuit = ghz_circuit(3);
  circuit.append(measure({0}, "mid"));
  circuit.append(h(1));
  circuit.append(measure({1, 2}, "end"));

  const auto run_joint = [&](auto simulator, std::uint64_t seed) {
    Rng rng(seed);
    const Result result = simulator.run(circuit, 20000, rng);
    // Joint distribution over (mid, end).
    Counts joint;
    for (std::size_t i = 0; i < result.values("mid").size(); ++i) {
      ++joint[(result.values("mid")[i] << 2) | result.values("end")[i]];
    }
    return normalize(joint);
  };

  const auto sv = run_joint(Simulator<StateVectorState>{StateVectorState(3)}, 1);
  const auto ch = run_joint(Simulator<CHState>{CHState(3)}, 2);
  const auto mps = run_joint(Simulator<MPSState>{MPSState(3)}, 3);
  EXPECT_LT(total_variation_distance(sv, ch), 0.025);
  EXPECT_LT(total_variation_distance(sv, mps), 0.025);
}

// Randomized differential suite: seeded random Clifford+T circuits
// sampled through statevector, density-matrix, and MPS backends — each
// both directly (Simulator::run, one thread) and through the
// BatchEngine — must all agree with the brute-force ideal distribution
// within sampling tolerance. The stabilizer backend joins on the
// pure-Clifford (T→S) subset, where its simulation is exact.
class CrossBackendDifferential : public ::testing::TestWithParam<int> {
 protected:
  static constexpr int kQubits = 4;
  static constexpr std::uint64_t kReps = 20000;
  static constexpr double kTolerance = 0.035;

  [[nodiscard]] Circuit clifford_t_circuit() const {
    Rng circuit_rng(static_cast<std::uint64_t>(GetParam()) * 131 + 7);
    return random_clifford_t_circuit(kQubits, 12, 6, circuit_rng);
  }
};

TEST_P(CrossBackendDifferential, CliffordTAgreesAcrossBackendsAndPaths) {
  const Circuit circuit = measured_on_all(clifford_t_circuit(), kQubits);
  const auto ideal = testing::ideal_distribution(circuit, kQubits);
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam()) * 977 + 3;

  const auto [sv_direct, sv_engine] = direct_and_engine_distributions(
      circuit, StateVectorState(kQubits), kReps, seed);
  const auto [dm_direct, dm_engine] = direct_and_engine_distributions(
      circuit, DensityMatrixState(kQubits), kReps, seed + 100);
  const auto [mps_direct, mps_engine] = direct_and_engine_distributions(
      circuit, MPSState(kQubits), kReps, seed + 200);

  for (const auto& [label, dist] :
       std::initializer_list<std::pair<const char*, const Distribution*>>{
           {"sv direct", &sv_direct},   {"sv engine", &sv_engine},
           {"dm direct", &dm_direct},   {"dm engine", &dm_engine},
           {"mps direct", &mps_direct}, {"mps engine", &mps_engine}}) {
    EXPECT_LT(total_variation_distance(*dist, ideal), kTolerance) << label;
  }
}

TEST_P(CrossBackendDifferential, StabilizerExactOnPureCliffordSubset) {
  // Replace every T with S: the circuit becomes pure Clifford, which
  // the CH-form backend simulates exactly — no branch mixture, so its
  // samples must (a) never land outside the ideal support and (b) match
  // the ideal distribution within sampling noise, on both paths.
  const Circuit clifford = measured_on_all(
      with_t_gates_replaced(clifford_t_circuit(), Gate::S()), kQubits);
  const auto ideal = testing::ideal_distribution(clifford, kQubits);
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam()) * 577 + 11;

  const auto [direct, engine] = direct_and_engine_distributions(
      clifford, CHState(kQubits), kReps, seed);
  for (const auto& [label, dist] :
       std::initializer_list<std::pair<const char*, const Distribution*>>{
           {"ch direct", &direct}, {"ch engine", &engine}}) {
    EXPECT_LT(total_variation_distance(*dist, ideal), kTolerance) << label;
    for (const auto& [bits, p] : *dist) {
      EXPECT_TRUE(ideal.contains(bits))
          << label << " sampled zero-probability bitstring " << bits;
      (void)p;
    }
  }

  // Exactness also means bit-exact reproducibility through the engine.
  SimulatorOptions engine_options;
  engine_options.num_threads = 4;
  engine_options.num_rng_streams = 8;
  BatchEngine<CHState> repeat{
      Simulator<CHState>{CHState(kQubits), engine_options}};
  EXPECT_EQ(repeat.run(clifford, 2000, seed).histogram("m"),
            repeat.run(clifford, 2000, seed).histogram("m"));
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossBackendDifferential,
                         ::testing::Range(0, 3));

TEST(CrossBackend, DeterministicSeedsAcrossBackends) {
  // Same seed, same backend => identical counts (regression guard for
  // the deterministic sampling pipeline).
  const Circuit circuit = ghz_circuit(4);
  Simulator<CHState> sim{CHState(4)};
  Rng r1(123), r2(123);
  const Counts a = sim.sample(circuit, 500, r1);
  const Counts b = sim.sample(circuit, 500, r2);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace bgls

// Tests for optimize_for_bgls: fusion correctness, barriers, identity
// elimination, and end-to-end distribution preservation.

#include "core/optimize.h"

#include <gtest/gtest.h>

#include "circuit/random.h"
#include "core/simulator.h"
#include "statevector/state.h"
#include "test_helpers.h"

namespace bgls {
namespace {

TEST(Optimize, FiveSequentialGatesMergeIntoOne) {
  // The paper's Sec. 3.2.2 example: five sequential single-qubit
  // operations collapse into a single operation.
  Circuit circuit{h(0), t(0), s(0), x(0), t(0)};
  OptimizationReport report;
  const Circuit optimized = optimize_for_bgls(circuit, &report);
  EXPECT_EQ(optimized.num_operations(), 1u);
  EXPECT_EQ(report.gates_fused, 5u);
  EXPECT_TRUE(testing::circuit_unitary(optimized, 1)
                  .approx_equal(testing::circuit_unitary(circuit, 1), 1e-9));
}

TEST(Optimize, HhDropsToIdentity) {
  Circuit circuit{h(0), h(0)};
  OptimizationReport report;
  const Circuit optimized = optimize_for_bgls(circuit, &report);
  EXPECT_EQ(optimized.num_operations(), 0u);
  EXPECT_EQ(report.identities_dropped, 1u);
}

/// Pass-1-only options, for tests pinning the paper's Sec. 3.2.2
/// behavior where two-qubit gates act as barriers.
OptimizeOptions single_qubit_only() {
  return OptimizeOptions{.fuse_into_two_qubit_gates = false};
}

TEST(Optimize, LoneGateKeepsItsName) {
  Circuit circuit{h(0), cnot(0, 1), t(1)};
  const Circuit optimized = optimize_for_bgls(circuit, single_qubit_only());
  const auto ops = optimized.all_operations();
  ASSERT_EQ(ops.size(), 3u);
  EXPECT_EQ(ops[0].to_string(), "H(0)");
  EXPECT_EQ(ops[2].to_string(), "T(1)");
}

TEST(Optimize, TwoQubitGatesAreBarriersForPassOne) {
  Circuit circuit{h(0), cnot(0, 1), h(0)};
  const Circuit optimized = optimize_for_bgls(circuit, single_qubit_only());
  // H ... CX ... H cannot merge across the CX.
  EXPECT_EQ(optimized.num_operations(), 3u);
}

TEST(Optimize, TwoQubitFusionAbsorbsNeighborRuns) {
  // Pass 2: H(0) and T(1) precede the CX, S(0) and H(1) trail it with
  // nothing in between — all four collapse into one 4x4 gate.
  Circuit circuit{h(0), t(1), cnot(0, 1), s(0), h(1)};
  OptimizationReport report;
  const Circuit optimized = optimize_for_bgls(circuit, &report);
  EXPECT_EQ(optimized.num_operations(), 1u);
  EXPECT_EQ(report.gates_fused_into_two_qubit, 4u);
  EXPECT_TRUE(testing::circuit_unitary(optimized, 2)
                  .approx_equal(testing::circuit_unitary(circuit, 2), 1e-9));
}

TEST(Optimize, TwoQubitFusionKeepsUnmodifiedGateNames) {
  Circuit circuit{cnot(0, 1), cnot(1, 2)};
  const Circuit optimized = optimize_for_bgls(circuit);
  const auto ops = optimized.all_operations();
  ASSERT_EQ(ops.size(), 2u);
  EXPECT_EQ(ops[0].to_string(), "CX(0, 1)");
  EXPECT_EQ(ops[1].to_string(), "CX(1, 2)");
}

TEST(Optimize, TwoQubitFusionAcrossDisjointOperations) {
  // H(2) may hop over nothing: it directly precedes CX(1, 2) on its
  // line even though CX(0, 1) sits between them in program order.
  Circuit circuit{cnot(0, 1), h(2), cnot(1, 2)};
  OptimizationReport report;
  const Circuit optimized = optimize_for_bgls(circuit, &report);
  EXPECT_EQ(optimized.num_operations(), 2u);
  EXPECT_EQ(report.gates_fused_into_two_qubit, 1u);
  EXPECT_TRUE(testing::circuit_unitary(optimized, 3)
                  .approx_equal(testing::circuit_unitary(circuit, 3), 1e-9));
}

TEST(Optimize, TwoQubitFusionClosedByMeasurement) {
  // The trailing H comes after the measurement on its qubit, so it must
  // not be absorbed backwards into the CX.
  Circuit circuit{h(0), cnot(0, 1), measure({0}, "m")};
  circuit.append(h(0), InsertStrategy::kNewThenInline);
  OptimizationReport report;
  const Circuit optimized = optimize_for_bgls(circuit, &report);
  const auto ops = optimized.all_operations();
  ASSERT_EQ(ops.size(), 3u);
  EXPECT_EQ(report.gates_fused_into_two_qubit, 1u);  // only the leading H
  EXPECT_TRUE(ops[1].gate().is_measurement());
  EXPECT_EQ(ops[2].to_string(), "H(0)");
}

TEST(Optimize, ClassicallyControlledGatesAreBarriers) {
  // A conditioned gate must neither fuse (it would lose its condition)
  // nor let runs merge across it.
  Circuit circuit{h(0), measure({0}, "m")};
  circuit.append(x(0).controlled_by_measurement("m"),
                 InsertStrategy::kNewThenInline);
  circuit.append(x(0), InsertStrategy::kNewThenInline);
  const Circuit optimized = optimize_for_bgls(circuit);
  const auto ops = optimized.all_operations();
  ASSERT_EQ(ops.size(), 4u);
  EXPECT_TRUE(ops[2].is_classically_controlled());
  EXPECT_EQ(ops[3].to_string(), "X(0)");
}

TEST(Optimize, AblationOptionsDisablePasses) {
  Circuit circuit{h(0), t(0), cnot(0, 1), s(1)};
  OptimizationReport report;
  const Circuit untouched = optimize_for_bgls(
      circuit, OptimizeOptions{.fuse_single_qubit_gates = false}, &report);
  EXPECT_EQ(untouched.num_operations(), circuit.num_operations());
  EXPECT_EQ(report.gates_fused, 0u);
  EXPECT_EQ(report.gates_fused_into_two_qubit, 0u);

  const Circuit pass1 = optimize_for_bgls(circuit, single_qubit_only(),
                                          &report);
  EXPECT_EQ(pass1.num_operations(), 3u);  // fused(H,T), CX, S
  EXPECT_EQ(report.gates_fused_into_two_qubit, 0u);

  const Circuit pass12 = optimize_for_bgls(circuit, &report);
  EXPECT_EQ(pass12.num_operations(), 1u);
  EXPECT_EQ(report.gates_fused_into_two_qubit, 3u);
}

TEST(Optimize, MeasurementIsABarrier) {
  Circuit circuit{h(0), measure({0}, "m")};
  const Circuit optimized = optimize_for_bgls(circuit);
  ASSERT_EQ(optimized.num_operations(), 2u);
  EXPECT_EQ(optimized.all_operations()[0].to_string(), "H(0)");
  EXPECT_TRUE(optimized.all_operations()[1].gate().is_measurement());
}

TEST(Optimize, ChannelIsABarrier) {
  Circuit circuit{h(0)};
  circuit.append(Operation(Gate::Channel(bit_flip(0.1)), {0}));
  circuit.append(h(0));
  const Circuit optimized = optimize_for_bgls(circuit);
  EXPECT_EQ(optimized.num_operations(), 3u);
}

TEST(Optimize, SymbolicGatesPassThrough) {
  Circuit circuit{h(0), rz(Symbol{"g"}, 0), h(0)};
  const Circuit optimized = optimize_for_bgls(circuit);
  EXPECT_EQ(optimized.num_operations(), 3u);
  EXPECT_TRUE(optimized.is_parameterized());
}

TEST(Optimize, RunsOnSeparateQubitsFuseIndependently) {
  Circuit circuit{h(0), t(0), h(1), s(1), x(2)};
  OptimizationReport report;
  const Circuit optimized = optimize_for_bgls(circuit, &report);
  EXPECT_EQ(optimized.num_operations(), 3u);  // one per qubit
  EXPECT_EQ(report.gates_fused, 4u);          // q0 pair + q1 pair
}

class OptimizeRandomCircuits : public ::testing::TestWithParam<int> {};

TEST_P(OptimizeRandomCircuits, PreservesCircuitUnitary) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const int n = 4;
  RandomCircuitOptions options;
  options.num_moments = 15;
  options.op_density = 0.9;
  const Circuit circuit = generate_random_circuit(n, options, rng);
  const Circuit optimized = optimize_for_bgls(circuit);
  EXPECT_LE(optimized.num_operations(), circuit.num_operations());
  EXPECT_TRUE(testing::circuit_unitary(optimized, n)
                  .approx_equal(testing::circuit_unitary(circuit, n), 1e-8));
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimizeRandomCircuits,
                         ::testing::Range(0, 10));

TEST(Optimize, SampledDistributionUnchanged) {
  Rng circuit_rng(3);
  RandomCircuitOptions options;
  options.num_moments = 12;
  const Circuit circuit = generate_random_circuit(3, options, circuit_rng);
  const Circuit optimized = optimize_for_bgls(circuit);

  Simulator<StateVectorState> sim{StateVectorState(3)};
  Rng rng1(5), rng2(5);
  const auto original = normalize(sim.sample(circuit, 30000, rng1));
  const auto fused = normalize(sim.sample(optimized, 30000, rng2));
  EXPECT_LT(total_variation_distance(original, fused), 0.02);
}

TEST(Optimize, ReducesOperationCountOnDenseCircuits) {
  Rng rng(7);
  RandomCircuitOptions options;
  options.num_moments = 30;
  options.op_density = 0.9;
  options.gate_domain = {Gate::H(), Gate::T(), Gate::S(), Gate::X(),
                         Gate::CX()};
  const Circuit circuit = generate_random_circuit(6, options, rng);
  OptimizationReport report;
  const Circuit optimized = optimize_for_bgls(circuit, &report);
  EXPECT_LT(report.operations_after, report.operations_before);
}

TEST(Optimize, EmptyCircuit) {
  const Circuit optimized = optimize_for_bgls(Circuit{});
  EXPECT_EQ(optimized.num_operations(), 0u);
}

}  // namespace
}  // namespace bgls

/// Replays the checked-in fuzz corpus (tests/data/fuzz) through the
/// shared fuzz targets (tests/fuzz/targets.h) as ordinary unit tests.
/// The corpus holds the hand-written seeds plus every minimized crasher
/// a fuzzing run has produced; running them here — in every build, not
/// just fuzzer builds — turns each past finding into a permanent
/// regression test. A target either accepts the input or rejects it
/// with bgls::Error; crashes and oracle failures abort the test binary.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <vector>

#include "targets.h"

namespace bgls {
namespace {

namespace fs = std::filesystem;

std::vector<fs::path> corpus_files(const char* surface) {
  const fs::path dir = fs::path(BGLS_FUZZ_CORPUS_DIR) / surface;
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.is_regular_file()) files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::vector<std::uint8_t> read_bytes(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

void replay(const char* surface,
            void (*target)(const std::uint8_t*, std::size_t)) {
  const auto files = corpus_files(surface);
  ASSERT_FALSE(files.empty()) << "empty corpus: " << surface;
  for (const auto& path : files) {
    SCOPED_TRACE(path.string());
    const auto bytes = read_bytes(path);
    target(bytes.data(), bytes.size());
  }
}

TEST(FuzzRegressions, QasmCorpus) { replay("qasm", fuzz::one_qasm); }

TEST(FuzzRegressions, ProtocolCorpus) {
  replay("protocol", fuzz::one_protocol);
}

TEST(FuzzRegressions, JournalCorpus) { replay("journal", fuzz::one_journal); }

}  // namespace
}  // namespace bgls

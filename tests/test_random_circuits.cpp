// Tests for the workload generators used across the paper's evaluation.

#include "circuit/random.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace bgls {
namespace {

TEST(RandomCircuit, Deterministic) {
  Rng rng1(1), rng2(1);
  RandomCircuitOptions options;
  const Circuit a = generate_random_circuit(4, options, rng1);
  const Circuit b = generate_random_circuit(4, options, rng2);
  ASSERT_EQ(a.num_operations(), b.num_operations());
  const auto ops_a = a.all_operations();
  const auto ops_b = b.all_operations();
  for (std::size_t i = 0; i < ops_a.size(); ++i) {
    EXPECT_EQ(ops_a[i].to_string(), ops_b[i].to_string());
  }
}

TEST(RandomCircuit, RespectsGateDomain) {
  Rng rng(2);
  RandomCircuitOptions options;
  options.gate_domain = {Gate::H(), Gate::S()};
  options.num_moments = 20;
  options.op_density = 1.0;
  const Circuit c = generate_random_circuit(3, options, rng);
  for (const auto& op : c.all_operations()) {
    const auto kind = op.gate().kind();
    EXPECT_TRUE(kind == GateKind::kH || kind == GateKind::kS);
  }
}

TEST(RandomCircuit, DensityOneFillsMoments) {
  Rng rng(3);
  RandomCircuitOptions options;
  options.gate_domain = {Gate::H()};
  options.num_moments = 5;
  options.op_density = 1.0;
  const Circuit c = generate_random_circuit(4, options, rng);
  EXPECT_EQ(c.num_operations(), 20u);
}

TEST(RandomCircuit, DensityZeroIsEmpty) {
  Rng rng(4);
  RandomCircuitOptions options;
  options.op_density = 0.0;
  const Circuit c = generate_random_circuit(4, options, rng);
  EXPECT_EQ(c.num_operations(), 0u);
}

TEST(RandomCircuit, RejectsTooFewQubitsForDomain) {
  Rng rng(5);
  RandomCircuitOptions options;
  options.gate_domain = {Gate::CX()};
  EXPECT_THROW(generate_random_circuit(1, options, rng), ValueError);
}

TEST(RandomClifford, OnlyCliffordGates) {
  Rng rng(6);
  const Circuit c = random_clifford_circuit(5, 30, rng);
  for (const auto& op : c.all_operations()) {
    EXPECT_TRUE(op.gate().is_clifford()) << op.to_string();
  }
}

TEST(RandomCliffordT, ContainsRequestedTCount) {
  Rng rng(7);
  const Circuit c = random_clifford_t_circuit(4, 20, 5, rng);
  const auto t_count = c.count_operations([](const Operation& op) {
    return op.gate().kind() == GateKind::kT;
  });
  EXPECT_EQ(t_count, 5u);
}

TEST(Ghz, LinearStructure) {
  const Circuit c = ghz_circuit(4);
  EXPECT_EQ(c.num_operations(), 4u);  // H + 3 CNOTs
  EXPECT_EQ(c.num_qubits(), 4);
}

TEST(Ghz, SingleQubitIsJustH) {
  const Circuit c = ghz_circuit(1);
  EXPECT_EQ(c.num_operations(), 1u);
}

TEST(RandomGhz, EntanglesEveryQubit) {
  Rng rng(8);
  for (int n : {2, 5, 12}) {
    const Circuit c = random_ghz_circuit(n, rng);
    // H + (n-1) CNOTs and every qubit touched.
    EXPECT_EQ(c.num_operations(), static_cast<std::size_t>(n));
    EXPECT_EQ(static_cast<int>(c.qubits().size()), n);
  }
}

TEST(RandomGhz, CnotSourcesAreAlreadyEntangled) {
  Rng rng(9);
  const Circuit c = random_ghz_circuit(8, rng);
  std::set<Qubit> entangled{0};
  for (const auto& op : c.all_operations()) {
    if (op.gate().kind() != GateKind::kCX) continue;
    EXPECT_TRUE(entangled.contains(op.qubits()[0]));
    entangled.insert(op.qubits()[1]);
  }
}

TEST(FixedCnot, ExactCnotBudget) {
  Rng rng(10);
  const Circuit c = random_fixed_cnot_circuit(10, 8, 3, rng);
  const auto cnots = c.count_operations([](const Operation& op) {
    return op.gate().kind() == GateKind::kCX;
  });
  EXPECT_EQ(cnots, 3u);
}

TEST(Replacement, TGatesReplacedByS) {
  Rng rng(11);
  const Circuit c = random_clifford_t_circuit(4, 10, 6, rng);
  const Circuit replaced = with_t_gates_replaced(c, Gate::S());
  EXPECT_EQ(replaced.count_operations([](const Operation& op) {
              return op.gate().kind() == GateKind::kT;
            }),
            0u);
  EXPECT_EQ(replaced.num_operations(), c.num_operations());
}

TEST(Replacement, RandomTSubstitutionCount) {
  Rng rng(12);
  const Circuit c = random_clifford_circuit(5, 30, rng);
  const Circuit subbed = with_random_t_substitutions(c, 4, rng);
  EXPECT_EQ(subbed.count_operations([](const Operation& op) {
              return op.gate().kind() == GateKind::kT;
            }),
            4u);
  EXPECT_EQ(subbed.num_operations(), c.num_operations());
}

TEST(Replacement, RejectsImpossibleSubstitutionCount) {
  Rng rng(13);
  Circuit tiny{h(0)};
  EXPECT_THROW(with_random_t_substitutions(tiny, 5, rng), ValueError);
}

}  // namespace
}  // namespace bgls

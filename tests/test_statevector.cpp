// Statevector backend tests: every gate kernel against brute-force
// matrix embeddings, projection, channels, sampling.

#include "statevector/state.h"

#include <gtest/gtest.h>

#include <cmath>

#include "circuit/random.h"
#include "test_helpers.h"
#include "util/error.h"

namespace bgls {
namespace {

constexpr double kInvSqrt2 = 0.70710678118654752440;

StateVectorState random_state(int n, Rng& rng) {
  StateVectorState state(n);
  // Scramble with a few layers of random gates.
  RandomCircuitOptions options;
  options.num_moments = 6;
  options.op_density = 0.9;
  const Circuit c = generate_random_circuit(n, options, rng);
  for (const auto& op : c.all_operations()) state.apply(op);
  return state;
}

TEST(StateVector, InitialState) {
  StateVectorState state(3);
  EXPECT_DOUBLE_EQ(state.probability(from_string("000")), 1.0);
  EXPECT_DOUBLE_EQ(state.probability(from_string("100")), 0.0);
  EXPECT_EQ(state.dimension(), 8u);
}

TEST(StateVector, NonZeroInitialState) {
  StateVectorState state(3, from_string("101"));
  EXPECT_DOUBLE_EQ(state.probability(from_string("101")), 1.0);
}

TEST(StateVector, HadamardCreatesSuperposition) {
  StateVectorState state(1);
  state.apply(h(0));
  EXPECT_NEAR(state.probability(0), 0.5, 1e-12);
  EXPECT_NEAR(state.probability(1), 0.5, 1e-12);
  EXPECT_NEAR(state.amplitude(0).real(), kInvSqrt2, 1e-12);
}

TEST(StateVector, GhzState) {
  StateVectorState state(3);
  for (const auto& op : ghz_circuit(3).all_operations()) state.apply(op);
  EXPECT_NEAR(state.probability(from_string("000")), 0.5, 1e-12);
  EXPECT_NEAR(state.probability(from_string("111")), 0.5, 1e-12);
  EXPECT_NEAR(state.probability(from_string("100")), 0.0, 1e-12);
}

// Every gate kind applied at every qubit placement must match the
// brute-force embedded matrix.
class StateVectorGateKernels : public ::testing::TestWithParam<int> {};

TEST_P(StateVectorGateKernels, MatchBruteForceEmbedding) {
  const int seed = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed));
  const int n = 4;

  const std::vector<Operation> ops{
      h(seed % n),
      x((seed + 1) % n),
      y((seed + 2) % n),
      z((seed + 3) % n),
      s(seed % n),
      t((seed + 1) % n),
      Operation(Gate::SqrtX(), {(seed + 2) % n}),
      rx(0.37 * seed + 0.1, seed % n),
      ry(1.1 * seed + 0.2, (seed + 1) % n),
      rz(-0.9 * seed - 0.3, (seed + 2) % n),
      Operation(Gate::Phase(0.77), {(seed + 3) % n}),
      cnot(seed % n, (seed + 1) % n),
      cz((seed + 1) % n, (seed + 3) % n),
      swap(seed % n, (seed + 2) % n),
      Operation(Gate::ISwap(), {(seed + 1) % n, (seed + 2) % n}),
      Operation(Gate::CPhase(0.51), {(seed + 3) % n, seed % n}),
      zz(0.63, seed % n, (seed + 3) % n),
      ccx(seed % n, (seed + 1) % n, (seed + 2) % n),
      Operation(Gate::CCZ(), {(seed + 1) % n, (seed + 2) % n, (seed + 3) % n}),
      Operation(Gate::CSwap(), {seed % n, (seed + 1) % n, (seed + 3) % n}),
  };

  for (const auto& op : ops) {
    StateVectorState state = random_state(n, rng);
    std::vector<Complex> reference(state.amplitudes().begin(),
                                   state.amplitudes().end());
    reference = testing::embed_operation(op, n).apply(reference);
    state.apply(op);
    for (std::size_t i = 0; i < reference.size(); ++i) {
      EXPECT_NEAR(std::abs(state.amplitudes()[i] - reference[i]), 0.0, 1e-10)
          << op.to_string() << " amplitude " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Placements, StateVectorGateKernels,
                         ::testing::Range(0, 8));

class StateVectorRandomCircuits : public ::testing::TestWithParam<int> {};

TEST_P(StateVectorRandomCircuits, MatchesBruteForceEvolution) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const int n = 5;
  RandomCircuitOptions options;
  options.num_moments = 12;
  options.op_density = 0.8;
  const Circuit circuit = generate_random_circuit(n, options, rng);

  StateVectorState state(n);
  Rng apply_rng(1);
  evolve(circuit, state, apply_rng);

  const auto reference = testing::ideal_statevector(circuit, n);
  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_NEAR(std::abs(state.amplitudes()[i] - reference[i]), 0.0, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StateVectorRandomCircuits,
                         ::testing::Range(0, 10));

TEST(StateVector, ProbabilitiesSumToOne) {
  Rng rng(5);
  const StateVectorState state = random_state(5, rng);
  double total = 0.0;
  for (double p : state.probabilities()) total += p;
  EXPECT_NEAR(total, 1.0, 1e-10);
}

TEST(StateVector, ProjectGhzCollapses) {
  StateVectorState state(2);
  for (const auto& op : ghz_circuit(2).all_operations()) state.apply(op);
  const std::vector<Qubit> q0{0};
  state.project(q0, from_string("00"));
  EXPECT_NEAR(state.probability(from_string("00")), 1.0, 1e-12);
  EXPECT_NEAR(state.probability(from_string("11")), 0.0, 1e-12);
}

TEST(StateVector, ProjectZeroProbabilityThrows) {
  StateVectorState state(1);  // |0⟩
  const std::vector<Qubit> q0{0};
  EXPECT_THROW(state.project(q0, from_string("1")), ValueError);
}

TEST(StateVector, ProjectMultipleQubits) {
  StateVectorState state(3);
  for (const auto& op : ghz_circuit(3).all_operations()) state.apply(op);
  const std::vector<Qubit> qs{0, 2};
  state.project(qs, from_string("111"));
  EXPECT_NEAR(state.probability(from_string("111")), 1.0, 1e-12);
}

TEST(StateVector, MarginalOfGhz) {
  StateVectorState state(4);
  for (const auto& op : ghz_circuit(4).all_operations()) state.apply(op);
  for (Qubit q = 0; q < 4; ++q) {
    EXPECT_NEAR(state.marginal_one(q), 0.5, 1e-12);
  }
}

TEST(StateVector, SampleMatchesDistribution) {
  StateVectorState state(2);
  state.apply(rx(1.0, 0));
  state.apply(ry(0.7, 1));
  Rng rng(7);
  Counts counts;
  const int reps = 50000;
  for (int i = 0; i < reps; ++i) ++counts[state.sample(rng)];
  for (std::size_t b = 0; b < 4; ++b) {
    const double expected = state.probability(b) * reps;
    const auto it = counts.find(b);
    const double observed =
        it == counts.end() ? 0.0 : static_cast<double>(it->second);
    EXPECT_NEAR(observed, expected, 5.0 * std::sqrt(expected + 1.0));
  }
}

TEST(StateVector, SampleNMatchesSingleDraws) {
  Rng rng(13);
  const StateVectorState state = random_state(4, rng);
  // Same seed → sample_n's batched inverse-CDF draws must equal a
  // sequence of single draws (one uniform consumed per draw).
  Rng rng_batched(21), rng_single(21);
  const auto batched = state.sample_n(500, rng_batched);
  for (const Bitstring expected : batched) {
    EXPECT_EQ(state.sample(rng_single), expected);
  }
}

TEST(StateVector, SampleNMatchesDistribution) {
  StateVectorState state(2);
  state.apply(rx(1.0, 0));
  state.apply(ry(0.7, 1));
  Rng rng(17);
  const std::uint64_t reps = 50000;
  Counts counts;
  for (const Bitstring bits : state.sample_n(reps, rng)) ++counts[bits];
  for (std::size_t b = 0; b < 4; ++b) {
    const double expected =
        state.probability(b) * static_cast<double>(reps);
    const auto it = counts.find(b);
    const double observed =
        it == counts.end() ? 0.0 : static_cast<double>(it->second);
    EXPECT_NEAR(observed, expected, 5.0 * std::sqrt(expected + 1.0));
  }
}

TEST(StateVector, DeterministicChannelFlips) {
  StateVectorState state(1);
  Rng rng(1);
  apply_op(Operation(Gate::Channel(bit_flip(1.0)), {0}), state, rng);
  EXPECT_NEAR(state.probability(1), 1.0, 1e-12);
}

TEST(StateVector, ChannelTrajectoriesPreserveNorm) {
  Rng rng(3);
  StateVectorState state = random_state(3, rng);
  for (int i = 0; i < 10; ++i) {
    apply_op(Operation(Gate::Channel(depolarize(0.3)), {i % 3}), state, rng);
    EXPECT_NEAR(state.norm_squared(), 1.0, 1e-9);
  }
}

TEST(StateVector, AmplitudeDampingDrivesToZeroState) {
  StateVectorState state(1);
  state.apply(x(0));  // |1⟩
  Rng rng(11);
  for (int i = 0; i < 60; ++i) {
    apply_op(Operation(Gate::Channel(amplitude_damp(0.5)), {0}), state, rng);
  }
  // After many damping steps the excited population is (almost surely) gone.
  EXPECT_GT(state.probability(0), 0.999);
}

TEST(StateVector, ApplyRejectsMeasurement) {
  StateVectorState state(2);
  EXPECT_THROW(state.apply(measure({0, 1}, "z")), ValueError);
}

TEST(StateVector, ApplyRejectsOutOfRangeQubit) {
  StateVectorState state(2);
  EXPECT_THROW(state.apply(h(5)), ValueError);
}

TEST(StateVector, RejectsHugeRegister) {
  EXPECT_THROW(StateVectorState(31), ValueError);
  EXPECT_THROW(StateVectorState(0), ValueError);
}

TEST(StateVector, EvolveSkipsMeasurements) {
  Circuit c{h(0), measure({0}, "m"), h(0)};
  StateVectorState state(1);
  Rng rng(1);
  evolve(c, state, rng);
  // H then H = identity: back to |0⟩.
  EXPECT_NEAR(state.probability(0), 1.0, 1e-12);
}

TEST(StateVector, ComputeProbabilityFreeFunction) {
  StateVectorState state(2);
  state.apply(h(0));
  EXPECT_NEAR(compute_probability(state, from_string("10")), 0.5, 1e-12);
}

}  // namespace
}  // namespace bgls

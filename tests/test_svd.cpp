// Property tests for the one-sided Jacobi complex SVD.

#include "linalg/svd.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace bgls {
namespace {

Matrix random_matrix(std::size_t rows, std::size_t cols, Rng& rng) {
  Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      m(r, c) = Complex{rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
    }
  }
  return m;
}

Matrix reconstruct(const SvdResult& f) {
  Matrix sigma(f.singular_values.size(), f.singular_values.size());
  for (std::size_t i = 0; i < f.singular_values.size(); ++i) {
    sigma(i, i) = f.singular_values[i];
  }
  return f.u * sigma * f.vh;
}

void expect_valid_svd(const Matrix& a, const SvdResult& f, double tol = 1e-9) {
  // Reconstruction.
  EXPECT_LE(reconstruct(f).max_abs_diff(a), tol);
  // Orthonormal columns of U and rows of Vh.
  EXPECT_TRUE((f.u.adjoint() * f.u)
                  .approx_equal(Matrix::identity(f.u.cols()), tol));
  EXPECT_TRUE((f.vh * f.vh.adjoint())
                  .approx_equal(Matrix::identity(f.vh.rows()), tol));
  // Non-negative, descending singular values.
  for (std::size_t i = 0; i < f.singular_values.size(); ++i) {
    EXPECT_GE(f.singular_values[i], 0.0);
    if (i > 0) {
      EXPECT_LE(f.singular_values[i], f.singular_values[i - 1] + tol);
    }
  }
}

class SvdRandomShapes
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(SvdRandomShapes, ReconstructsAndIsOrthonormal) {
  const auto [rows, cols, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed));
  const Matrix a = random_matrix(static_cast<std::size_t>(rows),
                                 static_cast<std::size_t>(cols), rng);
  expect_valid_svd(a, svd(a));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SvdRandomShapes,
    ::testing::Values(std::tuple{1, 1, 1}, std::tuple{2, 2, 2},
                      std::tuple{4, 2, 3}, std::tuple{2, 4, 4},
                      std::tuple{8, 8, 5}, std::tuple{16, 4, 6},
                      std::tuple{4, 16, 7}, std::tuple{32, 32, 8},
                      std::tuple{3, 7, 9}, std::tuple{7, 3, 10}));

TEST(Svd, DiagonalMatrixGivesItsEntries) {
  Matrix a(3, 3);
  a(0, 0) = 1.0;
  a(1, 1) = 5.0;
  a(2, 2) = 3.0;
  const auto f = svd(a);
  EXPECT_NEAR(f.singular_values[0], 5.0, 1e-12);
  EXPECT_NEAR(f.singular_values[1], 3.0, 1e-12);
  EXPECT_NEAR(f.singular_values[2], 1.0, 1e-12);
}

TEST(Svd, RankDeficientMatrix) {
  // Two identical columns -> rank 1.
  Matrix a(3, 2);
  for (std::size_t r = 0; r < 3; ++r) {
    a(r, 0) = static_cast<double>(r + 1);
    a(r, 1) = static_cast<double>(r + 1);
  }
  const auto f = svd(a);
  EXPECT_NEAR(f.singular_values[1], 0.0, 1e-9);
  EXPECT_LE(reconstruct(f).max_abs_diff(a), 1e-9);
}

TEST(Svd, UnitaryInputHasUnitSingularValues) {
  const double s = 1.0 / std::sqrt(2.0);
  Matrix h(2, 2, {s, s, s, -s});
  const auto f = svd(h);
  EXPECT_NEAR(f.singular_values[0], 1.0, 1e-12);
  EXPECT_NEAR(f.singular_values[1], 1.0, 1e-12);
}

TEST(Svd, SingularValuesMatchFrobeniusNorm) {
  Rng rng(99);
  const Matrix a = random_matrix(6, 4, rng);
  const auto f = svd(a);
  double ss = 0.0;
  for (double sv : f.singular_values) ss += sv * sv;
  EXPECT_NEAR(std::sqrt(ss), a.frobenius_norm(), 1e-9);
}

TEST(TruncatedRank, KeepsEverythingByDefault) {
  const std::vector<double> values{3.0, 2.0, 1.0};
  EXPECT_EQ(truncated_rank(values, 0, 0.0), 3u);
}

TEST(TruncatedRank, RespectsMaxKeep) {
  const std::vector<double> values{3.0, 2.0, 1.0};
  EXPECT_EQ(truncated_rank(values, 2, 0.0), 2u);
}

TEST(TruncatedRank, AppliesRelativeCutoff) {
  const std::vector<double> values{1.0, 0.5, 1e-12};
  EXPECT_EQ(truncated_rank(values, 0, 1e-8), 2u);
}

TEST(TruncatedRank, AlwaysKeepsOnePositive) {
  const std::vector<double> values{1.0, 0.9};
  EXPECT_GE(truncated_rank(values, 1, 0.99), 1u);
}

}  // namespace
}  // namespace bgls

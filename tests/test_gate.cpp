// Tests for the gate zoo: unitaries, flags, parameters.

#include "circuit/gate.h"

#include "circuit/circuit.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <thread>
#include <vector>

#include "util/error.h"

namespace bgls {
namespace {

using std::numbers::pi;
const Complex kI{0.0, 1.0};

TEST(Gate, AllNamedUnitariesAreUnitary) {
  const std::vector<Gate> gates{
      Gate::I(),      Gate::X(),    Gate::Y(),     Gate::Z(),
      Gate::H(),      Gate::S(),    Gate::Sdg(),   Gate::T(),
      Gate::Tdg(),    Gate::SqrtX(), Gate::Rx(0.3), Gate::Ry(1.2),
      Gate::Rz(-0.7), Gate::Phase(2.1), Gate::CX(), Gate::CZ(),
      Gate::Swap(),   Gate::ISwap(), Gate::CPhase(0.4), Gate::ZZ(0.9),
      Gate::CCX(),    Gate::CCZ(),  Gate::CSwap()};
  for (const auto& gate : gates) {
    EXPECT_TRUE(gate.unitary().is_unitary(1e-9)) << gate.name();
    EXPECT_EQ(gate.unitary().rows(), std::size_t{1} << gate.arity())
        << gate.name();
  }
}

TEST(Gate, SquareRelations) {
  EXPECT_TRUE((Gate::S().unitary() * Gate::S().unitary())
                  .approx_equal(Gate::Z().unitary()));
  EXPECT_TRUE((Gate::T().unitary() * Gate::T().unitary())
                  .approx_equal(Gate::S().unitary()));
  EXPECT_TRUE((Gate::SqrtX().unitary() * Gate::SqrtX().unitary())
                  .approx_equal(Gate::X().unitary()));
  EXPECT_TRUE((Gate::H().unitary() * Gate::H().unitary())
                  .approx_equal(Matrix::identity(2)));
}

TEST(Gate, InversePairs) {
  EXPECT_TRUE((Gate::S().unitary() * Gate::Sdg().unitary())
                  .approx_equal(Matrix::identity(2)));
  EXPECT_TRUE((Gate::T().unitary() * Gate::Tdg().unitary())
                  .approx_equal(Matrix::identity(2)));
}

TEST(Gate, HadamardConjugatesXAndZ) {
  const Matrix h = Gate::H().unitary();
  EXPECT_TRUE((h * Gate::X().unitary() * h).approx_equal(Gate::Z().unitary()));
  EXPECT_TRUE((h * Gate::Z().unitary() * h).approx_equal(Gate::X().unitary()));
}

TEST(Gate, CxMapsOneZeroToOneOne) {
  const Matrix cx = Gate::CX().unitary();
  // |10⟩ (control=1, target=0) is index 2; expect it to map to |11⟩ = 3.
  EXPECT_EQ(cx(3, 2), (Complex{1, 0}));
  EXPECT_EQ(cx(2, 2), (Complex{0, 0}));
}

TEST(Gate, RzMatchesDefinition) {
  const double theta = 0.83;
  const Matrix rz = Gate::Rz(theta).unitary();
  EXPECT_NEAR(std::abs(rz(0, 0) - std::exp(-kI * (theta / 2.0))), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(rz(1, 1) - std::exp(kI * (theta / 2.0))), 0.0, 1e-12);
}

TEST(Gate, RzPiOverFourIsTUpToGlobalPhase) {
  const Matrix rz = Gate::Rz(pi / 4.0).unitary();
  const Matrix t = Gate::T().unitary();
  // T = e^{i pi/8} Rz(pi/4).
  const Matrix scaled = rz * std::exp(kI * (pi / 8.0));
  EXPECT_TRUE(scaled.approx_equal(t, 1e-12));
}

TEST(Gate, ZzDiagonal) {
  const Matrix zz = Gate::ZZ(0.5).unitary();
  EXPECT_NEAR(std::abs(zz(0, 0) - std::exp(-kI * 0.25)), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(zz(1, 1) - std::exp(kI * 0.25)), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(zz(3, 3) - std::exp(-kI * 0.25)), 0.0, 1e-12);
}

TEST(Gate, CliffordFlags) {
  EXPECT_TRUE(Gate::H().is_clifford());
  EXPECT_TRUE(Gate::S().is_clifford());
  EXPECT_TRUE(Gate::CX().is_clifford());
  EXPECT_TRUE(Gate::Swap().is_clifford());
  EXPECT_FALSE(Gate::T().is_clifford());
  EXPECT_FALSE(Gate::Rz(pi / 2.0).is_clifford());  // dynamic angles excluded
  EXPECT_FALSE(Gate::CCX().is_clifford());
}

TEST(Gate, DiagonalFlags) {
  EXPECT_TRUE(Gate::Z().is_diagonal());
  EXPECT_TRUE(Gate::T().is_diagonal());
  EXPECT_TRUE(Gate::CZ().is_diagonal());
  EXPECT_TRUE(Gate::ZZ(0.1).is_diagonal());
  EXPECT_FALSE(Gate::X().is_diagonal());
  EXPECT_FALSE(Gate::H().is_diagonal());
}

TEST(Gate, MeasurementGate) {
  const Gate m = Gate::Measure("result", 3);
  EXPECT_TRUE(m.is_measurement());
  EXPECT_FALSE(m.is_unitary());
  EXPECT_EQ(m.arity(), 3);
  EXPECT_EQ(m.measurement_key(), "result");
  EXPECT_THROW(m.unitary(), ValueError);
}

TEST(Gate, ChannelGate) {
  const Gate ch = Gate::Channel(depolarize(0.1));
  EXPECT_TRUE(ch.is_channel());
  EXPECT_FALSE(ch.is_unitary());
  EXPECT_EQ(ch.arity(), 1);
  EXPECT_EQ(ch.channel().operators().size(), 4u);
  EXPECT_THROW(ch.unitary(), ValueError);
}

TEST(Gate, SymbolicParameterResolution) {
  const Gate g = Gate::Rz(Symbol{"gamma"});
  EXPECT_TRUE(g.is_parameterized());
  EXPECT_THROW(g.unitary(), ValueError);
  ParamResolver resolver{{"gamma", 0.5}};
  const Gate resolved = g.resolved(resolver);
  EXPECT_FALSE(resolved.is_parameterized());
  EXPECT_TRUE(resolved.unitary().approx_equal(Gate::Rz(0.5).unitary()));
}

TEST(Gate, ResolveMissingSymbolThrows) {
  const Gate g = Gate::Rx(Symbol{"beta"});
  ParamResolver empty;
  EXPECT_THROW(g.resolved(empty), ValueError);
}

TEST(Gate, CustomMatrixGateValidation) {
  EXPECT_THROW(Gate::SingleQubitMatrix(Matrix(2, 2, {1, 0, 0, 2})),
               ValueError);
  EXPECT_THROW(Gate::SingleQubitMatrix(Matrix::identity(4)), ValueError);
  const Gate ok = Gate::SingleQubitMatrix(Gate::H().unitary(), "fused");
  EXPECT_EQ(ok.name(), "fused");
  EXPECT_TRUE(ok.unitary().approx_equal(Gate::H().unitary()));
}

TEST(Gate, Names) {
  EXPECT_EQ(Gate::H().name(), "H");
  EXPECT_EQ(Gate::Rz(0.25).name(), "Rz(0.25)");
  EXPECT_EQ(Gate::Rz(Symbol{"g"}).name(), "Rz(g)");
  EXPECT_EQ(Gate::Measure("z", 2).name(), "M('z')");
}

// --- compiled_unitary(): the memoized matrix + kernel classification ----

TEST(GateCompiledUnitary, MatchesUnitaryAndClassification) {
  for (const Gate& gate : {Gate::H(), Gate::T(), Gate::CX(), Gate::CZ(),
                           Gate::Rz(0.7), Gate::CCX()}) {
    const auto compiled = gate.compiled_unitary();
    ASSERT_NE(compiled, nullptr) << gate.name();
    EXPECT_LT(compiled->matrix.max_abs_diff(gate.unitary()), 1e-15)
        << gate.name();
    EXPECT_EQ(compiled->classification.cls,
              kernels::classify(gate.unitary()).cls)
        << gate.name();
  }
}

TEST(GateCompiledUnitary, CopiesShareOneMemoizedValue) {
  const Gate gate = Gate::T();
  const Gate copy = gate;  // copied BEFORE the first compile
  const auto first = gate.compiled_unitary();
  // Same pointer from the original, its copy, and later calls: the
  // compile ran once and is shared.
  EXPECT_EQ(copy.compiled_unitary().get(), first.get());
  EXPECT_EQ(gate.compiled_unitary().get(), first.get());
  const Gate late_copy = gate;
  EXPECT_EQ(late_copy.compiled_unitary().get(), first.get());
}

TEST(GateCompiledUnitary, OperationCopiesThroughCircuitShareTheCache) {
  // The hot path: all_operations() copies Operations every run; those
  // copies must hit the same cache slot, not re-classify.
  Circuit circuit{h(0)};
  const auto first =
      circuit.all_operations().front().gate().compiled_unitary();
  const auto second =
      circuit.all_operations().front().gate().compiled_unitary();
  EXPECT_EQ(first.get(), second.get());
}

TEST(GateCompiledUnitary, SymbolicGatesThrowAndResolveFresh) {
  const Gate symbolic = Gate::Rz(Symbol{"g"});
  EXPECT_THROW((void)symbolic.compiled_unitary(), ValueError);
  // Throwing does not poison the slot: resolving yields a working gate.
  const Gate quarter = symbolic.resolved(ParamResolver{{"g", pi / 4}});
  const Gate half = symbolic.resolved(ParamResolver{{"g", pi / 2}});
  EXPECT_LT(quarter.compiled_unitary()->matrix.max_abs_diff(
                Gate::Rz(pi / 4).unitary()),
            1e-15);
  EXPECT_LT(
      half.compiled_unitary()->matrix.max_abs_diff(Gate::Rz(pi / 2).unitary()),
      1e-15);
  // Mutation invalidates: the two resolutions hold distinct caches.
  EXPECT_NE(quarter.compiled_unitary().get(), half.compiled_unitary().get());
}

TEST(GateCompiledUnitary, NonUnitaryGatesThrowLikeUnitary) {
  EXPECT_THROW((void)Gate::Measure("m", 1).compiled_unitary(), ValueError);
}

TEST(GateCompiledUnitary, ConcurrentFirstAccessYieldsOneValue) {
  const Gate gate = Gate::CZ();
  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<const kernels::CompiledMatrix>> seen(kThreads);
  {
    std::vector<std::jthread> threads;
    threads.reserve(kThreads);
    for (int i = 0; i < kThreads; ++i) {
      threads.emplace_back(
          [&, i] { seen[static_cast<std::size_t>(i)] = gate.compiled_unitary(); });
    }
  }
  for (int i = 1; i < kThreads; ++i) {
    EXPECT_EQ(seen[static_cast<std::size_t>(i)].get(), seen[0].get());
  }
}

}  // namespace
}  // namespace bgls

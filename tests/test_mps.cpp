// MPS backend tests: exactness at unlimited bond dimension against the
// statevector, amplitude slicing, truncation behavior, entanglement
// bookkeeping, and sampler integration.

#include "mps/state.h"

#include <gtest/gtest.h>

#include <cmath>

#include "circuit/random.h"
#include "core/simulator.h"
#include "statevector/state.h"
#include "test_helpers.h"
#include "util/error.h"

namespace bgls {
namespace {

void expect_matches_statevector(const Circuit& circuit, int n,
                                double tol = 1e-8) {
  MPSState mps(n);
  for (const auto& op : circuit.all_operations()) {
    if (!op.gate().is_measurement()) mps.apply(op);
  }
  const auto reference = testing::ideal_statevector(circuit, n);
  for (std::size_t b = 0; b < reference.size(); ++b) {
    EXPECT_NEAR(std::abs(mps.amplitude(b) - reference[b]), 0.0, tol)
        << "amplitude " << to_string(b, n);
  }
}

TEST(Mps, InitialProductState) {
  MPSState mps(3, {}, from_string("101"));
  EXPECT_NEAR(mps.probability(from_string("101")), 1.0, 1e-12);
  EXPECT_NEAR(mps.probability(from_string("000")), 0.0, 1e-12);
  EXPECT_EQ(mps.max_bond_dimension(), 1u);
  EXPECT_NEAR(mps.norm(), 1.0, 1e-12);
}

TEST(Mps, SingleQubitGate) {
  MPSState mps(2);
  mps.apply(h(0));
  EXPECT_NEAR(mps.probability(from_string("00")), 0.5, 1e-12);
  EXPECT_NEAR(mps.probability(from_string("10")), 0.5, 1e-12);
}

TEST(Mps, BellPairCreatesBond) {
  MPSState mps(2);
  mps.apply(h(0));
  mps.apply(cnot(0, 1));
  EXPECT_EQ(mps.max_bond_dimension(), 2u);
  EXPECT_NEAR(mps.probability(from_string("00")), 0.5, 1e-10);
  EXPECT_NEAR(mps.probability(from_string("11")), 0.5, 1e-10);
  EXPECT_NEAR(mps.probability(from_string("01")), 0.0, 1e-10);
}

TEST(Mps, GhzAcrossNonAdjacentQubits) {
  // Gates between arbitrary (non-neighbor) qubits create direct bonds.
  MPSState mps(4);
  mps.apply(h(0));
  mps.apply(cnot(0, 3));
  mps.apply(cnot(3, 1));
  mps.apply(cnot(1, 2));
  EXPECT_NEAR(mps.probability(from_string("0000")), 0.5, 1e-10);
  EXPECT_NEAR(mps.probability(from_string("1111")), 0.5, 1e-10);
}

class MpsRandomCircuits : public ::testing::TestWithParam<int> {};

TEST_P(MpsRandomCircuits, ExactAtUnlimitedBondDimension) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 1009 + 5);
  const int n = 5;
  RandomCircuitOptions options;
  options.num_moments = 10;
  options.op_density = 0.8;
  options.gate_domain = {Gate::H(),  Gate::T(), Gate::X(),
                         Gate::Rz(0.37), Gate::Ry(0.81),
                         Gate::CX(), Gate::CZ(), Gate::ISwap()};
  const Circuit circuit = generate_random_circuit(n, options, rng);
  expect_matches_statevector(circuit, n);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MpsRandomCircuits, ::testing::Range(0, 10));

TEST(Mps, RepeatedGatesOnSamePairReuseBond) {
  MPSState mps(2);
  Rng rng(3);
  for (int i = 0; i < 10; ++i) {
    mps.apply(Operation(Gate::ISwap(), {0, 1}));
    mps.apply(rx(0.3, 0));
    mps.apply(cnot(0, 1));
  }
  // Two qubits can never exceed bond dimension 2.
  EXPECT_LE(mps.max_bond_dimension(), 2u);
  EXPECT_NEAR(mps.norm(), 1.0, 1e-9);
}

TEST(Mps, ToStatevectorMatchesAmplitudes) {
  Rng rng(7);
  const Circuit circuit = random_clifford_circuit(4, 12, rng);
  MPSState mps(4);
  for (const auto& op : circuit.all_operations()) mps.apply(op);
  const auto psi = mps.to_statevector();
  for (Bitstring b = 0; b < 16; ++b) {
    EXPECT_NEAR(std::abs(psi[b] - mps.amplitude(b)), 0.0, 1e-10);
  }
}

TEST(Mps, NormStaysOneUnderUnitaries) {
  Rng rng(11);
  RandomCircuitOptions options;
  options.num_moments = 15;
  const Circuit circuit = generate_random_circuit(4, options, rng);
  MPSState mps(4);
  for (const auto& op : circuit.all_operations()) mps.apply(op);
  EXPECT_NEAR(mps.norm(), 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(mps.estimated_fidelity(), 1.0);
}

// A circuit whose {0,1}|{2,3} Schmidt rank is generically 4: two Bell
// pairs, then two entangling rounds across the cut with generic
// rotations in between.
Circuit schmidt_rank_four_circuit() {
  Circuit circuit{h(0), cnot(0, 1), h(2), cnot(2, 3)};
  circuit.append(ry(0.7, 1));
  circuit.append(ry(1.1, 2));
  circuit.append(cnot(1, 2));
  circuit.append(ry(0.4, 1));
  circuit.append(ry(-0.9, 2));
  circuit.append(Operation(Gate::ISwap(), {1, 2}));
  return circuit;
}

TEST(Mps, RankGrowsBeyondTwoAcrossBusyCut) {
  MPSState exact(4);
  for (const auto& op : schmidt_rank_four_circuit().all_operations()) {
    exact.apply(op);
  }
  EXPECT_GT(exact.max_bond_dimension(), 2u);
  EXPECT_DOUBLE_EQ(exact.estimated_fidelity(), 1.0);
}

TEST(Mps, TruncationCapsBondDimension) {
  MPSOptions capped;
  capped.max_bond_dim = 2;
  MPSState mps(4, capped);
  for (const auto& op : schmidt_rank_four_circuit().all_operations()) {
    mps.apply(op);
  }
  EXPECT_LE(mps.max_bond_dimension(), 2u);
  // Truncation really dropped weight...
  EXPECT_LT(mps.estimated_fidelity(), 1.0 - 1e-6);
  // ...but the state is still close to the exact one: the truncated
  // distribution overlaps the ideal substantially.
  const auto ideal =
      testing::ideal_distribution(schmidt_rank_four_circuit(), 4);
  mps.renormalize();
  Distribution truncated;
  for (Bitstring b = 0; b < 16; ++b) {
    const double p = mps.probability(b);
    if (p > 1e-15) truncated[b] = p;
  }
  EXPECT_GT(distribution_overlap(truncated, ideal), 0.3);
}

TEST(Mps, TruncationErrorSmallForLowEntanglement) {
  // A GHZ circuit needs only χ = 2, so a χ = 2 cap is lossless.
  MPSOptions capped;
  capped.max_bond_dim = 2;
  MPSState mps(5, capped);
  for (const auto& op : ghz_circuit(5).all_operations()) mps.apply(op);
  EXPECT_NEAR(mps.estimated_fidelity(), 1.0, 1e-12);
  EXPECT_NEAR(mps.probability(from_string("11111")), 0.5, 1e-9);
}

TEST(Mps, ProjectCollapsesGhz) {
  MPSState mps(3);
  for (const auto& op : ghz_circuit(3).all_operations()) mps.apply(op);
  const std::vector<Qubit> q0{0};
  mps.project(q0, from_string("100"));
  EXPECT_NEAR(mps.probability(from_string("111")), 1.0, 1e-9);
}

TEST(Mps, ProjectImpossibleOutcomeThrows) {
  MPSState mps(1);
  const std::vector<Qubit> q0{0};
  EXPECT_THROW(mps.project(q0, from_string("1")), ValueError);
}

TEST(Mps, RejectsThreeQubitGate) {
  MPSState mps(3);
  EXPECT_THROW(mps.apply(ccx(0, 1, 2)), UnsupportedOperationError);
}

TEST(Mps, RejectsMeasurementGate) {
  MPSState mps(2);
  EXPECT_THROW(mps.apply(measure({0}, "m")), ValueError);
}

TEST(Mps, EntanglementGrowsWithDepthOnRandomCircuits) {
  Rng rng(17);
  RandomCircuitOptions options;
  options.num_moments = 3;
  options.op_density = 0.9;
  const int n = 8;
  const Circuit shallow = generate_random_circuit(n, options, rng);
  options.num_moments = 20;
  const Circuit deep = generate_random_circuit(n, options, rng);

  MPSState mps_shallow(n);
  for (const auto& op : shallow.all_operations()) mps_shallow.apply(op);
  MPSState mps_deep(n);
  for (const auto& op : deep.all_operations()) mps_deep.apply(op);
  EXPECT_LE(mps_shallow.max_bond_dimension(), mps_deep.max_bond_dimension());
}

TEST(Mps, SamplerIntegrationMatchesIdeal) {
  Rng circuit_rng(19);
  RandomCircuitOptions options;
  options.num_moments = 8;
  const int n = 4;
  const Circuit circuit = generate_random_circuit(n, options, circuit_rng);
  Simulator<MPSState> sim{MPSState(n)};
  Rng rng(23);
  const Counts counts = sim.sample(circuit, 30000, rng);
  const auto ideal = testing::ideal_distribution(circuit, n);
  EXPECT_LT(total_variation_distance(normalize(counts), ideal), 0.02);
}

TEST(Mps, SamplerMidCircuitMeasurement) {
  Circuit circuit = ghz_circuit(2);
  circuit.append(measure({0}, "mid"));
  circuit.append(measure({1}, "end"));
  Simulator<MPSState> sim{MPSState(2)};
  Rng rng(29);
  const Result result = sim.run(circuit, 300, rng);
  for (std::size_t i = 0; i < 300; ++i) {
    EXPECT_EQ(result.values("mid")[i], result.values("end")[i]);
  }
}

TEST(Mps, SamplerChannelsMatchDensityMatrixIntuition) {
  // bit_flip(1.0) is deterministic: |0⟩ → |1⟩.
  Circuit circuit;
  circuit.append(Operation(Gate::Channel(bit_flip(1.0)), {0}));
  circuit.append(measure({0}, "m"));
  Simulator<MPSState> sim{MPSState(1)};
  Rng rng(31);
  const Result result = sim.run(circuit, 50, rng);
  EXPECT_EQ(result.histogram("m").at(1), 50u);
}

TEST(Mps, AmplitudeDampingOnMpsMatchesStateVectorSampler) {
  Circuit circuit{h(0), cnot(0, 1)};
  circuit.append(Operation(Gate::Channel(amplitude_damp(0.5)), {0}));

  Simulator<MPSState> mps_sim{MPSState(2)};
  Simulator<StateVectorState> sv_sim{StateVectorState(2)};
  Rng rng1(37), rng2(41);
  const auto mps_dist = normalize(mps_sim.sample(circuit, 20000, rng1));
  const auto sv_dist = normalize(sv_sim.sample(circuit, 20000, rng2));
  EXPECT_LT(total_variation_distance(mps_dist, sv_dist), 0.02);
}

TEST(Mps, LowEntanglementKeepsTensorsSmall) {
  // Wide circuit with only local 1q gates plus 3 CNOTs: total tensor
  // storage stays linear in width (the Fig. 7b regime).
  Rng rng(43);
  const int n = 24;
  const Circuit circuit = random_fixed_cnot_circuit(n, 6, 3, rng);
  MPSState mps(n);
  for (const auto& op : circuit.all_operations()) mps.apply(op);
  EXPECT_LE(mps.max_bond_dimension(), 2u);
  EXPECT_LE(mps.tensor_size_total(), static_cast<std::size_t>(8 * n));
}

}  // namespace
}  // namespace bgls

/// \file test_metrics.cpp
/// The telemetry subsystem (obs/): registry concurrency with exact
/// totals, histogram bucket boundaries, runtime enable/disable,
/// deterministic trace span IDs across thread counts, span nesting,
/// and the Prometheus/JSON exposition formats. The suite runs under
/// TSan in CI (counters and traces are hammered from many threads).

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/exposition.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/error.h"
#include "util/json_parser.h"

namespace bgls {
namespace {

using obs::MetricsRegistry;
using obs::SpanRecord;
using obs::Trace;
using obs::TraceSpan;

#if BGLS_TELEMETRY

TEST(MetricsRegistry, CounterConcurrentIncrementsAreExact) {
  MetricsRegistry registry;
  obs::Counter counter = registry.counter("t_ops_total", "ops");
  obs::Histogram histogram = registry.histogram("t_op_seconds", "op time");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&counter, &histogram] {
      for (int i = 0; i < kPerThread; ++i) {
        counter.add();
        histogram.observe(1e-5);
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  // Relaxed atomics lose no increments: the totals are exact, not
  // approximate.
  constexpr auto kExpected =
      static_cast<std::uint64_t>(kThreads) * kPerThread;
  EXPECT_EQ(counter.value(), kExpected);
  EXPECT_EQ(histogram.count(), kExpected);
  EXPECT_NEAR(histogram.sum(), kThreads * kPerThread * 1e-5, 1e-9);
}

TEST(MetricsRegistry, HandlesAreCachedPerName) {
  MetricsRegistry registry;
  obs::Counter a = registry.counter("t_total", "help");
  obs::Counter b = registry.counter("t_total", "help");
  a.add(2);
  b.add(3);
  EXPECT_EQ(a.value(), 5u);  // same cell behind both handles
  EXPECT_EQ(registry.snapshot().size(), 1u);
}

TEST(MetricsRegistry, GaugeSetAddSub) {
  MetricsRegistry registry;
  obs::Gauge gauge = registry.gauge("t_depth", "depth");
  gauge.set(10);
  gauge.add(5);
  gauge.sub(7);
  EXPECT_EQ(gauge.value(), 8);
  gauge.sub(9);
  EXPECT_EQ(gauge.value(), -1);  // gauges may go negative
}

TEST(MetricsRegistry, HistogramBucketBoundariesAreInclusive) {
  MetricsRegistry registry;
  const std::vector<double> bounds = {0.001, 0.01, 0.1};
  obs::Histogram histogram = registry.histogram("t_seconds", "t", bounds);
  histogram.observe(0.0005);  // below the first bound
  histogram.observe(0.001);   // exactly on a bound: le is inclusive
  histogram.observe(0.0011);  // just above
  histogram.observe(0.1);     // on the last bound
  histogram.observe(0.5);     // overflow (+Inf only)
  const obs::MetricsSnapshot snapshot = registry.snapshot();
  ASSERT_EQ(snapshot.size(), 1u);
  const obs::SeriesSnapshot& series = snapshot[0];
  ASSERT_EQ(series.bounds, bounds);
  ASSERT_EQ(series.bucket_counts.size(), bounds.size() + 1);  // + overflow
  EXPECT_EQ(series.bucket_counts[0], 2u);
  EXPECT_EQ(series.bucket_counts[1], 1u);
  EXPECT_EQ(series.bucket_counts[2], 1u);
  EXPECT_EQ(series.bucket_counts[3], 1u);
  EXPECT_EQ(series.count, 5u);
}

TEST(MetricsRegistry, KindAndBoundsMismatchThrow) {
  MetricsRegistry registry;
  (void)registry.counter("t_total", "help");
  EXPECT_THROW((void)registry.gauge("t_total", "help"), ValueError);
  (void)registry.histogram("t_seconds", "help", {0.1, 1.0});
  EXPECT_THROW((void)registry.histogram("t_seconds", "help", {0.5}),
               ValueError);
  EXPECT_THROW((void)registry.histogram("t_unsorted", "help", {1.0, 0.1}),
               ValueError);
}

TEST(MetricsRegistry, RuntimeDisableStopsRecording) {
  MetricsRegistry registry;
  obs::Counter counter = registry.counter("t_total", "help");
  counter.add();
  {
    obs::EnabledScope scope(false);
    counter.add(100);  // dropped
  }
  counter.add();
  EXPECT_EQ(counter.value(), 2u);
}

TEST(MetricsRegistry, ResetForTestingZeroesCells) {
  MetricsRegistry registry;
  obs::Counter counter = registry.counter("t_total", "help");
  obs::Histogram histogram = registry.histogram("t_seconds", "help", {1.0});
  counter.add(7);
  histogram.observe(0.5);
  registry.reset_for_testing();
  EXPECT_EQ(counter.value(), 0u);
  EXPECT_EQ(histogram.count(), 0u);
  EXPECT_EQ(histogram.sum(), 0.0);
}

TEST(Exposition, PrometheusTextGolden) {
  MetricsRegistry registry;
  obs::Counter done =
      registry.counter("app_jobs_total{state=\"done\"}", "Jobs by state");
  (void)registry.counter("app_jobs_total{state=\"failed\"}", "Jobs by state");
  obs::Gauge depth = registry.gauge("app_queue_depth", "Queued jobs");
  obs::Histogram wait =
      registry.histogram("app_wait_seconds", "Wait", {0.001, 0.01});
  done.add();
  depth.set(2);
  wait.observe(0.0005);
  wait.observe(0.005);
  wait.observe(5.0);
  const std::string expected =
      "# HELP app_jobs_total Jobs by state\n"
      "# TYPE app_jobs_total counter\n"
      "app_jobs_total{state=\"done\"} 1\n"
      "app_jobs_total{state=\"failed\"} 0\n"
      "# HELP app_queue_depth Queued jobs\n"
      "# TYPE app_queue_depth gauge\n"
      "app_queue_depth 2\n"
      "# HELP app_wait_seconds Wait\n"
      "# TYPE app_wait_seconds histogram\n"
      "app_wait_seconds_bucket{le=\"0.001\"} 1\n"
      "app_wait_seconds_bucket{le=\"0.01\"} 2\n"
      "app_wait_seconds_bucket{le=\"+Inf\"} 3\n"
      "app_wait_seconds_sum 5.0055\n"
      "app_wait_seconds_count 3\n";
  EXPECT_EQ(obs::to_prometheus(registry.snapshot()), expected);
}

TEST(Exposition, JsonDumpParses) {
  MetricsRegistry registry;
  registry.counter("t_total", "help").add(3);
  obs::Histogram histogram = registry.histogram("t_seconds", "help", {1.0});
  histogram.observe(0.5);
  std::ostringstream os;
  obs::write_metrics_json(os, registry.snapshot());
  const JsonValue doc = JsonValue::parse(os.str());
  EXPECT_TRUE(doc.bool_or("telemetry_compiled", false));
  const JsonValue* series = doc.find("series");
  ASSERT_NE(series, nullptr);
  ASSERT_EQ(series->items().size(), 2u);  // name-sorted: t_seconds, t_total
  EXPECT_EQ(series->items()[0].string_or("kind", ""), "histogram");
  EXPECT_EQ(series->items()[0].u64_or("count", 0), 1u);
  EXPECT_EQ(series->items()[1].string_or("kind", ""), "counter");
  EXPECT_EQ(series->items()[1].u64_or("value", 0), 3u);
}

/// Runs `spans` shard spans of trace 42 across `threads` workers and
/// returns the sorted records — identity must not depend on the split.
std::vector<SpanRecord> shard_spans(int threads, int spans) {
  Trace trace(42);
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&trace, t, threads, spans] {
      for (int i = t; i < spans; i += threads) {
        TraceSpan span(&trace, "shard", static_cast<std::uint64_t>(i));
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  return trace.spans();
}

TEST(TraceSpans, IdsDeterministicAcrossThreadCounts) {
  constexpr int kSpans = 8;
  const std::vector<SpanRecord> serial = shard_spans(1, kSpans);
  const std::vector<SpanRecord> parallel = shard_spans(8, kSpans);
  ASSERT_EQ(serial.size(), static_cast<std::size_t>(kSpans));
  ASSERT_EQ(parallel.size(), static_cast<std::size_t>(kSpans));
  for (int i = 0; i < kSpans; ++i) {
    // spans() sorts by (name, index, id), so position i is shard i.
    EXPECT_EQ(serial[i].name, "shard");
    EXPECT_EQ(serial[i].index, static_cast<std::uint64_t>(i));
    EXPECT_EQ(serial[i].id,
              Trace::span_id(42, "shard", static_cast<std::uint64_t>(i)));
    EXPECT_EQ(parallel[i].id, serial[i].id);
    EXPECT_EQ(parallel[i].parent, serial[i].parent);
  }
}

TEST(TraceSpans, NestingLinksParentOnSameThread) {
  Trace trace(7);
  {
    TraceSpan outer(&trace, "outer");
    EXPECT_EQ(outer.id(), Trace::span_id(7, "outer", 0));
    TraceSpan inner(&trace, "inner");
    EXPECT_EQ(inner.id(), Trace::span_id(7, "inner", 0));
  }
  const std::vector<SpanRecord> spans = trace.spans();  // inner, outer
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "inner");
  EXPECT_EQ(spans[0].parent, spans[1].id);
  EXPECT_EQ(spans[1].parent, 0u);  // the outer span is a root
  EXPECT_GE(spans[1].seconds, spans[0].seconds);
}

TEST(TraceSpans, SiblingSpansDoNotNest) {
  Trace trace(9);
  { TraceSpan first(&trace, "phase", 0); }
  { TraceSpan second(&trace, "phase", 1); }
  for (const SpanRecord& span : trace.spans()) {
    EXPECT_EQ(span.parent, 0u);
  }
}

TEST(TraceSpans, NullTraceAndDisabledAreInert) {
  TraceSpan null_span(nullptr, "x");  // must not crash
  EXPECT_EQ(null_span.id(), 0u);
  Trace trace(3);
  {
    obs::EnabledScope scope(false);
    TraceSpan span(&trace, "x");
    EXPECT_EQ(span.id(), 0u);
  }
  EXPECT_TRUE(trace.spans().empty());
}

TEST(TraceSpans, SpanIdNeverZero) {
  // 0 is reserved for "no span"; the hash remaps collisions onto 1.
  EXPECT_NE(Trace::span_id(0, "", 0), 0u);
  EXPECT_NE(Trace::span_id(42, "shard", 3), 0u);
}

#else  // telemetry compiled out

TEST(MetricsRegistry, CompiledOutHandlesAreInert) {
  MetricsRegistry registry;
  obs::Counter counter = registry.counter("t_total", "help");
  obs::Gauge gauge = registry.gauge("t_depth", "help");
  obs::Histogram histogram = registry.histogram("t_seconds", "help");
  counter.add(5);
  gauge.set(3);
  histogram.observe(0.1);
  EXPECT_EQ(counter.value(), 0u);
  EXPECT_EQ(gauge.value(), 0);
  EXPECT_EQ(histogram.count(), 0u);
  EXPECT_TRUE(registry.snapshot().empty());
  EXPECT_FALSE(obs::kTelemetryCompiled);
}

TEST(Exposition, CompiledOutEmitsMarker) {
  const std::string text = obs::to_prometheus(MetricsRegistry().snapshot());
  EXPECT_NE(text.find("telemetry compiled out"), std::string::npos);
  std::ostringstream os;
  obs::write_metrics_json(os, MetricsRegistry().snapshot());
  const JsonValue doc = JsonValue::parse(os.str());
  EXPECT_FALSE(doc.bool_or("telemetry_compiled", true));
}

TEST(TraceSpans, CompiledOutRecordsNothing) {
  Trace trace(5);
  {
    TraceSpan span(&trace, "x");
    EXPECT_EQ(span.id(), 0u);
  }
  EXPECT_TRUE(trace.spans().empty());
}

#endif  // BGLS_TELEMETRY

}  // namespace
}  // namespace bgls

OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
creg c[2];
x q[0];
measure q -> c;

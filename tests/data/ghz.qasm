OPENQASM 2.0;
include "qelib1.inc";
qreg q[4];
creg c[4];
h q[0];
cx q[0],q[1];
cx q[1],q[2];
cx q[2],q[3];
measure q -> c;

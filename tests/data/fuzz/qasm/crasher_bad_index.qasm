OPENQASM 2.0;
qreg q[2];
h q[1e300];
cx q[0.5],q[1];

OPENQASM 2.0;
qreg q[1e300];

// Aaronson–Gottesman tableau tests: cross-validated against the CH form
// and the statevector on random Clifford circuits, plus measurement
// semantics and BGLS-sampler integration.

#include "stabilizer/tableau.h"

#include <gtest/gtest.h>

#include "circuit/random.h"
#include "core/simulator.h"
#include "stabilizer/ch_form.h"
#include "test_helpers.h"
#include "util/error.h"

namespace bgls {
namespace {

TEST(Tableau, InitialState) {
  TableauState tab(3);
  EXPECT_DOUBLE_EQ(tab.probability(from_string("000")), 1.0);
  EXPECT_DOUBLE_EQ(tab.probability(from_string("100")), 0.0);
}

TEST(Tableau, NonZeroInitialState) {
  TableauState tab(3, from_string("101"));
  EXPECT_DOUBLE_EQ(tab.probability(from_string("101")), 1.0);
}

TEST(Tableau, PlusStateIsRandom) {
  TableauState tab(1);
  tab.apply_h(0);
  EXPECT_FALSE(tab.is_deterministic_z(0));
  EXPECT_DOUBLE_EQ(tab.probability(0), 0.5);
  EXPECT_DOUBLE_EQ(tab.probability(1), 0.5);
}

TEST(Tableau, GhzProbabilities) {
  TableauState tab(3);
  for (const auto& op : ghz_circuit(3).all_operations()) tab.apply(op);
  EXPECT_DOUBLE_EQ(tab.probability(from_string("000")), 0.5);
  EXPECT_DOUBLE_EQ(tab.probability(from_string("111")), 0.5);
  EXPECT_DOUBLE_EQ(tab.probability(from_string("010")), 0.0);
}

class TableauVsChForm : public ::testing::TestWithParam<int> {};

TEST_P(TableauVsChForm, ProbabilitiesAgreeOnRandomCliffordCircuits) {
  Rng circuit_rng(static_cast<std::uint64_t>(GetParam()) * 401 + 3);
  const int n = 5;
  const Circuit circuit = random_clifford_circuit(n, 30, circuit_rng);
  TableauState tab(n);
  CHState ch(n);
  for (const auto& op : circuit.all_operations()) {
    tab.apply(op);
    ch.apply(op);
  }
  for (Bitstring b = 0; b < (Bitstring{1} << n); ++b) {
    EXPECT_NEAR(tab.probability(b), ch.probability(b), 1e-9)
        << to_string(b, n);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TableauVsChForm, ::testing::Range(0, 10));

TEST(Tableau, FullPauliSetAgainstStateVector) {
  Rng circuit_rng(91);
  RandomCircuitOptions options;
  options.num_moments = 25;
  options.op_density = 0.9;
  options.gate_domain = {Gate::X(),  Gate::Y(),   Gate::Z(),    Gate::H(),
                         Gate::S(),  Gate::Sdg(), Gate::SqrtX(), Gate::CX(),
                         Gate::CZ(), Gate::Swap()};
  const int n = 4;
  const Circuit circuit = generate_random_circuit(n, options, circuit_rng);
  TableauState tab(n);
  for (const auto& op : circuit.all_operations()) tab.apply(op);
  const auto psi = testing::ideal_statevector(circuit, n);
  for (Bitstring b = 0; b < (Bitstring{1} << n); ++b) {
    EXPECT_NEAR(tab.probability(b), std::norm(psi[b]), 1e-9);
  }
}

TEST(Tableau, DeterministicMeasurement) {
  TableauState tab(2, from_string("10"));
  int outcome = -1;
  EXPECT_TRUE(tab.is_deterministic_z(0, &outcome));
  EXPECT_EQ(outcome, 1);
}

TEST(Tableau, ProjectionCollapsesGhz) {
  TableauState tab(3);
  for (const auto& op : ghz_circuit(3).all_operations()) tab.apply(op);
  EXPECT_DOUBLE_EQ(tab.project_z(0, 1), 0.5);
  EXPECT_DOUBLE_EQ(tab.probability(from_string("111")), 1.0);
  int outcome = -1;
  EXPECT_TRUE(tab.is_deterministic_z(2, &outcome));
  EXPECT_EQ(outcome, 1);
}

TEST(Tableau, ProjectionOntoImpossibleOutcomeThrows) {
  TableauState tab(1);
  EXPECT_THROW(tab.project_z(0, 1), ValueError);
}

TEST(Tableau, MeasurementStatistics) {
  Rng rng(7);
  int ones = 0;
  const int reps = 20000;
  for (int i = 0; i < reps; ++i) {
    TableauState tab(1);
    tab.apply_h(0);
    ones += tab.measure_z(0, rng);
  }
  EXPECT_NEAR(ones / static_cast<double>(reps), 0.5, 0.02);
}

TEST(Tableau, SampleMatchesDistribution) {
  Rng circuit_rng(97);
  const int n = 4;
  const Circuit circuit = random_clifford_circuit(n, 20, circuit_rng);
  TableauState tab(n);
  for (const auto& op : circuit.all_operations()) tab.apply(op);

  Rng rng(11);
  Counts counts;
  for (int i = 0; i < 30000; ++i) ++counts[tab.sample(rng)];
  EXPECT_LT(total_variation_distance(normalize(counts),
                                     testing::ideal_distribution(circuit, n)),
            0.02);
}

TEST(Tableau, BglsSamplerIntegration) {
  // The tableau works as a BGLS backend through its O(n³)
  // compute_probability.
  Rng circuit_rng(101);
  const int n = 4;
  const Circuit circuit = random_clifford_circuit(n, 15, circuit_rng);
  Simulator<TableauState> sim{TableauState(n)};
  Rng rng(13);
  const Counts counts = sim.sample(circuit, 20000, rng);
  EXPECT_LT(total_variation_distance(normalize(counts),
                                     testing::ideal_distribution(circuit, n)),
            0.025);
}

TEST(Tableau, RejectsNonClifford) {
  TableauState tab(2);
  EXPECT_THROW(tab.apply(t(0)), UnsupportedOperationError);
}

TEST(Tableau, WideRegisterSmoke) {
  TableauState tab(60);
  for (int q = 0; q < 60; ++q) tab.apply_h(q);
  for (int q = 0; q + 1 < 60; ++q) tab.apply_cx(q, q + 1);
  Rng rng(17);
  const Bitstring sample = tab.sample(rng);
  (void)sample;
  SUCCEED();
}

}  // namespace
}  // namespace bgls

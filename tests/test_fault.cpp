/// \file test_fault.cpp
/// Deterministic fault injection (util/fault.h): arming semantics,
/// reproducible fire subsequences, the BGLS_FAULT_INJECT env spec, and
/// the "shard_run" abort hook feeding the checkpoint/resume recovery
/// path end to end.

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <mutex>
#include <vector>

#include "api/session.h"
#include "core/checkpoint.h"
#include "engine_test_helpers.h"
#include "util/fault.h"

namespace bgls {
namespace {

using testing::trajectory_workload;

class FaultTest : public ::testing::Test {
 protected:
  void TearDown() override {
    fault::disarm_all();
    ::unsetenv("BGLS_FAULT_INJECT");
  }
};

TEST_F(FaultTest, UnarmedPointNeverFires) {
  fault::disarm_all();
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(fault::should_fail("nonexistent_point"));
  }
  EXPECT_EQ(fault::fire_count("nonexistent_point"), 0u);
}

TEST_F(FaultTest, CertainProbabilityFiresEveryCall) {
  fault::arm("p", 1.0, 3);
  EXPECT_TRUE(fault::should_fail("p"));
  EXPECT_TRUE(fault::should_fail("p"));
  EXPECT_EQ(fault::fire_count("p"), 2u);
  // Other points stay inert.
  EXPECT_FALSE(fault::should_fail("q"));
}

TEST_F(FaultTest, MaxFiresBoundsTotalFires) {
  fault::arm("p", 1.0, 3, 2);
  EXPECT_TRUE(fault::should_fail("p"));
  EXPECT_TRUE(fault::should_fail("p"));
  for (int i = 0; i < 10; ++i) EXPECT_FALSE(fault::should_fail("p"));
  EXPECT_EQ(fault::fire_count("p"), 2u);
}

TEST_F(FaultTest, FireSubsequenceIsReproducible) {
  const auto pattern = [] {
    std::vector<bool> fires;
    fires.reserve(200);
    for (int i = 0; i < 200; ++i) fires.push_back(fault::should_fail("p"));
    return fires;
  };
  fault::arm("p", 0.25, 99);
  const std::vector<bool> first = pattern();
  fault::arm("p", 0.25, 99);  // re-arm resets the point's Rng
  EXPECT_EQ(pattern(), first);
  // A different seed fires at a different subsequence.
  fault::arm("p", 0.25, 100);
  EXPECT_NE(pattern(), first);
}

TEST_F(FaultTest, ThrowIfFailsRaisesFaultInjectedError) {
  fault::arm("p", 1.0, 1, 1);
  EXPECT_THROW(fault::throw_if_fails("p"), FaultInjectedError);
  // The single allowed fire is spent.
  EXPECT_NO_THROW(fault::throw_if_fails("p"));
}

TEST_F(FaultTest, EnvSpecParsesAndMalformedEntriesAreIgnored) {
  ::setenv("BGLS_FAULT_INJECT",
           "alpha:1.0:7,garbage,beta:notanumber:3,:1.0:4,gamma:1.0:", 1);
  fault::reload_from_env();
  EXPECT_TRUE(fault::should_fail("alpha"));
  EXPECT_FALSE(fault::should_fail("garbage"));
  EXPECT_FALSE(fault::should_fail("beta"));
  EXPECT_FALSE(fault::should_fail("gamma"));

  // Clearing the variable disarms everything on the next reload.
  ::unsetenv("BGLS_FAULT_INJECT");
  fault::reload_from_env();
  EXPECT_FALSE(fault::should_fail("alpha"));
}

/// The crash-recovery core loop in miniature: a run aborted by an
/// injected mid-shard fault resumes from its last checkpoint and
/// finishes bit-identical to the uninterrupted run.
TEST_F(FaultTest, ShardRunAbortThenCheckpointResumeIsBitIdentical) {
  const auto request = [] {
    return RunRequest()
        .with_circuit(trajectory_workload(3, 0.05))
        .with_repetitions(300)
        .with_seed(17)
        .with_threads(2)
        .with_rng_streams(8);
  };
  Session session;
  const RunResult baseline = session.run(request());

  std::mutex mutex;
  std::shared_ptr<const RunCheckpoint> latest;
  RunRequest doomed = request().with_checkpoint(
      25, [&](const RunCheckpoint& checkpoint) {
        const std::lock_guard<std::mutex> lock(mutex);
        latest = std::make_shared<const RunCheckpoint>(checkpoint);
      });
  // Fires once, somewhere mid-run (deterministically for this seed).
  fault::arm("shard_run", 0.02, 11, 1);
  EXPECT_THROW((void)session.run(std::move(doomed)), FaultInjectedError);
  fault::disarm_all();
  ASSERT_NE(latest, nullptr);

  const RunResult resumed = session.run(request().with_resume(latest));
  EXPECT_EQ(resumed.measurements.histogram("m"),
            baseline.measurements.histogram("m"));
  const CheckpointStats a = checkpoint_stats_from(resumed.stats);
  const CheckpointStats b = checkpoint_stats_from(baseline.stats);
  EXPECT_EQ(a.state_applications, b.state_applications);
  EXPECT_EQ(a.probability_evaluations, b.probability_evaluations);
  EXPECT_EQ(a.trajectories, b.trajectories);
}

}  // namespace
}  // namespace bgls

// Core gate-by-gate sampler tests: correctness of the sampled
// distribution on every code path (parallelized, trajectories, channels,
// mid-circuit measurement, custom hooks).

#include "core/simulator.h"

#include <gtest/gtest.h>

#include "circuit/random.h"
#include "core/baseline.h"
#include "densitymatrix/state.h"
#include "statevector/state.h"
#include "test_helpers.h"

namespace bgls {
namespace {

Circuit with_terminal_measurement(Circuit circuit, int num_qubits,
                                  const std::string& key = "m") {
  std::vector<Qubit> qubits(static_cast<std::size_t>(num_qubits));
  for (int q = 0; q < num_qubits; ++q) qubits[static_cast<std::size_t>(q)] = q;
  circuit.append(measure(qubits, key));
  return circuit;
}

TEST(Simulator, GhzGivesOnlyAllZerosAndAllOnes) {
  const int n = 3;
  const Circuit circuit = with_terminal_measurement(ghz_circuit(n), n, "z");
  Simulator<StateVectorState> sim{StateVectorState(n)};
  Rng rng(2);
  const Result result = sim.run(circuit, 2000, rng);
  const auto counts = result.histogram("z");
  ASSERT_EQ(counts.size(), 2u);
  const double zeros = static_cast<double>(counts.at(from_string("000")));
  const double ones = static_cast<double>(counts.at(from_string("111")));
  EXPECT_NEAR(zeros / 2000.0, 0.5, 0.05);
  EXPECT_NEAR(ones / 2000.0, 0.5, 0.05);
  EXPECT_TRUE(sim.last_run_stats().used_sample_parallelization);
}

class SimulatorRandomCircuits : public ::testing::TestWithParam<int> {};

TEST_P(SimulatorRandomCircuits, SampledDistributionMatchesIdeal) {
  Rng circuit_rng(static_cast<std::uint64_t>(GetParam()));
  const int n = 4;
  RandomCircuitOptions options;
  options.num_moments = 10;
  options.op_density = 0.8;
  const Circuit circuit = generate_random_circuit(n, options, circuit_rng);

  Simulator<StateVectorState> sim{StateVectorState(n)};
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 1000);
  const Counts counts = sim.sample(circuit, 40000, rng);

  const auto ideal = testing::ideal_distribution(circuit, n);
  EXPECT_LT(total_variation_distance(normalize(counts), ideal), 0.02);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimulatorRandomCircuits,
                         ::testing::Range(0, 10));

TEST(Simulator, TrajectoryPathAgreesWithParallelPath) {
  Rng circuit_rng(7);
  const int n = 3;
  RandomCircuitOptions options;
  options.num_moments = 8;
  const Circuit circuit = generate_random_circuit(n, options, circuit_rng);

  Simulator<StateVectorState> parallel{StateVectorState(n)};
  SimulatorOptions no_batching;
  no_batching.disable_sample_parallelization = true;
  Simulator<StateVectorState> sequential{StateVectorState(n), no_batching};

  Rng rng1(1), rng2(2);
  const auto fast = normalize(parallel.sample(circuit, 30000, rng1));
  const auto slow = normalize(sequential.sample(circuit, 30000, rng2));
  EXPECT_LT(total_variation_distance(fast, slow), 0.02);
  EXPECT_TRUE(parallel.last_run_stats().used_sample_parallelization);
  EXPECT_FALSE(sequential.last_run_stats().used_sample_parallelization);
  EXPECT_EQ(sequential.last_run_stats().trajectories, 30000u);
}

TEST(Simulator, CustomHooksReproduceThePaperTriple) {
  // The paper's constructor: Simulator(initial_state, apply_op,
  // compute_probability).
  const int n = 2;
  const Circuit circuit =
      with_terminal_measurement(ghz_circuit(n), n, "z");
  Simulator<StateVectorState> sim{
      StateVectorState(n),
      [](const Operation& op, StateVectorState& state, Rng& rng) {
        apply_op(op, state, rng);
      },
      [](const StateVectorState& state, Bitstring b) {
        return state.probability(b);
      }};
  Rng rng(5);
  const Result result = sim.run(circuit, 1000, rng);
  const auto counts = result.histogram("z");
  EXPECT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts.at(from_string("00")) + counts.at(from_string("11")),
            1000u);
}

TEST(Simulator, DictionarySaturatesAtTwoToTheN) {
  const int n = 3;
  Rng circuit_rng(11);
  RandomCircuitOptions options;
  options.num_moments = 20;
  const Circuit circuit = generate_random_circuit(n, options, circuit_rng);
  Simulator<StateVectorState> sim{StateVectorState(n)};
  Rng rng(3);
  sim.sample(circuit, 100000, rng);
  EXPECT_LE(sim.last_run_stats().max_dictionary_size, std::size_t{1} << n);
  EXPECT_GE(sim.last_run_stats().max_dictionary_size, 2u);
  EXPECT_EQ(sim.last_run_stats().trajectories, 1u);
}

TEST(Simulator, RunRequiresMeasurements) {
  Simulator<StateVectorState> sim{StateVectorState(2)};
  Rng rng(1);
  EXPECT_THROW(sim.run(ghz_circuit(2), 10, rng), ValueError);
}

TEST(Simulator, RunRejectsUnresolvedParameters) {
  Circuit circuit{rz(Symbol{"g"}, 0)};
  circuit.append(measure({0}, "m"));
  Simulator<StateVectorState> sim{StateVectorState(1)};
  Rng rng(1);
  EXPECT_THROW(sim.run(circuit, 10, rng), ValueError);
}

TEST(Simulator, DuplicateMeasurementKeyThrows) {
  Circuit circuit{h(0), measure({0}, "k"), measure({1}, "k")};
  Simulator<StateVectorState> sim{StateVectorState(2)};
  Rng rng(1);
  EXPECT_THROW(sim.run(circuit, 10, rng), ValueError);
}

TEST(Simulator, PartialMeasurementGivesMarginal) {
  // Measure only qubit 1 of a 3-qubit random circuit.
  Rng circuit_rng(13);
  RandomCircuitOptions options;
  options.num_moments = 8;
  Circuit circuit = generate_random_circuit(3, options, circuit_rng);
  const auto ideal =
      testing::ideal_marginal_distribution(circuit, 3, std::vector<Qubit>{1});
  circuit.append(measure({1}, "q1"));

  Simulator<StateVectorState> sim{StateVectorState(3)};
  Rng rng(17);
  const Result result = sim.run(circuit, 30000, rng);
  EXPECT_LT(total_variation_distance(result.distribution("q1"), ideal), 0.02);
}

TEST(Simulator, MultipleKeysAreJointlyConsistent) {
  // GHZ: measuring qubit 0 under one key and qubits 1,2 under another
  // must give perfectly correlated records.
  Circuit circuit = ghz_circuit(3);
  circuit.append(measure({0}, "first"));
  circuit.append(measure({1, 2}, "rest"));
  Simulator<StateVectorState> sim{StateVectorState(3)};
  Rng rng(23);
  const Result result = sim.run(circuit, 500, rng);
  const auto& first = result.values("first");
  const auto& rest = result.values("rest");
  ASSERT_EQ(first.size(), 500u);
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i] == 1, rest[i] == from_string("11"));
    EXPECT_TRUE(rest[i] == 0 || rest[i] == from_string("11"));
  }
}

TEST(Simulator, MidCircuitMeasurementXorChain) {
  // H(0); M(0→mid); X(0); M(0→end): end must be the complement of mid.
  Circuit circuit{h(0), measure({0}, "mid"), x(0), measure({0}, "end")};
  Simulator<StateVectorState> sim{StateVectorState(1)};
  Rng rng(29);
  const Result result = sim.run(circuit, 400, rng);
  const auto& mid = result.values("mid");
  const auto& end = result.values("end");
  int mid_ones = 0;
  for (std::size_t i = 0; i < mid.size(); ++i) {
    EXPECT_EQ(end[i], mid[i] ^ 1u);
    mid_ones += static_cast<int>(mid[i]);
  }
  EXPECT_NEAR(mid_ones / 400.0, 0.5, 0.1);
}

TEST(Simulator, MidCircuitMeasurementCollapsesEntanglement) {
  // GHZ, measure qubit 0 mid-circuit, then H on qubit 0 — the final
  // joint distribution of (mid, q1) stays perfectly correlated.
  Circuit circuit = ghz_circuit(2);
  circuit.append(measure({0}, "mid"));
  circuit.append(h(0));
  circuit.append(measure({1}, "q1"));
  Simulator<StateVectorState> sim{StateVectorState(2)};
  Rng rng(31);
  const Result result = sim.run(circuit, 400, rng);
  for (std::size_t i = 0; i < 400; ++i) {
    EXPECT_EQ(result.values("mid")[i], result.values("q1")[i]);
  }
}

TEST(Simulator, DeterministicChannelForcesOutcome) {
  Circuit circuit;
  circuit.append(Operation(Gate::Channel(bit_flip(1.0)), {0}));
  circuit.append(measure({0}, "m"));
  Simulator<StateVectorState> sim{StateVectorState(1)};
  Rng rng(37);
  const Result result = sim.run(circuit, 100, rng);
  EXPECT_EQ(result.histogram("m").at(1), 100u);
  EXPECT_FALSE(sim.last_run_stats().used_sample_parallelization);
}

TEST(Simulator, DepolarizingChannelMatchesDensityMatrix) {
  Circuit circuit{h(0), cnot(0, 1)};
  circuit.append(Operation(Gate::Channel(depolarize(0.4)), {0}));
  circuit.append(Operation(Gate::Channel(bit_flip(0.2)), {1}));

  DensityMatrixState rho(2);
  evolve_exact(circuit, rho);
  Distribution ideal;
  for (Bitstring b = 0; b < 4; ++b) ideal[b] = rho.probability(b);

  Simulator<StateVectorState> sim{StateVectorState(2)};
  Rng rng(41);
  const Counts counts = sim.sample(circuit, 40000, rng);
  EXPECT_LT(total_variation_distance(normalize(counts), ideal), 0.02);
}

TEST(Simulator, NonUnitalChannelMatchesDensityMatrix) {
  // Amplitude damping on an entangled state exercises the joint
  // Kraus-candidate update; a naive independent trajectory would bias
  // the outcome distribution here.
  Circuit circuit{h(0), cnot(0, 1)};
  circuit.append(Operation(Gate::Channel(amplitude_damp(0.6)), {0}));
  circuit.append(h(0));

  DensityMatrixState rho(2);
  evolve_exact(circuit, rho);
  Distribution ideal;
  for (Bitstring b = 0; b < 4; ++b) ideal[b] = rho.probability(b);

  Simulator<StateVectorState> sim{StateVectorState(2)};
  Rng rng(43);
  const Counts counts = sim.sample(circuit, 60000, rng);
  EXPECT_LT(total_variation_distance(normalize(counts), ideal), 0.02);
}

TEST(Simulator, DensityMatrixBackendSamplesCorrectly) {
  Rng circuit_rng(47);
  RandomCircuitOptions options;
  options.num_moments = 6;
  const Circuit circuit = generate_random_circuit(3, options, circuit_rng);
  Simulator<DensityMatrixState> sim{DensityMatrixState(3)};
  Rng rng(53);
  const Counts counts = sim.sample(circuit, 30000, rng);
  const auto ideal = testing::ideal_distribution(circuit, 3);
  EXPECT_LT(total_variation_distance(normalize(counts), ideal), 0.02);
}

TEST(Simulator, SkipDiagonalUpdatesIsExact) {
  Rng circuit_rng(59);
  RandomCircuitOptions options;
  options.num_moments = 12;
  options.gate_domain = {Gate::H(), Gate::T(), Gate::S(),
                         Gate::CZ(), Gate::ZZ(0.7)};
  const Circuit circuit = generate_random_circuit(4, options, circuit_rng);

  SimulatorOptions skip;
  skip.skip_diagonal_updates = true;
  Simulator<StateVectorState> sim{StateVectorState(4), skip};
  Rng rng(61);
  const Counts counts = sim.sample(circuit, 40000, rng);
  const auto ideal = testing::ideal_distribution(circuit, 4);
  EXPECT_LT(total_variation_distance(normalize(counts), ideal), 0.02);
  EXPECT_GT(sim.last_run_stats().diagonal_updates_skipped, 0u);
}

TEST(Simulator, SameSeedSameResult) {
  const Circuit circuit = with_terminal_measurement(ghz_circuit(3), 3);
  Simulator<StateVectorState> sim{StateVectorState(3)};
  Rng rng1(77), rng2(77);
  const Result a = sim.run(circuit, 200, rng1);
  const Result b = sim.run(circuit, 200, rng2);
  EXPECT_EQ(a.values("m"), b.values("m"));
}

TEST(Simulator, StatsCountApplicationsAndProbabilities) {
  const int n = 2;
  const Circuit circuit = ghz_circuit(n);  // 2 ops
  Simulator<StateVectorState> sim{StateVectorState(n)};
  Rng rng(83);
  sim.sample(circuit, 100, rng);
  EXPECT_EQ(sim.last_run_stats().state_applications, 2u);
  EXPECT_GT(sim.last_run_stats().probability_evaluations, 0u);
}

TEST(QubitByQubitBaseline, MatchesIdealDistribution) {
  Rng circuit_rng(89);
  RandomCircuitOptions options;
  options.num_moments = 8;
  const Circuit circuit = generate_random_circuit(3, options, circuit_rng);
  Rng rng(97);
  const Counts counts =
      qubit_by_qubit_sample(circuit, StateVectorState(3), 30000, rng);
  const auto ideal = testing::ideal_distribution(circuit, 3);
  EXPECT_LT(total_variation_distance(normalize(counts), ideal), 0.02);
}

TEST(QubitByQubitBaseline, AgreesWithBglsOnGhz) {
  const Circuit circuit = ghz_circuit(4);
  Rng rng(101);
  const Counts counts =
      qubit_by_qubit_sample(circuit, StateVectorState(4), 4000, rng);
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_TRUE(counts.contains(from_string("0000")));
  EXPECT_TRUE(counts.contains(from_string("1111")));
}

TEST(DirectSampleBaseline, MatchesIdealDistribution) {
  Rng circuit_rng(89);
  RandomCircuitOptions options;
  options.num_moments = 8;
  const Circuit circuit = generate_random_circuit(3, options, circuit_rng);
  Rng rng(103);
  const Counts counts =
      direct_sample(circuit, StateVectorState(3), 30000, rng);
  const auto ideal = testing::ideal_distribution(circuit, 3);
  EXPECT_LT(total_variation_distance(normalize(counts), ideal), 0.02);
}

TEST(DirectSampleBaseline, ChannelsFallBackToTrajectories) {
  Circuit circuit{h(0)};
  circuit.append(Operation(Gate::Channel(bit_flip(0.5)), {0}));
  Rng rng(107);
  const Counts counts = direct_sample(circuit, StateVectorState(1), 5000, rng);
  std::uint64_t total = 0;
  for (const auto& [bits, count] : counts) total += count;
  EXPECT_EQ(total, 5000u);
  EXPECT_EQ(counts.size(), 2u);  // both outcomes occur
}

TEST(Result, HistogramAndDistribution) {
  Result result;
  result.declare_key("k", {0, 1});
  result.add_records("k", from_string("10"), 3);
  result.add_record("k", from_string("01"));
  EXPECT_EQ(result.repetitions(), 4u);
  EXPECT_EQ(result.histogram("k").at(from_string("10")), 3u);
  EXPECT_DOUBLE_EQ(result.distribution("k").at(from_string("01")), 0.25);
  EXPECT_THROW((void)result.values("missing"), ValueError);
  EXPECT_THROW(result.declare_key("k", {0}), ValueError);
}

}  // namespace
}  // namespace bgls

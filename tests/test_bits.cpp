// Tests for bitstring packing, printing, and candidate expansion.

#include "util/bits.h"

#include <gtest/gtest.h>

#include <vector>

namespace bgls {
namespace {

TEST(Bits, GetAndSet) {
  Bitstring b = 0;
  b = with_bit(b, 3, 1);
  EXPECT_EQ(get_bit(b, 3), 1);
  EXPECT_EQ(get_bit(b, 2), 0);
  b = with_bit(b, 3, 0);
  EXPECT_EQ(b, 0u);
}

TEST(Bits, SetIsIdempotent) {
  Bitstring b = with_bit(0, 5, 1);
  EXPECT_EQ(with_bit(b, 5, 1), b);
}

TEST(Bits, HighBitWorks) {
  Bitstring b = with_bit(0, 63, 1);
  EXPECT_EQ(get_bit(b, 63), 1);
  EXPECT_EQ(to_string(b, 64).back(), '1');
}

TEST(Bits, ToStringIsQubitZeroFirst) {
  // Qubit 0 set -> leftmost character is '1'.
  EXPECT_EQ(to_string(with_bit(0, 0, 1), 3), "100");
  EXPECT_EQ(to_string(with_bit(0, 2, 1), 3), "001");
}

TEST(Bits, FromStringRoundTrips) {
  for (const auto* text : {"0", "1", "0101", "111000111"}) {
    EXPECT_EQ(to_string(from_string(text), static_cast<int>(std::string(text).size())),
              text);
  }
}

TEST(Bits, FromStringRejectsJunk) {
  EXPECT_THROW((void)from_string("01a1"), ValueError);
}

TEST(Bits, ExpandCandidatesSingleQubit) {
  const std::vector<int> support{1};
  const auto candidates = expand_candidates(from_string("101"), support);
  ASSERT_EQ(candidates.count, 2);
  EXPECT_EQ(to_string(candidates.values[0], 3), "101");
  EXPECT_EQ(to_string(candidates.values[1], 3), "111");
}

TEST(Bits, ExpandCandidatesTwoQubits) {
  const std::vector<int> support{0, 2};
  const auto candidates = expand_candidates(from_string("010"), support);
  ASSERT_EQ(candidates.count, 4);
  // support[0] = qubit 0 is the least-significant varying bit.
  EXPECT_EQ(to_string(candidates.values[0], 3), "010");
  EXPECT_EQ(to_string(candidates.values[1], 3), "110");
  EXPECT_EQ(to_string(candidates.values[2], 3), "011");
  EXPECT_EQ(to_string(candidates.values[3], 3), "111");
}

TEST(Bits, ExpandCandidatesPreservesOtherBits) {
  const std::vector<int> support{1};
  const auto candidates = expand_candidates(from_string("1001"), support);
  for (const auto c : candidates.span()) {
    EXPECT_EQ(get_bit(c, 0), 1);
    EXPECT_EQ(get_bit(c, 3), 1);
  }
}

TEST(Bits, ExpandCandidatesRejectsWideSupport) {
  const std::vector<int> support{0, 1, 2, 3};
  EXPECT_THROW((void)expand_candidates(0, support), ValueError);
}

TEST(Bits, BigEndianIndexMatchesCirqConvention) {
  // Bitstring "110" (qubits 0,1 set) reads as binary 110 = 6 big-endian.
  EXPECT_EQ(to_big_endian_index(from_string("110"), 3), 6u);
  EXPECT_EQ(to_big_endian_index(from_string("001"), 3), 1u);
}

TEST(Bits, BigEndianRoundTrip) {
  for (std::uint64_t idx = 0; idx < 32; ++idx) {
    EXPECT_EQ(to_big_endian_index(from_big_endian_index(idx, 5), 5), idx);
  }
}

}  // namespace
}  // namespace bgls

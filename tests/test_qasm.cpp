// OpenQASM 2.0 importer/exporter tests: gate coverage, broadcast,
// expressions, registers, error reporting, and semantic round trips.

#include "qasm/qasm.h"

#include <gtest/gtest.h>

#include <numbers>

#include "circuit/random.h"
#include "test_helpers.h"
#include "util/error.h"

namespace bgls {
namespace {

using std::numbers::pi;

TEST(QasmParse, MinimalProgram) {
  const Circuit c = parse_qasm(R"(
OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
creg c[2];
h q[0];
cx q[0],q[1];
measure q -> c;
)");
  EXPECT_EQ(c.num_qubits(), 2);
  EXPECT_TRUE(c.has_measurements());
  const auto ops = c.all_operations();
  ASSERT_EQ(ops.size(), 3u);
  EXPECT_EQ(ops[0].to_string(), "H(0)");
  EXPECT_EQ(ops[1].to_string(), "CX(0, 1)");
  EXPECT_EQ(ops[2].gate().measurement_key(), "c");
}

TEST(QasmParse, AllSupportedGates) {
  const Circuit c = parse_qasm(R"(
OPENQASM 2.0;
qreg q[3];
id q[0]; x q[0]; y q[0]; z q[0]; h q[0]; s q[0]; sdg q[0];
t q[0]; tdg q[0]; sx q[0];
rx(0.5) q[0]; ry(0.25) q[1]; rz(-0.75) q[2];
p(0.1) q[0]; u1(0.2) q[1];
u2(0.1,0.2) q[0];
u3(0.1,0.2,0.3) q[1];
cx q[0],q[1]; cz q[1],q[2]; swap q[0],q[2]; iswap q[0],q[1];
cp(0.4) q[0],q[1]; cu1(0.4) q[1],q[2]; rzz(0.3) q[0],q[2];
ccx q[0],q[1],q[2]; cswap q[0],q[1],q[2];
)");
  EXPECT_EQ(c.num_operations(), 26u);
}

TEST(QasmParse, PiExpressions) {
  const Circuit c = parse_qasm(R"(
OPENQASM 2.0;
qreg q[1];
rz(pi/4) q[0];
rz(-pi) q[0];
rz(3*pi/2) q[0];
rz(pi*(1+1)/4) q[0];
rz(2e-1) q[0];
)");
  const auto ops = c.all_operations();
  EXPECT_NEAR(ops[0].gate().parameter().value(), pi / 4.0, 1e-12);
  EXPECT_NEAR(ops[1].gate().parameter().value(), -pi, 1e-12);
  EXPECT_NEAR(ops[2].gate().parameter().value(), 3.0 * pi / 2.0, 1e-12);
  EXPECT_NEAR(ops[3].gate().parameter().value(), pi / 2.0, 1e-12);
  EXPECT_NEAR(ops[4].gate().parameter().value(), 0.2, 1e-12);
}

TEST(QasmParse, RegisterBroadcast) {
  const Circuit c = parse_qasm(R"(
OPENQASM 2.0;
qreg q[4];
h q;
)");
  EXPECT_EQ(c.num_operations(), 4u);
}

TEST(QasmParse, TwoQubitBroadcast) {
  const Circuit c = parse_qasm(R"(
OPENQASM 2.0;
qreg a[3];
qreg b[3];
cx a,b;
)");
  const auto ops = c.all_operations();
  ASSERT_EQ(ops.size(), 3u);
  EXPECT_EQ(ops[0].to_string(), "CX(0, 3)");
  EXPECT_EQ(ops[2].to_string(), "CX(2, 5)");
}

TEST(QasmParse, MultipleQuantumRegistersGetDistinctQubits) {
  const Circuit c = parse_qasm(R"(
OPENQASM 2.0;
qreg a[2];
qreg b[2];
x a[1];
x b[0];
)");
  const auto ops = c.all_operations();
  EXPECT_EQ(ops[0].to_string(), "X(1)");
  EXPECT_EQ(ops[1].to_string(), "X(2)");
}

TEST(QasmParse, SingleBitMeasurement) {
  const Circuit c = parse_qasm(R"(
OPENQASM 2.0;
qreg q[2];
creg m[2];
measure q[1] -> m[0];
)");
  const auto ops = c.all_operations();
  ASSERT_EQ(ops.size(), 1u);
  EXPECT_EQ(ops[0].gate().measurement_key(), "m[0]");
  EXPECT_EQ(ops[0].qubits()[0], 1);
}

TEST(QasmParse, BarrierAndCommentsIgnored) {
  const Circuit c = parse_qasm(R"(
OPENQASM 2.0;
// a comment
qreg q[2];
h q[0]; // trailing comment
barrier q;
h q[1];
)");
  EXPECT_EQ(c.num_operations(), 2u);
}

TEST(QasmParse, Errors) {
  EXPECT_THROW(parse_qasm("qreg q[2];"), ParseError);        // no header
  EXPECT_THROW(parse_qasm("OPENQASM 3.0;\n"), ParseError);   // wrong version
  EXPECT_THROW(parse_qasm("OPENQASM 2.0;\nqreg q[2];\nfoo q[0];"),
               ParseError);                                  // unknown gate
  EXPECT_THROW(parse_qasm("OPENQASM 2.0;\nqreg q[2];\nh q[5];"),
               ParseError);                                  // range
  EXPECT_THROW(parse_qasm("OPENQASM 2.0;\nqreg q[2];\nqreg q[3];"),
               ParseError);                                  // redeclared
  EXPECT_THROW(parse_qasm("OPENQASM 2.0;\nqreg q[1];\nrx() q[0];"),
               ParseError);                                  // missing param
  EXPECT_THROW(parse_qasm("OPENQASM 2.0;\nqreg q[1];\nh r[0];"),
               ParseError);                                  // unknown reg
  EXPECT_THROW(
      parse_qasm("OPENQASM 2.0;\nqreg q[1];\ngate mygate a { h a; }"),
      ParseError);                                           // gate defs
  EXPECT_THROW(parse_qasm("OPENQASM 2.0;\nqreg q[1];\nrz(1/0) q[0];"),
               ParseError);                                  // div by zero
}

TEST(QasmParse, SemanticsMatchNativeCircuit) {
  // The imported circuit's unitary equals the natively built one.
  const Circuit imported = parse_qasm(R"(
OPENQASM 2.0;
qreg q[2];
h q[0];
t q[1];
cx q[0],q[1];
rz(pi/8) q[0];
)");
  Circuit native{h(0), t(1), cnot(0, 1), rz(pi / 8.0, 0)};
  EXPECT_TRUE(testing::circuit_unitary(imported, 2)
                  .approx_equal(testing::circuit_unitary(native, 2), 1e-12));
}

TEST(QasmParse, U3MatchesKnownDecomposition) {
  // u3(θ, φ, λ) with θ=π/2, φ=0, λ=π is the Hadamard (up to nothing —
  // exactly H in the qelib1 convention).
  const Circuit c = parse_qasm(R"(
OPENQASM 2.0;
qreg q[1];
u3(pi/2,0,pi) q[0];
)");
  EXPECT_TRUE(c.all_operations()[0].gate().unitary().approx_equal(
      Gate::H().unitary(), 1e-12));
}

TEST(QasmExport, RoundTripPreservesUnitary) {
  Rng rng(3);
  RandomCircuitOptions options;
  options.num_moments = 10;
  options.op_density = 0.8;
  options.gate_domain = {Gate::H(),      Gate::T(),  Gate::S(),
                         Gate::Rz(0.37), Gate::Rx(1.2), Gate::CX(),
                         Gate::CZ(),     Gate::Swap()};
  const int n = 4;
  const Circuit original = generate_random_circuit(n, options, rng);
  const Circuit round_tripped = parse_qasm(to_qasm(original));
  EXPECT_TRUE(
      testing::circuit_unitary(round_tripped, n)
          .approx_equal(testing::circuit_unitary(original, n), 1e-9));
}

TEST(QasmExport, MeasurementsExport) {
  Circuit c{h(0), cnot(0, 1), measure({0, 1}, "z")};
  const std::string qasm = to_qasm(c);
  EXPECT_NE(qasm.find("creg c[2];"), std::string::npos);
  EXPECT_NE(qasm.find("measure q[0] -> c[0];"), std::string::npos);
  const Circuit back = parse_qasm(qasm);
  EXPECT_TRUE(back.has_measurements());
}

TEST(QasmExport, RejectsUnexportableGates) {
  Circuit c_fused;
  c_fused.append(
      Operation(Gate::SingleQubitMatrix(Gate::H().unitary(), "fused"), {0}));
  EXPECT_THROW(to_qasm(c_fused), ValueError);

  Circuit c_channel;
  c_channel.append(Operation(Gate::Channel(bit_flip(0.1)), {0}));
  EXPECT_THROW(to_qasm(c_channel), ValueError);

  Circuit c_symbolic{rz(Symbol{"g"}, 0)};
  EXPECT_THROW(to_qasm(c_symbolic), ValueError);
}

}  // namespace
}  // namespace bgls

// The runtime API (src/api/): BackendSelector heuristics, registry
// lookup and custom registration, the type-erased Backend triple, and —
// the central contract — Session runs being bit-identical to the
// corresponding direct templated Simulator/BatchEngine runs for a
// fixed seed across all four backends.

#include <gtest/gtest.h>

#include <future>
#include <vector>

#include "api/adapters.h"
#include "api/registry.h"
#include "api/selector.h"
#include "api/session.h"
#include "circuit/noise.h"
#include "circuit/random.h"
#include "core/optimize.h"
#include "core/simulator.h"
#include "densitymatrix/state.h"
#include "engine/engine.h"
#include "mps/state.h"
#include "stabilizer/ch_form.h"
#include "statevector/state.h"
#include "engine_test_helpers.h"
#include "test_helpers.h"

namespace bgls {
namespace {

// --- Workloads that exercise each routing rule ---------------------------

/// Pure Clifford, terminal measurement → stabilizer.
Circuit clifford_workload(int n = 4) {
  Rng rng(17);
  return testing::with_terminal_measurement(random_clifford_circuit(n, 12, rng),
                                            n);
}

/// Clifford+T (dense, small) → statevector.
Circuit dense_workload(int n = 4) {
  Rng rng(23);
  return testing::with_terminal_measurement(
      random_clifford_t_circuit(n, 10, 4, rng), n);
}

/// Channel-bearing, small register → densitymatrix.
Circuit channel_workload(int n = 3) {
  Circuit circuit{h(0), cnot(0, 1)};
  circuit.append(Operation(Gate::Channel(amplitude_damp(0.4)), {0}));
  circuit.append(h(1));
  if (n > 2) circuit.append(cnot(1, 2));
  return testing::with_terminal_measurement(std::move(circuit), n);
}

/// Wide 1D chain with a T gate (non-Clifford, low entangling) → MPS.
Circuit chain_workload(int n = 14) {
  Circuit circuit{h(0)};
  for (int q = 0; q + 1 < n; ++q) circuit.append(cnot(q, q + 1));
  circuit.append(t(n / 2));
  circuit.append(h(n - 1));
  return testing::with_terminal_measurement(std::move(circuit), n);
}

// --- Selector heuristics -------------------------------------------------

TEST(BackendSelector, PureCliffordRoutesToStabilizer) {
  const BackendSelector selector;
  EXPECT_EQ(selector.select(clifford_workload()).id, BackendId::kStabilizer);
}

TEST(BackendSelector, ChannelBearingSmallRegisterRoutesToDensityMatrix) {
  const BackendSelector selector;
  EXPECT_EQ(selector.select(channel_workload()).id,
            BackendId::kDensityMatrix);
}

TEST(BackendSelector, ChannelBearingWideRegisterRoutesToTrajectories) {
  // 12 qubits: 2^12 > the default 1024 repetitions, so the cost model
  // predicts reps × 2^n trajectories cheaper than the one-pass 4^n
  // density matrix (the old max_density_matrix_qubits=10 boundary).
  Circuit circuit = ghz_circuit(12);
  circuit.append(Operation(Gate::Channel(depolarize(0.05)), {0}));
  circuit.append(measure({0, 1, 2}, "m"));
  const BackendSelector selector;
  EXPECT_EQ(selector.select(circuit).id, BackendId::kStateVector);
}

TEST(BackendSelector, Wide1dLowEntanglingRoutesToMps) {
  const BackendSelector selector;
  const auto selection = selector.select(chain_workload());
  EXPECT_EQ(selection.id, BackendId::kMps);
  EXPECT_FALSE(selection.reason.empty());
}

TEST(BackendSelector, DenseDefaultRoutesToStatevector) {
  EXPECT_EQ(BackendSelector().select(dense_workload()).id,
            BackendId::kStateVector);
}

TEST(BackendSelector, LongRangeEntanglementDisqualifiesMps) {
  // Same width as the MPS chain but with a long-range CX: profile loses
  // nearest_neighbor_1d and the dense default wins.
  Circuit circuit = chain_workload();
  circuit.append(cnot(0, 13));
  circuit = testing::with_terminal_measurement(std::move(circuit), 14, "m2");
  const CircuitProfile profile = profile_circuit(circuit);
  EXPECT_FALSE(profile.nearest_neighbor_1d);
  EXPECT_EQ(BackendSelector().select(profile).id, BackendId::kStateVector);
}

TEST(BackendSelector, ThreeQubitGatesDisqualifyMps) {
  Circuit circuit;
  circuit.append(h(0));
  for (int q = 0; q + 2 < 14; ++q) circuit.append(ccx(q, q + 1, q + 2));
  circuit.append(t(0));
  circuit = testing::with_terminal_measurement(std::move(circuit), 14);
  EXPECT_EQ(BackendSelector().select(circuit).id, BackendId::kStateVector);
}

TEST(BackendSelector, TooWideForDenseAmplitudesFallsBackToMps) {
  // 34 qubits with a T gate: stabilizer is out (non-Clifford), dense
  // amplitudes are out (> 30), so MPS is the only shipped option.
  Circuit circuit{h(0)};
  for (int q = 0; q + 1 < 34; ++q) circuit.append(cnot(q, q + 1));
  circuit.append(t(3));
  circuit = testing::with_terminal_measurement(std::move(circuit), 34);
  EXPECT_EQ(BackendSelector().select(circuit).id, BackendId::kMps);
}

TEST(BackendSelector, ProfileExtractsRoutingFeatures) {
  Circuit circuit = channel_workload();
  const CircuitProfile profile = profile_circuit(circuit);
  EXPECT_EQ(profile.num_qubits, 3);
  EXPECT_TRUE(profile.has_channels);
  EXPECT_FALSE(profile.clifford_only);
  EXPECT_GE(profile.entangling_gates, 2u);

  const CircuitProfile clifford = profile_circuit(clifford_workload());
  EXPECT_TRUE(clifford.clifford_only);
  EXPECT_TRUE(clifford.near_clifford);
  EXPECT_FALSE(clifford.has_channels);
}

// --- Explicit override knob ----------------------------------------------

TEST(Session, ExplicitBackendOverridesSelection) {
  // A circuit every backend can run (Clifford + T is near-Clifford
  // eligible, 2-qubit gates only, 4 qubits).
  const Circuit circuit = dense_workload();
  Session session;
  for (const BackendId id :
       {BackendId::kStateVector, BackendId::kDensityMatrix,
        BackendId::kStabilizer, BackendId::kMps}) {
    const RunResult result = session.run(RunRequest()
                                             .with_circuit(circuit)
                                             .with_repetitions(50)
                                             .with_seed(5)
                                             .with_backend(id));
    EXPECT_EQ(result.backend_id, id);
    EXPECT_TRUE(result.selection_reason.empty());
    EXPECT_EQ(result.measurements.repetitions(), 50u);
  }
}

// --- The acceptance criterion: bit-identical to direct templated runs ----

template <typename State>
Counts direct_histogram(const Circuit& circuit, State initial,
                        std::uint64_t reps, std::uint64_t seed,
                        SimulatorOptions options = {}) {
  Simulator<State> simulator{std::move(initial), options};
  return simulator.run(circuit, reps, seed).histogram("m");
}

TEST(SessionDifferential, AutoStatevectorMatchesDirectRunBitForBit) {
  const Circuit circuit = dense_workload();
  Session session;
  const RunResult result = session.run(circuit, 20000, 42);
  EXPECT_EQ(result.backend_id, BackendId::kStateVector);
  EXPECT_EQ(result.measurements.histogram("m"),
            direct_histogram(circuit, StateVectorState(4), 20000, 42));
}

TEST(SessionDifferential, AutoStabilizerMatchesDirectRunBitForBit) {
  const Circuit circuit = clifford_workload();
  Session session;
  const RunResult result = session.run(circuit, 20000, 43);
  EXPECT_EQ(result.backend_id, BackendId::kStabilizer);
  EXPECT_EQ(result.measurements.histogram("m"),
            direct_histogram(circuit, CHState(4), 20000, 43));
}

TEST(SessionDifferential, AutoDensityMatrixMatchesDirectRunBitForBit) {
  const Circuit circuit = channel_workload();
  Session session;
  const RunResult result = session.run(circuit, 5000, 44);
  EXPECT_EQ(result.backend_id, BackendId::kDensityMatrix);
  EXPECT_EQ(result.measurements.histogram("m"),
            direct_histogram(circuit, DensityMatrixState(3), 5000, 44));
}

TEST(SessionDifferential, AutoMpsMatchesDirectRunBitForBit) {
  const Circuit circuit = chain_workload();
  Session session;
  const RunResult result = session.run(circuit, 20000, 45);
  EXPECT_EQ(result.backend_id, BackendId::kMps);
  EXPECT_EQ(result.measurements.histogram("m"),
            direct_histogram(circuit, MPSState(14), 20000, 45));
}

TEST(SessionDifferential, EnginePathMatchesDirectEngineRuns) {
  // Multi-threaded requests route through the BatchEngine on both
  // sides; histograms must still match bit for bit.
  SimulatorOptions options;
  options.num_threads = 4;
  options.num_rng_streams = 8;
  Session session;
  const auto request_for = [](const Circuit& circuit) {
    return RunRequest()
        .with_circuit(circuit)
        .with_repetitions(20000)
        .with_seed(77)
        .with_threads(4)
        .with_rng_streams(8);
  };

  const Circuit dense = dense_workload();
  EXPECT_EQ(session.run(request_for(dense)).measurements.histogram("m"),
            direct_histogram(dense, StateVectorState(4), 20000, 77, options));

  const Circuit clifford = clifford_workload();
  EXPECT_EQ(session.run(request_for(clifford)).measurements.histogram("m"),
            direct_histogram(clifford, CHState(4), 20000, 77, options));

  const Circuit noisy = channel_workload();
  EXPECT_EQ(session.run(request_for(noisy)).measurements.histogram("m"),
            direct_histogram(noisy, DensityMatrixState(3), 20000, 77,
                             options));

  // Session pinned the 4-thread context.
  ASSERT_NE(session.engine_context(), nullptr);
  EXPECT_EQ(session.engine_context()->num_threads(), 4);
}

TEST(SessionDifferential, SampledDistributionsMatchGroundTruth) {
  // Beyond self-consistency: the auto-routed histograms agree with the
  // brute-force ideal distribution.
  const Circuit circuit = dense_workload();
  Session session;
  const RunResult result = session.run(circuit, 30000, 3);
  EXPECT_LT(total_variation_distance(result.measurements.distribution("m"),
                                     testing::ideal_distribution(circuit, 4)),
            0.03);
}

TEST(SessionDifferential, OptimizeFlagMatchesDirectRunOnOptimizedCircuit) {
  const Circuit circuit = dense_workload();
  const Circuit optimized = optimize_for_bgls(circuit);
  Session session;
  const RunResult result = session.run(RunRequest()
                                           .with_circuit(circuit)
                                           .with_repetitions(10000)
                                           .with_seed(9)
                                           .with_optimization());
  // Fused matrix gates are not recognizably Clifford, so optimization
  // happens before selection.
  EXPECT_EQ(result.measurements.histogram("m"),
            direct_histogram(optimized, StateVectorState(4), 10000, 9));
}

TEST(SessionDifferential, OptimizationSkipsPureCliffordUnderAutoRouting) {
  // Fusion emits matrix gates only matrix backends can apply; a
  // pure-Clifford circuit must keep its polynomial stabilizer routing
  // (and its exact histograms) even when optimization is requested.
  const Circuit circuit = clifford_workload();
  Session session;
  const RunResult result = session.run(RunRequest()
                                           .with_circuit(circuit)
                                           .with_repetitions(5000)
                                           .with_seed(19)
                                           .with_optimization());
  EXPECT_EQ(result.backend_id, BackendId::kStabilizer);
  EXPECT_EQ(result.measurements.histogram("m"),
            direct_histogram(circuit, CHState(4), 5000, 19));
  // An explicitly forced matrix backend still gets the fused circuit.
  const RunResult forced = session.run(RunRequest()
                                           .with_circuit(circuit)
                                           .with_repetitions(5000)
                                           .with_seed(19)
                                           .with_backend(BackendId::kStateVector)
                                           .with_optimization());
  EXPECT_EQ(forced.measurements.histogram("m"),
            direct_histogram(optimize_for_bgls(circuit), StateVectorState(4),
                             5000, 19));
  // Explicitly picking the stabilizer backend (by id or by name) with
  // optimization on must run the original circuit, not throw on the
  // fused matrix gates — the hint never rejects a runnable circuit.
  for (const auto& request :
       {RunRequest().with_backend(BackendId::kStabilizer),
        RunRequest().with_backend(std::string("stabilizer")),
        RunRequest().with_backend(std::string("ch"))}) {
    RunRequest stab = request;
    const RunResult r = session.run(stab.with_circuit(circuit)
                                        .with_repetitions(500)
                                        .with_seed(19)
                                        .with_optimization());
    EXPECT_EQ(r.backend_name, "stabilizer");
    EXPECT_EQ(r.measurements.histogram("m"),
              direct_histogram(circuit, CHState(4), 500, 19));
  }
  // And run_batch applies the identical guard (round-trips on the
  // stabilizer path instead of demoting or throwing).
  const std::vector<Circuit> batch{circuit};
  const std::vector<RunResult> batched = session.run_batch(
      batch,
      RunRequest().with_repetitions(500).with_seed(23).with_optimization());
  ASSERT_EQ(batched.size(), 1u);
  EXPECT_EQ(batched[0].backend_id, BackendId::kStabilizer);
}

TEST(Session, RunBatchHandlesMixedWidths) {
  // Circuits of different widths on one backend land in separate
  // (backend, width) groups, each with its own prototype state.
  Rng rng(91);
  const Circuit wide = testing::with_terminal_measurement(
      random_clifford_circuit(5, 8, rng), 5);
  const Circuit narrow = testing::with_terminal_measurement(
      random_clifford_circuit(3, 8, rng), 3);
  Session session;
  const std::vector<Circuit> circuits{wide, narrow};
  const std::vector<RunResult> results = session.run_batch(
      circuits, RunRequest().with_repetitions(2000).with_seed(37));
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].backend_id, BackendId::kStabilizer);
  EXPECT_EQ(results[1].backend_id, BackendId::kStabilizer);
  EXPECT_EQ(results[0].measurements.measured_qubits("m").size(), 5u);
  EXPECT_EQ(results[1].measurements.measured_qubits("m").size(), 3u);
  EXPECT_EQ(results[0].measurements.repetitions(), 2000u);
  EXPECT_EQ(results[1].measurements.repetitions(), 2000u);
}

// --- Zero repetitions: validate, don't silently succeed -----------------

TEST(Session, ZeroRepetitionsReturnsWellFormedEmptyResult) {
  const Circuit circuit = clifford_workload();
  Session session;
  const RunResult result = session.run(RunRequest()
                                           .with_circuit(circuit)
                                           .with_repetitions(0)
                                           .with_seed(1));
  // Routed and executed: backend resolved, keys declared, zero records.
  EXPECT_EQ(result.backend_id, BackendId::kStabilizer);
  ASSERT_EQ(result.measurements.keys().size(), 1u);
  EXPECT_EQ(result.measurements.keys().front(), "m");
  EXPECT_EQ(result.measurements.repetitions(), 0u);
  EXPECT_TRUE(result.measurements.histogram("m").empty());
  EXPECT_EQ(result.measurements.measured_qubits("m").size(), 4u);
}

TEST(Session, ZeroRepetitionsStillValidatesTheCircuit) {
  Session session;
  // No measurements: must throw, not return an empty result.
  EXPECT_THROW(
      (void)session.run(RunRequest()
                            .with_circuit(Circuit{h(0), cnot(0, 1)})
                            .with_repetitions(0)),
      ValueError);
  // Unresolved parameters: rejected by capability validation.
  Circuit symbolic{rx(Symbol{"theta"}, 0)};
  symbolic.append(measure({0}, "m"));
  EXPECT_THROW((void)session.run(RunRequest()
                                     .with_circuit(symbolic)
                                     .with_repetitions(0)),
               UnsupportedOperationError);
  // Unrunnable on the explicitly requested backend: channels never run
  // on the stabilizer representation, 0 repetitions or not.
  EXPECT_THROW(
      (void)session.run(RunRequest()
                            .with_circuit(channel_workload())
                            .with_repetitions(0)
                            .with_backend(BackendId::kStabilizer)),
      UnsupportedOperationError);
}

// --- Registry ------------------------------------------------------------

TEST(BackendRegistry, GlobalRegistryServesTheFourAdapters) {
  BackendRegistry& registry = BackendRegistry::global();
  const auto names = registry.names();
  ASSERT_EQ(names.size(), 4u);
  EXPECT_EQ(registry.find("sv"), registry.find(BackendId::kStateVector));
  EXPECT_EQ(registry.find("dm"), registry.find(BackendId::kDensityMatrix));
  EXPECT_EQ(registry.find("ch"), registry.find(BackendId::kStabilizer));
  EXPECT_EQ(registry.find("MPS"), registry.find(BackendId::kMps));  // ci
  EXPECT_EQ(registry.find("no-such-backend"), nullptr);
  EXPECT_THROW((void)registry.require("no-such-backend"), ValueError);
}

/// A user backend: the statevector adapter under a custom name.
class CustomSvBackend final : public StateVectorBackend {
 public:
  [[nodiscard]] std::string name() const override { return "custom-sv"; }
  [[nodiscard]] BackendId id() const override { return BackendId::kCustom; }
};

TEST(Session, CustomBackendIdMustBeAddressedByName) {
  // Several user backends may share kCustom; requesting the id (rather
  // than a registered name) is ambiguous and rejected.
  Session session;
  EXPECT_THROW((void)session.run(RunRequest()
                                     .with_circuit(dense_workload())
                                     .with_backend(BackendId::kCustom)),
               ValueError);
}

TEST(BackendRegistry, CustomBackendsRegisterAndRouteByName) {
  BackendRegistry registry;
  registry.register_backend(make_statevector_backend(), {"sv"});
  registry.register_backend(make_densitymatrix_backend());
  registry.register_backend(make_stabilizer_backend());
  registry.register_backend(make_mps_backend());
  registry.register_backend(std::make_shared<CustomSvBackend>(), {"mine"});
  EXPECT_THROW(
      registry.register_backend(std::make_shared<CustomSvBackend>()),
      ValueError);  // duplicate name

  SessionOptions options;
  options.registry = &registry;
  Session session(options);
  const Circuit circuit = dense_workload();
  const RunResult result = session.run(RunRequest()
                                           .with_circuit(circuit)
                                           .with_repetitions(5000)
                                           .with_seed(21)
                                           .with_backend("mine"));
  EXPECT_EQ(result.backend_name, "custom-sv");
  EXPECT_EQ(result.backend_id, BackendId::kCustom);
  // The custom adapter is still the statevector core underneath.
  EXPECT_EQ(result.measurements.histogram("m"),
            direct_histogram(circuit, StateVectorState(4), 5000, 21));
}

// --- The type-erased triple ----------------------------------------------

TEST(Backend, TypeErasedTripleRunsTheBglsLoopManually) {
  // Drive the (create_state, apply_op, compute_probability, collapse)
  // surface directly — the C++ analogue of handing the Python package a
  // custom triple — on a GHZ circuit, per backend.
  const Circuit ghz = ghz_circuit(3);
  const RunRequest request;
  for (const BackendId id :
       {BackendId::kStateVector, BackendId::kDensityMatrix,
        BackendId::kStabilizer, BackendId::kMps}) {
    const auto backend = BackendRegistry::global().require(id);
    AnyState state = backend->create_state(request, 3);
    Rng rng(5);
    for (const auto& op : ghz.all_operations()) {
      if (op.gate().is_measurement()) continue;
      backend->apply_op(op, state, rng);
    }
    EXPECT_NEAR(backend->compute_probability(state, 0b000), 0.5, 1e-9)
        << backend->name();
    EXPECT_NEAR(backend->compute_probability(state, 0b111), 0.5, 1e-9)
        << backend->name();
    // Collapse onto |111⟩ and re-check.
    const std::vector<Qubit> qubits{0, 1, 2};
    backend->collapse(state, qubits, 0b111);
    EXPECT_NEAR(backend->compute_probability(state, 0b111), 1.0, 1e-9)
        << backend->name();
  }
}

TEST(Backend, AnyStateCopiesAreIndependentAndTypeChecked) {
  AnyState state{StateVectorState(2)};
  AnyState copy = state;
  copy.get<StateVectorState>().apply(h(0));
  // The original is untouched by the copy's evolution.
  EXPECT_NEAR(state.get<StateVectorState>().probability(0), 1.0, 1e-12);
  EXPECT_NEAR(copy.get<StateVectorState>().probability(0), 0.5, 1e-12);
  EXPECT_TRUE(state.holds<StateVectorState>());
  EXPECT_FALSE(state.holds<CHState>());
  EXPECT_THROW((void)state.get<CHState>(), ValueError);
  EXPECT_THROW((void)AnyState{}.get<StateVectorState>(), ValueError);
}

// --- Async + batch -------------------------------------------------------

TEST(Session, RunAsyncMatchesSynchronousRun) {
  const Circuit circuit = dense_workload();
  Session session;
  RunRequest request = RunRequest()
                           .with_circuit(circuit)
                           .with_repetitions(10000)
                           .with_seed(31)
                           .with_threads(2)
                           .with_rng_streams(8);
  std::future<RunResult> future = session.run_async(request);
  const RunResult sync = session.run(request);
  const RunResult async = future.get();
  EXPECT_EQ(async.backend_id, sync.backend_id);
  EXPECT_EQ(async.measurements.histogram("m"),
            sync.measurements.histogram("m"));
}

TEST(Session, RunAsyncValidatesAtSubmission) {
  Session session;
  EXPECT_THROW((void)session.run_async(
                   RunRequest().with_circuit(Circuit{h(0)})),
               ValueError);
}

TEST(Session, RunBatchRoutesPerCircuitAndPreservesOrder) {
  // Mixed traffic: circuits 0 and 2 are pure Clifford (stabilizer),
  // circuit 1 is Clifford+T (statevector). Auto routing groups them by
  // backend; outputs come back in input order and match the direct
  // engine runs of each group bit for bit.
  Rng rng_a(61), rng_c(67);
  const Circuit clifford_a = testing::with_terminal_measurement(
      random_clifford_circuit(4, 10, rng_a), 4);
  const Circuit dense_b = dense_workload();
  const Circuit clifford_c = testing::with_terminal_measurement(
      random_clifford_circuit(4, 14, rng_c), 4);
  const std::vector<Circuit> circuits{clifford_a, dense_b, clifford_c};

  Session session;
  RunRequest config = RunRequest().with_repetitions(4000).with_seed(71);
  const std::vector<RunResult> results = session.run_batch(circuits, config);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].backend_id, BackendId::kStabilizer);
  EXPECT_EQ(results[1].backend_id, BackendId::kStateVector);
  EXPECT_EQ(results[2].backend_id, BackendId::kStabilizer);

  // Direct comparison: the stabilizer group ran {a, c} through one
  // engine batch, the statevector group ran {b}.
  SimulatorOptions options;  // request defaults: 1 thread, 16 streams
  options.num_rng_streams = 16;
  BatchEngine<CHState> ch_engine{Simulator<CHState>{CHState(4), options}};
  Rng ch_rng(71);
  const std::vector<Circuit> ch_group{clifford_a, clifford_c};
  const std::vector<Result> ch_direct =
      ch_engine.run_batch(ch_group, 4000, ch_rng);
  EXPECT_EQ(results[0].measurements.histogram("m"),
            ch_direct[0].histogram("m"));
  EXPECT_EQ(results[2].measurements.histogram("m"),
            ch_direct[1].histogram("m"));

  BatchEngine<StateVectorState> sv_engine{
      Simulator<StateVectorState>{StateVectorState(4), options}};
  Rng sv_rng(71);
  const std::vector<Circuit> sv_group{dense_b};
  const std::vector<Result> sv_direct =
      sv_engine.run_batch(sv_group, 4000, sv_rng);
  EXPECT_EQ(results[1].measurements.histogram("m"),
            sv_direct[0].histogram("m"));
}

TEST(Session, NearCliffordCircuitsRunOnExplicitStabilizerRequest) {
  // Clifford+T on the stabilizer backend takes the sum-over-Cliffords
  // hooks: per-trajectory sampling, one stochastic branch per rep.
  const Circuit circuit = dense_workload();
  Session session;
  const RunResult result = session.run(RunRequest()
                                           .with_circuit(circuit)
                                           .with_repetitions(2000)
                                           .with_seed(13)
                                           .with_backend(BackendId::kStabilizer));
  EXPECT_EQ(result.backend_id, BackendId::kStabilizer);
  EXPECT_EQ(result.measurements.repetitions(), 2000u);
  // The dictionary-batched path must be off: every repetition is its
  // own trajectory through a fresh Clifford branch.
  EXPECT_FALSE(result.stats.used_sample_parallelization);
  EXPECT_EQ(result.stats.trajectories, 2000u);
}

}  // namespace
}  // namespace bgls

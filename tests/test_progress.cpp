/// \file test_progress.cpp
/// Streaming partial histograms (core/progress.h): the canonical
/// update sequence is deterministic for a fixed seed — positions and
/// contents identical across thread counts — every update is a prefix
/// of the next, and the final update is exactly the run's histogram.

#include <gtest/gtest.h>

#include <vector>

#include "api/session.h"
#include "engine_test_helpers.h"

namespace bgls {
namespace {

using testing::batched_workload;
using testing::trajectory_workload;

/// Collects updates synchronously (the sink is invoked serially).
struct Recorder {
  std::vector<ProgressUpdate> updates;

  ProgressFn sink() {
    return [this](const ProgressUpdate& update) { updates.push_back(update); };
  }
};

/// a <= b pointwise (every count of `a` present in `b` with >= count).
bool is_prefix_of(const std::map<std::string, Counts>& a,
                  const std::map<std::string, Counts>& b) {
  for (const auto& [key, counts] : a) {
    const auto key_it = b.find(key);
    if (key_it == b.end()) return false;
    for (const auto& [bits, count] : counts) {
      const auto bit_it = key_it->second.find(bits);
      if (bit_it == key_it->second.end() || bit_it->second < count) {
        return false;
      }
    }
  }
  return true;
}

std::uint64_t total_counts(const ProgressUpdate& update,
                           const std::string& key) {
  std::uint64_t total = 0;
  const auto it = update.histograms.find(key);
  if (it == update.histograms.end()) return 0;
  for (const auto& [bits, count] : it->second) total += count;
  return total;
}

RunRequest streaming_request(Circuit circuit, std::uint64_t reps,
                             std::uint64_t every, int threads,
                             Recorder& recorder) {
  return RunRequest()
      .with_circuit(std::move(circuit))
      .with_repetitions(reps)
      .with_seed(17)
      .with_threads(threads)
      .with_rng_streams(4)
      .with_progress(every, recorder.sink());
}

void check_stream_invariants(const std::vector<ProgressUpdate>& updates,
                             const RunResult& result, std::uint64_t reps) {
  ASSERT_FALSE(updates.empty());
  // Monotone prefixes, final flag only on the last update.
  for (std::size_t i = 0; i < updates.size(); ++i) {
    EXPECT_EQ(updates[i].total_repetitions, reps);
    EXPECT_EQ(updates[i].final, i + 1 == updates.size());
    EXPECT_EQ(total_counts(updates[i], "m"),
              updates[i].completed_repetitions);
    if (i > 0) {
      EXPECT_LT(updates[i - 1].completed_repetitions,
                updates[i].completed_repetitions);
      EXPECT_TRUE(is_prefix_of(updates[i - 1].histograms,
                               updates[i].histograms));
    }
  }
  // The final update IS the run's histogram.
  const ProgressUpdate& last = updates.back();
  EXPECT_EQ(last.completed_repetitions, reps);
  EXPECT_EQ(last.histograms.at("m"), result.measurements.histogram("m"));
}

TEST(Progress, SerialTrajectoryStreamsEveryK) {
  Recorder recorder;
  Session session;
  const std::uint64_t reps = 100;
  const RunResult result = session.run(streaming_request(
      trajectory_workload(3, 0.05), reps, 10, /*threads=*/1, recorder));
  // Single shard: checkpoints at exactly 10, 20, ..., 100.
  ASSERT_EQ(recorder.updates.size(), 10u);
  for (std::size_t i = 0; i < recorder.updates.size(); ++i) {
    EXPECT_EQ(recorder.updates[i].completed_repetitions, 10 * (i + 1));
  }
  check_stream_invariants(recorder.updates, result, reps);
}

TEST(Progress, EngineTrajectorySequenceIdenticalAcrossThreadCounts) {
  const std::uint64_t reps = 400;
  std::vector<std::vector<ProgressUpdate>> sequences;
  RunResult reference;
  for (const int threads : {2, 4}) {
    Recorder recorder;
    Session session;
    reference = session.run(streaming_request(trajectory_workload(3, 0.05),
                                              reps, 25, threads, recorder));
    check_stream_invariants(recorder.updates, reference, reps);
    sequences.push_back(std::move(recorder.updates));
  }
  // Determinism: not just the final histogram — every update of the
  // stream matches position for position across thread counts.
  ASSERT_EQ(sequences[0].size(), sequences[1].size());
  for (std::size_t i = 0; i < sequences[0].size(); ++i) {
    EXPECT_EQ(sequences[0][i].completed_repetitions,
              sequences[1][i].completed_repetitions);
    EXPECT_EQ(sequences[0][i].histograms, sequences[1][i].histograms);
  }
}

TEST(Progress, StreamingIsObservationOnly) {
  // The same request without a sink yields bit-identical records.
  const std::uint64_t reps = 400;
  Recorder recorder;
  Session session;
  const RunResult streamed = session.run(streaming_request(
      trajectory_workload(3, 0.05), reps, 25, /*threads=*/2, recorder));
  Recorder unused;
  RunRequest plain = streaming_request(trajectory_workload(3, 0.05), reps, 25,
                                       /*threads=*/2, unused);
  plain.progress = {};
  const RunResult bare = session.run(plain);
  EXPECT_EQ(streamed.measurements.histogram("m"),
            bare.measurements.histogram("m"));
}

TEST(Progress, BatchedPathEmitsShardPrefixes) {
  // Dictionary batching completes all repetitions at the final gate:
  // the stream degenerates to per-shard prefixes, still deterministic
  // and still summing to the exact final histogram.
  Recorder recorder;
  Session session;
  const std::uint64_t reps = 1000;
  RunRequest request = streaming_request(batched_workload(4, 11, 10, 0.8),
                                         reps, 100, /*threads=*/2, recorder);
  request.with_backend(BackendId::kStateVector);
  const RunResult result = session.run(request);
  EXPECT_TRUE(result.stats.used_sample_parallelization);
  check_stream_invariants(recorder.updates, result, reps);
  // One update per (non-empty-prefix) shard: 4 streams configured.
  EXPECT_LE(recorder.updates.size(), 4u);
}

TEST(Progress, SerialBatchedEmitsSingleFinalUpdate) {
  Recorder recorder;
  Session session;
  const RunResult result = session.run(
      streaming_request(batched_workload(4, 11, 10, 0.8), 500, 50,
                        /*threads=*/1, recorder)
          .with_backend(BackendId::kStateVector));
  ASSERT_EQ(recorder.updates.size(), 1u);
  check_stream_invariants(recorder.updates, result, 500);
}

TEST(Progress, ZeroRepetitionsEmitsEmptyFinalUpdate) {
  Recorder recorder;
  Session session;
  const RunResult result = session.run(streaming_request(
      trajectory_workload(3, 0.05), 0, 10, /*threads=*/1, recorder));
  ASSERT_EQ(recorder.updates.size(), 1u);
  EXPECT_TRUE(recorder.updates[0].final);
  EXPECT_EQ(recorder.updates[0].completed_repetitions, 0u);
  EXPECT_EQ(result.measurements.repetitions(), 0u);
}

TEST(Progress, CustomHookFallbackStreamsShardCompletions) {
  // Custom hooks keep per-shard private evolution (multinomial split);
  // streaming reports shard completions and still prefixes exactly.
  const Circuit circuit = batched_workload(3, 5, 8, 0.9);
  Recorder recorder;
  SimulatorOptions options;
  options.num_threads = 2;
  options.num_rng_streams = 4;
  options.progress.every = 50;
  options.progress.sink = recorder.sink();
  Simulator<StateVectorState> sim(
      StateVectorState(3),
      [](const Operation& op, StateVectorState& state, Rng& rng) {
        apply_op(op, state, rng);
      },
      [](const StateVectorState& state, Bitstring b) {
        return compute_probability(state, b);
      },
      options);
  Rng rng(13);
  const Result result = sim.run(circuit, 300, rng);
  ASSERT_FALSE(recorder.updates.empty());
  EXPECT_TRUE(recorder.updates.back().final);
  EXPECT_EQ(recorder.updates.back().histograms.at("m"),
            result.histogram("m"));
}

TEST(ProgressCollector, NextCheckpointSchedule) {
  EXPECT_EQ(ProgressCollector::next_checkpoint(0, 100, 30), 30u);
  EXPECT_EQ(ProgressCollector::next_checkpoint(90, 100, 30), 100u);
  EXPECT_EQ(ProgressCollector::next_checkpoint(0, 10, 30), 10u);
  EXPECT_EQ(ProgressCollector::next_checkpoint(0, 0, 30), 0u);
  EXPECT_EQ(ProgressCollector::next_checkpoint(100, 100, 30), 100u);
}

}  // namespace
}  // namespace bgls

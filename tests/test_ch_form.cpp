// CH-form stabilizer simulator tests. The backbone is the phase-exact
// cross-check: every amplitude (including the global phase ω tracks)
// must match brute-force statevector evolution on random Clifford
// circuits across many seeds, widths, and depths.

#include "stabilizer/ch_form.h"

#include <gtest/gtest.h>

#include <cmath>

#include "circuit/random.h"
#include "statevector/state.h"
#include "test_helpers.h"
#include "util/error.h"

namespace bgls {
namespace {

constexpr double kInvSqrt2 = 0.70710678118654752440;

void expect_matches_statevector(const Circuit& circuit, int n,
                                double tol = 1e-9) {
  CHState ch(n);
  for (const auto& op : circuit.all_operations()) ch.apply(op);
  const auto reference = testing::ideal_statevector(circuit, n);
  const auto reconstructed = ch.to_statevector();
  for (std::size_t b = 0; b < reference.size(); ++b) {
    EXPECT_NEAR(std::abs(reconstructed[b] - reference[b]), 0.0, tol)
        << "amplitude " << to_string(b, n);
  }
}

TEST(ChForm, InitialState) {
  CHState ch(3);
  EXPECT_NEAR(std::abs(ch.amplitude(0) - Complex{1.0, 0.0}), 0.0, 1e-12);
  EXPECT_NEAR(ch.probability(from_string("100")), 0.0, 1e-12);
}

TEST(ChForm, NonZeroInitialState) {
  CHState ch(3, from_string("101"));
  EXPECT_NEAR(ch.probability(from_string("101")), 1.0, 1e-12);
  EXPECT_NEAR(ch.probability(from_string("000")), 0.0, 1e-12);
}

TEST(ChForm, HadamardAmplitudes) {
  CHState ch(1);
  ch.apply_h(0);
  EXPECT_NEAR(std::abs(ch.amplitude(0) - Complex{kInvSqrt2, 0.0}), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(ch.amplitude(1) - Complex{kInvSqrt2, 0.0}), 0.0, 1e-12);
}

TEST(ChForm, SingleGatePhases) {
  // |+⟩ then S: amplitudes (1, i)/√2.
  CHState ch(1);
  ch.apply_h(0);
  ch.apply_s(0);
  EXPECT_NEAR(std::abs(ch.amplitude(1) - Complex{0.0, kInvSqrt2}), 0.0, 1e-12);
  // Y|0⟩ = i|1⟩.
  CHState chy(1);
  chy.apply_y(0);
  EXPECT_NEAR(std::abs(chy.amplitude(1) - Complex{0.0, 1.0}), 0.0, 1e-12);
  // Z|+⟩ = |−⟩.
  CHState chz(1);
  chz.apply_h(0);
  chz.apply_z(0);
  EXPECT_NEAR(std::abs(chz.amplitude(1) + Complex{kInvSqrt2, 0.0}), 0.0, 1e-12);
}

TEST(ChForm, GhzState) {
  CHState ch(3);
  for (const auto& op : ghz_circuit(3).all_operations()) ch.apply(op);
  EXPECT_NEAR(ch.probability(from_string("000")), 0.5, 1e-12);
  EXPECT_NEAR(ch.probability(from_string("111")), 0.5, 1e-12);
  EXPECT_NEAR(ch.probability(from_string("010")), 0.0, 1e-12);
}

TEST(ChForm, EveryGateMatchesStateVectorFromScrambledState) {
  // Apply each supported gate after a fixed scrambling prefix and check
  // all amplitudes (phase included).
  const int n = 3;
  const std::vector<Operation> prefix{h(0), s(1),        cnot(0, 1),
                                      h(2), cnot(2, 0),  sdg(1),
                                      h(1), cz(1, 2)};
  const std::vector<Operation> candidates{
      x(0),  x(2),       y(1),        z(0),          h(1),
      s(2),  sdg(0),     cnot(1, 2),  cnot(2, 1),    cz(0, 2),
      swap(0, 2),        Operation(Gate::SqrtX(), {1}),
      Operation(Gate::I(), {0})};
  for (const auto& op : candidates) {
    Circuit circuit;
    for (const auto& p : prefix) circuit.append(p);
    circuit.append(op);
    expect_matches_statevector(circuit, n);
  }
}

class ChFormRandomClifford
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(ChFormRandomClifford, AllAmplitudesMatchStateVector) {
  const auto [n, depth, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 7919 + 13);
  const Circuit circuit = random_clifford_circuit(n, depth, rng);
  expect_matches_statevector(circuit, n);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ChFormRandomClifford,
    ::testing::Combine(::testing::Values(2, 3, 5, 8),    // width
                       ::testing::Values(5, 20, 60),     // depth
                       ::testing::Range(0, 5)));         // seeds

TEST(ChForm, FullPauliGroupCircuitMatches) {
  // Stress phases: chains with many Y and Z gates interleaved.
  Rng rng(31);
  RandomCircuitOptions options;
  options.num_moments = 40;
  options.op_density = 0.9;
  options.gate_domain = {Gate::X(),  Gate::Y(), Gate::Z(),   Gate::H(),
                         Gate::S(),  Gate::Sdg(), Gate::SqrtX(),
                         Gate::CX(), Gate::CZ(), Gate::Swap()};
  const Circuit circuit = generate_random_circuit(4, options, rng);
  expect_matches_statevector(circuit, 4);
}

TEST(ChForm, NormIsPreservedByRandomCircuits) {
  Rng rng(17);
  const Circuit circuit = random_clifford_circuit(6, 50, rng);
  CHState ch(6);
  for (const auto& op : circuit.all_operations()) ch.apply(op);
  double total = 0.0;
  for (Bitstring b = 0; b < (1u << 6); ++b) total += ch.probability(b);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ChForm, RejectsNonCliffordGate) {
  CHState ch(2);
  EXPECT_THROW(ch.apply(t(0)), UnsupportedOperationError);
  EXPECT_THROW(ch.apply(rz(0.3, 0)), UnsupportedOperationError);
  EXPECT_THROW(ch.apply(ccx(0, 1, 0)), ValueError);  // duplicate qubits
}

TEST(ChForm, DeterministicMeasurementOnBasisState) {
  CHState ch(2, from_string("10"));
  int outcome = -1;
  EXPECT_TRUE(ch.is_deterministic_z(0, &outcome));
  EXPECT_EQ(outcome, 1);
  EXPECT_TRUE(ch.is_deterministic_z(1, &outcome));
  EXPECT_EQ(outcome, 0);
}

TEST(ChForm, RandomMeasurementOnPlusState) {
  CHState ch(1);
  ch.apply_h(0);
  EXPECT_FALSE(ch.is_deterministic_z(0));
}

TEST(ChForm, ProjectionCollapsesGhz) {
  CHState ch(3);
  for (const auto& op : ghz_circuit(3).all_operations()) ch.apply(op);
  const double p = ch.project_z(0, 1);
  EXPECT_NEAR(p, 0.5, 1e-12);
  // Collapsed onto |111⟩ (normalized).
  EXPECT_NEAR(ch.probability(from_string("111")), 1.0, 1e-9);
  int outcome = -1;
  EXPECT_TRUE(ch.is_deterministic_z(2, &outcome));
  EXPECT_EQ(outcome, 1);
}

TEST(ChForm, ProjectionOntoImpossibleOutcomeThrows) {
  CHState ch(1);  // |0⟩
  EXPECT_THROW(ch.project_z(0, 1), ValueError);
}

TEST(ChForm, MeasureZStatistics) {
  Rng rng(23);
  int ones = 0;
  const int reps = 20000;
  for (int i = 0; i < reps; ++i) {
    CHState ch(1);
    ch.apply_h(0);
    ones += ch.measure_z(0, rng);
  }
  EXPECT_NEAR(ones / static_cast<double>(reps), 0.5, 0.02);
}

TEST(ChForm, SequentialMeasurementMatchesDistribution) {
  // Measuring all qubits of a random Clifford state one by one samples
  // its exact output distribution.
  Rng circuit_rng(41);
  const int n = 4;
  const Circuit circuit = random_clifford_circuit(n, 25, circuit_rng);
  CHState final_state(n);
  for (const auto& op : circuit.all_operations()) final_state.apply(op);

  Rng rng(43);
  Counts counts;
  const int reps = 30000;
  for (int i = 0; i < reps; ++i) {
    CHState working = final_state;
    Bitstring bits = 0;
    for (int q = 0; q < n; ++q) {
      bits = with_bit(bits, q, working.measure_z(q, rng));
    }
    ++counts[bits];
  }
  const auto ideal = testing::ideal_distribution(circuit, n);
  EXPECT_LT(total_variation_distance(normalize(counts), ideal), 0.02);
}

TEST(ChForm, ProjectMultipleQubits) {
  CHState ch(3);
  for (const auto& op : ghz_circuit(3).all_operations()) ch.apply(op);
  const std::vector<Qubit> qs{0, 1};
  ch.project(qs, from_string("110"));
  EXPECT_NEAR(ch.probability(from_string("111")), 1.0, 1e-9);
}

TEST(ChForm, ProbabilityAfterProjectionsStaysNormalized) {
  Rng rng(53);
  const Circuit circuit = random_clifford_circuit(5, 30, rng);
  CHState ch(5);
  for (const auto& op : circuit.all_operations()) ch.apply(op);
  Rng mrng(59);
  for (int q = 0; q < 5; ++q) ch.measure_z(q, mrng);
  double total = 0.0;
  for (Bitstring b = 0; b < (1u << 5); ++b) total += ch.probability(b);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ChForm, WideRegisterSmoke) {
  // 60 qubits: way beyond statevector reach; checks the bit-packed
  // updates hold up at width and amplitudes stay sane.
  const int n = 60;
  CHState ch(n);
  for (int q = 0; q < n; ++q) ch.apply_h(q);
  for (int q = 0; q + 1 < n; ++q) ch.apply_cx(q, q + 1);
  for (int q = 0; q < n; ++q) ch.apply_s(q);
  const double p = ch.probability(0);
  EXPECT_GT(p, 0.0);
  EXPECT_LT(p, 1.0);
}

TEST(ChForm, RejectsOversizedRegister) {
  EXPECT_THROW(CHState(64), ValueError);
  EXPECT_THROW(CHState(0), ValueError);
}

TEST(ChForm, SwapMatchesThreeCnots) {
  Rng rng(61);
  const Circuit prefix = random_clifford_circuit(3, 10, rng);
  CHState a(3), b(3);
  for (const auto& op : prefix.all_operations()) {
    a.apply(op);
    b.apply(op);
  }
  a.apply_swap(0, 2);
  b.apply_cx(0, 2);
  b.apply_cx(2, 0);
  b.apply_cx(0, 2);
  for (Bitstring x = 0; x < 8; ++x) {
    EXPECT_NEAR(std::abs(a.amplitude(x) - b.amplitude(x)), 0.0, 1e-12);
  }
}

}  // namespace
}  // namespace bgls

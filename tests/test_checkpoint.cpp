/// \file test_checkpoint.cpp
/// Checkpoint/resume (core/checkpoint.h): the crash-safety invariant —
/// resuming from a checkpoint captured at ANY boundary and finishing
/// produces a final histogram and byte-stable report counters identical
/// to the uninterrupted run — pinned across the serial, engine
/// (threads {2, 8}, cross-thread-count), and dictionary-batched paths,
/// through the runtime Session on all four builtin backends, plus the
/// JSON round trip and shape-mismatch rejection.

#include <gtest/gtest.h>

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "api/session.h"
#include "core/checkpoint.h"
#include "engine_test_helpers.h"
#include "util/json_parser.h"

namespace bgls {
namespace {

using testing::batched_workload;
using testing::trajectory_workload;
using testing::with_terminal_measurement;

/// Thread-safe collector for every checkpoint a run emits.
class Checkpoints {
 public:
  void operator()(const RunCheckpoint& checkpoint) {
    const std::lock_guard<std::mutex> lock(mutex_);
    all_.push_back(checkpoint);
  }

  std::function<void(const RunCheckpoint&)> sink() {
    return [this](const RunCheckpoint& c) { (*this)(c); };
  }

  [[nodiscard]] const std::vector<RunCheckpoint>& all() const { return all_; }

 private:
  std::mutex mutex_;
  std::vector<RunCheckpoint> all_;
};

void expect_same_run(const RunResult& resumed, const RunResult& baseline,
                     const std::string& context) {
  EXPECT_EQ(resumed.measurements.histogram("m"),
            baseline.measurements.histogram("m"))
      << context;
  const CheckpointStats a = checkpoint_stats_from(resumed.stats);
  const CheckpointStats b = checkpoint_stats_from(baseline.stats);
  EXPECT_EQ(a.state_applications, b.state_applications) << context;
  EXPECT_EQ(a.probability_evaluations, b.probability_evaluations) << context;
  EXPECT_EQ(a.max_dictionary_size, b.max_dictionary_size) << context;
  EXPECT_EQ(a.trajectories, b.trajectories) << context;
  EXPECT_EQ(a.diagonal_updates_skipped, b.diagonal_updates_skipped) << context;
  EXPECT_EQ(resumed.backend_name, baseline.backend_name) << context;
}

/// Runs `request` uninterrupted, then resumes from EVERY checkpoint it
/// emitted (including the complete final one) and asserts each resumed
/// run reproduces the baseline exactly.
void check_resume_at_every_boundary(const RunRequest& prototype,
                                    std::uint64_t every,
                                    std::size_t min_checkpoints = 2) {
  Session session;
  Checkpoints checkpoints;
  RunRequest instrumented = prototype;
  instrumented.checkpoint.every = every;
  instrumented.checkpoint.sink = checkpoints.sink();
  const RunResult baseline = session.run(std::move(instrumented));
  ASSERT_GE(checkpoints.all().size(), min_checkpoints);

  for (std::size_t i = 0; i < checkpoints.all().size(); ++i) {
    RunRequest resume_request = prototype;
    resume_request.resume =
        std::make_shared<const RunCheckpoint>(checkpoints.all()[i]);
    const RunResult resumed = session.run(std::move(resume_request));
    expect_same_run(resumed, baseline,
                    "checkpoint " + std::to_string(i) + "/" +
                        std::to_string(checkpoints.all().size()));
  }
}

RunRequest trajectory_request(int threads) {
  return RunRequest()
      .with_circuit(trajectory_workload(3, 0.05))
      .with_repetitions(120)
      .with_seed(7)
      .with_threads(threads)
      .with_rng_streams(8);
}

RunRequest batched_request(int threads) {
  return RunRequest()
      .with_circuit(batched_workload(4, 21, 8, 0.9))
      .with_repetitions(200)
      .with_seed(9)
      .with_threads(threads)
      .with_rng_streams(8);
}

TEST(Checkpoint, SerialTrajectoryResumeAtEveryBoundary) {
  check_resume_at_every_boundary(trajectory_request(1), 20);
}

TEST(Checkpoint, EngineTrajectoryResumeAtEveryBoundaryTwoThreads) {
  check_resume_at_every_boundary(trajectory_request(2), 25);
}

TEST(Checkpoint, EngineTrajectoryResumeAtEveryBoundaryEightThreads) {
  check_resume_at_every_boundary(trajectory_request(8), 25);
}

TEST(Checkpoint, SerialBatchedResumeShardAtomic) {
  // The dictionary-batched paths complete a shard atomically:
  // checkpoints are initial (0 completed) or final snapshots, and both
  // must resume to the identical run.
  Session session;
  Checkpoints checkpoints;
  RunRequest instrumented = batched_request(1);
  instrumented.checkpoint.every = 50;
  instrumented.checkpoint.sink = checkpoints.sink();
  const RunResult baseline = session.run(std::move(instrumented));
  ASSERT_GE(checkpoints.all().size(), 1u);
  for (const RunCheckpoint& checkpoint : checkpoints.all()) {
    for (const ShardCheckpoint& shard : checkpoint.shards) {
      EXPECT_TRUE(shard.completed == 0 || shard.completed == shard.total);
    }
  }
  check_resume_at_every_boundary(batched_request(1), 50, 1);
  (void)baseline;
}

TEST(Checkpoint, EngineBatchedResumeAtEveryBoundary) {
  check_resume_at_every_boundary(batched_request(4), 50, 1);
}

TEST(Checkpoint, EngineResumeOnDifferentThreadCount) {
  // Checkpoints record per-shard stream state, not threads: a snapshot
  // produced on 2 threads resumes on 8 (and vice versa) bit-identical.
  Session session;
  const RunResult baseline = session.run(trajectory_request(2));

  Checkpoints checkpoints;
  RunRequest instrumented = trajectory_request(2);
  instrumented.checkpoint.every = 30;
  instrumented.checkpoint.sink = checkpoints.sink();
  (void)session.run(std::move(instrumented));
  ASSERT_GE(checkpoints.all().size(), 2u);
  const auto middle = std::make_shared<const RunCheckpoint>(
      checkpoints.all()[checkpoints.all().size() / 2]);

  const RunResult on8 =
      session.run(trajectory_request(8).with_resume(middle));
  expect_same_run(on8, baseline, "resume 2->8 threads");
  const RunResult on2 =
      session.run(trajectory_request(2).with_resume(middle));
  expect_same_run(on2, baseline, "resume 2->2 threads");
}

TEST(Checkpoint, SessionResumesOnEveryBuiltinBackend) {
  // Pure-Clifford GHZ so the stabilizer backend qualifies; per-
  // trajectory serial path on every backend via no-batch.
  const Circuit circuit = with_terminal_measurement(ghz_circuit(3), 3);
  for (const BackendId backend :
       {BackendId::kStateVector, BackendId::kDensityMatrix,
        BackendId::kStabilizer, BackendId::kMps}) {
    RunRequest prototype = RunRequest()
                               .with_circuit(circuit)
                               .with_repetitions(80)
                               .with_seed(5)
                               .with_backend(backend)
                               .with_sample_parallelization(false);
    check_resume_at_every_boundary(prototype, 16);
  }
}

TEST(Checkpoint, JsonRoundTripPreservesEverything) {
  Session session;
  Checkpoints checkpoints;
  RunRequest instrumented = trajectory_request(2);
  instrumented.checkpoint.every = 30;
  instrumented.checkpoint.sink = checkpoints.sink();
  const RunResult baseline = session.run(std::move(instrumented));
  ASSERT_GE(checkpoints.all().size(), 2u);
  const RunCheckpoint& original =
      checkpoints.all()[checkpoints.all().size() / 2];

  const std::string json = original.to_json();
  const RunCheckpoint decoded = RunCheckpoint::parse(json);
  EXPECT_EQ(decoded.to_json(), json);  // byte-stable round trip
  EXPECT_EQ(decoded.mode, original.mode);
  EXPECT_EQ(decoded.total_repetitions, original.total_repetitions);
  EXPECT_EQ(decoded.completed_repetitions(),
            original.completed_repetitions());
  ASSERT_EQ(decoded.shards.size(), original.shards.size());
  for (std::size_t i = 0; i < decoded.shards.size(); ++i) {
    EXPECT_EQ(decoded.shards[i].rng_state, original.shards[i].rng_state);
    EXPECT_EQ(decoded.shards[i].histograms, original.shards[i].histograms);
  }

  // The decoded checkpoint is a working resume point.
  const RunResult resumed = session.run(trajectory_request(2).with_resume(
      std::make_shared<const RunCheckpoint>(decoded)));
  expect_same_run(resumed, baseline, "resume from JSON round trip");
}

TEST(Checkpoint, MalformedJsonIsRejected) {
  EXPECT_THROW((void)RunCheckpoint::parse("not json"), ParseError);
  // Parses as JSON but is not a checkpoint (missing 'mode'/'shards').
  EXPECT_THROW((void)RunCheckpoint::parse("{\"version\":1}"), ValueError);
}

TEST(Checkpoint, MismatchedResumeIsRejected) {
  Session session;
  Checkpoints checkpoints;
  RunRequest instrumented = trajectory_request(1);
  instrumented.checkpoint.every = 20;
  instrumented.checkpoint.sink = checkpoints.sink();
  (void)session.run(std::move(instrumented));
  ASSERT_GE(checkpoints.all().size(), 1u);
  const auto checkpoint =
      std::make_shared<const RunCheckpoint>(checkpoints.all().front());

  // Wrong total repetitions.
  EXPECT_THROW((void)session.run(trajectory_request(1)
                                     .with_repetitions(121)
                                     .with_resume(checkpoint)),
               ValueError);
  // Wrong path: a serial checkpoint cannot resume an engine run.
  EXPECT_THROW(
      (void)session.run(trajectory_request(2).with_resume(checkpoint)),
      ValueError);
}

}  // namespace
}  // namespace bgls

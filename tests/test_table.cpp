// Tests for console table / histogram rendering.

#include "util/table.h"

#include <gtest/gtest.h>

#include <sstream>

#include "util/error.h"

namespace bgls {
namespace {

TEST(Table, RendersAlignedColumns) {
  ConsoleTable table({"n", "runtime"});
  table.add_row({"2", "1.5 ms"});
  table.add_row({"16", "12.0 ms"});
  std::ostringstream oss;
  table.print(oss);
  const std::string out = oss.str();
  EXPECT_NE(out.find("| n  | runtime |"), std::string::npos);
  EXPECT_NE(out.find("| 16 | 12.0 ms |"), std::string::npos);
}

TEST(Table, RejectsMismatchedRow) {
  ConsoleTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only one"}), ValueError);
}

TEST(Table, DurationFormatting) {
  EXPECT_EQ(ConsoleTable::duration(2.5), "2.50 s");
  EXPECT_EQ(ConsoleTable::duration(0.0025), "2.50 ms");
  EXPECT_EQ(ConsoleTable::duration(2.5e-6), "2.50 us");
  EXPECT_EQ(ConsoleTable::duration(2.5e-9), "2.50 ns");
}

TEST(Table, BarChartScalesToWidth) {
  std::ostringstream oss;
  print_bar_chart(oss, {"a", "b"}, {1.0, 2.0}, 10);
  const std::string out = oss.str();
  EXPECT_NE(out.find("##########"), std::string::npos);  // the max bar
  EXPECT_NE(out.find("#####"), std::string::npos);
}

TEST(Table, BarChartHandlesAllZeros) {
  std::ostringstream oss;
  print_bar_chart(oss, {"a"}, {0.0});
  EXPECT_NE(oss.str().find("a"), std::string::npos);
}

TEST(Table, HistogramShowsBitstrings) {
  Counts counts{{from_string("00"), 5}, {from_string("11"), 7}};
  std::ostringstream oss;
  print_histogram(oss, counts, 2);
  const std::string out = oss.str();
  EXPECT_NE(out.find("00"), std::string::npos);
  EXPECT_NE(out.find("11"), std::string::npos);
}

}  // namespace
}  // namespace bgls

// Tests for the engine's asynchronous job API: futures resolve with the
// merged Result and the job's own RunStats, concurrent submission from
// many threads is race-free, shard exceptions propagate through the
// future (not std::terminate), and the pool behind it all is genuinely
// shared and long-lived.

#include <gtest/gtest.h>

#include <cstdint>
#include <future>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "circuit/circuit.h"
#include "circuit/noise.h"
#include "circuit/random.h"
#include "core/simulator.h"
#include "engine/context.h"
#include "engine/engine.h"
#include "engine_test_helpers.h"
#include "statevector/state.h"
#include "util/error.h"

namespace bgls {
namespace {

using testing::with_terminal_measurement;

constexpr std::uint64_t kSeed = 4321;

Circuit batched_workload(int n) {
  return testing::batched_workload(n, /*circuit_seed=*/23, /*num_moments=*/10,
                                   /*op_density=*/0.7);
}

Circuit trajectory_workload(int n) {
  return testing::trajectory_workload(n, /*depolarize_p=*/0.05);
}

Simulator<StateVectorState> make_simulator(int n, int num_threads,
                                           std::uint64_t num_streams = 8) {
  return testing::make_sv_simulator(n, num_threads, num_streams);
}

TEST(BatchEngineAsync, SubmitResolvesWithSyncResultAndPerStreamStats) {
  const int n = 3;
  const Circuit circuit = trajectory_workload(n);
  const std::uint64_t reps = 120;

  BatchEngine<StateVectorState> engine{make_simulator(n, 2)};
  const Result sync = engine.run(circuit, reps, kSeed);
  const RunStats sync_stats = engine.last_run_stats();

  auto future = engine.submit(circuit, reps, kSeed);
  const auto outcome = future.get();

  EXPECT_EQ(outcome.result.histogram("m"), sync.histogram("m"));
  EXPECT_EQ(outcome.result.values("m"), sync.values("m"));
  ASSERT_EQ(outcome.stats.per_stream.size(), sync_stats.per_stream.size());
  std::size_t trajectories = 0;
  for (std::size_t i = 0; i < outcome.stats.per_stream.size(); ++i) {
    const StreamStats& async_shard = outcome.stats.per_stream[i];
    const StreamStats& sync_shard = sync_stats.per_stream[i];
    EXPECT_EQ(async_shard.trajectories, sync_shard.trajectories);
    EXPECT_EQ(async_shard.state_applications, sync_shard.state_applications);
    EXPECT_EQ(async_shard.probability_evaluations,
              sync_shard.probability_evaluations);
    trajectories += async_shard.trajectories;
  }
  EXPECT_EQ(trajectories, reps);
  EXPECT_EQ(outcome.stats.trajectories, sync_stats.trajectories);
  EXPECT_EQ(outcome.stats.state_applications, sync_stats.state_applications);
}

TEST(BatchEngineAsync, BatchedPathPerStreamCarriesProbabilityEvaluations) {
  const int n = 4;
  const Circuit circuit = batched_workload(n);
  BatchEngine<StateVectorState> engine{make_simulator(n, 2)};
  auto outcome = engine.submit(circuit, 5000, kSeed).get();
  ASSERT_FALSE(outcome.stats.per_stream.empty());
  EXPECT_TRUE(outcome.stats.used_sample_parallelization);
  // One shared snapshot evolution serves every shard.
  EXPECT_EQ(outcome.stats.trajectories, 1u);
  std::size_t evaluations = 0;
  for (const StreamStats& shard : outcome.stats.per_stream) {
    evaluations += shard.probability_evaluations;
  }
  EXPECT_EQ(evaluations, outcome.stats.probability_evaluations);
  EXPECT_GT(evaluations, 0u);
}

TEST(BatchEngineAsync, RunAsyncMatchesSyncRun) {
  const int n = 4;
  const Circuit circuit = batched_workload(n);
  BatchEngine<StateVectorState> engine{make_simulator(n, 2)};
  const Result sync = engine.run(circuit, 3000, kSeed);
  auto future = engine.run_async(circuit, 3000, kSeed);
  EXPECT_EQ(future.get().histogram("m"), sync.histogram("m"));
}

TEST(BatchEngineAsync, SimulatorRunAsyncMatchesRun) {
  const int n = 3;
  const Circuit circuit = trajectory_workload(n);
  Simulator<StateVectorState> sim = make_simulator(n, 2);
  const Counts sync = sim.run(circuit, 200, kSeed).histogram("m");
  auto future = sim.run_async(circuit, 200, kSeed);
  EXPECT_EQ(future.get().histogram("m"), sync);
}

TEST(BatchEngineAsync, SimulatorRunAsyncMatchesRunOnSerialPaths) {
  // run() stays serial when num_threads == 1 or repetitions <= 1;
  // run_async must reproduce those paths bit for bit too, not silently
  // reroute through the engine's different stream layout.
  const int n = 3;
  const Circuit circuit = trajectory_workload(n);
  for (std::uint64_t seed = kSeed; seed < kSeed + 5; ++seed) {
    Simulator<StateVectorState> serial = make_simulator(n, 1);
    EXPECT_EQ(serial.run_async(circuit, 200, seed).get().histogram("m"),
              serial.run(circuit, 200, seed).histogram("m"));

    Simulator<StateVectorState> single_rep = make_simulator(n, 4);
    EXPECT_EQ(single_rep.run_async(circuit, 1, seed).get().histogram("m"),
              single_rep.run(circuit, 1, seed).histogram("m"));
  }
}

TEST(BatchEngineAsync, ManyJobsFromManyThreadsAreRaceFreeAndDeterministic) {
  const int n = 3;
  const Circuit circuit = trajectory_workload(n);
  const std::uint64_t reps = 60;
  constexpr int kThreads = 4;
  constexpr int kJobsPerThread = 6;

  // Reference histograms computed serially, one per distinct seed.
  BatchEngine<StateVectorState> reference_engine{make_simulator(n, 2)};
  std::vector<Counts> reference;
  for (int j = 0; j < kThreads * kJobsPerThread; ++j) {
    reference.push_back(
        reference_engine.run(circuit, reps, kSeed + j).histogram("m"));
  }

  BatchEngine<StateVectorState> engine{make_simulator(n, 2)};
  std::vector<std::future<BatchEngine<StateVectorState>::JobOutcome>> futures(
      static_cast<std::size_t>(kThreads * kJobsPerThread));
  std::vector<std::thread> submitters;
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      for (int j = 0; j < kJobsPerThread; ++j) {
        const int job = t * kJobsPerThread + j;
        futures[static_cast<std::size_t>(job)] =
            engine.submit(circuit, reps, kSeed + job);
      }
    });
  }
  for (std::thread& submitter : submitters) submitter.join();
  for (int job = 0; job < kThreads * kJobsPerThread; ++job) {
    const auto outcome = futures[static_cast<std::size_t>(job)].get();
    EXPECT_EQ(outcome.result.histogram("m"),
              reference[static_cast<std::size_t>(job)])
        << "job " << job << " diverged from its serial reference";
  }
}

TEST(BatchEngineAsync, AsyncWorksOnSingleThreadEngine) {
  const int n = 2;
  const Circuit circuit =
      with_terminal_measurement(ghz_circuit(n), n, "m");
  BatchEngine<StateVectorState> engine{make_simulator(n, 1)};
  const Counts sync = engine.run(circuit, 300, kSeed).histogram("m");
  EXPECT_EQ(engine.submit(circuit, 300, kSeed).get().result.histogram("m"),
            sync);
}

TEST(BatchEngineAsync, JobOutlivesTheEngineThatSubmittedIt) {
  const int n = 3;
  const Circuit circuit = trajectory_workload(n);
  Counts sync;
  std::future<Result> future;
  {
    BatchEngine<StateVectorState> engine{make_simulator(n, 2)};
    sync = engine.run(circuit, 150, kSeed).histogram("m");
    future = engine.run_async(circuit, 150, kSeed);
    // The engine dies here; the job holds the context (pool) alive.
  }
  EXPECT_EQ(future.get().histogram("m"), sync);
}

// A simulator whose apply hook always throws: every shard fails.
Simulator<StateVectorState> throwing_simulator(int n, int num_threads) {
  SimulatorOptions options;
  options.num_threads = num_threads;
  options.num_rng_streams = 4;
  return Simulator<StateVectorState>{
      StateVectorState(n),
      [](const Operation&, StateVectorState&, Rng&) {
        throw std::runtime_error("shard exploded");
      },
      [](const StateVectorState& state, Bitstring b) {
        return compute_probability(state, b);
      },
      options};
}

TEST(BatchEngineAsync, TrajectoryShardExceptionPropagatesThroughFuture) {
  // Mid-circuit measurement + feed-forward forces the per-trajectory
  // path, so the throw happens inside pool shards.
  Circuit circuit;
  circuit.append(h(0));
  circuit.append(measure({0}, "mid"));
  circuit.append(x(1).controlled_by_measurement("mid"));
  circuit.append(measure({1}, "out"));

  BatchEngine<StateVectorState> engine{throwing_simulator(2, 2)};
  auto future = engine.submit(circuit, 50, kSeed);
  EXPECT_THROW(future.get(), std::runtime_error);
  // The engine (and its pool) stay usable after a failed job.
  Rng rng(kSeed);
  EXPECT_THROW(engine.run(circuit, 50, rng), std::runtime_error);
  BatchEngine<StateVectorState> healthy{make_simulator(2, 2)};
  EXPECT_EQ(healthy.run(circuit, 50, kSeed).repetitions(), 50u);
}

TEST(BatchEngineAsync, BatchedEvolutionExceptionPropagatesThroughFuture) {
  // A unitary terminal-measurement circuit with custom (non-native)
  // hooks takes the per-shard batched fallback; the evolution throw
  // inside a shard must surface from the future.
  const Circuit circuit =
      with_terminal_measurement(ghz_circuit(2), 2, "m");
  BatchEngine<StateVectorState> engine{throwing_simulator(2, 2)};
  auto future = engine.submit(circuit, 100, kSeed);
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(BatchEngineAsync, SnapshotPathExceptionPropagatesThroughFuture) {
  // Native hooks route a unitary terminal-measurement circuit through
  // the snapshot-sharing path inside the async job; the job's
  // validation throw (no measurements to sample) must surface from the
  // future, and zero-repetition jobs must validate too — shards that
  // never run cannot swallow the error.
  BatchEngine<StateVectorState> engine{make_simulator(2, 2)};
  EXPECT_THROW(engine.submit(ghz_circuit(2), 100, kSeed).get(), ValueError);
  EXPECT_THROW(engine.submit(ghz_circuit(2), 0, kSeed).get(), ValueError);
  Rng rng(kSeed);
  EXPECT_THROW(engine.run(ghz_circuit(2), 0, rng), ValueError);
  // The engine stays usable afterwards.
  const Circuit good = with_terminal_measurement(ghz_circuit(2), 2, "m");
  EXPECT_EQ(engine.run(good, 50, kSeed).repetitions(), 50u);
}

TEST(EngineContext, SharedCacheReturnsOnePoolPerThreadCount) {
  const std::shared_ptr<EngineContext> a = EngineContext::shared(3);
  const std::shared_ptr<EngineContext> b = EngineContext::shared(3);
  const std::shared_ptr<EngineContext> c = EngineContext::shared(5);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_NE(a.get(), c.get());
  EXPECT_EQ(a->num_threads(), 3);
  // num_threads - 1 workers; the synchronous caller is the +1.
  EXPECT_EQ(a->pool().size(), 2);
  EXPECT_EQ(EngineContext::shared(1)->pool().size(), 1);
}

TEST(EngineContext, SimulatorCachesAndSharesItsContext) {
  const int n = 3;
  const Circuit circuit = trajectory_workload(n);
  Simulator<StateVectorState> sim = make_simulator(n, 2);
  EXPECT_EQ(sim.engine_context(), nullptr);
  Rng rng(kSeed);
  sim.run(circuit, 40, rng);
  const std::shared_ptr<EngineContext> context = sim.engine_context();
  ASSERT_NE(context, nullptr);
  EXPECT_EQ(context, EngineContext::shared(2));

  // A second run reuses the same pool instead of building a new one.
  Rng rng2(kSeed);
  sim.run(circuit, 40, rng2);
  EXPECT_EQ(sim.engine_context(), context);

  // Copies share the context — the copy/move story for the cached pool.
  Simulator<StateVectorState> copy = sim;
  EXPECT_EQ(copy.engine_context(), context);
}

TEST(EngineContext, ReuseOptOutBuildsPrivatePools) {
  const int n = 3;
  const Circuit circuit = trajectory_workload(n);
  SimulatorOptions options;
  options.num_threads = 2;
  options.num_rng_streams = 4;
  options.reuse_thread_pool = false;
  Simulator<StateVectorState> sim{StateVectorState(n), options};
  Rng rng(kSeed);
  const Counts fresh = sim.run(circuit, 80, rng).histogram("m");
  // No context is cached on the simulator in opt-out mode.
  EXPECT_EQ(sim.engine_context(), nullptr);

  // Opting out never changes the sampled values.
  Simulator<StateVectorState> reusing = make_simulator(n, 2, 4);
  Rng rng2(kSeed);
  EXPECT_EQ(reusing.run(circuit, 80, rng2).histogram("m"), fresh);
}

}  // namespace
}  // namespace bgls

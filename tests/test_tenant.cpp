/// \file test_tenant.cpp
/// Multi-tenant scheduling (service/scheduler.h): weighted-fair shares
/// converge to the configured weight ratio under saturation, per-tenant
/// queued/running caps hold, and per-tenant accounting survives the
/// whole job lifecycle.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "engine_test_helpers.h"
#include "service/scheduler.h"

namespace bgls {
namespace {

using namespace std::chrono_literals;
using service::JobInfo;
using service::JobScheduler;
using service::JobState;
using service::SchedulerOptions;
using service::TenantQuota;
using service::TenantQuotaError;

RunRequest small_job(std::uint64_t seed = 5, std::uint64_t reps = 400) {
  return RunRequest()
      .with_circuit(testing::trajectory_workload(3, 0.05))
      .with_repetitions(reps)
      .with_seed(seed);
}

RunRequest blocker_job() { return small_job(1, 500'000'000ULL); }

std::uint64_t start_blocker(JobScheduler& scheduler,
                            const std::string& tenant = "") {
  const std::uint64_t id =
      scheduler.submit(blocker_job().with_tenant(tenant));
  while (scheduler.info(id).state == JobState::kQueued) {
    std::this_thread::sleep_for(1ms);
  }
  return id;
}

TEST(TenantScheduling, WeightedFairConvergesToWeightRatio) {
  // Tenant "a" at weight 2, "b" at weight 1, equal-cost jobs, one
  // runner: under saturation the dispatch order must interleave 2:1.
  // All twelve jobs are admitted while a blocker owns the runner, so
  // their virtual-time tags — cost/weight per admitted job — are fully
  // deterministic, and so is the dispatch order.
  SchedulerOptions options;
  options.max_concurrent_jobs = 1;
  options.tenant_quotas["a"] = TenantQuota{2.0, 0, 0};
  options.tenant_quotas["b"] = TenantQuota{1.0, 0, 0};
  JobScheduler scheduler(options);

  const std::uint64_t blocker = start_blocker(scheduler);
  std::vector<std::uint64_t> a_jobs;
  std::vector<std::uint64_t> b_jobs;
  for (int i = 0; i < 6; ++i) {
    a_jobs.push_back(scheduler.submit(
        small_job(static_cast<std::uint64_t>(i)).with_tenant("a")));
    b_jobs.push_back(scheduler.submit(
        small_job(static_cast<std::uint64_t>(100 + i)).with_tenant("b")));
  }
  scheduler.cancel(blocker);
  for (const std::uint64_t id : a_jobs) {
    EXPECT_EQ(scheduler.wait(id).state, JobState::kDone);
  }
  for (const std::uint64_t id : b_jobs) {
    EXPECT_EQ(scheduler.wait(id).state, JobState::kDone);
  }

  // Rank every job by the order it actually started running.
  std::vector<std::pair<std::uint64_t, bool>> starts;  // (order, is_a)
  for (const std::uint64_t id : a_jobs) {
    starts.emplace_back(scheduler.info(id).start_order, true);
  }
  for (const std::uint64_t id : b_jobs) {
    starts.emplace_back(scheduler.info(id).start_order, false);
  }
  std::sort(starts.begin(), starts.end());
  // Among the first 9 dispatches, weight 2:1 yields exactly 6 of "a"
  // and 3 of "b" (2:1, well inside the ±15% acceptance band).
  const auto a_started =
      std::count_if(starts.begin(), starts.begin() + 9,
                    [](const auto& entry) { return entry.second; });
  EXPECT_EQ(a_started, 6);
  // Per-tenant completion accounting saw every job.
  const service::SchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.completed_per_tenant.at("a"), 6u);
  EXPECT_EQ(stats.completed_per_tenant.at("b"), 6u);
}

TEST(TenantScheduling, QueuedQuotaRejectsOnlyTheOffendingTenant) {
  SchedulerOptions options;
  options.max_concurrent_jobs = 1;
  options.tenant_quotas["capped"] = TenantQuota{1.0, 1, 0};
  JobScheduler scheduler(options);
  const std::uint64_t blocker = start_blocker(scheduler);
  const std::uint64_t queued =
      scheduler.submit(small_job(2).with_tenant("capped"));
  try {
    (void)scheduler.submit(small_job(3).with_tenant("capped"));
    FAIL() << "expected TenantQuotaError";
  } catch (const TenantQuotaError& e) {
    EXPECT_NE(std::string(e.what()).find("queued-job quota"),
              std::string::npos);
  }
  EXPECT_EQ(scheduler.stats().rejected, 1u);
  // Other tenants are unaffected by the capped tenant's quota.
  const std::uint64_t other =
      scheduler.submit(small_job(4).with_tenant("other"));
  scheduler.cancel(blocker);
  EXPECT_EQ(scheduler.wait(queued).state, JobState::kDone);
  EXPECT_EQ(scheduler.wait(other).state, JobState::kDone);
}

TEST(TenantScheduling, RunningCapHoldsJobBackWhileRunnerIsFree) {
  SchedulerOptions options;
  options.max_concurrent_jobs = 2;
  options.tenant_quotas["capped"] = TenantQuota{1.0, 0, 1};
  JobScheduler scheduler(options);

  const std::uint64_t first = start_blocker(scheduler, "capped");
  // A second "capped" job may not take the free runner.
  const std::uint64_t held =
      scheduler.submit(blocker_job().with_tenant("capped"));
  std::this_thread::sleep_for(20ms);
  EXPECT_EQ(scheduler.info(held).state, JobState::kQueued);
  // The free runner still serves other tenants.
  const std::uint64_t other =
      scheduler.submit(small_job(9).with_tenant("other"));
  EXPECT_EQ(scheduler.wait(other).state, JobState::kDone);
  EXPECT_EQ(scheduler.info(held).state, JobState::kQueued);
  // Finishing the first frees the tenant slot: the held job starts.
  scheduler.cancel(first);
  while (scheduler.info(held).state == JobState::kQueued) {
    std::this_thread::sleep_for(1ms);
  }
  scheduler.cancel(held);
  EXPECT_EQ(scheduler.wait(held).state, JobState::kCancelled);
}

TEST(TenantScheduling, CancelledQueuedJobReleasesQuotaSlot) {
  SchedulerOptions options;
  options.max_concurrent_jobs = 1;
  options.tenant_quotas["capped"] = TenantQuota{1.0, 1, 0};
  JobScheduler scheduler(options);
  const std::uint64_t blocker = start_blocker(scheduler);
  const std::uint64_t queued =
      scheduler.submit(small_job(2).with_tenant("capped"));
  EXPECT_THROW(
      (void)scheduler.submit(small_job(3).with_tenant("capped")),
      TenantQuotaError);
  // Cancelling the queued job returns the quota slot immediately.
  EXPECT_TRUE(scheduler.cancel(queued));
  const std::uint64_t readmitted =
      scheduler.submit(small_job(4).with_tenant("capped"));
  scheduler.cancel(blocker);
  EXPECT_EQ(scheduler.wait(readmitted).state, JobState::kDone);
}

TEST(TenantScheduling, InfoCarriesTenantAndPrediction) {
  JobScheduler scheduler;
  const std::uint64_t id =
      scheduler.submit(small_job(5).with_tenant("acme"));
  const JobInfo info = scheduler.wait(id);
  EXPECT_EQ(info.tenant, "acme");
  EXPECT_GT(info.predicted_seconds, 0.0);
  EXPECT_FALSE(info.from_cache);
}

}  // namespace
}  // namespace bgls

// Tests for distribution distances and descriptive statistics.

#include "util/stats.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/error.h"

namespace bgls {
namespace {

TEST(Stats, NormalizeCounts) {
  Counts counts{{0, 30}, {1, 70}};
  const auto dist = normalize(counts);
  EXPECT_DOUBLE_EQ(dist.at(0), 0.3);
  EXPECT_DOUBLE_EQ(dist.at(1), 0.7);
}

TEST(Stats, NormalizeRejectsEmpty) {
  Counts counts;
  EXPECT_THROW(normalize(counts), ValueError);
}

TEST(Stats, OverlapOfIdenticalDistributionsIsOne) {
  Distribution p{{0, 0.25}, {1, 0.75}};
  EXPECT_DOUBLE_EQ(distribution_overlap(p, p), 1.0);
}

TEST(Stats, OverlapOfDisjointDistributionsIsZero) {
  Distribution p{{0, 1.0}};
  Distribution q{{1, 1.0}};
  EXPECT_DOUBLE_EQ(distribution_overlap(p, q), 0.0);
}

TEST(Stats, OverlapIsSymmetric) {
  Distribution p{{0, 0.5}, {1, 0.5}};
  Distribution q{{0, 0.9}, {1, 0.1}};
  EXPECT_DOUBLE_EQ(distribution_overlap(p, q), distribution_overlap(q, p));
  EXPECT_DOUBLE_EQ(distribution_overlap(p, q), 0.6);
}

TEST(Stats, OverlapPlusTvIsOne) {
  Distribution p{{0, 0.2}, {1, 0.3}, {2, 0.5}};
  Distribution q{{0, 0.4}, {1, 0.1}, {3, 0.5}};
  EXPECT_NEAR(distribution_overlap(p, q) + total_variation_distance(p, q), 1.0,
              1e-12);
}

TEST(Stats, FidelityBounds) {
  Distribution p{{0, 0.5}, {1, 0.5}};
  Distribution q{{0, 0.5}, {1, 0.5}};
  EXPECT_NEAR(classical_fidelity(p, q), 1.0, 1e-12);
  Distribution r{{2, 1.0}};
  EXPECT_DOUBLE_EQ(classical_fidelity(p, r), 0.0);
}

TEST(Stats, ChiSquareNearZeroForExactCounts) {
  Distribution expected{{0, 0.5}, {1, 0.5}};
  Counts observed{{0, 500}, {1, 500}};
  const auto result = chi_square(observed, expected);
  EXPECT_NEAR(result.statistic, 0.0, 1e-12);
  EXPECT_EQ(result.degrees_of_freedom, 1);
}

TEST(Stats, ChiSquareDetectsMismatch) {
  Distribution expected{{0, 0.5}, {1, 0.5}};
  Counts observed{{0, 900}, {1, 100}};
  const auto result = chi_square(observed, expected);
  EXPECT_GT(result.statistic, 100.0);
}

TEST(Stats, ChiSquarePoolsRareCells) {
  Distribution expected{{0, 0.997}, {1, 0.001}, {2, 0.001}, {3, 0.001}};
  Counts observed{{0, 997}, {1, 1}, {2, 1}, {3, 1}};
  const auto result = chi_square(observed, expected);
  EXPECT_EQ(result.degrees_of_freedom, 1);  // 1 big cell + pooled cell - 1
}

TEST(Stats, MeanAndStddev) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_NEAR(stddev(xs), 1.2909944, 1e-6);
}

TEST(Stats, StddevOfSingletonIsZero) {
  const std::vector<double> xs{5.0};
  EXPECT_DOUBLE_EQ(stddev(xs), 0.0);
}

TEST(Stats, MedianOddAndEven) {
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 3.0, 2.0}), 2.5);
}

TEST(Stats, LogLogSlopeRecoversPowerLaw) {
  std::vector<double> xs, ys;
  for (double x : {1.0, 2.0, 4.0, 8.0, 16.0}) {
    xs.push_back(x);
    ys.push_back(3.0 * x * x * x);  // slope 3
  }
  EXPECT_NEAR(log_log_slope(xs, ys), 3.0, 1e-9);
}

TEST(Stats, LogLogSlopeRejectsNonPositive) {
  const std::vector<double> xs{1.0, 0.0};
  const std::vector<double> ys{1.0, 2.0};
  EXPECT_THROW((void)log_log_slope(xs, ys), ValueError);
}

}  // namespace
}  // namespace bgls

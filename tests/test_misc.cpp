// Odds and ends: the aggregate public header compiles and exposes the
// API, timing helpers behave, and the QASM parser survives garbage
// without crashing.

#include "bgls.h"

#include <gtest/gtest.h>

namespace bgls {
namespace {

TEST(AggregateHeader, ExposesTheWholeApi) {
  // Touch one symbol from each module through the single include.
  Circuit circuit{h(0), cnot(0, 1), measure({0, 1}, "z")};
  Simulator<StateVectorState> sim{StateVectorState(2)};
  Rng rng(1);
  const Result result = sim.run(circuit, 50, rng);
  EXPECT_EQ(result.repetitions(), 50u);

  EXPECT_TRUE(Gate::H().is_clifford());
  EXPECT_EQ(CHState(2).num_qubits(), 2);
  EXPECT_EQ(MPSState(2).num_qubits(), 2);
  EXPECT_EQ(DensityMatrixState(2).num_qubits(), 2);
  EXPECT_EQ(depolarize(0.1).arity(), 1);
  EXPECT_NO_THROW(parse_qasm("OPENQASM 2.0;\nqreg q[1];\nh q[0];\n"));
  EXPECT_EQ(Graph(3).num_vertices(), 3);
  EXPECT_EQ(optimize_for_bgls(Circuit{}).num_operations(), 0u);
  EXPECT_FALSE(to_text_diagram(circuit).empty());
}

TEST(Timing, StopwatchMeasuresElapsedTime) {
  Stopwatch watch;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + i * 0.5;
  EXPECT_GT(watch.seconds(), 0.0);
  watch.reset();
  EXPECT_LT(watch.seconds(), 1.0);
}

TEST(Timing, MedianRuntimeReturnsPositive) {
  const double t = median_runtime(
      [] {
        volatile double sink = 0.0;
        for (int i = 0; i < 10000; ++i) sink = sink + i;
      },
      3);
  EXPECT_GT(t, 0.0);
}

TEST(QasmFuzz, GarbageInputsThrowParseErrorsNotCrashes) {
  const std::vector<std::string> inputs{
      "",
      ";;;;",
      "OPENQASM",
      "OPENQASM 2.0",
      "OPENQASM 2.0; qreg",
      "OPENQASM 2.0; qreg q[;",
      "OPENQASM 2.0; qreg q[0];",
      "OPENQASM 2.0; qreg q[2]; h",
      "OPENQASM 2.0; qreg q[2]; h q[",
      "OPENQASM 2.0; qreg q[2]; rx( q[0];",
      "OPENQASM 2.0; qreg q[2]; cx q[0],q[0];",  // duplicate qubit
      "OPENQASM 2.0; qreg q[2]; measure q -> z;",
      "OPENQASM 2.0; include \"qelib1.inc",
      "OPENQASM 2.0; qreg q[1]; rz(1+) q[0];",
      "OPENQASM 2.0; qreg q[1]; rz(foo) q[0];",
  };
  for (const auto& input : inputs) {
    EXPECT_THROW(parse_qasm(input), Error) << input;
  }
}

TEST(QasmFuzz, RandomTokenSoup) {
  // Pseudo-random token streams: any outcome is fine except a crash or
  // a non-bgls exception.
  Rng rng(99);
  const std::vector<std::string> tokens{
      "OPENQASM", "2.0", ";", "qreg", "creg", "q", "[", "]", "1", "2",
      "h",        "cx",  ",", "(",    ")",    "pi", "/", "measure", "->"};
  for (int trial = 0; trial < 200; ++trial) {
    std::string source = "OPENQASM 2.0;\nqreg q[2];\n";
    const int len = 1 + static_cast<int>(rng.uniform_int(12));
    for (int i = 0; i < len; ++i) {
      source += tokens[rng.uniform_int(tokens.size())];
      source += ' ';
    }
    try {
      (void)parse_qasm(source);
    } catch (const Error&) {
      // expected for malformed input
    }
  }
  SUCCEED();
}

}  // namespace
}  // namespace bgls

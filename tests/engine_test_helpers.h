/// \file engine_test_helpers.h
/// Workload builders and factories shared by the engine suites
/// (test_engine, test_engine_async, test_engine_determinism,
/// test_cross_backend). The parameters the suites intentionally vary —
/// circuit seed, depth, density, noise strength — stay at the call
/// sites; only the construction recipes live here.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "circuit/circuit.h"
#include "circuit/noise.h"
#include "circuit/random.h"
#include "core/simulator.h"
#include "statevector/state.h"

namespace bgls::testing {

/// Appends a terminal measurement of qubits [0, num_qubits) under `key`.
inline Circuit with_terminal_measurement(Circuit circuit, int num_qubits,
                                         const std::string& key = "m") {
  std::vector<Qubit> qubits;
  for (int q = 0; q < num_qubits; ++q) qubits.push_back(q);
  circuit.append(measure(qubits, key));
  return circuit;
}

/// A unitary random circuit eligible for the dictionary-batched path,
/// measured on all qubits under "m".
inline Circuit batched_workload(int n, std::uint64_t circuit_seed,
                                int num_moments, double op_density) {
  Rng circuit_rng(circuit_seed);
  RandomCircuitOptions options;
  options.num_moments = num_moments;
  options.op_density = op_density;
  return with_terminal_measurement(
      generate_random_circuit(n, options, circuit_rng), n, "m");
}

/// A noisy GHZ circuit forced onto the per-trajectory path, measured on
/// all qubits under "m".
inline Circuit trajectory_workload(int n, double depolarize_p) {
  Circuit noisy = with_noise(ghz_circuit(n), depolarize(depolarize_p));
  return with_terminal_measurement(std::move(noisy), n, "m");
}

/// A statevector simulator wired for engine runs.
inline Simulator<StateVectorState> make_sv_simulator(int n, int num_threads,
                                                     std::uint64_t num_streams,
                                                     bool reuse_pool = true) {
  SimulatorOptions options;
  options.num_threads = num_threads;
  options.num_rng_streams = num_streams;
  options.reuse_thread_pool = reuse_pool;
  return Simulator<StateVectorState>{StateVectorState(n), options};
}

/// FNV-style chain over the sorted (bits, count) pairs — identical
/// histograms, identical hash. (The fig2 bench carries its own copy;
/// benches build without the test tree.)
inline std::uint64_t histogram_hash(const Counts& counts) {
  std::uint64_t hash = 1469598103934665603ULL;
  for (const auto& [bits, count] : counts) {
    for (const std::uint64_t word : {bits, count}) {
      hash ^= word;
      hash *= 1099511628211ULL;
    }
  }
  return hash;
}

}  // namespace bgls::testing

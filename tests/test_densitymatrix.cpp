// Density-matrix backend tests: agreement with the statevector on pure
// evolution, exact channel application, purity bookkeeping.

#include "densitymatrix/state.h"

#include <gtest/gtest.h>

#include "circuit/random.h"
#include "statevector/state.h"
#include "test_helpers.h"
#include "util/error.h"

namespace bgls {
namespace {

TEST(DensityMatrix, InitialStateIsPureProjector) {
  DensityMatrixState rho(2, from_string("10"));
  EXPECT_DOUBLE_EQ(rho.probability(from_string("10")), 1.0);
  EXPECT_NEAR(rho.purity(), 1.0, 1e-12);
  EXPECT_NEAR(rho.trace(), 1.0, 1e-12);
}

class DensityMatrixVsStateVector : public ::testing::TestWithParam<int> {};

TEST_P(DensityMatrixVsStateVector, PureEvolutionMatches) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const int n = 4;
  RandomCircuitOptions options;
  options.num_moments = 10;
  options.op_density = 0.8;
  const Circuit circuit = generate_random_circuit(n, options, rng);

  DensityMatrixState rho(n);
  evolve_exact(circuit, rho);

  const auto psi = testing::ideal_statevector(circuit, n);
  for (std::size_t r = 0; r < psi.size(); ++r) {
    for (std::size_t c = 0; c < psi.size(); ++c) {
      EXPECT_NEAR(std::abs(rho.entry(r, c) - psi[r] * std::conj(psi[c])), 0.0,
                  1e-9);
    }
  }
  EXPECT_NEAR(rho.purity(), 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DensityMatrixVsStateVector,
                         ::testing::Range(0, 8));

TEST(DensityMatrix, DepolarizeDiagonalKnownValues) {
  DensityMatrixState rho(1);
  const std::vector<Qubit> q0{0};
  rho.apply_channel_sum(depolarize(0.3), q0);
  // |0⟩⟨0| under depolarize(p): stays |0⟩⟨0| w.p. 1-p + p/3 (Z), flips
  // with 2p/3 (X and Y each p/3).
  EXPECT_NEAR(rho.probability(0), 1.0 - 0.2, 1e-12);
  EXPECT_NEAR(rho.probability(1), 0.2, 1e-12);
  EXPECT_NEAR(rho.trace(), 1.0, 1e-12);
  EXPECT_LT(rho.purity(), 1.0);
}

TEST(DensityMatrix, BitFlipMixesState) {
  DensityMatrixState rho(1);
  const std::vector<Qubit> q0{0};
  rho.apply_channel_sum(bit_flip(0.25), q0);
  EXPECT_NEAR(rho.probability(0), 0.75, 1e-12);
  EXPECT_NEAR(rho.probability(1), 0.25, 1e-12);
}

TEST(DensityMatrix, PhaseDampKillsCoherence) {
  DensityMatrixState rho(1);
  rho.apply(h(0));
  EXPECT_NEAR(std::abs(rho.entry(0, 1)), 0.5, 1e-12);
  const std::vector<Qubit> q0{0};
  rho.apply_channel_sum(phase_damp(1.0), q0);
  EXPECT_NEAR(std::abs(rho.entry(0, 1)), 0.0, 1e-12);
  EXPECT_NEAR(rho.probability(0), 0.5, 1e-12);
}

TEST(DensityMatrix, AmplitudeDampPumpsToGround) {
  DensityMatrixState rho(1);
  rho.apply(x(0));
  const std::vector<Qubit> q0{0};
  rho.apply_channel_sum(amplitude_damp(0.4), q0);
  EXPECT_NEAR(rho.probability(1), 0.6, 1e-12);
  EXPECT_NEAR(rho.probability(0), 0.4, 1e-12);
}

TEST(DensityMatrix, ChannelOnEntangledPairActsLocally) {
  DensityMatrixState rho(2);
  rho.apply(h(0));
  rho.apply(cnot(0, 1));
  const std::vector<Qubit> q0{0};
  // p = 3/4 is the replace-with-maximally-mixed point of the
  // (1-p)ρ + (p/3)(XρX + YρY + ZρZ) parameterization.
  rho.apply_channel_sum(depolarize(0.75), q0);
  for (Bitstring b = 0; b < 4; ++b) {
    EXPECT_NEAR(rho.probability(b), 0.25, 1e-12);
  }
}

TEST(DensityMatrix, TrajectoryAverageMatchesChannelSum) {
  // Average many statevector trajectories of a non-unital channel and
  // compare with the exact Kraus-sum evolution.
  const double gamma = 0.35;
  Circuit circuit{h(0), cnot(0, 1)};
  circuit.append(Operation(Gate::Channel(amplitude_damp(gamma)), {0}));

  DensityMatrixState rho(2);
  evolve_exact(circuit, rho);

  Rng rng(42);
  std::vector<double> averaged(4, 0.0);
  const int trajectories = 60000;
  for (int i = 0; i < trajectories; ++i) {
    StateVectorState psi(2);
    evolve(circuit, psi, rng);
    for (std::size_t b = 0; b < 4; ++b) averaged[b] += psi.probability(b);
  }
  for (std::size_t b = 0; b < 4; ++b) {
    EXPECT_NEAR(averaged[b] / trajectories, rho.probability(b), 0.01);
  }
}

TEST(DensityMatrix, ProjectCollapses) {
  DensityMatrixState rho(2);
  rho.apply(h(0));
  rho.apply(cnot(0, 1));
  const std::vector<Qubit> q0{0};
  rho.project(q0, from_string("10"));
  EXPECT_NEAR(rho.probability(from_string("11")), 1.0, 1e-12);
}

TEST(DensityMatrix, SampleFollowsDiagonal) {
  DensityMatrixState rho(1);
  const std::vector<Qubit> q0{0};
  rho.apply_channel_sum(bit_flip(0.3), q0);
  Rng rng(9);
  int ones = 0;
  const int reps = 50000;
  for (int i = 0; i < reps; ++i) ones += static_cast<int>(rho.sample(rng));
  EXPECT_NEAR(ones / static_cast<double>(reps), 0.3, 0.01);
}

TEST(DensityMatrix, RejectsOversizedRegister) {
  EXPECT_THROW(DensityMatrixState(13), ValueError);
}

TEST(DensityMatrix, ComputeProbabilityFreeFunction) {
  DensityMatrixState rho(1);
  rho.apply(h(0));
  EXPECT_NEAR(compute_probability(rho, 0), 0.5, 1e-12);
}

}  // namespace
}  // namespace bgls

/// \file test_helpers.h
/// Brute-force reference implementations used by the cross-representation
/// property tests: full-unitary circuit evolution through explicit
/// matrix embeddings, independent of every simulator backend.

#pragma once

#include <vector>

#include "circuit/circuit.h"
#include "linalg/matrix.h"
#include "util/bits.h"
#include "util/stats.h"

namespace bgls::testing {

/// Gate-local index of a full basis index (qubits[0] = most significant
/// gate bit, matching gate.h's convention).
inline std::size_t local_index(std::size_t basis,
                               std::span<const Qubit> qubits) {
  std::size_t local = 0;
  for (std::size_t j = 0; j < qubits.size(); ++j) {
    local = (local << 1) |
            ((basis >> static_cast<std::size_t>(qubits[j])) & 1u);
  }
  return local;
}

/// Embeds an operation's unitary into the full 2^n space.
inline Matrix embed_operation(const Operation& op, int num_qubits) {
  const Matrix m = op.gate().unitary();
  const std::size_t dim = std::size_t{1} << num_qubits;
  std::size_t support_mask = 0;
  for (const Qubit q : op.qubits()) {
    support_mask |= std::size_t{1} << static_cast<std::size_t>(q);
  }
  Matrix full(dim, dim);
  for (std::size_t r = 0; r < dim; ++r) {
    for (std::size_t c = 0; c < dim; ++c) {
      if ((r & ~support_mask) != (c & ~support_mask)) continue;
      full(r, c) = m(local_index(r, op.qubits()), local_index(c, op.qubits()));
    }
  }
  return full;
}

/// Full-circuit unitary (skips measurements; throws on channels).
inline Matrix circuit_unitary(const Circuit& circuit, int num_qubits) {
  const std::size_t dim = std::size_t{1} << num_qubits;
  Matrix u = Matrix::identity(dim);
  for (const auto& op : circuit.all_operations()) {
    if (op.gate().is_measurement()) continue;
    u = embed_operation(op, num_qubits) * u;
  }
  return u;
}

/// Final statevector from |initial⟩ by brute-force matrix application.
inline std::vector<Complex> ideal_statevector(const Circuit& circuit,
                                              int num_qubits,
                                              Bitstring initial = 0) {
  const std::size_t dim = std::size_t{1} << num_qubits;
  std::vector<Complex> psi(dim, Complex{0.0, 0.0});
  psi[initial] = Complex{1.0, 0.0};
  for (const auto& op : circuit.all_operations()) {
    if (op.gate().is_measurement()) continue;
    psi = embed_operation(op, num_qubits).apply(psi);
  }
  return psi;
}

/// Exact output distribution over all 2^n bitstrings.
inline Distribution ideal_distribution(const Circuit& circuit,
                                       int num_qubits) {
  const auto psi = ideal_statevector(circuit, num_qubits);
  Distribution dist;
  for (std::size_t b = 0; b < psi.size(); ++b) {
    const double p = std::norm(psi[b]);
    if (p > 1e-15) dist[b] = p;
  }
  return dist;
}

/// Exact distribution restricted to a measured-qubit subset, packed in
/// key order (bit j of the packed outcome = qubits[j]).
inline Distribution ideal_marginal_distribution(const Circuit& circuit,
                                                int num_qubits,
                                                std::span<const Qubit> qubits) {
  const auto full = ideal_distribution(circuit, num_qubits);
  Distribution marginal;
  for (const auto& [bits, p] : full) {
    Bitstring packed = 0;
    for (std::size_t j = 0; j < qubits.size(); ++j) {
      packed = with_bit(packed, static_cast<int>(j), get_bit(bits, qubits[j]));
    }
    marginal[packed] += p;
  }
  return marginal;
}

}  // namespace bgls::testing

/// \file param.h
/// Symbolic gate parameters and resolvers.
///
/// Mirrors Cirq's sympy-symbol + ParamResolver mechanism at the level the
/// paper uses it: rotation angles may be symbols (e.g. the QAOA γ and β),
/// and a circuit is resolved against a {symbol → value} map before
/// simulation (Sec. 3.1 notes "parametric support", exercised in
/// Sec. 4.4's parameter sweep).

#pragma once

#include <map>
#include <string>
#include <variant>

#include "util/error.h"

namespace bgls {

/// A named symbolic parameter.
struct Symbol {
  std::string name;

  friend bool operator==(const Symbol& a, const Symbol& b) {
    return a.name == b.name;
  }
};

/// A gate parameter: either a concrete value or a symbol.
class Param {
 public:
  /// Implicit from a concrete value (so Gate::Rz(0.3) reads naturally).
  Param(double value) : value_(value) {}  // NOLINT(google-explicit-constructor)

  /// Implicit from a symbol.
  Param(Symbol symbol)  // NOLINT(google-explicit-constructor)
      : value_(std::move(symbol)) {}

  /// True when the parameter still references a symbol.
  [[nodiscard]] bool is_symbolic() const {
    return std::holds_alternative<Symbol>(value_);
  }

  /// Concrete value; throws for unresolved symbols.
  [[nodiscard]] double value() const {
    BGLS_REQUIRE(!is_symbolic(), "parameter '", symbol().name,
                 "' is unresolved");
    return std::get<double>(value_);
  }

  /// The symbol; only valid when is_symbolic().
  [[nodiscard]] const Symbol& symbol() const {
    return std::get<Symbol>(value_);
  }

  /// Display form: the value or the symbol name.
  [[nodiscard]] std::string to_string() const;

 private:
  std::variant<double, Symbol> value_;
};

/// Assignment of symbol names to concrete values.
class ParamResolver {
 public:
  ParamResolver() = default;

  /// Builds from explicit {name, value} pairs.
  ParamResolver(std::initializer_list<std::pair<const std::string, double>> init)
      : values_(init) {}

  /// Adds or overwrites an assignment.
  void set(const std::string& name, double value) { values_[name] = value; }

  /// Resolves a parameter: concrete values pass through; symbols are
  /// looked up (throws bgls::ValueError when missing).
  [[nodiscard]] Param resolve(const Param& param) const;

 private:
  std::map<std::string, double> values_;
};

}  // namespace bgls

/// \file random.h
/// Circuit generators for the paper's workloads.
///
/// Mirrors `bgls.testing.generate_random_circuit` (itself derived from
/// cirq.testing.random_circuit) plus the specific circuit families the
/// evaluation section uses: random Clifford circuits (Fig. 3),
/// Clifford+T / Clifford+Rz(θ) circuits (Figs. 4–5), randomly-sequenced
/// GHZ circuits (Fig. 6), and sparse random circuits with a fixed
/// entangling budget (Fig. 7b).

#pragma once

#include <vector>

#include "circuit/circuit.h"
#include "util/rng.h"

namespace bgls {

/// Knobs for generate_random_circuit.
struct RandomCircuitOptions {
  /// Number of moments (layers) to generate.
  int num_moments = 10;
  /// Probability that each qubit slot in a moment receives an operation.
  double op_density = 0.5;
  /// Gate set to draw from; arities may be mixed. Defaults (empty) to
  /// {X, Y, Z, H, S, T, CX, CZ}.
  std::vector<Gate> gate_domain;
};

/// Generates a random circuit on `num_qubits` qubits: for each moment,
/// visits qubits in random order and, with probability op_density, places
/// a random gate from the domain on the visited qubit (grabbing further
/// free qubits when the chosen gate needs them).
[[nodiscard]] Circuit generate_random_circuit(int num_qubits,
                                              const RandomCircuitOptions& options,
                                              Rng& rng);

/// Random pure-Clifford circuit over {H, S, CNOT} (the Fig. 3 workload).
[[nodiscard]] Circuit random_clifford_circuit(int num_qubits, int num_moments,
                                              Rng& rng);

/// Random Clifford circuit with `num_t` T gates spliced in at random
/// positions on random qubits (Figs. 4–5 workload).
[[nodiscard]] Circuit random_clifford_t_circuit(int num_qubits,
                                                int num_moments, int num_t,
                                                Rng& rng);

/// The standard linear GHZ preparation: H(0), CNOT(0,1), ..., CNOT(n-2,n-1).
[[nodiscard]] Circuit ghz_circuit(int num_qubits);

/// GHZ preparation with randomly sequenced CNOTs (Fig. 6a): each new
/// qubit is entangled off a uniformly random already-entangled qubit, in
/// random order.
[[nodiscard]] Circuit random_ghz_circuit(int num_qubits, Rng& rng);

/// Random circuit of single-qubit gates (H/T/X/Y/Z/S) at the given
/// density with exactly `num_cnots` CNOTs between random adjacent-free
/// pairs — the fixed-entanglement workload of Fig. 7b.
[[nodiscard]] Circuit random_fixed_cnot_circuit(int num_qubits,
                                                int num_moments, int num_cnots,
                                                Rng& rng);

/// Returns a copy of `circuit` with every T gate replaced by `gate`
/// (used to build the T→S comparison copy of Fig. 4a and the T→Rz(θ)
/// sweep of Fig. 4b).
[[nodiscard]] Circuit with_t_gates_replaced(const Circuit& circuit,
                                            const Gate& gate);

/// Returns a copy of `circuit` with `count` randomly chosen single-qubit
/// Clifford operations replaced by T gates (Fig. 5's progressive
/// de-Cliffordization).
[[nodiscard]] Circuit with_random_t_substitutions(const Circuit& circuit,
                                                  int count, Rng& rng);

}  // namespace bgls

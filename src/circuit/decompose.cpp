#include "circuit/decompose.h"

#include "util/error.h"

namespace bgls {
namespace {

/// The textbook 7-T Toffoli over {H, T, T†, CX}.
std::vector<Operation> ccx_network(Qubit a, Qubit b, Qubit c) {
  return {
      h(c),          cnot(b, c), tdg(c),     cnot(a, c),
      t(c),          cnot(b, c), tdg(c),     cnot(a, c),
      t(b),          t(c),       cnot(a, b), h(c),
      t(a),          tdg(b),     cnot(a, b),
  };
}

}  // namespace

std::vector<Operation> decompose_operation(const Operation& op,
                                           int max_arity) {
  BGLS_REQUIRE(max_arity >= 1 && max_arity <= 3, "max_arity must be 1..3");
  const Gate& gate = op.gate();
  if (gate.arity() <= max_arity || gate.is_measurement() ||
      gate.is_channel()) {
    return {op};
  }
  BGLS_REQUIRE(max_arity >= 2, "no decomposition of '", gate.name(),
               "' to single-qubit gates exists (entangling gate)");
  const auto q = op.qubits();
  switch (gate.kind()) {
    case GateKind::kCCX:
      return ccx_network(q[0], q[1], q[2]);
    case GateKind::kCCZ: {
      // CCZ = H(target) CCX H(target); the "target" choice is arbitrary
      // for the symmetric CCZ.
      std::vector<Operation> ops{h(q[2])};
      for (auto& inner : ccx_network(q[0], q[1], q[2])) {
        ops.push_back(std::move(inner));
      }
      ops.push_back(h(q[2]));
      return ops;
    }
    case GateKind::kCSwap: {
      // Fredkin = CX(t2, t1) · CCX(c, t1, t2) · CX(t2, t1).
      std::vector<Operation> ops{cnot(q[2], q[1])};
      for (auto& inner : ccx_network(q[0], q[1], q[2])) {
        ops.push_back(std::move(inner));
      }
      ops.push_back(cnot(q[2], q[1]));
      return ops;
    }
    default:
      detail::throw_error<UnsupportedOperationError>(
          "no decomposition of '", gate.name(), "' to arity ", max_arity,
          " is known");
  }
}

Circuit decompose_to_arity(const Circuit& circuit, int max_arity) {
  Circuit out;
  for (const auto& op : circuit.all_operations()) {
    for (auto& lowered : decompose_operation(op, max_arity)) {
      out.append(std::move(lowered));
    }
  }
  return out;
}

Circuit expand_swaps(const Circuit& circuit) {
  Circuit out;
  for (const auto& op : circuit.all_operations()) {
    if (op.gate().kind() == GateKind::kSwap) {
      out.append(cnot(op.qubits()[0], op.qubits()[1]));
      out.append(cnot(op.qubits()[1], op.qubits()[0]));
      out.append(cnot(op.qubits()[0], op.qubits()[1]));
    } else {
      out.append(op);
    }
  }
  return out;
}

}  // namespace bgls

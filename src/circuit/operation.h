/// \file operation.h
/// An Operation binds a Gate to concrete target qubits — the unit the
/// gate-by-gate sampler walks over.

#pragma once

#include <span>
#include <string>
#include <vector>

#include "circuit/gate.h"

namespace bgls {

/// Qubits are dense integer ids (the equivalent of cirq.LineQubit).
using Qubit = int;

/// A gate applied to an ordered list of qubits, optionally conditioned
/// on an earlier measurement record (classical feed-forward — the
/// companion of mid-circuit measurement, enabling e.g. teleportation
/// corrections).
class Operation {
 public:
  /// Binds `gate` to `qubits`; the list length must equal the gate arity
  /// and qubits must be distinct and non-negative.
  Operation(Gate gate, std::vector<Qubit> qubits);

  [[nodiscard]] const Gate& gate() const { return gate_; }

  /// Returns a copy that executes only when the measurement recorded
  /// under `key` (earlier in the circuit) is non-zero. Only unitary
  /// gates can be conditioned.
  [[nodiscard]] Operation controlled_by_measurement(std::string key) const;

  /// True when this operation is classically conditioned.
  [[nodiscard]] bool is_classically_controlled() const {
    return !condition_key_.empty();
  }

  /// The controlling measurement key ("" when unconditioned).
  [[nodiscard]] const std::string& condition_key() const {
    return condition_key_;
  }

  /// The gate's support: the qubits it acts on, in gate order (for CX the
  /// first qubit is the control).
  [[nodiscard]] std::span<const Qubit> qubits() const { return qubits_; }

  [[nodiscard]] int arity() const { return gate_.arity(); }

  /// True when this operation touches qubit `q`.
  [[nodiscard]] bool acts_on(Qubit q) const;

  /// True when this operation shares any qubit with `other`.
  [[nodiscard]] bool overlaps(const Operation& other) const;

  /// Returns a copy with gate parameters resolved.
  [[nodiscard]] Operation resolved(const ParamResolver& resolver) const;

  /// e.g. "CX(0, 1)".
  [[nodiscard]] std::string to_string() const;

 private:
  Gate gate_;
  std::vector<Qubit> qubits_;
  std::string condition_key_;
};

// --- Free-function builders mirroring the paper's Cirq snippets ----------

/// H on a qubit.
[[nodiscard]] Operation h(Qubit q);
/// Pauli gates.
[[nodiscard]] Operation x(Qubit q);
[[nodiscard]] Operation y(Qubit q);
[[nodiscard]] Operation z(Qubit q);
/// Phase-family gates.
[[nodiscard]] Operation s(Qubit q);
[[nodiscard]] Operation sdg(Qubit q);
[[nodiscard]] Operation t(Qubit q);
[[nodiscard]] Operation tdg(Qubit q);
/// Rotations (angles may be symbolic).
[[nodiscard]] Operation rx(Param theta, Qubit q);
[[nodiscard]] Operation ry(Param theta, Qubit q);
[[nodiscard]] Operation rz(Param theta, Qubit q);
/// Two-qubit gates.
[[nodiscard]] Operation cnot(Qubit control, Qubit target);
[[nodiscard]] Operation cz(Qubit a, Qubit b);
[[nodiscard]] Operation swap(Qubit a, Qubit b);
[[nodiscard]] Operation zz(Param theta, Qubit a, Qubit b);
/// Three-qubit gates.
[[nodiscard]] Operation ccx(Qubit c0, Qubit c1, Qubit target);
/// Measurement of the listed qubits under `key`.
[[nodiscard]] Operation measure(std::vector<Qubit> qubits,
                                std::string key = "m");

}  // namespace bgls

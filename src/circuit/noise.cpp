#include "circuit/noise.h"

#include <set>

#include "util/error.h"

namespace bgls {

Circuit with_noise(const Circuit& circuit, const KrausChannel& channel) {
  BGLS_REQUIRE(channel.arity() == 1,
               "with_noise expects a single-qubit channel, got arity ",
               channel.arity());
  Circuit out;
  for (const auto& moment : circuit.moments()) {
    out.append_moment(moment);
    std::set<Qubit> touched;
    for (const auto& op : moment.operations()) {
      if (op.gate().is_measurement()) continue;
      touched.insert(op.qubits().begin(), op.qubits().end());
    }
    if (touched.empty()) continue;
    Moment noise;
    for (const Qubit q : touched) {
      noise.add(Operation(Gate::Channel(channel), {q}));
    }
    out.append_moment(std::move(noise));
  }
  return out;
}

}  // namespace bgls

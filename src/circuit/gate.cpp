#include "circuit/gate.h"

#include <cmath>
#include <mutex>
#include <numbers>
#include <sstream>

#include "util/error.h"

namespace bgls {

/// Once-filled memoization slot shared by all copies of a gate.
/// call_once gives the thread-safety the samplers need (many engine
/// shards may hit the same cold gate at once) and re-throws/retries
/// cleanly when unitary() itself throws (symbolic parameters).
struct Gate::UnitaryCache {
  std::once_flag once;
  std::shared_ptr<const kernels::CompiledMatrix> compiled;
};

Gate::Gate(GateKind kind, int arity)
    : kind_(kind),
      arity_(arity),
      unitary_cache_(std::make_shared<UnitaryCache>()) {}

std::shared_ptr<const kernels::CompiledMatrix> Gate::compiled_unitary() const {
  std::call_once(unitary_cache_->once, [&] {
    unitary_cache_->compiled = std::make_shared<const kernels::CompiledMatrix>(
        kernels::compile(unitary()));
  });
  return unitary_cache_->compiled;
}

namespace {

constexpr double kInvSqrt2 = 0.70710678118654752440;

Matrix matrix_1q(std::initializer_list<Complex> entries) {
  return Matrix(2, 2, std::vector<Complex>(entries));
}

}  // namespace

Gate Gate::I() { return Gate(GateKind::kIdentity, 1); }
Gate Gate::X() { return Gate(GateKind::kX, 1); }
Gate Gate::Y() { return Gate(GateKind::kY, 1); }
Gate Gate::Z() { return Gate(GateKind::kZ, 1); }
Gate Gate::H() { return Gate(GateKind::kH, 1); }
Gate Gate::S() { return Gate(GateKind::kS, 1); }
Gate Gate::Sdg() { return Gate(GateKind::kSdg, 1); }
Gate Gate::T() { return Gate(GateKind::kT, 1); }
Gate Gate::Tdg() { return Gate(GateKind::kTdg, 1); }
Gate Gate::SqrtX() { return Gate(GateKind::kSqrtX, 1); }

Gate Gate::Rx(Param theta) {
  Gate g(GateKind::kRx, 1);
  g.param_ = std::move(theta);
  return g;
}

Gate Gate::Ry(Param theta) {
  Gate g(GateKind::kRy, 1);
  g.param_ = std::move(theta);
  return g;
}

Gate Gate::Rz(Param theta) {
  Gate g(GateKind::kRz, 1);
  g.param_ = std::move(theta);
  return g;
}

Gate Gate::Phase(Param theta) {
  Gate g(GateKind::kPhase, 1);
  g.param_ = std::move(theta);
  return g;
}

Gate Gate::SingleQubitMatrix(Matrix m, std::string name) {
  BGLS_REQUIRE(m.rows() == 2 && m.cols() == 2,
               "SingleQubitMatrix requires a 2x2 matrix");
  BGLS_REQUIRE(m.is_unitary(1e-8), "SingleQubitMatrix requires a unitary");
  Gate g(GateKind::kMatrix1, 1);
  g.matrix_ = std::make_shared<const Matrix>(std::move(m));
  g.custom_name_ = std::move(name);
  return g;
}

Gate Gate::CX() { return Gate(GateKind::kCX, 2); }
Gate Gate::CZ() { return Gate(GateKind::kCZ, 2); }
Gate Gate::Swap() { return Gate(GateKind::kSwap, 2); }
Gate Gate::ISwap() { return Gate(GateKind::kISwap, 2); }

Gate Gate::CPhase(Param theta) {
  Gate g(GateKind::kCPhase, 2);
  g.param_ = std::move(theta);
  return g;
}

Gate Gate::ZZ(Param theta) {
  Gate g(GateKind::kZZ, 2);
  g.param_ = std::move(theta);
  return g;
}

Gate Gate::TwoQubitMatrix(Matrix m, std::string name) {
  BGLS_REQUIRE(m.rows() == 4 && m.cols() == 4,
               "TwoQubitMatrix requires a 4x4 matrix");
  BGLS_REQUIRE(m.is_unitary(1e-8), "TwoQubitMatrix requires a unitary");
  Gate g(GateKind::kMatrix2, 2);
  g.matrix_ = std::make_shared<const Matrix>(std::move(m));
  g.custom_name_ = std::move(name);
  return g;
}

Gate Gate::CCX() { return Gate(GateKind::kCCX, 3); }
Gate Gate::CCZ() { return Gate(GateKind::kCCZ, 3); }
Gate Gate::CSwap() { return Gate(GateKind::kCSwap, 3); }

Gate Gate::Measure(std::string key, int num_qubits) {
  BGLS_REQUIRE(num_qubits >= 1, "measurement needs at least one qubit");
  Gate g(GateKind::kMeasure, num_qubits);
  g.key_ = std::move(key);
  return g;
}

Gate Gate::Channel(KrausChannel channel) {
  const int arity = channel.arity();
  Gate g(GateKind::kChannel, arity);
  g.channel_ = std::make_shared<const KrausChannel>(std::move(channel));
  return g;
}

bool Gate::is_clifford() const {
  switch (kind_) {
    case GateKind::kIdentity:
    case GateKind::kX:
    case GateKind::kY:
    case GateKind::kZ:
    case GateKind::kH:
    case GateKind::kS:
    case GateKind::kSdg:
    case GateKind::kSqrtX:
    case GateKind::kCX:
    case GateKind::kCZ:
    case GateKind::kSwap:
      return true;
    default:
      return false;
  }
}

bool Gate::is_diagonal() const {
  switch (kind_) {
    case GateKind::kIdentity:
    case GateKind::kZ:
    case GateKind::kS:
    case GateKind::kSdg:
    case GateKind::kT:
    case GateKind::kTdg:
    case GateKind::kRz:
    case GateKind::kPhase:
    case GateKind::kCZ:
    case GateKind::kCPhase:
    case GateKind::kZZ:
    case GateKind::kCCZ:
      return true;
    default:
      return false;
  }
}

bool Gate::is_parameterized() const {
  return param_.has_value() && param_->is_symbolic();
}

const Param& Gate::parameter() const {
  BGLS_REQUIRE(param_.has_value(), "gate '", name(), "' has no parameter");
  return *param_;
}

Gate Gate::resolved(const ParamResolver& resolver) const {
  if (!param_.has_value() || !param_->is_symbolic()) return *this;
  Gate g = *this;
  g.param_ = resolver.resolve(*param_);
  // The parameter changed: the copy must not share the memoized
  // unitary/classification of this gate.
  g.unitary_cache_ = std::make_shared<UnitaryCache>();
  return g;
}

Matrix Gate::unitary() const {
  BGLS_REQUIRE(is_unitary(), "gate '", name(), "' has no unitary matrix");
  BGLS_REQUIRE(!is_parameterized(), "gate '", name(),
               "' has unresolved parameters");
  using std::numbers::pi;
  const Complex i{0.0, 1.0};
  switch (kind_) {
    case GateKind::kIdentity:
      return Matrix::identity(2);
    case GateKind::kX:
      return matrix_1q({0, 1, 1, 0});
    case GateKind::kY:
      return matrix_1q({0, -i, i, 0});
    case GateKind::kZ:
      return matrix_1q({1, 0, 0, -1});
    case GateKind::kH:
      return matrix_1q({kInvSqrt2, kInvSqrt2, kInvSqrt2, -kInvSqrt2});
    case GateKind::kS:
      return matrix_1q({1, 0, 0, i});
    case GateKind::kSdg:
      return matrix_1q({1, 0, 0, -i});
    case GateKind::kT:
      return matrix_1q({1, 0, 0, std::exp(i * (pi / 4.0))});
    case GateKind::kTdg:
      return matrix_1q({1, 0, 0, std::exp(-i * (pi / 4.0))});
    case GateKind::kSqrtX:
      return matrix_1q({Complex{0.5, 0.5}, Complex{0.5, -0.5},
                        Complex{0.5, -0.5}, Complex{0.5, 0.5}});
    case GateKind::kRx: {
      const double half = param_->value() / 2.0;
      const Complex c{std::cos(half), 0.0};
      const Complex s = -i * std::sin(half);
      return matrix_1q({c, s, s, c});
    }
    case GateKind::kRy: {
      const double half = param_->value() / 2.0;
      const Complex c{std::cos(half), 0.0};
      const Complex s{std::sin(half), 0.0};
      return matrix_1q({c, -s, s, c});
    }
    case GateKind::kRz: {
      const double half = param_->value() / 2.0;
      return matrix_1q({std::exp(-i * half), 0, 0, std::exp(i * half)});
    }
    case GateKind::kPhase:
      return matrix_1q({1, 0, 0, std::exp(i * param_->value())});
    case GateKind::kMatrix1:
    case GateKind::kMatrix2:
      return *matrix_;
    case GateKind::kCX:
      return Matrix(4, 4,
                    {1, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 1, 0, 0, 1, 0});
    case GateKind::kCZ:
      return Matrix(4, 4,
                    {1, 0, 0, 0, 0, 1, 0, 0, 0, 0, 1, 0, 0, 0, 0, -1});
    case GateKind::kSwap:
      return Matrix(4, 4,
                    {1, 0, 0, 0, 0, 0, 1, 0, 0, 1, 0, 0, 0, 0, 0, 1});
    case GateKind::kISwap:
      return Matrix(4, 4,
                    {1, 0, 0, 0, 0, 0, i, 0, 0, i, 0, 0, 0, 0, 0, 1});
    case GateKind::kCPhase: {
      Matrix m = Matrix::identity(4);
      m(3, 3) = std::exp(i * param_->value());
      return m;
    }
    case GateKind::kZZ: {
      const double half = param_->value() / 2.0;
      const Complex lo = std::exp(-i * half);
      const Complex hi = std::exp(i * half);
      Matrix m(4, 4);
      m(0, 0) = lo;
      m(1, 1) = hi;
      m(2, 2) = hi;
      m(3, 3) = lo;
      return m;
    }
    case GateKind::kCCX: {
      Matrix m = Matrix::identity(8);
      m(6, 6) = 0;
      m(7, 7) = 0;
      m(6, 7) = 1;
      m(7, 6) = 1;
      return m;
    }
    case GateKind::kCCZ: {
      Matrix m = Matrix::identity(8);
      m(7, 7) = -1;
      return m;
    }
    case GateKind::kCSwap: {
      Matrix m = Matrix::identity(8);
      // Swap target bits when the control (most significant) is 1:
      // |101⟩ <-> |110⟩, i.e. indices 5 and 6.
      m(5, 5) = 0;
      m(6, 6) = 0;
      m(5, 6) = 1;
      m(6, 5) = 1;
      return m;
    }
    case GateKind::kMeasure:
    case GateKind::kChannel:
      break;
  }
  detail::throw_error<ValueError>("unreachable gate kind in unitary()");
}

const std::string& Gate::measurement_key() const {
  BGLS_REQUIRE(is_measurement(), "measurement_key on non-measurement gate '",
               name(), "'");
  return key_;
}

const KrausChannel& Gate::channel() const {
  BGLS_REQUIRE(is_channel(), "channel() on non-channel gate '", name(), "'");
  return *channel_;
}

std::string Gate::name() const {
  const auto with_param = [&](const char* base) {
    std::ostringstream oss;
    oss << base << '(' << (param_ ? param_->to_string() : std::string{})
        << ')';
    return oss.str();
  };
  switch (kind_) {
    case GateKind::kIdentity: return "I";
    case GateKind::kX: return "X";
    case GateKind::kY: return "Y";
    case GateKind::kZ: return "Z";
    case GateKind::kH: return "H";
    case GateKind::kS: return "S";
    case GateKind::kSdg: return "S†";
    case GateKind::kT: return "T";
    case GateKind::kTdg: return "T†";
    case GateKind::kSqrtX: return "√X";
    case GateKind::kRx: return with_param("Rx");
    case GateKind::kRy: return with_param("Ry");
    case GateKind::kRz: return with_param("Rz");
    case GateKind::kPhase: return with_param("Phase");
    case GateKind::kMatrix1:
    case GateKind::kMatrix2: return custom_name_;
    case GateKind::kCX: return "CX";
    case GateKind::kCZ: return "CZ";
    case GateKind::kSwap: return "SWAP";
    case GateKind::kISwap: return "ISWAP";
    case GateKind::kCPhase: return with_param("CPhase");
    case GateKind::kZZ: return with_param("ZZ");
    case GateKind::kCCX: return "CCX";
    case GateKind::kCCZ: return "CCZ";
    case GateKind::kCSwap: return "CSWAP";
    case GateKind::kMeasure: return "M('" + key_ + "')";
    case GateKind::kChannel: return channel_->name();
  }
  return "?";
}

std::vector<std::string> Gate::diagram_symbols() const {
  switch (kind_) {
    case GateKind::kCX: return {"@", "X"};
    case GateKind::kCZ: return {"@", "@"};
    case GateKind::kSwap: return {"x", "x"};
    case GateKind::kISwap: return {"iSw", "iSw"};
    case GateKind::kCPhase: return {"@", name()};
    case GateKind::kZZ: return {name(), "ZZ"};
    case GateKind::kCCX: return {"@", "@", "X"};
    case GateKind::kCCZ: return {"@", "@", "@"};
    case GateKind::kCSwap: return {"@", "x", "x"};
    case GateKind::kMeasure:
      return std::vector<std::string>(static_cast<std::size_t>(arity_),
                                      "M('" + key_ + "')");
    default: {
      std::vector<std::string> symbols;
      for (int q = 0; q < arity_; ++q) symbols.push_back(name());
      return symbols;
    }
  }
}

}  // namespace bgls

#include "circuit/circuit.h"

#include <algorithm>

#include "util/error.h"

namespace bgls {

Moment::Moment(std::vector<Operation> operations) {
  for (auto& op : operations) add(std::move(op));
}

bool Moment::acts_on(Qubit q) const {
  return std::any_of(operations_.begin(), operations_.end(),
                     [&](const Operation& op) { return op.acts_on(q); });
}

bool Moment::can_accept(const Operation& op) const {
  return std::none_of(operations_.begin(), operations_.end(),
                      [&](const Operation& existing) {
                        return existing.overlaps(op);
                      });
}

void Moment::add(Operation op) {
  BGLS_REQUIRE(can_accept(op), "moment already acts on a qubit of ",
               op.to_string());
  operations_.push_back(std::move(op));
}

Circuit::Circuit(std::initializer_list<Operation> operations) {
  for (const auto& op : operations) append(op);
}

namespace {

/// True when `op` cannot be placed before `moment`: qubit overlap, or a
/// classical hazard (a conditioned op may not precede the measurement
/// producing its key, and a measurement may not precede an op
/// conditioned on it).
bool placement_blocked_by(const Moment& moment, const Operation& op) {
  if (!moment.can_accept(op)) return true;
  if (op.is_classically_controlled()) {
    for (const auto& existing : moment.operations()) {
      if (existing.gate().is_measurement() &&
          existing.gate().measurement_key() == op.condition_key()) {
        return true;
      }
    }
  }
  if (op.gate().is_measurement()) {
    for (const auto& existing : moment.operations()) {
      if (existing.is_classically_controlled() &&
          existing.condition_key() == op.gate().measurement_key()) {
        return true;
      }
    }
  }
  return false;
}

}  // namespace

void Circuit::append(Operation op, InsertStrategy strategy) {
  if (strategy == InsertStrategy::kNewThenInline || moments_.empty()) {
    moments_.emplace_back();
    moments_.back().add(std::move(op));
    return;
  }
  // EARLIEST: scan backwards for the deepest moment that blocks the
  // operation (qubit overlap or classical dependency), then place it
  // right after.
  std::size_t insert_at = 0;
  for (std::size_t m = moments_.size(); m-- > 0;) {
    if (placement_blocked_by(moments_[m], op)) {
      insert_at = m + 1;
      break;
    }
  }
  if (insert_at == moments_.size()) moments_.emplace_back();
  moments_[insert_at].add(std::move(op));
}

void Circuit::append(const std::vector<Operation>& operations,
                     InsertStrategy strategy) {
  for (const auto& op : operations) append(op, strategy);
}

void Circuit::append(const Circuit& other) {
  for (const auto& moment : other.moments_) {
    moments_.push_back(moment);
  }
}

void Circuit::append_moment(Moment moment) {
  moments_.push_back(std::move(moment));
}

std::size_t Circuit::num_operations() const {
  std::size_t count = 0;
  for (const auto& moment : moments_) count += moment.operations().size();
  return count;
}

std::vector<Operation> Circuit::all_operations() const {
  std::vector<Operation> ops;
  ops.reserve(num_operations());
  for (const auto& moment : moments_) {
    for (const auto& op : moment.operations()) ops.push_back(op);
  }
  return ops;
}

std::set<Qubit> Circuit::qubits() const {
  std::set<Qubit> out;
  for (const auto& moment : moments_) {
    for (const auto& op : moment.operations()) {
      out.insert(op.qubits().begin(), op.qubits().end());
    }
  }
  return out;
}

int Circuit::num_qubits() const {
  int width = 0;
  for (const auto& moment : moments_) {
    for (const auto& op : moment.operations()) {
      for (Qubit q : op.qubits()) width = std::max(width, q + 1);
    }
  }
  return width;
}

bool Circuit::has_measurements() const {
  return count_operations([](const Operation& op) {
           return op.gate().is_measurement();
         }) > 0;
}

bool Circuit::has_channels() const {
  return count_operations(
             [](const Operation& op) { return op.gate().is_channel(); }) > 0;
}

bool Circuit::measurements_are_terminal() const {
  // A measurement is terminal when nothing (gate or second measurement)
  // acts on its qubits in any later moment.
  std::set<Qubit> measured;
  for (const auto& moment : moments_) {
    for (const auto& op : moment.operations()) {
      for (Qubit q : op.qubits()) {
        if (measured.contains(q)) return false;
      }
      if (op.gate().is_measurement()) {
        measured.insert(op.qubits().begin(), op.qubits().end());
      }
    }
  }
  return true;
}

std::vector<std::string> Circuit::measurement_keys() const {
  std::vector<std::string> keys;
  for (const auto& moment : moments_) {
    for (const auto& op : moment.operations()) {
      if (!op.gate().is_measurement()) continue;
      const std::string& key = op.gate().measurement_key();
      if (std::find(keys.begin(), keys.end(), key) == keys.end()) {
        keys.push_back(key);
      }
    }
  }
  return keys;
}

bool Circuit::is_parameterized() const {
  return count_operations([](const Operation& op) {
           return op.gate().is_parameterized();
         }) > 0;
}

Circuit Circuit::resolved(const ParamResolver& resolver) const {
  Circuit out;
  for (const auto& moment : moments_) {
    Moment resolved_moment;
    for (const auto& op : moment.operations()) {
      resolved_moment.add(op.resolved(resolver));
    }
    out.append_moment(std::move(resolved_moment));
  }
  return out;
}

}  // namespace bgls

#include "circuit/random.h"

#include <algorithm>
#include <numeric>

#include "util/error.h"

namespace bgls {
namespace {

/// Fisher–Yates shuffle driven by the library Rng.
template <typename T>
void shuffle(std::vector<T>& values, Rng& rng) {
  for (std::size_t i = values.size(); i > 1; --i) {
    const std::size_t j = rng.uniform_int(i);
    std::swap(values[i - 1], values[j]);
  }
}

std::vector<Gate> default_gate_domain() {
  return {Gate::X(), Gate::Y(), Gate::Z(), Gate::H(),
          Gate::S(), Gate::T(), Gate::CX(), Gate::CZ()};
}

}  // namespace

Circuit generate_random_circuit(int num_qubits,
                                const RandomCircuitOptions& options, Rng& rng) {
  BGLS_REQUIRE(num_qubits >= 1, "need at least one qubit");
  BGLS_REQUIRE(options.num_moments >= 0, "negative moment count");
  BGLS_REQUIRE(options.op_density >= 0.0 && options.op_density <= 1.0,
               "op_density must be in [0, 1]");
  const std::vector<Gate> domain =
      options.gate_domain.empty() ? default_gate_domain()
                                  : options.gate_domain;
  int max_arity = 0;
  for (const auto& gate : domain) {
    BGLS_REQUIRE(gate.is_unitary(), "random gate domain must be unitary");
    max_arity = std::max(max_arity, gate.arity());
  }
  BGLS_REQUIRE(max_arity <= num_qubits,
               "gate domain needs more qubits than available");

  Circuit circuit;
  for (int m = 0; m < options.num_moments; ++m) {
    std::vector<Qubit> order(static_cast<std::size_t>(num_qubits));
    std::iota(order.begin(), order.end(), 0);
    shuffle(order, rng);

    Moment moment;
    std::vector<bool> used(static_cast<std::size_t>(num_qubits), false);
    for (std::size_t idx = 0; idx < order.size(); ++idx) {
      const Qubit q = order[idx];
      if (used[static_cast<std::size_t>(q)]) continue;
      if (!rng.bernoulli(options.op_density)) continue;

      // Collect the remaining free qubits after q in visit order, so a
      // multi-qubit gate can grab partners.
      std::vector<Qubit> targets{q};
      for (std::size_t later = idx + 1;
           later < order.size() &&
           static_cast<int>(targets.size()) < max_arity;
           ++later) {
        if (!used[static_cast<std::size_t>(order[later])]) {
          targets.push_back(order[later]);
        }
      }
      // Choose uniformly among domain gates that fit.
      std::vector<const Gate*> fitting;
      for (const auto& gate : domain) {
        if (gate.arity() <= static_cast<int>(targets.size())) {
          fitting.push_back(&gate);
        }
      }
      if (fitting.empty()) continue;
      const Gate& gate = *fitting[rng.uniform_int(fitting.size())];
      targets.resize(static_cast<std::size_t>(gate.arity()));
      for (Qubit used_q : targets) used[static_cast<std::size_t>(used_q)] = true;
      moment.add(Operation(gate, targets));
    }
    if (!moment.empty()) circuit.append_moment(std::move(moment));
  }
  return circuit;
}

Circuit random_clifford_circuit(int num_qubits, int num_moments, Rng& rng) {
  RandomCircuitOptions options;
  options.num_moments = num_moments;
  options.op_density = 0.7;
  options.gate_domain = {Gate::H(), Gate::S(), Gate::CX()};
  return generate_random_circuit(num_qubits, options, rng);
}

Circuit random_clifford_t_circuit(int num_qubits, int num_moments, int num_t,
                                  Rng& rng) {
  Circuit clifford = random_clifford_circuit(num_qubits, num_moments, rng);
  Circuit out;
  const std::size_t total_moments = clifford.depth();
  // Choose distinct insertion points (moment indices) for the T layers.
  std::vector<std::size_t> insert_after(static_cast<std::size_t>(num_t));
  for (auto& pos : insert_after) {
    pos = total_moments == 0 ? 0 : rng.uniform_int(total_moments);
  }
  std::sort(insert_after.begin(), insert_after.end());

  std::size_t next_t = 0;
  for (std::size_t m = 0; m <= clifford.depth(); ++m) {
    while (next_t < insert_after.size() && insert_after[next_t] == m) {
      const Qubit q = static_cast<Qubit>(rng.uniform_int(
          static_cast<std::uint64_t>(num_qubits)));
      out.append(t(q), InsertStrategy::kNewThenInline);
      ++next_t;
    }
    if (m < clifford.depth()) out.append_moment(clifford.moments()[m]);
  }
  return out;
}

Circuit ghz_circuit(int num_qubits) {
  BGLS_REQUIRE(num_qubits >= 1, "need at least one qubit");
  Circuit circuit;
  circuit.append(h(0));
  for (Qubit q = 0; q + 1 < num_qubits; ++q) circuit.append(cnot(q, q + 1));
  return circuit;
}

Circuit random_ghz_circuit(int num_qubits, Rng& rng) {
  BGLS_REQUIRE(num_qubits >= 1, "need at least one qubit");
  Circuit circuit;
  circuit.append(h(0));
  std::vector<Qubit> entangled{0};
  std::vector<Qubit> pending;
  for (Qubit q = 1; q < num_qubits; ++q) pending.push_back(q);
  shuffle(pending, rng);
  for (Qubit target : pending) {
    const Qubit source = entangled[rng.uniform_int(entangled.size())];
    circuit.append(cnot(source, target));
    entangled.push_back(target);
  }
  return circuit;
}

Circuit random_fixed_cnot_circuit(int num_qubits, int num_moments,
                                  int num_cnots, Rng& rng) {
  BGLS_REQUIRE(num_qubits >= 2, "need at least two qubits for CNOTs");
  RandomCircuitOptions options;
  options.num_moments = num_moments;
  options.op_density = 0.6;
  options.gate_domain = {Gate::H(), Gate::T(), Gate::X(),
                         Gate::Y(), Gate::Z(), Gate::S()};
  Circuit circuit = generate_random_circuit(num_qubits, options, rng);
  for (int c = 0; c < num_cnots; ++c) {
    const Qubit a = static_cast<Qubit>(
        rng.uniform_int(static_cast<std::uint64_t>(num_qubits)));
    Qubit b = a;
    while (b == a) {
      b = static_cast<Qubit>(
          rng.uniform_int(static_cast<std::uint64_t>(num_qubits)));
    }
    circuit.append(cnot(a, b));
  }
  return circuit;
}

Circuit with_t_gates_replaced(const Circuit& circuit, const Gate& gate) {
  BGLS_REQUIRE(gate.arity() == 1, "replacement gate must be single-qubit");
  Circuit out;
  for (const auto& moment : circuit.moments()) {
    Moment replaced;
    for (const auto& op : moment.operations()) {
      if (op.gate().kind() == GateKind::kT) {
        replaced.add(Operation(gate, {op.qubits()[0]}));
      } else {
        replaced.add(op);
      }
    }
    out.append_moment(std::move(replaced));
  }
  return out;
}

Circuit with_random_t_substitutions(const Circuit& circuit, int count,
                                    Rng& rng) {
  // Collect positions of single-qubit operations eligible for T
  // substitution.
  struct Position {
    std::size_t moment;
    std::size_t op;
  };
  std::vector<Position> eligible;
  for (std::size_t m = 0; m < circuit.moments().size(); ++m) {
    const auto& ops = circuit.moments()[m].operations();
    for (std::size_t o = 0; o < ops.size(); ++o) {
      if (ops[o].arity() == 1 && ops[o].gate().is_unitary()) {
        eligible.push_back({m, o});
      }
    }
  }
  BGLS_REQUIRE(static_cast<std::size_t>(count) <= eligible.size(),
               "cannot substitute ", count, " T gates: only ",
               eligible.size(), " single-qubit operations available");
  shuffle(eligible, rng);
  eligible.resize(static_cast<std::size_t>(count));

  Circuit out;
  for (std::size_t m = 0; m < circuit.moments().size(); ++m) {
    Moment replaced;
    const auto& ops = circuit.moments()[m].operations();
    for (std::size_t o = 0; o < ops.size(); ++o) {
      const bool substitute =
          std::any_of(eligible.begin(), eligible.end(), [&](const Position& p) {
            return p.moment == m && p.op == o;
          });
      if (substitute) {
        replaced.add(t(ops[o].qubits()[0]));
      } else {
        replaced.add(ops[o]);
      }
    }
    out.append_moment(std::move(replaced));
  }
  return out;
}

}  // namespace bgls

/// \file diagram.h
/// ASCII circuit diagrams in the style of Cirq's text diagrams; used by
/// the examples to show the constructed circuits (the paper's Figs. 6a
/// and 8b are such diagrams).

#pragma once

#include <string>

#include "circuit/circuit.h"

namespace bgls {

/// Renders a wire-per-qubit text diagram, e.g.
///
///   0: ───H───@───────M('z')───
///             │
///   1: ───────X───────M('z')───
[[nodiscard]] std::string to_text_diagram(const Circuit& circuit);

}  // namespace bgls

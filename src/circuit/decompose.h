/// \file decompose.h
/// Standard gate decompositions.
///
/// Sec. 3.2.1 of the paper notes BGLS handles any operation "as long as
/// the apply_op function provided to the Simulator can decompose
/// operations". These passes give backends with restricted native gate
/// sets (MPS: ≤ 2 qubits; stabilizer: Clifford) access to the full zoo
/// by lowering gates to textbook equivalents before simulation.

#pragma once

#include "circuit/circuit.h"

namespace bgls {

/// Decomposes a single operation into operations of at most
/// `max_arity` qubits (1 or 2). Known lowerings:
///  - CCX/CCZ → 2-qubit {CX, T, T†, H} network (the standard 7-T-count
///    Toffoli),
///  - CSWAP → CX + CCX, then lowered recursively,
///  - SWAP → 3 CX (only when max_arity == 1 would fail: SWAP is already
///    2-qubit, so this is used by callers that want CX-only output).
/// Operations already within the arity bound pass through unchanged.
/// Throws UnsupportedOperationError when no decomposition is known.
[[nodiscard]] std::vector<Operation> decompose_operation(const Operation& op,
                                                         int max_arity = 2);

/// Applies decompose_operation to every operation of a circuit,
/// repacking with the earliest strategy. Measurements and channels pass
/// through untouched.
[[nodiscard]] Circuit decompose_to_arity(const Circuit& circuit,
                                         int max_arity = 2);

/// Rewrites SWAP gates as 3 CX (useful for backends/baselines that
/// only track CX natively).
[[nodiscard]] Circuit expand_swaps(const Circuit& circuit);

}  // namespace bgls

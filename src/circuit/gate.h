/// \file gate.h
/// The gate zoo — the circuit layer's equivalent of Cirq's common gates.
///
/// A Gate is a value type describing *what* is applied; an Operation
/// (operation.h) binds a gate to target qubits. Gates carry enough
/// metadata for every backend in the library:
///  - a unitary matrix (matrix-based backends),
///  - Clifford/diagonal structure flags (stabilizer backend, optimizer),
///  - rotation parameters, possibly symbolic (near-Clifford channel
///    decomposition needs the Rz angle; QAOA sweeps need symbols),
///  - measurement keys and Kraus channels for the non-unitary cases.
///
/// Matrix convention: for a gate on qubits (q0, q1, ...), the gate-local
/// basis index is q0's bit as the *most significant* bit (Cirq's
/// convention), i.e. CX(control, target) maps |10⟩ → |11⟩.

#pragma once

#include <memory>
#include <optional>
#include <string>

#include "channels/channels.h"
#include "circuit/param.h"
#include "linalg/matrix.h"
#include "statevector/kernels.h"  // CompiledMatrix (depends only on linalg)

namespace bgls {

/// Discriminates every gate the library knows natively.
enum class GateKind {
  kIdentity,
  kX,
  kY,
  kZ,
  kH,
  kS,
  kSdg,
  kT,
  kTdg,
  kSqrtX,
  kRx,
  kRy,
  kRz,
  kPhase,   // diag(1, e^{i θ})
  kMatrix1, // arbitrary single-qubit unitary
  kCX,
  kCZ,
  kSwap,
  kISwap,
  kCPhase,  // diag(1, 1, 1, e^{i θ})
  kZZ,      // exp(-i θ/2 Z⊗Z)
  kMatrix2, // arbitrary two-qubit unitary
  kCCX,
  kCCZ,
  kCSwap,
  kMeasure,
  kChannel,
};

/// Value-semantic gate description. Construct through the named factory
/// functions; heavy payloads (matrices, channels) are shared.
class Gate {
 public:
  // --- Single-qubit gates -------------------------------------------------
  static Gate I();
  static Gate X();
  static Gate Y();
  static Gate Z();
  static Gate H();
  static Gate S();
  static Gate Sdg();
  static Gate T();
  static Gate Tdg();
  static Gate SqrtX();
  /// exp(-i θ X / 2); θ may be symbolic.
  static Gate Rx(Param theta);
  /// exp(-i θ Y / 2).
  static Gate Ry(Param theta);
  /// exp(-i θ Z / 2). The near-Clifford channel (Sec. 4.2) consumes this.
  static Gate Rz(Param theta);
  /// diag(1, e^{i θ}) — ZPowGate up to global phase.
  static Gate Phase(Param theta);
  /// Arbitrary 2x2 unitary (used by the circuit optimizer's fused gates).
  static Gate SingleQubitMatrix(Matrix m, std::string name = "U");

  // --- Two-qubit gates ----------------------------------------------------
  static Gate CX();
  static Gate CZ();
  static Gate Swap();
  static Gate ISwap();
  /// diag(1, 1, 1, e^{i θ}).
  static Gate CPhase(Param theta);
  /// exp(-i θ/2 Z⊗Z) — the QAOA cost-layer gate.
  static Gate ZZ(Param theta);
  /// Arbitrary 4x4 unitary.
  static Gate TwoQubitMatrix(Matrix m, std::string name = "U2");

  // --- Three-qubit gates --------------------------------------------------
  static Gate CCX();
  static Gate CCZ();
  static Gate CSwap();

  // --- Non-unitary --------------------------------------------------------
  /// Computational-basis measurement of its targets, recorded under `key`.
  static Gate Measure(std::string key, int num_qubits);
  /// Kraus channel wrapped as a gate.
  static Gate Channel(KrausChannel channel);

  [[nodiscard]] GateKind kind() const { return kind_; }

  /// Number of qubits the gate acts on.
  [[nodiscard]] int arity() const { return arity_; }

  [[nodiscard]] bool is_measurement() const {
    return kind_ == GateKind::kMeasure;
  }
  [[nodiscard]] bool is_channel() const { return kind_ == GateKind::kChannel; }

  /// True for every gate with a well-defined unitary matrix.
  [[nodiscard]] bool is_unitary() const {
    return !is_measurement() && !is_channel();
  }

  /// True when the gate kind is in the Clifford group for every parameter
  /// value it can carry (H, S, S†, Paulis, √X, CX, CZ, SWAP). Rotation
  /// gates return false even at Clifford angles; the near-Clifford
  /// machinery handles those dynamically (see stabilizer/near_clifford.h).
  [[nodiscard]] bool is_clifford() const;

  /// True when the unitary is diagonal in the computational basis.
  [[nodiscard]] bool is_diagonal() const;

  /// True when any parameter is an unresolved symbol.
  [[nodiscard]] bool is_parameterized() const;

  /// Rotation/phase angle for parameterized kinds; throws otherwise.
  [[nodiscard]] const Param& parameter() const;

  /// Returns a copy with symbols resolved through `resolver`.
  [[nodiscard]] Gate resolved(const ParamResolver& resolver) const;

  /// The gate's unitary matrix (2^arity square). Throws for measurements,
  /// channels, and unresolved symbolic gates.
  [[nodiscard]] Matrix unitary() const;

  /// The gate's unitary bundled with its kernel classification
  /// (kernels.h), computed once per gate and memoized: copies of this
  /// gate — including the per-run Operation copies
  /// Circuit::all_operations() hands the samplers — share one cache
  /// slot, so matrix construction and structural classification stop
  /// re-running on every apply. Thread-safe (first caller wins, racers
  /// wait). Throws exactly like unitary() for measurements, channels,
  /// and unresolved symbolic parameters — and never caches in those
  /// cases, so a later resolved() copy still works. resolved() gives
  /// the returned copy a fresh slot whenever it changes the parameter
  /// (the only mutation a Gate value can undergo).
  [[nodiscard]] std::shared_ptr<const kernels::CompiledMatrix>
  compiled_unitary() const;

  /// Measurement key; only valid for measurement gates.
  [[nodiscard]] const std::string& measurement_key() const;

  /// The Kraus channel; only valid for channel gates.
  [[nodiscard]] const KrausChannel& channel() const;

  /// Human-readable name, e.g. "H", "Rz(0.25)", "M('z')".
  [[nodiscard]] std::string name() const;

  /// Short per-qubit wire symbols for text diagrams, e.g. {"@", "X"} for
  /// CX.
  [[nodiscard]] std::vector<std::string> diagram_symbols() const;

 private:
  struct UnitaryCache;

  Gate(GateKind kind, int arity);

  GateKind kind_ = GateKind::kIdentity;
  int arity_ = 1;
  std::optional<Param> param_;
  std::shared_ptr<const Matrix> matrix_;
  std::shared_ptr<const KrausChannel> channel_;
  std::string key_;
  std::string custom_name_;
  /// Shared memoization slot for compiled_unitary(); copies of a gate
  /// point at the same slot, so the first apply fills it for everyone.
  std::shared_ptr<UnitaryCache> unitary_cache_;
};

}  // namespace bgls

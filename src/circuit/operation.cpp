#include "circuit/operation.h"

#include <algorithm>
#include <sstream>

#include "util/error.h"

namespace bgls {

Operation::Operation(Gate gate, std::vector<Qubit> qubits)
    : gate_(std::move(gate)), qubits_(std::move(qubits)) {
  BGLS_REQUIRE(static_cast<int>(qubits_.size()) == gate_.arity(),
               "operation '", gate_.name(), "' expects ", gate_.arity(),
               " qubits, got ", qubits_.size());
  for (std::size_t i = 0; i < qubits_.size(); ++i) {
    BGLS_REQUIRE(qubits_[i] >= 0, "negative qubit index ", qubits_[i]);
    for (std::size_t j = i + 1; j < qubits_.size(); ++j) {
      BGLS_REQUIRE(qubits_[i] != qubits_[j],
                   "operation targets duplicate qubit ", qubits_[i]);
    }
  }
}

Operation Operation::controlled_by_measurement(std::string key) const {
  BGLS_REQUIRE(gate_.is_unitary(),
               "only unitary operations can be classically controlled, got '",
               gate_.name(), "'");
  BGLS_REQUIRE(!key.empty(), "condition key must be non-empty");
  Operation controlled = *this;
  controlled.condition_key_ = std::move(key);
  return controlled;
}

bool Operation::acts_on(Qubit q) const {
  return std::find(qubits_.begin(), qubits_.end(), q) != qubits_.end();
}

bool Operation::overlaps(const Operation& other) const {
  return std::any_of(qubits_.begin(), qubits_.end(),
                     [&](Qubit q) { return other.acts_on(q); });
}

Operation Operation::resolved(const ParamResolver& resolver) const {
  return Operation(gate_.resolved(resolver), qubits_);
}

std::string Operation::to_string() const {
  std::ostringstream oss;
  oss << gate_.name() << '(';
  for (std::size_t i = 0; i < qubits_.size(); ++i) {
    oss << qubits_[i] << (i + 1 < qubits_.size() ? ", " : "");
  }
  oss << ')';
  if (is_classically_controlled()) oss << ".if('" << condition_key_ << "')";
  return oss.str();
}

Operation h(Qubit q) { return Operation(Gate::H(), {q}); }
Operation x(Qubit q) { return Operation(Gate::X(), {q}); }
Operation y(Qubit q) { return Operation(Gate::Y(), {q}); }
Operation z(Qubit q) { return Operation(Gate::Z(), {q}); }
Operation s(Qubit q) { return Operation(Gate::S(), {q}); }
Operation sdg(Qubit q) { return Operation(Gate::Sdg(), {q}); }
Operation t(Qubit q) { return Operation(Gate::T(), {q}); }
Operation tdg(Qubit q) { return Operation(Gate::Tdg(), {q}); }

Operation rx(Param theta, Qubit q) {
  return Operation(Gate::Rx(std::move(theta)), {q});
}
Operation ry(Param theta, Qubit q) {
  return Operation(Gate::Ry(std::move(theta)), {q});
}
Operation rz(Param theta, Qubit q) {
  return Operation(Gate::Rz(std::move(theta)), {q});
}

Operation cnot(Qubit control, Qubit target) {
  return Operation(Gate::CX(), {control, target});
}
Operation cz(Qubit a, Qubit b) { return Operation(Gate::CZ(), {a, b}); }
Operation swap(Qubit a, Qubit b) { return Operation(Gate::Swap(), {a, b}); }
Operation zz(Param theta, Qubit a, Qubit b) {
  return Operation(Gate::ZZ(std::move(theta)), {a, b});
}

Operation ccx(Qubit c0, Qubit c1, Qubit target) {
  return Operation(Gate::CCX(), {c0, c1, target});
}

Operation measure(std::vector<Qubit> qubits, std::string key) {
  const int n = static_cast<int>(qubits.size());
  return Operation(Gate::Measure(std::move(key), n), std::move(qubits));
}

}  // namespace bgls

/// \file circuit.h
/// Circuits as sequences of Moments — the same structure Cirq uses and
/// the paper's Sec. 3.1 snippet builds. The gate-by-gate sampler iterates
/// operations moment by moment; the optimizer (core/optimize.h) repacks
/// them.

#pragma once

#include <initializer_list>
#include <set>
#include <string>
#include <vector>

#include "circuit/operation.h"

namespace bgls {

/// A set of operations acting on disjoint qubits that execute "at the
/// same time step".
class Moment {
 public:
  Moment() = default;

  /// Builds a moment; operations must act on disjoint qubit sets.
  explicit Moment(std::vector<Operation> operations);

  [[nodiscard]] const std::vector<Operation>& operations() const {
    return operations_;
  }
  [[nodiscard]] bool empty() const { return operations_.empty(); }

  /// True when any operation in the moment touches `q`.
  [[nodiscard]] bool acts_on(Qubit q) const;

  /// True when `op` could be added without qubit overlap.
  [[nodiscard]] bool can_accept(const Operation& op) const;

  /// Adds an operation; throws on qubit overlap.
  void add(Operation op);

 private:
  std::vector<Operation> operations_;
};

/// Append placement strategies, mirroring cirq.InsertStrategy.
enum class InsertStrategy {
  /// Slide each operation into the earliest moment (from the end) whose
  /// qubits are free — Cirq's EARLIEST, and the default.
  kEarliest,
  /// Always open a fresh moment for each appended operation.
  kNewThenInline,
};

/// An ordered sequence of moments.
class Circuit {
 public:
  Circuit() = default;

  /// Builds a circuit by appending the listed operations with the
  /// earliest strategy (matches the cirq.Circuit(...) constructor used in
  /// the paper's quickstart snippet).
  Circuit(std::initializer_list<Operation> operations);

  /// Appends one operation.
  void append(Operation op,
              InsertStrategy strategy = InsertStrategy::kEarliest);

  /// Appends a batch of operations in order.
  void append(const std::vector<Operation>& operations,
              InsertStrategy strategy = InsertStrategy::kEarliest);

  /// Appends every moment of another circuit (moment structure kept).
  void append(const Circuit& other);

  /// Appends a complete moment as-is.
  void append_moment(Moment moment);

  [[nodiscard]] const std::vector<Moment>& moments() const {
    return moments_;
  }

  /// Number of moments (circuit depth in the paper's sense).
  [[nodiscard]] std::size_t depth() const { return moments_.size(); }

  /// Total number of operations.
  [[nodiscard]] std::size_t num_operations() const;

  /// All operations flattened in execution order.
  [[nodiscard]] std::vector<Operation> all_operations() const;

  /// The set of qubits touched by any operation.
  [[nodiscard]] std::set<Qubit> qubits() const;

  /// 1 + the largest qubit id (0 for an empty circuit): the width of the
  /// register needed to simulate this circuit with dense backends.
  [[nodiscard]] int num_qubits() const;

  /// True when any operation is a measurement.
  [[nodiscard]] bool has_measurements() const;

  /// True when any operation is a Kraus channel.
  [[nodiscard]] bool has_channels() const;

  /// True when measurements appear only in a suffix of moments after
  /// which no non-measurement gate touches the measured qubits — the
  /// condition under which sample parallelization applies (Sec. 3.2.3).
  [[nodiscard]] bool measurements_are_terminal() const;

  /// All distinct measurement keys in appearance order.
  [[nodiscard]] std::vector<std::string> measurement_keys() const;

  /// True when any gate still has unresolved symbols.
  [[nodiscard]] bool is_parameterized() const;

  /// Returns a copy with every gate parameter resolved.
  [[nodiscard]] Circuit resolved(const ParamResolver& resolver) const;

  /// Counts operations whose gate satisfies a predicate.
  template <typename Pred>
  [[nodiscard]] std::size_t count_operations(Pred&& pred) const {
    std::size_t count = 0;
    for (const auto& moment : moments_) {
      for (const auto& op : moment.operations()) {
        if (pred(op)) ++count;
      }
    }
    return count;
  }

 private:
  std::vector<Moment> moments_;
};

}  // namespace bgls

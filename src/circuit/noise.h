/// \file noise.h
/// Noise-model convenience: wrap an ideal circuit with per-gate noise
/// (the cirq.Circuit.with_noise idiom the paper's noisy-simulation
/// feature targets).

#pragma once

#include "channels/channels.h"
#include "circuit/circuit.h"

namespace bgls {

/// Returns a copy of `circuit` where, after every moment, the given
/// single-qubit channel is applied to every qubit that moment acted on
/// (measurement-only moments are left clean). The result is a
/// stochastic circuit to be sampled via quantum trajectories.
[[nodiscard]] Circuit with_noise(const Circuit& circuit,
                                 const KrausChannel& channel);

}  // namespace bgls

#include "circuit/diagram.h"

#include <algorithm>
#include <sstream>

namespace bgls {
namespace {

/// Per-moment column of wire symbols plus vertical connector flags.
struct Column {
  std::vector<std::string> symbols;  // one per qubit row, may be empty
  std::vector<bool> connected;       // rows spanned by a multi-qubit op
};

}  // namespace

std::string to_text_diagram(const Circuit& circuit) {
  const int n = circuit.num_qubits();
  if (n == 0) return "(empty circuit)\n";

  std::vector<Column> columns;
  for (const auto& moment : circuit.moments()) {
    Column col;
    col.symbols.assign(static_cast<std::size_t>(n), "");
    col.connected.assign(static_cast<std::size_t>(n), false);
    for (const auto& op : moment.operations()) {
      const auto symbols = op.gate().diagram_symbols();
      const auto qubits = op.qubits();
      for (std::size_t i = 0; i < qubits.size(); ++i) {
        col.symbols[static_cast<std::size_t>(qubits[i])] = symbols[i];
      }
      if (qubits.size() > 1) {
        const auto [lo_it, hi_it] =
            std::minmax_element(qubits.begin(), qubits.end());
        for (Qubit q = *lo_it; q <= *hi_it; ++q) {
          col.connected[static_cast<std::size_t>(q)] = true;
        }
      }
    }
    columns.push_back(std::move(col));
  }

  // Column widths: widest symbol in the column (minimum 1).
  std::vector<std::size_t> widths(columns.size(), 1);
  for (std::size_t c = 0; c < columns.size(); ++c) {
    for (const auto& sym : columns[c].symbols) {
      widths[c] = std::max(widths[c], sym.size());
    }
  }

  std::ostringstream oss;
  std::size_t label_width = std::to_string(n - 1).size();
  for (int q = 0; q < n; ++q) {
    // Wire row.
    std::string label = std::to_string(q);
    oss << std::string(label_width - label.size(), ' ') << label << ": ---";
    for (std::size_t c = 0; c < columns.size(); ++c) {
      const std::string& sym = columns[c].symbols[static_cast<std::size_t>(q)];
      const std::string body =
          sym.empty() ? std::string(widths[c], '-') : sym;
      oss << body << std::string(widths[c] - body.size(), '-') << "---";
    }
    oss << '\n';
    if (q + 1 == n) break;
    // Connector row between wires q and q+1.
    oss << std::string(label_width + 2 + 3, ' ');
    for (std::size_t c = 0; c < columns.size(); ++c) {
      const bool link = columns[c].connected[static_cast<std::size_t>(q)] &&
                        columns[c].connected[static_cast<std::size_t>(q) + 1];
      std::string body(widths[c], ' ');
      if (link) body[0] = '|';
      oss << body << "   ";
    }
    oss << '\n';
  }
  return oss.str();
}

}  // namespace bgls

#include "circuit/param.h"

#include <sstream>

namespace bgls {

std::string Param::to_string() const {
  if (is_symbolic()) return symbol().name;
  std::ostringstream oss;
  oss << value();
  return oss.str();
}

Param ParamResolver::resolve(const Param& param) const {
  if (!param.is_symbolic()) return param;
  const auto it = values_.find(param.symbol().name);
  BGLS_REQUIRE(it != values_.end(), "no value bound for symbol '",
               param.symbol().name, "'");
  return Param(it->second);
}

}  // namespace bgls

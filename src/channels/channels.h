/// \file channels.h
/// Quantum noise channels in Kraus-operator form.
///
/// BGLS supports non-unitary operations through quantum trajectories
/// (Sec. 3.2.1 of the paper): pure-state backends sample one Kraus
/// operator per shot, while the density-matrix backend applies the full
/// deterministic Kraus sum. This module owns the channel definitions and
/// their CPTP validation; the circuit layer wraps them as gates.

#pragma once

#include <string>
#include <vector>

#include "linalg/matrix.h"

namespace bgls {

/// A completely-positive trace-preserving map given by Kraus operators
/// {K_i} with sum_i K_i† K_i = I.
class KrausChannel {
 public:
  /// Builds a channel from explicit Kraus operators; validates that all
  /// operators share the same square shape (2^arity) and satisfy the CPTP
  /// completeness relation within `tol`.
  KrausChannel(std::string name, std::vector<Matrix> operators,
               double tol = 1e-9);

  /// Display name, e.g. "depolarize(0.1)".
  [[nodiscard]] const std::string& name() const { return name_; }

  /// Number of qubits the channel acts on.
  [[nodiscard]] int arity() const { return arity_; }

  /// The Kraus operators.
  [[nodiscard]] const std::vector<Matrix>& operators() const {
    return operators_;
  }

 private:
  std::string name_;
  int arity_ = 1;
  std::vector<Matrix> operators_;
};

/// X is applied with probability p: K0 = sqrt(1-p) I, K1 = sqrt(p) X.
[[nodiscard]] KrausChannel bit_flip(double p);

/// Z is applied with probability p.
[[nodiscard]] KrausChannel phase_flip(double p);

/// Symmetric single-qubit depolarizing channel: each of X, Y, Z with
/// probability p/3.
[[nodiscard]] KrausChannel depolarize(double p);

/// Amplitude damping with decay probability gamma (T1-style decay).
[[nodiscard]] KrausChannel amplitude_damp(double gamma);

/// Phase damping with dephasing probability gamma (T2-style dephasing).
[[nodiscard]] KrausChannel phase_damp(double gamma);

}  // namespace bgls

#include "channels/channels.h"

#include <cmath>
#include <sstream>

#include "util/error.h"

namespace bgls {
namespace {

std::string format_name(const char* base, double value) {
  std::ostringstream oss;
  oss << base << '(' << value << ')';
  return oss.str();
}

void require_probability(double p, const char* what) {
  BGLS_REQUIRE(p >= 0.0 && p <= 1.0, what, " requires probability in [0, 1], got ",
               p);
}

}  // namespace

KrausChannel::KrausChannel(std::string name, std::vector<Matrix> operators,
                           double tol)
    : name_(std::move(name)), operators_(std::move(operators)) {
  BGLS_REQUIRE(!operators_.empty(), "channel '", name_,
               "' needs at least one Kraus operator");
  const std::size_t dim = operators_.front().rows();
  BGLS_REQUIRE(dim > 0 && (dim & (dim - 1)) == 0, "channel '", name_,
               "' dimension must be a power of two, got ", dim);
  arity_ = 0;
  for (std::size_t d = dim; d > 1; d >>= 1) ++arity_;
  Matrix completeness(dim, dim);
  for (const auto& k : operators_) {
    BGLS_REQUIRE(k.rows() == dim && k.cols() == dim, "channel '", name_,
                 "' has inconsistently shaped Kraus operators");
    completeness = completeness + k.adjoint() * k;
  }
  BGLS_REQUIRE(completeness.approx_equal(Matrix::identity(dim), tol),
               "channel '", name_,
               "' is not trace preserving (sum K†K != I)");
}

KrausChannel bit_flip(double p) {
  require_probability(p, "bit_flip");
  const double a = std::sqrt(1.0 - p);
  const double b = std::sqrt(p);
  Matrix k0(2, 2, {a, 0, 0, a});
  Matrix k1(2, 2, {0, b, b, 0});
  return KrausChannel(format_name("bit_flip", p), {k0, k1});
}

KrausChannel phase_flip(double p) {
  require_probability(p, "phase_flip");
  const double a = std::sqrt(1.0 - p);
  const double b = std::sqrt(p);
  Matrix k0(2, 2, {a, 0, 0, a});
  Matrix k1(2, 2, {b, 0, 0, -b});
  return KrausChannel(format_name("phase_flip", p), {k0, k1});
}

KrausChannel depolarize(double p) {
  require_probability(p, "depolarize");
  const double a = std::sqrt(1.0 - p);
  const double b = std::sqrt(p / 3.0);
  Matrix k0(2, 2, {a, 0, 0, a});
  Matrix kx(2, 2, {0, b, b, 0});
  Matrix ky(2, 2, {0, Complex{0, -b}, Complex{0, b}, 0});
  Matrix kz(2, 2, {b, 0, 0, -b});
  return KrausChannel(format_name("depolarize", p), {k0, kx, ky, kz});
}

KrausChannel amplitude_damp(double gamma) {
  require_probability(gamma, "amplitude_damp");
  Matrix k0(2, 2, {1, 0, 0, std::sqrt(1.0 - gamma)});
  Matrix k1(2, 2, {0, std::sqrt(gamma), 0, 0});
  return KrausChannel(format_name("amplitude_damp", gamma), {k0, k1});
}

KrausChannel phase_damp(double gamma) {
  require_probability(gamma, "phase_damp");
  Matrix k0(2, 2, {1, 0, 0, std::sqrt(1.0 - gamma)});
  Matrix k1(2, 2, {0, 0, 0, std::sqrt(gamma)});
  return KrausChannel(format_name("phase_damp", gamma), {k0, k1});
}

}  // namespace bgls

#include "obs/timeline.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>
#include <tuple>

#include "util/json_writer.h"

namespace bgls::obs {

namespace {

std::string hex_id(std::uint64_t id) {
  char buffer[19];
  std::snprintf(buffer, sizeof(buffer), "0x%016llx",
                static_cast<unsigned long long>(id));
  return std::string(buffer);
}

/// Sorted copy + parent->children index. Children inherit the sorted
/// order, so traversal order is deterministic.
struct SpanForest {
  std::vector<SpanRecord> spans;              // sorted (name, index, id)
  std::vector<std::vector<std::size_t>> kids;  // by position in `spans`
  std::vector<std::size_t> roots;

  explicit SpanForest(const std::vector<SpanRecord>& input) : spans(input) {
    std::sort(spans.begin(), spans.end(),
              [](const SpanRecord& a, const SpanRecord& b) {
                return std::tie(a.name, a.index, a.id) <
                       std::tie(b.name, b.index, b.id);
              });
    std::map<std::uint64_t, std::size_t> by_id;
    for (std::size_t i = 0; i < spans.size(); ++i) {
      by_id.emplace(spans[i].id, i);  // first wins on duplicate ids
    }
    kids.resize(spans.size());
    for (std::size_t i = 0; i < spans.size(); ++i) {
      const auto it = by_id.find(spans[i].parent);
      // Self-parenting would loop the walk; treat it as a root too.
      if (spans[i].parent == 0 || it == by_id.end() || it->second == i) {
        roots.push_back(i);
      } else {
        kids[it->second].push_back(i);
      }
    }
  }
};

}  // namespace

std::string render_span_tree(std::uint64_t trace_id,
                             const std::vector<SpanRecord>& spans) {
  const SpanForest forest(spans);
  std::ostringstream os;
  os << "trace " << hex_id(trace_id) << " (" << forest.spans.size()
     << (forest.spans.size() == 1 ? " span)\n" : " spans)\n");

  // Iterative DFS; stack holds (position, depth).
  std::vector<std::pair<std::size_t, std::size_t>> stack;
  for (auto it = forest.roots.rbegin(); it != forest.roots.rend(); ++it) {
    stack.emplace_back(*it, 0);
  }
  while (!stack.empty()) {
    const auto [pos, depth] = stack.back();
    stack.pop_back();
    const SpanRecord& span = forest.spans[pos];
    for (std::size_t i = 0; i < depth; ++i) os << "  ";
    os << "- " << span.name;
    if (span.index != 0) os << "[" << span.index << "]";
    char duration[32];
    std::snprintf(duration, sizeof(duration), "%.3f", span.seconds * 1e3);
    os << " (id=" << hex_id(span.id) << ", " << duration << " ms)\n";
    const auto& children = forest.kids[pos];
    for (auto it = children.rbegin(); it != children.rend(); ++it) {
      stack.emplace_back(*it, depth + 1);
    }
  }
  return os.str();
}

std::string to_chrome_trace(std::uint64_t trace_id,
                            const std::vector<SpanRecord>& spans) {
  const SpanForest forest(spans);
  std::ostringstream os;
  JsonWriter json(os, JsonWriter::Style::kCompact);
  json.begin_object();
  json.key("displayTimeUnit").value("ms");
  json.key("traceEvents").begin_array();

  // DFS with synthesized start offsets: each root starts at 0; a
  // node's children are laid out back to back from its start. tid is
  // the tree depth, so each nesting level gets its own track.
  struct Frame {
    std::size_t pos;
    std::size_t depth;
    double start_us;
  };
  std::vector<Frame> stack;
  for (auto it = forest.roots.rbegin(); it != forest.roots.rend(); ++it) {
    stack.push_back({*it, 0, 0.0});
  }
  while (!stack.empty()) {
    const Frame frame = stack.back();
    stack.pop_back();
    const SpanRecord& span = forest.spans[frame.pos];
    json.begin_object();
    json.key("name").value(span.name);
    json.key("cat").value("bgls");
    json.key("ph").value("X");
    json.key("ts").value(frame.start_us);
    json.key("dur").value(span.seconds * 1e6);
    json.key("pid").value(1);
    json.key("tid").value(static_cast<std::uint64_t>(frame.depth));
    json.key("args").begin_object();
    json.key("trace_id").value(hex_id(trace_id));
    json.key("span_id").value(hex_id(span.id));
    json.key("parent_span_id").value(hex_id(span.parent));
    json.key("index").value(span.index);
    json.end_object();
    json.end_object();
    const auto& children = forest.kids[frame.pos];
    // Compute each child's offset in forward order, push in reverse so
    // the DFS emits them forward.
    std::vector<double> starts(children.size());
    double cursor = frame.start_us;
    for (std::size_t i = 0; i < children.size(); ++i) {
      starts[i] = cursor;
      cursor += forest.spans[children[i]].seconds * 1e6;
    }
    for (std::size_t i = children.size(); i-- > 0;) {
      stack.push_back({children[i], frame.depth + 1, starts[i]});
    }
  }
  json.end_array();
  json.end_object();
  return os.str();
}

}  // namespace bgls::obs

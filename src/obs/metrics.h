/// \file metrics.h
/// Process-wide telemetry: a lock-cheap metrics registry with counter,
/// gauge, and fixed-bucket latency-histogram series.
///
/// Design contract (ROADMAP "fleet-scale serving" direction):
///  - the hot path is relaxed atomics only — instrumentation sites hold
///    a cached handle (`Counter`/`Gauge`/`Histogram`) resolved once
///    under the registry mutex and then touch their cell lock-free;
///  - series cells live for the life of the process (the global
///    registry never erases), so handles are plain pointers;
///  - telemetry is observation-only: it never reads or advances RNG
///    state, so enabling it cannot perturb sampling determinism;
///  - collection compiles out entirely with -DBGLS_ENABLE_TELEMETRY=OFF
///    (the build defines BGLS_TELEMETRY_OFF; handles become inert) and
///    can also be toggled at runtime via set_enabled() — the in-binary
///    switch the overhead micro-bench uses for its before/after rows.
///
/// Naming follows Prometheus conventions: snake_case base names with
/// unit suffixes (`_seconds`, `_total`), optional labels appended as
/// `name{key="value"}`. obs/exposition.h renders snapshots in the
/// Prometheus text exposition format and as JSON.

#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#if defined(BGLS_TELEMETRY_OFF)
#define BGLS_TELEMETRY 0
#else
#define BGLS_TELEMETRY 1
#endif

namespace bgls::obs {

/// True when the library was built with telemetry compiled in
/// (BGLS_ENABLE_TELEMETRY=ON, the default).
inline constexpr bool kTelemetryCompiled = BGLS_TELEMETRY != 0;

/// Runtime kill-switch (default on). Affects recording only — series
/// already registered keep their values; handles stay valid.
[[nodiscard]] bool enabled() noexcept;
void set_enabled(bool on) noexcept;

/// RAII runtime toggle: sets enabled(on) for a scope, restores the
/// previous value on exit. Used by the overhead micro-bench and tests.
class EnabledScope {
 public:
  explicit EnabledScope(bool on) : previous_(enabled()) { set_enabled(on); }
  ~EnabledScope() { set_enabled(previous_); }
  EnabledScope(const EnabledScope&) = delete;
  EnabledScope& operator=(const EnabledScope&) = delete;

 private:
  bool previous_;
};

namespace detail {

/// Lock-free accumulation cell for one series. Counters/gauges use
/// `count` (counters also mirror the double view for fractional adds);
/// histograms own `buckets` (one slot per upper bound + overflow) and
/// track the running sum of observations.
///
/// Doubles accumulate by CAS on the bit pattern of an atomic<uint64_t>:
/// std::atomic<double>::fetch_add is C++20 and not universally
/// lock-free, while 64-bit CAS is on every target we build for.
struct Cell {
  std::atomic<std::uint64_t> count{0};
  std::atomic<std::uint64_t> sum_bits{0};  // double bit pattern
  std::vector<std::atomic<std::uint64_t>> buckets;  // histograms only
  std::vector<double> bounds;                       // histograms only

  void add_sum(double delta) noexcept;
  [[nodiscard]] double sum() const noexcept;
};

}  // namespace detail

/// Monotonically increasing series handle. Copyable, trivially cheap;
/// a default-constructed (or telemetry-off) handle is inert.
class Counter {
 public:
  Counter() = default;

  void add(std::uint64_t delta = 1) noexcept {
#if BGLS_TELEMETRY
    if (cell_ != nullptr && enabled()) {
      cell_->count.fetch_add(delta, std::memory_order_relaxed);
    }
#else
    (void)delta;
#endif
  }

  [[nodiscard]] std::uint64_t value() const noexcept {
    return cell_ == nullptr ? 0
                            : cell_->count.load(std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  explicit Counter(detail::Cell* cell) : cell_(cell) {}
  detail::Cell* cell_ = nullptr;
};

/// Instantaneous-value series handle (queue depth, active workers).
class Gauge {
 public:
  Gauge() = default;

  void set(std::int64_t value) noexcept {
#if BGLS_TELEMETRY
    if (cell_ != nullptr && enabled()) {
      cell_->count.store(static_cast<std::uint64_t>(value),
                         std::memory_order_relaxed);
    }
#else
    (void)value;
#endif
  }

  void add(std::int64_t delta = 1) noexcept {
#if BGLS_TELEMETRY
    if (cell_ != nullptr && enabled()) {
      cell_->count.fetch_add(static_cast<std::uint64_t>(delta),
                             std::memory_order_relaxed);
    }
#else
    (void)delta;
#endif
  }

  void sub(std::int64_t delta = 1) noexcept { add(-delta); }

  [[nodiscard]] std::int64_t value() const noexcept {
    return cell_ == nullptr ? 0
                            : static_cast<std::int64_t>(cell_->count.load(
                                  std::memory_order_relaxed));
  }

 private:
  friend class MetricsRegistry;
  explicit Gauge(detail::Cell* cell) : cell_(cell) {}
  detail::Cell* cell_ = nullptr;
};

/// Fixed-bucket latency histogram handle. Buckets are cumulative at
/// exposition time only; observe() touches exactly one bucket slot plus
/// the count/sum cells, all relaxed atomics.
class Histogram {
 public:
  Histogram() = default;

  void observe(double value) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept {
    return cell_ == nullptr ? 0
                            : cell_->count.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept {
    return cell_ == nullptr ? 0.0 : cell_->sum();
  }

 private:
  friend class MetricsRegistry;
  explicit Histogram(detail::Cell* cell) : cell_(cell) {}
  detail::Cell* cell_ = nullptr;
};

/// Point-in-time copy of one series, as read by snapshot().
struct SeriesSnapshot {
  enum class Kind { kCounter, kGauge, kHistogram };

  std::string name;  // full series name, labels included
  std::string help;
  Kind kind = Kind::kCounter;
  std::uint64_t count = 0;                   // counter value / histogram count
  double gauge = 0.0;                        // gauge value
  double sum = 0.0;                          // histogram sum
  std::vector<double> bounds;                // histogram upper bounds
  std::vector<std::uint64_t> bucket_counts;  // per-bound (non-cumulative)
};

/// An ordered (by series name) snapshot of every registered series.
using MetricsSnapshot = std::vector<SeriesSnapshot>;

/// Default latency bucket bounds in seconds: 1 µs … 10 s, roughly one
/// step per 2–4×. Covers both single-gate applies (µs) and whole jobs.
[[nodiscard]] const std::vector<double>& default_latency_buckets();

/// Named-series registry. Registration (the `counter`/`gauge`/
/// `histogram` lookups) takes a mutex; recording through the returned
/// handles is lock-free. Series are identified by their full name —
/// append labels as `name{key="value"}` to get one cell per label set.
///
/// The process-wide instance is MetricsRegistry::global(); tests can
/// construct private registries for isolation.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry every instrumentation site records into.
  [[nodiscard]] static MetricsRegistry& global();

  /// Finds or creates a series; throws bgls::ValueError when `name` is
  /// already registered with a different kind (or, for histograms,
  /// different bounds). When telemetry is compiled out the returned
  /// handles are inert and nothing is registered.
  [[nodiscard]] Counter counter(std::string_view name, std::string_view help);
  [[nodiscard]] Gauge gauge(std::string_view name, std::string_view help);
  [[nodiscard]] Histogram histogram(
      std::string_view name, std::string_view help,
      const std::vector<double>& bounds = default_latency_buckets());

  /// Copies every series, sorted by name. Safe to call concurrently
  /// with recording (values are read with relaxed loads; a snapshot is
  /// a consistent-enough point-in-time view, not a linearization).
  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Zeroes every cell (testing only — handles stay valid).
  void reset_for_testing();

 private:
  struct Series {
    SeriesSnapshot::Kind kind;
    std::string help;
    std::unique_ptr<detail::Cell> cell;
  };

  detail::Cell* find_or_create(std::string_view name, std::string_view help,
                               SeriesSnapshot::Kind kind,
                               const std::vector<double>* bounds);

  mutable std::mutex mutex_;
  std::map<std::string, Series, std::less<>> series_;
};

}  // namespace bgls::obs

#include "obs/exposition.h"

#include <cstdio>
#include <ostream>
#include <sstream>
#include <string_view>

#include "util/json_writer.h"

namespace bgls::obs {

namespace {

/// Shortest-ish decimal rendering: %.12g keeps bucket bounds like
/// 0.001 and 2.5e-05 readable while preserving far more precision
/// than any latency sum needs.
std::string format_double(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.12g", value);
  return buffer;
}

/// Splits `base{k="v"}` into ("base", `k="v"`); labels empty when the
/// series name carries none.
void split_name(std::string_view name, std::string_view& base,
                std::string_view& labels) {
  const std::size_t brace = name.find('{');
  if (brace == std::string_view::npos) {
    base = name;
    labels = {};
    return;
  }
  base = name.substr(0, brace);
  labels = name.substr(brace + 1);
  if (!labels.empty() && labels.back() == '}') labels.remove_suffix(1);
}

std::string with_label(std::string_view labels, std::string_view extra) {
  std::string out = "{";
  if (!labels.empty()) {
    out += labels;
    out += ",";
  }
  out += extra;
  out += "}";
  return out;
}

const char* type_name(SeriesSnapshot::Kind kind) {
  switch (kind) {
    case SeriesSnapshot::Kind::kCounter:
      return "counter";
    case SeriesSnapshot::Kind::kGauge:
      return "gauge";
    case SeriesSnapshot::Kind::kHistogram:
      return "histogram";
  }
  return "untyped";
}

}  // namespace

std::string to_prometheus(const MetricsSnapshot& snapshot) {
  std::ostringstream os;
  if (!kTelemetryCompiled) {
    os << "# bgls telemetry compiled out (BGLS_ENABLE_TELEMETRY=OFF)\n";
    return os.str();
  }
  // snapshot() is name-sorted, so all series of one family (same base,
  // different labels) are adjacent: emit HELP/TYPE on base change only.
  std::string_view previous_base;
  for (const SeriesSnapshot& series : snapshot) {
    std::string_view base;
    std::string_view labels;
    split_name(series.name, base, labels);
    if (base != previous_base) {
      os << "# HELP " << base << " " << series.help << "\n";
      os << "# TYPE " << base << " " << type_name(series.kind) << "\n";
      previous_base = base;
    }
    switch (series.kind) {
      case SeriesSnapshot::Kind::kCounter:
        os << series.name << " " << series.count << "\n";
        break;
      case SeriesSnapshot::Kind::kGauge:
        os << series.name << " " << format_double(series.gauge) << "\n";
        break;
      case SeriesSnapshot::Kind::kHistogram: {
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < series.bounds.size(); ++i) {
          cumulative += series.bucket_counts[i];
          os << base
             << "_bucket"
             << with_label(labels,
                           "le=\"" + format_double(series.bounds[i]) + "\"")
             << " " << cumulative << "\n";
        }
        os << base << "_bucket" << with_label(labels, "le=\"+Inf\"") << " "
           << series.count << "\n";
        std::string label_suffix;
        if (!labels.empty()) {
          label_suffix += '{';
          label_suffix += labels;
          label_suffix += '}';
        }
        os << base << "_sum" << label_suffix << " "
           << format_double(series.sum) << "\n";
        os << base << "_count" << label_suffix << " " << series.count << "\n";
        break;
      }
    }
  }
  return os.str();
}

void write_metrics_json(std::ostream& os, const MetricsSnapshot& snapshot) {
  JsonWriter json(os);
  json.begin_object();
  json.key("telemetry_compiled").value(kTelemetryCompiled);
  json.key("series").begin_array();
  for (const SeriesSnapshot& series : snapshot) {
    json.begin_object();
    json.key("name").value(series.name);
    json.key("kind").value(type_name(series.kind));
    switch (series.kind) {
      case SeriesSnapshot::Kind::kCounter:
        json.key("value").value(series.count);
        break;
      case SeriesSnapshot::Kind::kGauge:
        json.key("value").value(series.gauge);
        break;
      case SeriesSnapshot::Kind::kHistogram: {
        json.key("count").value(series.count);
        json.key("sum").value(series.sum);
        json.key("buckets").begin_array();
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < series.bounds.size(); ++i) {
          cumulative += series.bucket_counts[i];
          json.begin_object();
          json.key("le").value(series.bounds[i]);
          json.key("count").value(cumulative);
          json.end_object();
        }
        json.end_array();
        break;
      }
    }
    json.end_object();
  }
  json.end_array();
  json.end_object();
  os << "\n";
}

}  // namespace bgls::obs

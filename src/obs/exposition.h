/// \file exposition.h
/// Renders MetricsSnapshot in the Prometheus text exposition format
/// (for the daemon's `{"op":"metrics"}` endpoint and `bgls_client
/// metrics`) and as JSON (for the `--metrics-json` dump flags and the
/// BENCH_*.json metric sections).

#pragma once

#include <iosfwd>
#include <string>

#include "obs/metrics.h"

namespace bgls::obs {

/// Prometheus text exposition format, version 0.0.4: `# HELP` / `# TYPE`
/// per metric family, `_bucket{le="..."}`/`_sum`/`_count` series per
/// histogram, cumulative bucket counts. Families are emitted in series
/// name order. When telemetry is compiled out the output is the single
/// marker comment `# bgls telemetry compiled out ...` so scrapers (and
/// service_e2e.sh) can tell "disabled" from "broken".
[[nodiscard]] std::string to_prometheus(const MetricsSnapshot& snapshot);

/// The same snapshot as a pretty JSON document (schema: top-level
/// `telemetry_compiled` flag plus a `series` array).
void write_metrics_json(std::ostream& os, const MetricsSnapshot& snapshot);

}  // namespace bgls::obs

/// \file trace.h
/// Per-job traces: named, timed spans with deterministic IDs.
///
/// A Trace collects SpanRecords for one unit of work (one scheduler
/// job, one Session::run). TraceSpan is the RAII recorder: it times a
/// scope on the steady clock and appends a record on destruction.
///
/// Span IDs are *derived*, not allocated: FNV-1a over (trace id, span
/// name, caller-supplied index). The same job therefore produces the
/// same span IDs regardless of thread count or interleaving — shard
/// span N of job 7 has one identity whether 1 or 16 workers raced for
/// it — which is what lets tests assert on traces. Durations of course
/// still vary; identity and structure do not.
///
/// Nesting is tracked per thread: a span started while another span of
/// the *same trace* is open on the *same thread* records that span as
/// its parent. Spans opened on pool workers (fresh threads) are roots.
///
/// With telemetry compiled out (BGLS_ENABLE_TELEMETRY=OFF) TraceSpan
/// is inert and records nothing; Trace itself stays functional so
/// containers holding traces need no conditional code.

#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"  // BGLS_TELEMETRY

namespace bgls::obs {

/// One finished span: identity, structure, and measured duration.
struct SpanRecord {
  std::uint64_t id = 0;
  std::uint64_t parent = 0;  // 0 = root
  std::string name;
  std::uint64_t index = 0;  // caller-chosen ordinal (shard number, ...)
  double seconds = 0.0;
};

/// Collects spans for one job. Thread-safe; record() is a short
/// critical section off the sampling hot path (spans wrap shards and
/// phases, not per-amplitude work).
class Trace {
 public:
  explicit Trace(std::uint64_t trace_id) : id_(trace_id) {}

  [[nodiscard]] std::uint64_t id() const noexcept { return id_; }

  /// The deterministic span ID for (trace, name, index): 64-bit FNV-1a.
  [[nodiscard]] static std::uint64_t span_id(std::uint64_t trace_id,
                                             std::string_view name,
                                             std::uint64_t index) noexcept;

  void record(SpanRecord record);

  /// All finished spans, sorted by (name, index, id) — a deterministic
  /// order independent of completion interleaving.
  [[nodiscard]] std::vector<SpanRecord> spans() const;

 private:
  std::uint64_t id_;
  mutable std::mutex mutex_;
  std::vector<SpanRecord> spans_;
};

/// RAII scoped timer appending one SpanRecord to a Trace. A null trace
/// (or telemetry compiled out / disabled at start) makes the span a
/// no-op. `index` disambiguates sibling spans sharing a name — pass
/// the shard/chunk ordinal; serial phases use the default 0.
class TraceSpan {
 public:
  TraceSpan(Trace* trace, std::string_view name, std::uint64_t index = 0);
  ~TraceSpan() { finish(); }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Records the span early; the destructor then does nothing.
  void finish();

  /// This span's deterministic ID (0 when inert).
  [[nodiscard]] std::uint64_t id() const noexcept { return id_; }

 private:
  Trace* trace_ = nullptr;  // null once finished/inert
  std::string name_;
  std::uint64_t index_ = 0;
  std::uint64_t id_ = 0;
  std::uint64_t parent_ = 0;
  std::chrono::steady_clock::time_point start_;
  TraceSpan* enclosing_ = nullptr;  // previous top of this thread's stack
};

}  // namespace bgls::obs

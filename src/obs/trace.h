/// \file trace.h
/// Per-job traces: named, timed spans with deterministic IDs.
///
/// A Trace collects SpanRecords for one unit of work (one scheduler
/// job, one Session::run). TraceSpan is the RAII recorder: it times a
/// scope on the steady clock and appends a record on destruction.
///
/// Span IDs are *derived*, not allocated: FNV-1a over (trace id, span
/// name, caller-supplied index). The same job therefore produces the
/// same span IDs regardless of thread count or interleaving — shard
/// span N of job 7 has one identity whether 1 or 16 workers raced for
/// it — which is what lets tests assert on traces. Durations of course
/// still vary; identity and structure do not.
///
/// Nesting is tracked per thread: a span started while another span of
/// the *same trace* is open on the *same thread* records that span as
/// its parent. A span with no enclosing same-trace span on its thread
/// parents under the trace's *root* span (settable; defaults to the
/// propagated parent_span_id, or 0). The root fallback is what keeps
/// trees byte-stable across thread counts: an engine shard runs inline
/// on the caller's thread at 1 thread (inside the session's "sample"
/// span) but on a pool thread at N — pinning its parent to the root
/// gives one structure either way. Spans that must not inherit the
/// caller's scope pass Nest::kRoot explicitly.
///
/// Cross-process propagation: a Trace constructed with a nonzero
/// parent_span_id hangs its top-level spans under a span recorded by
/// another process (the fleet front), so merged trees stitch cleanly.
///
/// With telemetry compiled out (BGLS_ENABLE_TELEMETRY=OFF) TraceSpan
/// is inert and records nothing; Trace itself stays functional so
/// containers holding traces need no conditional code.

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"  // BGLS_TELEMETRY

namespace bgls::obs {

/// One finished span: identity, structure, and measured duration.
struct SpanRecord {
  std::uint64_t id = 0;
  std::uint64_t parent = 0;  // 0 = root
  std::string name;
  std::uint64_t index = 0;  // caller-chosen ordinal (shard number, ...)
  double seconds = 0.0;
};

/// Collects spans for one job. Thread-safe; record() is a short
/// critical section off the sampling hot path (spans wrap shards and
/// phases, not per-amplitude work).
class Trace {
 public:
  explicit Trace(std::uint64_t trace_id, std::uint64_t parent_span_id = 0)
      : id_(trace_id), parent_(parent_span_id), root_(parent_span_id) {}

  [[nodiscard]] std::uint64_t id() const noexcept { return id_; }

  /// The propagated parent span id this trace hangs under (0 = none).
  /// Top-level local spans (queue/run, fleet.place) use it as parent.
  [[nodiscard]] std::uint64_t parent() const noexcept { return parent_; }

  /// Default parent for spans opened with no enclosing same-trace span
  /// on their thread. The scheduler points it at the job's "run" span
  /// before execution starts so engine/session spans attach there.
  [[nodiscard]] std::uint64_t root() const noexcept {
    return root_.load(std::memory_order_relaxed);
  }
  void set_root(std::uint64_t span_id) noexcept {
    root_.store(span_id, std::memory_order_relaxed);
  }

  /// The deterministic span ID for (trace, name, index): 64-bit FNV-1a.
  [[nodiscard]] static std::uint64_t span_id(std::uint64_t trace_id,
                                             std::string_view name,
                                             std::uint64_t index) noexcept;

  void record(SpanRecord record);

  /// All finished spans, sorted by (name, index, id) — a deterministic
  /// order independent of completion interleaving.
  [[nodiscard]] std::vector<SpanRecord> spans() const;

 private:
  std::uint64_t id_;
  std::uint64_t parent_ = 0;
  std::atomic<std::uint64_t> root_{0};
  mutable std::mutex mutex_;
  std::vector<SpanRecord> spans_;
};

/// RAII scoped timer appending one SpanRecord to a Trace. A null trace
/// (or telemetry compiled out / disabled at start) makes the span a
/// no-op. `index` disambiguates sibling spans sharing a name — pass
/// the shard/chunk ordinal; serial phases use the default 0.
class TraceSpan {
 public:
  /// Parent selection when no enclosing same-trace span is open on this
  /// thread (both modes then fall back to the trace's root()):
  /// kEnclosing links under the innermost open span; kRoot ignores the
  /// thread's span stack entirely — for work (engine shards) that may
  /// run inline *or* on a pool thread and must parent identically.
  enum class Nest { kEnclosing, kRoot };

  TraceSpan(Trace* trace, std::string_view name, std::uint64_t index = 0,
            Nest nest = Nest::kEnclosing);
  ~TraceSpan() { finish(); }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Records the span early; the destructor then does nothing.
  void finish();

  /// This span's deterministic ID (0 when inert).
  [[nodiscard]] std::uint64_t id() const noexcept { return id_; }

 private:
  Trace* trace_ = nullptr;  // null once finished/inert
  std::string name_;
  std::uint64_t index_ = 0;
  std::uint64_t id_ = 0;
  std::uint64_t parent_ = 0;
  std::chrono::steady_clock::time_point start_;
  TraceSpan* enclosing_ = nullptr;  // previous top of this thread's stack
};

}  // namespace bgls::obs

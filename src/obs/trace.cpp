#include "obs/trace.h"

#include <algorithm>
#include <tuple>

namespace bgls::obs {

namespace {

// Top of the current thread's open-span stack, for parent linking.
// Unreferenced when telemetry is compiled out (TraceSpan's ctor/dtor
// collapse to no-ops), hence maybe_unused.
[[maybe_unused]] thread_local TraceSpan* t_current_span = nullptr;

void fnv1a_mix(std::uint64_t& hash, const void* data, std::size_t size) {
  constexpr std::uint64_t kPrime = 1099511628211ULL;
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= kPrime;
  }
}

}  // namespace

std::uint64_t Trace::span_id(std::uint64_t trace_id, std::string_view name,
                             std::uint64_t index) noexcept {
  std::uint64_t hash = 14695981039346656037ULL;  // FNV-1a offset basis
  fnv1a_mix(hash, &trace_id, sizeof(trace_id));
  fnv1a_mix(hash, name.data(), name.size());
  fnv1a_mix(hash, &index, sizeof(index));
  // Reserve 0 as "no span" (parent of roots).
  return hash == 0 ? 1 : hash;
}

void Trace::record(SpanRecord record) {
  const std::lock_guard<std::mutex> lock(mutex_);
  spans_.push_back(std::move(record));
}

std::vector<SpanRecord> Trace::spans() const {
  std::vector<SpanRecord> out;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    out = spans_;
  }
  std::sort(out.begin(), out.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              return std::tie(a.name, a.index, a.id) <
                     std::tie(b.name, b.index, b.id);
            });
  return out;
}

TraceSpan::TraceSpan(Trace* trace, std::string_view name, std::uint64_t index,
                     Nest nest) {
#if BGLS_TELEMETRY
  if (trace == nullptr || !enabled()) return;
  trace_ = trace;
  name_ = std::string(name);
  index_ = index;
  id_ = Trace::span_id(trace->id(), name, index);
  // Parent = innermost open span of the same trace on this thread,
  // falling back to the trace's root. kRoot skips the thread's stack
  // (and stays off it) so parentage is thread-placement-independent.
  parent_ = trace->root();
  if (nest == Nest::kEnclosing) {
    if (t_current_span != nullptr && t_current_span->trace_ == trace) {
      parent_ = t_current_span->id_;
    }
    enclosing_ = t_current_span;
    t_current_span = this;
  }
  start_ = std::chrono::steady_clock::now();
#else
  (void)trace;
  (void)name;
  (void)index;
  (void)nest;
#endif
}

void TraceSpan::finish() {
#if BGLS_TELEMETRY
  if (trace_ == nullptr) return;
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  if (t_current_span == this) t_current_span = enclosing_;
  trace_->record(SpanRecord{id_, parent_, std::move(name_), index_, seconds});
  trace_ = nullptr;
#endif
}

}  // namespace bgls::obs

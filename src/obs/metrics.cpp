#include "obs/metrics.h"

#include <algorithm>
#include <bit>

#include "util/error.h"

namespace bgls::obs {

namespace {

std::atomic<bool> g_enabled{true};

}  // namespace

bool enabled() noexcept { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) noexcept {
  g_enabled.store(on, std::memory_order_relaxed);
}

namespace detail {

void Cell::add_sum(double delta) noexcept {
  std::uint64_t observed = sum_bits.load(std::memory_order_relaxed);
  while (true) {
    const double updated = std::bit_cast<double>(observed) + delta;
    if (sum_bits.compare_exchange_weak(observed, std::bit_cast<std::uint64_t>(updated),
                                       std::memory_order_relaxed,
                                       std::memory_order_relaxed)) {
      return;
    }
  }
}

double Cell::sum() const noexcept {
  return std::bit_cast<double>(sum_bits.load(std::memory_order_relaxed));
}

}  // namespace detail

void Histogram::observe(double value) noexcept {
#if BGLS_TELEMETRY
  if (cell_ == nullptr || !enabled()) return;
  // First bucket whose upper bound admits the value; past-the-end is
  // the overflow (+Inf) slot.
  const auto& bounds = cell_->bounds;
  const std::size_t slot = static_cast<std::size_t>(
      std::lower_bound(bounds.begin(), bounds.end(), value) - bounds.begin());
  cell_->buckets[slot].fetch_add(1, std::memory_order_relaxed);
  cell_->count.fetch_add(1, std::memory_order_relaxed);
  cell_->add_sum(value);
#else
  (void)value;
#endif
}

const std::vector<double>& default_latency_buckets() {
  static const std::vector<double> kBounds = {
      1e-6, 1e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3,
      1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0};
  return kBounds;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never freed
  return *registry;
}

detail::Cell* MetricsRegistry::find_or_create(
    std::string_view name, std::string_view help, SeriesSnapshot::Kind kind,
    const std::vector<double>* bounds) {
#if !BGLS_TELEMETRY
  (void)name;
  (void)help;
  (void)kind;
  (void)bounds;
  return nullptr;
#else
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = series_.find(name);
  if (it != series_.end()) {
    BGLS_REQUIRE(it->second.kind == kind, "metric series '", name,
                 "' already registered with a different kind");
    if (bounds != nullptr) {
      BGLS_REQUIRE(it->second.cell->bounds == *bounds, "histogram '", name,
                   "' already registered with different bucket bounds");
    }
    return it->second.cell.get();
  }
  Series series;
  series.kind = kind;
  series.help = std::string(help);
  series.cell = std::make_unique<detail::Cell>();
  if (bounds != nullptr) {
    BGLS_REQUIRE(!bounds->empty(), "histogram '", name, "' needs >=1 bucket");
    BGLS_REQUIRE(std::is_sorted(bounds->begin(), bounds->end()),
                 "histogram '", name, "' bucket bounds must be sorted");
    series.cell->bounds = *bounds;
    series.cell->buckets =
        std::vector<std::atomic<std::uint64_t>>(bounds->size() + 1);
  }
  detail::Cell* cell = series.cell.get();
  series_.emplace(std::string(name), std::move(series));
  return cell;
#endif
}

Counter MetricsRegistry::counter(std::string_view name,
                                 std::string_view help) {
  return Counter(
      find_or_create(name, help, SeriesSnapshot::Kind::kCounter, nullptr));
}

Gauge MetricsRegistry::gauge(std::string_view name, std::string_view help) {
  return Gauge(
      find_or_create(name, help, SeriesSnapshot::Kind::kGauge, nullptr));
}

Histogram MetricsRegistry::histogram(std::string_view name,
                                     std::string_view help,
                                     const std::vector<double>& bounds) {
  return Histogram(
      find_or_create(name, help, SeriesSnapshot::Kind::kHistogram, &bounds));
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot out;
  const std::lock_guard<std::mutex> lock(mutex_);
  out.reserve(series_.size());
  for (const auto& [name, series] : series_) {
    SeriesSnapshot snap;
    snap.name = name;
    snap.help = series.help;
    snap.kind = series.kind;
    const detail::Cell& cell = *series.cell;
    switch (series.kind) {
      case SeriesSnapshot::Kind::kCounter:
        snap.count = cell.count.load(std::memory_order_relaxed);
        break;
      case SeriesSnapshot::Kind::kGauge:
        snap.gauge = static_cast<double>(static_cast<std::int64_t>(
            cell.count.load(std::memory_order_relaxed)));
        break;
      case SeriesSnapshot::Kind::kHistogram:
        snap.count = cell.count.load(std::memory_order_relaxed);
        snap.sum = cell.sum();
        snap.bounds = cell.bounds;
        snap.bucket_counts.reserve(cell.buckets.size());
        for (const auto& bucket : cell.buckets) {
          snap.bucket_counts.push_back(
              bucket.load(std::memory_order_relaxed));
        }
        break;
    }
    out.push_back(std::move(snap));
  }
  // std::map already iterates in name order; keep the invariant
  // explicit for readers of snapshot().
  return out;
}

void MetricsRegistry::reset_for_testing() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, series] : series_) {
    (void)name;
    series.cell->count.store(0, std::memory_order_relaxed);
    series.cell->sum_bits.store(0, std::memory_order_relaxed);
    for (auto& bucket : series.cell->buckets) {
      bucket.store(0, std::memory_order_relaxed);
    }
  }
}

}  // namespace bgls::obs

/// \file log.h
/// Structured, leveled ndjson logging for the serving stack.
///
/// One log line is one JSON object: wall-clock timestamp, level,
/// component, optional trace/job correlation IDs, a message, and
/// free-form key=value fields. Lines land in a bounded in-memory ring
/// buffer (tail-able over the wire via the `logs` protocol op) and,
/// optionally, on stderr and/or an append-mode file sink. The file
/// sink reopens on demand (SIGHUP in the tools) so external log
/// rotation works without restarting the daemon.
///
/// Contract, matching the rest of src/obs/:
///  - observation-only: logging never reads or advances RNG state, so
///    sampled histograms are bit-identical with logging on, off, or
///    compiled out;
///  - compiled out under -DBGLS_ENABLE_TELEMETRY=OFF: every method
///    collapses to a no-op (the ring stays empty, sinks never open);
///  - runtime-gated on obs::enabled() and the configured level, with
///    the level check a single relaxed atomic load on the fast path;
///  - never throws: a failed sink write is dropped, not propagated
///    into the serving path.
///
/// The wall clock is deliberate — log lines are for correlation with
/// the outside world (rotated files, other services) — and is why
/// src/obs/ is on the lint nondet-source allowlist: timestamps never
/// feed sampling.

#pragma once

#include <cstdint>
#include <cstdio>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"  // BGLS_TELEMETRY, enabled()

namespace bgls::obs {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// "debug" / "info" / "warn" / "error".
[[nodiscard]] std::string_view log_level_name(LogLevel level) noexcept;

/// Inverse of log_level_name; returns false (and leaves *out alone)
/// for an unrecognized spelling.
[[nodiscard]] bool parse_log_level(std::string_view text,
                                   LogLevel* out) noexcept;

/// One key=value attachment. The value keeps its JSON type (string,
/// integer, or double) through serialization.
struct LogField {
  enum class Kind { kString, kUint, kInt, kDouble };

  LogField(std::string_view k, std::string_view v)
      : key(k), text(v), kind(Kind::kString) {}
  LogField(std::string_view k, const char* v)
      : key(k), text(v), kind(Kind::kString) {}
  LogField(std::string_view k, const std::string& v)
      : key(k), text(v), kind(Kind::kString) {}
  LogField(std::string_view k, std::uint64_t v)
      : key(k), uint_value(v), kind(Kind::kUint) {}
  LogField(std::string_view k, std::uint32_t v)
      : key(k), uint_value(v), kind(Kind::kUint) {}
  LogField(std::string_view k, int v)
      : key(k), int_value(v), kind(Kind::kInt) {}
  LogField(std::string_view k, std::int64_t v)
      : key(k), int_value(v), kind(Kind::kInt) {}
  LogField(std::string_view k, double v)
      : key(k), double_value(v), kind(Kind::kDouble) {}

  std::string key;
  std::string text;
  std::uint64_t uint_value = 0;
  std::int64_t int_value = 0;
  double double_value = 0.0;
  Kind kind;
};

/// One emitted record, as stored in the ring buffer.
struct LogRecord {
  double ts = 0.0;  // seconds since the Unix epoch (wall clock)
  LogLevel level = LogLevel::kInfo;
  std::string component;
  std::uint64_t trace_id = 0;  // 0 = not request-scoped
  std::uint64_t job_id = 0;    // 0 = not job-scoped
  std::string message;
  std::vector<LogField> fields;
};

/// Serializes one record as a single compact ndjson line (no trailing
/// newline): {"ts":...,"level":"warn","component":"scheduler",
/// "trace_id":...,"job_id":...,"msg":"...","fields":{...}}.
/// trace_id/job_id are omitted when 0; "fields" is omitted when empty.
/// Pure function — the golden-line test pins its output.
[[nodiscard]] std::string format_log_line(const LogRecord& record);

/// Process-wide logger: bounded ring + optional stderr/file sinks.
/// All methods are thread-safe; all are no-ops when telemetry is
/// compiled out.
class Logger {
 public:
  static Logger& global();

  /// Drops records below `level`. Default kInfo.
  void set_level(LogLevel level) noexcept;
  [[nodiscard]] LogLevel level() const noexcept;

  /// Ring capacity in records (default 1024). Shrinking evicts oldest.
  void set_capacity(std::size_t capacity);

  /// Mirror emitted lines to stderr (off by default).
  void set_stderr_sink(bool on);

  /// Opens `path` in append mode as the file sink (closing any
  /// previous one). Returns false if the file cannot be opened —
  /// true when telemetry is compiled out (nothing to open).
  bool open_file(const std::string& path);

  /// Reopens the current file-sink path, for SIGHUP-driven rotation.
  /// No-op when no file sink is configured.
  void reopen();

  void close_file();

  /// Records and emits, subject to enabled() and the level gate.
  void log(LogLevel level, std::string_view component,
           std::string_view message, std::vector<LogField> fields = {},
           std::uint64_t trace_id = 0, std::uint64_t job_id = 0) noexcept;

  /// Newest-last slice of the ring: up to `max_records` most recent
  /// records at or above `min_level`, and matching `trace_id` when
  /// nonzero.
  [[nodiscard]] std::vector<LogRecord> tail(std::size_t max_records,
                                            LogLevel min_level,
                                            std::uint64_t trace_id = 0) const;

  /// Total records accepted (post-gate) since construction/reset.
  [[nodiscard]] std::uint64_t emitted() const noexcept;

  /// Tests only: empty ring, level kInfo, sinks closed, counter zeroed.
  void reset_for_testing();

 private:
  Logger() = default;
  ~Logger();

  mutable std::mutex mutex_;
  std::deque<LogRecord> ring_;
  std::size_t capacity_ = 1024;
  std::atomic<int> level_{static_cast<int>(LogLevel::kInfo)};
  std::uint64_t emitted_ = 0;
  bool stderr_sink_ = false;
  std::FILE* file_ = nullptr;
  std::string file_path_;
};

/// Convenience front door: Logger::global().log(...).
inline void log(LogLevel level, std::string_view component,
                std::string_view message, std::vector<LogField> fields = {},
                std::uint64_t trace_id = 0, std::uint64_t job_id = 0) noexcept {
#if BGLS_TELEMETRY
  Logger::global().log(level, component, message, std::move(fields), trace_id,
                       job_id);
#else
  (void)level;
  (void)component;
  (void)message;
  (void)fields;
  (void)trace_id;
  (void)job_id;
#endif
}

}  // namespace bgls::obs

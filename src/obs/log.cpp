#include "obs/log.h"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <utility>

#include "util/json_writer.h"

namespace bgls::obs {

std::string_view log_level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
  }
  return "info";
}

bool parse_log_level(std::string_view text, LogLevel* out) noexcept {
  if (text == "debug") {
    *out = LogLevel::kDebug;
  } else if (text == "info") {
    *out = LogLevel::kInfo;
  } else if (text == "warn" || text == "warning") {
    *out = LogLevel::kWarn;
  } else if (text == "error") {
    *out = LogLevel::kError;
  } else {
    return false;
  }
  return true;
}

std::string format_log_line(const LogRecord& record) {
  std::ostringstream os;
  JsonWriter json(os, JsonWriter::Style::kCompact);
  json.begin_object();
  json.key("ts").value(record.ts);
  json.key("level").value(log_level_name(record.level));
  json.key("component").value(record.component);
  if (record.trace_id != 0) json.key("trace_id").value(record.trace_id);
  if (record.job_id != 0) json.key("job_id").value(record.job_id);
  json.key("msg").value(record.message);
  if (!record.fields.empty()) {
    // Nested object keeps caller keys from colliding with the
    // envelope's ("msg", "level", ...).
    json.key("fields").begin_object();
    for (const LogField& field : record.fields) {
      json.key(field.key);
      switch (field.kind) {
        case LogField::Kind::kString:
          json.value(field.text);
          break;
        case LogField::Kind::kUint:
          json.value(field.uint_value);
          break;
        case LogField::Kind::kInt:
          json.value(field.int_value);
          break;
        case LogField::Kind::kDouble:
          json.value(field.double_value);
          break;
      }
    }
    json.end_object();
  }
  json.end_object();
  return os.str();
}

Logger& Logger::global() {
  static Logger* instance = new Logger();  // leaked: outlives all threads
  return *instance;
}

Logger::~Logger() { close_file(); }

void Logger::set_level(LogLevel level) noexcept {
  level_.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel Logger::level() const noexcept {
  return static_cast<LogLevel>(level_.load(std::memory_order_relaxed));
}

void Logger::set_capacity(std::size_t capacity) {
#if BGLS_TELEMETRY
  const std::lock_guard<std::mutex> lock(mutex_);
  capacity_ = capacity == 0 ? 1 : capacity;
  while (ring_.size() > capacity_) ring_.pop_front();
#else
  (void)capacity;
#endif
}

void Logger::set_stderr_sink(bool on) {
#if BGLS_TELEMETRY
  const std::lock_guard<std::mutex> lock(mutex_);
  stderr_sink_ = on;
#else
  (void)on;
#endif
}

bool Logger::open_file(const std::string& path) {
#if BGLS_TELEMETRY
  std::FILE* file = std::fopen(path.c_str(), "a");
  if (file == nullptr) return false;
  const std::lock_guard<std::mutex> lock(mutex_);
  if (file_ != nullptr) std::fclose(file_);
  file_ = file;
  file_path_ = path;
  return true;
#else
  (void)path;
  return true;
#endif
}

void Logger::reopen() {
#if BGLS_TELEMETRY
  const std::lock_guard<std::mutex> lock(mutex_);
  if (file_path_.empty()) return;
  if (file_ != nullptr) std::fclose(file_);
  // If rotation raced us out of the directory, drop the sink rather
  // than crash-loop on every line; the ring keeps collecting.
  file_ = std::fopen(file_path_.c_str(), "a");
#endif
}

void Logger::close_file() {
#if BGLS_TELEMETRY
  const std::lock_guard<std::mutex> lock(mutex_);
  if (file_ != nullptr) std::fclose(file_);
  file_ = nullptr;
  file_path_.clear();
#endif
}

void Logger::log(LogLevel level, std::string_view component,
                 std::string_view message, std::vector<LogField> fields,
                 std::uint64_t trace_id, std::uint64_t job_id) noexcept {
#if BGLS_TELEMETRY
  if (!enabled()) return;
  if (static_cast<int>(level) < level_.load(std::memory_order_relaxed)) {
    return;
  }
  try {
    LogRecord record;
    record.ts = std::chrono::duration<double>(
                    std::chrono::system_clock::now().time_since_epoch())
                    .count();
    record.level = level;
    record.component = std::string(component);
    record.trace_id = trace_id;
    record.job_id = job_id;
    record.message = std::string(message);
    record.fields = std::move(fields);

    std::string line;
    bool to_stderr = false;
    std::FILE* file = nullptr;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      to_stderr = stderr_sink_;
      file = file_;
      if (to_stderr || file != nullptr) line = format_log_line(record);
      ring_.push_back(std::move(record));
      while (ring_.size() > capacity_) ring_.pop_front();
      ++emitted_;
      // Sinks write under the lock: interleaved lines from concurrent
      // emitters would corrupt the ndjson stream, and per-line flush
      // keeps rotation (reopen) and tail -f honest. Logging is warm
      // path at most — never inside sampling loops.
      if (file != nullptr) {
        std::fputs(line.c_str(), file);
        std::fputc('\n', file);
        std::fflush(file);
      }
    }
    if (to_stderr) {
      line.push_back('\n');
      std::fputs(line.c_str(), stderr);
    }
  } catch (...) {
    // Logging must never take down the serving path.
  }
#else
  (void)level;
  (void)component;
  (void)message;
  (void)fields;
  (void)trace_id;
  (void)job_id;
#endif
}

std::vector<LogRecord> Logger::tail(std::size_t max_records, LogLevel min_level,
                                    std::uint64_t trace_id) const {
  std::vector<LogRecord> out;
#if BGLS_TELEMETRY
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = ring_.rbegin(); it != ring_.rend() && out.size() < max_records;
       ++it) {
    if (static_cast<int>(it->level) < static_cast<int>(min_level)) continue;
    if (trace_id != 0 && it->trace_id != trace_id) continue;
    out.push_back(*it);
  }
  std::reverse(out.begin(), out.end());  // chronological, newest last
#else
  (void)max_records;
  (void)min_level;
  (void)trace_id;
#endif
  return out;
}

std::uint64_t Logger::emitted() const noexcept {
#if BGLS_TELEMETRY
  const std::lock_guard<std::mutex> lock(mutex_);
  return emitted_;
#else
  return 0;
#endif
}

void Logger::reset_for_testing() {
#if BGLS_TELEMETRY
  const std::lock_guard<std::mutex> lock(mutex_);
  ring_.clear();
  capacity_ = 1024;
  emitted_ = 0;
  stderr_sink_ = false;
  if (file_ != nullptr) std::fclose(file_);
  file_ = nullptr;
  file_path_.clear();
  level_.store(static_cast<int>(LogLevel::kInfo), std::memory_order_relaxed);
#endif
}

}  // namespace bgls::obs

/// \file timeline.h
/// Per-job timeline rendering: span trees as text and as Chrome
/// trace-event JSON (chrome://tracing, Perfetto).
///
/// Both renderers are pure functions of (trace id, span records), so
/// their output is byte-stable for a deterministic span set — goldens
/// pin it. Spans are re-sorted internally by (name, index, id) and
/// linked by their recorded parent IDs; a span whose parent is absent
/// from the set (e.g. the propagated fleet parent when only worker
/// spans are in hand) renders as a root.
///
/// Chrome export notes: span/trace IDs are 64-bit and exceed
/// JavaScript's 2^53 integer range, so they are emitted as hex
/// strings. Spans carry durations but no absolute start times (the
/// steady clock is process-local), so start offsets are synthesized by
/// depth-first layout — children laid out sequentially from their
/// parent's start. The result is a readable nesting diagram, not a
/// wall-clock-accurate gantt; durations are real, offsets are not.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace bgls::obs {

/// Indented text tree, one span per line:
///   trace 0x000000000006798a (3 spans)
///   - run (id=0x6c4b..., 12.000 ms)
///     - sample (id=0x83a1..., 11.000 ms)
std::string render_span_tree(std::uint64_t trace_id,
                             const std::vector<SpanRecord>& spans);

/// Chrome trace-event JSON ("X" complete events, microsecond units),
/// one line, loadable by Perfetto / chrome://tracing.
std::string to_chrome_trace(std::uint64_t trace_id,
                            const std::vector<SpanRecord>& spans);

}  // namespace bgls::obs

/// \file state.h
/// Matrix-product-state (tensor network) simulation state — the
/// counterpart of cirq.contrib.quimb.MPSState used in Secs. 4.3–4.4 of
/// the paper, built on the library's own labeled tensors and SVD.
///
/// Topology follows the quimb-backed implementation rather than a strict
/// chain: each qubit owns one tensor with a physical axis "p<q>"; a
/// two-qubit gate contracts the pair, applies the 4x4 unitary, and
/// splits back with an SVD, creating (or replacing) a direct bond
/// between exactly those two tensors. Entanglement shows up as bond
/// dimension χ; MPSOptions caps χ and drops relatively negligible
/// singular values, accumulating the truncation error estimate the same
/// way the quimb backend reports estimated fidelity.
///
/// Bitstring amplitudes — the capability bgls adds on top of the
/// existing MPSState (paper Sec. 4.3.2) — are computed by `isel`-ing
/// every physical axis to the bit value and contracting the much smaller
/// remaining bond network (the paper's `mps_bitstring_probability`
/// listing), at O(n·χ³) cost.

#pragma once

#include <string>
#include <vector>

#include "circuit/circuit.h"
#include "linalg/tensor.h"
#include "util/bits.h"
#include "util/rng.h"

namespace bgls {

/// Truncation knobs (the paper's custom MPSOptions subclass restricting
/// the maximum degree of connectedness χ).
struct MPSOptions {
  /// Maximum bond dimension kept by gate splits; 0 = unlimited (exact).
  std::size_t max_bond_dim = 0;
  /// Relative singular-value cutoff: values below cutoff * σ_max are
  /// dropped.
  double cutoff = 1e-12;
};

/// Tensor-network pure state with one tensor per qubit.
class MPSState {
 public:
  explicit MPSState(int num_qubits, MPSOptions options = {},
                    Bitstring initial = 0);

  [[nodiscard]] int num_qubits() const { return n_; }
  [[nodiscard]] const MPSOptions& options() const { return options_; }

  /// Applies a 1- or 2-qubit unitary operation. Throws for measurements,
  /// channels (sampler-handled), and arity ≥ 3 gates (decompose first).
  void apply(const Operation& op);

  /// Applies an arbitrary (possibly non-unitary) 2^k x 2^k matrix to the
  /// listed qubits (k ≤ 2) without renormalizing — Kraus branches.
  void apply_matrix(const Matrix& m, std::span<const Qubit> qubits);

  /// ⟨b|ψ⟩ via physical-index selection and reduced-network contraction.
  [[nodiscard]] Complex amplitude(Bitstring b) const;

  /// |⟨b|ψ⟩|².
  [[nodiscard]] double probability(Bitstring b) const;

  /// √⟨ψ|ψ⟩ by contracting the doubled network.
  [[nodiscard]] double norm() const;

  /// Scales the state to unit norm.
  void renormalize();

  /// Projects the listed qubits onto the bits of `bits` and
  /// renormalizes (throws on zero-probability outcomes).
  void project(std::span<const Qubit> qubits, Bitstring bits);

  /// Full statevector by complete contraction (n ≤ 20; exponential).
  [[nodiscard]] std::vector<Complex> to_statevector() const;

  /// Largest bond dimension in the network (χ).
  [[nodiscard]] std::size_t max_bond_dimension() const;

  /// Total elements stored across all tensors (memory proxy).
  [[nodiscard]] std::size_t tensor_size_total() const;

  /// Product of 1 - (relative truncated weight) over all truncating
  /// splits — an estimated fidelity, 1.0 when no truncation occurred.
  [[nodiscard]] double estimated_fidelity() const {
    return estimated_fidelity_;
  }

  /// The tensor holding qubit q (inspection/testing).
  [[nodiscard]] const Tensor& tensor(int q) const;

 private:
  [[nodiscard]] std::string physical_label(int q) const;
  void apply_single_qubit(const Matrix& m, Qubit q);
  void apply_two_qubit(const Matrix& m, Qubit a, Qubit b);

  int n_ = 0;
  MPSOptions options_;
  std::vector<Tensor> tensors_;
  int bond_counter_ = 0;
  double estimated_fidelity_ = 1.0;
};

/// BGLS `apply_op` for MPS states.
void apply_op(const Operation& op, MPSState& state, Rng& rng);

/// BGLS `compute_probability` for MPS states — the paper's
/// mps_bitstring_probability.
[[nodiscard]] double compute_probability(const MPSState& state, Bitstring b);

}  // namespace bgls

#include "mps/state.h"

#include <algorithm>
#include <cmath>

#include "linalg/svd.h"
#include "util/error.h"

namespace bgls {

MPSState::MPSState(int num_qubits, MPSOptions options, Bitstring initial)
    : n_(num_qubits), options_(options) {
  BGLS_REQUIRE(num_qubits >= 1 && num_qubits <= kMaxQubits,
               "MPS supports 1..64 qubits, got ", num_qubits);
  BGLS_REQUIRE(options_.cutoff >= 0.0, "cutoff must be non-negative");
  tensors_.reserve(static_cast<std::size_t>(n_));
  for (int q = 0; q < n_; ++q) {
    Tensor t({physical_label(q)}, {2});
    t.data()[get_bit(initial, q) ? 1 : 0] = Complex{1.0, 0.0};
    tensors_.push_back(std::move(t));
  }
}

std::string MPSState::physical_label(int q) const {
  // Built via += rather than `"p" + std::to_string(q)`: the
  // char*+string&& overload trips GCC 12's -Wrestrict false positive
  // (PR105329) under -Werror.
  std::string label("p");
  label += std::to_string(q);
  return label;
}

const Tensor& MPSState::tensor(int q) const {
  BGLS_REQUIRE(q >= 0 && q < n_, "qubit ", q, " out of range");
  return tensors_[static_cast<std::size_t>(q)];
}

void MPSState::apply(const Operation& op) {
  const Gate& gate = op.gate();
  BGLS_REQUIRE(gate.is_unitary(), "cannot apply non-unitary '", gate.name(),
               "' directly; measurements/channels go through the sampler");
  // Memoized gate matrix (Gate::compiled_unitary): skips rebuilding the
  // unitary on every apply of the same gate.
  apply_matrix(gate.compiled_unitary()->matrix, op.qubits());
}

void MPSState::apply_matrix(const Matrix& m, std::span<const Qubit> qubits) {
  for (const Qubit q : qubits) {
    BGLS_REQUIRE(q >= 0 && q < n_, "qubit ", q, " out of range");
  }
  BGLS_REQUIRE(m.rows() == m.cols() &&
                   m.rows() == (std::size_t{1} << qubits.size()),
               "matrix dimension does not match qubit count");
  switch (qubits.size()) {
    case 1:
      apply_single_qubit(m, qubits[0]);
      return;
    case 2:
      apply_two_qubit(m, qubits[0], qubits[1]);
      return;
    default:
      detail::throw_error<UnsupportedOperationError>(
          "MPS backend supports 1- and 2-qubit operations; decompose ",
          qubits.size(), "-qubit gates first");
  }
}

void MPSState::apply_single_qubit(const Matrix& m, Qubit q) {
  auto& t = tensors_[static_cast<std::size_t>(q)];
  const std::vector<std::string> axes{physical_label(q)};
  t = bgls::apply_matrix(t, m, axes);
}

void MPSState::apply_two_qubit(const Matrix& m, Qubit a, Qubit b) {
  BGLS_REQUIRE(a != b, "two-qubit gate needs distinct qubits");
  auto& ta = tensors_[static_cast<std::size_t>(a)];
  auto& tb = tensors_[static_cast<std::size_t>(b)];
  const std::string pa = physical_label(a);
  const std::string pb = physical_label(b);

  // External (non-shared) bond labels stay attached to their qubit
  // through the split.
  std::vector<std::string> a_bonds;
  for (const auto& label : ta.labels()) {
    if (label != pa && !tb.has_label(label)) a_bonds.push_back(label);
  }
  std::vector<std::string> b_bonds;
  for (const auto& label : tb.labels()) {
    if (label != pb && !ta.has_label(label)) b_bonds.push_back(label);
  }

  // Contract the pair over any existing bond, hit the physical axes with
  // the gate (qubits[0] = most significant gate index), and split back.
  Tensor merged = contract(ta, tb);
  const std::vector<std::string> axes{pa, pb};
  merged = bgls::apply_matrix(merged, m, axes);

  std::vector<std::string> row_labels{pa};
  row_labels.insert(row_labels.end(), a_bonds.begin(), a_bonds.end());
  std::vector<std::string> col_labels{pb};
  col_labels.insert(col_labels.end(), b_bonds.begin(), b_bonds.end());
  const Matrix folded = merged.as_matrix(row_labels, col_labels);

  const SvdResult factors = svd(folded);
  // keep ≥ 1 so a vanishing Kraus branch still yields a (zero) state the
  // sampler can weigh out rather than an exception.
  const std::size_t keep = std::max<std::size_t>(
      truncated_rank(factors.singular_values, options_.max_bond_dim,
                     options_.cutoff),
      1);

  // Track the weight removed by truncation (estimated fidelity).
  double kept_weight = 0.0;
  double total_weight = 0.0;
  for (std::size_t i = 0; i < factors.singular_values.size(); ++i) {
    const double w =
        factors.singular_values[i] * factors.singular_values[i];
    total_weight += w;
    if (i < keep) kept_weight += w;
  }
  if (total_weight > 0.0) {
    estimated_fidelity_ *= kept_weight / total_weight;
  }

  std::string bond("b");  // += avoids GCC 12 -Wrestrict (see above)
  bond += std::to_string(bond_counter_++);
  // Absorb √σ into both halves (the quimb 'both' absorption).
  Matrix u_scaled(factors.u.rows(), keep);
  Matrix v_scaled(keep, factors.vh.cols());
  for (std::size_t k = 0; k < keep; ++k) {
    const double root = std::sqrt(factors.singular_values[k]);
    for (std::size_t r = 0; r < factors.u.rows(); ++r) {
      u_scaled(r, k) = factors.u(r, k) * root;
    }
    for (std::size_t c = 0; c < factors.vh.cols(); ++c) {
      v_scaled(k, c) = factors.vh(k, c) * root;
    }
  }

  std::vector<std::size_t> row_dims{2};
  for (const auto& label : a_bonds) row_dims.push_back(merged.dim(label));
  std::vector<std::size_t> col_dims{2};
  for (const auto& label : b_bonds) col_dims.push_back(merged.dim(label));

  ta = Tensor::from_matrix(u_scaled, row_labels, row_dims, {bond}, {keep});
  tb = Tensor::from_matrix(v_scaled, {bond}, {keep}, col_labels, col_dims);
}

Complex MPSState::amplitude(Bitstring b) const {
  BGLS_REQUIRE(n_ == kMaxQubits || (b >> n_) == 0,
               "bitstring out of range");
  // The paper's mps_bitstring_probability: isel every physical index to
  // the bit value, contract the reduced bond-only network.
  std::vector<Tensor> reduced;
  reduced.reserve(tensors_.size());
  for (int q = 0; q < n_; ++q) {
    reduced.push_back(tensors_[static_cast<std::size_t>(q)].isel(
        physical_label(q), static_cast<std::size_t>(get_bit(b, q))));
  }
  return contract_network(std::move(reduced)).scalar_value();
}

double MPSState::probability(Bitstring b) const {
  return std::norm(amplitude(b));
}

double MPSState::norm() const {
  // ⟨ψ|ψ⟩: the doubled network with conjugate bonds renamed so the two
  // copies only share physical labels.
  std::vector<Tensor> network;
  network.reserve(2 * tensors_.size());
  for (const auto& t : tensors_) {
    network.push_back(t);
    Tensor conj = t.conj();
    for (const auto& label : t.labels()) {
      if (label.front() == 'b') conj.rename_label(label, label + "*");
    }
    network.push_back(std::move(conj));
  }
  const Complex n2 = contract_network(std::move(network)).scalar_value();
  return std::sqrt(std::max(0.0, n2.real()));
}

void MPSState::renormalize() {
  const double current = norm();
  BGLS_REQUIRE(current > 1e-150, "cannot renormalize the zero state");
  tensors_.front().scale(Complex{1.0 / current, 0.0});
}

void MPSState::project(std::span<const Qubit> qubits, Bitstring bits) {
  for (const Qubit q : qubits) {
    BGLS_REQUIRE(q >= 0 && q < n_, "qubit ", q, " out of range");
    const int bit = get_bit(bits, q);
    Matrix projector(2, 2);
    projector(static_cast<std::size_t>(bit), static_cast<std::size_t>(bit)) =
        Complex{1.0, 0.0};
    apply_single_qubit(projector, q);
  }
  renormalize();
}

std::vector<Complex> MPSState::to_statevector() const {
  BGLS_REQUIRE(n_ <= 20, "to_statevector limited to 20 qubits");
  const Tensor full = contract_network(tensors_);
  const std::size_t dim = std::size_t{1} << n_;
  std::vector<Complex> psi(dim);
  std::vector<std::size_t> index(static_cast<std::size_t>(n_));
  // Map the tensor's axis order (arbitrary) onto qubit ids.
  std::vector<std::size_t> axis_of_qubit(static_cast<std::size_t>(n_));
  for (int q = 0; q < n_; ++q) {
    axis_of_qubit[static_cast<std::size_t>(q)] =
        full.axis(physical_label(q));
  }
  for (std::size_t b = 0; b < dim; ++b) {
    for (int q = 0; q < n_; ++q) {
      index[axis_of_qubit[static_cast<std::size_t>(q)]] =
          static_cast<std::size_t>(get_bit(b, q));
    }
    psi[b] = full.at(index);
  }
  return psi;
}

std::size_t MPSState::max_bond_dimension() const {
  std::size_t chi = 1;
  for (int q = 0; q < n_; ++q) {
    const auto& t = tensors_[static_cast<std::size_t>(q)];
    for (std::size_t ax = 0; ax < t.rank(); ++ax) {
      if (t.labels()[ax] != physical_label(q)) {
        chi = std::max(chi, t.dims()[ax]);
      }
    }
  }
  return chi;
}

std::size_t MPSState::tensor_size_total() const {
  std::size_t total = 0;
  for (const auto& t : tensors_) total += t.size();
  return total;
}

void apply_op(const Operation& op, MPSState& state, Rng& rng) {
  const Gate& gate = op.gate();
  if (gate.is_channel()) {
    const auto& ops = gate.channel().operators();
    std::vector<double> weights;
    weights.reserve(ops.size());
    for (const auto& k : ops) {
      MPSState branch = state;
      branch.apply_matrix(k, op.qubits());
      const double branch_norm = branch.norm();
      weights.push_back(branch_norm * branch_norm);
    }
    const std::size_t chosen = rng.categorical(weights);
    state.apply_matrix(ops[chosen], op.qubits());
    state.renormalize();
    return;
  }
  state.apply(op);
}

double compute_probability(const MPSState& state, Bitstring b) {
  return state.probability(b);
}

}  // namespace bgls

/// \file state.h
/// Density-matrix simulation state — the counterpart of
/// cirq.DensityMatrixSimulationState, listed in the paper's conclusion as
/// one of the representations bgls ships probability functions for.
///
/// ρ is stored dense (2^n x 2^n, row-major, same bit convention as the
/// statevector). Channels can be applied exactly (Kraus sum), which makes
/// this backend the ground truth that the trajectory tests compare
/// against; in sampler use, channels branch per-Kraus exactly like the
/// pure-state backends so the hidden-variable coupling stays valid.

#pragma once

#include <span>
#include <vector>

#include "circuit/circuit.h"
#include "util/bits.h"
#include "util/rng.h"

namespace bgls {

/// Dense density matrix on n qubits.
class DensityMatrixState {
 public:
  /// Initializes |initial⟩⟨initial|.
  explicit DensityMatrixState(int num_qubits, Bitstring initial = 0);

  [[nodiscard]] int num_qubits() const { return num_qubits_; }
  [[nodiscard]] std::size_t dimension() const { return dim_; }

  /// Entry ρ(r, c).
  [[nodiscard]] Complex entry(Bitstring r, Bitstring c) const {
    return rho_[r * dim_ + c];
  }

  /// P(b) = ρ_bb — the compute_probability ingredient.
  [[nodiscard]] double probability(Bitstring b) const;

  /// Applies a unitary operation: ρ → U ρ U†.
  void apply(const Operation& op);

  /// Applies a raw matrix (not necessarily unitary): ρ → M ρ M†, without
  /// renormalizing. Used for Kraus branches.
  void apply_matrix(const Matrix& m, std::span<const Qubit> qubits);

  /// Applies a channel exactly: ρ → Σ_i K_i ρ K_i†.
  void apply_channel_sum(const KrausChannel& channel,
                         std::span<const Qubit> qubits);

  /// Projects the listed qubits onto the bits of `bits`, renormalizing.
  void project(std::span<const Qubit> qubits, Bitstring bits);

  /// tr(ρ).
  [[nodiscard]] double trace() const;

  /// Scales so tr(ρ) = 1.
  void renormalize();

  /// tr(ρ²) — 1 for pure states.
  [[nodiscard]] double purity() const;

  /// Full diagonal as a probability vector.
  [[nodiscard]] std::vector<double> probabilities() const;

  /// Samples a bitstring from the diagonal.
  [[nodiscard]] Bitstring sample(Rng& rng) const;

 private:
  int num_qubits_ = 0;
  std::size_t dim_ = 0;
  std::vector<Complex> rho_;
};

/// BGLS `apply_op` for density matrices: unitaries exactly; channels as
/// per-Kraus trajectories (the exact Kraus sum is available separately
/// through apply_channel_sum for reference simulations).
void apply_op(const Operation& op, DensityMatrixState& state, Rng& rng);

/// BGLS `compute_probability` for density matrices.
[[nodiscard]] double compute_probability(const DensityMatrixState& state,
                                         Bitstring b);

/// Evolves through all non-measurement operations; channels applied
/// exactly (deterministic reference evolution).
void evolve_exact(const Circuit& circuit, DensityMatrixState& state);

}  // namespace bgls

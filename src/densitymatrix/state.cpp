#include "densitymatrix/state.h"

#include <cmath>

#include "util/error.h"

namespace bgls {
namespace {

/// Builds the full 2^n x 2^n embedding of a gate-local matrix. Density
/// matrices are quadratically bigger than statevectors, so the simple
/// "embed and multiply rows/columns" strategy is acceptable for the
/// register sizes this backend is used at (reference simulations).
void embed_indices(std::span<const Qubit> qubits, std::size_t local,
                   std::size_t& mask_out, std::size_t& value_out) {
  std::size_t mask = 0;
  std::size_t value = 0;
  const std::size_t k = qubits.size();
  for (std::size_t j = 0; j < k; ++j) {
    mask |= std::size_t{1} << qubits[j];
    if ((local >> (k - 1 - j)) & 1u) value |= std::size_t{1} << qubits[j];
  }
  mask_out = mask;
  value_out = value;
}

}  // namespace

DensityMatrixState::DensityMatrixState(int num_qubits, Bitstring initial)
    : num_qubits_(num_qubits) {
  BGLS_REQUIRE(num_qubits >= 1 && num_qubits < 13,
               "density matrix supports 1..12 qubits, got ", num_qubits);
  dim_ = std::size_t{1} << num_qubits;
  rho_.assign(dim_ * dim_, Complex{0.0, 0.0});
  BGLS_REQUIRE(initial < dim_, "initial bitstring out of range");
  rho_[initial * dim_ + initial] = Complex{1.0, 0.0};
}

double DensityMatrixState::probability(Bitstring b) const {
  BGLS_REQUIRE(b < dim_, "bitstring out of range");
  return rho_[b * dim_ + b].real();
}

void DensityMatrixState::apply(const Operation& op) {
  const Gate& gate = op.gate();
  BGLS_REQUIRE(gate.is_unitary(), "cannot apply non-unitary '", gate.name(),
               "' directly");
  // The memoized gate matrix (Gate::compiled_unitary) skips rebuilding
  // the unitary per apply; this backend has no kernel dispatch, so only
  // the matrix half of the cache is consumed.
  apply_matrix(gate.compiled_unitary()->matrix, op.qubits());
}

void DensityMatrixState::apply_matrix(const Matrix& m,
                                      std::span<const Qubit> qubits) {
  const std::size_t k = qubits.size();
  const std::size_t block = std::size_t{1} << k;
  BGLS_REQUIRE(m.rows() == block && m.cols() == block,
               "matrix dimension does not match qubit count");
  for (const Qubit q : qubits) {
    BGLS_REQUIRE(q >= 0 && q < num_qubits_, "qubit ", q, " out of range");
  }
  std::size_t support_mask = 0, ignored = 0;
  embed_indices(qubits, block - 1, support_mask, ignored);

  // Precompute local index embeddings.
  std::vector<std::size_t> local_bits(block);
  for (std::size_t local = 0; local < block; ++local) {
    std::size_t mask = 0;
    embed_indices(qubits, local, mask, local_bits[local]);
  }

  // Left multiply: rows mix within each column. rho <- M rho.
  std::vector<Complex> scratch(block);
  for (std::size_t col = 0; col < dim_; ++col) {
    for (std::size_t base = 0; base < dim_; ++base) {
      if ((base & support_mask) != 0) continue;
      for (std::size_t l = 0; l < block; ++l) {
        scratch[l] = rho_[(base | local_bits[l]) * dim_ + col];
      }
      for (std::size_t r = 0; r < block; ++r) {
        Complex acc{0.0, 0.0};
        for (std::size_t c = 0; c < block; ++c) acc += m(r, c) * scratch[c];
        rho_[(base | local_bits[r]) * dim_ + col] = acc;
      }
    }
  }
  // Right multiply: rho <- rho M†.
  for (std::size_t row = 0; row < dim_; ++row) {
    Complex* row_data = &rho_[row * dim_];
    for (std::size_t base = 0; base < dim_; ++base) {
      if ((base & support_mask) != 0) continue;
      for (std::size_t l = 0; l < block; ++l) {
        scratch[l] = row_data[base | local_bits[l]];
      }
      for (std::size_t c = 0; c < block; ++c) {
        Complex acc{0.0, 0.0};
        for (std::size_t l = 0; l < block; ++l) {
          acc += scratch[l] * std::conj(m(c, l));
        }
        row_data[base | local_bits[c]] = acc;
      }
    }
  }
}

void DensityMatrixState::apply_channel_sum(const KrausChannel& channel,
                                           std::span<const Qubit> qubits) {
  BGLS_REQUIRE(static_cast<std::size_t>(channel.arity()) == qubits.size(),
               "channel arity mismatch");
  std::vector<Complex> accumulated(dim_ * dim_, Complex{0.0, 0.0});
  const std::vector<Complex> original = rho_;
  for (const auto& k : channel.operators()) {
    rho_ = original;
    apply_matrix(k, qubits);
    for (std::size_t i = 0; i < rho_.size(); ++i) accumulated[i] += rho_[i];
  }
  rho_ = std::move(accumulated);
}

void DensityMatrixState::project(std::span<const Qubit> qubits,
                                 Bitstring bits) {
  std::size_t mask = 0;
  std::size_t want = 0;
  for (const Qubit q : qubits) {
    BGLS_REQUIRE(q >= 0 && q < num_qubits_, "qubit ", q, " out of range");
    mask |= std::size_t{1} << q;
    if (get_bit(bits, q)) want |= std::size_t{1} << q;
  }
  for (std::size_t r = 0; r < dim_; ++r) {
    for (std::size_t c = 0; c < dim_; ++c) {
      if ((r & mask) != want || (c & mask) != want) {
        rho_[r * dim_ + c] = Complex{0.0, 0.0};
      }
    }
  }
  renormalize();
}

double DensityMatrixState::trace() const {
  double acc = 0.0;
  for (std::size_t i = 0; i < dim_; ++i) acc += rho_[i * dim_ + i].real();
  return acc;
}

void DensityMatrixState::renormalize() {
  const double tr = trace();
  BGLS_REQUIRE(tr > 0.0, "cannot renormalize zero-trace density matrix");
  const double inv = 1.0 / tr;
  for (auto& v : rho_) v *= inv;
}

double DensityMatrixState::purity() const {
  // tr(ρ²) = Σ_rc ρ_rc ρ_cr = Σ_rc |ρ_rc|² for Hermitian ρ.
  double acc = 0.0;
  for (const auto& v : rho_) acc += std::norm(v);
  return acc;
}

std::vector<double> DensityMatrixState::probabilities() const {
  std::vector<double> probs(dim_);
  for (std::size_t i = 0; i < dim_; ++i) {
    probs[i] = std::max(0.0, rho_[i * dim_ + i].real());
  }
  return probs;
}

Bitstring DensityMatrixState::sample(Rng& rng) const {
  const auto probs = probabilities();
  return rng.categorical(probs);
}

void apply_op(const Operation& op, DensityMatrixState& state, Rng& rng) {
  const Gate& gate = op.gate();
  if (gate.is_channel()) {
    const auto& ops = gate.channel().operators();
    std::vector<double> weights;
    weights.reserve(ops.size());
    for (const auto& k : ops) {
      DensityMatrixState branch = state;
      branch.apply_matrix(k, op.qubits());
      weights.push_back(branch.trace());
    }
    const std::size_t chosen = rng.categorical(weights);
    state.apply_matrix(ops[chosen], op.qubits());
    state.renormalize();
    return;
  }
  state.apply(op);
}

double compute_probability(const DensityMatrixState& state, Bitstring b) {
  return state.probability(b);
}

void evolve_exact(const Circuit& circuit, DensityMatrixState& state) {
  for (const auto& moment : circuit.moments()) {
    for (const auto& op : moment.operations()) {
      if (op.gate().is_measurement()) continue;
      if (op.gate().is_channel()) {
        state.apply_channel_sum(op.gate().channel(), op.qubits());
      } else {
        state.apply(op);
      }
    }
  }
}

}  // namespace bgls

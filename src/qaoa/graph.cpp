#include "qaoa/graph.h"

#include <algorithm>
#include <sstream>

#include "util/error.h"

namespace bgls {

Graph::Graph(int num_vertices) : num_vertices_(num_vertices) {
  BGLS_REQUIRE(num_vertices >= 1 && num_vertices <= kMaxQubits,
               "graph size must be 1..64, got ", num_vertices);
}

void Graph::add_edge(int u, int v) {
  BGLS_REQUIRE(u >= 0 && u < num_vertices_ && v >= 0 && v < num_vertices_,
               "edge (", u, ", ", v, ") out of range");
  BGLS_REQUIRE(u != v, "self loops are not allowed");
  if (u > v) std::swap(u, v);
  if (!has_edge(u, v)) edges_.emplace_back(u, v);
}

bool Graph::has_edge(int u, int v) const {
  if (u > v) std::swap(u, v);
  return std::find(edges_.begin(), edges_.end(), std::make_pair(u, v)) !=
         edges_.end();
}

int Graph::degree(int v) const {
  BGLS_REQUIRE(v >= 0 && v < num_vertices_, "vertex out of range");
  int d = 0;
  for (const auto& [a, b] : edges_) d += (a == v) + (b == v);
  return d;
}

int Graph::cut_value(Bitstring partition) const {
  int cut = 0;
  for (const auto& [a, b] : edges_) {
    cut += get_bit(partition, a) != get_bit(partition, b);
  }
  return cut;
}

std::pair<Bitstring, int> Graph::brute_force_max_cut() const {
  BGLS_REQUIRE(num_vertices_ <= 24, "brute force limited to 24 vertices");
  Bitstring best = 0;
  int best_cut = 0;
  const Bitstring limit = Bitstring{1} << num_vertices_;
  for (Bitstring partition = 0; partition < limit; ++partition) {
    const int cut = cut_value(partition);
    if (cut > best_cut) {
      best_cut = cut;
      best = partition;
    }
  }
  return {best, best_cut};
}

Graph Graph::erdos_renyi(int num_vertices, double edge_probability,
                         Rng& rng) {
  BGLS_REQUIRE(edge_probability >= 0.0 && edge_probability <= 1.0,
               "edge probability must be in [0, 1]");
  Graph graph(num_vertices);
  for (int u = 0; u < num_vertices; ++u) {
    for (int v = u + 1; v < num_vertices; ++v) {
      if (rng.bernoulli(edge_probability)) graph.add_edge(u, v);
    }
  }
  return graph;
}

std::string Graph::to_string() const {
  std::ostringstream oss;
  oss << "graph on " << num_vertices_ << " vertices, " << edges_.size()
      << " edges:";
  for (const auto& [a, b] : edges_) oss << " (" << a << "," << b << ")";
  return oss.str();
}

}  // namespace bgls

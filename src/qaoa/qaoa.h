/// \file qaoa.h
/// QAOA-for-MaxCut on top of the BGLS sampler — the end-to-end
/// application of Sec. 4.4 / Figs. 8–9: build the parameterized circuit,
/// sweep (γ, β), pick the best parameters by sampled average cut, then
/// draw a final batch of samples and return the best partition found.

#pragma once

#include <vector>

#include "circuit/circuit.h"
#include "core/simulator.h"
#include "qaoa/graph.h"

namespace bgls {

/// Symbol names used by the parameterized circuit: gamma0, beta0,
/// gamma1, beta1, ... per layer.
[[nodiscard]] std::string qaoa_gamma_symbol(int layer);
[[nodiscard]] std::string qaoa_beta_symbol(int layer);

/// Builds the p-layer MaxCut QAOA circuit: H on every vertex qubit,
/// then per layer the cost unitary exp(-iγ Z_u Z_v) for every edge
/// (a ZZ gate) and the mixer Rx(2β) on every qubit. Angles are symbols
/// resolved per sweep point; a terminal measurement with key "cut" is
/// appended.
[[nodiscard]] Circuit qaoa_maxcut_circuit(const Graph& graph, int layers);

/// Resolver binding the layer angles.
[[nodiscard]] ParamResolver qaoa_resolver(std::span<const double> gammas,
                                          std::span<const double> betas);

/// Average cut value of sampled partitions.
[[nodiscard]] double average_cut(const Graph& graph, const Counts& counts);

/// Best (highest-cut) sampled partition.
[[nodiscard]] std::pair<Bitstring, int> best_cut(const Graph& graph,
                                                 const Counts& counts);

/// One grid point of the parameter sweep.
struct QaoaGridPoint {
  double gamma = 0.0;
  double beta = 0.0;
  double energy = 0.0;  // sampled average cut
};

/// Sweep + solve result (Fig. 9).
struct QaoaResult {
  std::vector<QaoaGridPoint> grid;
  double best_gamma = 0.0;
  double best_beta = 0.0;
  double best_energy = 0.0;
  Bitstring solution = 0;
  int solution_cut = 0;
};

/// Runs the full Sec. 4.4 pipeline with any state backend: a
/// gamma×beta grid sweep of 1-layer QAOA with `sweep_repetitions`
/// samples per point, then `final_repetitions` samples at the best
/// parameters; the best sampled bitstring is the returned solution.
///
/// The initial state must match the graph's vertex count (e.g.
/// MPSState(graph.num_vertices(), MPSOptions{.max_bond_dim = 8}) for
/// the paper's bounded-χ setup).
template <typename State>
QaoaResult solve_maxcut_qaoa(const Graph& graph, const State& initial_state,
                             int gamma_points, int beta_points,
                             std::uint64_t sweep_repetitions,
                             std::uint64_t final_repetitions, Rng& rng) {
  BGLS_REQUIRE(gamma_points >= 1 && beta_points >= 1,
               "need at least one grid point per axis");
  const Circuit circuit = qaoa_maxcut_circuit(graph, 1);

  QaoaResult result;
  result.best_energy = -1.0;
  constexpr double kPi = 3.14159265358979323846;
  for (int gi = 0; gi < gamma_points; ++gi) {
    for (int bi = 0; bi < beta_points; ++bi) {
      // γ has period 2π for integer-weight MaxCut; β has period π.
      const double gamma = (gi + 0.5) * 2.0 * kPi / gamma_points;
      const double beta = (bi + 0.5) * kPi / beta_points;
      const std::vector<double> gammas{gamma};
      const std::vector<double> betas{beta};
      const Circuit resolved =
          circuit.resolved(qaoa_resolver(gammas, betas));
      Simulator<State> sim{initial_state};
      const Counts counts = sim.sample(resolved, sweep_repetitions, rng);
      const double energy = average_cut(graph, counts);
      result.grid.push_back({gamma, beta, energy});
      if (energy > result.best_energy) {
        result.best_energy = energy;
        result.best_gamma = gamma;
        result.best_beta = beta;
      }
    }
  }

  const std::vector<double> gammas{result.best_gamma};
  const std::vector<double> betas{result.best_beta};
  const Circuit best_circuit = circuit.resolved(qaoa_resolver(gammas, betas));
  Simulator<State> sim{initial_state};
  const Counts final_counts = sim.sample(best_circuit, final_repetitions, rng);
  const auto [solution, cut] = best_cut(graph, final_counts);
  result.solution = solution;
  result.solution_cut = cut;
  return result;
}

}  // namespace bgls

/// \file graph.h
/// Undirected graphs and MaxCut utilities for the QAOA workload of
/// Sec. 4.4 (the role networkx plays for the Python package).

#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/bits.h"
#include "util/rng.h"

namespace bgls {

/// Simple undirected graph on vertices 0..n-1 with no self-loops or
/// parallel edges.
class Graph {
 public:
  /// Creates an empty graph on n vertices.
  explicit Graph(int num_vertices);

  /// Adds an undirected edge (no-op for duplicates; throws on self
  /// loops / out-of-range vertices).
  void add_edge(int u, int v);

  [[nodiscard]] int num_vertices() const { return num_vertices_; }
  [[nodiscard]] const std::vector<std::pair<int, int>>& edges() const {
    return edges_;
  }
  [[nodiscard]] std::size_t num_edges() const { return edges_.size(); }

  /// True when (u, v) is an edge.
  [[nodiscard]] bool has_edge(int u, int v) const;

  /// Vertex degree.
  [[nodiscard]] int degree(int v) const;

  /// Number of edges crossing the 0/1 partition encoded in `partition`
  /// (vertex v's side is bit v) — the MaxCut objective.
  [[nodiscard]] int cut_value(Bitstring partition) const;

  /// Exhaustive MaxCut (n ≤ 24): returns (best partition, best cut).
  [[nodiscard]] std::pair<Bitstring, int> brute_force_max_cut() const;

  /// G(n, p) Erdős–Rényi random graph (each edge independently with
  /// probability p) — the paper's "large, random, and sparse" workload.
  [[nodiscard]] static Graph erdos_renyi(int num_vertices,
                                         double edge_probability, Rng& rng);

  /// ASCII adjacency rendering for examples (stands in for Fig. 8a).
  [[nodiscard]] std::string to_string() const;

 private:
  int num_vertices_ = 0;
  std::vector<std::pair<int, int>> edges_;
};

}  // namespace bgls

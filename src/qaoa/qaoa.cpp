#include "qaoa/qaoa.h"

namespace bgls {

std::string qaoa_gamma_symbol(int layer) {
  return "gamma" + std::to_string(layer);
}

std::string qaoa_beta_symbol(int layer) {
  return "beta" + std::to_string(layer);
}

Circuit qaoa_maxcut_circuit(const Graph& graph, int layers) {
  BGLS_REQUIRE(layers >= 1, "need at least one QAOA layer");
  Circuit circuit;
  const int n = graph.num_vertices();
  for (int q = 0; q < n; ++q) circuit.append(h(q));
  for (int layer = 0; layer < layers; ++layer) {
    // Cost unitary: exp(-iγ Z_u Z_v) per edge = ZZ(2γ) in our
    // convention (ZZ(θ) = exp(-iθ/2 Z⊗Z)). The symbol carries γ; the
    // factor 2 is baked into the resolver.
    for (const auto& [u, v] : graph.edges()) {
      circuit.append(zz(Symbol{qaoa_gamma_symbol(layer)}, u, v));
    }
    // Mixer: Rx(2β) on every qubit.
    for (int q = 0; q < n; ++q) {
      circuit.append(rx(Symbol{qaoa_beta_symbol(layer)}, q));
    }
  }
  std::vector<Qubit> all(static_cast<std::size_t>(n));
  for (int q = 0; q < n; ++q) all[static_cast<std::size_t>(q)] = q;
  circuit.append(measure(std::move(all), "cut"));
  return circuit;
}

ParamResolver qaoa_resolver(std::span<const double> gammas,
                            std::span<const double> betas) {
  BGLS_REQUIRE(gammas.size() == betas.size(),
               "need one (gamma, beta) pair per layer");
  ParamResolver resolver;
  for (std::size_t layer = 0; layer < gammas.size(); ++layer) {
    resolver.set(qaoa_gamma_symbol(static_cast<int>(layer)),
                 2.0 * gammas[layer]);
    resolver.set(qaoa_beta_symbol(static_cast<int>(layer)),
                 2.0 * betas[layer]);
  }
  return resolver;
}

double average_cut(const Graph& graph, const Counts& counts) {
  double total = 0.0;
  std::uint64_t samples = 0;
  for (const auto& [bits, count] : counts) {
    total += static_cast<double>(graph.cut_value(bits)) *
             static_cast<double>(count);
    samples += count;
  }
  BGLS_REQUIRE(samples > 0, "no samples to average");
  return total / static_cast<double>(samples);
}

std::pair<Bitstring, int> best_cut(const Graph& graph, const Counts& counts) {
  BGLS_REQUIRE(!counts.empty(), "no samples to search");
  Bitstring best = 0;
  int best_value = -1;
  for (const auto& [bits, count] : counts) {
    const int cut = graph.cut_value(bits);
    if (cut > best_value) {
      best_value = cut;
      best = bits;
    }
  }
  return {best, best_value};
}

}  // namespace bgls

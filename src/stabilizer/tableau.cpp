#include "stabilizer/tableau.h"

#include <bit>

#include "util/error.h"

namespace bgls {

TableauState::TableauState(int num_qubits, Bitstring initial)
    : n_(num_qubits) {
  BGLS_REQUIRE(num_qubits >= 1 && num_qubits <= 63,
               "tableau supports 1..63 qubits, got ", num_qubits);
  const auto rows = static_cast<std::size_t>(2 * n_ + 1);
  x_.assign(rows, 0);
  z_.assign(rows, 0);
  r_.assign(rows, 0);
  for (int q = 0; q < n_; ++q) {
    // Destabilizer q = X_q, stabilizer q = Z_q (the |0...0⟩ tableau).
    x_[static_cast<std::size_t>(q)] = std::uint64_t{1} << q;
    z_[static_cast<std::size_t>(n_ + q)] = std::uint64_t{1} << q;
  }
  BGLS_REQUIRE(n_ == 63 || (initial >> n_) == 0,
               "initial bitstring out of range");
  for (int q = 0; q < n_; ++q) {
    if (get_bit(initial, q)) apply_x(q);
  }
}

void TableauState::rowsum(int h, int i) {
  // Phase exponent accumulates 2*r_h + 2*r_i + sum_j g(...) mod 4; the
  // result is always 0 or 2 for commuting products in valid tableaux.
  const auto hs = static_cast<std::size_t>(h);
  const auto is = static_cast<std::size_t>(i);
  int phase = 2 * r_[hs] + 2 * r_[is];
  for (int q = 0; q < n_; ++q) {
    const bool x1 = x_bit(i, q), z1 = z_bit(i, q);
    const bool x2 = x_bit(h, q), z2 = z_bit(h, q);
    // g per Aaronson–Gottesman: exponent of i in (x1 z1)·(x2 z2).
    int g = 0;
    if (x1 && !z1) {                 // X · P
      g = (z2 ? (x2 ? 1 : -1) : 0);  // X·Y = iZ... see derivation below
    } else if (!x1 && z1) {          // Z · P
      g = (x2 ? (z2 ? -1 : 1) : 0);
    } else if (x1 && z1) {           // Y · P: g = z2 - x2
      g = (z2 ? 1 : 0) - (x2 ? 1 : 0);
    }
    phase += g;
  }
  phase &= 3;
  r_[hs] = static_cast<std::uint8_t>(phase == 2);
  x_[hs] ^= x_[is];
  z_[hs] ^= z_[is];
}

void TableauState::apply_h(int q) {
  const std::uint64_t bit = std::uint64_t{1} << q;
  for (std::size_t row = 0; row < x_.size() - 1; ++row) {
    const bool x = (x_[row] & bit) != 0;
    const bool z = (z_[row] & bit) != 0;
    if (x && z) r_[row] ^= 1;
    // Swap the X and Z components on qubit q.
    if (x != z) {
      x_[row] ^= bit;
      z_[row] ^= bit;
    }
  }
}

void TableauState::apply_s(int q) {
  const std::uint64_t bit = std::uint64_t{1} << q;
  for (std::size_t row = 0; row < x_.size() - 1; ++row) {
    const bool x = (x_[row] & bit) != 0;
    const bool z = (z_[row] & bit) != 0;
    if (x && z) r_[row] ^= 1;
    if (x) z_[row] ^= bit;
  }
}

void TableauState::apply_sdg(int q) {
  apply_s(q);
  apply_z(q);
}

void TableauState::apply_z(int q) {
  const std::uint64_t bit = std::uint64_t{1} << q;
  for (std::size_t row = 0; row < x_.size() - 1; ++row) {
    if (x_[row] & bit) r_[row] ^= 1;
  }
}

void TableauState::apply_x(int q) {
  const std::uint64_t bit = std::uint64_t{1} << q;
  for (std::size_t row = 0; row < x_.size() - 1; ++row) {
    if (z_[row] & bit) r_[row] ^= 1;
  }
}

void TableauState::apply_y(int q) {
  const std::uint64_t bit = std::uint64_t{1} << q;
  for (std::size_t row = 0; row < x_.size() - 1; ++row) {
    if (((x_[row] ^ z_[row]) & bit) != 0) r_[row] ^= 1;
  }
}

void TableauState::apply_sqrt_x(int q) {
  apply_h(q);
  apply_s(q);
  apply_h(q);
}

void TableauState::apply_cx(int control, int target) {
  BGLS_REQUIRE(control != target, "CX needs distinct qubits");
  const std::uint64_t cbit = std::uint64_t{1} << control;
  const std::uint64_t tbit = std::uint64_t{1} << target;
  for (std::size_t row = 0; row < x_.size() - 1; ++row) {
    const bool xc = (x_[row] & cbit) != 0;
    const bool zt = (z_[row] & tbit) != 0;
    const bool xt = (x_[row] & tbit) != 0;
    const bool zc = (z_[row] & cbit) != 0;
    if (xc && zt && (xt == zc)) r_[row] ^= 1;
    if (xc) x_[row] ^= tbit;
    if (zt) z_[row] ^= cbit;
  }
}

void TableauState::apply_cz(int a, int b) {
  apply_h(b);
  apply_cx(a, b);
  apply_h(b);
}

void TableauState::apply_swap(int a, int b) {
  apply_cx(a, b);
  apply_cx(b, a);
  apply_cx(a, b);
}

void TableauState::apply(const Operation& op) {
  const auto q = op.qubits();
  switch (op.gate().kind()) {
    case GateKind::kIdentity: return;
    case GateKind::kX: apply_x(q[0]); return;
    case GateKind::kY: apply_y(q[0]); return;
    case GateKind::kZ: apply_z(q[0]); return;
    case GateKind::kH: apply_h(q[0]); return;
    case GateKind::kS: apply_s(q[0]); return;
    case GateKind::kSdg: apply_sdg(q[0]); return;
    case GateKind::kSqrtX: apply_sqrt_x(q[0]); return;
    case GateKind::kCX: apply_cx(q[0], q[1]); return;
    case GateKind::kCZ: apply_cz(q[0], q[1]); return;
    case GateKind::kSwap: apply_swap(q[0], q[1]); return;
    default:
      detail::throw_error<UnsupportedOperationError>(
          "gate '", op.gate().name(), "' is not Clifford");
  }
}

bool TableauState::is_deterministic_z(int q, int* outcome) const {
  const std::uint64_t bit = std::uint64_t{1} << q;
  for (int p = n_; p < 2 * n_; ++p) {
    if (x_[static_cast<std::size_t>(p)] & bit) return false;
  }
  if (outcome != nullptr) {
    // Accumulate into the scratch row (2n) the product of stabilizers
    // whose destabilizer partner anticommutes with Z_q.
    auto* self = const_cast<TableauState*>(this);
    const auto scratch = static_cast<std::size_t>(2 * n_);
    self->x_[scratch] = 0;
    self->z_[scratch] = 0;
    self->r_[scratch] = 0;
    for (int i = 0; i < n_; ++i) {
      if (x_[static_cast<std::size_t>(i)] & bit) {
        self->rowsum(2 * n_, i + n_);
      }
    }
    *outcome = r_[scratch];
  }
  return true;
}

int TableauState::measure_z(int q, Rng& rng) {
  int outcome = 0;
  if (is_deterministic_z(q, &outcome)) return outcome;
  outcome = rng.bernoulli(0.5) ? 1 : 0;
  project_z(q, outcome);
  return outcome;
}

double TableauState::project_z(int q, int outcome) {
  BGLS_REQUIRE(q >= 0 && q < n_, "qubit ", q, " out of range");
  BGLS_REQUIRE(outcome == 0 || outcome == 1, "outcome must be 0 or 1");
  const std::uint64_t bit = std::uint64_t{1} << q;
  int pivot = -1;
  for (int p = n_; p < 2 * n_; ++p) {
    if (x_[static_cast<std::size_t>(p)] & bit) {
      pivot = p;
      break;
    }
  }
  if (pivot < 0) {
    int fixed = 0;
    const bool deterministic = is_deterministic_z(q, &fixed);
    BGLS_REQUIRE(deterministic && fixed == outcome,
                 "projection onto zero-probability outcome on qubit ", q);
    return 1.0;
  }
  // Random outcome: clear x_q from every other row, then replace.
  for (int i = 0; i < 2 * n_; ++i) {
    if (i != pivot && (x_[static_cast<std::size_t>(i)] & bit)) {
      rowsum(i, pivot);
    }
  }
  const auto ps = static_cast<std::size_t>(pivot);
  const auto ds = static_cast<std::size_t>(pivot - n_);
  x_[ds] = x_[ps];
  z_[ds] = z_[ps];
  r_[ds] = r_[ps];
  x_[ps] = 0;
  z_[ps] = bit;
  r_[ps] = static_cast<std::uint8_t>(outcome);
  return 0.5;
}

double TableauState::probability(Bitstring b) const {
  TableauState working = *this;
  double prob = 1.0;
  for (int q = 0; q < n_; ++q) {
    const int desired = get_bit(b, q);
    int fixed = 0;
    if (working.is_deterministic_z(q, &fixed)) {
      if (fixed != desired) return 0.0;
      continue;
    }
    working.project_z(q, desired);
    prob *= 0.5;
  }
  return prob;
}

Bitstring TableauState::sample(Rng& rng) const {
  TableauState working = *this;
  Bitstring bits = 0;
  for (int q = 0; q < n_; ++q) {
    bits = with_bit(bits, q, working.measure_z(q, rng));
  }
  return bits;
}

void apply_op(const Operation& op, TableauState& state, Rng& rng) {
  (void)rng;
  BGLS_REQUIRE(!op.gate().is_measurement() && !op.gate().is_channel(),
               "measurements/channels are handled by the sampler");
  state.apply(op);
}

double compute_probability(const TableauState& state, Bitstring b) {
  return state.probability(b);
}

}  // namespace bgls

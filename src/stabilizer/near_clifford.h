/// \file near_clifford.h
/// Sum-over-Cliffords sampling for Clifford+Rz(θ) circuits — the
/// package's act_on_near_clifford (Sec. 4.2 of the paper; technique from
/// Bravyi et al. 2019).
///
/// Any diagonal rotation R(θ) = e^{-iθZ/2} decomposes optimally (in
/// stabilizer extent) as
///     R(θ) = (cos(θ/2) − sin(θ/2)) · I + √2 e^{−iπ/4} sin(θ/2) · S,
/// so a non-Clifford gate can be replaced stochastically by I or S with
/// probabilities proportional to the coefficient magnitudes, keeping the
/// evolution inside the stabilizer formalism. A circuit with N such
/// rotations has 2^N branches; each sample explores one, which is why
/// the attained overlap lags the exact distribution (Figs. 4–5).

#pragma once

#include "stabilizer/ch_form.h"

namespace bgls {

/// Counters describing the stochastic branching of one or more
/// act_on_near_clifford applications.
struct NearCliffordStats {
  std::size_t rotations_decomposed = 0;
  std::size_t identity_branches = 0;
  std::size_t s_branches = 0;
};

/// The BGLS apply_op hook for Clifford+Rz circuits: gates with a
/// stabilizer effect apply exactly; Rz(θ) / Phase(θ) / T / T† are
/// replaced by I or S sampled ∝ |coefficient| (Clifford angles are
/// detected and applied exactly, with their global phase). ω absorbs
/// coefficient/probability so each branch carries its sum-over-Cliffords
/// weight. Throws UnsupportedOperationError for other non-Clifford
/// gates.
void act_on_near_clifford(const Operation& op, CHState& state, Rng& rng,
                          NearCliffordStats* stats = nullptr);

/// True when the operation can be applied by act_on_near_clifford.
[[nodiscard]] bool has_near_clifford_support(const Operation& op);

}  // namespace bgls

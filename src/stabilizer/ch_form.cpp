#include "stabilizer/ch_form.h"

#include <bit>
#include <cmath>

#include "util/error.h"

namespace bgls {
namespace {

constexpr double kInvSqrt2 = 0.70710678118654752440;

/// i^k for k mod 4.
constexpr Complex i_power(int k) {
  switch (k & 3) {
    case 0: return Complex{1.0, 0.0};
    case 1: return Complex{0.0, 1.0};
    case 2: return Complex{-1.0, 0.0};
    default: return Complex{0.0, -1.0};
  }
}

int parity(std::uint64_t word) { return std::popcount(word) & 1; }

/// Single-qubit normal form: H^v (|y⟩ + i^δ |ȳ⟩) = √2 · ω₁ · S^a H^b |c⟩
/// with |ω₁| = 1 (√2 cancels against the 1/√2 carried by update_sum).
/// Derivation in the cases below; validated by the phase-exact
/// statevector comparison tests.
struct HDecompose {
  Complex omega1;
  int a;
  int b;
  int c;
};

HDecompose h_decompose(int v, int y, int delta) {
  delta &= 3;
  if (v == 0) {
    // |y⟩ + i^δ|ȳ⟩ = i^{δ·y} (|0⟩ + i^{δ'}|1⟩) with δ' = (-1)^y δ,
    // and |0⟩ + i^{δ'}|1⟩ = √2 S^{δ'&1} H |δ'>>1⟩.
    const int delta2 = (y ? (4 - delta) : delta) & 3;
    return {i_power(delta * y), delta2 & 1, 1, delta2 >> 1};
  }
  if ((delta & 1) == 0) {
    // H(|y⟩ + (-1)^{δ/2}|ȳ⟩) = (-1)^{y·δ/2} √2 |δ/2⟩.
    const int c = delta >> 1;
    const double sign = (y & c) ? -1.0 : 1.0;
    return {Complex{sign, 0.0}, 0, 0, c};
  }
  // δ odd: H(|y⟩ + i^δ|ȳ⟩) = (1 + i^δ) S H |¬((δ>>1) ⊕ y)⟩, i.e.
  // ω₁ = (1 + i^δ)/√2 with a = b = 1.
  const Complex omega1 = (Complex{1.0, 0.0} + i_power(delta)) * kInvSqrt2;
  return {omega1, 1, 1, ((delta >> 1) ^ y) ^ 1};
}

}  // namespace

CHState::CHState(int num_qubits, Bitstring initial) : n_(num_qubits) {
  BGLS_REQUIRE(num_qubits >= 1 && num_qubits <= 63,
               "CH form supports 1..63 qubits, got ", num_qubits);
  mask_ = (std::uint64_t{1} << n_) - 1;
  BGLS_REQUIRE((initial & ~mask_) == 0, "initial bitstring out of range");
  g_.resize(static_cast<std::size_t>(n_));
  f_.resize(static_cast<std::size_t>(n_));
  m_.assign(static_cast<std::size_t>(n_), 0);
  gamma_.assign(static_cast<std::size_t>(n_), 0);
  for (int p = 0; p < n_; ++p) {
    g_[static_cast<std::size_t>(p)] = std::uint64_t{1} << p;
    f_[static_cast<std::size_t>(p)] = std::uint64_t{1} << p;
  }
  for (int q = 0; q < n_; ++q) {
    if (get_bit(initial, q)) apply_x(q);
  }
}

Complex CHState::amplitude(Bitstring x) const {
  BGLS_REQUIRE((x & ~mask_) == 0, "bitstring out of range");
  // ⟨x|U_C = i^μ (-1)^{xvec·zvec} ⟨xvec| with (μ, xvec, zvec) the
  // phase-tracked product of the Heisenberg images of the X_j with
  // x_j = 1: each factor contributes γ_j and commuting its X part past
  // the accumulated Z part costs (-1)^{|zvec ∧ F_j|}.
  int mu = 0;
  std::uint64_t xvec = 0;
  std::uint64_t zvec = 0;
  for (int j = 0; j < n_; ++j) {
    if (!get_bit(x, j)) continue;
    const auto js = static_cast<std::size_t>(j);
    mu = (mu + gamma_[js] + 2 * parity(zvec & f_[js])) & 3;
    xvec ^= f_[js];
    zvec ^= m_[js];
  }
  // ⟨xvec|U_H|s⟩: qubits without H must agree with s; qubits with H
  // contribute 2^{-1/2} (-1)^{xvec_j s_j} each.
  if (((xvec ^ s_) & ~v_ & mask_) != 0) return Complex{0.0, 0.0};
  const int sign_exponent = 2 * (parity(xvec & zvec) ^ parity(xvec & s_ & v_));
  const double magnitude = std::pow(kInvSqrt2, std::popcount(v_ & mask_));
  return omega_ * i_power(mu + sign_exponent) * magnitude;
}

double CHState::probability(Bitstring x) const { return std::norm(amplitude(x)); }

void CHState::apply(const Operation& op) {
  const auto q = op.qubits();
  switch (op.gate().kind()) {
    case GateKind::kIdentity: return;
    case GateKind::kX: apply_x(q[0]); return;
    case GateKind::kY: apply_y(q[0]); return;
    case GateKind::kZ: apply_z(q[0]); return;
    case GateKind::kH: apply_h(q[0]); return;
    case GateKind::kS: apply_s(q[0]); return;
    case GateKind::kSdg: apply_sdg(q[0]); return;
    case GateKind::kSqrtX: apply_sqrt_x(q[0]); return;
    case GateKind::kCX: apply_cx(q[0], q[1]); return;
    case GateKind::kCZ: apply_cz(q[0], q[1]); return;
    case GateKind::kSwap: apply_swap(q[0], q[1]); return;
    default:
      detail::throw_error<UnsupportedOperationError>(
          "gate '", op.gate().name(),
          "' is not Clifford; CH states support {X,Y,Z,H,S,S†,√X,CX,CZ,"
          "SWAP} (see act_on_near_clifford for Rz-family gates)");
  }
}

void CHState::apply_x(int q) {
  // X_q |ψ⟩ = ω i^{γ_q} U_C (X^{F_q} Z^{M_q}) U_H |s⟩; pushing the Pauli
  // through U_H flips s by F_q on no-H qubits and by M_q on H qubits,
  // with sign (-1)^β, β = |M_q∧¬v∧s| + |F_q∧v∧s| + |F_q∧v∧M_q|.
  const auto qs = static_cast<std::size_t>(q);
  const std::uint64_t u = s_ ^ (f_[qs] & ~v_) ^ (m_[qs] & v_);
  const int beta = parity(m_[qs] & ~v_ & s_) ^ parity(f_[qs] & v_ & s_) ^
                   parity(f_[qs] & v_ & m_[qs]);
  omega_ *= i_power(gamma_[qs] + 2 * beta);
  s_ = u & mask_;
}

void CHState::apply_y(int q) {
  // Y = i X Z.
  apply_z(q);
  apply_x(q);
  omega_ *= Complex{0.0, 1.0};
}

void CHState::apply_z(int q) {
  // Z is C-type: Z X Z = -X, so only γ_q picks up 2.
  const auto qs = static_cast<std::size_t>(q);
  gamma_[qs] = static_cast<std::uint8_t>((gamma_[qs] + 2) & 3);
}

void CHState::apply_s(int q) {
  // S† X S = -i X Z ⇒ γ_q -= 1, M_q ^= G_q (Z rows unchanged).
  const auto qs = static_cast<std::size_t>(q);
  m_[qs] ^= g_[qs];
  gamma_[qs] = static_cast<std::uint8_t>((gamma_[qs] + 3) & 3);
}

void CHState::apply_sdg(int q) {
  // S X S† = i X Z ⇒ γ_q += 1, M_q ^= G_q.
  const auto qs = static_cast<std::size_t>(q);
  m_[qs] ^= g_[qs];
  gamma_[qs] = static_cast<std::uint8_t>((gamma_[qs] + 1) & 3);
}

void CHState::apply_sqrt_x(int q) {
  // √X = H S H exactly (no global phase).
  apply_h(q);
  apply_s(q);
  apply_h(q);
}

void CHState::apply_cx(int control, int target) {
  BGLS_REQUIRE(control != target, "CX needs distinct qubits");
  const auto c = static_cast<std::size_t>(control);
  const auto t = static_cast<std::size_t>(target);
  // Heisenberg: Z_t ↦ Z_c Z_t, X_c ↦ X_c X_t; combining the X images
  // costs (-1)^{|M_c ∧ F_t|} from commuting Z^{M_c} past X^{F_t}.
  gamma_[c] = static_cast<std::uint8_t>(
      (gamma_[c] + gamma_[t] + 2 * parity(m_[c] & f_[t])) & 3);
  g_[t] ^= g_[c];
  f_[c] ^= f_[t];
  m_[c] ^= m_[t];
}

void CHState::apply_cz(int a, int b) {
  BGLS_REQUIRE(a != b, "CZ needs distinct qubits");
  const auto x = static_cast<std::size_t>(a);
  const auto y = static_cast<std::size_t>(b);
  // X_a ↦ X_a Z_b, X_b ↦ X_b Z_a; Z rows unchanged; no phase (the Z
  // lands on a different qubit than the X it joins).
  m_[x] ^= g_[y];
  m_[y] ^= g_[x];
}

void CHState::apply_swap(int a, int b) {
  apply_cx(a, b);
  apply_cx(b, a);
  apply_cx(a, b);
}

void CHState::scale_omega(Complex factor) { omega_ *= factor; }

void CHState::apply_h(int q) {
  // H_q = (X_q + Z_q)/√2; push both Paulis through U_C and U_H:
  //   Z image: (-1)^α |t⟩,  t = s ⊕ (G_q∧v),      α = |G_q∧¬v∧s|
  //   X image: i^{γ_q}(-1)^β |u⟩, u = s ⊕ (F_q∧¬v) ⊕ (M_q∧v),
  //            β = |M_q∧¬v∧s| + |F_q∧v∧s| + |F_q∧v∧M_q|
  // giving H|ψ⟩ = ω(-1)^α (1/√2) U_C U_H (|t⟩ + i^δ|u⟩) with
  // δ = γ_q + 2(α+β).
  const auto qs = static_cast<std::size_t>(q);
  const std::uint64_t t = (s_ ^ (g_[qs] & v_)) & mask_;
  const std::uint64_t u =
      (s_ ^ (f_[qs] & ~v_) ^ (m_[qs] & v_)) & mask_;
  const int alpha = parity(g_[qs] & ~v_ & s_);
  const int beta = parity(m_[qs] & ~v_ & s_) ^ parity(f_[qs] & v_ & s_) ^
                   parity(f_[qs] & v_ & m_[qs]);
  const int delta = (gamma_[qs] + 2 * (alpha + beta)) & 3;
  if (alpha) omega_ *= Complex{-1.0, 0.0};
  update_sum(t, u, delta);
}

void CHState::update_sum(std::uint64_t t, std::uint64_t u, int delta) {
  delta &= 3;
  if (t == u) {
    // (|t⟩ + i^δ|t⟩)/√2 = ((1 + i^δ)/√2)|t⟩.
    s_ = t;
    omega_ *= (Complex{1.0, 0.0} + i_power(delta)) * kInvSqrt2;
    return;
  }
  // Choose the pivot q and fold the other differing positions onto it
  // with right-multiplied gates V_C such that
  // U_H(|t⟩+i^δ|u⟩) = V_C U_H (|y⟩+i^δ|z⟩), y ⊕ z = e_q:
  //   v_i = 0, v_q = 0:  CX(q→i)                      (plain flip)
  //   v_i = 1, v_q = 0:  CZ(q,i)   (H_i CX(q→i) H_i)
  //   v_i = 1, v_q = 1:  CX(i→q)   (H both: control/target swap)
  const std::uint64_t diff = (t ^ u) & mask_;
  const std::uint64_t set0 = diff & ~v_;
  const std::uint64_t set1 = diff & v_;
  int q;
  if (set0 != 0) {
    q = std::countr_zero(set0);
    for (std::uint64_t rest = set0 & ~(std::uint64_t{1} << q); rest != 0;
         rest &= rest - 1) {
      right_cx(q, std::countr_zero(rest));
    }
    for (std::uint64_t rest = set1; rest != 0; rest &= rest - 1) {
      right_cz(q, std::countr_zero(rest));
    }
  } else {
    q = std::countr_zero(set1);
    for (std::uint64_t rest = set1 & ~(std::uint64_t{1} << q); rest != 0;
         rest &= rest - 1) {
      right_cx(std::countr_zero(rest), q);
    }
  }

  // After folding, the two strings differ only at q. The first ket keeps
  // the coefficient 1, so y is the image of t (the other ket's image,
  // y ^ e, never enters the update).
  const std::uint64_t e = std::uint64_t{1} << q;
  const std::uint64_t y = (t & e) ? (u ^ e) : t;
  const HDecompose d =
      h_decompose(get_bit(v_, q), get_bit(y, q), delta);
  omega_ *= d.omega1;
  if (d.a) right_s(q);
  v_ = (v_ & ~e) | (d.b ? e : 0);
  s_ = with_bit(y, q, d.c);
}

void CHState::right_cx(int control, int target) {
  // U_C ← U_C · CX: column updates (images of Z_b gain Z_a, images of
  // X_a gain X_b).
  const auto a = static_cast<std::size_t>(control);
  const auto b = static_cast<std::size_t>(target);
  const std::uint64_t ca = std::uint64_t{1} << a;
  const std::uint64_t cb = std::uint64_t{1} << b;
  for (int p = 0; p < n_; ++p) {
    const auto ps = static_cast<std::size_t>(p);
    if (g_[ps] & cb) g_[ps] ^= ca;
    if (f_[ps] & ca) f_[ps] ^= cb;
    if (m_[ps] & cb) m_[ps] ^= ca;
  }
}

void CHState::right_cz(int a, int b) {
  // U_C ← U_C · CZ: X_a gains Z_b, X_b gains Z_a, and rows with both
  // X_a and X_b pick up a sign (CZ (X⊗X) CZ = -(X⊗X)(Z⊗Z)).
  const auto as = static_cast<std::size_t>(a);
  const auto bs = static_cast<std::size_t>(b);
  const std::uint64_t ca = std::uint64_t{1} << as;
  const std::uint64_t cb = std::uint64_t{1} << bs;
  for (int p = 0; p < n_; ++p) {
    const auto ps = static_cast<std::size_t>(p);
    const bool fa = (f_[ps] & ca) != 0;
    const bool fb = (f_[ps] & cb) != 0;
    if (fa) m_[ps] ^= cb;
    if (fb) m_[ps] ^= ca;
    if (fa && fb) {
      gamma_[ps] = static_cast<std::uint8_t>((gamma_[ps] + 2) & 3);
    }
  }
}

void CHState::right_s(int q) {
  // U_C ← U_C · S: X_q gains Z_q with phase -i (S† X S = -i X Z).
  const auto qs = static_cast<std::size_t>(q);
  const std::uint64_t cq = std::uint64_t{1} << qs;
  for (int p = 0; p < n_; ++p) {
    const auto ps = static_cast<std::size_t>(p);
    if (f_[ps] & cq) {
      m_[ps] ^= cq;
      gamma_[ps] = static_cast<std::uint8_t>((gamma_[ps] + 3) & 3);
    }
  }
}

bool CHState::is_deterministic_z(int q, int* outcome) const {
  // The measured operator in the s-frame is X^{G_q∧v} Z^{G_q∧¬v}; it is
  // deterministic iff the X part vanishes.
  const auto qs = static_cast<std::size_t>(q);
  if ((g_[qs] & v_ & mask_) != 0) return false;
  if (outcome != nullptr) *outcome = parity(g_[qs] & ~v_ & s_);
  return true;
}

double CHState::project_z(int q, int outcome) {
  BGLS_REQUIRE(q >= 0 && q < n_, "qubit ", q, " out of range");
  BGLS_REQUIRE(outcome == 0 || outcome == 1, "outcome must be 0 or 1");
  int fixed = 0;
  if (is_deterministic_z(q, &fixed)) {
    BGLS_REQUIRE(fixed == outcome,
                 "projection onto zero-probability outcome on qubit ", q);
    return 1.0;
  }
  // (I + (-1)^z Z_q)/2 |ψ⟩, renormalized by √2, lands exactly on the
  // update_sum normal form with t = s, u = s ⊕ (G_q∧v),
  // δ = 2(z + |G_q∧¬v∧s|).
  const auto qs = static_cast<std::size_t>(q);
  const std::uint64_t u = (s_ ^ (g_[qs] & v_)) & mask_;
  const int delta = (2 * (outcome + parity(g_[qs] & ~v_ & s_))) & 3;
  update_sum(s_, u, delta);
  return 0.5;
}

void CHState::project(std::span<const Qubit> qubits, Bitstring bits) {
  for (const Qubit q : qubits) project_z(q, get_bit(bits, q));
}

int CHState::measure_z(int q, Rng& rng) {
  int outcome = 0;
  if (is_deterministic_z(q, &outcome)) return outcome;
  outcome = rng.bernoulli(0.5) ? 1 : 0;
  project_z(q, outcome);
  return outcome;
}

std::vector<Complex> CHState::to_statevector() const {
  BGLS_REQUIRE(n_ <= 20, "to_statevector limited to 20 qubits");
  const std::size_t dim = std::size_t{1} << n_;
  std::vector<Complex> psi(dim);
  for (std::size_t x = 0; x < dim; ++x) psi[x] = amplitude(x);
  return psi;
}

void apply_op(const Operation& op, CHState& state, Rng& rng) {
  (void)rng;  // Clifford application is deterministic.
  BGLS_REQUIRE(!op.gate().is_measurement() && !op.gate().is_channel(),
               "measurements/channels are handled by the sampler");
  state.apply(op);
}

double compute_probability(const CHState& state, Bitstring b) {
  return state.probability(b);
}

}  // namespace bgls

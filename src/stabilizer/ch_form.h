/// \file ch_form.h
/// Stabilizer states in CH form — the C++ counterpart of
/// cirq.StabilizerChFormSimulationState, following Bravyi, Browne,
/// Calpin, Campbell, Gosset & Howard, "Simulation of quantum circuits by
/// low-rank stabilizer decompositions" (Quantum 3, 181 (2019),
/// arXiv:1808.00128), Sec. 4.1.2 of the bgls paper.
///
/// Representation:  |ψ⟩ = ω · U_C · U_H · |s⟩  with
///  - U_C a "C-type" Clifford (a product of CX, CZ, S — fixes |0...0⟩),
///    tracked through binary matrices G, F, M and a phase vector
///    γ ∈ Z₄ⁿ defined by the Heisenberg images
///        U_C† Z_p U_C = ∏_j Z_j^{G_{p,j}}
///        U_C† X_p U_C = i^{γ_p} ∏_j X_j^{F_{p,j}} Z_j^{M_{p,j}},
///  - U_H = ∏_j H_j^{v_j} a layer of Hadamards,
///  - |s⟩ a computational basis state,
///  - ω a complex scalar carrying the global phase (and, under the
///    sum-over-Cliffords channel of near_clifford.h, the branch weight).
///
/// Bit packing: with n ≤ 63 qubits, each matrix row and each of v, s is a
/// single 64-bit mask (qubit j at bit j), so every gate update is a few
/// word operations and a bitstring amplitude costs O(n) word ops —
/// realizing the O(n²)-per-amplitude, depth-independent cost quoted in
/// the paper (f(n, d) = O(d·n²) for sampling).
///
/// Every update rule is derived in the implementation comments and
/// cross-validated against the statevector backend (including the global
/// phase) by the test suite.

#pragma once

#include <cstdint>
#include <vector>

#include "circuit/circuit.h"
#include "util/bits.h"
#include "util/rng.h"

namespace bgls {

/// Stabilizer state in CH form.
class CHState {
 public:
  /// Initializes |initial⟩ (default |0...0⟩) on num_qubits ≤ 63 qubits.
  explicit CHState(int num_qubits, Bitstring initial = 0);

  [[nodiscard]] int num_qubits() const { return n_; }

  /// ⟨x|ψ⟩ including the global phase — the
  /// inner_product_of_state_and_x equivalent, O(n²) bit ops.
  [[nodiscard]] Complex amplitude(Bitstring x) const;

  /// |⟨x|ψ⟩|² — the compute_probability_stabilizer_state ingredient.
  [[nodiscard]] double probability(Bitstring x) const;

  /// Applies a Clifford operation (I, X, Y, Z, H, S, S†, √X, CX, CZ,
  /// SWAP). Throws UnsupportedOperationError for anything else — the
  /// sum-over-Cliffords channel (near_clifford.h) handles Rz-family
  /// gates.
  void apply(const Operation& op);

  // --- Individual gate updates (left multiplication) --------------------
  void apply_x(int q);
  void apply_y(int q);
  void apply_z(int q);
  void apply_h(int q);
  void apply_s(int q);
  void apply_sdg(int q);
  void apply_sqrt_x(int q);
  void apply_cx(int control, int target);
  void apply_cz(int a, int b);
  void apply_swap(int a, int b);

  /// Multiplies the global scalar (used by sum-over-Cliffords weights).
  void scale_omega(Complex factor);

  /// True when measuring Z on qubit q has a deterministic outcome; the
  /// outcome is stored in *outcome when non-null.
  [[nodiscard]] bool is_deterministic_z(int q, int* outcome = nullptr) const;

  /// Projects qubit q onto `outcome` and renormalizes; returns the
  /// probability of that outcome (1.0 or 0.5). Throws on probability 0.
  double project_z(int q, int outcome);

  /// Projects the listed qubits onto the corresponding bits of `bits`
  /// (sampler measurement-collapse interface).
  void project(std::span<const Qubit> qubits, Bitstring bits);

  /// Samples and collapses a Z measurement of qubit q.
  int measure_z(int q, Rng& rng);

  /// Full statevector reconstruction (n ≤ 20; testing / examples).
  [[nodiscard]] std::vector<Complex> to_statevector() const;

 private:
  /// Canonicalizes ω·(1/√2)·U_C·U_H·(|t⟩ + i^δ|u⟩) back into CH form
  /// (Proposition 4 of Bravyi et al.). δ is taken mod 4.
  void update_sum(std::uint64_t t, std::uint64_t u, int delta);

  // Right-multiplication helpers (U_C ← U_C · g) used by update_sum.
  void right_cx(int control, int target);
  void right_cz(int a, int b);
  void right_s(int q);

  int n_ = 0;
  std::uint64_t mask_ = 0;          // low n bits set
  std::vector<std::uint64_t> g_;    // rows of G
  std::vector<std::uint64_t> f_;    // rows of F
  std::vector<std::uint64_t> m_;    // rows of M
  std::vector<std::uint8_t> gamma_; // γ ∈ Z₄ per row
  std::uint64_t v_ = 0;             // Hadamard layer
  std::uint64_t s_ = 0;             // basis state
  Complex omega_{1.0, 0.0};
};

/// BGLS `apply_op` for CH states (Clifford circuits only; use
/// near_clifford::act_on_near_clifford for Clifford+Rz circuits).
void apply_op(const Operation& op, CHState& state, Rng& rng);

/// BGLS `compute_probability` for CH states.
[[nodiscard]] double compute_probability(const CHState& state, Bitstring b);

}  // namespace bgls

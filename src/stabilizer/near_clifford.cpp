#include "stabilizer/near_clifford.h"

#include <cmath>
#include <numbers>

#include "util/error.h"

namespace bgls {
namespace {

using std::numbers::pi;

constexpr double kAngleTolerance = 1e-12;

/// Extracts the Rz-equivalent rotation angle and the global phase factor
/// pulled out in front: gate = phase · Rz(θ).
struct RzView {
  double theta;
  Complex global_phase;
};

bool rz_view(const Gate& gate, RzView* out) {
  const Complex i{0.0, 1.0};
  switch (gate.kind()) {
    case GateKind::kRz:
      *out = {gate.parameter().value(), Complex{1.0, 0.0}};
      return true;
    case GateKind::kPhase: {
      // diag(1, e^{iθ}) = e^{iθ/2} Rz(θ).
      const double theta = gate.parameter().value();
      *out = {theta, std::exp(i * (theta / 2.0))};
      return true;
    }
    case GateKind::kT:
      *out = {pi / 4.0, std::exp(i * (pi / 8.0))};
      return true;
    case GateKind::kTdg:
      *out = {-pi / 4.0, std::exp(-i * (pi / 8.0))};
      return true;
    default:
      return false;
  }
}

/// If θ is a Clifford angle (multiple of π/2), applies the exact gate
/// with its global phase and returns true.
bool apply_clifford_angle(CHState& state, int q, double theta) {
  const Complex i{0.0, 1.0};
  // Reduce θ/(π/2) to the nearest integer.
  const double steps = theta / (pi / 2.0);
  const double rounded = std::round(steps);
  if (std::abs(steps - rounded) > kAngleTolerance) return false;
  const int k = static_cast<int>(std::llround(rounded)) & 3;  // mod 2π
  // Rz(kπ/2) = e^{-ikπ/4} S^k (check: S^k = diag(1, i^k); e^{-ikπ/4}
  // diag(1, i^k) = diag(e^{-ikπ/4}, e^{ikπ/4}) ✓).
  state.scale_omega(std::exp(-i * (rounded * pi / 4.0)));
  switch (k) {
    case 0: break;
    case 1: state.apply_s(q); break;
    case 2: state.apply_z(q); break;
    default: state.apply_sdg(q); break;
  }
  return true;
}

}  // namespace

bool has_near_clifford_support(const Operation& op) {
  if (op.gate().is_clifford()) return true;
  RzView view{};
  return !op.gate().is_parameterized() && rz_view(op.gate(), &view);
}

void act_on_near_clifford(const Operation& op, CHState& state, Rng& rng,
                          NearCliffordStats* stats) {
  const Gate& gate = op.gate();
  if (gate.is_clifford()) {
    state.apply(op);
    return;
  }
  RzView view{};
  BGLS_REQUIRE(!gate.is_parameterized(), "resolve parameters before sampling");
  if (!rz_view(gate, &view)) {
    detail::throw_error<UnsupportedOperationError>(
        "act_on_near_clifford supports Clifford gates and the Rz family; "
        "got '",
        gate.name(), "'");
  }
  const int q = op.qubits()[0];
  state.scale_omega(view.global_phase);
  if (apply_clifford_angle(state, q, view.theta)) return;

  // Sum-over-Cliffords branch: R(θ) = c_I·I + c_S·S.
  const double half = view.theta / 2.0;
  const Complex c_identity{std::cos(half) - std::sin(half), 0.0};
  const Complex c_s =
      Complex{1.0, -1.0} * std::sin(half);  // √2 e^{-iπ/4} sin(θ/2)
  const double w_identity = std::abs(c_identity);
  const double w_s = std::abs(c_s);
  const double total = w_identity + w_s;
  if (stats != nullptr) ++stats->rotations_decomposed;
  if (rng.uniform() * total < w_identity) {
    // Identity branch: reweight ω by c_I / p_I (importance weighting).
    state.scale_omega(c_identity * (total / w_identity));
    if (stats != nullptr) ++stats->identity_branches;
  } else {
    state.scale_omega(c_s * (total / w_s));
    state.apply_s(q);
    if (stats != nullptr) ++stats->s_branches;
  }
}

}  // namespace bgls

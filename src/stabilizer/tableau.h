/// \file tableau.h
/// Aaronson–Gottesman stabilizer tableau (the CHP simulator of
/// "Improved simulation of stabilizer circuits", PRA 70, 052328
/// (2004)) — the representation the paper's Sec. 4.1.2 describes the CH
/// form as extending.
///
/// The state is tracked through 2n Pauli generators (n destabilizers,
/// n stabilizers) stored as bit-packed X/Z components plus a sign bit.
/// Unlike the CH form it carries no global phase and no amplitude
/// structure: bitstring probabilities are recovered by simulating a
/// sequential computational-basis measurement on a copy, which costs
/// O(n³) — versus the CH form's O(n²) amplitude — and that gap is
/// precisely why the CH form is the right substrate for gate-by-gate
/// sampling (ablated in bench/micro_states).

#pragma once

#include <cstdint>
#include <vector>

#include "circuit/circuit.h"
#include "util/bits.h"
#include "util/rng.h"

namespace bgls {

/// CHP-style stabilizer tableau on n ≤ 63 qubits.
class TableauState {
 public:
  explicit TableauState(int num_qubits, Bitstring initial = 0);

  [[nodiscard]] int num_qubits() const { return n_; }

  /// Applies a Clifford operation (same gate set as CHState::apply).
  void apply(const Operation& op);

  // --- Individual gate updates ------------------------------------------
  void apply_x(int q);
  void apply_y(int q);
  void apply_z(int q);
  void apply_h(int q);
  void apply_s(int q);
  void apply_sdg(int q);
  void apply_sqrt_x(int q);
  void apply_cx(int control, int target);
  void apply_cz(int a, int b);
  void apply_swap(int a, int b);

  /// True when a Z measurement of qubit q is deterministic; outcome in
  /// *outcome when non-null.
  [[nodiscard]] bool is_deterministic_z(int q, int* outcome = nullptr) const;

  /// Samples and collapses a Z measurement of qubit q.
  int measure_z(int q, Rng& rng);

  /// Projects qubit q onto `outcome`; returns its probability (1.0 or
  /// 0.5). Throws on probability 0.
  double project_z(int q, int outcome);

  /// |⟨b|ψ⟩|² by sequentially projecting a copy — O(n³); the BGLS
  /// compute_probability ingredient for this representation.
  [[nodiscard]] double probability(Bitstring b) const;

  /// Samples a full bitstring by sequential measurement of a copy.
  [[nodiscard]] Bitstring sample(Rng& rng) const;

 private:
  /// Row multiply: generator h ← generator h · generator i, with the
  /// standard mod-4 phase bookkeeping (the CHP `rowsum`).
  void rowsum(int h, int i);

  [[nodiscard]] bool x_bit(int row, int q) const {
    return (x_[static_cast<std::size_t>(row)] >> q) & 1u;
  }
  [[nodiscard]] bool z_bit(int row, int q) const {
    return (z_[static_cast<std::size_t>(row)] >> q) & 1u;
  }

  int n_ = 0;
  // Rows 0..n-1: destabilizers; rows n..2n-1: stabilizers; row 2n:
  // scratch for deterministic-outcome evaluation.
  std::vector<std::uint64_t> x_;
  std::vector<std::uint64_t> z_;
  std::vector<std::uint8_t> r_;  // sign bit per row
};

/// BGLS `apply_op` for tableaux (Clifford circuits only).
void apply_op(const Operation& op, TableauState& state, Rng& rng);

/// BGLS `compute_probability` for tableaux (O(n³) per bitstring).
[[nodiscard]] double compute_probability(const TableauState& state,
                                         Bitstring b);

}  // namespace bgls

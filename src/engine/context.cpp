#include "engine/context.h"

#include <map>
#include <mutex>

#include "util/error.h"

namespace bgls {

namespace {

int checked_worker_count(int num_threads) {
  BGLS_REQUIRE(num_threads >= 1,
               "engine context needs a resolved thread count >= 1, got ",
               num_threads);
  return num_threads > 1 ? num_threads - 1 : 1;
}

}  // namespace

EngineContext::EngineContext(int num_threads)
    : num_threads_(num_threads), pool_(checked_worker_count(num_threads)) {}

std::shared_ptr<EngineContext> EngineContext::shared(int num_threads) {
  // The cache holds strong references on purpose: a shared pool must
  // never be destroyed by one of its own workers (the last reference to
  // a context can be dropped inside an async job, which runs *on* the
  // pool — tearing the pool down there would make a worker join
  // itself). Keeping cached pools alive for the process lifetime makes
  // that impossible and is exactly the persistent-executor semantics
  // the cache exists for; idle workers just park on a condition
  // variable. The map itself is deliberately leaked so no pool is ever
  // torn down during static destruction, where late-exiting threads
  // could still touch it.
  static std::mutex mutex;
  static std::map<int, std::shared_ptr<EngineContext>>* cache =
      new std::map<int, std::shared_ptr<EngineContext>>();
  const std::lock_guard<std::mutex> lock(mutex);
  std::shared_ptr<EngineContext>& slot = (*cache)[num_threads];
  if (!slot) slot = std::make_shared<EngineContext>(num_threads);
  return slot;
}

}  // namespace bgls

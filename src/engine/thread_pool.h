/// \file thread_pool.h
/// Fixed-size thread pool backing the parallel batch-sampling engine.
///
/// Deliberately work-stealing-free: the engine assigns work as indexed
/// shards whose outputs land in preallocated slots, so all the pool has
/// to provide is (a) a task queue with `submit` + `wait_idle` and (b) a
/// blocking `parallel_for` that fans an index range out over the
/// workers. Determinism never depends on scheduling — shard i always
/// computes the same value no matter which worker runs it or in what
/// order — so the simplest possible pool is the right one.
///
/// The pool is long-lived and shared (engine/context.h caches one per
/// thread count process-wide), which the engine's async API leans on:
///  - submit() is safe from any number of threads concurrently;
///  - parallel_for() may be called from *inside* a pool worker (an
///    async job fanning its shards out on its own pool): the caller
///    always drains its own batch to completion, and helper tasks that
///    arrive late exit immediately, so nested use cannot deadlock —
///    every claimed index is actively being executed by some thread;
///  - concurrent parallel_for() calls each own an independent batch and
///    interleave safely on the shared queue.
///
/// Exceptions thrown by tasks are captured and rethrown on the waiting
/// thread (first one wins; the rest of the batch still runs to
/// completion so the pool is reusable afterwards).

#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace bgls {

/// Fixed-size pool of worker threads processing a FIFO task queue.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>= 1; use resolve_num_threads to map
  /// an options value onto a concrete count).
  explicit ThreadPool(int num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains nothing: pending tasks are abandoned, running tasks are
  /// joined. Call wait_idle() first when completion matters.
  ~ThreadPool();

  /// Number of worker threads.
  [[nodiscard]] int size() const { return static_cast<int>(workers_.size()); }

  /// std::thread::hardware_concurrency with a floor of 1.
  [[nodiscard]] static int hardware_threads();

  /// Maps an options-style thread count onto a concrete one: 0 (auto)
  /// becomes hardware_threads(), anything else is clamped to >= 1.
  [[nodiscard]] static int resolve_num_threads(int requested);

  /// Enqueues a task for asynchronous execution. Thread-safe: any
  /// number of threads may submit concurrently.
  void submit(std::function<void()> task);

  /// Blocks until the queue is empty and every running task finished.
  /// Rethrows the first exception any task threw since the last wait.
  void wait_idle();

  /// Runs body(0) ... body(count - 1) across the workers *and the
  /// calling thread* (total concurrency size() + 1) and blocks until
  /// all complete. Rethrows the first exception thrown by any index
  /// (the remaining indices still run). Indices are claimed
  /// dynamically, so callers must not depend on execution order. Safe
  /// to call concurrently from several threads and from inside a pool
  /// worker (see file comment).
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& body);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::size_t in_flight_ = 0;
  std::exception_ptr first_error_;
  bool stopping_ = false;
};

}  // namespace bgls

#include "engine/engine.h"

#include <algorithm>

#include "obs/metrics.h"
#include "util/error.h"

namespace bgls::engine_detail {

namespace {

struct EngineMetrics {
  obs::Counter runs;
  obs::Counter shards;
  obs::Histogram shard_seconds;

  EngineMetrics() {
    auto& registry = obs::MetricsRegistry::global();
    runs = registry.counter("bgls_engine_runs_total",
                            "Batch-engine runs (run/sample/run_batch)");
    shards = registry.counter("bgls_engine_shards_total",
                              "Batch-engine shards executed");
    shard_seconds = registry.histogram(
        "bgls_engine_shard_seconds",
        "Per-shard wall time (trajectory shards: whole shard; batched "
        "path: the shard's accumulated dictionary-resample time)");
  }

  static EngineMetrics& instance() {
    static EngineMetrics metrics;
    return metrics;
  }
};

}  // namespace

void count_engine_run() noexcept { EngineMetrics::instance().runs.add(); }

void observe_shard(double seconds) noexcept {
  EngineMetrics& metrics = EngineMetrics::instance();
  metrics.shards.add();
  metrics.shard_seconds.observe(seconds);
}

std::vector<Rng> make_streams(const Rng& base, std::size_t count) {
  std::vector<Rng> streams;
  streams.reserve(count);
  Rng walker = base;
  for (std::size_t i = 0; i < count; ++i) {
    walker.jump();
    streams.push_back(walker);
  }
  return streams;
}

std::vector<std::uint64_t> even_split(std::uint64_t total,
                                      std::size_t shards) {
  BGLS_REQUIRE(shards > 0, "cannot split across zero shards");
  const std::uint64_t n = static_cast<std::uint64_t>(shards);
  const std::uint64_t base = total / n;
  const std::uint64_t extra = total % n;
  std::vector<std::uint64_t> counts(shards, base);
  for (std::uint64_t i = 0; i < extra; ++i) ++counts[i];
  return counts;
}

std::vector<std::uint64_t> multinomial_split(std::uint64_t total,
                                             std::size_t shards, Rng& plan) {
  BGLS_REQUIRE(shards > 0, "cannot split across zero shards");
  const std::vector<double> weights(shards, 1.0);
  return plan.multinomial(total, weights);
}

RunStats merge_shard_stats(std::span<const RunStats> shards,
                           int threads_used) {
  RunStats merged;
  merged.threads_used = static_cast<std::size_t>(threads_used);
  merged.per_stream.reserve(shards.size());
  for (const RunStats& shard : shards) {
    merged.state_applications += shard.state_applications;
    merged.probability_evaluations += shard.probability_evaluations;
    merged.max_dictionary_size =
        std::max(merged.max_dictionary_size, shard.max_dictionary_size);
    merged.trajectories += shard.trajectories;
    merged.used_sample_parallelization |= shard.used_sample_parallelization;
    merged.diagonal_updates_skipped += shard.diagonal_updates_skipped;
    merged.evolve_ms += shard.evolve_ms;
    merged.per_stream.push_back(StreamStats{shard.trajectories,
                                            shard.state_applications,
                                            shard.probability_evaluations});
  }
  return merged;
}

Counts merge_counts(std::span<const Counts> shards) {
  Counts merged;
  for (const Counts& shard : shards) {
    for (const auto& [bits, count] : shard) merged[bits] += count;
  }
  return merged;
}

void accumulate_stats(RunStats& total, const RunStats& chunk) {
  total.state_applications += chunk.state_applications;
  total.probability_evaluations += chunk.probability_evaluations;
  total.max_dictionary_size =
      std::max(total.max_dictionary_size, chunk.max_dictionary_size);
  total.trajectories += chunk.trajectories;
  total.used_sample_parallelization |= chunk.used_sample_parallelization;
  total.diagonal_updates_skipped += chunk.diagonal_updates_skipped;
  total.evolve_ms += chunk.evolve_ms;
}

void accumulate_result_histograms(std::map<std::string, Counts>& cumulative,
                                  const Result& chunk) {
  for (const std::string& key : chunk.keys()) {
    Counts& target = cumulative[key];
    for (const Bitstring value : chunk.values(key)) ++target[value];
  }
}

}  // namespace bgls::engine_detail

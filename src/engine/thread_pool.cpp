#include "engine/thread_pool.h"

#include <atomic>
#include <memory>
#include <utility>

#ifdef BGLS_HAVE_OPENMP
#include <omp.h>
#endif

#include "obs/metrics.h"
#include "util/error.h"

namespace bgls {

namespace {

/// Pool occupancy series (process-wide across all pools: the engine
/// context shares one long-lived pool, so a per-pool split would just
/// duplicate it). Tasks are pool-level units — submitted closures and
/// parallel_for drain passes — not per-amplitude work.
struct PoolMetrics {
  obs::Gauge active_workers;
  obs::Counter tasks;

  PoolMetrics() {
    auto& registry = obs::MetricsRegistry::global();
    active_workers =
        registry.gauge("bgls_pool_active_workers",
                       "Thread-pool workers currently running a task");
    tasks = registry.counter("bgls_pool_tasks_total",
                             "Thread-pool tasks executed");
  }

  static PoolMetrics& instance() {
    static PoolMetrics metrics;
    return metrics;
  }
};

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  BGLS_REQUIRE(num_threads >= 1, "thread pool needs at least one worker, got ",
               num_threads);
  // Register the pool series at construction, not first task: small
  // workloads drain entirely on the caller (parallel_for's inline
  // thresholds), and a scrape should still see the series at 0.
  PoolMetrics::instance();
  workers_.reserve(static_cast<std::size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
    queue_.clear();
  }
  work_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

int ThreadPool::hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

int ThreadPool::resolve_num_threads(int requested) {
  // 0 is this library's "auto"; a negative count is most likely a
  // different convention (e.g. OpenMP-style -1) — surface it rather
  // than silently picking something.
  BGLS_REQUIRE(requested >= 0,
               "num_threads must be >= 0 (0 = auto-detect), got ", requested);
  return requested == 0 ? hardware_threads() : requested;
}

void ThreadPool::submit(std::function<void()> task) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    BGLS_REQUIRE(!stopping_, "cannot submit to a stopping thread pool");
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
  if (first_error_) {
    const std::exception_ptr error = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  if (count == 1) {
    body(0);
    return;
  }

  // Shared batch state: workers claim indices from an atomic counter so
  // uneven shard runtimes balance without any work stealing.
  struct Batch {
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::size_t count = 0;
    const std::function<void(std::size_t)>* body = nullptr;
    std::mutex mutex;
    std::condition_variable finished;
    std::exception_ptr error;
  };
  auto batch = std::make_shared<Batch>();
  batch->count = count;
  batch->body = &body;  // parallel_for blocks until done, so this is safe

  const auto drain = [](const std::shared_ptr<Batch>& b) {
    for (;;) {
      const std::size_t i = b->next.fetch_add(1);
      if (i >= b->count) break;
      try {
        (*b->body)(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(b->mutex);
        if (!b->error) b->error = std::current_exception();
      }
      if (b->done.fetch_add(1) + 1 == b->count) {
        const std::lock_guard<std::mutex> lock(b->mutex);
        b->finished.notify_all();
      }
    }
  };

  const std::size_t helpers =
      std::min<std::size_t>(static_cast<std::size_t>(size()), count);
  for (std::size_t t = 0; t < helpers; ++t) {
    submit([batch, drain] { drain(batch); });
  }
  // The caller participates too — under the same no-nested-OpenMP rule
  // as the workers, or its shards would fork full-width teams while
  // every worker is busy.
#ifdef BGLS_HAVE_OPENMP
  const int caller_omp_threads = omp_get_max_threads();
  omp_set_num_threads(1);
#endif
  drain(batch);
#ifdef BGLS_HAVE_OPENMP
  omp_set_num_threads(caller_omp_threads);
#endif

  std::unique_lock<std::mutex> lock(batch->mutex);
  batch->finished.wait(lock,
                       [&] { return batch->done.load() == batch->count; });
  if (batch->error) std::rethrow_exception(batch->error);
}

void ThreadPool::worker_loop() {
#ifdef BGLS_HAVE_OPENMP
  // The pool already owns the parallelism: nested OpenMP teams inside
  // the statevector kernels would oversubscribe the machine.
  omp_set_num_threads(1);
#endif
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock,
                           [this] { return stopping_ || !queue_.empty(); });
      if (stopping_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    PoolMetrics& metrics = PoolMetrics::instance();
    metrics.tasks.add();
    metrics.active_workers.add(1);
    try {
      task();
    } catch (...) {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    metrics.active_workers.sub(1);
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace bgls

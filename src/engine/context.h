/// \file context.h
/// Long-lived execution context shared by batch-engine runs.
///
/// The v1 engine constructed a fresh ThreadPool inside every delegated
/// Simulator::run call — fine for one big run, wasteful in a tight loop
/// of small ones, where thread-spawn latency dominates the sampling
/// itself. EngineContext wraps the pool behind a shared_ptr with a
/// process-wide per-thread-count cache (the qsim-style persistent
/// executor): every Simulator — and every copy of it, since copying a
/// Simulator copies the shared_ptr — reuses one pool for as long as
/// anyone holds a reference.
///
/// The context is also what asynchronous jobs (BatchEngine::submit /
/// run_async) capture: a job keeps its own shared_ptr, so the pool
/// outlives the engine that submitted it.

#pragma once

#include <memory>

#include "engine/thread_pool.h"

namespace bgls {

/// Reusable engine execution context: a resolved thread count plus the
/// long-lived pool backing it.
class EngineContext {
 public:
  /// Builds a private (uncached) context for `num_threads`-way engine
  /// runs (>= 1). The pool holds num_threads - 1 workers with a floor
  /// of one: the synchronous path adds the calling thread to reach
  /// num_threads-way concurrency, while asynchronous jobs run entirely
  /// on the workers.
  explicit EngineContext(int num_threads);

  EngineContext(const EngineContext&) = delete;
  EngineContext& operator=(const EngineContext&) = delete;

  /// Concurrency this context was built for (>= 1; already resolved,
  /// never the 0 = auto sentinel).
  [[nodiscard]] int num_threads() const { return num_threads_; }

  /// The long-lived worker pool.
  [[nodiscard]] ThreadPool& pool() { return pool_; }

  /// Process-wide shared context for a resolved thread count: every
  /// caller asking for the same count gets the same pool, and cached
  /// pools stay alive for the process lifetime (idle workers park on a
  /// condition variable). Persistence is load-bearing: async jobs run
  /// *on* the pool and may hold its last reference, and a pool must
  /// never be destroyed by one of its own workers. Thread-safe.
  [[nodiscard]] static std::shared_ptr<EngineContext> shared(int num_threads);

 private:
  int num_threads_;
  ThreadPool pool_;
};

}  // namespace bgls

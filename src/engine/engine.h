/// \file engine.h
/// Parallel batch-sampling engine v2 (the scaling layer above the
/// gate-by-gate Simulator).
///
/// The paper's dictionary batching (Sec. 3.2.3) parallelizes *samples*
/// inside one thread; this engine adds real threads for the workloads
/// that batching cannot absorb, the same direction qsim takes with
/// multi-threaded trajectory simulation:
///  - per-trajectory runs (channels, mid-circuit measurement, classical
///    feed-forward) shard the repetition count across RNG streams, one
///    cloned state + one stream per shard;
///  - the dictionary-batched unitary path multinomially splits the
///    repetition count across streams and merges the per-shard
///    histograms (a sum of independent multinomials with the same
///    outcome distribution is the full multinomial, so the merged
///    histogram is statistically identical to a single-shard run). v2
///    amortizes the state evolution: one snapshot is evolved per gate
///    and shared read-only across every repetition shard, so the
///    per-gate state cost is paid once instead of once per shard;
///  - run_batch() spreads many circuits (QAOA parameter sweeps,
///    randomized benchmarking) across the pool with two-level
///    (circuit × repetition-shard) sharding, so a few large trajectory
///    circuits still saturate the pool;
///  - submit()/run_async() schedule a whole run as an asynchronous pool
///    job and return a std::future, so callers overlap circuit
///    construction with sampling. Exceptions thrown inside a job — or
///    inside any of its shards — propagate through the future.
///
/// The pool itself is long-lived: engines share a process-wide
/// EngineContext (context.h) cached per thread count, so tight loops of
/// small runs stop paying thread-spawn latency per call
/// (SimulatorOptions::reuse_thread_pool opts back into the v1
/// pool-per-run behavior).
///
/// Determinism is a hard guarantee: the shard decomposition depends only
/// on (repetitions, SimulatorOptions::num_rng_streams) and — on the
/// batched path, whose multinomial split draws from a seed-derived
/// planning stream — the caller's seed; every shard owns a jump-derived
/// Rng stream fixed by that same seed. The thread count, sync-vs-async
/// submission, pool reuse, and run_batch's sharding level never enter,
/// so a fixed seed yields bit-identical merged histograms for *any* of
/// those configurations. Threads only decide which core executes a
/// shard, never what the shard computes.

#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "circuit/circuit.h"
#include "core/checkpoint.h"
#include "core/progress.h"
#include "core/result.h"
#include "core/simulator.h"
#include "engine/context.h"
#include "engine/thread_pool.h"
#include "obs/trace.h"
#include "util/cancellation.h"
#include "util/rng.h"

namespace bgls {

namespace engine_detail {

/// Derives `count` jump-separated Rng streams from `base` (stream i is
/// `base` advanced by (i + 1) jumps). Pure in `base`, O(count) jumps.
[[nodiscard]] std::vector<Rng> make_streams(const Rng& base,
                                            std::size_t count);

/// Deterministic near-equal split of `total` into `shards` counts
/// (first `total % shards` shards get one extra).
[[nodiscard]] std::vector<std::uint64_t> even_split(std::uint64_t total,
                                                    std::size_t shards);

/// Multinomial split of `total` into `shards` uniform-weight counts
/// drawn from `plan` — the Sec. 3.2.3-faithful way to divide a batched
/// repetition count so each shard's histogram is an honest multinomial
/// sample of its own size.
[[nodiscard]] std::vector<std::uint64_t> multinomial_split(
    std::uint64_t total, std::size_t shards, Rng& plan);

/// Aggregates per-shard counters into one RunStats (totals summed, peak
/// dictionary maxed, per_stream filled in shard order).
[[nodiscard]] RunStats merge_shard_stats(std::span<const RunStats> shards,
                                         int threads_used);

/// Sums shard histograms into one.
[[nodiscard]] Counts merge_counts(std::span<const Counts> shards);

/// Accumulates one chunk's counters into a shard's running total (the
/// progress-chunked shard loop runs one shard as several sequential
/// Simulator::run calls): counters sum, the dictionary peak maxes, the
/// parallelization flag ORs. threads_used/per_stream are left for
/// merge_shard_stats.
void accumulate_stats(RunStats& total, const RunStats& chunk);

/// Adds `chunk`'s histograms into a cumulative per-key map.
void accumulate_result_histograms(std::map<std::string, Counts>& cumulative,
                                  const Result& chunk);

/// Telemetry hooks (engine.cpp) feeding the process-wide engine series
/// — bgls_engine_runs_total / bgls_engine_shards_total /
/// bgls_engine_shard_seconds. Inert when telemetry is compiled out.
void count_engine_run() noexcept;
void observe_shard(double seconds) noexcept;

/// RAII shard timer: counts the shard and observes its wall time into
/// bgls_engine_shard_seconds on destruction. Shards are coarse units
/// (one per RNG stream), so the clock-read pair is lost in the noise.
class [[maybe_unused]] ShardTimer {
 public:
#if BGLS_TELEMETRY
  ShardTimer() : start_(std::chrono::steady_clock::now()) {}
  ~ShardTimer() {
    observe_shard(std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start_)
                      .count());
  }
#else
  ShardTimer() = default;
#endif
  ShardTimer(const ShardTimer&) = delete;
  ShardTimer& operator=(const ShardTimer&) = delete;

 private:
#if BGLS_TELEMETRY
  std::chrono::steady_clock::time_point start_;
#endif
};

}  // namespace engine_detail

/// Multi-threaded driver for a Simulator<State>: shards repetitions (or
/// whole circuits) across a long-lived thread pool with one RNG stream
/// per shard, and merges the results deterministically in shard order.
///
/// Thread count comes from the prototype simulator's
/// SimulatorOptions::num_threads (0 = hardware concurrency) — or, when
/// an EngineContext is shared in, from the context; the number of RNG
/// streams — and therefore the sampled values — comes from
/// SimulatorOptions::num_rng_streams and is independent of the thread
/// count.
///
/// Concurrency contract: submit()/run_async() are safe to call from any
/// number of threads concurrently; the synchronous run()/sample()/
/// run_batch() mutate last_run_stats() and must not be called
/// concurrently on one engine (each async job runs through its own
/// internal engine, so in-flight jobs never contend).
template <typename State>
class BatchEngine {
 public:
  /// Outcome of an asynchronously submitted job: the merged Result plus
  /// the job's own RunStats (async jobs never touch last_run_stats(),
  /// which would race between in-flight jobs).
  struct JobOutcome {
    Result result;
    RunStats stats;
  };

  /// Wraps a copy of `prototype`; the copy is forced to num_threads = 1
  /// so per-shard runs never re-enter the engine. The pool is acquired
  /// lazily on first need: a process-wide shared one when the prototype
  /// options say reuse_thread_pool, a private one otherwise.
  explicit BatchEngine(Simulator<State> prototype)
      : BatchEngine(std::move(prototype), nullptr) {}

  /// Same, but shares a long-lived `context` (its thread count wins
  /// over the prototype's options). Used by Simulator's cached-context
  /// delegation and by async jobs.
  BatchEngine(Simulator<State> prototype,
              std::shared_ptr<EngineContext> context)
      : prototype_(std::move(prototype)), context_(std::move(context)) {
    SimulatorOptions options = prototype_.options();
    num_threads_ = context_
                       ? context_->num_threads()
                       : ThreadPool::resolve_num_threads(options.num_threads);
    num_streams_ = options.num_rng_streams < 1 ? 1 : options.num_rng_streams;
    reuse_pool_ = options.reuse_thread_pool;
    two_level_ = options.two_level_batch_sharding;
    token_ = options.cancel_token;
    // The engine owns progress emission (canonical shard-ordered
    // updates via ProgressCollector); per-shard simulators must not
    // also stream. The cancellation token stays in the shard options so
    // deep trajectories abort at gate granularity too.
    progress_ = options.progress;
    options.progress = {};
    options.num_threads = 1;
    // The engine also owns trace recording (shard/evolve spans); the
    // per-shard simulators run untraced.
    trace_ = options.trace;
    options.trace = nullptr;
    // Checkpoint capture and resume are engine-level too: the engine
    // snapshots whole-run state across shards (core/checkpoint.h), so
    // per-shard simulators must neither emit nor resume on their own.
    checkpoint_ = options.checkpoint;
    options.checkpoint = {};
    resume_ = options.resume;
    options.resume = nullptr;
    prototype_.set_options(options);
  }

  /// Effective worker count (after resolving 0 = auto).
  [[nodiscard]] int num_threads() const { return num_threads_; }

  /// Number of deterministic RNG shards per run.
  [[nodiscard]] std::uint64_t num_streams() const { return num_streams_; }

  /// The engine context once acquired (null until a run needed the
  /// pool). Exposed so tests can assert pool sharing.
  [[nodiscard]] std::shared_ptr<EngineContext> context() const {
    const std::lock_guard<std::mutex> lock(context_mutex_);
    return context_;
  }

  /// Parallel equivalent of Simulator::run: same contract, measurement
  /// records merged in shard order.
  Result run(const Circuit& circuit, std::uint64_t repetitions, Rng& rng) {
    JobOutcome outcome = run_job(circuit, repetitions, rng);
    stats_ = std::move(outcome.stats);
    return std::move(outcome.result);
  }

  /// Convenience overload with a seed instead of an engine.
  Result run(const Circuit& circuit, std::uint64_t repetitions,
             std::uint64_t seed) {
    Rng rng(seed);
    return run(circuit, repetitions, rng);
  }

  /// Parallel equivalent of Simulator::sample: final-bitstring counts
  /// over all qubits, merged by summation.
  Counts sample(const Circuit& circuit, std::uint64_t repetitions, Rng& rng) {
    // Validated here, not in the shards: zero-repetition shards never
    // run, which must not let an unrunnable circuit slip through
    // silently.
    prototype_.check_runnable(circuit, /*require_measurements=*/false);
    token_.throw_if_stopped();
    engine_detail::count_engine_run();
    const bool batched = prototype_.can_parallelize_samples(circuit);
    if (batched && prototype_.hooks_are_native()) {
      BatchedPlan plan = derive_batched_plan(repetitions, rng);
      BatchedOutcome outcome = sample_batched_shared(circuit, plan);
      stats_ = std::move(outcome.stats);
      return engine_detail::merge_counts(outcome.shard_counts);
    }
    // Custom hooks never share a snapshot (no thread-safety guarantee
    // against one state probed from many shards): they keep the v1
    // per-shard private evolution, still fanned out across the pool.
    auto [shard_counts, stats] = run_sharded<Counts>(
        circuit, repetitions, rng, /*multinomial=*/batched,
        [](Simulator<State>& sim, const Circuit& c, std::uint64_t reps,
           Rng& r) { return sim.sample(c, reps, r); });
    stats_ = std::move(stats);
    return engine_detail::merge_counts(shard_counts);
  }

  /// Schedules run() as an asynchronous job on the shared pool and
  /// returns a future over the merged Result plus the job's RunStats.
  /// Bit-identical to run(circuit, repetitions, seed). Thread-safe:
  /// any number of threads may submit concurrently; each job samples
  /// through its own internal engine sharing this engine's pool, so
  /// jobs never contend on engine state. Exceptions thrown inside the
  /// job (including inside any shard) surface from future::get().
  /// Concurrency note: the pool holds num_threads - 1 workers (the
  /// synchronous paths add the calling thread) and the job occupies
  /// one, so a lone async job fans its shards out num_threads - 1 wide
  /// — at num_threads == 2 it runs serially. Results are unaffected;
  /// submit several jobs (or raise num_threads by one) to saturate.
  [[nodiscard]] std::future<JobOutcome> submit(Circuit circuit,
                                               std::uint64_t repetitions,
                                               std::uint64_t seed) {
    return dispatch_async<JobOutcome>(
        std::move(circuit), repetitions, seed,
        [](BatchEngine<State>& worker, const Circuit& c, std::uint64_t reps,
           Rng& rng) {
          JobOutcome outcome;
          outcome.result = worker.run(c, reps, rng);
          outcome.stats = worker.last_run_stats();
          return outcome;
        });
  }

  /// submit() without the stats: a plain future over the Result.
  [[nodiscard]] std::future<Result> run_async(Circuit circuit,
                                              std::uint64_t repetitions,
                                              std::uint64_t seed) {
    return dispatch_async<Result>(
        std::move(circuit), repetitions, seed,
        [](BatchEngine<State>& worker, const Circuit& c, std::uint64_t reps,
           Rng& rng) { return worker.run(c, reps, rng); });
  }

  /// Many-circuit batch API (QAOA parameter sweeps, randomized
  /// benchmarking): runs every circuit for `repetitions` and returns the
  /// per-circuit results in input order.
  ///
  /// v2 shards two levels deep: every circuit owns a root stream, and a
  /// trajectory circuit's repetitions are further sharded across
  /// num_rng_streams jump-derived streams (dictionary-batched circuits
  /// keep one shard — their single evolution already amortizes the
  /// repetitions, so splitting would only multiply state-evolution
  /// cost). With two_level_batch_sharding each (circuit, shard) pair is
  /// its own pool job, so a handful of large trajectory circuits still
  /// saturates the pool; without it each circuit is one job running its
  /// shards serially. The decomposition is identical in both modes and
  /// independent of the thread count, so the outputs are bit-identical
  /// across threads and sharding levels.
  std::vector<Result> run_batch(std::span<const Circuit> circuits,
                                std::uint64_t repetitions, Rng& rng) {
    struct CircuitPlan {
      std::vector<Rng> streams;
      std::vector<std::uint64_t> shard_reps;
      std::size_t first_slot = 0;
    };
    engine_detail::count_engine_run();
    Rng root = rng.split();
    std::vector<CircuitPlan> plans(circuits.size());
    std::size_t total_shards = 0;
    const std::uint64_t max_shards = repetitions < 1 ? 1 : repetitions;
    const auto traj_shards = static_cast<std::size_t>(
        num_streams_ < max_shards ? num_streams_ : max_shards);
    for (std::size_t i = 0; i < circuits.size(); ++i) {
      CircuitPlan& plan = plans[i];
      // Validate up front: zero-repetition shards never construct a
      // per-shard Simulator, so without this an unrunnable circuit
      // would silently yield an empty Result instead of throwing.
      prototype_.check_runnable(circuits[i], /*require_measurements=*/true);
      // Stateful split: each circuit's root leaves the jump chain, so
      // shard streams of different circuits never coincide.
      const Rng circuit_root = root.split();
      const std::size_t shards =
          prototype_.can_parallelize_samples(circuits[i]) ? 1 : traj_shards;
      plan.streams = engine_detail::make_streams(circuit_root, shards);
      plan.shard_reps =
          shards == 1 ? std::vector<std::uint64_t>{repetitions}
                      : engine_detail::even_split(repetitions, shards);
      plan.first_slot = total_shards;
      total_shards += shards;
    }

    std::vector<Result> shard_results(total_shards);
    std::vector<RunStats> shard_stats(total_shards);
    const auto run_shard = [&](std::size_t i, std::size_t s) {
      const CircuitPlan& plan = plans[i];
      if (plan.shard_reps[s] == 0) return;
      token_.throw_if_stopped();
      const std::size_t slot = plan.first_slot + s;
      const engine_detail::ShardTimer timer;
      // kRoot: a shard runs inline on the caller's thread at 1 thread
      // but on a pool thread otherwise; pinning its parent to the
      // trace root keeps the span tree byte-stable across thread
      // counts.
      obs::TraceSpan span(trace_, "shard", slot, obs::TraceSpan::Nest::kRoot);
      Simulator<State> local = prototype_;
      Rng stream = plan.streams[s];
      shard_results[slot] = local.run(circuits[i], plan.shard_reps[s], stream);
      shard_stats[slot] = local.last_run_stats();
    };
    if (two_level_) {
      std::vector<std::pair<std::size_t, std::size_t>> jobs;
      jobs.reserve(total_shards);
      for (std::size_t i = 0; i < circuits.size(); ++i) {
        for (std::size_t s = 0; s < plans[i].streams.size(); ++s) {
          jobs.emplace_back(i, s);
        }
      }
      execute(jobs.size(), [&](std::size_t j) {
        run_shard(jobs[j].first, jobs[j].second);
      });
    } else {
      execute(circuits.size(), [&](std::size_t i) {
        for (std::size_t s = 0; s < plans[i].streams.size(); ++s) {
          run_shard(i, s);
        }
      });
    }

    std::vector<Result> results(circuits.size());
    for (std::size_t i = 0; i < circuits.size(); ++i) {
      declare_measurement_keys(circuits[i], results[i]);
      for (std::size_t s = 0; s < plans[i].streams.size(); ++s) {
        results[i].append(shard_results[plans[i].first_slot + s]);
      }
    }
    stats_ = engine_detail::merge_shard_stats(shard_stats, num_threads_);
    return results;
  }

  /// Aggregated counters from the most recent synchronous
  /// run()/sample()/run_batch(), including the per-stream shard
  /// counters. Async jobs report through JobOutcome::stats instead.
  [[nodiscard]] const RunStats& last_run_stats() const { return stats_; }

 private:
  /// Per-shard dictionaries plus the run's merged counters — the output
  /// of the snapshot-sharing batched path.
  struct BatchedOutcome {
    std::vector<Counts> shard_counts;
    RunStats stats;
  };

  /// Below this many total dictionary entries a fan-out costs more than
  /// the resampling itself; the shards then run inline on the calling
  /// thread. Scheduling-only: shard i's draws are fixed by its stream
  /// either way, so the threshold never changes results.
  static constexpr std::size_t kInlineResampleThreshold = 64;

  /// run()'s body, shared with async jobs: declares the measurement
  /// keys, shards the repetitions, merges records in shard order.
  JobOutcome run_job(const Circuit& circuit, std::uint64_t repetitions,
                     Rng& rng) {
    // Validated here, not in the shards: zero-repetition shards never
    // run, which must not let an unrunnable circuit slip through
    // silently.
    prototype_.check_runnable(circuit, /*require_measurements=*/true);
    token_.throw_if_stopped();
    engine_detail::count_engine_run();
    JobOutcome outcome;
    // Collected once: all_operations() materializes the flattened list,
    // and the batched merge below revisits the keys per unique
    // bitstring.
    std::vector<std::pair<std::string, std::vector<Qubit>>> keys;
    for (const auto& op : circuit.all_operations()) {
      if (op.gate().is_measurement()) {
        keys.emplace_back(
            op.gate().measurement_key(),
            std::vector<Qubit>{op.qubits().begin(), op.qubits().end()});
        outcome.result.declare_key(keys.back().first, keys.back().second);
      }
    }
    const bool batched = prototype_.can_parallelize_samples(circuit);
    const RunCheckpoint* resume = resume_.get();
    // The shared-snapshot path is shard-atomic, so it serves fresh
    // runs, resumes from the initial (nothing-complete) checkpoint, and
    // rebuilds from the final (everything-complete) one. A *partially*
    // complete kEngineBatched checkpoint (produced by the custom-hook
    // fallback, whose shards finish independently) routes to the
    // fallback below, which can skip completed shards.
    const bool partially_complete =
        resume != nullptr && !resume->complete() &&
        resume->completed_repetitions() > 0;
    if (batched && prototype_.hooks_are_native() && !partially_complete) {
      const std::size_t shards = shard_count(repetitions);
      if (resume != nullptr) {
        validate_resume(*resume, CheckpointMode::kEngineBatched, repetitions,
                        shards);
        if (resume->complete() && repetitions > 0) {
          // Every shard finished before the interruption: rebuild the
          // result and counters from the checkpoint without sampling.
          for (const ShardCheckpoint& shard : resume->shards) {
            restore_result_histograms(outcome.result, shard.histograms);
          }
          apply_checkpoint_stats(outcome.stats, resume->stats);
          outcome.stats.used_sample_parallelization = true;
          outcome.stats.threads_used = static_cast<std::size_t>(num_threads_);
          outcome.stats.per_stream.resize(shards);
          emit_resumed_final_progress(outcome.result, repetitions);
          return outcome;
        }
      }
      BatchedPlan plan = derive_batched_plan(repetitions, rng);
      if (resume != nullptr) {
        // Same request, same seed: the derived plan must reproduce the
        // checkpointed decomposition exactly.
        for (std::size_t i = 0; i < shards; ++i) {
          BGLS_REQUIRE(plan.shard_reps[i] == resume->shards[i].total,
                       "checkpoint shard sizes do not match this request's "
                       "decomposition; resume with the original seed and "
                       "num_rng_streams");
        }
      }
      if (checkpoint_.enabled() && resume == nullptr) {
        // Durable initial checkpoint: the decomposition plus each
        // shard's starting stream, so an interrupted batched run
        // resumes (= deterministically re-runs) from it.
        checkpoint_.sink(batched_plan_checkpoint(plan, repetitions));
      }
      BatchedOutcome shared = sample_batched_shared(circuit, plan);
      for (const Counts& shard : shared.shard_counts) {
        for (const auto& [bits, count] : shard) {
          for (const auto& [key, qubits] : keys) {
            outcome.result.add_records(
                key, Simulator<State>::pack_key_bits(bits, qubits), count);
          }
        }
      }
      outcome.stats = std::move(shared.stats);
      if (checkpoint_.enabled()) {
        RunCheckpoint final_ck = batched_plan_checkpoint(plan, repetitions);
        for (std::size_t i = 0; i < final_ck.shards.size(); ++i) {
          ShardCheckpoint& shard = final_ck.shards[i];
          shard.completed = shard.total;
          for (const auto& [bits, count] : shared.shard_counts[i]) {
            for (const auto& [key, qubits] : keys) {
              shard.histograms[key]
                  [Simulator<State>::pack_key_bits(bits, qubits)] += count;
            }
          }
        }
        final_ck.stats = checkpoint_stats_from(outcome.stats);
        checkpoint_.sink(final_ck);
      }
      if (progress_.enabled() && resume == nullptr) {
        emit_batched_progress(shared.shard_counts, keys, repetitions);
      }
      emit_resumed_final_progress(outcome.result, repetitions);
      return outcome;
    }
    // Custom hooks keep the v1 per-shard private evolution (see
    // sample()); the shard decomposition and streams match the shared
    // path, so for hooks computing the native values the histograms are
    // bit-identical either way.
    auto [shard_results, stats] = run_sharded<Result>(
        circuit, repetitions, rng, /*multinomial=*/batched,
        [](Simulator<State>& sim, const Circuit& c, std::uint64_t reps,
           Rng& r) { return sim.run(c, reps, r); },
        &progress_);
    for (const Result& shard : shard_results) outcome.result.append(shard);
    outcome.stats = std::move(stats);
    emit_resumed_final_progress(outcome.result, repetitions);
    return outcome;
  }

  /// A resumed run suppresses intermediate progress updates (the
  /// pre-interruption prefix already streamed them) but still owes the
  /// final one. No-op on fresh runs.
  void emit_resumed_final_progress(const Result& result,
                                   std::uint64_t repetitions) {
    if (resume_ == nullptr || !progress_.enabled()) return;
    ProgressUpdate update;
    update.completed_repetitions = repetitions;
    update.total_repetitions = repetitions;
    update.final = true;
    update.histograms = key_histograms(result);
    progress_.sink(update);
  }

  /// The shard count of a run: min(num_rng_streams, max(1, reps)).
  [[nodiscard]] std::size_t shard_count(std::uint64_t repetitions) const {
    const std::uint64_t max_shards = repetitions < 1 ? 1 : repetitions;
    return static_cast<std::size_t>(
        num_streams_ < max_shards ? num_streams_ : max_shards);
  }

  /// The batched path's degenerate stream: every shard's repetitions
  /// complete together at the final gate, so after the run the shard
  /// prefixes are emitted in canonical order. A shard's repetition
  /// count is recovered from its multinomial dictionary (the counts sum
  /// to the shard's split), so the sequence is fixed by the seed alone.
  void emit_batched_progress(
      std::span<const Counts> shard_counts,
      std::span<const std::pair<std::string, std::vector<Qubit>>> keys,
      std::uint64_t repetitions) {
    std::map<std::string, Counts> cumulative;
    std::uint64_t completed = 0;
    std::uint64_t last_emitted = 0;
    bool final_emitted = false;
    for (std::size_t i = 0; i < shard_counts.size(); ++i) {
      std::uint64_t shard_reps = 0;
      for (const auto& [bits, count] : shard_counts[i]) {
        shard_reps += count;
        for (const auto& [key, qubits] : keys) {
          cumulative[key][Simulator<State>::pack_key_bits(bits, qubits)] +=
              count;
        }
      }
      completed += shard_reps;
      const bool final = i + 1 == shard_counts.size();
      if (completed > last_emitted || (final && !final_emitted)) {
        ProgressUpdate update;
        update.completed_repetitions = completed;
        update.total_repetitions = repetitions;
        update.final = final;
        update.histograms = cumulative;
        progress_.sink(update);
        last_emitted = completed;
        final_emitted = final;
      }
    }
  }

  /// The seed-determined decomposition of a batched run: per-shard
  /// streams, the multinomial repetition split, and the evolution
  /// stream. Derived identically on fresh and resumed runs (same
  /// request, same seed), which is what lets a resume validate itself
  /// against the checkpointed plan.
  struct BatchedPlan {
    std::vector<Rng> streams;
    std::vector<std::uint64_t> shard_reps;
    Rng evolution;
  };

  BatchedPlan derive_batched_plan(std::uint64_t repetitions, Rng& rng) {
    const std::size_t shards = shard_count(repetitions);
    Rng root = rng.split();
    Rng plan = root.split();
    BatchedPlan out;
    out.streams = engine_detail::make_streams(root, shards);
    out.shard_reps = engine_detail::multinomial_split(repetitions, shards, plan);
    // The shared evolution consumes no randomness (this path forbids
    // channels), but custom apply hooks receive a dedicated
    // deterministic stream in case they draw.
    out.evolution = plan;
    return out;
  }

  /// A kEngineBatched checkpoint of `plan` with nothing completed: each
  /// shard's repetition quota and starting stream state.
  [[nodiscard]] RunCheckpoint batched_plan_checkpoint(
      const BatchedPlan& plan, std::uint64_t repetitions) const {
    RunCheckpoint checkpoint;
    checkpoint.mode = CheckpointMode::kEngineBatched;
    checkpoint.total_repetitions = repetitions;
    checkpoint.shards.resize(plan.streams.size());
    for (std::size_t i = 0; i < plan.streams.size(); ++i) {
      checkpoint.shards[i].total = plan.shard_reps[i];
      checkpoint.shards[i].rng_state = plan.streams[i].state();
    }
    return checkpoint;
  }

  /// The v2 batched path: evolves ONE state snapshot per gate and
  /// shares it read-only across every repetition shard, so the state
  /// evolution is paid once instead of once per shard. Stream-for-
  /// stream identical to running each shard's dictionary through its
  /// own evolved copy (the evolution is deterministic and consumes no
  /// randomness on this path), so results match the v1 engine bit for
  /// bit. Only called with native hooks — they are pure functions safe
  /// to probe one shared state concurrently; custom hooks take the
  /// per-shard fallback in sample()/run_job() instead.
  BatchedOutcome sample_batched_shared(const Circuit& circuit,
                                       BatchedPlan& batched_plan) {
    const std::size_t shards = batched_plan.streams.size();
    std::vector<Rng>& streams = batched_plan.streams;
    const std::vector<std::uint64_t>& shard_reps = batched_plan.shard_reps;
    Rng& evolution = batched_plan.evolution;

    State state = prototype_.initial_state();
    std::vector<BatchDictionary> dictionaries(shards);
    std::vector<std::size_t> shard_peak(shards, 0);
    for (std::size_t i = 0; i < shards; ++i) {
      if (shard_reps[i] > 0) {
        dictionaries[i].emplace(Bitstring{0}, shard_reps[i]);
        shard_peak[i] = 1;
      }
    }

    BatchedOutcome outcome;
    RunStats& stats = outcome.stats;
    stats.used_sample_parallelization = true;
    stats.trajectories = 1;  // one shared evolution serves every shard
    stats.threads_used = static_cast<std::size_t>(num_threads_);
    stats.per_stream.resize(shards);
    stats.max_dictionary_size = 1;

    const SimulatorOptions& options = prototype_.options();
    // Telemetry: evolve time (the shared-snapshot gate applies) feeds
    // stats.evolve_ms; per-shard resample time feeds the shard series
    // and trace spans. Slot-indexed accumulation, so the concurrent
    // fan-out below writes race-free and the totals are deterministic.
    using TelemetryClock = std::chrono::steady_clock;
    double evolve_seconds = 0.0;
    std::vector<double> resample_seconds(shards, 0.0);
    for (const auto& op : circuit.all_operations()) {
      if (op.gate().is_measurement()) continue;
      // Cooperative stop at gate granularity: one gate (evolution +
      // resampling fan-out) bounds the cancellation latency.
      token_.throw_if_stopped();
      fault::throw_if_fails("shard_run");
      const auto evolve_start = TelemetryClock::now();
      prototype_.apply_fn()(op, state, evolution);
      evolve_seconds +=
          std::chrono::duration<double>(TelemetryClock::now() - evolve_start)
              .count();
      ++stats.state_applications;
      if (options.skip_diagonal_updates && op.gate().is_diagonal()) {
        ++stats.diagonal_updates_skipped;
        continue;
      }
      const auto step = [&](std::size_t i) {
        if (dictionaries[i].empty()) return;
        const auto step_start = TelemetryClock::now();
        stats.per_stream[i].probability_evaluations +=
            prototype_.resample_dictionary(state, op, dictionaries[i],
                                           streams[i]);
        shard_peak[i] = std::max(shard_peak[i], dictionaries[i].size());
        resample_seconds[i] +=
            std::chrono::duration<double>(TelemetryClock::now() - step_start)
                .count();
      };
      std::size_t total_entries = 0;
      for (const BatchDictionary& d : dictionaries) total_entries += d.size();
      if (total_entries < kInlineResampleThreshold) {
        for (std::size_t i = 0; i < shards; ++i) step(i);
      } else {
        execute(shards, step);
      }
    }

    stats.evolve_ms = evolve_seconds * 1000.0;
    for (std::size_t i = 0; i < shards; ++i) {
      stats.probability_evaluations +=
          stats.per_stream[i].probability_evaluations;
      stats.max_dictionary_size =
          std::max(stats.max_dictionary_size, shard_peak[i]);
    }
    if constexpr (obs::kTelemetryCompiled) {
      // One observation per non-empty shard (the shard's accumulated
      // resample time) plus an "evolve" span for the shared evolution.
      for (std::size_t i = 0; i < shards; ++i) {
        if (shard_reps[i] == 0) continue;
        engine_detail::observe_shard(resample_seconds[i]);
        if (trace_ != nullptr && obs::enabled()) {
          trace_->record(obs::SpanRecord{
              obs::Trace::span_id(trace_->id(), "shard", i), trace_->root(),
              "shard", i, resample_seconds[i]});
        }
      }
      if (trace_ != nullptr && obs::enabled()) {
        trace_->record(obs::SpanRecord{
            obs::Trace::span_id(trace_->id(), "evolve", 0), trace_->root(),
            "evolve", 0, evolve_seconds});
      }
    }
    outcome.shard_counts.resize(shards);
    for (std::size_t i = 0; i < shards; ++i) {
      outcome.shard_counts[i] = {dictionaries[i].begin(),
                                 dictionaries[i].end()};
    }
    return outcome;
  }

  /// Per-shard sharding: one cloned simulator + one stream per shard,
  /// outputs in shard order. `multinomial` picks the batched-path
  /// repetition split (Sec. 3.2.3 multinomial, used by the custom-hook
  /// fallback so it stays shard-for-shard aligned with the shared
  /// snapshot path); trajectory shards use the even split, with the
  /// planning stream drawn (and discarded) to keep stream derivation
  /// aligned across both paths.
  ///
  /// When `progress` is enabled (Result outputs only), trajectory
  /// shards run as sequential chunks of `progress->every` repetitions
  /// on one stream — identical draws to the single call, since the
  /// per-trajectory path consumes the stream repetition by repetition —
  /// reporting each canonical checkpoint to a ProgressCollector;
  /// multinomial shards report completion only (chunking a dictionary
  /// run would change its draws). The chunk boundaries double as
  /// cooperative cancellation points.
  template <typename Out, typename RunFn>
  std::pair<std::vector<Out>, RunStats> run_sharded(
      const Circuit& circuit, std::uint64_t repetitions, Rng& rng,
      bool multinomial, RunFn body,
      const ProgressOptions* progress = nullptr) {
    const std::size_t shards = shard_count(repetitions);
    Rng root = rng.split();
    Rng plan = root.split();
    const std::vector<Rng> streams = engine_detail::make_streams(root, shards);
    const std::vector<std::uint64_t> shard_reps =
        multinomial ? engine_detail::multinomial_split(repetitions, shards, plan)
                    : engine_detail::even_split(repetitions, shards);

    // Checkpoint/resume apply to Result runs only (sample() has no
    // measurement keys to snapshot). A resumed run re-derives the plan
    // from the same seed, validates it against the checkpoint, and
    // overrides each shard's starting point with the checkpointed
    // (cursor, stream state, prefix histograms).
    const RunCheckpoint* resume = nullptr;
    std::shared_ptr<CheckpointCollector> ckpt;
    if constexpr (std::is_same_v<Out, Result>) {
      resume = resume_.get();
      const CheckpointMode mode = multinomial ? CheckpointMode::kEngineBatched
                                              : CheckpointMode::kEngine;
      if (resume != nullptr) {
        validate_resume(*resume, mode, repetitions, shards);
        for (std::size_t i = 0; i < shards; ++i) {
          const ShardCheckpoint& shard = resume->shards[i];
          BGLS_REQUIRE(shard.total == shard_reps[i],
                       "checkpoint shard sizes do not match this request's "
                       "decomposition; resume with the original seed and "
                       "num_rng_streams");
          // Dictionary-batched shards are atomic: nothing in between.
          BGLS_REQUIRE(!multinomial || shard.completed == 0 ||
                           shard.completed == shard.total,
                       "batched checkpoint has a partially complete shard");
        }
      }
      if (checkpoint_.enabled()) {
        RunCheckpoint base;
        if (resume != nullptr) {
          base = *resume;
        } else {
          base.mode = mode;
          base.total_repetitions = repetitions;
          base.shards.resize(shards);
          for (std::size_t i = 0; i < shards; ++i) {
            base.shards[i].total = shard_reps[i];
            base.shards[i].rng_state = streams[i].state();
          }
        }
        ckpt = std::make_shared<CheckpointCollector>(checkpoint_,
                                                     std::move(base));
        // Durable initial checkpoint of a fresh run: the decomposition
        // plus each shard's starting stream.
        if (resume == nullptr) ckpt->emit();
      }
    }

    std::unique_ptr<ProgressCollector> collector;
    if (progress != nullptr && progress->enabled() && resume == nullptr) {
      collector = std::make_unique<ProgressCollector>(
          *progress, shard_reps, /*chunked=*/!multinomial);
    }

    std::vector<Out> outputs(shards);
    std::vector<RunStats> shard_stats(shards);
    execute(shards, [&](std::size_t i) {
      const ShardCheckpoint* base_shard =
          resume != nullptr ? &resume->shards[i] : nullptr;
      const std::uint64_t base_done =
          base_shard != nullptr ? base_shard->completed : 0;
      if (shard_reps[i] == 0) {
        // Nothing to sample, but the canonical update sequence still
        // needs the shard's (empty) checkpoint.
        if (collector) collector->report(i, 0, {});
        return;
      }
      if constexpr (std::is_same_v<Out, Result>) {
        if (base_done > 0) {
          // Pre-seed the shard output with the checkpointed prefix.
          declare_measurement_keys(circuit, outputs[i]);
          restore_result_histograms(outputs[i], base_shard->histograms);
          if (base_done == shard_reps[i]) return;  // shard already done
        }
      }
      token_.throw_if_stopped();
      const engine_detail::ShardTimer timer;
      obs::TraceSpan span(trace_, "shard", i, obs::TraceSpan::Nest::kRoot);
      Simulator<State> local = prototype_;
      Rng stream = base_shard != nullptr
                       ? Rng::from_state(base_shard->rng_state)
                       : streams[i];
      if constexpr (std::is_same_v<Out, Result>) {
        if ((collector || ckpt) && !multinomial) {
          run_chunked_shard(local, circuit, shard_reps[i], stream, i,
                            collector.get(), ckpt.get(), base_shard,
                            outputs[i], shard_stats[i]);
          return;
        }
        if (base_done > 0) {
          // Resumed trajectory shard without chunking: run only the
          // remaining repetitions on the restored stream and append
          // them to the restored prefix.
          outputs[i].append(
              body(local, circuit, shard_reps[i] - base_done, stream));
          shard_stats[i] = local.last_run_stats();
          return;
        }
      }
      outputs[i] = body(local, circuit, shard_reps[i], stream);
      shard_stats[i] = local.last_run_stats();
      if constexpr (std::is_same_v<Out, Result>) {
        if (collector) {
          collector->report(i, shard_reps[i], key_histograms(outputs[i]));
        }
        if (ckpt) {
          ckpt->record(i, shard_reps[i], stream.state(),
                       key_histograms(outputs[i]),
                       checkpoint_stats_from(shard_stats[i]));
        }
      }
    });
    RunStats merged =
        engine_detail::merge_shard_stats(shard_stats, num_threads_);
    if constexpr (std::is_same_v<Out, Result>) {
      // The merged counters cover this run's work; fold in the resumed
      // prefix so the totals match the uninterrupted run exactly.
      if (resume != nullptr) apply_checkpoint_stats(merged, resume->stats);
    }
    return {std::move(outputs), merged};
  }

  /// The next multiple of `every` after `done`, capped at `total` (the
  /// chunk loop below walks the union of the progress and checkpoint
  /// schedules, and a resumed cursor need not sit on a multiple).
  [[nodiscard]] static std::uint64_t next_multiple(std::uint64_t done,
                                                   std::uint64_t every,
                                                   std::uint64_t total) {
    const std::uint64_t next = done + (every - done % every);
    return next < total ? next : total;
  }

  /// One trajectory shard as sequential boundary-sized chunks on its
  /// stream (see run_sharded): draws are identical to a single
  /// Simulator::run of the full shard — the per-trajectory path
  /// consumes the stream repetition by repetition — the per-chunk
  /// results append into the same shard output, and each canonical
  /// boundary reports to its collector (progress and checkpoint
  /// cadences are independent; a boundary serving only one schedule
  /// reports only there). `base` seeds a resumed shard's cursor,
  /// prefix histograms, and restored stream; `out` then already holds
  /// the restored prefix records.
  void run_chunked_shard(Simulator<State>& local, const Circuit& circuit,
                         std::uint64_t reps, Rng& stream, std::size_t shard,
                         ProgressCollector* collector,
                         CheckpointCollector* ckpt,
                         const ShardCheckpoint* base, Result& out,
                         RunStats& stats) {
    std::map<std::string, Counts> cumulative;
    std::uint64_t done = 0;
    if (base != nullptr) {
      done = base->completed;
      cumulative = base->histograms;
    }
    while (done < reps) {
      token_.throw_if_stopped();
      std::uint64_t next = reps;
      if (collector != nullptr) {
        next = std::min(next, next_multiple(done, progress_.every, reps));
      }
      if (ckpt != nullptr) {
        next = std::min(next, next_multiple(done, checkpoint_.every, reps));
      }
      const Result chunk = local.run(circuit, next - done, stream);
      engine_detail::accumulate_result_histograms(cumulative, chunk);
      out.append(chunk);
      engine_detail::accumulate_stats(stats, local.last_run_stats());
      done = next;
      if (collector != nullptr &&
          (done % progress_.every == 0 || done == reps)) {
        collector->report(shard, done, cumulative);
      }
      if (ckpt != nullptr &&
          (done % checkpoint_.every == 0 || done == reps)) {
        ckpt->record(shard, done, stream.state(), cumulative,
                     checkpoint_stats_from(stats));
      }
    }
  }

  /// Returns the engine context, acquiring it on first use (the shared
  /// process-wide one under reuse_thread_pool, a private one
  /// otherwise). Thread-safe: submit()/run_async() may race here.
  std::shared_ptr<EngineContext> ensure_context() {
    const std::lock_guard<std::mutex> lock(context_mutex_);
    if (!context_) {
      context_ = reuse_pool_ ? EngineContext::shared(num_threads_)
                             : std::make_shared<EngineContext>(num_threads_);
    }
    return context_;
  }

  /// Context for asynchronous jobs: always the persistent process-wide
  /// pool, even when reuse_thread_pool is off. A private pool could be
  /// torn down by its own worker (the job may hold the last reference
  /// once the submitting engine dies), which would make a thread join
  /// itself; the shared cache's pools are immortal, so the hazard
  /// cannot arise.
  std::shared_ptr<EngineContext> async_context() {
    if (reuse_pool_) return ensure_context();
    return EngineContext::shared(num_threads_);
  }

  /// Shared body of submit()/run_async(): schedules `body` as a pool
  /// job running through its own worker engine (sharing this engine's
  /// pool, so in-flight jobs never contend on engine state) and returns
  /// the future. Exceptions from `body` — including from any shard —
  /// surface from future::get() via the packaged_task.
  template <typename Out, typename Body>
  [[nodiscard]] std::future<Out> dispatch_async(Circuit circuit,
                                                std::uint64_t repetitions,
                                                std::uint64_t seed,
                                                Body body) {
    std::shared_ptr<EngineContext> context = async_context();
    auto task = std::make_shared<std::packaged_task<Out()>>(
        [context, prototype = prototype_, circuit = std::move(circuit),
         repetitions, seed, body]() {
          BatchEngine<State> worker(prototype, context);
          Rng rng(seed);
          return body(worker, circuit, repetitions, rng);
        });
    std::future<Out> future = task->get_future();
    context->pool().submit([task] { (*task)(); });
    return future;
  }

  /// Runs job(0..count-1), on the pool when more than one thread is
  /// configured. Output slots are indexed, so scheduling never affects
  /// the merged result.
  template <typename Job>
  void execute(std::size_t count, Job&& job) {
    if (num_threads_ <= 1 || count <= 1) {
      for (std::size_t i = 0; i < count; ++i) job(i);
      return;
    }
    ensure_context()->pool().parallel_for(count, job);
  }

  Simulator<State> prototype_;
  mutable std::mutex context_mutex_;
  std::shared_ptr<EngineContext> context_;
  int num_threads_ = 1;
  std::uint64_t num_streams_ = 1;
  bool reuse_pool_ = true;
  bool two_level_ = true;
  /// Cooperative stop handle from the prototype options, polled in the
  /// shard loops (the per-shard simulators poll it per gate too).
  CancellationToken token_;
  /// Streaming knobs lifted off the prototype options (the engine is
  /// the sole emitter; see the constructor).
  ProgressOptions progress_;
  /// Telemetry trace lifted off the prototype options (may be null);
  /// the engine records shard/evolve spans into it.
  obs::Trace* trace_ = nullptr;
  /// Checkpoint capture knobs and the checkpoint a run() resumes from,
  /// lifted off the prototype options (see core/checkpoint.h).
  CheckpointOptions checkpoint_;
  std::shared_ptr<const RunCheckpoint> resume_;
  RunStats stats_;
};

}  // namespace bgls

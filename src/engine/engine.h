/// \file engine.h
/// Parallel batch-sampling engine (the scaling layer above the
/// gate-by-gate Simulator).
///
/// The paper's dictionary batching (Sec. 3.2.3) parallelizes *samples*
/// inside one thread; this engine adds real threads for the workloads
/// that batching cannot absorb, the same direction qsim takes with
/// multi-threaded trajectory simulation:
///  - per-trajectory runs (channels, mid-circuit measurement, classical
///    feed-forward) shard the repetition count across RNG streams, one
///    cloned state + one stream per shard;
///  - the dictionary-batched unitary path multinomially splits the
///    repetition count across streams and merges the per-shard
///    histograms (a sum of independent multinomials with the same
///    outcome distribution is the full multinomial, so the merged
///    histogram is statistically identical to a single-shard run);
///  - run_batch() spreads many circuits (QAOA parameter sweeps,
///    randomized benchmarking) across the pool, one stream per circuit.
///
/// Determinism is a hard guarantee: the shard decomposition depends only
/// on (repetitions, SimulatorOptions::num_rng_streams) and — on the
/// batched path, whose multinomial split draws from a seed-derived
/// planning stream — the caller's seed; every shard owns a jump-derived
/// Rng stream fixed by that same seed. The thread count never enters,
/// so a fixed seed yields bit-identical merged histograms for *any*
/// thread count.
/// Threads only decide which core executes a shard, never what the
/// shard computes.

#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "circuit/circuit.h"
#include "core/result.h"
#include "core/simulator.h"
#include "engine/thread_pool.h"
#include "util/rng.h"

namespace bgls {

namespace engine_detail {

/// Derives `count` jump-separated Rng streams from `base` (stream i is
/// `base` advanced by (i + 1) jumps). Pure in `base`, O(count) jumps.
[[nodiscard]] std::vector<Rng> make_streams(const Rng& base,
                                            std::size_t count);

/// Deterministic near-equal split of `total` into `shards` counts
/// (first `total % shards` shards get one extra).
[[nodiscard]] std::vector<std::uint64_t> even_split(std::uint64_t total,
                                                    std::size_t shards);

/// Multinomial split of `total` into `shards` uniform-weight counts
/// drawn from `plan` — the Sec. 3.2.3-faithful way to divide a batched
/// repetition count so each shard's histogram is an honest multinomial
/// sample of its own size.
[[nodiscard]] std::vector<std::uint64_t> multinomial_split(
    std::uint64_t total, std::size_t shards, Rng& plan);

/// Aggregates per-shard counters into one RunStats (totals summed, peak
/// dictionary maxed, per_stream filled in shard order).
[[nodiscard]] RunStats merge_shard_stats(std::span<const RunStats> shards,
                                         int threads_used);

/// Sums shard histograms into one.
[[nodiscard]] Counts merge_counts(std::span<const Counts> shards);

}  // namespace engine_detail

/// Multi-threaded driver for a Simulator<State>: shards repetitions (or
/// whole circuits) across a fixed-size thread pool with one RNG stream
/// per shard, and merges the results deterministically in shard order.
///
/// Thread count comes from the prototype simulator's
/// SimulatorOptions::num_threads (0 = hardware concurrency); the number
/// of RNG streams — and therefore the sampled values — comes from
/// SimulatorOptions::num_rng_streams and is independent of the thread
/// count.
template <typename State>
class BatchEngine {
 public:
  /// Wraps a copy of `prototype`; the copy is forced to num_threads = 1
  /// so per-shard runs never re-enter the engine.
  explicit BatchEngine(Simulator<State> prototype)
      : prototype_(std::move(prototype)) {
    SimulatorOptions options = prototype_.options();
    num_threads_ = ThreadPool::resolve_num_threads(options.num_threads);
    num_streams_ = options.num_rng_streams < 1 ? 1 : options.num_rng_streams;
    options.num_threads = 1;
    prototype_.set_options(options);
  }

  /// Effective worker count (after resolving 0 = auto).
  [[nodiscard]] int num_threads() const { return num_threads_; }

  /// Number of deterministic RNG shards per run.
  [[nodiscard]] std::uint64_t num_streams() const { return num_streams_; }

  /// Parallel equivalent of Simulator::run: same contract, measurement
  /// records merged in shard order.
  Result run(const Circuit& circuit, std::uint64_t repetitions, Rng& rng) {
    Result merged;
    for (const auto& op : circuit.all_operations()) {
      if (op.gate().is_measurement()) {
        merged.declare_key(op.gate().measurement_key(),
                           {op.qubits().begin(), op.qubits().end()});
      }
    }
    std::vector<Result> shard_results = run_shards<Result>(
        circuit, repetitions, rng,
        [](Simulator<State>& sim, const Circuit& c, std::uint64_t reps,
           Rng& r) { return sim.run(c, reps, r); });
    for (const Result& shard : shard_results) merged.append(shard);
    return merged;
  }

  /// Convenience overload with a seed instead of an engine.
  Result run(const Circuit& circuit, std::uint64_t repetitions,
             std::uint64_t seed) {
    Rng rng(seed);
    return run(circuit, repetitions, rng);
  }

  /// Parallel equivalent of Simulator::sample: final-bitstring counts
  /// over all qubits, merged by summation.
  Counts sample(const Circuit& circuit, std::uint64_t repetitions, Rng& rng) {
    const std::vector<Counts> shard_counts = run_shards<Counts>(
        circuit, repetitions, rng,
        [](Simulator<State>& sim, const Circuit& c, std::uint64_t reps,
           Rng& r) { return sim.sample(c, reps, r); });
    return engine_detail::merge_counts(shard_counts);
  }

  /// Many-circuit batch API (QAOA parameter sweeps, randomized
  /// benchmarking): runs every circuit for `repetitions` and returns the
  /// per-circuit results in input order. Each circuit owns one RNG
  /// stream and runs serially inside one pool slot, so the outputs are
  /// independent of the thread count.
  std::vector<Result> run_batch(std::span<const Circuit> circuits,
                                std::uint64_t repetitions, Rng& rng) {
    Rng root = rng.split();
    const std::vector<Rng> streams =
        engine_detail::make_streams(root, circuits.size());
    std::vector<Result> results(circuits.size());
    std::vector<RunStats> shard_stats(circuits.size());
    execute(circuits.size(), [&](std::size_t i) {
      Simulator<State> local = prototype_;
      Rng stream = streams[i];
      results[i] = local.run(circuits[i], repetitions, stream);
      shard_stats[i] = local.last_run_stats();
    });
    stats_ = engine_detail::merge_shard_stats(shard_stats, num_threads_);
    return results;
  }

  /// Aggregated counters from the most recent run()/sample()/run_batch(),
  /// including the per-stream shard counters.
  [[nodiscard]] const RunStats& last_run_stats() const { return stats_; }

 private:
  /// Shards `repetitions` across the RNG streams, runs `body` per shard
  /// on the pool, and returns the per-shard outputs in shard order.
  template <typename Out, typename RunFn>
  std::vector<Out> run_shards(const Circuit& circuit,
                              std::uint64_t repetitions, Rng& rng,
                              RunFn body) {
    const bool batched = prototype_.can_parallelize_samples(circuit);
    const std::uint64_t max_shards = repetitions < 1 ? 1 : repetitions;
    const auto shards = static_cast<std::size_t>(
        num_streams_ < max_shards ? num_streams_ : max_shards);
    Rng root = rng.split();
    Rng plan = root.split();
    const std::vector<Rng> streams =
        engine_detail::make_streams(root, shards);
    // Trajectories are i.i.d., so an even split keeps the load balanced;
    // the batched path uses the multinomial split of Sec. 3.2.3 so each
    // shard's dictionary starts from an honest random share.
    const std::vector<std::uint64_t> shard_reps =
        batched ? engine_detail::multinomial_split(repetitions, shards, plan)
                : engine_detail::even_split(repetitions, shards);

    std::vector<Out> outputs(shards);
    std::vector<RunStats> shard_stats(shards);
    execute(shards, [&](std::size_t i) {
      if (shard_reps[i] == 0) return;  // nothing to sample in this shard
      Simulator<State> local = prototype_;
      Rng stream = streams[i];
      outputs[i] = body(local, circuit, shard_reps[i], stream);
      shard_stats[i] = local.last_run_stats();
    });
    stats_ = engine_detail::merge_shard_stats(shard_stats, num_threads_);
    return outputs;
  }

  /// Runs job(0..count-1), on the pool when more than one thread is
  /// configured. Output slots are indexed, so scheduling never affects
  /// the merged result.
  template <typename Job>
  void execute(std::size_t count, Job&& job) {
    if (num_threads_ <= 1 || count <= 1) {
      for (std::size_t i = 0; i < count; ++i) job(i);
      return;
    }
    if (!pool_) {
      // The caller participates in parallel_for, so spawn one fewer
      // worker than the configured concurrency.
      pool_ = std::make_unique<ThreadPool>(num_threads_ - 1);
    }
    pool_->parallel_for(count, job);
  }

  Simulator<State> prototype_;
  int num_threads_ = 1;
  std::uint64_t num_streams_ = 1;
  std::unique_ptr<ThreadPool> pool_;
  RunStats stats_;
};

}  // namespace bgls

/// \file qasm.h
/// OpenQASM 2.0 import/export — the interop path of Sec. 3.2.4 ("usage
/// with non-Cirq circuits"): most quantum software stacks can emit QASM,
/// and this module turns it into a bgls Circuit (the role
/// cirq.contrib.qasm_import plays for the Python package).
///
/// Supported subset (the qelib1 working set):
///  - OPENQASM 2.0; / include "qelib1.inc"; headers
///  - qreg / creg declarations (multiple registers; qubits are laid out
///    in declaration order)
///  - gates: id, x, y, z, h, s, sdg, t, tdg, sx, rx, ry, rz, p/u1, u2,
///    u3/u, cx, cz, swap, iswap, cp/cu1, rzz, ccx, cswap
///  - angle expressions with pi, + - * / and parentheses
///  - whole-register broadcast (e.g. `h q;`)
///  - measure (per-bit and whole-register), barrier (ignored)
///
/// Custom `gate` definitions, `if`, `reset`, and `opaque` are rejected
/// with a ParseError naming the construct.

#pragma once

#include <string>

#include "circuit/circuit.h"

namespace bgls {

/// Parses OpenQASM 2.0 source into a Circuit. Measurement keys are the
/// classical register names ("c" for `measure q -> c;`, "c[k]" for
/// single-bit targets). Throws bgls::ParseError with line information on
/// malformed input.
[[nodiscard]] Circuit parse_qasm(const std::string& source);

/// Serializes a circuit built from exportable gates back to OpenQASM
/// 2.0. Throws ValueError for gates with no QASM counterpart (fused
/// matrix gates, channels).
[[nodiscard]] std::string to_qasm(const Circuit& circuit);

}  // namespace bgls

#include "qasm/qasm.h"

#include <cctype>
#include <cmath>
#include <map>
#include <numbers>
#include <optional>
#include <sstream>
#include <vector>

#include "util/error.h"
#include "util/parse.h"

namespace bgls {
namespace {

using std::numbers::pi;

/// Character-level cursor with line tracking for error messages.
class Cursor {
 public:
  explicit Cursor(const std::string& text) : text_(text) {}

  [[nodiscard]] bool done() const { return pos_ >= text_.size(); }

  [[nodiscard]] char peek() const { return done() ? '\0' : text_[pos_]; }

  char advance() {
    const char c = text_[pos_++];
    if (c == '\n') ++line_;
    return c;
  }

  void skip_whitespace_and_comments() {
    while (!done()) {
      const char c = peek();
      if (std::isspace(static_cast<unsigned char>(c))) {
        advance();
      } else if (c == '/' && pos_ + 1 < text_.size() &&
                 text_[pos_ + 1] == '/') {
        while (!done() && peek() != '\n') advance();
      } else {
        break;
      }
    }
  }

  [[nodiscard]] int line() const { return line_; }

  /// Reads an identifier ([a-zA-Z_][a-zA-Z0-9_]*); empty if none.
  std::string identifier() {
    skip_whitespace_and_comments();
    std::string out;
    if (!done() && (std::isalpha(static_cast<unsigned char>(peek())) ||
                    peek() == '_')) {
      while (!done() && (std::isalnum(static_cast<unsigned char>(peek())) ||
                         peek() == '_')) {
        out.push_back(advance());
      }
    }
    return out;
  }

  /// Consumes the expected character (after whitespace) or throws.
  void expect(char c) {
    skip_whitespace_and_comments();
    if (done() || peek() != c) {
      detail::throw_error<ParseError>("line ", line_, ": expected '", c,
                                      "', got '", done() ? ' ' : peek(), "'");
    }
    advance();
  }

  /// True (and consumed) when the next non-space character is `c`.
  bool consume_if(char c) {
    skip_whitespace_and_comments();
    if (!done() && peek() == c) {
      advance();
      return true;
    }
    return false;
  }

 private:
  const std::string& text_;
  std::size_t pos_ = 0;
  int line_ = 1;
};

/// Recursive-descent angle expression parser: numbers, pi, + - * /,
/// unary minus, parentheses. Recursion depth is bounded so hostile
/// input ("((((…" or "----…x") raises ParseError instead of
/// overflowing the stack — the importer parses untrusted bytes.
class ExpressionParser {
 public:
  explicit ExpressionParser(Cursor& cursor) : cursor_(cursor) {}

  double parse() { return parse_sum(); }

 private:
  static constexpr int kMaxDepth = 64;

  /// RAII depth tick: every recursion cycle passes through
  /// parse_unary, so guarding it alone bounds the whole grammar.
  class DepthScope {
   public:
    explicit DepthScope(ExpressionParser& parser) : parser_(parser) {
      if (++parser_.depth_ > kMaxDepth) {
        detail::throw_error<ParseError>("line ", parser_.cursor_.line(),
                                        ": expression nests deeper than ",
                                        kMaxDepth, " levels");
      }
    }
    ~DepthScope() { --parser_.depth_; }
    DepthScope(const DepthScope&) = delete;
    DepthScope& operator=(const DepthScope&) = delete;

   private:
    ExpressionParser& parser_;
  };

  double parse_sum() {
    double value = parse_product();
    for (;;) {
      if (cursor_.consume_if('+')) {
        value += parse_product();
      } else if (cursor_.consume_if('-')) {
        value -= parse_product();
      } else {
        return value;
      }
    }
  }

  double parse_product() {
    double value = parse_unary();
    for (;;) {
      if (cursor_.consume_if('*')) {
        value *= parse_unary();
      } else if (cursor_.consume_if('/')) {
        const double rhs = parse_unary();
        if (rhs == 0.0) {
          detail::throw_error<ParseError>("line ", cursor_.line(),
                                          ": division by zero");
        }
        value /= rhs;
      } else {
        return value;
      }
    }
  }

  double parse_unary() {
    const DepthScope scope(*this);
    if (cursor_.consume_if('-')) return -parse_unary();
    if (cursor_.consume_if('+')) return parse_unary();
    return parse_atom();
  }

  double parse_atom() {
    cursor_.skip_whitespace_and_comments();
    if (cursor_.consume_if('(')) {
      const double value = parse_sum();
      cursor_.expect(')');
      return value;
    }
    if (std::isalpha(static_cast<unsigned char>(cursor_.peek()))) {
      const std::string name = cursor_.identifier();
      if (name == "pi") return pi;
      detail::throw_error<ParseError>("line ", cursor_.line(),
                                      ": unknown constant '", name, "'");
    }
    std::string digits;
    while (std::isdigit(static_cast<unsigned char>(cursor_.peek())) ||
           cursor_.peek() == '.' || cursor_.peek() == 'e' ||
           cursor_.peek() == 'E') {
      digits.push_back(cursor_.advance());
      // Allow exponent signs right after e/E.
      if ((digits.back() == 'e' || digits.back() == 'E') &&
          (cursor_.peek() == '-' || cursor_.peek() == '+')) {
        digits.push_back(cursor_.advance());
      }
    }
    if (digits.empty()) {
      detail::throw_error<ParseError>("line ", cursor_.line(),
                                      ": expected a number");
    }
    // Checked parse: the scan above is permissive (it collects any run
    // of digit/'.'/exponent characters), so "1.2.3" and "1e" reach
    // here and must be rejected rather than silently truncated the way
    // std::stod would ("1.2.3" -> 1.2). Out-of-range ("1e999") is a
    // parse error too, not a std::out_of_range escaping the parser.
    const std::optional<double> value = util::try_parse_double(digits);
    if (!value.has_value()) {
      detail::throw_error<ParseError>("line ", cursor_.line(),
                                      ": invalid number '", digits, "'");
    }
    return *value;
  }

  Cursor& cursor_;
  int depth_ = 0;
};

/// Widest register (and total bit count) the importer accepts; far
/// beyond anything simulable, but small enough that a hostile
/// declaration cannot drive allocations on its own.
constexpr int kMaxRegisterBits = 1 << 20;

struct Register {
  int offset = 0;  // first global qubit id
  int size = 0;
};

/// A parsed argument: whole register or single element.
struct Argument {
  std::string reg;
  int index = -1;  // -1 = whole register
};

Matrix u3_matrix(double theta, double phi, double lambda) {
  const Complex i{0.0, 1.0};
  const double c = std::cos(theta / 2.0);
  const double s = std::sin(theta / 2.0);
  return Matrix(2, 2,
                {Complex{c, 0.0}, -std::exp(i * lambda) * s,
                 std::exp(i * phi) * s, std::exp(i * (phi + lambda)) * c});
}

class QasmParser {
 public:
  explicit QasmParser(const std::string& source) : cursor_(source) {}

  Circuit parse() {
    parse_header();
    for (;;) {
      cursor_.skip_whitespace_and_comments();
      if (cursor_.done()) break;
      parse_statement();
    }
    return circuit_;
  }

 private:
  void parse_header() {
    cursor_.skip_whitespace_and_comments();
    const std::string keyword = cursor_.identifier();
    if (keyword != "OPENQASM") {
      detail::throw_error<ParseError>("line ", cursor_.line(),
                                      ": missing OPENQASM header");
    }
    ExpressionParser expr(cursor_);
    const double version = expr.parse();
    if (std::abs(version - 2.0) > 1e-9) {
      detail::throw_error<ParseError>("only OPENQASM 2.0 is supported, got ",
                                      version);
    }
    cursor_.expect(';');
  }

  void parse_statement() {
    const int line = cursor_.line();
    const std::string keyword = cursor_.identifier();
    if (keyword.empty()) {
      detail::throw_error<ParseError>("line ", line, ": expected statement");
    }
    if (keyword == "include") {
      // include "qelib1.inc"; — built-ins are always registered.
      cursor_.expect('"');
      while (!cursor_.done() && cursor_.peek() != '"') cursor_.advance();
      cursor_.expect('"');
      cursor_.expect(';');
      return;
    }
    if (keyword == "qreg" || keyword == "creg") {
      const std::string name = cursor_.identifier();
      cursor_.expect('[');
      ExpressionParser expr(cursor_);
      // Checked narrowing: the expression grammar yields a double, and
      // casting an out-of-range double ("qreg q[1e300]") to int is
      // undefined behavior.
      const std::optional<int> parsed = util::try_double_to_int(expr.parse());
      cursor_.expect(']');
      cursor_.expect(';');
      if (!parsed.has_value() || *parsed <= 0) {
        detail::throw_error<ParseError>("line ", line, ": register '", name,
                                        "' must have positive size");
      }
      const int size = *parsed;
      // QASM arrives over untrusted surfaces (the service protocol):
      // cap declared widths so a one-line "qreg q[2000000000]" cannot
      // balloon whole-register expansions before simulation rejects it.
      if (size > kMaxRegisterBits || next_qubit_ > kMaxRegisterBits ||
          next_clbit_ > kMaxRegisterBits) {
        detail::throw_error<ParseError>("line ", line, ": register '", name,
                                        "' exceeds the supported width (",
                                        kMaxRegisterBits, " bits)");
      }
      auto& table = keyword == "qreg" ? qregs_ : cregs_;
      if (table.contains(name)) {
        detail::throw_error<ParseError>("line ", line, ": register '", name,
                                        "' redeclared");
      }
      int& offset = keyword == "qreg" ? next_qubit_ : next_clbit_;
      table[name] = Register{offset, size};
      offset += size;
      return;
    }
    if (keyword == "barrier") {
      while (!cursor_.done() && cursor_.peek() != ';') cursor_.advance();
      cursor_.expect(';');
      return;
    }
    if (keyword == "measure") {
      parse_measure(line);
      return;
    }
    if (keyword == "gate" || keyword == "if" || keyword == "reset" ||
        keyword == "opaque") {
      detail::throw_error<ParseError>("line ", line, ": '", keyword,
                                      "' statements are not supported");
    }
    parse_gate(keyword, line);
  }

  Argument parse_argument(const std::map<std::string, Register>& table,
                          int line) {
    const std::string name = cursor_.identifier();
    if (!table.contains(name)) {
      detail::throw_error<ParseError>("line ", line, ": unknown register '",
                                      name, "'");
    }
    Argument arg{name, -1};
    if (cursor_.consume_if('[')) {
      ExpressionParser expr(cursor_);
      // Same checked narrowing as register declarations: "q[1e300]"
      // must be a parse error, not an undefined cast.
      arg.index = util::try_double_to_int(expr.parse()).value_or(-1);
      cursor_.expect(']');
      if (arg.index < 0 || arg.index >= table.at(name).size) {
        detail::throw_error<ParseError>("line ", line, ": index ", arg.index,
                                        " out of range for '", name, "'");
      }
    }
    return arg;
  }

  void parse_measure(int line) {
    const Argument src = parse_argument(qregs_, line);
    cursor_.expect('-');
    cursor_.expect('>');
    const Argument dst = parse_argument(cregs_, line);
    cursor_.expect(';');
    const Register& qreg = qregs_.at(src.reg);
    if (src.index >= 0) {
      std::ostringstream key;
      key << dst.reg;
      if (dst.index >= 0) key << '[' << dst.index << ']';
      circuit_.append(measure({qreg.offset + src.index}, key.str()));
      return;
    }
    // Whole-register measurement under the creg name.
    std::vector<Qubit> qubits;
    for (int k = 0; k < qreg.size; ++k) qubits.push_back(qreg.offset + k);
    circuit_.append(measure(std::move(qubits), dst.reg));
  }

  void parse_gate(const std::string& name, int line) {
    // Optional parameter list.
    std::vector<double> params;
    if (cursor_.consume_if('(')) {
      if (!cursor_.consume_if(')')) {
        do {
          ExpressionParser expr(cursor_);
          params.push_back(expr.parse());
        } while (cursor_.consume_if(','));
        cursor_.expect(')');
      }
    }
    std::vector<Argument> args;
    do {
      args.push_back(parse_argument(qregs_, line));
    } while (cursor_.consume_if(','));
    cursor_.expect(';');

    // Broadcast: any whole-register argument expands element-wise (all
    // whole-register args must have equal sizes).
    int broadcast = 1;
    for (const auto& arg : args) {
      if (arg.index < 0) {
        const int size = qregs_.at(arg.reg).size;
        if (broadcast != 1 && size != broadcast) {
          detail::throw_error<ParseError>("line ", line,
                                          ": mismatched broadcast sizes");
        }
        broadcast = size;
      }
    }
    for (int k = 0; k < broadcast; ++k) {
      std::vector<Qubit> qubits;
      for (const auto& arg : args) {
        const Register& reg = qregs_.at(arg.reg);
        qubits.push_back(reg.offset + (arg.index < 0 ? k : arg.index));
      }
      circuit_.append(build_operation(name, params, std::move(qubits), line));
    }
  }

  Operation build_operation(const std::string& name,
                            const std::vector<double>& params,
                            std::vector<Qubit> qubits, int line) {
    const auto need = [&](std::size_t n_params, std::size_t n_qubits) {
      if (params.size() != n_params || qubits.size() != n_qubits) {
        detail::throw_error<ParseError>(
            "line ", line, ": gate '", name, "' expects ", n_params,
            " parameter(s) and ", n_qubits, " qubit(s)");
      }
    };
    if (name == "id") { need(0, 1); return Operation(Gate::I(), qubits); }
    if (name == "x") { need(0, 1); return Operation(Gate::X(), qubits); }
    if (name == "y") { need(0, 1); return Operation(Gate::Y(), qubits); }
    if (name == "z") { need(0, 1); return Operation(Gate::Z(), qubits); }
    if (name == "h") { need(0, 1); return Operation(Gate::H(), qubits); }
    if (name == "s") { need(0, 1); return Operation(Gate::S(), qubits); }
    if (name == "sdg") { need(0, 1); return Operation(Gate::Sdg(), qubits); }
    if (name == "t") { need(0, 1); return Operation(Gate::T(), qubits); }
    if (name == "tdg") { need(0, 1); return Operation(Gate::Tdg(), qubits); }
    if (name == "sx") { need(0, 1); return Operation(Gate::SqrtX(), qubits); }
    if (name == "rx") { need(1, 1); return Operation(Gate::Rx(params[0]), qubits); }
    if (name == "ry") { need(1, 1); return Operation(Gate::Ry(params[0]), qubits); }
    if (name == "rz") { need(1, 1); return Operation(Gate::Rz(params[0]), qubits); }
    if (name == "p" || name == "u1") {
      need(1, 1);
      return Operation(Gate::Phase(params[0]), qubits);
    }
    if (name == "u2") {
      need(2, 1);
      return Operation(
          Gate::SingleQubitMatrix(u3_matrix(pi / 2.0, params[0], params[1]),
                                  "u2"),
          qubits);
    }
    if (name == "u3" || name == "u") {
      need(3, 1);
      return Operation(
          Gate::SingleQubitMatrix(u3_matrix(params[0], params[1], params[2]),
                                  "u3"),
          qubits);
    }
    if (name == "cx") { need(0, 2); return Operation(Gate::CX(), qubits); }
    if (name == "cz") { need(0, 2); return Operation(Gate::CZ(), qubits); }
    if (name == "swap") { need(0, 2); return Operation(Gate::Swap(), qubits); }
    if (name == "iswap") { need(0, 2); return Operation(Gate::ISwap(), qubits); }
    if (name == "cp" || name == "cu1") {
      need(1, 2);
      return Operation(Gate::CPhase(params[0]), qubits);
    }
    if (name == "rzz") {
      need(1, 2);
      return Operation(Gate::ZZ(params[0]), qubits);
    }
    if (name == "ccx") { need(0, 3); return Operation(Gate::CCX(), qubits); }
    if (name == "cswap") { need(0, 3); return Operation(Gate::CSwap(), qubits); }
    detail::throw_error<ParseError>("line ", line, ": unknown gate '", name,
                                    "'");
  }

  Cursor cursor_;
  Circuit circuit_;
  std::map<std::string, Register> qregs_;
  std::map<std::string, Register> cregs_;
  int next_qubit_ = 0;
  int next_clbit_ = 0;
};

/// QASM spelling of an exportable gate, with parameters rendered.
std::string qasm_gate_name(const Gate& gate) {
  std::ostringstream oss;
  oss.precision(17);
  switch (gate.kind()) {
    case GateKind::kIdentity: return "id";
    case GateKind::kX: return "x";
    case GateKind::kY: return "y";
    case GateKind::kZ: return "z";
    case GateKind::kH: return "h";
    case GateKind::kS: return "s";
    case GateKind::kSdg: return "sdg";
    case GateKind::kT: return "t";
    case GateKind::kTdg: return "tdg";
    case GateKind::kSqrtX: return "sx";
    case GateKind::kRx: oss << "rx(" << gate.parameter().value() << ')'; return oss.str();
    case GateKind::kRy: oss << "ry(" << gate.parameter().value() << ')'; return oss.str();
    case GateKind::kRz: oss << "rz(" << gate.parameter().value() << ')'; return oss.str();
    case GateKind::kPhase: oss << "u1(" << gate.parameter().value() << ')'; return oss.str();
    case GateKind::kCX: return "cx";
    case GateKind::kCZ: return "cz";
    case GateKind::kSwap: return "swap";
    case GateKind::kISwap: return "iswap";
    case GateKind::kCPhase: oss << "cu1(" << gate.parameter().value() << ')'; return oss.str();
    case GateKind::kZZ: oss << "rzz(" << gate.parameter().value() << ')'; return oss.str();
    case GateKind::kCCX: return "ccx";
    case GateKind::kCSwap: return "cswap";
    default:
      detail::throw_error<ValueError>("gate '", gate.name(),
                                      "' has no QASM 2.0 spelling");
  }
}

}  // namespace

Circuit parse_qasm(const std::string& source) {
  return QasmParser(source).parse();
}

std::string to_qasm(const Circuit& circuit) {
  const int n = circuit.num_qubits();
  std::ostringstream oss;
  oss << "OPENQASM 2.0;\n";
  oss << "include \"qelib1.inc\";\n";
  oss << "qreg q[" << std::max(n, 1) << "];\n";
  // One classical bit per measured qubit, in key order.
  int clbits = 0;
  std::map<std::string, int> creg_offset;
  for (const auto& op : circuit.all_operations()) {
    if (!op.gate().is_measurement()) continue;
    const std::string& key = op.gate().measurement_key();
    BGLS_REQUIRE(!creg_offset.contains(key), "duplicate measurement key '",
                 key, "' cannot be exported");
    creg_offset[key] = clbits;
    clbits += static_cast<int>(op.qubits().size());
  }
  if (clbits > 0) oss << "creg c[" << clbits << "];\n";

  for (const auto& op : circuit.all_operations()) {
    const Gate& gate = op.gate();
    BGLS_REQUIRE(!gate.is_parameterized(),
                 "resolve parameters before exporting to QASM");
    BGLS_REQUIRE(!gate.is_channel(), "channels cannot be exported to QASM");
    if (gate.is_measurement()) {
      const int base = creg_offset.at(gate.measurement_key());
      for (std::size_t j = 0; j < op.qubits().size(); ++j) {
        oss << "measure q[" << op.qubits()[j] << "] -> c["
            << base + static_cast<int>(j) << "];\n";
      }
      continue;
    }
    oss << qasm_gate_name(gate) << ' ';
    for (std::size_t j = 0; j < op.qubits().size(); ++j) {
      oss << "q[" << op.qubits()[j] << ']'
          << (j + 1 < op.qubits().size() ? "," : "");
    }
    oss << ";\n";
  }
  return oss.str();
}

}  // namespace bgls

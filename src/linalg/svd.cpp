#include "linalg/svd.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/error.h"

namespace bgls {
namespace {

/// One-sided Jacobi on a (rows >= cols) matrix held column-wise in `b`:
/// repeatedly applies 2x2 unitaries on column pairs until all pairs are
/// orthogonal, accumulating the same rotations into `v`.
void jacobi_orthogonalize(Matrix& b, Matrix& v, double tol) {
  const std::size_t n = b.cols();
  const std::size_t m = b.rows();
  constexpr int kMaxSweeps = 100;
  for (int sweep = 0; sweep < kMaxSweeps; ++sweep) {
    bool rotated = false;
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        // Gram entries for the (p, q) column pair.
        double alpha = 0.0, beta = 0.0;
        Complex gamma{0.0, 0.0};
        for (std::size_t i = 0; i < m; ++i) {
          alpha += std::norm(b(i, p));
          beta += std::norm(b(i, q));
          gamma += std::conj(b(i, p)) * b(i, q);
        }
        const double gabs = std::abs(gamma);
        if (gabs <= tol * std::sqrt(alpha * beta) || gabs == 0.0) continue;
        rotated = true;

        // Phase-rotate the pair so the Gram cross term becomes real, then
        // apply the classical symmetric Jacobi rotation (Golub & Van Loan).
        const Complex phase = gamma / gabs;  // e^{i phi}
        const double tau = (beta - alpha) / (2.0 * gabs);
        const double t = (tau >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(tau) + std::sqrt(1.0 + tau * tau));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;

        // Column update [b_p', b_q'] = [b_p, b_q] * J with
        // J = diag(1, conj(phase)) * [[c, s], [-s, c]].
        const Complex j01 = s;
        const Complex j00 = c;
        const Complex j10 = -s * std::conj(phase);
        const Complex j11 = c * std::conj(phase);
        for (std::size_t i = 0; i < m; ++i) {
          const Complex bp = b(i, p);
          const Complex bq = b(i, q);
          b(i, p) = bp * j00 + bq * j10;
          b(i, q) = bp * j01 + bq * j11;
        }
        for (std::size_t i = 0; i < n; ++i) {
          const Complex vp = v(i, p);
          const Complex vq = v(i, q);
          v(i, p) = vp * j00 + vq * j10;
          v(i, q) = vp * j01 + vq * j11;
        }
      }
    }
    if (!rotated) return;
  }
}

}  // namespace

SvdResult svd(const Matrix& a, double tol) {
  BGLS_REQUIRE(!a.empty(), "svd of empty matrix");
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();

  if (m < n) {
    // SVD(A†) = U' Σ V'†  =>  A = V' Σ U'†.
    SvdResult adj = svd(a.adjoint(), tol);
    SvdResult out;
    out.u = adj.vh.adjoint();
    out.singular_values = std::move(adj.singular_values);
    out.vh = adj.u.adjoint();
    return out;
  }

  Matrix b = a;
  Matrix v = Matrix::identity(n);
  jacobi_orthogonalize(b, v, tol);

  // Column norms are the singular values; sort descending.
  std::vector<double> sigma(n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    double acc = 0.0;
    for (std::size_t i = 0; i < m; ++i) acc += std::norm(b(i, j));
    sigma[j] = std::sqrt(acc);
  }
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t x, std::size_t y) {
                     return sigma[x] > sigma[y];
                   });

  SvdResult out;
  out.u = Matrix(m, n);
  out.vh = Matrix(n, n);
  out.singular_values.resize(n);
  for (std::size_t jj = 0; jj < n; ++jj) {
    const std::size_t j = order[jj];
    out.singular_values[jj] = sigma[j];
    const double inv = sigma[j] > 0.0 ? 1.0 / sigma[j] : 0.0;
    for (std::size_t i = 0; i < m; ++i) out.u(i, jj) = b(i, j) * inv;
    for (std::size_t i = 0; i < n; ++i) out.vh(jj, i) = std::conj(v(i, j));
  }
  return out;
}

std::size_t truncated_rank(std::span<const double> values,
                           std::size_t max_keep, double relative_cutoff) {
  if (values.empty()) return 0;
  const double largest = values.front();
  std::size_t keep = 0;
  for (double value : values) {
    if (largest > 0.0 && value < relative_cutoff * largest) break;
    if (value <= 0.0) break;
    ++keep;
    if (max_keep != 0 && keep == max_keep) break;
  }
  return std::max<std::size_t>(keep, largest > 0.0 ? 1 : 0);
}

}  // namespace bgls

/// \file svd.h
/// Complex singular value decomposition via one-sided Jacobi rotations.
///
/// The MPS substrate needs a dependency-free SVD for splitting two-qubit
/// gate applications back into per-qubit tensors with bond truncation
/// (the role LAPACK/quimb play for the Python package). One-sided Jacobi
/// is simple, numerically robust, and more than fast enough for the
/// small (≤ a few hundred rows) matrices produced by gate splits.

#pragma once

#include "linalg/matrix.h"

namespace bgls {

/// Thin SVD A = U · diag(singular_values) · Vh with
///  - U: m x r with orthonormal columns,
///  - singular_values: r non-negative values, sorted descending,
///  - Vh: r x n with orthonormal rows,
/// where r = min(m, n).
struct SvdResult {
  Matrix u;
  std::vector<double> singular_values;
  Matrix vh;
};

/// Computes the thin SVD of `a`. Never fails for finite inputs; iterates
/// Jacobi sweeps until the off-diagonal Gram mass is below `tol` relative
/// to the column norms (or a generous sweep cap is hit, which for the
/// matrix sizes used here is never reached in practice).
[[nodiscard]] SvdResult svd(const Matrix& a, double tol = 1e-12);

/// Number of singular values to keep under an MPS-style truncation rule:
/// keep at most `max_keep` values (0 = unlimited) and drop any value whose
/// ratio to the largest is below `relative_cutoff`. Always keeps at least
/// one value when any is positive.
[[nodiscard]] std::size_t truncated_rank(std::span<const double> values,
                                         std::size_t max_keep,
                                         double relative_cutoff);

}  // namespace bgls

/// \file matrix.h
/// Dense complex matrices — the numerical substrate standing in for the
/// numpy operations the Python package relies on (matmul, kron, adjoint,
/// unitarity checks). Row-major storage, value semantics.

#pragma once

#include <complex>
#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace bgls {

/// The amplitude scalar type used across the whole library.
using Complex = std::complex<double>;

/// Dense row-major complex matrix.
class Matrix {
 public:
  /// Creates an empty 0x0 matrix.
  Matrix() = default;

  /// Creates a zero-initialized rows x cols matrix.
  Matrix(std::size_t rows, std::size_t cols);

  /// Creates a matrix from a row-major initializer (size must equal
  /// rows*cols).
  Matrix(std::size_t rows, std::size_t cols, std::vector<Complex> data);

  /// n x n identity.
  [[nodiscard]] static Matrix identity(std::size_t n);

  /// Zero matrix.
  [[nodiscard]] static Matrix zero(std::size_t rows, std::size_t cols);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  /// Element access (row, col); unchecked in release builds beyond the
  /// debug assert, matching hot-path usage.
  [[nodiscard]] Complex& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] const Complex& operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  /// Raw row-major storage.
  [[nodiscard]] std::span<const Complex> data() const { return data_; }
  [[nodiscard]] std::span<Complex> data() { return data_; }

  /// Matrix product; dimensions must agree.
  [[nodiscard]] Matrix operator*(const Matrix& rhs) const;

  /// Element-wise sum/difference; dimensions must agree.
  [[nodiscard]] Matrix operator+(const Matrix& rhs) const;
  [[nodiscard]] Matrix operator-(const Matrix& rhs) const;

  /// Scalar multiple.
  [[nodiscard]] Matrix operator*(Complex scalar) const;

  /// Conjugate transpose.
  [[nodiscard]] Matrix adjoint() const;

  /// Transpose without conjugation.
  [[nodiscard]] Matrix transpose() const;

  /// Kronecker (tensor) product, a ⊗ b.
  [[nodiscard]] static Matrix kron(const Matrix& a, const Matrix& b);

  /// Matrix-vector product y = M x.
  [[nodiscard]] std::vector<Complex> apply(std::span<const Complex> x) const;

  /// Sum of diagonal entries.
  [[nodiscard]] Complex trace() const;

  /// Max absolute element-wise difference.
  [[nodiscard]] double max_abs_diff(const Matrix& rhs) const;

  /// True when max_abs_diff(rhs) <= tol.
  [[nodiscard]] bool approx_equal(const Matrix& rhs, double tol = 1e-9) const;

  /// True when M† M == I within tol.
  [[nodiscard]] bool is_unitary(double tol = 1e-9) const;

  /// True when M == M† within tol.
  [[nodiscard]] bool is_hermitian(double tol = 1e-9) const;

  /// Frobenius norm.
  [[nodiscard]] double frobenius_norm() const;

  /// Multi-line debug rendering.
  [[nodiscard]] std::string to_string(int precision = 3) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<Complex> data_;
};

/// Left scalar multiple.
[[nodiscard]] inline Matrix operator*(Complex scalar, const Matrix& m) {
  return m * scalar;
}

}  // namespace bgls

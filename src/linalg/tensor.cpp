#include "linalg/tensor.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>
#include <utility>

#include "util/error.h"

namespace bgls {
namespace {

std::size_t product(std::span<const std::size_t> dims) {
  return std::accumulate(dims.begin(), dims.end(), std::size_t{1},
                         std::multiplies<>());
}

std::vector<std::size_t> row_major_strides(std::span<const std::size_t> dims) {
  std::vector<std::size_t> strides(dims.size(), 1);
  for (std::size_t i = dims.size(); i-- > 1;) {
    strides[i - 1] = strides[i] * dims[i];
  }
  return strides;
}

}  // namespace

Tensor::Tensor(std::vector<std::string> labels, std::vector<std::size_t> dims)
    : labels_(std::move(labels)), dims_(std::move(dims)) {
  BGLS_REQUIRE(labels_.size() == dims_.size(),
               "tensor labels/dims size mismatch");
  for (std::size_t i = 0; i < labels_.size(); ++i) {
    BGLS_REQUIRE(dims_[i] > 0, "tensor axis '", labels_[i],
                 "' has zero dimension");
    for (std::size_t j = i + 1; j < labels_.size(); ++j) {
      BGLS_REQUIRE(labels_[i] != labels_[j], "duplicate tensor label '",
                   labels_[i], "'");
    }
  }
  data_.assign(product(dims_), Complex{0.0, 0.0});
}

Tensor Tensor::scalar(Complex value) {
  Tensor t({}, {});
  t.data_[0] = value;
  return t;
}

Tensor Tensor::from_matrix(const Matrix& m, std::vector<std::string> row_labels,
                           std::vector<std::size_t> row_dims,
                           std::vector<std::string> col_labels,
                           std::vector<std::size_t> col_dims) {
  BGLS_REQUIRE(m.rows() == product(row_dims) && m.cols() == product(col_dims),
               "from_matrix: matrix ", m.rows(), "x", m.cols(),
               " incompatible with grouped dims");
  std::vector<std::string> labels = std::move(row_labels);
  labels.insert(labels.end(), col_labels.begin(), col_labels.end());
  std::vector<std::size_t> dims = std::move(row_dims);
  dims.insert(dims.end(), col_dims.begin(), col_dims.end());
  Tensor t(std::move(labels), std::move(dims));
  std::copy(m.data().begin(), m.data().end(), t.data_.begin());
  return t;
}

bool Tensor::has_label(const std::string& label) const {
  return std::find(labels_.begin(), labels_.end(), label) != labels_.end();
}

std::size_t Tensor::axis(const std::string& label) const {
  const auto it = std::find(labels_.begin(), labels_.end(), label);
  BGLS_REQUIRE(it != labels_.end(), "tensor has no axis '", label, "'");
  return static_cast<std::size_t>(it - labels_.begin());
}

std::size_t Tensor::dim(const std::string& label) const {
  return dims_[axis(label)];
}

Complex& Tensor::at(std::span<const std::size_t> index) {
  return const_cast<Complex&>(std::as_const(*this).at(index));
}

const Complex& Tensor::at(std::span<const std::size_t> index) const {
  BGLS_REQUIRE(index.size() == dims_.size(), "tensor index rank mismatch");
  std::size_t offset = 0;
  const auto strides = row_major_strides(dims_);
  for (std::size_t i = 0; i < index.size(); ++i) {
    BGLS_REQUIRE(index[i] < dims_[i], "tensor index out of range on axis ",
                 labels_[i]);
    offset += index[i] * strides[i];
  }
  return data_[offset];
}

Complex Tensor::scalar_value() const {
  BGLS_REQUIRE(rank() == 0, "scalar_value on rank-", rank(), " tensor");
  return data_[0];
}

Tensor Tensor::isel(const std::string& label, std::size_t index) const {
  const std::size_t ax = axis(label);
  BGLS_REQUIRE(index < dims_[ax], "isel index ", index,
               " out of range for axis '", label, "'");
  std::vector<std::string> new_labels = labels_;
  std::vector<std::size_t> new_dims = dims_;
  new_labels.erase(new_labels.begin() + static_cast<std::ptrdiff_t>(ax));
  new_dims.erase(new_dims.begin() + static_cast<std::ptrdiff_t>(ax));
  Tensor out(std::move(new_labels), std::move(new_dims));

  // Walk the output positions; the input offset adds `index` along `ax`.
  const auto in_strides = row_major_strides(dims_);
  const std::size_t outer = product({dims_.data(), ax});
  const std::size_t inner =
      product({dims_.data() + ax + 1, dims_.size() - ax - 1});
  const std::size_t fixed_offset = index * in_strides[ax];
  for (std::size_t o = 0; o < outer; ++o) {
    const std::size_t in_base = o * dims_[ax] * inner + fixed_offset;
    const std::size_t out_base = o * inner;
    for (std::size_t i = 0; i < inner; ++i) {
      out.data_[out_base + i] = data_[in_base + i];
    }
  }
  return out;
}

Tensor Tensor::transposed(std::span<const std::string> new_order) const {
  BGLS_REQUIRE(new_order.size() == labels_.size(),
               "transpose order must cover every axis");
  std::vector<std::size_t> perm(new_order.size());
  std::vector<std::size_t> new_dims(new_order.size());
  for (std::size_t i = 0; i < new_order.size(); ++i) {
    perm[i] = axis(new_order[i]);
    new_dims[i] = dims_[perm[i]];
  }
  Tensor out(std::vector<std::string>(new_order.begin(), new_order.end()),
             std::move(new_dims));
  if (data_.empty()) return out;

  const auto in_strides = row_major_strides(dims_);
  // in_stride_for_out_axis[i]: how much the flat input offset moves when
  // output axis i increments.
  std::vector<std::size_t> stride_map(perm.size());
  for (std::size_t i = 0; i < perm.size(); ++i) {
    stride_map[i] = in_strides[perm[i]];
  }
  std::vector<std::size_t> counter(perm.size(), 0);
  std::size_t in_offset = 0;
  for (std::size_t out_offset = 0; out_offset < out.data_.size();
       ++out_offset) {
    out.data_[out_offset] = data_[in_offset];
    // Odometer increment over the output multi-index.
    for (std::size_t i = perm.size(); i-- > 0;) {
      ++counter[i];
      in_offset += stride_map[i];
      if (counter[i] < out.dims_[i]) break;
      in_offset -= counter[i] * stride_map[i];
      counter[i] = 0;
    }
  }
  return out;
}

void Tensor::rename_label(const std::string& from, const std::string& to) {
  const std::size_t ax = axis(from);
  if (from == to) return;
  BGLS_REQUIRE(!has_label(to), "rename target label '", to,
               "' already present");
  labels_[ax] = to;
}

Matrix Tensor::as_matrix(std::span<const std::string> row_labels,
                         std::span<const std::string> col_labels) const {
  BGLS_REQUIRE(row_labels.size() + col_labels.size() == labels_.size(),
               "as_matrix label groups must cover every axis");
  std::vector<std::string> order(row_labels.begin(), row_labels.end());
  order.insert(order.end(), col_labels.begin(), col_labels.end());
  const Tensor permuted = transposed(order);
  std::size_t rows = 1;
  for (const auto& label : row_labels) rows *= dim(label);
  const std::size_t cols = permuted.size() / std::max<std::size_t>(rows, 1);
  return Matrix(rows, cols,
                std::vector<Complex>(permuted.data_.begin(),
                                     permuted.data_.end()));
}

Tensor Tensor::conj() const {
  Tensor out = *this;
  for (auto& v : out.data_) v = std::conj(v);
  return out;
}

double Tensor::norm() const {
  double acc = 0.0;
  for (const auto& v : data_) acc += std::norm(v);
  return std::sqrt(acc);
}

void Tensor::scale(Complex factor) {
  for (auto& v : data_) v *= factor;
}

Tensor contract(const Tensor& a, const Tensor& b) {
  // Partition labels into (a-free, shared, b-free).
  std::vector<std::string> shared;
  std::vector<std::string> a_free;
  for (const auto& label : a.labels()) {
    if (b.has_label(label)) {
      BGLS_REQUIRE(a.dim(label) == b.dim(label),
                   "contract: shared label '", label,
                   "' has mismatched dims ", a.dim(label), " vs ",
                   b.dim(label));
      shared.push_back(label);
    } else {
      a_free.push_back(label);
    }
  }
  std::vector<std::string> b_free;
  for (const auto& label : b.labels()) {
    if (!a.has_label(label)) b_free.push_back(label);
  }

  const Matrix ma = a.as_matrix(a_free, shared);
  const Matrix mb = b.as_matrix(shared, b_free);
  const Matrix mc = ma * mb;

  std::vector<std::size_t> out_dims;
  out_dims.reserve(a_free.size() + b_free.size());
  for (const auto& label : a_free) out_dims.push_back(a.dim(label));
  std::vector<std::size_t> col_dims;
  for (const auto& label : b_free) col_dims.push_back(b.dim(label));
  return Tensor::from_matrix(mc, a_free, out_dims, b_free, col_dims);
}

Tensor apply_matrix(const Tensor& t, const Matrix& m,
                    std::span<const std::string> axes) {
  std::vector<std::string> rest;
  for (const auto& label : t.labels()) {
    if (std::find(axes.begin(), axes.end(), label) == axes.end()) {
      rest.push_back(label);
    }
  }
  std::vector<std::size_t> axis_dims;
  std::size_t k = 1;
  for (const auto& label : axes) {
    axis_dims.push_back(t.dim(label));
    k *= t.dim(label);
  }
  BGLS_REQUIRE(m.rows() == k && m.cols() == k, "apply_matrix: ", m.rows(),
               "x", m.cols(), " matrix does not act on dimension ", k);
  const Matrix folded =
      t.as_matrix(std::span<const std::string>(axes.begin(), axes.size()),
                  rest);
  const Matrix applied = m * folded;
  std::vector<std::size_t> rest_dims;
  for (const auto& label : rest) rest_dims.push_back(t.dim(label));
  return Tensor::from_matrix(applied,
                             std::vector<std::string>(axes.begin(), axes.end()),
                             axis_dims, rest, rest_dims);
}

Tensor contract_network(std::vector<Tensor> tensors) {
  BGLS_REQUIRE(!tensors.empty(), "contract_network on empty network");
  // Rank-0 tensors contribute a plain scalar factor; folding them first
  // keeps the pair search over the (often tiny) entangled core. This is
  // what makes a bitstring amplitude on an n-qubit state with k
  // entangling gates cost O(n + core³) instead of O(n³) — the
  // near-linear width scaling of Fig. 7b.
  Complex scalar_factor{1.0, 0.0};
  std::erase_if(tensors, [&](const Tensor& t) {
    if (t.rank() != 0) return false;
    scalar_factor *= t.scalar_value();
    return true;
  });
  if (tensors.empty()) return Tensor::scalar(scalar_factor);

  // Every label is shared by at most two tensors, so the connected pairs
  // can be enumerated through a label → owners index instead of an
  // all-pairs scan; each step is then O(#labels), making full
  // contraction of a χ-bounded chain/tree O(n·χ³) — the cost model the
  // paper quotes for MPS amplitudes.
  while (tensors.size() > 1) {
    std::map<std::string, std::pair<std::size_t, std::size_t>> owners;
    constexpr std::size_t kNone = ~std::size_t{0};
    for (std::size_t i = 0; i < tensors.size(); ++i) {
      for (const auto& label : tensors[i].labels()) {
        auto [it, inserted] = owners.try_emplace(label, i, kNone);
        if (!inserted) {
          BGLS_REQUIRE(it->second.second == kNone, "label '", label,
                       "' appears in more than two tensors");
          it->second.second = i;
        }
      }
    }
    std::size_t best_i = kNone, best_j = kNone;
    std::size_t best_cost = ~std::size_t{0};
    for (const auto& [label, pair] : owners) {
      const auto [i, j] = pair;
      if (j == kNone) continue;
      // Result size = product of non-shared dims of both tensors.
      std::size_t shared_size = 1;
      for (const auto& shared : tensors[i].labels()) {
        if (tensors[j].has_label(shared)) shared_size *= tensors[i].dim(shared);
      }
      const std::size_t cost = (tensors[i].size() / shared_size) *
                               (tensors[j].size() / shared_size);
      if (cost < best_cost) {
        best_cost = cost;
        best_i = std::min(i, j);
        best_j = std::max(i, j);
      }
    }
    if (best_i == kNone) {
      // Disconnected network: outer-product the two smallest tensors.
      std::partial_sort(
          tensors.begin(), tensors.begin() + 2, tensors.end(),
          [](const Tensor& x, const Tensor& y) { return x.size() < y.size(); });
      best_i = 0;
      best_j = 1;
    }
    Tensor merged = contract(tensors[best_i], tensors[best_j]);
    tensors.erase(tensors.begin() + static_cast<std::ptrdiff_t>(best_j));
    if (merged.rank() == 0) {
      scalar_factor *= merged.scalar_value();
      tensors.erase(tensors.begin() + static_cast<std::ptrdiff_t>(best_i));
      if (tensors.empty()) return Tensor::scalar(scalar_factor);
    } else {
      tensors[best_i] = std::move(merged);
    }
  }
  Tensor result = std::move(tensors.front());
  result.scale(scalar_factor);
  return result;
}

}  // namespace bgls

/// \file tensor.h
/// Dense N-dimensional tensors with *named axes* — the stand-in for the
/// quimb tensors used by the Python package's MPS backend.
///
/// Axes are identified by string labels (e.g. "p3" for the physical index
/// of qubit 3, "b17" for a bond). Contraction sums over labels shared by
/// two tensors; `isel` fixes an index and drops the axis, exactly the
/// quimb operation the paper's `mps_bitstring_probability` listing uses
/// to slice a bitstring's amplitude sub-network out of the state.

#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "linalg/matrix.h"

namespace bgls {

/// Dense labeled tensor. Storage is row-major with labels[0] slowest.
/// Labels within one tensor are unique.
class Tensor {
 public:
  /// Empty (invalid) tensor.
  Tensor() = default;

  /// Zero-initialized tensor with the given axes.
  Tensor(std::vector<std::string> labels, std::vector<std::size_t> dims);

  /// Rank-0 tensor holding a single scalar.
  [[nodiscard]] static Tensor scalar(Complex value);

  /// Builds a tensor from a matrix whose rows/columns are grouped axes:
  /// the matrix must have prod(row_dims) rows and prod(col_dims) columns,
  /// and the result's labels are row_labels followed by col_labels.
  [[nodiscard]] static Tensor from_matrix(const Matrix& m,
                                          std::vector<std::string> row_labels,
                                          std::vector<std::size_t> row_dims,
                                          std::vector<std::string> col_labels,
                                          std::vector<std::size_t> col_dims);

  [[nodiscard]] const std::vector<std::string>& labels() const {
    return labels_;
  }
  [[nodiscard]] const std::vector<std::size_t>& dims() const { return dims_; }
  [[nodiscard]] std::size_t rank() const { return labels_.size(); }
  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] std::span<const Complex> data() const { return data_; }
  [[nodiscard]] std::span<Complex> data() { return data_; }

  /// True when an axis with this label exists.
  [[nodiscard]] bool has_label(const std::string& label) const;

  /// Axis position of `label`; throws if absent.
  [[nodiscard]] std::size_t axis(const std::string& label) const;

  /// Dimension of the axis with this label.
  [[nodiscard]] std::size_t dim(const std::string& label) const;

  /// Element access by multi-index (one entry per axis, same order as
  /// labels()).
  [[nodiscard]] Complex& at(std::span<const std::size_t> index);
  [[nodiscard]] const Complex& at(std::span<const std::size_t> index) const;

  /// Value of the rank-0 tensor.
  [[nodiscard]] Complex scalar_value() const;

  /// Fixes axis `label` to `index` and drops it (quimb's `isel`).
  [[nodiscard]] Tensor isel(const std::string& label, std::size_t index) const;

  /// Returns a copy with axes reordered to `new_order` (a permutation of
  /// the current labels).
  [[nodiscard]] Tensor transposed(
      std::span<const std::string> new_order) const;

  /// Renames one axis label in place.
  void rename_label(const std::string& from, const std::string& to);

  /// Reshapes (with the needed permutation) into a matrix whose rows run
  /// over `row_labels` and columns over `col_labels`; together they must
  /// cover every axis exactly once.
  [[nodiscard]] Matrix as_matrix(std::span<const std::string> row_labels,
                                 std::span<const std::string> col_labels) const;

  /// Element-wise complex conjugate.
  [[nodiscard]] Tensor conj() const;

  /// Frobenius norm.
  [[nodiscard]] double norm() const;

  /// Multiplies every element by `factor`.
  void scale(Complex factor);

 private:
  std::vector<std::string> labels_;
  std::vector<std::size_t> dims_;
  std::vector<Complex> data_;
};

/// Contracts two tensors over every shared label (outer product when they
/// share none). Shared labels must have matching dimensions.
[[nodiscard]] Tensor contract(const Tensor& a, const Tensor& b);

/// Applies a k x k matrix to the given axes of `t` (each axis dim 2 for
/// gates, but any square arrangement works): the axes are treated as the
/// matrix's input index group and replaced by its output group. Used to
/// hit physical indices with gate unitaries.
[[nodiscard]] Tensor apply_matrix(const Tensor& t, const Matrix& m,
                                  std::span<const std::string> axes);

/// Greedily contracts a whole network to a single tensor: repeatedly
/// contracts the pair sharing at least one label that yields the smallest
/// intermediate, falling back to outer products of the smallest tensors
/// when the network is disconnected.
[[nodiscard]] Tensor contract_network(std::vector<Tensor> tensors);

}  // namespace bgls

#include "linalg/matrix.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "util/error.h"

namespace bgls {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, Complex{0.0, 0.0}) {}

Matrix::Matrix(std::size_t rows, std::size_t cols, std::vector<Complex> data)
    : rows_(rows), cols_(cols), data_(std::move(data)) {
  BGLS_REQUIRE(data_.size() == rows_ * cols_, "matrix data size ",
               data_.size(), " does not match ", rows_, "x", cols_);
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = Complex{1.0, 0.0};
  return m;
}

Matrix Matrix::zero(std::size_t rows, std::size_t cols) {
  return Matrix(rows, cols);
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  BGLS_REQUIRE(cols_ == rhs.rows_, "matmul dimension mismatch: ", rows_, "x",
               cols_, " * ", rhs.rows_, "x", rhs.cols_);
  Matrix out(rows_, rhs.cols_);
  // ikj loop order: streams over rhs rows, cache-friendly for row-major.
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const Complex aik = (*this)(i, k);
      if (aik == Complex{0.0, 0.0}) continue;
      const Complex* rhs_row = &rhs.data_[k * rhs.cols_];
      Complex* out_row = &out.data_[i * out.cols_];
      for (std::size_t j = 0; j < rhs.cols_; ++j) {
        out_row[j] += aik * rhs_row[j];
      }
    }
  }
  return out;
}

Matrix Matrix::operator+(const Matrix& rhs) const {
  BGLS_REQUIRE(rows_ == rhs.rows_ && cols_ == rhs.cols_,
               "matrix addition shape mismatch");
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] += rhs.data_[i];
  return out;
}

Matrix Matrix::operator-(const Matrix& rhs) const {
  BGLS_REQUIRE(rows_ == rhs.rows_ && cols_ == rhs.cols_,
               "matrix subtraction shape mismatch");
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] -= rhs.data_[i];
  return out;
}

Matrix Matrix::operator*(Complex scalar) const {
  Matrix out = *this;
  for (auto& v : out.data_) v *= scalar;
  return out;
}

Matrix Matrix::adjoint() const {
  Matrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      out(c, r) = std::conj((*this)(r, c));
    }
  }
  return out;
}

Matrix Matrix::transpose() const {
  Matrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
  }
  return out;
}

Matrix Matrix::kron(const Matrix& a, const Matrix& b) {
  Matrix out(a.rows_ * b.rows_, a.cols_ * b.cols_);
  for (std::size_t ar = 0; ar < a.rows_; ++ar) {
    for (std::size_t ac = 0; ac < a.cols_; ++ac) {
      const Complex av = a(ar, ac);
      if (av == Complex{0.0, 0.0}) continue;
      for (std::size_t br = 0; br < b.rows_; ++br) {
        for (std::size_t bc = 0; bc < b.cols_; ++bc) {
          out(ar * b.rows_ + br, ac * b.cols_ + bc) = av * b(br, bc);
        }
      }
    }
  }
  return out;
}

std::vector<Complex> Matrix::apply(std::span<const Complex> x) const {
  BGLS_REQUIRE(x.size() == cols_, "matrix-vector size mismatch: ", cols_,
               " vs ", x.size());
  std::vector<Complex> y(rows_, Complex{0.0, 0.0});
  for (std::size_t r = 0; r < rows_; ++r) {
    Complex acc{0.0, 0.0};
    const Complex* row = &data_[r * cols_];
    for (std::size_t c = 0; c < cols_; ++c) acc += row[c] * x[c];
    y[r] = acc;
  }
  return y;
}

Complex Matrix::trace() const {
  BGLS_REQUIRE(rows_ == cols_, "trace of non-square matrix");
  Complex acc{0.0, 0.0};
  for (std::size_t i = 0; i < rows_; ++i) acc += (*this)(i, i);
  return acc;
}

double Matrix::max_abs_diff(const Matrix& rhs) const {
  BGLS_REQUIRE(rows_ == rhs.rows_ && cols_ == rhs.cols_,
               "max_abs_diff shape mismatch");
  double worst = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    worst = std::max(worst, std::abs(data_[i] - rhs.data_[i]));
  }
  return worst;
}

bool Matrix::approx_equal(const Matrix& rhs, double tol) const {
  return rows_ == rhs.rows_ && cols_ == rhs.cols_ && max_abs_diff(rhs) <= tol;
}

bool Matrix::is_unitary(double tol) const {
  if (rows_ != cols_) return false;
  return (adjoint() * *this).approx_equal(identity(rows_), tol);
}

bool Matrix::is_hermitian(double tol) const {
  if (rows_ != cols_) return false;
  return approx_equal(adjoint(), tol);
}

double Matrix::frobenius_norm() const {
  double acc = 0.0;
  for (const auto& v : data_) acc += std::norm(v);
  return std::sqrt(acc);
}

std::string Matrix::to_string(int precision) const {
  std::ostringstream oss;
  oss << std::setprecision(precision);
  for (std::size_t r = 0; r < rows_; ++r) {
    oss << (r == 0 ? "[[" : " [");
    for (std::size_t c = 0; c < cols_; ++c) {
      const Complex v = (*this)(r, c);
      oss << v.real() << (v.imag() < 0 ? "-" : "+") << std::abs(v.imag())
          << "i";
      if (c + 1 < cols_) oss << ", ";
    }
    oss << (r + 1 == rows_ ? "]]" : "]\n");
  }
  return oss.str();
}

}  // namespace bgls

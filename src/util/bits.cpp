#include "util/bits.h"

namespace bgls {

std::string to_string(Bitstring bits, int num_qubits) {
  BGLS_REQUIRE(num_qubits >= 0 && num_qubits <= kMaxQubits,
               "num_qubits out of range: ", num_qubits);
  std::string out;
  out.reserve(static_cast<std::size_t>(num_qubits));
  for (int q = 0; q < num_qubits; ++q) {
    out.push_back(get_bit(bits, q) ? '1' : '0');
  }
  return out;
}

Bitstring from_string(const std::string& text) {
  BGLS_REQUIRE(text.size() <= static_cast<std::size_t>(kMaxQubits),
               "bitstring too long: ", text.size());
  Bitstring bits = 0;
  for (std::size_t q = 0; q < text.size(); ++q) {
    const char c = text[q];
    BGLS_REQUIRE(c == '0' || c == '1', "invalid bitstring character '", c,
                 "'");
    bits = with_bit(bits, static_cast<int>(q), c == '1');
  }
  return bits;
}

CandidateList expand_candidates(Bitstring base, std::span<const int> support) {
  BGLS_REQUIRE(support.size() <= static_cast<std::size_t>(kMaxGateArity),
               "gate support too large: ", support.size());
  CandidateList out;
  const int k = static_cast<int>(support.size());
  out.count = 1 << k;
  for (int pattern = 0; pattern < out.count; ++pattern) {
    Bitstring candidate = base;
    for (int j = 0; j < k; ++j) {
      candidate = with_bit(candidate, support[j], (pattern >> j) & 1);
    }
    out.values[static_cast<std::size_t>(pattern)] = candidate;
  }
  return out;
}

std::uint64_t to_big_endian_index(Bitstring bits, int num_qubits) {
  std::uint64_t index = 0;
  for (int q = 0; q < num_qubits; ++q) {
    index = (index << 1) | static_cast<std::uint64_t>(get_bit(bits, q));
  }
  return index;
}

Bitstring from_big_endian_index(std::uint64_t index, int num_qubits) {
  Bitstring bits = 0;
  for (int q = num_qubits - 1; q >= 0; --q) {
    bits = with_bit(bits, q, static_cast<int>(index & 1u));
    index >>= 1;
  }
  return bits;
}

}  // namespace bgls

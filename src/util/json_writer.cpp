#include "util/json_writer.h"

#include <cmath>
#include <cstdio>

#include "util/error.h"

namespace bgls {

JsonWriter& JsonWriter::begin_object() {
  before_value();
  out_ << '{';
  stack_.push_back({/*is_object=*/true, /*has_items=*/false});
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  BGLS_REQUIRE(!stack_.empty() && stack_.back().is_object && !after_key_,
               "end_object called outside an object");
  const bool had_items = stack_.back().has_items;
  stack_.pop_back();
  if (had_items) newline_indent();
  out_ << '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  out_ << '[';
  stack_.push_back({/*is_object=*/false, /*has_items=*/false});
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  BGLS_REQUIRE(!stack_.empty() && !stack_.back().is_object,
               "end_array called outside an array");
  const bool had_items = stack_.back().has_items;
  stack_.pop_back();
  if (had_items) newline_indent();
  out_ << ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  BGLS_REQUIRE(!stack_.empty() && stack_.back().is_object && !after_key_,
               "key() is only legal directly inside an object");
  if (stack_.back().has_items) out_ << ',';
  stack_.back().has_items = true;
  newline_indent();
  write_escaped(name);
  out_ << (style_ == Style::kCompact ? ":" : ": ");
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view text) {
  before_value();
  write_escaped(text);
  return *this;
}

JsonWriter& JsonWriter::value(bool flag) {
  before_value();
  out_ << (flag ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::value(long long number) {
  before_value();
  out_ << number;
  return *this;
}

JsonWriter& JsonWriter::value(unsigned long long number) {
  before_value();
  out_ << number;
  return *this;
}

JsonWriter& JsonWriter::value(double number) {
  if (!std::isfinite(number)) return null();
  before_value();
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", number);
  out_ << buffer;
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  out_ << "null";
  return *this;
}

void JsonWriter::before_value() {
  if (!stack_.empty() && stack_.back().is_object) {
    BGLS_REQUIRE(after_key_, "object values need a key() first");
    after_key_ = false;
    return;
  }
  if (!stack_.empty()) {
    if (stack_.back().has_items) out_ << ',';
    stack_.back().has_items = true;
    newline_indent();
  }
}

void JsonWriter::newline_indent() {
  if (style_ == Style::kCompact) return;  // single-line framing (ndjson)
  out_ << '\n';
  for (std::size_t i = 0; i < stack_.size(); ++i) out_ << "  ";
}

void JsonWriter::write_escaped(std::string_view text) {
  out_ << '"';
  for (const char c : text) {
    switch (c) {
      case '"': out_ << "\\\""; break;
      case '\\': out_ << "\\\\"; break;
      case '\n': out_ << "\\n"; break;
      case '\t': out_ << "\\t"; break;
      case '\r': out_ << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(c));
          out_ << buffer;
        } else {
          out_ << c;
        }
    }
  }
  out_ << '"';
}

}  // namespace bgls

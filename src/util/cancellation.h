/// \file cancellation.h
/// Cooperative cancellation and deadlines for long-running runs.
///
/// A CancellationToken is a cheap copyable handle to shared stop state:
/// any holder may cancel() it or arm a wall-clock deadline, and the
/// sampling loops (Simulator's trajectory/gate loops, BatchEngine's
/// shard loops) poll it at bounded intervals and abort by throwing
/// CancelledError / DeadlineExceededError. Cancellation is *cooperative*
/// and scheduling-only: an aborted run's partial work is discarded,
/// nothing shared (thread pools, cached contexts, other in-flight runs)
/// is touched, so later runs on the same pool are bit-identical to runs
/// on a fresh one — pinned by tests/test_cancellation.cpp.
///
/// A default-constructed token is *inert*: it holds no state, every
/// check is a null-pointer test, and it can never request a stop — the
/// zero-cost default for the vast majority of runs that never need
/// cancellation.

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <memory>

#include "util/error.h"

namespace bgls {

/// Thrown by a run whose CancellationToken was cancel()ed.
class CancelledError : public Error {
 public:
  using Error::Error;
};

/// Thrown by a run whose CancellationToken deadline passed.
class DeadlineExceededError : public Error {
 public:
  using Error::Error;
};

/// Why a token asks a run to stop.
enum class StopKind {
  kNone,      ///< keep running
  kCancelled, ///< cancel() was called
  kDeadline,  ///< the armed deadline passed
};

/// Copyable handle to shared cancellation state (see file comment).
/// Thread-safe: cancel()/set_deadline()/stop_kind() may race freely.
class CancellationToken {
 public:
  /// Inert token: valid() is false and stop is never requested.
  CancellationToken() = default;

  /// A fresh active token (not yet cancelled, no deadline).
  [[nodiscard]] static CancellationToken make() {
    CancellationToken token;
    token.state_ = std::make_shared<State>();
    return token;
  }

  /// True when this token carries shared state (can be cancelled).
  [[nodiscard]] bool valid() const { return state_ != nullptr; }

  // The mutators are const: they touch the *shared* stop state, not
  // the handle, so any copy — including one held by const reference —
  // may request the stop.

  /// Requests a stop. Idempotent; no-op on an inert token.
  void cancel() const noexcept {
    if (state_) state_->cancelled.store(true, std::memory_order_release);
  }

  /// Arms (or replaces) the absolute deadline. No-op on an inert token.
  void set_deadline(std::chrono::steady_clock::time_point deadline) const {
    if (state_) {
      state_->deadline_ns.store(deadline.time_since_epoch().count(),
                                std::memory_order_release);
    }
  }

  /// Arms the deadline `timeout` from now.
  void set_deadline_after(std::chrono::milliseconds timeout) const {
    set_deadline(std::chrono::steady_clock::now() + timeout);
  }

  /// Current stop request, if any. cancel() wins over an expired
  /// deadline so an explicitly cancelled run reports kCancelled even
  /// when its deadline has also passed.
  [[nodiscard]] StopKind stop_kind() const {
    if (!state_) return StopKind::kNone;
    if (state_->cancelled.load(std::memory_order_acquire)) {
      return StopKind::kCancelled;
    }
    const std::int64_t deadline =
        state_->deadline_ns.load(std::memory_order_acquire);
    if (deadline != kNoDeadline &&
        std::chrono::steady_clock::now().time_since_epoch().count() >=
            deadline) {
      return StopKind::kDeadline;
    }
    return StopKind::kNone;
  }

  /// True when a stop has been requested (by either mechanism).
  [[nodiscard]] bool stop_requested() const {
    return stop_kind() != StopKind::kNone;
  }

  /// The cooperative check the sampling loops call: throws
  /// CancelledError or DeadlineExceededError when a stop is requested,
  /// returns otherwise. Inert tokens return immediately.
  void throw_if_stopped() const {
    switch (stop_kind()) {
      case StopKind::kNone:
        return;
      case StopKind::kCancelled:
        throw CancelledError("run cancelled by its CancellationToken");
      case StopKind::kDeadline:
        throw DeadlineExceededError("run exceeded its deadline");
    }
  }

 private:
  static constexpr std::int64_t kNoDeadline =
      std::numeric_limits<std::int64_t>::max();

  struct State {
    std::atomic<bool> cancelled{false};
    std::atomic<std::int64_t> deadline_ns{kNoDeadline};
  };

  std::shared_ptr<State> state_;
};

}  // namespace bgls

/// \file timing.h
/// Wall-clock timing helpers for the per-figure benches.

#pragma once

#include <chrono>
#include <utility>
#include <vector>

#include "util/stats.h"

namespace bgls {

/// Monotonic stopwatch returning elapsed seconds.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Seconds since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  void reset() { start_ = Clock::now(); }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Runs `fn` `reps` times and returns the median wall time in seconds.
/// One warm-up call is made first so allocation effects do not skew the
/// first measurement.
template <typename Fn>
[[nodiscard]] double median_runtime(Fn&& fn, int reps = 3) {
  fn();  // warm-up
  std::vector<double> times;
  times.reserve(static_cast<std::size_t>(reps));
  for (int i = 0; i < reps; ++i) {
    Stopwatch watch;
    fn();
    times.push_back(watch.seconds());
  }
  return median(std::move(times));
}

}  // namespace bgls

#include "util/table.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/error.h"

namespace bgls {

ConsoleTable::ConsoleTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  BGLS_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void ConsoleTable::add_row(std::vector<std::string> cells) {
  BGLS_REQUIRE(cells.size() == headers_.size(), "row has ", cells.size(),
               " cells, expected ", headers_.size());
  rows_.push_back(std::move(cells));
}

std::string ConsoleTable::num(double value, int precision) {
  std::ostringstream oss;
  oss << std::setprecision(precision) << value;
  return oss.str();
}

std::string ConsoleTable::duration(double seconds) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(2);
  if (seconds < 1e-6) {
    oss << seconds * 1e9 << " ns";
  } else if (seconds < 1e-3) {
    oss << seconds * 1e6 << " us";
  } else if (seconds < 1.0) {
    oss << seconds * 1e3 << " ms";
  } else {
    oss << seconds << " s";
  }
  return oss.str();
}

void ConsoleTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }
  const auto print_row = [&](const std::vector<std::string>& cells) {
    os << "| ";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c])) << cells[c];
      os << (c + 1 == cells.size() ? " |\n" : " | ");
    }
  };
  print_row(headers_);
  os << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << (c + 1 == headers_.size() ? "|\n" : "+");
  }
  for (const auto& row : rows_) print_row(row);
}

void print_bar_chart(std::ostream& os, const std::vector<std::string>& labels,
                     const std::vector<double>& values, int width) {
  BGLS_REQUIRE(labels.size() == values.size(),
               "bar chart labels/values size mismatch");
  double max_value = 0.0;
  std::size_t max_label = 0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    BGLS_REQUIRE(values[i] >= 0.0, "bar chart values must be non-negative");
    max_value = std::max(max_value, values[i]);
    max_label = std::max(max_label, labels[i].size());
  }
  for (std::size_t i = 0; i < values.size(); ++i) {
    const int bar =
        max_value > 0.0
            ? static_cast<int>(std::lround(values[i] / max_value * width))
            : 0;
    os << std::left << std::setw(static_cast<int>(max_label)) << labels[i]
       << " | " << std::string(static_cast<std::size_t>(bar), '#') << ' '
       << values[i] << '\n';
  }
}

void print_histogram(std::ostream& os, const Counts& counts, int num_qubits,
                     int width) {
  std::vector<std::string> labels;
  std::vector<double> values;
  labels.reserve(counts.size());
  values.reserve(counts.size());
  for (const auto& [bits, count] : counts) {
    labels.push_back(to_string(bits, num_qubits));
    values.push_back(static_cast<double>(count));
  }
  print_bar_chart(os, labels, values, width);
}

}  // namespace bgls

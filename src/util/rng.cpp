#include "util/rng.h"

#include <cmath>
#include <limits>

#include "util/error.h"

namespace bgls {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t v, int k) {
  return (v << k) | (v >> (64 - k));
}

/// Stirling series tail correction log(k!) - [k log k - k + 0.5 log(2 pi k)],
/// used by the BTRS acceptance bound. Table for small k, series otherwise
/// (Hörmann 1993; identical constants to the widely used TF implementation).
double stirling_approx_tail(double k) {
  static constexpr double kTable[] = {
      0.0810614667953272,  0.0413406959554092,  0.0276779256849983,
      0.02079067210376509, 0.0166446911898211,  0.0138761288230707,
      0.0118967099458917,  0.0104112652619720,  0.00925546218271273,
      0.00833056343336287};
  if (k < 10.0) return kTable[static_cast<int>(k)];
  const double kp1sq = (k + 1.0) * (k + 1.0);
  return (1.0 / 12.0 - (1.0 / 360.0 - 1.0 / 1260.0 / kp1sq) / kp1sq) / (k + 1.0);
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64(sm);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_int(std::uint64_t bound) {
  BGLS_REQUIRE(bound > 0, "uniform_int bound must be positive");
  // Lemire's nearly-divisionless unbiased method.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

std::size_t Rng::categorical(std::span<const double> weights) {
  BGLS_REQUIRE(!weights.empty(), "categorical needs at least one weight");
  double total = 0.0;
  for (double w : weights) {
    BGLS_REQUIRE(w >= 0.0 && std::isfinite(w),
                 "categorical weights must be finite and non-negative, got ", w);
    total += w;
  }
  BGLS_REQUIRE(total > 0.0, "categorical weights must not all be zero");
  const double target = uniform() * total;
  double acc = 0.0;
  for (std::size_t i = 0; i + 1 < weights.size(); ++i) {
    acc += weights[i];
    if (target < acc) return i;
  }
  return weights.size() - 1;
}

std::uint64_t Rng::binomial(std::uint64_t n, double p) {
  BGLS_REQUIRE(p >= -1e-12 && p <= 1.0 + 1e-12 && std::isfinite(p),
               "binomial probability out of range: ", p);
  if (n == 0 || p <= 0.0) return 0;
  if (p >= 1.0) return n;
  if (p > 0.5) return n - binomial(n, 1.0 - p);

  const double np = static_cast<double>(n) * p;
  if (np < 10.0 || n < 32) {
    // Inversion by sequential CDF walk: expected O(n·p + 1) iterations.
    const double q = 1.0 - p;
    const double s = p / q;
    const double base = std::pow(q, static_cast<double>(n));
    if (base > 0.0) {
      double u = uniform();
      double pmf = base;
      std::uint64_t k = 0;
      while (u > pmf && k < n) {
        u -= pmf;
        ++k;
        pmf *= s * (static_cast<double>(n - k + 1) / static_cast<double>(k));
      }
      return k;
    }
    // q^n underflowed (huge n with small-but-not-tiny p); fall through to
    // the rejection sampler which works in log space.
  }

  // BTRS: transformed rejection with squeeze (Hörmann 1993). Exact.
  const double dn = static_cast<double>(n);
  const double q = 1.0 - p;
  const double stddev = std::sqrt(dn * p * q);
  const double b = 1.15 + 2.53 * stddev;
  const double a = -0.0873 + 0.0248 * b + 0.01 * p;
  const double c = dn * p + 0.5;
  const double v_r = 0.92 - 4.2 / b;
  const double r = p / q;
  const double alpha = (2.83 + 5.1 / b) * stddev;
  const double m = std::floor((dn + 1.0) * p);
  for (;;) {
    const double u = uniform() - 0.5;
    double v = uniform();
    const double us = 0.5 - std::abs(u);
    const double kf = std::floor((2.0 * a / us + b) * u + c);
    if (kf < 0.0 || kf > dn) continue;
    if (us >= 0.07 && v <= v_r) return static_cast<std::uint64_t>(kf);
    v = std::log(v * alpha / (a / (us * us) + b));
    const double upper =
        (m + 0.5) * std::log((m + 1.0) / (r * (dn - m + 1.0))) +
        (dn + 1.0) * std::log((dn - m + 1.0) / (dn - kf + 1.0)) +
        (kf + 0.5) * std::log(r * (dn - kf + 1.0) / (kf + 1.0)) +
        stirling_approx_tail(m) + stirling_approx_tail(dn - m) -
        stirling_approx_tail(kf) - stirling_approx_tail(dn - kf);
    if (v <= upper) return static_cast<std::uint64_t>(kf);
  }
}

void Rng::multinomial(std::uint64_t trials, std::span<const double> weights,
                      std::span<std::uint64_t> counts_out) {
  BGLS_REQUIRE(counts_out.size() == weights.size(),
               "multinomial output span size mismatch: ", counts_out.size(),
               " vs ", weights.size());
  double remaining_weight = 0.0;
  for (double w : weights) {
    BGLS_REQUIRE(w >= 0.0 && std::isfinite(w),
                 "multinomial weights must be finite and non-negative, got ", w);
    remaining_weight += w;
  }
  BGLS_REQUIRE(weights.empty() || remaining_weight > 0.0 || trials == 0,
               "multinomial weights must not all be zero");
  std::uint64_t remaining = trials;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    if (remaining == 0) {
      counts_out[i] = 0;
      continue;
    }
    if (i + 1 == weights.size()) {
      counts_out[i] = remaining;
      break;
    }
    const double p =
        remaining_weight > 0.0 ? weights[i] / remaining_weight : 0.0;
    const std::uint64_t draw = binomial(remaining, std::min(p, 1.0));
    counts_out[i] = draw;
    remaining -= draw;
    remaining_weight -= weights[i];
  }
}

std::vector<std::uint64_t> Rng::multinomial(std::uint64_t trials,
                                            std::span<const double> weights) {
  std::vector<std::uint64_t> counts(weights.size(), 0);
  multinomial(trials, weights, counts);
  return counts;
}

Rng Rng::split() {
  // Derive a child seed from two raw outputs; the child reseeds through
  // splitmix64 so parent/child streams decorrelate.
  const std::uint64_t child_seed = (*this)() ^ rotl((*this)(), 32);
  return Rng(child_seed);
}

void Rng::jump() {
  // Standard xoshiro256++ jump polynomial (Blackman & Vigna): the result
  // state equals 2^128 sequential engine steps.
  static constexpr std::uint64_t kJump[] = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
      0x39abdc4529b1661cULL};
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (const std::uint64_t word : kJump) {
    for (int bit = 0; bit < 64; ++bit) {
      if (word & (std::uint64_t{1} << bit)) {
        s0 ^= state_[0];
        s1 ^= state_[1];
        s2 ^= state_[2];
        s3 ^= state_[3];
      }
      (*this)();
    }
  }
  state_ = {s0, s1, s2, s3};
}

Rng Rng::split(std::uint64_t index) const {
  Rng child = *this;
  for (std::uint64_t i = 0; i <= index; ++i) child.jump();
  return child;
}

}  // namespace bgls

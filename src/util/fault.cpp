#include "util/fault.h"

#include <atomic>
#include <cstdlib>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "obs/log.h"
#include "util/parse.h"
#include "util/rng.h"

namespace bgls::fault {

namespace {

struct Point {
  double probability = 0.0;
  Rng rng{0};
  std::uint64_t fired = 0;
  std::uint64_t max_fires = 0;  // 0 = unlimited
};

std::atomic<bool> g_any_armed{false};
std::once_flag g_env_once;

std::mutex& registry_mutex() {
  static std::mutex mutex;
  return mutex;
}

std::map<std::string, Point, std::less<>>& registry() {
  static std::map<std::string, Point, std::less<>> points;
  return points;
}

/// Parses "point:prob:seed[,point:prob:seed...]" into the registry.
/// Malformed entries are skipped — fault injection must never take the
/// process down on a typo.
void parse_spec_locked(std::string_view spec) {
  registry().clear();
  while (!spec.empty()) {
    const std::size_t comma = spec.find(',');
    std::string_view entry = spec.substr(0, comma);
    spec = comma == std::string_view::npos ? std::string_view{}
                                           : spec.substr(comma + 1);
    const std::size_t c1 = entry.find(':');
    if (c1 == std::string_view::npos) continue;
    const std::size_t c2 = entry.find(':', c1 + 1);
    if (c2 == std::string_view::npos) continue;
    const std::string name(entry.substr(0, c1));
    if (name.empty()) continue;
    const std::optional<double> probability =
        util::try_parse_double(entry.substr(c1 + 1, c2 - c1 - 1));
    const std::optional<std::uint64_t> seed =
        util::try_parse_u64(entry.substr(c2 + 1));
    if (!probability.has_value() || !seed.has_value()) continue;
    Point point;
    point.probability = *probability;
    point.rng = Rng(*seed);
    registry().emplace(name, std::move(point));
  }
  g_any_armed.store(!registry().empty(), std::memory_order_release);
}

void ensure_env_loaded() {
  std::call_once(g_env_once, [] {
    const char* spec = std::getenv("BGLS_FAULT_INJECT");
    if (spec == nullptr || *spec == '\0') return;
    const std::lock_guard<std::mutex> lock(registry_mutex());
    parse_spec_locked(spec);
  });
}

}  // namespace

bool should_fail(std::string_view point) noexcept {
  ensure_env_loaded();
  if (!g_any_armed.load(std::memory_order_acquire)) return false;
  const std::lock_guard<std::mutex> lock(registry_mutex());
  const auto it = registry().find(point);
  if (it == registry().end()) return false;
  Point& p = it->second;
  if (p.max_fires != 0 && p.fired >= p.max_fires) return false;
  if (!p.rng.bernoulli(p.probability)) return false;
  ++p.fired;
  // Injected failures look exactly like real ones downstream; the log
  // line is what distinguishes a drill from an incident.
  obs::log(obs::LogLevel::kWarn, "fault", "injected fault fired",
           {{"point", it->first}, {"fired", p.fired}});
  return true;
}

std::uint64_t fire_count(std::string_view point) noexcept {
  ensure_env_loaded();
  if (!g_any_armed.load(std::memory_order_acquire)) return 0;
  const std::lock_guard<std::mutex> lock(registry_mutex());
  const auto it = registry().find(point);
  return it == registry().end() ? 0 : it->second.fired;
}

void throw_if_fails(std::string_view point) {
  if (should_fail(point)) {
    detail::throw_error<FaultInjectedError>("injected fault at '", point,
                                            "' (BGLS_FAULT_INJECT)");
  }
}

void arm(std::string_view point, double probability, std::uint64_t seed,
         std::uint64_t max_fires) {
  ensure_env_loaded();
  const std::lock_guard<std::mutex> lock(registry_mutex());
  Point p;
  p.probability = probability;
  p.rng = Rng(seed);
  p.max_fires = max_fires;
  registry().insert_or_assign(std::string(point), std::move(p));
  g_any_armed.store(true, std::memory_order_release);
}

void disarm_all() {
  ensure_env_loaded();
  const std::lock_guard<std::mutex> lock(registry_mutex());
  registry().clear();
  g_any_armed.store(false, std::memory_order_release);
}

void reload_from_env() {
  ensure_env_loaded();
  const std::lock_guard<std::mutex> lock(registry_mutex());
  const char* spec = std::getenv("BGLS_FAULT_INJECT");
  parse_spec_locked(spec == nullptr ? std::string_view{} : spec);
}

}  // namespace bgls::fault

/// \file rng.h
/// Deterministic, seedable pseudo-random number generation.
///
/// The sampler is a Monte-Carlo algorithm, so the library owns its
/// randomness end-to-end: a fast xoshiro256++ engine plus the exact
/// discrete distributions the gate-by-gate sampler needs (categorical,
/// binomial, multinomial). No global state — every simulator call takes
/// an explicit Rng&, which makes runs reproducible and thread-safe by
/// construction (one engine per thread / trajectory).
///
/// The binomial sampler is exact (inversion for small n·p, the BTRS
/// transformed-rejection algorithm of Hörmann otherwise). Exactness
/// matters: multinomial splitting is what lets the sample-parallelized
/// simulator draw the counts for 10^6 repetitions in O(#categories)
/// instead of O(repetitions) per gate — the mechanism behind the runtime
/// saturation shown in Fig. 2 of the paper — and it must not distort the
/// sampled distribution.

#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace bgls {

/// xoshiro256++ engine with library-specific distribution helpers.
///
/// Satisfies (the core of) UniformRandomBitGenerator so it can also be
/// plugged into <random> distributions if ever needed.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the engine; distinct seeds give independent-looking streams
  /// (seed is expanded through splitmix64 per the xoshiro authors'
  /// recommendation).
  explicit Rng(std::uint64_t seed = 0x853C49E6748FEA9BULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  /// Next raw 64-bit output.
  result_type operator()();

  /// Uniform double in [0, 1) with 53 bits of randomness.
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, bound). Requires bound > 0. Unbiased
  /// (Lemire's rejection method).
  std::uint64_t uniform_int(std::uint64_t bound);

  /// Bernoulli trial with success probability p (clamped to [0, 1]).
  bool bernoulli(double p);

  /// Samples an index from an *unnormalized* non-negative weight vector.
  /// Requires at least one strictly positive weight.
  std::size_t categorical(std::span<const double> weights);

  /// Exact Binomial(n, p) sample.
  std::uint64_t binomial(std::uint64_t n, double p);

  /// Exact Multinomial(trials, weights) counts via conditional binomial
  /// splitting; weights may be unnormalized. O(len(weights)) expected
  /// time, independent of `trials`.
  void multinomial(std::uint64_t trials, std::span<const double> weights,
                   std::span<std::uint64_t> counts_out);

  /// Convenience overload returning a freshly allocated count vector.
  std::vector<std::uint64_t> multinomial(std::uint64_t trials,
                                         std::span<const double> weights);

  /// Derives an independent child stream (for per-trajectory engines).
  /// Stateful: advances this engine, so successive calls give distinct
  /// children.
  Rng split();

  /// Advances this engine by 2^128 steps using the standard xoshiro256++
  /// jump polynomial. Streams separated by jumps never overlap for fewer
  /// than 2^128 draws each, which makes them suitable as per-shard
  /// engines in the parallel batch engine.
  void jump();

  /// Returns the `index`-th jump-derived child stream: a copy of this
  /// engine advanced by (index + 1) jumps. Const — the parent stream is
  /// untouched, so split(i) is a pure function of (state, i) and a fixed
  /// seed yields the same stream family on every run and thread count.
  /// Costs O(index) jump applications; for a long run of consecutive
  /// streams, prefer jumping one engine incrementally.
  [[nodiscard]] Rng split(std::uint64_t index) const;

  /// The raw engine state (checkpoint/resume support: a saved state plus
  /// from_state() reproduces the exact draw sequence from this point).
  [[nodiscard]] std::array<std::uint64_t, 4> state() const { return state_; }

  /// Reconstructs an engine from a state previously captured with
  /// state(). The restored engine's draw sequence continues bit-for-bit
  /// where the captured one left off.
  [[nodiscard]] static Rng from_state(
      const std::array<std::uint64_t, 4>& words) {
    Rng rng;
    rng.state_ = words;
    return rng;
  }

 private:
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace bgls

#include "util/parse.h"

#include <charconv>
#include <cmath>
#include <limits>

#include "util/error.h"

// This file is the one blessed home of raw numeric parsing — see the
// `naked-numeric-parse` rule in tools/lint/bgls_lint.py. It uses only
// std::from_chars (locale-independent, no errno), so even here the
// sto*/strto*/ato* family stays out.

namespace bgls::util {
namespace {

/// Consumes one optional leading '+' (strtod compatibility at the
/// call sites this helper replaced); from_chars itself rejects it.
std::string_view strip_plus(std::string_view text) {
  if (!text.empty() && text.front() == '+') text.remove_prefix(1);
  return text;
}

template <typename T>
std::optional<T> from_chars_exact(std::string_view text) {
  T value{};
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    return std::nullopt;
  }
  return value;
}

}  // namespace

std::optional<double> try_parse_double(std::string_view text) {
  const std::string_view body = strip_plus(text);
  if (body.empty() || body.front() == '+') return std::nullopt;
  const std::optional<double> value = from_chars_exact<double>(body);
  // Overflow and underflow both surface as result_out_of_range and are
  // rejected alike; literal "inf"/"nan" parse but fail the finiteness
  // policy — every call site wants a finite value.
  if (!value.has_value() || !std::isfinite(*value)) return std::nullopt;
  return value;
}

std::optional<std::int64_t> try_parse_i64(std::string_view text) {
  const std::string_view body = strip_plus(text);
  if (body.empty() || body.front() == '+') return std::nullopt;
  return from_chars_exact<std::int64_t>(body);
}

std::optional<std::uint64_t> try_parse_u64(std::string_view text) {
  // Digits only: from_chars<unsigned> would also accept nothing else,
  // but be explicit that '-' and '+' are rejected up front.
  if (text.empty() || text.front() == '-' || text.front() == '+') {
    return std::nullopt;
  }
  return from_chars_exact<std::uint64_t>(text);
}

std::optional<int> try_double_to_int(double value) {
  // The bounds check must run in doubles *before* the cast: casting an
  // out-of-range double to int is undefined behavior. Both int bounds
  // are exactly representable as doubles, and `value` is integral by
  // the time they are compared, so the range test is precise.
  if (!std::isfinite(value) || std::trunc(value) != value) {
    return std::nullopt;
  }
  constexpr double kMin = static_cast<double>(std::numeric_limits<int>::min());
  constexpr double kMax = static_cast<double>(std::numeric_limits<int>::max());
  if (value < kMin || value > kMax) return std::nullopt;
  return static_cast<int>(value);
}

namespace {

template <typename T, typename TryFn>
T parse_or_throw(TryFn&& try_parse, std::string_view text,
                 std::string_view what) {
  const std::optional<T> value = try_parse(text);
  if (!value.has_value()) {
    detail::throw_error<ParseError>("invalid ", what, " '", text, "'");
  }
  return *value;
}

}  // namespace

double parse_double(std::string_view text, std::string_view what) {
  return parse_or_throw<double>(try_parse_double, text, what);
}

std::int64_t parse_i64(std::string_view text, std::string_view what) {
  return parse_or_throw<std::int64_t>(try_parse_i64, text, what);
}

std::uint64_t parse_u64(std::string_view text, std::string_view what) {
  return parse_or_throw<std::uint64_t>(try_parse_u64, text, what);
}

}  // namespace bgls::util

/// \file parse.h
/// Checked numeric parsing for untrusted text.
///
/// Every surface that turns bytes into numbers — QASM angles, the
/// ndjson wire protocol, journal frames, checkpoint keys, CLI flags,
/// environment specs — goes through these helpers instead of the raw
/// std::sto*/strto*/ato* family. The raw calls silently accept
/// trailing garbage ("1.2.3" parses as 1.2), report failures as
/// opaque std::invalid_argument/std::out_of_range, and depend on
/// locale; the helpers reject empty input, trailing garbage, and
/// out-of-range values with a typed bgls::ParseError that names the
/// offending text. The custom lint (tools/lint/bgls_lint.py, rule
/// `naked-numeric-parse`) enforces that parse.cpp stays the only
/// translation unit calling the raw functions.
///
/// Accepted grammar (locale-independent, no surrounding whitespace):
///   try_parse_double — optional single leading '+', then the
///     std::from_chars general format ("1", "-0.5", ".5", "1e-3").
///     Non-finite results (overflow, "inf", "nan") are rejected.
///   try_parse_i64    — optional single leading '+', then an optional
///     '-' and decimal digits.
///   try_parse_u64    — decimal digits only.

#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace bgls::util {

/// Parses `text` as a finite double; nullopt on empty input, trailing
/// garbage, out-of-range, or a non-finite value.
[[nodiscard]] std::optional<double> try_parse_double(std::string_view text);

/// Parses `text` as a signed 64-bit decimal integer; nullopt on empty
/// input, trailing garbage, or out-of-range.
[[nodiscard]] std::optional<std::int64_t> try_parse_i64(std::string_view text);

/// Parses `text` as an unsigned 64-bit decimal integer (digits only —
/// no sign); nullopt on empty input, trailing garbage, or overflow.
[[nodiscard]] std::optional<std::uint64_t> try_parse_u64(
    std::string_view text);

/// Narrows a double to int when it is finite, integral-valued, and in
/// range; nullopt otherwise. Use for parsed sizes/indices where the
/// grammar produces a double (QASM expressions): a plain static_cast
/// of an out-of-range double is undefined behavior.
[[nodiscard]] std::optional<int> try_double_to_int(double value);

/// Throwing wrappers: bgls::ParseError "invalid <what> '<text>'" on
/// any deviation. `what` names the field for the error message.
[[nodiscard]] double parse_double(std::string_view text,
                                  std::string_view what = "number");
[[nodiscard]] std::int64_t parse_i64(std::string_view text,
                                     std::string_view what = "integer");
[[nodiscard]] std::uint64_t parse_u64(
    std::string_view text, std::string_view what = "non-negative integer");

}  // namespace bgls::util

#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace bgls {

Distribution normalize(const Counts& counts) {
  std::uint64_t total = 0;
  for (const auto& [bits, count] : counts) total += count;
  BGLS_REQUIRE(total > 0, "cannot normalize empty counts");
  Distribution dist;
  for (const auto& [bits, count] : counts) {
    dist[bits] = static_cast<double>(count) / static_cast<double>(total);
  }
  return dist;
}

double distribution_overlap(const Distribution& p, const Distribution& q) {
  double overlap = 0.0;
  for (const auto& [bits, pb] : p) {
    const auto it = q.find(bits);
    if (it != q.end()) overlap += std::min(pb, it->second);
  }
  return overlap;
}

double total_variation_distance(const Distribution& p, const Distribution& q) {
  double sum = 0.0;
  for (const auto& [bits, pb] : p) {
    const auto it = q.find(bits);
    sum += std::abs(pb - (it != q.end() ? it->second : 0.0));
  }
  for (const auto& [bits, qb] : q) {
    if (!p.contains(bits)) sum += qb;
  }
  return 0.5 * sum;
}

double classical_fidelity(const Distribution& p, const Distribution& q) {
  double bc = 0.0;
  for (const auto& [bits, pb] : p) {
    const auto it = q.find(bits);
    if (it != q.end()) bc += std::sqrt(pb * it->second);
  }
  return bc * bc;
}

ChiSquareResult chi_square(const Counts& observed, const Distribution& expected,
                           double min_expected) {
  std::uint64_t total = 0;
  for (const auto& [bits, count] : observed) total += count;
  BGLS_REQUIRE(total > 0, "chi_square needs observations");

  double pooled_expected = 0.0;
  std::uint64_t pooled_observed = 0;
  ChiSquareResult result;
  int cells = 0;
  for (const auto& [bits, prob] : expected) {
    const double exp_count = prob * static_cast<double>(total);
    const auto it = observed.find(bits);
    const double obs_count =
        it != observed.end() ? static_cast<double>(it->second) : 0.0;
    if (exp_count < min_expected) {
      pooled_expected += exp_count;
      pooled_observed += static_cast<std::uint64_t>(obs_count);
      continue;
    }
    const double delta = obs_count - exp_count;
    result.statistic += delta * delta / exp_count;
    ++cells;
  }
  if (pooled_expected >= min_expected) {
    const double delta =
        static_cast<double>(pooled_observed) - pooled_expected;
    result.statistic += delta * delta / pooled_expected;
    ++cells;
  }
  result.degrees_of_freedom = std::max(cells - 1, 1);
  return result;
}

double mean(std::span<const double> xs) {
  BGLS_REQUIRE(!xs.empty(), "mean of empty range");
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double ss = 0.0;
  for (double x : xs) ss += (x - m) * (x - m);
  return std::sqrt(ss / static_cast<double>(xs.size() - 1));
}

double median(std::vector<double> xs) {
  BGLS_REQUIRE(!xs.empty(), "median of empty range");
  const auto mid = xs.begin() + static_cast<std::ptrdiff_t>(xs.size() / 2);
  std::nth_element(xs.begin(), mid, xs.end());
  if (xs.size() % 2 == 1) return *mid;
  const double hi = *mid;
  const double lo = *std::max_element(xs.begin(), mid);
  return 0.5 * (lo + hi);
}

double log_log_slope(std::span<const double> xs, std::span<const double> ys) {
  BGLS_REQUIRE(xs.size() == ys.size() && xs.size() >= 2,
               "log_log_slope needs matching inputs with >= 2 points");
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  const double n = static_cast<double>(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    BGLS_REQUIRE(xs[i] > 0.0 && ys[i] > 0.0,
                 "log_log_slope needs positive values");
    const double lx = std::log(xs[i]);
    const double ly = std::log(ys[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
  }
  return (n * sxy - sx * sy) / (n * sxx - sx * sx);
}

}  // namespace bgls

#include "util/json_parser.h"

#include <cctype>
#include <optional>

#include "util/parse.h"

namespace bgls {
namespace {

/// Appends a Unicode code point as UTF-8.
void append_utf8(std::string& out, std::uint32_t cp) {
  if (cp < 0x80) {
    out.push_back(static_cast<char>(cp));
  } else if (cp < 0x800) {
    out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else if (cp < 0x10000) {
    out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else {
    out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  }
}

}  // namespace

/// Single-pass recursive-descent parser over the input view.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    detail::throw_error<ParseError>("JSON parse error at offset ", pos_, ": ",
                                    what);
  }

  void skip_whitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  // Containers nest through parse_value recursively; bound the depth
  // so hostile input ("[[[[…") raises ParseError instead of
  // overflowing the stack — this parser reads untrusted socket bytes
  // and journal files.
  static constexpr int kMaxDepth = 128;

  JsonValue parse_value() {
    if (++depth_ > kMaxDepth) fail("value nests too deeply");
    JsonValue value = parse_value_at_depth();
    --depth_;
    return value;
  }

  JsonValue parse_value_at_depth() {
    skip_whitespace();
    switch (peek()) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return parse_string_value();
      case 't':
      case 'f':
        return parse_bool();
      case 'n':
        if (!consume_literal("null")) fail("invalid literal");
        return JsonValue{};
      default:
        return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue value;
    value.kind_ = JsonValue::Kind::kObject;
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return value;
    }
    while (true) {
      skip_whitespace();
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      value.members_[std::move(key)] = parse_value();
      skip_whitespace();
      const char c = peek();
      ++pos_;
      if (c == '}') return value;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue value;
    value.kind_ = JsonValue::Kind::kArray;
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return value;
    }
    while (true) {
      value.items_.push_back(parse_value());
      skip_whitespace();
      const char c = peek();
      ++pos_;
      if (c == ']') return value;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  JsonValue parse_bool() {
    JsonValue value;
    value.kind_ = JsonValue::Kind::kBool;
    if (consume_literal("true")) {
      value.bool_ = true;
    } else if (consume_literal("false")) {
      value.bool_ = false;
    } else {
      fail("invalid literal");
    }
    return value;
  }

  JsonValue parse_string_value() {
    JsonValue value;
    value.kind_ = JsonValue::Kind::kString;
    value.string_ = parse_string();
    return value;
  }

  std::uint32_t parse_hex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    std::uint32_t cp = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      cp <<= 4;
      if (c >= '0' && c <= '9') {
        cp |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        cp |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        cp |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        fail("invalid \\u escape digit");
      }
    }
    return cp;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          std::uint32_t cp = parse_hex4();
          // Surrogate pair: a high surrogate must be followed by
          // \uDC00..\uDFFF forming one code point.
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            if (pos_ + 1 < text_.size() && text_[pos_] == '\\' &&
                text_[pos_ + 1] == 'u') {
              pos_ += 2;
              const std::uint32_t low = parse_hex4();
              if (low < 0xDC00 || low > 0xDFFF) fail("invalid surrogate pair");
              cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
            } else {
              fail("lone high surrogate");
            }
          }
          append_utf8(out, cp);
          break;
        }
        default:
          fail("invalid escape character");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    if (token.empty() || token == "-") fail("invalid number");

    JsonValue value;
    value.kind_ = JsonValue::Kind::kNumber;
    // Exact unsigned path first: plain digit runs keep full 64-bit
    // precision (seeds), everything else goes through double.
    if (token.find_first_not_of("0123456789") == std::string_view::npos) {
      const std::optional<std::uint64_t> exact = util::try_parse_u64(token);
      if (exact.has_value()) {
        value.unsigned_ = *exact;
        value.number_is_unsigned_ = true;
        value.number_ = static_cast<double>(value.unsigned_);
        return value;
      }
    }
    // Checked parse (util/parse.h): rejects trailing garbage and
    // non-finite results ("1e999") in one step, locale-independently.
    const std::optional<double> number = util::try_parse_double(token);
    if (!number.has_value()) fail("invalid number");
    value.number_ = *number;
    return value;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

JsonValue JsonValue::parse(std::string_view text) {
  return JsonParser(text).parse_document();
}

bool JsonValue::as_bool() const {
  BGLS_REQUIRE(kind_ == Kind::kBool, "JSON value is not a boolean");
  return bool_;
}

double JsonValue::as_double() const {
  BGLS_REQUIRE(kind_ == Kind::kNumber, "JSON value is not a number");
  return number_;
}

std::uint64_t JsonValue::as_u64() const {
  BGLS_REQUIRE(kind_ == Kind::kNumber, "JSON value is not a number");
  BGLS_REQUIRE(number_is_unsigned_,
               "JSON number is not a plain unsigned integer");
  return unsigned_;
}

const std::string& JsonValue::as_string() const {
  BGLS_REQUIRE(kind_ == Kind::kString, "JSON value is not a string");
  return string_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  BGLS_REQUIRE(kind_ == Kind::kArray, "JSON value is not an array");
  return items_;
}

const std::map<std::string, JsonValue>& JsonValue::members() const {
  BGLS_REQUIRE(kind_ == Kind::kObject, "JSON value is not an object");
  return members_;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  const auto it = members_.find(key);
  return it == members_.end() ? nullptr : &it->second;
}

std::uint64_t JsonValue::u64_or(const std::string& key,
                                std::uint64_t fallback) const {
  const JsonValue* value = find(key);
  return value == nullptr || value->is_null() ? fallback : value->as_u64();
}

std::string JsonValue::string_or(const std::string& key,
                                 std::string fallback) const {
  const JsonValue* value = find(key);
  return value == nullptr || value->is_null() ? fallback : value->as_string();
}

bool JsonValue::bool_or(const std::string& key, bool fallback) const {
  const JsonValue* value = find(key);
  return value == nullptr || value->is_null() ? fallback : value->as_bool();
}

}  // namespace bgls

/// \file bits.h
/// Bitstring conventions and helpers.
///
/// A measurement outcome on an n-qubit system is the bitstring
/// b0 b1 ... b_{n-1}. The library packs it into a 64-bit integer with
/// **qubit q stored at bit position q** (qubit 0 = least-significant
/// bit). Pretty printing emits b0 first, matching the paper's
/// "b0 b1 ... bn" notation and Cirq's default qubit ordering of
/// LineQubit ranges.
///
/// The gate-by-gate sampler only ever varies a bitstring over the
/// support of one gate (at most 3 qubits here), so candidate expansion
/// returns a small fixed-capacity buffer rather than allocating.

#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/error.h"

namespace bgls {

/// Packed measurement bitstring; qubit q lives at bit q.
using Bitstring = std::uint64_t;

/// Maximum number of qubits representable in a packed Bitstring.
inline constexpr int kMaxQubits = 64;

/// Maximum gate arity supported by the sampler (CCX/CSWAP are 3-qubit).
inline constexpr int kMaxGateArity = 3;

/// Returns bit `q` of `bits`.
[[nodiscard]] constexpr int get_bit(Bitstring bits, int q) {
  return static_cast<int>((bits >> q) & 1u);
}

/// Returns `bits` with bit `q` set to `value`.
[[nodiscard]] constexpr Bitstring with_bit(Bitstring bits, int q, int value) {
  const Bitstring mask = Bitstring{1} << q;
  return value ? (bits | mask) : (bits & ~mask);
}

/// Renders the n-qubit bitstring as "b0b1...b_{n-1}" (qubit 0 first).
[[nodiscard]] std::string to_string(Bitstring bits, int num_qubits);

/// Parses a "b0b1..." string produced by to_string.
[[nodiscard]] Bitstring from_string(const std::string& text);

/// Fixed-capacity candidate list produced by expanding a bitstring over a
/// gate support (2^arity entries, arity <= kMaxGateArity).
struct CandidateList {
  std::array<Bitstring, (1u << kMaxGateArity)> values{};
  int count = 0;

  [[nodiscard]] std::span<const Bitstring> span() const {
    return {values.data(), static_cast<std::size_t>(count)};
  }
};

/// Enumerates every bitstring obtained from `base` by varying the bits at
/// the qubits in `support` (all 2^|support| combinations, in the order
/// where support[0] is the least-significant varying bit).
[[nodiscard]] CandidateList expand_candidates(Bitstring base,
                                              std::span<const int> support);

/// Big-endian integer view of a bitstring (qubit 0 = most significant
/// digit), matching how Cirq's plot_state_histogram labels GHZ outcomes.
[[nodiscard]] std::uint64_t to_big_endian_index(Bitstring bits,
                                                int num_qubits);

/// Inverse of to_big_endian_index.
[[nodiscard]] Bitstring from_big_endian_index(std::uint64_t index,
                                              int num_qubits);

}  // namespace bgls

/// \file json_parser.h
/// Minimal recursive-descent JSON parser — the read-side counterpart of
/// util/json_writer.h, added for the service layer: the `bgls_serve`
/// daemon and `bgls_client` speak newline-delimited JSON over a socket
/// and need to parse requests/responses without an external dependency.
///
/// Supports the full JSON grammar (objects, arrays, strings with
/// escapes incl. \uXXXX, numbers, booleans, null). Numbers are kept
/// both as double and — when the token is a plain unsigned integer — as
/// an exact uint64_t, so 64-bit seeds round-trip without precision
/// loss. Malformed input throws bgls::ParseError with position info.

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/error.h"

namespace bgls {

/// An immutable parsed JSON value.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Parses one complete JSON document (trailing whitespace allowed,
  /// trailing garbage rejected). Throws ParseError on malformed input.
  [[nodiscard]] static JsonValue parse(std::string_view text);

  JsonValue() = default;  // null

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }

  /// Typed accessors; throw ValueError when the kind does not match.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_double() const;
  /// Exact for plain unsigned integer tokens up to 2^64-1; throws for
  /// negative, fractional, or out-of-range numbers.
  [[nodiscard]] std::uint64_t as_u64() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const std::vector<JsonValue>& items() const;
  [[nodiscard]] const std::map<std::string, JsonValue>& members() const;

  /// Object member lookup; nullptr when absent (or not an object).
  [[nodiscard]] const JsonValue* find(const std::string& key) const;

  // --- Defaulted member lookups for flat request objects ---------------
  [[nodiscard]] std::uint64_t u64_or(const std::string& key,
                                     std::uint64_t fallback) const;
  [[nodiscard]] std::string string_or(const std::string& key,
                                      std::string fallback) const;
  [[nodiscard]] bool bool_or(const std::string& key, bool fallback) const;

 private:
  friend class JsonParser;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::uint64_t unsigned_ = 0;
  bool number_is_unsigned_ = false;
  std::string string_;
  std::vector<JsonValue> items_;
  std::map<std::string, JsonValue> members_;
};

}  // namespace bgls

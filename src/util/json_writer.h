/// \file json_writer.h
/// Minimal streaming JSON writer for machine-readable bench output
/// (BENCH_*.json files tracked across PRs to follow the perf
/// trajectory). No external dependency; supports the subset the benches
/// need: nested objects/arrays, strings, bools, integers, and doubles
/// (non-finite doubles are emitted as null, which keeps the output
/// strictly valid JSON).

#pragma once

#include <cstdint>
#include <ostream>
#include <string_view>
#include <vector>

namespace bgls {

/// Streaming writer emitting pretty-printed JSON to an ostream.
///
///   JsonWriter json(out);
///   json.begin_object();
///   json.key("figure").value("fig2");
///   json.key("rows").begin_array();
///   ...
///   json.end_array().end_object();
///
/// The writer tracks nesting and comma placement; keys are only legal
/// inside objects, values only inside arrays or after a key.
///
/// Style::kCompact emits the same document on a single line with no
/// indentation — the framing the service layer's newline-delimited JSON
/// protocol needs (tools/bgls_serve), where one message is one line.
class JsonWriter {
 public:
  enum class Style { kPretty, kCompact };

  explicit JsonWriter(std::ostream& out, Style style = Style::kPretty)
      : out_(out), style_(style) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emits an object key; must be followed by exactly one value or
  /// container.
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view text);
  JsonWriter& value(const char* text) { return value(std::string_view(text)); }
  JsonWriter& value(bool flag);
  // One overload per standard integer width keeps calls with int,
  // int64_t, uint64_t, and size_t unambiguous on every LP64/LLP64
  // platform (size_t is `unsigned long` on Linux but `unsigned long
  // long` elsewhere).
  JsonWriter& value(long long number);
  JsonWriter& value(unsigned long long number);
  JsonWriter& value(int number) { return value(static_cast<long long>(number)); }
  JsonWriter& value(long number) { return value(static_cast<long long>(number)); }
  JsonWriter& value(unsigned number) {
    return value(static_cast<unsigned long long>(number));
  }
  JsonWriter& value(unsigned long number) {
    return value(static_cast<unsigned long long>(number));
  }
  JsonWriter& value(double number);
  JsonWriter& null();

 private:
  void before_value();
  void newline_indent();
  void write_escaped(std::string_view text);

  struct Scope {
    bool is_object = false;
    bool has_items = false;
  };
  std::ostream& out_;
  Style style_;
  std::vector<Scope> stack_;
  bool after_key_ = false;
};

}  // namespace bgls

/// \file stats.h
/// Statistics helpers shared by tests and the per-figure benches:
/// distribution distances ("overlap" in the paper's figures), descriptive
/// statistics, chi-square goodness of fit, and log-log slope fits used to
/// verify runtime-scaling shapes.

#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "util/bits.h"

namespace bgls {

/// Empirical counts over bitstrings (the output of a sampling run).
using Counts = std::map<Bitstring, std::uint64_t>;

/// Normalized probabilities over bitstrings.
using Distribution = std::map<Bitstring, double>;

/// Converts raw counts into a normalized empirical distribution.
[[nodiscard]] Distribution normalize(const Counts& counts);

/// Fractional overlap sum_b min(p_b, q_b) in [0, 1]; equals 1 iff the
/// distributions coincide. This is the "overlap attained" quantity plotted
/// in Figs. 4 and 5 of the paper (1 - total-variation distance).
[[nodiscard]] double distribution_overlap(const Distribution& p,
                                          const Distribution& q);

/// Total variation distance 0.5 * sum_b |p_b - q_b| in [0, 1].
[[nodiscard]] double total_variation_distance(const Distribution& p,
                                              const Distribution& q);

/// Classical (Bhattacharyya) fidelity (sum_b sqrt(p_b q_b))^2.
[[nodiscard]] double classical_fidelity(const Distribution& p,
                                        const Distribution& q);

/// Pearson chi-square statistic of observed counts against an expected
/// distribution; entries with expected probability < min_expected/total
/// are pooled. Returns the statistic and the pooled degrees of freedom.
struct ChiSquareResult {
  double statistic = 0.0;
  int degrees_of_freedom = 0;
};
[[nodiscard]] ChiSquareResult chi_square(const Counts& observed,
                                         const Distribution& expected,
                                         double min_expected = 5.0);

/// Arithmetic mean.
[[nodiscard]] double mean(std::span<const double> xs);

/// Sample standard deviation (n-1 denominator); 0 for fewer than 2 points.
[[nodiscard]] double stddev(std::span<const double> xs);

/// Median (copies and partially sorts).
[[nodiscard]] double median(std::vector<double> xs);

/// Least-squares slope of log(y) against log(x); used to check power-law
/// runtime scaling (e.g. near-linear MPS scaling in Fig. 7b). Requires
/// strictly positive inputs.
[[nodiscard]] double log_log_slope(std::span<const double> xs,
                                   std::span<const double> ys);

}  // namespace bgls

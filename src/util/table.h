/// \file table.h
/// Console rendering for the benchmark harness: aligned tables (the
/// "rows the paper reports") and ASCII bar charts standing in for the
/// paper's matplotlib figures.

#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/stats.h"

namespace bgls {

/// Simple aligned console table. Cells are strings; numeric helpers
/// format with sensible defaults.
class ConsoleTable {
 public:
  explicit ConsoleTable(std::vector<std::string> headers);

  /// Appends a row; must have the same number of cells as the header.
  void add_row(std::vector<std::string> cells);

  /// Formats a double with `precision` significant digits.
  [[nodiscard]] static std::string num(double value, int precision = 4);

  /// Formats seconds as a human-friendly duration (ns/us/ms/s).
  [[nodiscard]] static std::string duration(double seconds);

  /// Renders the table with a separator under the header.
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a horizontal ASCII bar chart of labelled non-negative values
/// (used for measurement histograms, mirroring cirq.plot_state_histogram).
void print_bar_chart(std::ostream& os, const std::vector<std::string>& labels,
                     const std::vector<double>& values, int width = 50);

/// Prints a sampled-counts histogram keyed by bitstring.
void print_histogram(std::ostream& os, const Counts& counts, int num_qubits,
                     int width = 50);

}  // namespace bgls

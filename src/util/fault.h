/// \file fault.h
/// Deterministic fault injection for crash-safety tests.
///
/// Named fault points are compiled into the journal writer, the socket
/// IO loops, and the engine's shard execution. A point is inert until
/// armed — by the environment variable
///
///   BGLS_FAULT_INJECT=point:prob:seed[,point:prob:seed...]
///
/// (parsed once, lazily; reload_from_env() re-reads it) or
/// programmatically via arm(). An armed point draws from its own
/// seeded Rng on every should_fail() call, so a given (prob, seed)
/// fires at a reproducible subsequence of call sites — tests can force
/// torn journal writes, short socket writes / EINTR reads, and
/// mid-shard aborts deterministically.
///
/// The disarmed fast path is one relaxed atomic load, so production
/// binaries pay nothing for the hooks.

#pragma once

#include <cstdint>
#include <string_view>

#include "util/error.h"

namespace bgls {

/// Thrown by the "shard_run" fault point to simulate a transient
/// mid-shard failure (the scheduler's retry path treats it like any
/// other job failure).
class FaultInjectedError : public Error {
 public:
  using Error::Error;
};

namespace fault {

/// True when the named point is armed and its coin flip fires this
/// call. Never throws; unarmed points always return false.
[[nodiscard]] bool should_fail(std::string_view point) noexcept;

/// How many times the named point has fired since it was (re)armed.
[[nodiscard]] std::uint64_t fire_count(std::string_view point) noexcept;

/// Throws FaultInjectedError when should_fail(point) fires — the
/// mid-shard abort hook the sampling loops call.
void throw_if_fails(std::string_view point);

/// Arms a point: each should_fail(point) fires with `probability`
/// drawn from an Rng seeded with `seed`. `max_fires` bounds the total
/// fires (0 = unlimited) — retry tests arm one guaranteed failure with
/// (1.0, seed, 1).
void arm(std::string_view point, double probability, std::uint64_t seed,
         std::uint64_t max_fires = 0);

/// Disarms every point (tests call this between cases).
void disarm_all();

/// Re-parses BGLS_FAULT_INJECT, replacing the armed set. Malformed
/// entries are ignored.
void reload_from_env();

}  // namespace fault

}  // namespace bgls

/// \file error.h
/// Typed exceptions and precondition checks used across the library.
///
/// Follows the C++ Core Guidelines: throw on contract violations with a
/// descriptive message; never abort. All library errors derive from
/// bgls::Error so callers can catch one type.

#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace bgls {

/// Base class of every exception thrown by the library.
class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown when an argument value violates a documented precondition
/// (bad qubit index, non-normalized probabilities, invalid gate arity, ...).
class ValueError : public Error {
 public:
  using Error::Error;
};

/// Thrown when a parsed input (e.g. OpenQASM source) is malformed.
class ParseError : public Error {
 public:
  using Error::Error;
};

/// Thrown when an operation is not supported by a given state
/// representation (e.g. a non-Clifford gate on a stabilizer state).
class UnsupportedOperationError : public Error {
 public:
  using Error::Error;
};

namespace detail {

template <typename ExceptionT, typename... Parts>
[[noreturn]] void throw_error(Parts&&... parts) {
  std::ostringstream oss;
  (oss << ... << parts);
  throw ExceptionT(oss.str());
}

}  // namespace detail

/// Checks a precondition and throws bgls::ValueError with the provided
/// message parts when it does not hold.
#define BGLS_REQUIRE(cond, ...)                                        \
  do {                                                                 \
    if (!(cond)) {                                                     \
      ::bgls::detail::throw_error<::bgls::ValueError>(                 \
          "precondition failed: " #cond " — ", __VA_ARGS__);           \
    }                                                                  \
  } while (false)

}  // namespace bgls

/// \file registry.h
/// Name/id lookup of runtime backends.
///
/// The registry is the runtime analogue of the paper's pluggable
/// simulation triple: library adapters are preloaded in the global()
/// instance, and user code can register its own Backend subclasses
/// under new names — after which every Session (and the bgls_run CLI's
/// --backend flag) can route requests to them by string.
///
/// Thread-safe: registration and lookup may race from any threads.

#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "api/backend.h"

namespace bgls {

/// Registry of named Backend instances.
class BackendRegistry {
 public:
  BackendRegistry() = default;
  BackendRegistry(const BackendRegistry&) = delete;
  BackendRegistry& operator=(const BackendRegistry&) = delete;

  /// Registers `backend` under backend->name() plus the given aliases
  /// (all matched case-insensitively). Throws ValueError when any name
  /// is already taken — shadowing a backend silently would change what
  /// existing requests run on.
  void register_backend(std::shared_ptr<Backend> backend,
                        std::vector<std::string> aliases = {});

  /// The backend registered under `name` (or an alias); nullptr when
  /// unknown.
  [[nodiscard]] std::shared_ptr<Backend> find(std::string_view name) const;

  /// The first registered backend with this id; nullptr when none (and
  /// always for kAuto).
  [[nodiscard]] std::shared_ptr<Backend> find(BackendId id) const;

  /// find() or throw ValueError listing the registered names.
  [[nodiscard]] std::shared_ptr<Backend> require(std::string_view name) const;
  [[nodiscard]] std::shared_ptr<Backend> require(BackendId id) const;

  /// Primary names in registration order.
  [[nodiscard]] std::vector<std::string> names() const;

  /// The process-wide registry, preloaded with the four library
  /// adapters: statevector (alias sv), densitymatrix (aliases dm,
  /// density_matrix), stabilizer (alias ch), mps.
  [[nodiscard]] static BackendRegistry& global();

 private:
  struct Entry {
    std::shared_ptr<Backend> backend;
    std::string primary_name;  // lowercase
    std::vector<std::string> all_names;  // lowercase, primary first
  };

  [[nodiscard]] const Entry* find_entry_locked(std::string_view lower) const;

  mutable std::mutex mutex_;
  std::vector<Entry> entries_;
};

}  // namespace bgls

/// \file adapters.h
/// bgls::Backend adapters over the four shipped state representations.
///
/// StateBackend<State> is the bridge between the erased interface and
/// the zero-overhead templated core: its run()/run_batch() construct an
/// ordinary Simulator<State>/BatchEngine<State> with the request's
/// options and delegate, so a Session run is bit-identical to the
/// corresponding direct templated run for the same seed — the erased
/// layer adds one virtual dispatch per *request*, never per gate. The
/// type-erased triple (create_state/apply_op/compute_probability) and
/// collapse route to each backend's native hooks.
///
/// Concrete adapters:
///  - StateVectorBackend    — dense amplitudes, any circuit ≤ 30 qubits;
///  - DensityMatrixBackend  — dense ρ, exact channel ground truth ≤ 12;
///  - StabilizerBackend     — CH form; pure-Clifford circuits run the
///    exact native hooks, Clifford+Rz/T circuits swap in the
///    sum-over-Cliffords hooks (Sec. 4.2) with per-trajectory sampling;
///  - MpsBackend            — tensor networks, ≤ 2-qubit gates, wide
///    low-entanglement circuits.
///
/// All adapters are open for subclassing: override name()/hooks to
/// register a variant (api/registry.h) — the C++ analogue of handing
/// the Python package a custom simulation triple.

#pragma once

#include <algorithm>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "api/backend.h"
#include "core/simulator.h"
#include "densitymatrix/state.h"
#include "engine/engine.h"
#include "mps/state.h"
#include "stabilizer/ch_form.h"
#include "stabilizer/near_clifford.h"
#include "statevector/state.h"

namespace bgls {

/// Generic adapter: implements the whole Backend contract for any State
/// usable with Simulator<State>; subclasses supply the initial state,
/// capabilities, and (optionally) custom hooks.
template <typename State>
class StateBackend : public Backend {
 public:
  // --- Type-erased triple + collapse ------------------------------------

  [[nodiscard]] AnyState create_state(const RunRequest& request,
                                      int num_qubits) const override {
    return AnyState(make_state(request, num_qubits));
  }

  void apply_op(const Operation& op, AnyState& state,
                Rng& rng) const override {
    apply_erased(op, state.template get<State>(), rng);
  }

  [[nodiscard]] double compute_probability(const AnyState& state,
                                           Bitstring b) const override {
    // ADL: each backend's native compute_probability hook.
    return bgls::compute_probability(state.template get<State>(), b);
  }

  void collapse(AnyState& state, std::span<const Qubit> qubits,
                Bitstring bits) const override {
    State& s = state.template get<State>();
    if constexpr (requires { s.project(qubits, bits); }) {
      s.project(qubits, bits);
    } else {
      detail::throw_error<UnsupportedOperationError>(
          "backend '", name(), "' state type does not support collapse");
    }
  }

  // --- Bulk entry points -------------------------------------------------

  [[nodiscard]] RunResult run(const RunRequest& request) const override {
    require_runnable(request.circuit, "");
    Simulator<State> simulator = make_simulator(request, request.circuit);
    RunResult out;
    out.backend_id = id();
    out.backend_name = name();
    // The seed overload constructs Rng(seed) exactly like a direct
    // templated run, so records match bit for bit. repetitions == 0
    // still validates and yields the declared-keys empty Result.
    out.measurements =
        simulator.run(request.circuit, request.repetitions, request.seed);
    out.stats = simulator.last_run_stats();
    return out;
  }

  [[nodiscard]] std::vector<RunResult> run_batch(
      std::span<const Circuit> circuits,
      const RunRequest& request) const override {
    std::vector<RunResult> results;
    if (circuits.empty()) return results;
    for (std::size_t i = 0; i < circuits.size(); ++i) {
      require_runnable(circuits[i],
                       " (batch circuit #" + std::to_string(i) + ")");
    }
    BatchEngine<State> engine(make_batch_simulator(request, circuits));
    Rng rng(request.seed);
    std::vector<Result> merged =
        engine.run_batch(circuits, request.repetitions, rng);
    results.reserve(merged.size());
    for (Result& result : merged) {
      RunResult out;
      out.backend_id = id();
      out.backend_name = name();
      out.measurements = std::move(result);
      // Engine counters are merged across the whole batch; every
      // result of the batch shares them.
      out.stats = engine.last_run_stats();
      results.push_back(std::move(out));
    }
    return results;
  }

  [[nodiscard]] bool can_run(const Circuit& circuit,
                             std::string* reason) const override {
    const BackendCapabilities caps = capabilities();
    const auto fail = [&](std::string why) {
      if (reason != nullptr) *reason = std::move(why);
      return false;
    };
    if (circuit.is_parameterized()) {
      return fail("circuit has unresolved parameters; resolve() it first");
    }
    const int n = std::max(1, circuit.num_qubits());
    if (n > caps.max_qubits) {
      return fail(name() + " supports at most " +
                  std::to_string(caps.max_qubits) + " qubits; circuit uses " +
                  std::to_string(n));
    }
    if (!caps.supports_mid_circuit_measurement &&
        circuit.has_measurements() && !circuit.measurements_are_terminal()) {
      return fail(name() + " does not support mid-circuit measurements");
    }
    for (const auto& op : circuit.all_operations()) {
      const Gate& gate = op.gate();
      if (op.is_classically_controlled() && !caps.supports_classical_control) {
        return fail(name() + " does not support classically-controlled " +
                    op.to_string());
      }
      if (gate.is_measurement()) continue;
      if (gate.is_channel() && !caps.supports_channels) {
        return fail(name() + " does not support channels (" + op.to_string() +
                    ")");
      }
      if (gate.arity() > caps.max_gate_arity) {
        return fail(name() + " applies gates of at most " +
                    std::to_string(caps.max_gate_arity) + " qubits; " +
                    op.to_string() + " has " + std::to_string(gate.arity()) +
                    " (decompose_to_arity() first)");
      }
      std::string gate_reason;
      if (!supports_gate(op, &gate_reason)) return fail(std::move(gate_reason));
    }
    return true;
  }

 protected:
  /// A fresh |request.initial_state⟩ of this representation.
  [[nodiscard]] virtual State make_state(const RunRequest& request,
                                         int num_qubits) const = 0;

  /// The simulator a run of `circuit` dispatches into; the default uses
  /// the backend's native ADL hooks and the request's options verbatim.
  [[nodiscard]] virtual Simulator<State> make_simulator(
      const RunRequest& request, const Circuit& circuit) const {
    return Simulator<State>(
        make_state(request, std::max(1, circuit.num_qubits())),
        request.simulator_options());
  }

  /// The prototype simulator for a run_batch (one simulator serves the
  /// whole batch, so hook choices must be valid for every circuit).
  [[nodiscard]] virtual Simulator<State> make_batch_simulator(
      const RunRequest& request, std::span<const Circuit> circuits) const {
    return make_simulator(request, circuits.front());
  }

  /// The type-erased apply_op ingredient; defaults to the native hook.
  virtual void apply_erased(const Operation& op, State& state,
                            Rng& rng) const {
    // ADL: each backend's native apply_op hook.
    bgls::apply_op(op, state, rng);
  }

  /// Per-gate eligibility beyond arity/channel checks (the stabilizer
  /// adapter restricts to near-Clifford support here).
  [[nodiscard]] virtual bool supports_gate(const Operation& op,
                                           std::string* reason) const {
    (void)op;
    (void)reason;
    return true;
  }

  /// Throws UnsupportedOperationError with the can_run reason.
  void require_runnable(const Circuit& circuit,
                        const std::string& context) const {
    std::string reason;
    if (!can_run(circuit, &reason)) {
      detail::throw_error<UnsupportedOperationError>(
          "backend '", name(), "' cannot run this circuit", context, ": ",
          reason);
    }
  }
};

/// Dense statevector adapter (statevector/state.h).
class StateVectorBackend : public StateBackend<StateVectorState> {
 public:
  [[nodiscard]] std::string name() const override { return "statevector"; }
  [[nodiscard]] BackendId id() const override {
    return BackendId::kStateVector;
  }
  [[nodiscard]] BackendCapabilities capabilities() const override {
    BackendCapabilities caps;
    caps.max_qubits = 30;
    caps.max_gate_arity = 3;
    caps.supports_channels = true;
    caps.supports_mid_circuit_measurement = true;
    caps.supports_classical_control = true;
    return caps;
  }

 protected:
  [[nodiscard]] StateVectorState make_state(const RunRequest& request,
                                            int num_qubits) const override {
    return StateVectorState(num_qubits, request.initial_state);
  }
};

/// Dense density-matrix adapter (densitymatrix/state.h).
class DensityMatrixBackend : public StateBackend<DensityMatrixState> {
 public:
  [[nodiscard]] std::string name() const override { return "densitymatrix"; }
  [[nodiscard]] BackendId id() const override {
    return BackendId::kDensityMatrix;
  }
  [[nodiscard]] BackendCapabilities capabilities() const override {
    BackendCapabilities caps;
    caps.max_qubits = 12;
    caps.max_gate_arity = 3;
    caps.supports_channels = true;
    caps.supports_mid_circuit_measurement = true;
    caps.supports_classical_control = true;
    return caps;
  }

 protected:
  [[nodiscard]] DensityMatrixState make_state(const RunRequest& request,
                                              int num_qubits) const override {
    return DensityMatrixState(num_qubits, request.initial_state);
  }
};

/// CH-form stabilizer adapter (stabilizer/ch_form.h). Pure-Clifford
/// circuits run the exact native hooks (with dictionary batching);
/// circuits with Rz/Phase/T/T† swap in the sum-over-Cliffords hooks of
/// Sec. 4.2, which sample one stochastic Clifford branch per repetition
/// — approximate for non-Clifford angles, hence
/// capabilities().exact_for_all_supported == false.
class StabilizerBackend : public StateBackend<CHState> {
 public:
  [[nodiscard]] std::string name() const override { return "stabilizer"; }
  [[nodiscard]] BackendId id() const override { return BackendId::kStabilizer; }
  [[nodiscard]] BackendCapabilities capabilities() const override {
    BackendCapabilities caps;
    caps.max_qubits = 63;
    caps.max_gate_arity = 2;
    caps.supports_mid_circuit_measurement = true;
    caps.supports_classical_control = true;
    caps.clifford_gates_only = true;
    caps.near_clifford_rotations = true;
    caps.exact_for_all_supported = false;
    return caps;
  }

  /// True when every non-measurement gate is Clifford (the exact,
  /// dictionary-batched regime).
  [[nodiscard]] static bool is_pure_clifford(const Circuit& circuit) {
    for (const auto& op : circuit.all_operations()) {
      const Gate& gate = op.gate();
      if (!gate.is_measurement() && !gate.is_clifford()) return false;
    }
    return true;
  }

 protected:
  [[nodiscard]] CHState make_state(const RunRequest& request,
                                   int num_qubits) const override {
    return CHState(num_qubits, request.initial_state);
  }

  [[nodiscard]] Simulator<CHState> make_simulator(
      const RunRequest& request, const Circuit& circuit) const override {
    if (is_pure_clifford(circuit)) {
      return StateBackend<CHState>::make_simulator(request, circuit);
    }
    return make_near_clifford_simulator(request,
                                        std::max(1, circuit.num_qubits()));
  }

  [[nodiscard]] Simulator<CHState> make_batch_simulator(
      const RunRequest& request,
      std::span<const Circuit> circuits) const override {
    // One prototype serves the whole batch: the near-Clifford hooks are
    // needed as soon as any circuit carries a non-Clifford rotation
    // (they apply Clifford gates exactly, so mixing is still correct).
    const bool all_clifford =
        std::all_of(circuits.begin(), circuits.end(),
                    [](const Circuit& c) { return is_pure_clifford(c); });
    if (all_clifford) {
      return StateBackend<CHState>::make_simulator(request, circuits.front());
    }
    return make_near_clifford_simulator(
        request, std::max(1, circuits.front().num_qubits()));
  }

  void apply_erased(const Operation& op, CHState& state,
                    Rng& rng) const override {
    act_on_near_clifford(op, state, rng);
  }

  [[nodiscard]] bool supports_gate(const Operation& op,
                                   std::string* reason) const override {
    if (has_near_clifford_support(op)) return true;
    if (reason != nullptr) {
      *reason = name() + " supports Clifford gates plus Rz/Phase/T/T† " +
                "rotations; cannot apply " + op.to_string();
    }
    return false;
  }

 private:
  [[nodiscard]] Simulator<CHState> make_near_clifford_simulator(
      const RunRequest& request, int num_qubits) const {
    SimulatorOptions options = request.simulator_options();
    // Every repetition must explore a fresh stochastic Clifford branch;
    // the dictionary-batched path would evolve (and freeze) a single
    // branch for all samples, so it is forced off here.
    options.disable_sample_parallelization = true;
    return Simulator<CHState>(
        make_state(request, num_qubits),
        [](const Operation& op, CHState& state, Rng& rng) {
          act_on_near_clifford(op, state, rng);
        },
        [](const CHState& state, Bitstring b) { return state.probability(b); },
        options);
  }
};

/// Matrix-product-state adapter (mps/state.h); honors
/// RunRequest::mps_options for bond truncation.
class MpsBackend : public StateBackend<MPSState> {
 public:
  [[nodiscard]] std::string name() const override { return "mps"; }
  [[nodiscard]] BackendId id() const override { return BackendId::kMps; }
  [[nodiscard]] BackendCapabilities capabilities() const override {
    BackendCapabilities caps;
    caps.max_qubits = 63;
    caps.max_gate_arity = 2;
    caps.supports_channels = true;
    caps.supports_mid_circuit_measurement = true;
    caps.supports_classical_control = true;
    return caps;
  }

 protected:
  [[nodiscard]] MPSState make_state(const RunRequest& request,
                                    int num_qubits) const override {
    return MPSState(num_qubits, request.mps_options, request.initial_state);
  }
};

/// Factory helpers (one fresh instance each; the global registry keeps
/// its own singletons).
[[nodiscard]] std::shared_ptr<Backend> make_statevector_backend();
[[nodiscard]] std::shared_ptr<Backend> make_densitymatrix_backend();
[[nodiscard]] std::shared_ptr<Backend> make_stabilizer_backend();
[[nodiscard]] std::shared_ptr<Backend> make_mps_backend();

}  // namespace bgls

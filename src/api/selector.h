/// \file selector.h
/// Automatic backend selection for BackendId::kAuto requests.
///
/// The gate-by-gate algorithm's selling point (Bravyi–Gosset–Liu; the
/// paper's Sec. 4) is that the same sampling loop runs over whichever
/// state representation is cheapest for the circuit at hand:
/// polynomial stabilizer simulation when the circuit is Clifford,
/// tensor networks when entanglement stays low, dense amplitudes
/// otherwise, and a density matrix when channels need exact small-n
/// ground truth. profile_circuit() extracts the routing features in one
/// pass; BackendSelector turns them into a choice with a stated reason.
///
/// Selection rules, in precedence order:
///  1. pure Clifford (no channels)            → stabilizer (exact, poly);
///  2. channel-bearing                        → densitymatrix when the
///     register is small enough, else the statevector trajectory path;
///  3. wider than the statevector limit       → mps (only dense option);
///  4. 1D nearest-neighbor, low entangling-gate density, wide enough
///     that dense amplitudes start to hurt    → mps;
///  5. everything else                        → statevector.

#pragma once

#include <cstddef>
#include <string>

#include "api/run_types.h"
#include "circuit/circuit.h"

namespace bgls {

/// Routing features of a circuit, extracted in one pass.
struct CircuitProfile {
  int num_qubits = 0;
  std::size_t num_operations = 0;
  /// Largest non-measurement gate arity.
  int max_gate_arity = 0;
  /// Every non-measurement gate is Clifford.
  bool clifford_only = true;
  /// Clifford plus Rz/Phase/T/T† rotations (the sum-over-Cliffords
  /// regime of Sec. 4.2).
  bool near_clifford = true;
  bool has_channels = false;
  bool has_mid_circuit_measurements = false;
  bool has_classical_control = false;
  /// Non-measurement operations touching ≥ 2 qubits (each costs an MPS
  /// contraction + SVD and is what grows bond dimension).
  std::size_t entangling_gates = 0;
  /// Every multi-qubit operation acts on adjacent qubit ids |i-j| == 1
  /// (the chain topology MPS handles without long-range bonds).
  bool nearest_neighbor_1d = true;

  /// Entangling-gate density: entangling gates per qubit — a cheap
  /// proxy for how fast bond dimension can grow.
  [[nodiscard]] double entangling_gates_per_qubit() const {
    return num_qubits == 0
               ? 0.0
               : static_cast<double>(entangling_gates) / num_qubits;
  }
};

/// Extracts the routing features of `circuit`.
[[nodiscard]] CircuitProfile profile_circuit(const Circuit& circuit);

/// Picks a backend for a circuit according to the rules above.
class BackendSelector {
 public:
  /// Tunable routing boundaries.
  struct Thresholds {
    /// Densitymatrix costs 4^n; above this the trajectory path wins.
    int max_density_matrix_qubits = 10;
    /// Dense amplitude limit (StateVectorState supports ≤ 30).
    int max_statevector_qubits = 30;
    /// CH-form register limit (bit-packed rows).
    int max_stabilizer_qubits = 63;
    /// Below this width dense amplitudes are cheap enough that MPS
    /// bookkeeping isn't worth it.
    int min_mps_qubits = 12;
    /// 1D circuits with at most this many entangling gates per qubit
    /// route to MPS (low expected bond growth).
    double max_mps_entangling_gates_per_qubit = 3.0;
  };

  /// The choice plus a human-readable justification (surfaced in
  /// RunResult::selection_reason).
  struct Selection {
    BackendId id = BackendId::kStateVector;
    std::string reason;
  };

  BackendSelector() = default;
  explicit BackendSelector(Thresholds thresholds) : thresholds_(thresholds) {}

  [[nodiscard]] const Thresholds& thresholds() const { return thresholds_; }

  /// Profiles and selects. Throws UnsupportedOperationError when no
  /// shipped representation can run the circuit.
  [[nodiscard]] Selection select(const Circuit& circuit) const;

  /// Selects from an existing profile.
  [[nodiscard]] Selection select(const CircuitProfile& profile) const;

 private:
  Thresholds thresholds_;
};

}  // namespace bgls

/// \file selector.h
/// Automatic backend selection for BackendId::kAuto requests.
///
/// The gate-by-gate algorithm's selling point (Bravyi–Gosset–Liu; the
/// paper's Sec. 4) is that the same sampling loop runs over whichever
/// state representation is cheapest for the circuit at hand:
/// polynomial stabilizer simulation when the circuit is Clifford,
/// tensor networks when entanglement stays low, dense amplitudes
/// otherwise, and a density matrix when channels need exact small-n
/// ground truth. profile_circuit() extracts the routing features in one
/// pass; BackendSelector turns them into a choice with a stated reason.
///
/// Selection rules, in precedence order:
///  1. pure Clifford (no channels)            → stabilizer (exact, poly);
///  2. channel-bearing                        → densitymatrix or the
///     statevector trajectory path, whichever the CostModel predicts
///     cheaper for the requested repetitions (exact one-pass 4^n vs
///     reps × 2^n re-evolutions — DM while 2^n ≤ reps);
///  3. wider than the statevector limit       → mps (only dense option);
///  4. 1D nearest-neighbor with arity ≤ 2     → mps when the CostModel
///     predicts its n·χ³ contractions cheaper than 2^n amplitudes;
///  5. everything else                        → statevector.
///
/// Rules 1 and 3 are structural (capability limits); rules 2 and 4 are
/// the former hard-coded qubit cutoffs (max_density_matrix_qubits,
/// min_mps_qubits, entangling-density ceiling) replaced by predicted-
/// cost comparisons fitted from the BENCH artifacts (service/cost.h).
/// At the default 1024 repetitions the cost comparisons reproduce the
/// old boundaries exactly.

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "api/run_types.h"
#include "circuit/circuit.h"
#include "service/cost.h"

namespace bgls {

/// Routing features of a circuit, extracted in one pass.
struct CircuitProfile {
  int num_qubits = 0;
  std::size_t num_operations = 0;
  /// Largest non-measurement gate arity.
  int max_gate_arity = 0;
  /// Every non-measurement gate is Clifford.
  bool clifford_only = true;
  /// Clifford plus Rz/Phase/T/T† rotations (the sum-over-Cliffords
  /// regime of Sec. 4.2).
  bool near_clifford = true;
  bool has_channels = false;
  bool has_mid_circuit_measurements = false;
  bool has_classical_control = false;
  /// Non-measurement operations touching ≥ 2 qubits (each costs an MPS
  /// contraction + SVD and is what grows bond dimension).
  std::size_t entangling_gates = 0;
  /// Every multi-qubit operation acts on adjacent qubit ids |i-j| == 1
  /// (the chain topology MPS handles without long-range bonds).
  bool nearest_neighbor_1d = true;

  /// Entangling-gate density: entangling gates per qubit — a cheap
  /// proxy for how fast bond dimension can grow.
  [[nodiscard]] double entangling_gates_per_qubit() const {
    return num_qubits == 0
               ? 0.0
               : static_cast<double>(entangling_gates) / num_qubits;
  }
};

/// Extracts the routing features of `circuit`.
[[nodiscard]] CircuitProfile profile_circuit(const Circuit& circuit);

/// Picks a backend for a circuit according to the rules above.
class BackendSelector {
 public:
  /// Structural capability limits. The former performance cutoffs
  /// (max_density_matrix_qubits, min_mps_qubits, and the entangling-
  /// density ceiling) are gone — those boundaries now fall out of the
  /// CostModel's predicted-cost comparisons.
  struct Thresholds {
    /// Dense amplitude limit (StateVectorState supports ≤ 30).
    int max_statevector_qubits = 30;
    /// CH-form register limit (bit-packed rows).
    int max_stabilizer_qubits = 63;
  };

  /// The choice plus a human-readable justification (surfaced in
  /// RunResult::selection_reason).
  struct Selection {
    BackendId id = BackendId::kStateVector;
    std::string reason;
  };

  /// Repetition count the single-argument select() assumes — the
  /// service protocol's default submission size.
  static constexpr std::uint64_t kDefaultRepetitions = 1024;

  BackendSelector() = default;
  explicit BackendSelector(Thresholds thresholds,
                           service::CostModel cost_model = {})
      : thresholds_(thresholds), cost_model_(std::move(cost_model)) {}

  [[nodiscard]] const Thresholds& thresholds() const { return thresholds_; }

  /// The fitted model behind rules 2 and 4 (and cost-aware admission).
  [[nodiscard]] const service::CostModel& cost_model() const {
    return cost_model_;
  }

  /// Profiles and selects. Throws UnsupportedOperationError when no
  /// shipped representation can run the circuit. Repetitions matter:
  /// the DM-vs-trajectories and MPS-vs-dense boundaries are predicted-
  /// cost comparisons, and trajectory cost scales with repetitions.
  [[nodiscard]] Selection select(
      const Circuit& circuit,
      std::uint64_t repetitions = kDefaultRepetitions) const;

  /// Selects from an existing profile.
  [[nodiscard]] Selection select(
      const CircuitProfile& profile,
      std::uint64_t repetitions = kDefaultRepetitions) const;

 private:
  Thresholds thresholds_;
  service::CostModel cost_model_;
};

}  // namespace bgls

/// \file backend.h
/// The type-erased runtime backend interface.
///
/// The paper's central API point (Sec. 3.1) is that a Simulator is
/// assembled from three runtime ingredients — an initial state of *any*
/// representation, an `apply_op` function, and a `compute_probability`
/// function. The templated core reproduces that with compile-time
/// polymorphism (Simulator<State>); this module re-exposes it with
/// runtime polymorphism so one call site can route between state
/// representations per request, the shape qsim/Cirq give their
/// interchangeable simulation strategies:
///
///  - AnyState: a copyable type-erased state handle;
///  - Backend: the abstract strategy — the BGLS triple (create state,
///    apply op, compute probability) plus measurement collapse,
///    capability flags for routing, and bulk run()/run_batch() entry
///    points that dispatch *into* the zero-overhead templated
///    Simulator/BatchEngine, so the erased layer costs one virtual call
///    per request, not per gate.
///
/// Library adapters for the four shipped representations live in
/// api/adapters.h; user code can subclass Backend (or an adapter)
/// directly and register it under a name (api/registry.h) — the C++
/// analogue of handing the Python package a custom
/// (state, apply_op, compute_probability) triple.

#pragma once

#include <memory>
#include <span>
#include <string>
#include <typeinfo>
#include <vector>

#include "api/run_types.h"
#include "util/error.h"
#include "util/rng.h"

namespace bgls {

/// Copyable type-erased simulation state. Holds any copy-constructible
/// State; access requires naming the exact stored type (checked at
/// runtime). Copying clones the underlying state — the same semantics
/// the templated sampler relies on for per-trajectory copies.
class AnyState {
 public:
  AnyState() = default;

  template <typename State>
  explicit AnyState(State state)
      : impl_(std::make_unique<Model<State>>(std::move(state))) {}

  AnyState(const AnyState& other)
      : impl_(other.impl_ ? other.impl_->clone() : nullptr) {}
  AnyState& operator=(const AnyState& other) {
    if (this != &other) impl_ = other.impl_ ? other.impl_->clone() : nullptr;
    return *this;
  }
  AnyState(AnyState&&) noexcept = default;
  AnyState& operator=(AnyState&&) noexcept = default;

  /// True when a state is held.
  [[nodiscard]] bool has_value() const { return impl_ != nullptr; }

  /// True when the held state is exactly `State`.
  template <typename State>
  [[nodiscard]] bool holds() const {
    return impl_ != nullptr && impl_->type() == typeid(State);
  }

  /// The held state; throws ValueError when empty or of another type.
  template <typename State>
  [[nodiscard]] State& get() {
    require_type(typeid(State));
    return static_cast<Model<State>*>(impl_.get())->state;
  }
  template <typename State>
  [[nodiscard]] const State& get() const {
    require_type(typeid(State));
    return static_cast<const Model<State>*>(impl_.get())->state;
  }

 private:
  struct Concept {
    virtual ~Concept() = default;
    [[nodiscard]] virtual std::unique_ptr<Concept> clone() const = 0;
    [[nodiscard]] virtual const std::type_info& type() const = 0;
  };

  template <typename State>
  struct Model final : Concept {
    explicit Model(State s) : state(std::move(s)) {}
    [[nodiscard]] std::unique_ptr<Concept> clone() const override {
      return std::make_unique<Model>(state);
    }
    [[nodiscard]] const std::type_info& type() const override {
      return typeid(State);
    }
    State state;
  };

  void require_type(const std::type_info& expected) const {
    BGLS_REQUIRE(impl_ != nullptr, "AnyState is empty");
    BGLS_REQUIRE(impl_->type() == expected, "AnyState holds '",
                 impl_->type().name(), "', not the requested '",
                 expected.name(), "'");
  }

  std::unique_ptr<Concept> impl_;
};

/// Abstract simulation strategy. Instances are stateless and
/// thread-safe: every method is const, and run()/run_batch() build a
/// fresh templated simulator per call, so one Backend instance may
/// serve concurrent requests (the registry hands out shared_ptrs).
class Backend {
 public:
  virtual ~Backend() = default;

  /// Registered name, e.g. "statevector".
  [[nodiscard]] virtual std::string name() const = 0;

  /// Identifier for routing (kCustom for user backends).
  [[nodiscard]] virtual BackendId id() const = 0;

  /// Static capability flags (consulted by can_run and the selector).
  [[nodiscard]] virtual BackendCapabilities capabilities() const = 0;

  // --- The type-erased BGLS triple (paper Sec. 3.1) + collapse ----------

  /// A fresh initial state |request.initial_state⟩ on num_qubits
  /// qubits, honoring backend-specific request knobs (MPS truncation).
  [[nodiscard]] virtual AnyState create_state(const RunRequest& request,
                                              int num_qubits) const = 0;

  /// The apply_op ingredient (channels sampled as trajectories where
  /// supported; stochastic gates draw from `rng`).
  virtual void apply_op(const Operation& op, AnyState& state,
                        Rng& rng) const = 0;

  /// The compute_probability ingredient: |⟨b|ψ⟩|².
  [[nodiscard]] virtual double compute_probability(const AnyState& state,
                                                   Bitstring b) const = 0;

  /// Projects the listed qubits onto the corresponding bits of `bits`
  /// and renormalizes (measurement collapse / branching).
  virtual void collapse(AnyState& state, std::span<const Qubit> qubits,
                        Bitstring bits) const = 0;

  // --- Bulk entry points -------------------------------------------------

  /// Samples request.circuit end to end by dispatching into the
  /// templated core. Bit-identical to a direct
  /// `Simulator<State>(initial, request.simulator_options())
  ///      .run(circuit, repetitions, seed)`
  /// for the adapter backends. repetitions == 0 still validates and
  /// returns an empty well-formed result.
  [[nodiscard]] virtual RunResult run(const RunRequest& request) const = 0;

  /// Samples every circuit for request.repetitions through the batch
  /// engine (results in input order; circuits must share one qubit
  /// count). Bit-identical to a direct BatchEngine<State>::run_batch
  /// with the same options and seed.
  [[nodiscard]] virtual std::vector<RunResult> run_batch(
      std::span<const Circuit> circuits, const RunRequest& request) const = 0;

  /// True when this backend can execute `circuit`; otherwise false
  /// with a human-readable explanation in *reason (when non-null).
  [[nodiscard]] virtual bool can_run(const Circuit& circuit,
                                     std::string* reason) const = 0;
  [[nodiscard]] bool can_run(const Circuit& circuit) const {
    return can_run(circuit, nullptr);
  }
};

}  // namespace bgls

#include "api/registry.h"

#include "api/adapters.h"
#include "util/error.h"

namespace bgls {

using detail::ascii_lower;

void BackendRegistry::register_backend(std::shared_ptr<Backend> backend,
                                       std::vector<std::string> aliases) {
  BGLS_REQUIRE(backend != nullptr, "cannot register a null backend");
  Entry entry;
  entry.backend = std::move(backend);
  entry.primary_name = ascii_lower(entry.backend->name());
  BGLS_REQUIRE(!entry.primary_name.empty(),
               "backend name must not be empty");
  entry.all_names.push_back(entry.primary_name);
  for (const std::string& alias : aliases) {
    entry.all_names.push_back(ascii_lower(alias));
  }

  const std::lock_guard<std::mutex> lock(mutex_);
  for (const std::string& name : entry.all_names) {
    BGLS_REQUIRE(find_entry_locked(name) == nullptr, "backend name '", name,
                 "' is already registered");
  }
  entries_.push_back(std::move(entry));
}

const BackendRegistry::Entry* BackendRegistry::find_entry_locked(
    std::string_view lower) const {
  for (const Entry& entry : entries_) {
    for (const std::string& name : entry.all_names) {
      if (name == lower) return &entry;
    }
  }
  return nullptr;
}

std::shared_ptr<Backend> BackendRegistry::find(std::string_view name) const {
  const std::string lower = ascii_lower(name);
  const std::lock_guard<std::mutex> lock(mutex_);
  const Entry* entry = find_entry_locked(lower);
  return entry == nullptr ? nullptr : entry->backend;
}

std::shared_ptr<Backend> BackendRegistry::find(BackendId id) const {
  if (id == BackendId::kAuto) return nullptr;
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const Entry& entry : entries_) {
    if (entry.backend->id() == id) return entry.backend;
  }
  return nullptr;
}

std::shared_ptr<Backend> BackendRegistry::require(std::string_view name) const {
  std::shared_ptr<Backend> backend = find(name);
  if (backend == nullptr) {
    std::string known;
    for (const std::string& n : names()) {
      if (!known.empty()) known += ", ";
      known += n;
    }
    detail::throw_error<ValueError>("no backend registered under '", name,
                                    "'; known backends: ", known);
  }
  return backend;
}

std::shared_ptr<Backend> BackendRegistry::require(BackendId id) const {
  std::shared_ptr<Backend> backend = find(id);
  if (backend == nullptr) {
    detail::throw_error<ValueError>("no backend registered for id '",
                                    backend_id_name(id), "'");
  }
  return backend;
}

std::vector<std::string> BackendRegistry::names() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const Entry& entry : entries_) out.push_back(entry.primary_name);
  return out;
}

BackendRegistry& BackendRegistry::global() {
  // Immortal and preloaded exactly once; registration afterwards is the
  // caller's (thread-safe) business.
  static BackendRegistry* registry = [] {
    auto* r = new BackendRegistry();
    r->register_backend(make_statevector_backend(), {"sv"});
    r->register_backend(make_densitymatrix_backend(), {"dm", "density_matrix"});
    r->register_backend(make_stabilizer_backend(), {"ch"});
    r->register_backend(make_mps_backend());
    return r;
  }();
  return *registry;
}

}  // namespace bgls

#include "api/selector.h"

#include <algorithm>
#include <vector>

#include "util/error.h"

namespace bgls {
namespace {

/// True for the rotation kinds the sum-over-Cliffords channel absorbs
/// (stabilizer/near_clifford.h): Rz, Phase, T, T†.
bool is_near_clifford_rotation(const Gate& gate) {
  switch (gate.kind()) {
    case GateKind::kT:
    case GateKind::kTdg:
    case GateKind::kRz:
    case GateKind::kPhase:
      return true;
    default:
      return false;
  }
}

}  // namespace

CircuitProfile profile_circuit(const Circuit& circuit) {
  CircuitProfile profile;
  profile.num_qubits = circuit.num_qubits();
  profile.has_mid_circuit_measurements =
      circuit.has_measurements() && !circuit.measurements_are_terminal();
  for (const auto& moment : circuit.moments()) {
    for (const auto& op : moment.operations()) {
      ++profile.num_operations;
      if (op.is_classically_controlled()) profile.has_classical_control = true;
      const Gate& gate = op.gate();
      if (gate.is_measurement()) continue;
      profile.max_gate_arity = std::max(profile.max_gate_arity, gate.arity());
      if (gate.is_channel()) {
        profile.has_channels = true;
        profile.clifford_only = false;
        profile.near_clifford = false;
      } else if (!gate.is_clifford()) {
        profile.clifford_only = false;
        if (!is_near_clifford_rotation(gate)) profile.near_clifford = false;
      }
      if (gate.arity() >= 2) {
        ++profile.entangling_gates;
        // Chain-local = qubit ids form a contiguous adjacent run.
        std::vector<Qubit> qubits(op.qubits().begin(), op.qubits().end());
        std::sort(qubits.begin(), qubits.end());
        for (std::size_t j = 0; j + 1 < qubits.size(); ++j) {
          if (qubits[j + 1] - qubits[j] != 1) {
            profile.nearest_neighbor_1d = false;
            break;
          }
        }
      }
    }
  }
  return profile;
}

BackendSelector::Selection BackendSelector::select(
    const Circuit& circuit, std::uint64_t repetitions) const {
  return select(profile_circuit(circuit), repetitions);
}

BackendSelector::Selection BackendSelector::select(
    const CircuitProfile& p, std::uint64_t repetitions) const {
  // 1. Pure Clifford: polynomial and exact beats everything dense.
  if (p.clifford_only && !p.has_channels &&
      p.num_qubits <= thresholds_.max_stabilizer_qubits) {
    return {BackendId::kStabilizer,
            "pure-Clifford circuit: CH-form stabilizer simulation is exact "
            "at polynomial cost"};
  }
  // 2. Channels: exact Kraus branching in one 4^n pass vs re-evolving
  //    2^n amplitudes per trajectory — whichever the fitted model
  //    predicts cheaper for this repetition count. Ties go to the
  //    density matrix (exact beats sampled at equal cost).
  if (p.has_channels) {
    if (p.num_qubits <= thresholds_.max_statevector_qubits) {
      const double dm_seconds = cost_model_.predict_seconds(
          p, repetitions, BackendId::kDensityMatrix);
      const double sv_seconds = cost_model_.predict_seconds(
          p, repetitions, BackendId::kStateVector);
      if (dm_seconds <= sv_seconds) {
        return {BackendId::kDensityMatrix,
                "channel-bearing circuit: one exact density-matrix pass "
                "predicted no slower than per-trajectory re-evolution"};
      }
      return {BackendId::kStateVector,
              "channel-bearing circuit: statevector quantum trajectories "
              "predicted cheaper than the exact density-matrix pass"};
    }
    if (p.max_gate_arity <= 2) {
      return {BackendId::kMps,
              "channel-bearing circuit too wide for dense amplitudes: MPS "
              "quantum trajectories"};
    }
  }
  // 3. Too wide for dense amplitudes: tensor networks or nothing.
  if (p.num_qubits > thresholds_.max_statevector_qubits) {
    if (!p.has_channels && p.max_gate_arity <= 2) {
      return {BackendId::kMps,
              "register too wide for dense amplitudes: matrix product "
              "state"};
    }
    detail::throw_error<UnsupportedOperationError>(
        "no shipped backend can run ", p.num_qubits,
        " qubits with these operations (gates of arity ", p.max_gate_arity,
        p.has_channels ? ", with channels" : "",
        "); decompose_to_arity() may help");
  }
  // 4. Chain-local circuits: n·χ³ tensor contractions vs 2^n amplitudes
  //    per gate, by predicted cost (χ estimated from the entangling
  //    density). Small or densely entangling circuits land on the
  //    statevector naturally — no width or density cutoffs needed.
  if (p.max_gate_arity <= 2 && p.nearest_neighbor_1d &&
      cost_model_.predict_seconds(p, repetitions, BackendId::kMps) <
          cost_model_.predict_seconds(p, repetitions,
                                      BackendId::kStateVector)) {
    return {BackendId::kMps,
            "1D nearest-neighbor circuit with low predicted bond growth: "
            "matrix product state cheaper than dense amplitudes"};
  }
  // 5. Dense default.
  return {BackendId::kStateVector,
          "dense or strongly entangling circuit: statevector"};
}

}  // namespace bgls

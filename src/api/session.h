/// \file session.h
/// bgls::Session — the runtime front door of the library.
///
/// A Session owns the long-lived execution context (the engine's
/// persistent thread pool), a backend registry reference, and a
/// BackendSelector, and exposes the whole sampling surface over
/// type-erased circuits:
///
///   Session session;
///   RunResult result = session.run(RunRequest()
///                                      .with_circuit(circuit)
///                                      .with_repetitions(100000)
///                                      .with_seed(7));          // kAuto
///
/// run() resolves the backend (explicit name > explicit id > the
/// selector for kAuto), validates the circuit against the backend's
/// capabilities up front (an unrunnable or measurement-less circuit
/// throws, even at 0 repetitions — never a silent empty result), and
/// dispatches into the templated core. Results are bit-identical to the
/// corresponding direct Simulator<State>/BatchEngine<State> run with
/// the same options and seed.
///
/// run_async() schedules the whole request on the persistent pool and
/// returns a future; run_batch() fans many circuits out through the
/// batch engine, routing each circuit to its own backend under kAuto
/// (grouped so every group still gets engine-level sharding).

#pragma once

#include <future>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "api/registry.h"
#include "api/run_types.h"
#include "api/selector.h"
#include "engine/context.h"
#include "obs/metrics.h"

namespace bgls {

/// Session construction knobs.
struct SessionOptions {
  /// Registry consulted for backend lookup; nullptr = the process-wide
  /// BackendRegistry::global(). The registry must outlive the session.
  BackendRegistry* registry = nullptr;
  /// Structural routing limits for automatic selection.
  BackendSelector::Thresholds selector_thresholds{};
  /// Fitted cost model behind the selector's predicted-cost rules
  /// (service/cost.h); the default is the committed-artifact fit.
  service::CostModel cost_model{};
};

/// Runtime facade over registry + selector + engine context.
/// Thread-safe: concurrent run()/run_async()/run_batch() calls are
/// allowed (each dispatch builds its own templated simulator).
class Session {
 public:
  explicit Session(SessionOptions options = {});

  /// How a request was (or would be) routed.
  struct Resolution {
    std::shared_ptr<Backend> backend;
    /// The selector's justification; empty for explicit picks.
    std::string reason;
  };

  /// Samples one request end to end (see file comment).
  [[nodiscard]] RunResult run(RunRequest request);

  /// Convenience: run `circuit` with defaults (kAuto backend).
  [[nodiscard]] RunResult run(Circuit circuit, std::uint64_t repetitions = 1,
                              std::uint64_t seed = 0);

  /// Schedules run(request) as a job on the persistent pool and
  /// returns immediately. Backend resolution and capability validation
  /// happen *now* (errors throw at submission); sampling errors inside
  /// the job surface from future::get(). Bit-identical to the
  /// synchronous run() for the same request.
  [[nodiscard]] std::future<RunResult> run_async(RunRequest request);

  /// Samples every circuit for request.repetitions (request.circuit is
  /// ignored). Under kAuto each circuit is routed independently;
  /// circuits landing on the same (backend, qubit count) are batched
  /// through one BatchEngine::run_batch so they share engine-level
  /// sharding — mixed widths are fine, each width gets its own
  /// prototype state. Results come back in input order.
  [[nodiscard]] std::vector<RunResult> run_batch(
      std::span<const Circuit> circuits, RunRequest request);

  /// Resolves which backend `request` would run `circuit` on, without
  /// running (explicit name > explicit id > selector).
  [[nodiscard]] Resolution resolve_backend(const Circuit& circuit,
                                           const RunRequest& request) const;

  /// The registry this session consults.
  [[nodiscard]] BackendRegistry& registry() const { return *registry_; }

  /// The automatic-selection rules in force.
  [[nodiscard]] const BackendSelector& selector() const { return selector_; }

  /// The engine context the session has pinned (null until a run
  /// needed worker threads). Runs with the same resolved thread count
  /// reuse it; the process-wide cache makes it the same pool the
  /// templated core resolves internally.
  [[nodiscard]] std::shared_ptr<EngineContext> engine_context() const;

  /// Point-in-time copy of the process-wide telemetry series
  /// (obs/metrics.h): kernel apply counts/timings, engine shard
  /// timings, pool occupancy, scheduler and daemon series when a
  /// service is running in-process. Benches record these into
  /// BENCH_*.json; empty when telemetry is compiled out. Static — the
  /// registry is process-wide — but exposed here because a Session is
  /// what runtime callers already hold.
  [[nodiscard]] static obs::MetricsSnapshot metrics_snapshot() {
    return obs::MetricsRegistry::global().snapshot();
  }

 private:
  /// Replaces `circuit` with its optimize_for_bgls fusion when the
  /// resolved backend can run the fused form; otherwise leaves it
  /// untouched (the hint never changes routing or rejects a circuit
  /// the backend runs fine unfused).
  static void apply_optimization(Circuit& circuit, const Backend& backend);

  /// Resolution + capability validation; throws with the reason.
  [[nodiscard]] Resolution resolve_checked(const Circuit& circuit,
                                           const RunRequest& request) const;

  /// Pins the shared context for `num_threads` (> 1) workers.
  std::shared_ptr<EngineContext> ensure_context(int num_threads);

  BackendRegistry* registry_;
  BackendSelector selector_;
  mutable std::mutex mutex_;
  std::shared_ptr<EngineContext> context_;
};

}  // namespace bgls

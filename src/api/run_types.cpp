#include "api/run_types.h"

#include <algorithm>
#include <cctype>

namespace bgls {

namespace detail {

std::string ascii_lower(std::string_view text) {
  std::string lower(text);
  std::transform(lower.begin(), lower.end(), lower.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return lower;
}

}  // namespace detail

std::string_view backend_id_name(BackendId id) {
  switch (id) {
    case BackendId::kAuto: return "auto";
    case BackendId::kStateVector: return "statevector";
    case BackendId::kDensityMatrix: return "densitymatrix";
    case BackendId::kStabilizer: return "stabilizer";
    case BackendId::kMps: return "mps";
    case BackendId::kCustom: return "custom";
  }
  return "?";
}

SimulatorOptions RunRequest::simulator_options() const {
  SimulatorOptions options;
  options.skip_diagonal_updates = skip_diagonal_updates;
  options.disable_sample_parallelization = disable_sample_parallelization;
  options.num_threads = num_threads;
  options.num_rng_streams = num_rng_streams;
  options.reuse_thread_pool = reuse_thread_pool;
  options.two_level_batch_sharding = two_level_batch_sharding;
  options.cancel_token = cancel_token;
  options.progress = progress;
  options.trace = trace;
  options.checkpoint = checkpoint;
  options.resume = resume;
  return options;
}

}  // namespace bgls

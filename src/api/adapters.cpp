#include "api/adapters.h"

namespace bgls {

std::shared_ptr<Backend> make_statevector_backend() {
  return std::make_shared<StateVectorBackend>();
}

std::shared_ptr<Backend> make_densitymatrix_backend() {
  return std::make_shared<DensityMatrixBackend>();
}

std::shared_ptr<Backend> make_stabilizer_backend() {
  return std::make_shared<StabilizerBackend>();
}

std::shared_ptr<Backend> make_mps_backend() {
  return std::make_shared<MpsBackend>();
}

}  // namespace bgls

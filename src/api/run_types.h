/// \file run_types.h
/// Value types of the runtime API (api/session.h): backend identifiers,
/// capability flags, and the RunRequest/RunResult pair every entry point
/// of the type-erased layer speaks.
///
/// The templated core (Simulator<State>, BatchEngine<State>) stays the
/// zero-overhead way to drive one statically chosen representation; the
/// runtime API wraps it for callers that pick the representation per
/// request — a service routing heterogeneous circuits, a CLI taking
/// `--backend`, a test sweeping every backend. RunRequest unifies
/// SimulatorOptions and the engine knobs into one value with
/// builder-style setters, mirroring how the paper's Python package
/// assembles a simulator from runtime ingredients (Sec. 3.1).

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>

#include "circuit/circuit.h"
#include "core/progress.h"
#include "core/result.h"
#include "core/simulator.h"
#include "mps/state.h"
#include "util/cancellation.h"

namespace bgls {

/// Identifies a simulation strategy at runtime. kAuto defers the choice
/// to the BackendSelector (api/selector.h); kCustom marks
/// user-registered backends that are addressed by name instead.
enum class BackendId {
  kAuto,
  kStateVector,
  kDensityMatrix,
  kStabilizer,
  kMps,
  kCustom,
};

/// Canonical lowercase name ("auto", "statevector", "densitymatrix",
/// "stabilizer", "mps", "custom").
[[nodiscard]] std::string_view backend_id_name(BackendId id);

namespace detail {
/// ASCII lowercase fold shared by backend-name parsing and the
/// registry's case-insensitive lookup.
[[nodiscard]] std::string ascii_lower(std::string_view text);
}  // namespace detail

// (Backend names/aliases are resolved by the BackendRegistry — the
// single source of truth; see api/registry.h. RunRequest addresses
// backends either by BackendId or by registered name.)

/// What a Backend can simulate — consulted by Backend::can_run and the
/// BackendSelector so unrunnable requests fail with a reason instead of
/// deep inside a kernel.
struct BackendCapabilities {
  /// Largest register the representation supports.
  int max_qubits = 0;
  /// Largest gate arity applied natively (without decomposition).
  int max_gate_arity = 0;
  /// Kraus channels (quantum-trajectory or exact branching).
  bool supports_channels = false;
  /// Mid-circuit measurement collapse (project()).
  bool supports_mid_circuit_measurement = false;
  /// Classical feed-forward (operations conditioned on records).
  bool supports_classical_control = false;
  /// Unitary gates must be Clifford (the stabilizer representation) —
  /// softened by near_clifford_rotations below.
  bool clifford_gates_only = false;
  /// Rz/Phase/T/T† accepted via stochastic sum-over-Cliffords branches
  /// (Sec. 4.2); sampling those circuits is approximate.
  bool near_clifford_rotations = false;
  /// False when some supported circuits sample approximately (the
  /// near-Clifford channel); true for exact representations.
  bool exact_for_all_supported = true;
};

/// One self-contained sampling request: the circuit plus every tuning
/// knob, with builder-style setters so call sites read like the
/// paper's keyword arguments:
///
///   RunRequest()
///       .with_circuit(circuit)
///       .with_repetitions(100000)
///       .with_seed(7)
///       .with_backend(BackendId::kAuto)
///       .with_threads(8);
struct RunRequest {
  /// The circuit to sample (must contain measurements for run()).
  Circuit circuit;
  /// Number of samples. 0 is legal: the run still validates the
  /// circuit and returns an empty, well-formed RunResult with all
  /// measurement keys declared.
  std::uint64_t repetitions = 1;
  /// RNG seed; fixes the sampled records for a given backend.
  std::uint64_t seed = 0;
  /// Which representation runs the request; kAuto asks the selector.
  BackendId backend = BackendId::kAuto;
  /// Registry lookup by name (custom backends); wins over `backend`
  /// when non-empty.
  std::string backend_name;
  /// Initial computational-basis state |initial⟩ (default |0...0⟩).
  Bitstring initial_state = 0;
  /// Worker threads (SimulatorOptions::num_threads: 1 serial, 0 auto).
  int num_threads = 1;
  /// Deterministic RNG shards for engine runs (fixes sampled values
  /// independently of the thread count).
  std::uint64_t num_rng_streams = 16;
  /// SimulatorOptions passthroughs (see core/simulator.h).
  bool skip_diagonal_updates = false;
  bool disable_sample_parallelization = false;
  bool reuse_thread_pool = true;
  bool two_level_batch_sharding = true;
  /// Run optimize_for_bgls on the circuit before backend selection and
  /// sampling (fusion may change which backend is eligible: fused
  /// matrix gates are not Clifford).
  bool optimize_circuit = false;
  /// Truncation knobs forwarded to the MPS backend.
  MPSOptions mps_options;
  /// Scheduling priority for queued execution (service JobScheduler):
  /// higher runs first, ties run in submission order. Ignored by
  /// direct Session runs.
  int priority = 0;
  /// Owning tenant for service-side quotas and weighted-fair scheduling
  /// ("" = the anonymous default tenant). Never affects sampled results
  /// — scheduling-only, excluded from the result cache key.
  std::string tenant;
  /// Wall-clock budget in milliseconds; 0 = none. Session::run/
  /// run_async arm it on entry, the service scheduler at submit (so
  /// queue wait counts against it). An exceeded deadline aborts the run
  /// with DeadlineExceededError / a `timeout` job state.
  std::uint64_t deadline_ms = 0;
  /// Cooperative cancellation handle (util/cancellation.h); inert by
  /// default. Callers keep a copy and cancel() it to abort the run
  /// with CancelledError. The deadline above is armed on this token
  /// (one is created when needed).
  CancellationToken cancel_token;
  /// Streaming partial histograms (core/progress.h): run() emits
  /// cumulative per-key histograms every `progress.every` completed
  /// repetitions, deterministically for a fixed seed. run_batch
  /// ignores it.
  ProgressOptions progress;
  /// Optional telemetry trace (obs/trace.h) this run records shard and
  /// phase spans into; non-owning, must outlive the run. The service
  /// scheduler attaches one per job; direct callers may pass their own.
  /// Observation-only — never affects the sampled records.
  obs::Trace* trace = nullptr;
  /// Propagated cross-process trace context (ndjson `trace_id` /
  /// `parent_span_id` on submit): when trace_id is nonzero the
  /// scheduler derives the job's span IDs from it instead of the local
  /// job id, and hangs the job's top-level spans under trace_parent —
  /// so a fleet-front `fleet.place` span and the worker's spans stitch
  /// into one tree. Observation-only; excluded from the result-cache
  /// key (two submissions differing only in trace context share a
  /// cached result).
  std::uint64_t trace_id = 0;
  std::uint64_t trace_parent = 0;
  /// Checkpoint capture (core/checkpoint.h): the run emits resumable
  /// snapshots every `checkpoint.every` completed repetitions within a
  /// shard plus at shard completion. Observation-only.
  CheckpointOptions checkpoint;
  /// Resume a previous run from its checkpoint: same circuit, seed,
  /// backend, and rng-stream count required; the finished run is
  /// bit-identical to the uninterrupted one.
  std::shared_ptr<const RunCheckpoint> resume;

  // --- Builder-style setters (each returns *this) -----------------------
  RunRequest& with_circuit(Circuit c) {
    circuit = std::move(c);
    return *this;
  }
  RunRequest& with_repetitions(std::uint64_t reps) {
    repetitions = reps;
    return *this;
  }
  RunRequest& with_seed(std::uint64_t s) {
    seed = s;
    return *this;
  }
  RunRequest& with_backend(BackendId id) {
    backend = id;
    backend_name.clear();
    return *this;
  }
  RunRequest& with_backend(std::string name) {
    backend_name = std::move(name);
    return *this;
  }
  RunRequest& with_initial_state(Bitstring bits) {
    initial_state = bits;
    return *this;
  }
  RunRequest& with_threads(int threads) {
    num_threads = threads;
    return *this;
  }
  RunRequest& with_rng_streams(std::uint64_t streams) {
    num_rng_streams = streams;
    return *this;
  }
  RunRequest& with_skip_diagonal_updates(bool skip = true) {
    skip_diagonal_updates = skip;
    return *this;
  }
  RunRequest& with_sample_parallelization(bool enabled) {
    disable_sample_parallelization = !enabled;
    return *this;
  }
  RunRequest& with_thread_pool_reuse(bool reuse) {
    reuse_thread_pool = reuse;
    return *this;
  }
  RunRequest& with_two_level_batch_sharding(bool two_level) {
    two_level_batch_sharding = two_level;
    return *this;
  }
  RunRequest& with_optimization(bool optimize = true) {
    optimize_circuit = optimize;
    return *this;
  }
  RunRequest& with_mps_options(MPSOptions options) {
    mps_options = options;
    return *this;
  }
  RunRequest& with_priority(int p) {
    priority = p;
    return *this;
  }
  RunRequest& with_tenant(std::string name) {
    tenant = std::move(name);
    return *this;
  }
  RunRequest& with_deadline_ms(std::uint64_t ms) {
    deadline_ms = ms;
    return *this;
  }
  RunRequest& with_cancel_token(CancellationToken token) {
    cancel_token = std::move(token);
    return *this;
  }
  RunRequest& with_progress(std::uint64_t every, ProgressFn sink) {
    progress.every = every;
    progress.sink = std::move(sink);
    return *this;
  }
  RunRequest& with_trace(obs::Trace* t) {
    trace = t;
    return *this;
  }
  RunRequest& with_trace_context(std::uint64_t id, std::uint64_t parent = 0) {
    trace_id = id;
    trace_parent = parent;
    return *this;
  }
  RunRequest& with_checkpoint(std::uint64_t every,
                              std::function<void(const RunCheckpoint&)> sink) {
    checkpoint.every = every;
    checkpoint.sink = std::move(sink);
    return *this;
  }
  RunRequest& with_resume(std::shared_ptr<const RunCheckpoint> from) {
    resume = std::move(from);
    return *this;
  }

  /// The SimulatorOptions this request maps to — exactly what a direct
  /// templated run with the same knobs would use, which is what makes
  /// Session results bit-identical to direct Simulator<State> runs.
  [[nodiscard]] SimulatorOptions simulator_options() const;
};

/// What a run produced: the measurement records plus enough metadata to
/// audit the routing (which backend ran, why, and its counters).
struct RunResult {
  /// Measurement records keyed by measurement key (cirq.Result shape).
  Result measurements;
  /// The executing simulator's counters (merged across shards on
  /// engine runs; shared by the whole batch for run_batch results).
  RunStats stats;
  /// Resolved backend (never kAuto; kCustom for named registrations).
  BackendId backend_id = BackendId::kStateVector;
  /// The executing backend's registered name.
  std::string backend_name;
  /// Why the selector picked this backend (empty for explicit picks).
  std::string selection_reason;
  /// Wall-clock time of the dispatch, seconds (0 when not measured).
  double wall_seconds = 0.0;
};

}  // namespace bgls

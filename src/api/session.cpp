#include "api/session.h"

#include <chrono>
#include <map>
#include <utility>

#include "core/optimize.h"
#include "engine/thread_pool.h"
#include "obs/trace.h"
#include "util/error.h"

namespace bgls {
namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// Arms the request's wall-clock deadline on its cancellation token
// (creating one when the caller did not supply a handle). Called on
// entry of every Session run path, so deadline_ms counts from
// submission — including pool wait for run_async.
void arm_cancellation(RunRequest& request) {
  if (request.deadline_ms == 0) return;
  if (!request.cancel_token.valid()) {
    request.cancel_token = CancellationToken::make();
  }
  request.cancel_token.set_deadline_after(
      std::chrono::milliseconds(request.deadline_ms));
}

}  // namespace

Session::Session(SessionOptions options)
    : registry_(options.registry != nullptr ? options.registry
                                            : &BackendRegistry::global()),
      selector_(options.selector_thresholds, options.cost_model) {}

void Session::apply_optimization(Circuit& circuit, const Backend& backend) {
  // Optimization is a performance hint, not a contract: fusion emits
  // dense matrix gates, so the fused form is used only when the
  // already-resolved backend can run it. A stabilizer-routed
  // pure-Clifford circuit keeps its original (polynomial) form instead
  // of being demoted or rejected — matrix backends get the fused one.
  Circuit fused = optimize_for_bgls(circuit);
  if (backend.can_run(fused)) circuit = std::move(fused);
}

Session::Resolution Session::resolve_backend(const Circuit& circuit,
                                             const RunRequest& request) const {
  if (!request.backend_name.empty()) {
    return {registry_->require(request.backend_name), ""};
  }
  if (request.backend != BackendId::kAuto) {
    // Several user backends may share kCustom; picking "whichever
    // registered first" would silently run the wrong one.
    BGLS_REQUIRE(request.backend != BackendId::kCustom,
                 "custom backends must be addressed by name "
                 "(with_backend(\"<registered name>\"))");
    return {registry_->require(request.backend), ""};
  }
  // Repetitions feed the cost comparisons (rules 2 and 4): trajectory
  // cost scales with shots, so the same circuit may route differently
  // at 10 reps and 10k reps.
  BackendSelector::Selection selection =
      selector_.select(circuit, request.repetitions);
  return {registry_->require(selection.id), std::move(selection.reason)};
}

Session::Resolution Session::resolve_checked(const Circuit& circuit,
                                             const RunRequest& request) const {
  // Used by run_async only: submission must fail *now*, not from the
  // future, so the extra up-front capability scan is worth paying
  // there (the synchronous paths validate once, inside the dispatch).
  Resolution resolution = resolve_backend(circuit, request);
  std::string reason;
  if (!resolution.backend->can_run(circuit, &reason)) {
    detail::throw_error<UnsupportedOperationError>(
        "backend '", resolution.backend->name(),
        "' cannot run this circuit: ", reason);
  }
  // Mirror the engine's up-front validation: run() samples measurement
  // records, so a measurement-less circuit is rejected at submission
  // (before any future is handed out) instead of inside the dispatch.
  BGLS_REQUIRE(circuit.has_measurements(),
               "circuit has no measurements to sample; append measure()");
  return resolution;
}

std::shared_ptr<EngineContext> Session::ensure_context(int num_threads) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (!context_ || context_->num_threads() != num_threads) {
    context_ = EngineContext::shared(num_threads);
  }
  return context_;
}

std::shared_ptr<EngineContext> Session::engine_context() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return context_;
}

RunResult Session::run(RunRequest request) {
  // Resolution happens unconditionally (on the unoptimized circuit, so
  // routing reflects what the caller wrote) — a 0-repetition request
  // still routes, and the dispatch below still validates the circuit
  // (Backend::run's require_runnable + the simulator's own checks) and
  // declares every measurement key on the empty result. Validation is
  // deliberately left to the dispatch so the circuit is scanned once,
  // not twice.
  Resolution resolution = resolve_backend(request.circuit, request);
  double optimize_seconds = 0.0;
  if (request.optimize_circuit) {
    request.optimize_circuit = false;
    const auto optimize_start = std::chrono::steady_clock::now();
    obs::TraceSpan span(request.trace, "optimize");
    apply_optimization(request.circuit, *resolution.backend);
    optimize_seconds = seconds_since(optimize_start);
  }
  arm_cancellation(request);
  const int resolved = ThreadPool::resolve_num_threads(request.num_threads);
  if (resolved > 1) ensure_context(resolved);
  const auto start = std::chrono::steady_clock::now();
  RunResult out;
  {
    obs::TraceSpan span(request.trace, "sample");
    out = resolution.backend->run(request);
  }
  out.wall_seconds = seconds_since(start);
  // Phase wall times (RunStats contract: scheduling-dependent, so they
  // never enter the byte-stable reports).
  out.stats.optimize_ms = optimize_seconds * 1000.0;
  out.stats.sample_ms = out.wall_seconds * 1000.0;
  // Mirrored into the stats so routing decisions survive aggregation
  // (the service daemon's stats endpoint reads RunStats, not RunResult).
  out.stats.selection_reason = resolution.reason;
  out.selection_reason = std::move(resolution.reason);
  return out;
}

RunResult Session::run(Circuit circuit, std::uint64_t repetitions,
                       std::uint64_t seed) {
  return run(RunRequest()
                 .with_circuit(std::move(circuit))
                 .with_repetitions(repetitions)
                 .with_seed(seed));
}

std::future<RunResult> Session::run_async(RunRequest request) {
  Resolution resolution = resolve_checked(request.circuit, request);
  double optimize_seconds = 0.0;
  if (request.optimize_circuit) {
    request.optimize_circuit = false;
    const auto optimize_start = std::chrono::steady_clock::now();
    obs::TraceSpan span(request.trace, "optimize");
    apply_optimization(request.circuit, *resolution.backend);
    optimize_seconds = seconds_since(optimize_start);
  }
  // Armed at submission: a job that waits out its whole budget in the
  // pool queue times out without sampling (the service contract).
  arm_cancellation(request);
  const int resolved = ThreadPool::resolve_num_threads(request.num_threads);
  // The job always runs on the immortal shared pool, and — like
  // Simulator::run_async — the inner run is forced onto pool reuse: a
  // private pool spawned per in-flight job is exactly the latency
  // async exists to avoid. Pool choice is scheduling-only, so the
  // records still match the synchronous run bit for bit.
  std::shared_ptr<EngineContext> context = ensure_context(resolved);
  request.reuse_thread_pool = true;
  auto task = std::make_shared<std::packaged_task<RunResult()>>(
      [backend = resolution.backend, reason = std::move(resolution.reason),
       request = std::move(request), optimize_seconds]() {
        request.cancel_token.throw_if_stopped();
        const auto start = std::chrono::steady_clock::now();
        RunResult out;
        {
          obs::TraceSpan span(request.trace, "sample");
          out = backend->run(request);
        }
        out.wall_seconds = seconds_since(start);
        out.stats.optimize_ms = optimize_seconds * 1000.0;
        out.stats.sample_ms = out.wall_seconds * 1000.0;
        out.stats.selection_reason = reason;
        out.selection_reason = reason;
        return out;
      });
  std::future<RunResult> future = task->get_future();
  context->pool().submit([task] { (*task)(); });
  return future;
}

std::vector<RunResult> Session::run_batch(std::span<const Circuit> circuits,
                                          RunRequest request) {
  std::vector<RunResult> results(circuits.size());
  if (circuits.empty()) return results;
  // One deadline/token covers the whole batch (it is one submission).
  arm_cancellation(request);

  // Route every circuit (on its unoptimized form, exactly like run()),
  // then group by (backend, width) so each group runs through one
  // BatchEngine::run_batch (one prototype state per group) while kAuto
  // still routes heterogeneous traffic per circuit. Per-circuit
  // capability validation happens once, inside each group's
  // Backend::run_batch.
  struct Group {
    std::shared_ptr<Backend> backend;
    std::vector<std::size_t> indices;
  };
  std::vector<Group> groups;
  std::map<std::pair<const Backend*, int>, std::size_t> group_index;
  std::vector<std::string> reasons(circuits.size());
  // Filled per circuit only when optimization is requested (and the
  // resolved backend accepts the fused form); untouched inputs run in
  // place with no copies.
  std::vector<Circuit> optimized;
  if (request.optimize_circuit) {
    optimized.assign(circuits.begin(), circuits.end());
  }
  const bool optimize = request.optimize_circuit;
  request.optimize_circuit = false;
  for (std::size_t i = 0; i < circuits.size(); ++i) {
    Resolution resolution = resolve_backend(circuits[i], request);
    reasons[i] = std::move(resolution.reason);
    if (optimize) apply_optimization(optimized[i], *resolution.backend);
    const Circuit& effective = optimize ? optimized[i] : circuits[i];
    const std::pair<const Backend*, int> key{
        resolution.backend.get(), std::max(1, effective.num_qubits())};
    const auto [it, inserted] = group_index.try_emplace(key, groups.size());
    if (inserted) groups.push_back({std::move(resolution.backend), {}});
    groups[it->second].indices.push_back(i);
  }

  const int resolved = ThreadPool::resolve_num_threads(request.num_threads);
  if (resolved > 1) ensure_context(resolved);

  for (const Group& group : groups) {
    std::vector<RunResult> group_results;
    if (!optimize && group.indices.size() == circuits.size()) {
      // Single homogeneous group: run the caller's span directly.
      group_results = group.backend->run_batch(circuits, request);
    } else {
      std::vector<Circuit> group_circuits;
      group_circuits.reserve(group.indices.size());
      for (const std::size_t i : group.indices) {
        // Each index lands in exactly one group, so the optimized
        // copies can be moved out instead of re-copied.
        group_circuits.push_back(optimize ? std::move(optimized[i])
                                          : circuits[i]);
      }
      group_results = group.backend->run_batch(group_circuits, request);
    }
    for (std::size_t j = 0; j < group.indices.size(); ++j) {
      const std::size_t i = group.indices[j];
      results[i] = std::move(group_results[j]);
      // Per-job reason in both places: RunResult for callers, RunStats
      // so kAuto routing decisions survive into stats aggregation
      // (engine counters are shared by the group, the reason is not).
      results[i].selection_reason = reasons[i];
      results[i].stats.selection_reason = reasons[i];
    }
  }
  return results;
}

}  // namespace bgls

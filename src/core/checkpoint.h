/// \file checkpoint.h
/// Crash-safe checkpoint/resume for sampling runs.
///
/// A RunCheckpoint captures everything a run needs to continue from a
/// chunk boundary: per-shard RNG engine state, the completed-repetition
/// cursor, the cumulative per-key histograms of the completed prefix,
/// and the run-level instrumentation counters for that prefix. Because
/// the shard decomposition and every shard's draw sequence are fixed by
/// the seed and SimulatorOptions::num_rng_streams alone (see
/// engine/engine.h), resuming from a checkpoint and finishing the run
/// produces a final histogram — and the byte-stable report counters —
/// bit-identical to the uninterrupted run, on any thread count.
///
/// Production: Simulator::run (serial paths) and BatchEngine (sharded
/// paths) emit checkpoints through CheckpointOptions::sink every
/// `every` completed repetitions within a shard, plus at shard
/// completion. Consumption: SimulatorOptions::resume /
/// RunRequest::with_resume re-enter the same run mid-stream. The
/// service scheduler uses checkpoints for preemption and retry, and the
/// daemon journals them (service/journal.h) so a killed process resumes
/// its jobs on restart.
///
/// Checkpoints are mode-tagged: the serial (num_threads == 1) and
/// engine paths draw from different streams, and the trajectory and
/// dictionary-batched paths chunk differently, so a checkpoint only
/// resumes the path that produced it. Thread count is *not* part of the
/// mode — engine checkpoints resume on any thread count.

#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/stats.h"

namespace bgls {

class JsonValue;
class Result;
struct RunStats;

/// The subset of RunStats counters a resumed run must reproduce exactly
/// (the byte-stable report fields, core/report-visible). Wall times and
/// per-stream breakdowns are scheduling-dependent and excluded.
struct CheckpointStats {
  std::uint64_t state_applications = 0;
  std::uint64_t probability_evaluations = 0;
  std::uint64_t max_dictionary_size = 0;
  std::uint64_t trajectories = 0;
  std::uint64_t diagonal_updates_skipped = 0;
};

/// Extracts the checkpointed counters from a run's RunStats.
[[nodiscard]] CheckpointStats checkpoint_stats_from(const RunStats& stats);

/// Folds checkpointed prefix counters into a (post-resume) RunStats:
/// counters sum, the dictionary peak maxes.
void apply_checkpoint_stats(RunStats& stats, const CheckpointStats& prefix);

/// Sums `delta` into `into` (counters add, dictionary peak maxes).
void add_checkpoint_stats(CheckpointStats& into, const CheckpointStats& delta);

/// Which sampling path produced a checkpoint (see file comment).
enum class CheckpointMode {
  /// Serial per-trajectory loop (num_threads == 1).
  kSerial,
  /// Serial dictionary-batched path (Sec. 3.2.3; shard-atomic).
  kSerialBatched,
  /// Engine trajectory sharding (per-shard streams, chunked).
  kEngine,
  /// Engine dictionary-batched sharding (multinomial split;
  /// shard-atomic).
  kEngineBatched,
};

[[nodiscard]] std::string_view checkpoint_mode_name(CheckpointMode mode);
[[nodiscard]] CheckpointMode parse_checkpoint_mode(std::string_view name);

/// One shard's progress: how far its stream has been consumed and what
/// it produced so far.
struct ShardCheckpoint {
  /// Repetitions assigned to this shard by the decomposition.
  std::uint64_t total = 0;
  /// Repetitions completed (<= total; == total when the shard is done).
  std::uint64_t completed = 0;
  /// The shard's Rng engine state after `completed` repetitions
  /// (Rng::state()/from_state()).
  std::array<std::uint64_t, 4> rng_state{};
  /// Cumulative per-measurement-key packed-outcome counts for the
  /// completed prefix.
  std::map<std::string, Counts> histograms;
};

/// A resumable snapshot of a whole run.
struct RunCheckpoint {
  int version = 1;
  CheckpointMode mode = CheckpointMode::kSerial;
  /// Total repetitions of the run (must match the resuming request).
  std::uint64_t total_repetitions = 0;
  /// Per-shard progress in shard order (one entry on serial paths).
  std::vector<ShardCheckpoint> shards;
  /// Run-level counters for the completed prefix (summed over shards).
  CheckpointStats stats;

  /// Repetitions completed across all shards.
  [[nodiscard]] std::uint64_t completed_repetitions() const;
  /// True when every shard has finished.
  [[nodiscard]] bool complete() const;

  /// Compact single-line JSON (journal-record friendly).
  [[nodiscard]] std::string to_json() const;
  /// Inverse of to_json(). Throws ParseError on malformed input.
  [[nodiscard]] static RunCheckpoint from_json(const JsonValue& value);
  [[nodiscard]] static RunCheckpoint parse(std::string_view text);
};

/// Throws ValueError unless `checkpoint` matches the resuming run's
/// shape: same mode, same total repetitions, same shard count, and
/// per-shard completed <= total. A mismatch means the checkpoint was
/// produced by a different sampling path or request.
void validate_resume(const RunCheckpoint& checkpoint, CheckpointMode mode,
                     std::uint64_t total_repetitions, std::size_t shards);

/// Replays per-key histograms into a Result as add_records calls (keys
/// must already be declared). Record *order* differs from the original
/// run; histograms — the byte-stable report content — are identical.
void restore_result_histograms(Result& result,
                               const std::map<std::string, Counts>& histograms);

/// Checkpointing knobs carried by SimulatorOptions / RunRequest.
/// Observation-only on the emitting run: capture never changes what the
/// run samples.
struct CheckpointOptions {
  /// Capture cadence in repetitions within a shard (plus shard
  /// completion); 0 disables checkpointing.
  std::uint64_t every = 0;
  /// Destination for snapshots. Invoked serially under an internal
  /// lock, possibly from worker threads; must not call back into the
  /// emitting run.
  std::function<void(const RunCheckpoint&)> sink;

  [[nodiscard]] bool enabled() const { return every > 0 && sink != nullptr; }
};

/// Engine-side merger: shards record their progress as they reach
/// checkpoint boundaries (concurrently, in any order) and the collector
/// emits a consistent whole-run snapshot per record. Seeded with a base
/// checkpoint (the initial shard decomposition, or the checkpoint a
/// resumed run continues from) so re-checkpointing after a resume stays
/// correct.
class CheckpointCollector {
 public:
  CheckpointCollector(CheckpointOptions options, RunCheckpoint base);

  /// Shard `shard` has completed `completed` of its repetitions (base
  /// prefix included); `rng_state` is its engine state at that
  /// boundary, `cumulative` its prefix histograms, and `delta` the
  /// counters for the work done *since this run began* (the base
  /// checkpoint's share is accounted separately).
  void record(std::size_t shard, std::uint64_t completed,
              const std::array<std::uint64_t, 4>& rng_state,
              const std::map<std::string, Counts>& cumulative,
              const CheckpointStats& delta);

  /// Emits the current snapshot to the sink (used for the initial
  /// checkpoint of a fresh run).
  void emit();

  /// The current snapshot.
  [[nodiscard]] RunCheckpoint snapshot() const;

 private:
  CheckpointOptions options_;
  mutable std::mutex mutex_;
  RunCheckpoint current_;
  CheckpointStats base_stats_;
  std::vector<CheckpointStats> deltas_;
};

}  // namespace bgls

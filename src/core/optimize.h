/// \file optimize.h
/// Circuit optimization for the gate-by-gate sampler (Sec. 3.2.2,
/// bgls.optimize_for_bgls).
///
/// Every operation the sampler walks costs one state application plus
/// one candidate resampling, so runs of consecutive single-qubit gates
/// on the same qubit are pure overhead: they can be fused into one
/// matrix gate so the bitstring is updated once instead of k times. The
/// paper's tips page reports 1.5–2x speedups on random 8-qubit circuits
/// of up to 50 layers (reproduced in bench/tips_circuit_optimization).
///
/// Beyond the paper, a second qsim-style pass absorbs those single-qubit
/// runs into an adjacent two-qubit gate (before it or after it, whenever
/// no other operation on the qubit intervenes), lifting A on the control
/// line and B on the target line of U into U·(A ⊗ B) — one 4x4 gate
/// where the sampler previously paid several state applications and
/// candidate resamplings. Both passes are exact matrix products, so the
/// sampled distribution is preserved exactly.

#pragma once

#include "circuit/circuit.h"

namespace bgls {

/// Ablation switches for the optimizer passes (both on by default).
struct OptimizeOptions {
  /// Pass 1 (the paper's Sec. 3.2.2): fuse runs of consecutive
  /// single-qubit unitary gates per qubit into one matrix gate.
  bool fuse_single_qubit_gates = true;
  /// Pass 2 (beyond the paper, qsim-style): absorb single-qubit runs
  /// into an adjacent two-qubit unitary gate. Builds on pass 1's run
  /// accumulation, so it is ignored when pass 1 is disabled.
  bool fuse_into_two_qubit_gates = true;
};

/// What the optimizer did (for logging / benches).
struct OptimizationReport {
  std::size_t operations_before = 0;
  std::size_t operations_after = 0;
  /// Single-qubit gates absorbed into fused single-qubit matrix gates.
  std::size_t gates_fused = 0;
  /// Single-qubit gates absorbed into adjacent two-qubit gates.
  std::size_t gates_fused_into_two_qubit = 0;
  /// Fused products that reduced to the identity and were dropped.
  std::size_t identities_dropped = 0;
};

/// Runs the fusion passes selected by `options` (see OptimizeOptions).
/// Multi-qubit barriers, measurements, channels, classically-controlled
/// and unresolved-parameter gates pass through unchanged and terminate
/// the runs they touch. Identity products (up to 1e-10) are dropped.
/// The sampled distribution is preserved exactly (fusion is an exact
/// matrix product).
[[nodiscard]] Circuit optimize_for_bgls(const Circuit& circuit,
                                        const OptimizeOptions& options,
                                        OptimizationReport* report = nullptr);

/// Default-options overload (both fusion passes enabled).
[[nodiscard]] Circuit optimize_for_bgls(const Circuit& circuit,
                                        OptimizationReport* report = nullptr);

}  // namespace bgls

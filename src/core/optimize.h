/// \file optimize.h
/// Circuit optimization for the gate-by-gate sampler (Sec. 3.2.2,
/// bgls.optimize_for_bgls).
///
/// Every operation the sampler walks costs one state application plus
/// one candidate resampling, so runs of consecutive single-qubit gates
/// on the same qubit are pure overhead: they can be fused into one
/// matrix gate so the bitstring is updated once instead of k times. The
/// paper's tips page reports 1.5–2x speedups on random 8-qubit circuits
/// of up to 50 layers (reproduced in bench/tips_circuit_optimization).

#pragma once

#include "circuit/circuit.h"

namespace bgls {

/// What the optimizer did (for logging / benches).
struct OptimizationReport {
  std::size_t operations_before = 0;
  std::size_t operations_after = 0;
  /// Single-qubit gates absorbed into fused matrix gates.
  std::size_t gates_fused = 0;
  /// Fused products that reduced to the identity and were dropped.
  std::size_t identities_dropped = 0;
};

/// Fuses maximal runs of consecutive single-qubit unitary gates per
/// qubit into single matrix gates, dropping products that collapse to
/// the identity (up to 1e-10). Multi-qubit gates, measurements, channels
/// and unresolved-parameter gates act as barriers and pass through
/// unchanged. The sampled distribution is preserved exactly (fusion is
/// an exact matrix product).
[[nodiscard]] Circuit optimize_for_bgls(const Circuit& circuit,
                                        OptimizationReport* report = nullptr);

}  // namespace bgls

#include "core/result.h"

#include "util/error.h"

namespace bgls {

void Result::declare_key(const std::string& key, std::vector<Qubit> qubits) {
  BGLS_REQUIRE(!data_.contains(key), "measurement key '", key,
               "' declared twice; keys must be unique per circuit");
  keys_.push_back(key);
  data_[key] = KeyData{std::move(qubits), {}};
}

void Result::add_record(const std::string& key, Bitstring value) {
  add_records(key, value, 1);
}

void Result::add_records(const std::string& key, Bitstring value,
                         std::uint64_t count) {
  const auto it = data_.find(key);
  BGLS_REQUIRE(it != data_.end(), "unknown measurement key '", key, "'");
  it->second.values.insert(it->second.values.end(), count, value);
}

const Result::KeyData& Result::key_data(const std::string& key) const {
  const auto it = data_.find(key);
  BGLS_REQUIRE(it != data_.end(), "unknown measurement key '", key, "'");
  return it->second;
}

const std::vector<Qubit>& Result::measured_qubits(
    const std::string& key) const {
  return key_data(key).qubits;
}

const std::vector<Bitstring>& Result::values(const std::string& key) const {
  return key_data(key).values;
}

std::uint64_t Result::repetitions() const {
  if (keys_.empty()) return 0;
  return key_data(keys_.front()).values.size();
}

Counts Result::histogram(const std::string& key) const {
  Counts counts;
  for (const Bitstring value : key_data(key).values) ++counts[value];
  return counts;
}

Distribution Result::distribution(const std::string& key) const {
  return normalize(histogram(key));
}

}  // namespace bgls

#include "core/result.h"

#include "circuit/circuit.h"
#include "util/error.h"

namespace bgls {

void Result::declare_key(const std::string& key, std::vector<Qubit> qubits) {
  BGLS_REQUIRE(!data_.contains(key), "measurement key '", key,
               "' declared twice; keys must be unique per circuit");
  keys_.push_back(key);
  data_[key] = KeyData{std::move(qubits), {}};
}

void Result::add_record(const std::string& key, Bitstring value) {
  add_records(key, value, 1);
}

void Result::add_records(const std::string& key, Bitstring value,
                         std::uint64_t count) {
  const auto it = data_.find(key);
  BGLS_REQUIRE(it != data_.end(), "unknown measurement key '", key, "'");
  it->second.values.insert(it->second.values.end(), count, value);
}

void Result::append(const Result& other) {
  if (&other == this) {
    // Self-append would insert from a range inside the growing vector;
    // double each key's records through a copy instead.
    append(Result(*this));
    return;
  }
  for (const std::string& key : other.keys_) {
    const KeyData& incoming = other.key_data(key);
    auto it = data_.find(key);
    if (it == data_.end()) {
      declare_key(key, incoming.qubits);
      it = data_.find(key);
    } else {
      BGLS_REQUIRE(it->second.qubits == incoming.qubits,
                   "cannot append results: key '", key,
                   "' measures different qubits in the two results");
    }
    // No reserve here: an exact reserve per shard would pin capacity to
    // size and force a full copy on every append; insert's geometric
    // growth keeps the engine's shard-at-a-time merge amortized linear.
    it->second.values.insert(it->second.values.end(), incoming.values.begin(),
                             incoming.values.end());
  }
}

const Result::KeyData& Result::key_data(const std::string& key) const {
  const auto it = data_.find(key);
  BGLS_REQUIRE(it != data_.end(), "unknown measurement key '", key, "'");
  return it->second;
}

const std::vector<Qubit>& Result::measured_qubits(
    const std::string& key) const {
  return key_data(key).qubits;
}

const std::vector<Bitstring>& Result::values(const std::string& key) const {
  return key_data(key).values;
}

std::uint64_t Result::repetitions() const {
  if (keys_.empty()) return 0;
  return key_data(keys_.front()).values.size();
}

Counts Result::histogram(const std::string& key) const {
  Counts counts;
  for (const Bitstring value : key_data(key).values) ++counts[value];
  return counts;
}

Distribution Result::distribution(const std::string& key) const {
  return normalize(histogram(key));
}

void declare_measurement_keys(const Circuit& circuit, Result& result) {
  for (const auto& moment : circuit.moments()) {
    for (const auto& op : moment.operations()) {
      if (!op.gate().is_measurement()) continue;
      result.declare_key(op.gate().measurement_key(),
                         {op.qubits().begin(), op.qubits().end()});
    }
  }
}

std::map<std::string, Counts> key_histograms(const Result& result) {
  std::map<std::string, Counts> histograms;
  for (const std::string& key : result.keys()) {
    histograms[key] = result.histogram(key);
  }
  return histograms;
}

}  // namespace bgls

/// \file result.h
/// Measurement results keyed by measurement key — the equivalent of the
/// cirq.Result object returned by simulator.run() in the paper's
/// quickstart, including the histogram used by Fig. 1.

#pragma once

#include <map>
#include <string>
#include <vector>

#include "circuit/operation.h"
#include "util/stats.h"

namespace bgls {

/// Sampled measurement records for one run() call.
class Result {
 public:
  Result() = default;

  /// Declares a measurement key and the qubits it reads (in gate order).
  /// Called once per key before any record is appended.
  void declare_key(const std::string& key, std::vector<Qubit> qubits);

  /// Appends one repetition's packed outcome for `key`: bit j of `value`
  /// is the measured bit of the key's j-th qubit.
  void add_record(const std::string& key, Bitstring value);

  /// Appends `count` identical repetitions (dictionary-batched path).
  void add_records(const std::string& key, Bitstring value,
                   std::uint64_t count);

  /// Appends every record of `other` to this result (the BatchEngine's
  /// shard merge). Keys unknown here are declared with the other
  /// result's qubits; keys known to both must measure the same qubits.
  void append(const Result& other);

  /// All keys in declaration order.
  [[nodiscard]] const std::vector<std::string>& keys() const { return keys_; }

  /// The qubits a key measures.
  [[nodiscard]] const std::vector<Qubit>& measured_qubits(
      const std::string& key) const;

  /// Per-repetition packed outcomes for a key.
  [[nodiscard]] const std::vector<Bitstring>& values(
      const std::string& key) const;

  /// Number of repetitions recorded (same for every key).
  [[nodiscard]] std::uint64_t repetitions() const;

  /// Outcome counts for a key (the histogram of Fig. 1).
  [[nodiscard]] Counts histogram(const std::string& key) const;

  /// Empirical distribution for a key.
  [[nodiscard]] Distribution distribution(const std::string& key) const;

 private:
  struct KeyData {
    std::vector<Qubit> qubits;
    std::vector<Bitstring> values;
  };
  const KeyData& key_data(const std::string& key) const;

  std::vector<std::string> keys_;
  std::map<std::string, KeyData> data_;
};

class Circuit;

/// Declares every measurement key of `circuit` (with its qubits, in
/// gate order) on `result` — the shared preamble of Simulator::run, the
/// engine's batch paths, and the Session facade, so a 0-repetition run
/// still yields a well-formed result with all keys present.
void declare_measurement_keys(const Circuit& circuit, Result& result);

/// All of a result's histograms keyed by measurement key — the
/// progress-snapshot shape (core/progress.h), shared by the serial
/// sampler's final update and the engine's per-shard reporting.
[[nodiscard]] std::map<std::string, Counts> key_histograms(
    const Result& result);

}  // namespace bgls

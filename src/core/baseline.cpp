#include "core/baseline.h"

namespace bgls {

Bitstring qubit_by_qubit_sample_once(const StateVectorState& final_state,
                                     Rng& rng) {
  StateVectorState working = final_state;
  Bitstring bits = 0;
  const std::array<Qubit, 1> one_qubit_buffer{0};
  for (Qubit q = 0; q < final_state.num_qubits(); ++q) {
    const double p1 = working.marginal_one(q);
    const int outcome = rng.bernoulli(p1) ? 1 : 0;
    bits = with_bit(bits, q, outcome);
    std::array<Qubit, 1> target = one_qubit_buffer;
    target[0] = q;
    working.project(target, bits);
  }
  return bits;
}

Counts qubit_by_qubit_sample(const Circuit& circuit,
                             StateVectorState initial_state,
                             std::uint64_t repetitions, Rng& rng) {
  Counts counts;
  if (!circuit.has_channels()) {
    StateVectorState final_state = initial_state;
    evolve(circuit, final_state, rng);
    for (std::uint64_t rep = 0; rep < repetitions; ++rep) {
      ++counts[qubit_by_qubit_sample_once(final_state, rng)];
    }
    return counts;
  }
  // Stochastic circuits: one trajectory per repetition.
  for (std::uint64_t rep = 0; rep < repetitions; ++rep) {
    StateVectorState state = initial_state;
    evolve(circuit, state, rng);
    ++counts[qubit_by_qubit_sample_once(state, rng)];
  }
  return counts;
}

Counts direct_sample(const Circuit& circuit, StateVectorState initial_state,
                     std::uint64_t repetitions, Rng& rng) {
  Counts counts;
  if (!circuit.has_channels()) {
    StateVectorState final_state = std::move(initial_state);
    evolve(circuit, final_state, rng);
    for (const Bitstring bits : final_state.sample_n(repetitions, rng)) {
      ++counts[bits];
    }
    return counts;
  }
  for (std::uint64_t rep = 0; rep < repetitions; ++rep) {
    StateVectorState state = initial_state;
    evolve(circuit, state, rng);
    ++counts[state.sample(rng)];
  }
  return counts;
}

}  // namespace bgls

/// \file baseline.h
/// The conventional qubit-by-qubit sampling baseline the paper compares
/// against (Sec. 2): fully evolve the circuit to |ψ_f⟩, then measure the
/// qubits one at a time, each time computing the marginal distribution
/// conditioned on the bits already fixed. This costs n marginal
/// computations per sample — the f(n, 2d) cost the gate-by-gate
/// algorithm avoids.

#pragma once

#include "circuit/circuit.h"
#include "statevector/state.h"
#include "util/stats.h"

namespace bgls {

/// Samples `repetitions` bitstrings from the circuit's final state using
/// the conventional method on the statevector backend: one full
/// evolution, then per repetition a sequential sweep over the qubits,
/// computing each marginal and collapsing a working copy of the state.
/// Channels are handled by re-evolving per repetition (trajectories).
[[nodiscard]] Counts qubit_by_qubit_sample(const Circuit& circuit,
                                           StateVectorState initial_state,
                                           std::uint64_t repetitions,
                                           Rng& rng);

/// Single conventional sample from an already-evolved state.
[[nodiscard]] Bitstring qubit_by_qubit_sample_once(
    const StateVectorState& final_state, Rng& rng);

/// The cheapest conventional baseline: one full evolution, then all
/// repetitions drawn from the final probability vector with batched
/// inverse-CDF draws (StateVectorState::sample_n) — one O(2^n) pass
/// plus O(n) per draw, instead of the qubit-by-qubit method's n
/// marginal sweeps per draw. Channels fall back to one trajectory and
/// one draw per repetition.
[[nodiscard]] Counts direct_sample(const Circuit& circuit,
                                   StateVectorState initial_state,
                                   std::uint64_t repetitions, Rng& rng);

}  // namespace bgls

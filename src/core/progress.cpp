#include "core/progress.h"

#include <algorithm>
#include <utility>

#include "util/error.h"

namespace bgls {

void merge_histograms(std::map<std::string, Counts>& into,
                      const std::map<std::string, Counts>& delta) {
  for (const auto& [key, counts] : delta) {
    Counts& target = into[key];
    for (const auto& [bits, count] : counts) target[bits] += count;
  }
}

ProgressCollector::ProgressCollector(ProgressOptions options,
                                     std::vector<std::uint64_t> shard_reps,
                                     bool chunked)
    : options_(std::move(options)),
      shard_reps_(std::move(shard_reps)),
      chunked_(chunked),
      slots_(shard_reps_.size()) {
  BGLS_REQUIRE(options_.enabled(),
               "ProgressCollector needs enabled ProgressOptions");
  BGLS_REQUIRE(!shard_reps_.empty(), "ProgressCollector needs >= 1 shard");
  for (const std::uint64_t reps : shard_reps_) total_ += reps;
}

std::uint64_t ProgressCollector::next_checkpoint(std::uint64_t done,
                                                 std::uint64_t total,
                                                 std::uint64_t every) {
  if (done >= total) return total;
  // Reports always land exactly on checkpoints, so `done` is a multiple
  // of `every` here and the next checkpoint is one full step away.
  return std::min(done + every, total);
}

void ProgressCollector::report(std::size_t shard, std::uint64_t done,
                               std::map<std::string, Counts> cumulative) {
  const std::lock_guard<std::mutex> lock(mutex_);
  BGLS_REQUIRE(shard < slots_.size(), "progress report from unknown shard ",
               shard);
  slots_[shard].pending.emplace(done, std::move(cumulative));
  flush_locked();
}

void ProgressCollector::flush_locked() {
  while (cursor_shard_ < slots_.size()) {
    const std::uint64_t reps = shard_reps_[cursor_shard_];
    const std::uint64_t expected =
        chunked_ ? next_checkpoint(cursor_done_, reps, options_.every) : reps;
    auto& pending = slots_[cursor_shard_].pending;
    const auto it = pending.find(expected);
    if (it == pending.end()) return;  // canonical predecessor still running

    std::map<std::string, Counts> cumulative = std::move(it->second);
    pending.erase(it);

    const std::uint64_t completed = prefix_base_ + expected;
    const bool shard_complete = expected == reps;
    const bool final = shard_complete && cursor_shard_ + 1 == slots_.size();
    // Zero-advance checkpoints (empty shards) fold into the next real
    // one; the rule depends only on canonical positions, never timing.
    if (completed > last_emitted_ || (final && !final_emitted_)) {
      ProgressUpdate update;
      update.completed_repetitions = completed;
      update.total_repetitions = total_;
      update.final = final;
      update.histograms = base_histograms_;
      merge_histograms(update.histograms, cumulative);
      options_.sink(update);
      last_emitted_ = completed;
      final_emitted_ = final;
    }

    if (shard_complete) {
      merge_histograms(base_histograms_, cumulative);
      prefix_base_ += reps;
      ++cursor_shard_;
      cursor_done_ = 0;
    } else {
      cursor_done_ = expected;
    }
  }
}

}  // namespace bgls

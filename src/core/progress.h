/// \file progress.h
/// Streaming partial histograms for long-running sampling jobs.
///
/// A run configured with ProgressOptions emits ProgressUpdate values as
/// repetitions complete: cumulative per-measurement-key histograms over
/// a *canonical prefix* of the run's repetitions. The canonical order
/// is shard-major (all repetitions of RNG stream 0, then stream 1, ...;
/// the serial path is a single shard), and within a shard updates fire
/// every `every` repetitions plus at shard completion. Because both the
/// shard decomposition and every shard's per-repetition outcomes are
/// fixed by the seed and SimulatorOptions::num_rng_streams alone, the
/// emitted update *sequence* — positions and contents — is bit-identical
/// across thread counts and scheduling: threads only change when an
/// update is delivered, never what it says. The final update carries
/// the complete histogram of the run.
///
/// On the dictionary-batched path (Sec. 3.2.3) all of a shard's
/// repetitions complete together at the final gate, so streaming
/// degenerates to one update per shard prefix emitted at the end of the
/// run; per-trajectory workloads (channels, mid-circuit measurement, or
/// RunRequest::with_sample_parallelization(false)) stream throughout.
///
/// ProgressCollector is the engine-side merger: shards report their
/// cumulative histograms at the canonical checkpoints as they reach
/// them (possibly out of order across shards), and the collector
/// buffers and flushes updates strictly in canonical order.

#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "util/stats.h"

namespace bgls {

/// One streamed snapshot: cumulative histograms over the canonical
/// prefix of `completed_repetitions` repetitions.
struct ProgressUpdate {
  /// Repetitions covered by this update (canonical prefix length).
  std::uint64_t completed_repetitions = 0;
  /// Total repetitions of the run.
  std::uint64_t total_repetitions = 0;
  /// True for the last update of the run (the complete histogram).
  bool final = false;
  /// Cumulative outcome counts per measurement key for the prefix.
  std::map<std::string, Counts> histograms;
};

/// Callback receiving updates. Invoked serially (updates never race or
/// arrive out of canonical order) from worker threads; it must not call
/// back into the emitting run.
using ProgressFn = std::function<void(const ProgressUpdate&)>;

/// Streaming knobs carried by SimulatorOptions / RunRequest.
struct ProgressOptions {
  /// Emission cadence in repetitions (within a shard); 0 disables
  /// streaming entirely.
  std::uint64_t every = 0;
  /// Destination for updates; streaming is off when empty.
  ProgressFn sink;

  [[nodiscard]] bool enabled() const { return every > 0 && sink != nullptr; }
};

/// Merges per-shard checkpoint reports into the canonical update
/// sequence (see file comment). Thread-safe: shards report
/// concurrently; updates are emitted under the internal lock, strictly
/// in canonical order.
class ProgressCollector {
 public:
  /// `shard_reps[i]` is shard i's repetition count. `chunked` selects
  /// the checkpoint schedule: true = every `options.every` repetitions
  /// within a shard plus shard completion (per-trajectory paths);
  /// false = shard completion only (dictionary-batched paths, where all
  /// of a shard's repetitions finish together).
  ProgressCollector(ProgressOptions options,
                    std::vector<std::uint64_t> shard_reps, bool chunked);

  /// The canonical checkpoint after `done` of `total` shard repetitions
  /// under cadence `every`: the next multiple of `every`, capped at
  /// `total`. Shared by the collector and the engine's chunk loop so
  /// both walk the identical schedule.
  [[nodiscard]] static std::uint64_t next_checkpoint(std::uint64_t done,
                                                     std::uint64_t total,
                                                     std::uint64_t every);

  /// Shard `shard` has completed `done` of its repetitions; `cumulative`
  /// holds its per-key counts for those repetitions. Must be called at
  /// exactly the canonical checkpoints, in order within the shard
  /// (shards may interleave freely).
  void report(std::size_t shard, std::uint64_t done,
              std::map<std::string, Counts> cumulative);

 private:
  /// Emits every update whose canonical predecessors have all arrived.
  void flush_locked();

  struct ShardSlot {
    /// Buffered checkpoints (done -> cumulative histograms) not yet
    /// consumed by the canonical cursor.
    std::map<std::uint64_t, std::map<std::string, Counts>> pending;
  };

  ProgressOptions options_;
  std::vector<std::uint64_t> shard_reps_;
  bool chunked_;
  std::uint64_t total_ = 0;

  std::mutex mutex_;
  std::vector<ShardSlot> slots_;
  /// Canonical cursor: next shard to consume, the checkpoint expected
  /// from it, and the repetitions of fully consumed shards.
  std::size_t cursor_shard_ = 0;
  std::uint64_t cursor_done_ = 0;
  std::uint64_t prefix_base_ = 0;
  /// Merged histograms of fully consumed shards (the prefix base).
  std::map<std::string, Counts> base_histograms_;
  /// Largest prefix emitted so far / whether the final update went out
  /// (dedups zero-advance checkpoints from empty shards).
  std::uint64_t last_emitted_ = 0;
  bool final_emitted_ = false;
};

/// Adds every count of `delta` into `into` (prefix accumulation).
void merge_histograms(std::map<std::string, Counts>& into,
                      const std::map<std::string, Counts>& delta);

}  // namespace bgls

#include "core/optimize.h"

#include <map>
#include <optional>

#include "util/error.h"

namespace bgls {
namespace {

/// A pending per-qubit run of single-qubit gates being fused.
struct PendingRun {
  Matrix product = Matrix::identity(2);
  std::size_t gate_count = 0;
  /// The single original operation when gate_count == 1, so unfused
  /// gates keep their readable names.
  std::optional<Operation> lone_op;
};

bool is_identity_up_to_tolerance(const Matrix& m) {
  return m.max_abs_diff(Matrix::identity(2)) < 1e-10;
}

}  // namespace

Circuit optimize_for_bgls(const Circuit& circuit, OptimizationReport* report) {
  OptimizationReport local_report;
  local_report.operations_before = circuit.num_operations();

  Circuit out;
  std::map<Qubit, PendingRun> pending;

  const auto flush_qubit = [&](Qubit q) {
    const auto it = pending.find(q);
    if (it == pending.end()) return;
    PendingRun run = std::move(it->second);
    pending.erase(it);
    if (run.gate_count == 0) return;
    if (is_identity_up_to_tolerance(run.product)) {
      ++local_report.identities_dropped;
      local_report.gates_fused += run.gate_count;
      return;
    }
    if (run.gate_count == 1) {
      out.append(*run.lone_op);
      return;
    }
    local_report.gates_fused += run.gate_count;
    out.append(Operation(
        Gate::SingleQubitMatrix(std::move(run.product), "fused"), {q}));
  };

  for (const auto& op : circuit.all_operations()) {
    const Gate& gate = op.gate();
    const bool fusible = gate.is_unitary() && gate.arity() == 1 &&
                         !gate.is_parameterized();
    if (fusible) {
      PendingRun& run = pending[op.qubits()[0]];
      run.product = gate.unitary() * run.product;
      ++run.gate_count;
      run.lone_op = op;
      continue;
    }
    // Barrier: flush every qubit this operation touches, then emit it.
    for (const Qubit q : op.qubits()) flush_qubit(q);
    out.append(op);
  }
  // Flush the tails (copy keys first: flush_qubit mutates the map).
  std::vector<Qubit> remaining;
  remaining.reserve(pending.size());
  for (const auto& [q, run] : pending) remaining.push_back(q);
  for (const Qubit q : remaining) flush_qubit(q);

  local_report.operations_after = out.num_operations();
  if (report != nullptr) *report = local_report;
  return out;
}

}  // namespace bgls

#include "core/optimize.h"

#include <array>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "util/error.h"

namespace bgls {
namespace {

/// A pending per-qubit run of single-qubit gates being fused.
struct PendingRun {
  Matrix product = Matrix::identity(2);
  std::size_t gate_count = 0;
  /// The single original operation when gate_count == 1, so unfused
  /// gates keep their readable names.
  std::optional<Operation> lone_op;
};

/// One emitted slot. Either a finished operation, or an open two-qubit
/// fusion site whose 4x4 product later single-qubit runs on its lines
/// may still be multiplied into.
struct Slot {
  std::optional<Operation> fixed;
  // Open two-qubit site (when !fixed):
  Matrix product;                // accumulated 4x4
  std::array<Qubit, 2> qubits{};
  std::optional<Operation> seed; // original op, kept while nothing absorbed
};

bool is_identity_up_to_tolerance(const Matrix& m) {
  return m.max_abs_diff(Matrix::identity(m.rows())) < 1e-10;
}

/// Lifts a single-qubit unitary onto a two-qubit gate's line: the
/// gate-local index has qubits[0] as the most significant bit, so the
/// first line lifts as u ⊗ I and the second as I ⊗ u.
Matrix lift_to_pair(const Matrix& u, bool on_first_line) {
  return on_first_line ? Matrix::kron(u, Matrix::identity(2))
                       : Matrix::kron(Matrix::identity(2), u);
}

}  // namespace

Circuit optimize_for_bgls(const Circuit& circuit,
                          const OptimizeOptions& options,
                          OptimizationReport* report) {
  OptimizationReport local_report;
  local_report.operations_before = circuit.num_operations();
  const bool fuse1 = options.fuse_single_qubit_gates;
  const bool fuse2 = fuse1 && options.fuse_into_two_qubit_gates;

  std::vector<Slot> out;
  std::map<Qubit, PendingRun> pending;
  // Index into `out` of the open two-qubit site a qubit's next run may
  // attach to. Any other emitted operation touching the qubit closes it
  // (so attached runs never commute past an operation on their line).
  std::map<Qubit, std::ptrdiff_t> attach;

  const auto attach_site = [&](Qubit q) -> std::ptrdiff_t {
    const auto it = attach.find(q);
    return it == attach.end() ? -1 : it->second;
  };

  const auto flush_qubit = [&](Qubit q) {
    const auto it = pending.find(q);
    if (it == pending.end()) return;
    PendingRun run = std::move(it->second);
    pending.erase(it);
    if (run.gate_count == 0) return;
    if (is_identity_up_to_tolerance(run.product)) {
      ++local_report.identities_dropped;
      local_report.gates_fused += run.gate_count;
      return;
    }
    if (fuse2) {
      if (const std::ptrdiff_t site = attach_site(q); site >= 0) {
        Slot& slot = out[static_cast<std::size_t>(site)];
        slot.product =
            lift_to_pair(run.product, q == slot.qubits[0]) * slot.product;
        slot.seed.reset();
        local_report.gates_fused_into_two_qubit += run.gate_count;
        return;
      }
    }
    Slot slot;
    if (run.gate_count == 1) {
      slot.fixed = std::move(*run.lone_op);
    } else {
      local_report.gates_fused += run.gate_count;
      slot.fixed = Operation(
          Gate::SingleQubitMatrix(std::move(run.product), "fused"), {q});
    }
    out.push_back(std::move(slot));
  };

  for (const auto& op : circuit.all_operations()) {
    const Gate& gate = op.gate();
    const bool plain_unitary = !op.is_classically_controlled() &&
                               gate.is_unitary() && !gate.is_parameterized();
    if (fuse1 && plain_unitary && gate.arity() == 1) {
      PendingRun& run = pending[op.qubits()[0]];
      run.product = gate.unitary() * run.product;
      ++run.gate_count;
      run.lone_op = op;
      continue;
    }
    if (fuse2 && plain_unitary && gate.arity() == 2) {
      const Qubit q0 = op.qubits()[0];
      const Qubit q1 = op.qubits()[1];
      Matrix product = gate.unitary();
      bool absorbed = false;
      for (const auto& [q, first_line] :
           {std::pair{q0, true}, std::pair{q1, false}}) {
        const auto it = pending.find(q);
        if (it == pending.end()) continue;
        PendingRun run = std::move(it->second);
        pending.erase(it);
        if (run.gate_count == 0) continue;
        if (is_identity_up_to_tolerance(run.product)) {
          ++local_report.identities_dropped;
          local_report.gates_fused += run.gate_count;
          continue;
        }
        // The run precedes the gate: U · (run lifted onto its line).
        product = product * lift_to_pair(run.product, first_line);
        local_report.gates_fused_into_two_qubit += run.gate_count;
        absorbed = true;
      }
      Slot slot;
      slot.product = std::move(product);
      slot.qubits = {q0, q1};
      if (!absorbed) slot.seed = op;
      out.push_back(std::move(slot));
      attach[q0] = attach[q1] = static_cast<std::ptrdiff_t>(out.size() - 1);
      continue;
    }
    // Barrier: flush every qubit this operation touches (pending runs
    // still precede it, so they may attach), close the open two-qubit
    // sites on those lines, then emit it.
    for (const Qubit q : op.qubits()) flush_qubit(q);
    for (const Qubit q : op.qubits()) attach[q] = -1;
    Slot barrier;
    barrier.fixed = op;
    out.push_back(std::move(barrier));
  }
  // Flush the tails (copy keys first: flush_qubit mutates the map).
  std::vector<Qubit> remaining;
  remaining.reserve(pending.size());
  for (const auto& [q, run] : pending) remaining.push_back(q);
  for (const Qubit q : remaining) flush_qubit(q);

  Circuit result;
  for (auto& slot : out) {
    if (slot.fixed.has_value()) {
      result.append(std::move(*slot.fixed));
      continue;
    }
    if (slot.seed.has_value()) {  // nothing absorbed: keep the name
      result.append(std::move(*slot.seed));
      continue;
    }
    if (is_identity_up_to_tolerance(slot.product)) {
      ++local_report.identities_dropped;
      continue;
    }
    result.append(Operation(
        Gate::TwoQubitMatrix(std::move(slot.product), "fused2"),
        {slot.qubits[0], slot.qubits[1]}));
  }

  local_report.operations_after = result.num_operations();
  if (report != nullptr) *report = local_report;
  return result;
}

Circuit optimize_for_bgls(const Circuit& circuit, OptimizationReport* report) {
  return optimize_for_bgls(circuit, OptimizeOptions{}, report);
}

}  // namespace bgls
